(** Fleet-scale serving scenario: hundreds of tenant VMs issuing request
    traffic *through* a hypervisor recovery event.

    The paper evaluates recovery latency on one machine with a handful of
    AppVMs; what a cloud operator cares about is the user-perceived
    degradation across a fleet of tenants when the hypervisor under them
    recovers (cf. "End-User Effects of Microreboots", PAPERS.md). This
    module boots a hypervisor hosting [tenants] small single-vCPU guests
    ({!Hyper.Hypervisor.Tenant_fleet}), drives a mixed warmup through the
    real workload samplers, damages a few victim tenants' page-frame
    state at a golden quiesce point, recovers with one of three
    mechanisms, and accounts per-tenant request latency through the
    event:

    - [Serial_full]: the paper's serial microreset with the full
      page-frame consistency scan -- every tenant stalls for the whole
      O(machine) recovery (~22 ms at reference geometry).
    - [Serial_incremental]: the same serial microreset driven off the
      dirty lists -- every tenant stalls, but only O(damaged state).
    - [Sharded]: {!Recovery.Shard} -- a short global quiesce, then
      per-domain shards on the simulated CPUs; a tenant resumes as soon
      as the global phase and its own shard are done.

    Requests arrive on a per-tenant cadence across a fixed window around
    the fault. A request arriving while its tenant is stalled completes
    when the tenant resumes (latency = residual stall + service time);
    everything else pays only its service time. Latencies land in the
    PR 7 log-bucket histogram [fleet.request_ns] (p50/p99/p999 within
    25% relative error), SLO violations and netstack loss counters ride
    alongside, and trials aggregate through commutative
    {!Obs.Metrics.merge_snapshots} -- so fleet results are bit-identical
    for any [--jobs], the same contract the campaign engine has.

    Every trial is a pure function of [(config, mechanism, trial seed)]:
    the simulated machine, the warmup, the victims and the request
    streams all derive from the trial's own splitmix stream. *)

open Hyper

type mechanism = Serial_full | Serial_incremental | Sharded

let mechanism_name = function
  | Serial_full -> "serial-full"
  | Serial_incremental -> "serial-incremental"
  | Sharded -> "sharded"

let mechanism_of_string = function
  | "serial-full" -> Some Serial_full
  | "serial-incremental" -> Some Serial_incremental
  | "sharded" -> Some Sharded
  | _ -> None

let all_mechanisms = [ Serial_full; Serial_incremental; Sharded ]

type config = {
  tenants : int; (* tenant VMs sharing the host *)
  trials : int; (* independent fleet trials (distinct seeds) *)
  victims : int; (* tenants whose pfn state the fault damages *)
  frames_per_victim : int; (* damaged descriptors per victim *)
  warmup_activities : int; (* mixed workload steps before the fault *)
  request_interval : Sim.Time.ns; (* per-tenant request cadence *)
  pre_window : Sim.Time.ns; (* observation window before the fault... *)
  post_window : Sim.Time.ns; (* ...and after it *)
  slo : Sim.Time.ns; (* request-latency SLO *)
  base_seed : int64;
}

let default_config =
  {
    tenants = 200;
    trials = 4;
    victims = 3;
    frames_per_victim = 6;
    warmup_activities = 400;
    request_interval = Sim.Time.us 250;
    pre_window = Sim.Time.ms 5;
    post_window = Sim.Time.ms 25;
    slo = Sim.Time.ms 1;
    base_seed = 42_000L;
  }

(* Costs are charged at the paper's reference geometry (2 Mi frames,
   8 CPUs) while the mechanics run on the scaled-down campaign tables:
   the latencies reported here are the 8 GB host's, not the simulator's.
   The serial full-scan baseline uses the stock NiLiHype config; the
   other two mechanisms enable the dirty-list consistency scan. *)
let hv_config = function
  | Serial_full ->
    { Config.nilihype with Config.geometry = Some Config.reference_geometry }
  | Serial_incremental | Sharded ->
    {
      Config.nilihype_incremental with
      Config.geometry = Some Config.reference_geometry;
    }

(* One trial: boot, warm up, snapshot, damage victims, recover, account
   request latencies. Returns the trial's metrics snapshot. *)
let run_trial (cfg : config) mech ~seed : Obs.Metrics.snapshot =
  let recorder = Obs.Recorder.create ~capacity:64 ~min_level:Obs.Event.Error () in
  let m = recorder.Obs.Recorder.metrics in
  let requests_c = Obs.Metrics.counter m "fleet.requests" in
  let stalled_c = Obs.Metrics.counter m "fleet.requests_stalled" in
  let violations_c = Obs.Metrics.counter m "fleet.slo_violations" in
  let failed_c = Obs.Metrics.counter m "fleet.tenants_failed" in
  let lost_c = Obs.Metrics.counter m "fleet.net_lost" in
  let req_h =
    Obs.Metrics.log_histogram m "fleet.request_ns" ~lo:(Sim.Time.us 1)
      ~hi:(Sim.Time.ms 100)
  in
  let rec_h =
    Obs.Metrics.log_histogram m "fleet.recovery_ns" ~lo:(Sim.Time.us 10)
      ~hi:(Sim.Time.s 1)
  in
  let rec_max = Obs.Metrics.gauge m "fleet.recovery_ns_max" in
  let gap_max = Obs.Metrics.gauge m "fleet.max_gap_ns" in
  let rng = Sim.Rng.create seed in
  let clock = Sim.Clock.create () in
  let hv =
    Hypervisor.boot ~mconfig:Hw.Machine.campaign_config ~obs:recorder
      ~config:(hv_config mech)
      ~setup:(Hypervisor.Tenant_fleet cfg.tenants)
      clock
  in
  (* Mixed tenant population driven through the real workload samplers:
     the warmup dirties pfn/heap/timer state the way guest traffic does,
     so the dirty sets the incremental scan walks are workload-shaped. *)
  let kinds =
    [|
      Workloads.Workload.Netbench; Workloads.Workload.Unixbench;
      Workloads.Workload.Blkbench;
    |]
  in
  let loads =
    Array.init cfg.tenants (fun i ->
        Workloads.Workload.create kinds.(i mod Array.length kinds)
          ~domid:(i + 1))
  in
  for _ = 1 to cfg.warmup_activities do
    Sim.Clock.advance_by clock (Sim.Time.us (20 + Sim.Rng.int rng 180));
    let w = loads.(Sim.Rng.int rng cfg.tenants) in
    Hypervisor.execute hv rng (Workloads.Workload.sample_activity rng w)
  done;
  (* Golden quiesce point: refresh baselines and drain the dirty lists,
     so what is dirty at recovery time is exactly the damage. *)
  ignore (Hypervisor.snapshot hv);
  (* The fault: a few tenants' typed frames lose their references --
     the validation/use-count disagreement the consistency scan exists
     to repair. Victims are spread across the tenant range. *)
  let victims = max 1 (min cfg.victims cfg.tenants) in
  let off = Sim.Rng.int rng cfg.tenants in
  let victim_ids =
    List.sort_uniq compare
      (List.init victims (fun k ->
           1 + ((off + (k * cfg.tenants / victims)) mod cfg.tenants)))
  in
  let n_frames = Hypervisor.frames hv in
  List.iter
    (fun domid ->
      let left = ref cfg.frames_per_victim in
      let i = ref 0 in
      while !left > 0 && !i < n_frames do
        let d = Pfn.get hv.Hypervisor.pfn !i in
        if d.Pfn.owner = domid && d.Pfn.use_count > 0 then begin
          Pfn.touch d;
          d.Pfn.use_count <- 0;
          decr left
        end;
        incr i
      done)
    victim_ids;
  (* Recover. Serial mechanisms stall every tenant for the whole
     latency; sharded recovery gives each domain its own resume offset. *)
  let fault_time = Sim.Clock.now clock in
  let enh = Recovery.Enhancement.full_set in
  let latency, offsets =
    match mech with
    | Serial_full | Serial_incremental ->
      let out =
        Recovery.Engine.recover Recovery.Engine.Nilihype hv ~enh ~detected_on:0
      in
      (out.Recovery.Engine.latency, None)
    | Sharded ->
      let r = Recovery.Shard.recover hv ~enh ~detected_on:0 in
      (r.Recovery.Shard.latency, Some r.Recovery.Shard.resume_offsets)
  in
  Obs.Metrics.observe rec_h latency;
  if latency > rec_max.Obs.Metrics.value then Obs.Metrics.set rec_max latency;
  let stall_of domid =
    match offsets with
    | None -> latency
    | Some l -> (
      match List.assoc_opt domid l with Some o -> o | None -> latency)
  in
  (* Request accounting through the event, per tenant. The netstack
     models the same window as the paper's UDP ping sender: ticks while
     the tenant serves, one interruption for its stall. *)
  for t = 0 to cfg.tenants - 1 do
    let domid = t + 1 in
    let stall = stall_of domid in
    let stall_end = fault_time + stall in
    let net = Guest.Netstack.create ~interval:cfg.request_interval () in
    let phase = Sim.Rng.int rng (max 1 cfg.request_interval) in
    let arrival = ref (fault_time - cfg.pre_window + phase) in
    while !arrival <= fault_time + cfg.post_window do
      let a = !arrival in
      let service = Sim.Time.us (30 + Sim.Rng.int rng 200) in
      let lat =
        if a >= fault_time && a < stall_end then begin
          Obs.Metrics.incr stalled_c;
          stall_end - a + service
        end
        else begin
          Guest.Netstack.sender_tick net ~now:a ~delivered:true;
          service
        end
      in
      Obs.Metrics.observe req_h lat;
      Obs.Metrics.incr requests_c;
      if lat > cfg.slo then Obs.Metrics.incr violations_c;
      arrival := a + cfg.request_interval
    done;
    Guest.Netstack.interruption net ~now:fault_time ~duration:stall;
    if Guest.Netstack.failed net then Obs.Metrics.incr failed_c;
    Obs.Metrics.incr ~by:(net.Guest.Netstack.sent - net.Guest.Netstack.echoed)
      lost_c;
    if net.Guest.Netstack.max_gap > gap_max.Obs.Metrics.value then
      Obs.Metrics.set gap_max net.Guest.Netstack.max_gap
  done;
  Obs.Recorder.metrics_snapshot recorder

type result = {
  mech : mechanism;
  tenants : int;
  trials : int;
  metrics : Obs.Metrics.snapshot;
      (* merged across trials; counters sum, gauges take the max, the
         [fleet.request_ns] histogram pools every request *)
}

(* Trials are embarrassingly parallel pure functions of the trial seed;
   the snapshot merge is commutative and associative, so the merged
   result is identical for every [jobs]. *)
let run ?(jobs = 1) ?(oversubscribe = false) (cfg : config) mech =
  let merged =
    Inject.Pool.map_reduce ~jobs ~oversubscribe ~n:cfg.trials
      ~init:(fun _slot -> ref Obs.Metrics.empty_snapshot)
      ~body:(fun acc i ->
        let seed = Int64.add cfg.base_seed (Int64.of_int i) in
        acc := Obs.Metrics.merge_snapshots !acc (run_trial cfg mech ~seed))
      ~merge:(fun a b -> ref (Obs.Metrics.merge_snapshots !a !b))
      ()
  in
  { mech; tenants = cfg.tenants; trials = cfg.trials; metrics = !merged }

(* --- Readbacks ----------------------------------------------------- *)

let counter r name =
  match List.assoc_opt name r.metrics.Obs.Metrics.counters with
  | Some v -> v
  | None -> 0

let gauge r name =
  match List.assoc_opt name r.metrics.Obs.Metrics.gauges with
  | Some v -> v
  | None -> 0

let hist r name = List.assoc_opt name r.metrics.Obs.Metrics.histograms

let requests r = counter r "fleet.requests"
let requests_stalled r = counter r "fleet.requests_stalled"
let slo_violations r = counter r "fleet.slo_violations"
let tenants_failed r = counter r "fleet.tenants_failed"
let net_lost r = counter r "fleet.net_lost"
let scan_incremental r = counter r "recovery.pfn_scan.incremental"
let scan_full r = counter r "recovery.pfn_scan.full"
let recovery_max_ns r = gauge r "fleet.recovery_ns_max"
let max_gap_ns r = gauge r "fleet.max_gap_ns"

let request_quantile r q =
  match Option.bind (hist r "fleet.request_ns") (fun h -> Obs.Metrics.quantile h q) with
  | Some v -> v
  | None -> 0

let request_samples r =
  match hist r "fleet.request_ns" with
  | Some h -> h.Obs.Metrics.h_samples
  | None -> 0

(* Mean recovery latency across trials (one recovery per trial). *)
let recovery_mean_ns r =
  match hist r "fleet.recovery_ns" with
  | Some h when h.Obs.Metrics.h_samples > 0 ->
    h.Obs.Metrics.h_sum / h.Obs.Metrics.h_samples
  | _ -> 0

let pp fmt r =
  Format.fprintf fmt
    "%-19s recovery %a (max %a)  p50 %a  p99 %a  p999 %a  SLO viol %d/%d  \
     stalled %d  lost %d@."
    (mechanism_name r.mech) Sim.Time.pp_ms (recovery_mean_ns r) Sim.Time.pp_ms
    (recovery_max_ns r) Sim.Time.pp_ms
    (request_quantile r 0.50)
    Sim.Time.pp_ms
    (request_quantile r 0.99)
    Sim.Time.pp_ms
    (request_quantile r 0.999)
    (slo_violations r) (requests r) (requests_stalled r) (net_lost r)

(* --- nlh-fleet/1 export -------------------------------------------- *)

let json_entry r =
  Printf.sprintf
    "    { \"mechanism\": %S, \"requests\": %d, \"samples\": %d, \"stalled\": \
     %d, \"slo_violations\": %d, \"tenants_failed\": %d, \"net_lost\": %d, \
     \"recovery_ns_mean\": %d, \"recovery_ns_max\": %d, \"max_gap_ns\": %d, \
     \"request_p50_ns\": %d, \"request_p99_ns\": %d, \"request_p999_ns\": %d, \
     \"scan_incremental\": %d, \"scan_full\": %d }"
    (mechanism_name r.mech) (requests r) (request_samples r)
    (requests_stalled r) (slo_violations r) (tenants_failed r) (net_lost r)
    (recovery_mean_ns r) (recovery_max_ns r) (max_gap_ns r)
    (request_quantile r 0.50)
    (request_quantile r 0.99)
    (request_quantile r 0.999)
    (scan_incremental r) (scan_full r)

let write_json oc (cfg : config) (results : result list) =
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"nlh-fleet/1\",\n\
    \  \"tenants\": %d,\n\
    \  \"trials\": %d,\n\
    \  \"victims\": %d,\n\
    \  \"request_interval_ns\": %d,\n\
    \  \"slo_ns\": %d,\n\
    \  \"mechanisms\": [\n%s\n  ]\n\
     }\n"
    cfg.tenants cfg.trials cfg.victims cfg.request_interval cfg.slo
    (String.concat ",\n" (List.map json_entry results))
