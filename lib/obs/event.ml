(** Typed trace events.

    The observability layer replaces the string-only simulator trace with
    a closed variant of the events the paper's evaluation cares about:
    hypercall entries and retries (retry success is Table I's largest
    step), undo-journal traffic (the dominant Figure 3 overhead), lock
    releases and per-enhancement steps during recovery (Table III's
    breakdown), fault injection/detection, and the final outcome
    classification. Every event carries the simulated timestamp and the
    CPU/domain it happened on, so a single run can be replayed as a
    timeline instead of a pile of strings. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* Coarse event classification used for filtering: each payload variant
   belongs to exactly one subsystem. *)
type subsystem =
  | Hypercall
  | Journal
  | Lock
  | Timer
  | Inject
  | Detect
  | Recovery
  | Outcome
  | Endure
  | Other

let subsystem_name = function
  | Hypercall -> "hypercall"
  | Journal -> "journal"
  | Lock -> "lock"
  | Timer -> "timer"
  | Inject -> "inject"
  | Detect -> "detect"
  | Recovery -> "recovery"
  | Outcome -> "outcome"
  | Endure -> "endure"
  | Other -> "other"

type payload =
  (* Request-processing paths (normal operation). *)
  | Hypercall_entry of { domid : int; vid : int; kind : string; retry : bool }
  | Hypercall_commit of { domid : int; vid : int; kind : string }
  | Hypercall_retry of { domid : int; vid : int; kind : string; attempt : int }
  | Journal_append of { kind : string; depth : int }
  | Journal_undo of { entries : int }
  | Journal_commit of { entries : int }
  | Lock_release of { name : string; count : int } (* forced, during recovery *)
  | Timer_fire of { action : string }
  (* Injection, detection, recovery, classification. *)
  | Fault_injected of { target : string }
  | Detection of { kind : string; message : string }
  | Recovery_step of { mechanism : string; step : string }
  | Outcome_classified of { name : string }
  (* Post-recovery consistency audit: one event per violated invariant
     kind, with the violation magnitude (count of bad locks/frames/...). *)
  | Audit_violation of { kind : string; count : int }
  (* Endurance campaigns: per-cycle outcome of a long-lived instance and
     per-resource leak attribution from the ledger diff. *)
  | Endure_cycle of { index : int; survived : bool; clean : bool }
  | Leak_delta of { resource : string; delta : int }
  (* Free-form messages (the legacy [tracef] path). *)
  | Message of string

let subsystem = function
  | Hypercall_entry _ | Hypercall_commit _ | Hypercall_retry _ -> Hypercall
  | Journal_append _ | Journal_undo _ | Journal_commit _ -> Journal
  | Lock_release _ -> Lock
  | Timer_fire _ -> Timer
  | Fault_injected _ -> Inject
  | Detection _ -> Detect
  | Recovery_step _ -> Recovery
  | Outcome_classified _ -> Outcome
  | Audit_violation _ -> Detect
  | Endure_cycle _ | Leak_delta _ -> Endure
  | Message _ -> Other

(* Short event name, used as the Chrome-trace "name" field. *)
let name = function
  | Hypercall_entry { kind; _ } -> "hypercall:" ^ kind
  | Hypercall_commit { kind; _ } -> "hypercall_commit:" ^ kind
  | Hypercall_retry { kind; _ } -> "hypercall_retry:" ^ kind
  | Journal_append { kind; _ } -> "journal_append:" ^ kind
  | Journal_undo _ -> "journal_undo"
  | Journal_commit _ -> "journal_commit"
  | Lock_release { name; _ } -> "lock_release:" ^ name
  | Timer_fire { action } -> "timer_fire:" ^ action
  | Fault_injected { target } -> "fault_injected:" ^ target
  | Detection { kind; _ } -> "detection:" ^ kind
  | Recovery_step { step; _ } -> "recovery_step:" ^ step
  | Outcome_classified { name } -> "outcome:" ^ name
  | Audit_violation { kind; _ } -> "audit_violation:" ^ kind
  | Endure_cycle _ -> "endure_cycle"
  | Leak_delta { resource; _ } -> "leak:" ^ resource
  | Message _ -> "message"

(* Structured payload fields as (key, value) pairs for exporters. *)
let args = function
  | Hypercall_entry { domid; vid; kind; retry } ->
    [
      ("domid", `Int domid);
      ("vid", `Int vid);
      ("kind", `String kind);
      ("retry", `Bool retry);
    ]
  | Hypercall_commit { domid; vid; kind } ->
    [ ("domid", `Int domid); ("vid", `Int vid); ("kind", `String kind) ]
  | Hypercall_retry { domid; vid; kind; attempt } ->
    [
      ("domid", `Int domid);
      ("vid", `Int vid);
      ("kind", `String kind);
      ("attempt", `Int attempt);
    ]
  | Journal_append { kind; depth } ->
    [ ("kind", `String kind); ("depth", `Int depth) ]
  | Journal_undo { entries } | Journal_commit { entries } ->
    [ ("entries", `Int entries) ]
  | Lock_release { name; count } ->
    [ ("lock", `String name); ("count", `Int count) ]
  | Timer_fire { action } -> [ ("action", `String action) ]
  | Fault_injected { target } -> [ ("target", `String target) ]
  | Detection { kind; message } ->
    [ ("kind", `String kind); ("message", `String message) ]
  | Recovery_step { mechanism; step } ->
    [ ("mechanism", `String mechanism); ("step", `String step) ]
  | Outcome_classified { name } -> [ ("name", `String name) ]
  | Audit_violation { kind; count } ->
    [ ("kind", `String kind); ("count", `Int count) ]
  | Endure_cycle { index; survived; clean } ->
    [ ("index", `Int index); ("survived", `Bool survived); ("clean", `Bool clean) ]
  | Leak_delta { resource; delta } ->
    [ ("resource", `String resource); ("delta", `Int delta) ]
  | Message m -> [ ("message", `String m) ]

(* A recorded event: simulated timestamp plus origin coordinates.
   [domid = -1] means "not attributable to a domain". *)
type t = {
  time : int; (* simulated ns (Sim.Time.ns) *)
  level : level;
  cpu : int;
  domid : int;
  payload : payload;
}

let pp fmt e =
  Format.fprintf fmt "[%dns] %s cpu%d %s" e.time
    (String.uppercase_ascii (level_name e.level))
    e.cpu (name e.payload)
