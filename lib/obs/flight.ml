(** Crash-surviving flight ring: bounded last-N log of (name, time)
    pairs that deliberately survives hypervisor snapshot restore and
    in-place reboot, like the paper's persistent journal.

    This is the black box a postmortem reads its "last N hypercalls" and
    "journal tail" from: the trace ring ({!Trace}) is reset at run
    boundaries and filtered by level, but the flight ring always records
    and is never cleared -- recovery wiping hypervisor state must not
    wipe the evidence of what led up to the failure.

    Because the ring is never cleared, entries from *previous* runs are
    still present when a run fails early. Each entry therefore carries an
    epoch number; the harness bumps the epoch at every run boundary
    ([new_epoch]) and [tail] only reads back entries from the current
    epoch, keeping postmortem bundles a deterministic function of the
    failing seed regardless of which worker (with whatever history)
    happened to execute it.

    The record path ([note]) is four array/field stores and zero
    allocation: names must be pre-interned constant strings. *)

type t = {
  names : string array;
  times : int array;
  epochs : int array;
  capacity : int;
  mutable head : int; (* next write position *)
  mutable size : int;
  mutable epoch : int;
  mutable total : int; (* lifetime appends, across all epochs *)
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  {
    names = Array.make capacity "";
    times = Array.make capacity 0;
    epochs = Array.make capacity (-1);
    capacity;
    head = 0;
    size = 0;
    epoch = 0;
    total = 0;
  }

let capacity t = t.capacity
let epoch t = t.epoch
let total t = t.total
let new_epoch t = t.epoch <- t.epoch + 1

(* Hot path: no allocation, no branch beyond the ring wrap. *)
let note t ~name ~time =
  t.names.(t.head) <- name;
  t.times.(t.head) <- time;
  t.epochs.(t.head) <- t.epoch;
  t.head <- (t.head + 1) mod t.capacity;
  if t.size < t.capacity then t.size <- t.size + 1;
  t.total <- t.total + 1

(* Oldest-first readback of the current epoch's entries (cold path). *)
let tail ?epoch t =
  let want = match epoch with Some e -> e | None -> t.epoch in
  let result = ref [] in
  for i = 0 to t.size - 1 do
    let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
    if t.epochs.(idx) = want then
      result := (t.names.(idx), t.times.(idx)) :: !result
  done;
  !result
