(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Instruments are registered by name; registering the same name twice
    returns the same instrument (with a kind check), so independent call
    sites can share a counter. A registry is snapshotted into an
    immutable, canonically ordered value; snapshots merge with a
    commutative and associative operation (counters and histogram buckets
    sum, gauges take the max), which is what lets parallel campaigns
    aggregate per-run metrics bit-identically for any worker count --
    the same contract {!Inject.Pool} relies on for the plain totals. *)

type counter = { mutable count : int }

type gauge = { mutable value : int }

type histogram = {
  bounds : int array; (* inclusive upper bounds, strictly increasing *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : int;
  mutable samples : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let c = { count = 0 } in
    Hashtbl.add t.table name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let g = { value = 0 } in
    Hashtbl.add t.table name (Gauge g);
    g

let histogram t name ~bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bucket bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds;
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) ->
    if h.bounds <> bounds then
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S re-registered with different bounds" name);
    h
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let h =
      {
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0;
        samples = 0;
      }
    in
    Hashtbl.add t.table name (Histogram h);
    h

let incr ?(by = 1) c = c.count <- c.count + by
let set g v = g.value <- v

(* A value lands in the first bucket whose (inclusive) upper bound is
   >= v; values above every bound land in the trailing overflow bucket. *)
let observe h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n then n else if v <= h.bounds.(i) then i else find (i + 1) in
  let idx = find 0 in
  h.counts.(idx) <- h.counts.(idx) + 1;
  h.sum <- h.sum + v;
  h.samples <- h.samples + 1

(* Zero every registered instrument in place. Cached instrument handles
   stay valid and the registry keeps its structure, so a reset registry
   snapshots identically to a fresh one with the same registrations. *)
let reset t =
  Hashtbl.iter
    (fun _ instr ->
      match instr with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0;
        h.samples <- 0)
    t.table

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  h_bounds : int list;
  h_counts : int list; (* length = length h_bounds + 1 *)
  h_sum : int;
  h_samples : int;
}

(* Canonical (name-sorted) immutable view. Two registries produce equal
   snapshots iff every instrument agrees, regardless of registration or
   accumulation order -- the determinism tests compare these directly. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let empty_snapshot = { counters = []; gauges = []; histograms = [] }

let snapshot t =
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name instr ->
      match instr with
      | Counter c -> counters := (name, c.count) :: !counters
      | Gauge g -> gauges := (name, g.value) :: !gauges
      | Histogram h ->
        histograms :=
          ( name,
            {
              h_bounds = Array.to_list h.bounds;
              h_counts = Array.to_list h.counts;
              h_sum = h.sum;
              h_samples = h.samples;
            } )
          :: !histograms)
    t.table;
  {
    counters = by_name !counters;
    gauges = by_name !gauges;
    histograms = by_name !histograms;
  }

(* Write a snapshot's values back into a live registry: the restore half
   of the snapshot/restore pair used by clone fan-out (a fresh variant
   must start from exactly the trigger-point metric values, or the
   per-run metric deltas it contributes would differ from a fresh run's).
   Instruments are zeroed first, so snapshot names absent from the
   registry are an error and registry names absent from the snapshot end
   up at zero -- matching a registry that was reset and replayed. *)
let restore t s =
  reset t;
  let find kind name =
    match Hashtbl.find_opt t.table name with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics.restore: %s %S not registered" kind name)
  in
  List.iter
    (fun (name, v) ->
      match find "counter" name with
      | Counter c -> c.count <- v
      | other ->
        invalid_arg
          (Printf.sprintf "Metrics.restore: %S is a %s, snapshot has a counter"
             name (kind_name other)))
    s.counters;
  List.iter
    (fun (name, v) ->
      match find "gauge" name with
      | Gauge g -> g.value <- v
      | other ->
        invalid_arg
          (Printf.sprintf "Metrics.restore: %S is a %s, snapshot has a gauge"
             name (kind_name other)))
    s.gauges;
  List.iter
    (fun (name, hs) ->
      match find "histogram" name with
      | Histogram h ->
        if Array.to_list h.bounds <> hs.h_bounds then
          invalid_arg
            (Printf.sprintf "Metrics.restore: histogram %S bounds mismatch" name);
        List.iteri (fun i v -> h.counts.(i) <- v) hs.h_counts;
        h.sum <- hs.h_sum;
        h.samples <- hs.h_samples
      | other ->
        invalid_arg
          (Printf.sprintf
             "Metrics.restore: %S is a %s, snapshot has a histogram" name
             (kind_name other)))
    s.histograms

(* Merge two name-sorted assoc lists, combining values of shared keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = String.compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ra b
    else if c > 0 then (kb, vb) :: merge_assoc combine a rb
    else (ka, combine ka va vb) :: merge_assoc combine ra rb

let merge_hist name a b =
  if a.h_bounds <> b.h_bounds then
    invalid_arg
      (Printf.sprintf "Metrics.merge: histogram %S has mismatched bounds" name);
  {
    h_bounds = a.h_bounds;
    h_counts = List.map2 ( + ) a.h_counts b.h_counts;
    h_sum = a.h_sum + b.h_sum;
    h_samples = a.h_samples + b.h_samples;
  }

(* Commutative, associative: counters and histogram buckets sum; gauges
   (point-in-time values) take the max, the only order-free choice that
   keeps "largest observed" semantics across runs. *)
let merge_snapshots a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc (fun _ x y -> max x y) a.gauges b.gauges;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let pp_snapshot fmt s =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s %d@." k v) s.counters;
  List.iter (fun (k, v) -> Format.fprintf fmt "%s %d (gauge)@." k v) s.gauges;
  List.iter
    (fun (k, h) ->
      Format.fprintf fmt "%s samples=%d sum=%d buckets=[%s]@." k h.h_samples
        h.h_sum
        (String.concat "; " (List.map string_of_int h.h_counts)))
    s.histograms
