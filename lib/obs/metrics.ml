(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Instruments are registered by name; registering the same name twice
    returns the same instrument (with a kind check), so independent call
    sites can share a counter. A registry is snapshotted into an
    immutable, canonically ordered value; snapshots merge with a
    commutative and associative operation (counters and histogram buckets
    sum, gauges take the max), which is what lets parallel campaigns
    aggregate per-run metrics bit-identically for any worker count --
    the same contract {!Inject.Pool} relies on for the plain totals. *)

type counter = { mutable count : int }

type gauge = { mutable value : int }

type histogram = {
  bounds : int array; (* inclusive upper bounds, strictly increasing *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : int;
  mutable samples : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let c = { count = 0 } in
    Hashtbl.add t.table name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let g = { value = 0 } in
    Hashtbl.add t.table name (Gauge g);
    g

let histogram t name ~bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bucket bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds;
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) ->
    if h.bounds <> bounds then
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S re-registered with different bounds" name);
    h
  | Some other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %S already registered as a %s" name
         (kind_name other))
  | None ->
    let h =
      {
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0;
        samples = 0;
      }
    in
    Hashtbl.add t.table name (Histogram h);
    h

(* ------------------------------------------------------------------ *)
(* Log-bucket (HDR-style) histograms                                   *)
(* ------------------------------------------------------------------ *)

(* Geometric growth step shared by the bound generator and the quantile
   error bound: the next bound is ~25% above the previous one, so any
   estimate read off a bucket's upper bound is within 25% (one bucket's
   relative width) of the true value. Integer arithmetic only -- no libm,
   so bounds are bit-identical on every platform. *)
let log_step b = b + max 1 (b / 4)

(* Relative width of the widest bucket: [quantile] answers are upper
   bounds of the bucket holding the requested rank, so the estimate
   overshoots the true value by at most this fraction. *)
let log_relative_error = 0.25

(* Geometric bucket bounds from [lo] to at least [hi] (both clamped to
   >= 1): each bound is [log_step] of the previous. ~72 buckets cover
   1us..10s in nanoseconds. *)
let log_bounds ~lo ~hi =
  let lo = max 1 lo and hi = max 1 hi in
  let rec build acc b = if b >= hi then List.rev (b :: acc) else build (b :: acc) (log_step b) in
  Array.of_list (build [] lo)

(* A fixed-relative-error histogram: same instrument type as [histogram],
   just with generated geometric bounds, so snapshot / restore / merge
   all apply unchanged. *)
let log_histogram t name ~lo ~hi = histogram t name ~bounds:(log_bounds ~lo ~hi)

let incr ?(by = 1) c = c.count <- c.count + by
let set g v = g.value <- v

(* A value lands in the first bucket whose (inclusive) upper bound is
   >= v; values above every bound land in the trailing overflow bucket.
   Binary search: log-bucket histograms have ~70+ buckets, so the old
   linear scan would dominate the hot injection loop. *)
let observe h v =
  let n = Array.length h.bounds in
  if n = 0 || v > h.bounds.(n - 1) then h.counts.(n) <- h.counts.(n) + 1
  else begin
    (* Invariant: bounds.(hi) >= v, and bounds.(lo-1) < v (lo = 0 ok). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if h.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    h.counts.(!lo) <- h.counts.(!lo) + 1
  end;
  h.sum <- h.sum + v;
  h.samples <- h.samples + 1

(* Zero every registered instrument in place. Cached instrument handles
   stay valid and the registry keeps its structure, so a reset registry
   snapshots identically to a fresh one with the same registrations. *)
let reset t =
  Hashtbl.iter
    (fun _ instr ->
      match instr with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0;
        h.samples <- 0)
    t.table

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  h_bounds : int list;
  h_counts : int list; (* length = length h_bounds + 1 *)
  h_sum : int;
  h_samples : int;
}

(* Quantile estimation over a histogram snapshot: the answer is the
   (inclusive) upper bound of the first bucket whose cumulative count
   reaches rank ceil(q * samples). For geometric [log_bounds] buckets
   this overshoots the exact order statistic by at most
   [log_relative_error]; for the trailing unbounded overflow bucket the
   estimate is clamped to one growth step past the top bound. *)
let quantile hs q =
  if hs.h_samples <= 0 || q < 0.0 || q > 1.0 then None
  else begin
    let rank = max 1 (min hs.h_samples (int_of_float (ceil (q *. float_of_int hs.h_samples)))) in
    let rec walk cum bounds counts =
      match (bounds, counts) with
      | [], [ overflow ] ->
        ignore overflow;
        (* rank falls in the overflow bucket: no upper bound, so answer
           one geometric step past the last finite bound (or the mean for
           a histogram with no bounds at all). *)
        None
      | b :: rb, c :: rc ->
        let cum = cum + c in
        if cum >= rank then Some b else walk cum rb rc
      | _ -> None
    in
    match walk 0 hs.h_bounds hs.h_counts with
    | Some b -> Some b
    | None ->
      (match List.rev hs.h_bounds with
      | top :: _ -> Some (log_step top)
      | [] -> Some (hs.h_sum / hs.h_samples))
  end

let p50 hs = quantile hs 0.50
let p99 hs = quantile hs 0.99
let p999 hs = quantile hs 0.999

(* Canonical (name-sorted) immutable view. Two registries produce equal
   snapshots iff every instrument agrees, regardless of registration or
   accumulation order -- the determinism tests compare these directly. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let empty_snapshot = { counters = []; gauges = []; histograms = [] }

let snapshot t =
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name instr ->
      match instr with
      | Counter c -> counters := (name, c.count) :: !counters
      | Gauge g -> gauges := (name, g.value) :: !gauges
      | Histogram h ->
        histograms :=
          ( name,
            {
              h_bounds = Array.to_list h.bounds;
              h_counts = Array.to_list h.counts;
              h_sum = h.sum;
              h_samples = h.samples;
            } )
          :: !histograms)
    t.table;
  {
    counters = by_name !counters;
    gauges = by_name !gauges;
    histograms = by_name !histograms;
  }

(* Write a snapshot's values back into a live registry: the restore half
   of the snapshot/restore pair used by clone fan-out (a fresh variant
   must start from exactly the trigger-point metric values, or the
   per-run metric deltas it contributes would differ from a fresh run's).
   Instruments are zeroed first, so snapshot names absent from the
   registry are an error and registry names absent from the snapshot end
   up at zero -- matching a registry that was reset and replayed. *)
let restore t s =
  reset t;
  let find kind name =
    match Hashtbl.find_opt t.table name with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics.restore: %s %S not registered" kind name)
  in
  List.iter
    (fun (name, v) ->
      match find "counter" name with
      | Counter c -> c.count <- v
      | other ->
        invalid_arg
          (Printf.sprintf "Metrics.restore: %S is a %s, snapshot has a counter"
             name (kind_name other)))
    s.counters;
  List.iter
    (fun (name, v) ->
      match find "gauge" name with
      | Gauge g -> g.value <- v
      | other ->
        invalid_arg
          (Printf.sprintf "Metrics.restore: %S is a %s, snapshot has a gauge"
             name (kind_name other)))
    s.gauges;
  List.iter
    (fun (name, hs) ->
      match find "histogram" name with
      | Histogram h ->
        if Array.to_list h.bounds <> hs.h_bounds then
          invalid_arg
            (Printf.sprintf "Metrics.restore: histogram %S bounds mismatch" name);
        List.iteri (fun i v -> h.counts.(i) <- v) hs.h_counts;
        h.sum <- hs.h_sum;
        h.samples <- hs.h_samples
      | other ->
        invalid_arg
          (Printf.sprintf
             "Metrics.restore: %S is a %s, snapshot has a histogram" name
             (kind_name other)))
    s.histograms

(* Merge two name-sorted assoc lists, combining values of shared keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = String.compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ra b
    else if c > 0 then (kb, vb) :: merge_assoc combine a rb
    else (ka, combine ka va vb) :: merge_assoc combine ra rb

let merge_hist name a b =
  if a.h_bounds <> b.h_bounds then
    invalid_arg
      (Printf.sprintf "Metrics.merge: histogram %S has mismatched bounds" name);
  {
    h_bounds = a.h_bounds;
    h_counts = List.map2 ( + ) a.h_counts b.h_counts;
    h_sum = a.h_sum + b.h_sum;
    h_samples = a.h_samples + b.h_samples;
  }

(* Commutative, associative: counters and histogram buckets sum; gauges
   (point-in-time values) take the max, the only order-free choice that
   keeps "largest observed" semantics across runs. *)
let merge_snapshots a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc (fun _ x y -> max x y) a.gauges b.gauges;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let pp_snapshot fmt s =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s %d@." k v) s.counters;
  List.iter (fun (k, v) -> Format.fprintf fmt "%s %d (gauge)@." k v) s.gauges;
  List.iter
    (fun (k, h) ->
      Format.fprintf fmt "%s samples=%d sum=%d buckets=[%s]@." k h.h_samples
        h.h_sum
        (String.concat "; " (List.map string_of_int h.h_counts)))
    s.histograms
