(** Coverage extraction for the fault-space fuzzer.

    A run's coverage is the set of qualitative facts its instrumentation
    recorded: which outcome class it reached, which triage signature it
    produced, and which metric counters fired -- bucketed by magnitude so
    "3 hypercall retries" and "5 hypercall retries" are the same point
    but "0" and "100" are not. Points are strings so the corpus can
    store, sort and diff them without knowing where they came from:

    - ["o:<outcome>"] -- the outcome class name
    - ["sig:<fault|target|cause|branch>"] -- the triage signature key
    - ["c:<counter>:<bucket>"] -- a nonzero counter, bucketed

    The bucket is the base-4 digit count of the value (1..31), so each
    counter contributes at most a handful of distinct points however
    long the fuzzing session runs. Histograms and gauges are skipped:
    histogram shapes are latency noise, and the one gauge is a
    timestamp. *)

(* log4(v), as a digit count: 1..3 -> 1, 4..15 -> 2, 16..63 -> 3 ... *)
let bucket v =
  let rec go n v = if v <= 0 then n else go (n + 1) (v / 4) in
  go 0 v

let points ?signature ~outcome (s : Metrics.snapshot) : string list =
  let pts = ref [ "o:" ^ outcome ] in
  (match signature with
  | Some key -> pts := ("sig:" ^ key) :: !pts
  | None -> ());
  List.iter
    (fun (name, v) ->
      if v > 0 then
        pts := Printf.sprintf "c:%s:%d" name (bucket v) :: !pts)
    s.Metrics.counters;
  List.sort_uniq String.compare !pts
