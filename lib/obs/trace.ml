(** Bounded ring of typed trace events.

    Same shape as the legacy string ring ([Sim.Trace]) but over
    {!Event.t}: fixed capacity, newest events overwrite oldest, a
    min-level filter decides at record time whether an event is kept at
    all. Unlike the legacy ring the storage is allocated eagerly at
    [create] so the first recorded event pays no allocation, and [clear]
    resets the ring for per-run reuse without leaking the previous run's
    entries. Reading back supports filtering by level and subsystem. *)

type t = {
  entries : Event.t array;
  mutable size : int;
  mutable head : int; (* next write position *)
  capacity : int;
  mutable min_level : Event.level;
  mutable dropped : int; (* events overwritten by wraparound *)
}

let dummy : Event.t =
  {
    Event.time = 0;
    level = Event.Debug;
    cpu = -1;
    domid = -1;
    payload = Event.Message "";
  }

let create ?(capacity = 4096) ?(min_level = Event.Info) () =
  let capacity = max 1 capacity in
  {
    entries = Array.make capacity dummy;
    size = 0;
    head = 0;
    capacity;
    min_level;
    dropped = 0;
  }

let set_min_level t level = t.min_level <- level
let min_level t = t.min_level
let capacity t = t.capacity
let size t = t.size
let dropped t = t.dropped

let clear t =
  t.size <- 0;
  t.head <- 0;
  t.dropped <- 0;
  Array.fill t.entries 0 t.capacity dummy

(* Pre-check for call sites whose event payload itself allocates: lets
   them skip building the record entirely when it would be filtered. *)
let enabled t level = Event.level_rank level >= Event.level_rank t.min_level

(* Hot path: one integer compare when the event is filtered out. *)
let record t (e : Event.t) =
  if Event.level_rank e.Event.level >= Event.level_rank t.min_level then begin
    if t.size = t.capacity then t.dropped <- t.dropped + 1;
    t.entries.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    if t.size < t.capacity then t.size <- t.size + 1
  end

(* Oldest-first chronological view, optionally narrowed to a subsystem
   and/or a stricter level. *)
let to_list ?subsystem ?min_level t =
  let keep (e : Event.t) =
    (match min_level with
    | Some l -> Event.level_rank e.Event.level >= Event.level_rank l
    | None -> true)
    && match subsystem with
       | Some s -> Event.subsystem e.Event.payload = s
       | None -> true
  in
  let result = ref [] in
  for i = 0 to t.size - 1 do
    let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
    let e = t.entries.(idx) in
    if keep e then result := e :: !result
  done;
  !result

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." Event.pp e) (to_list t)
