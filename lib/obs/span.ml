(** Recovery-phase spans.

    A span is a named interval of simulated time with a category and a
    track (Chrome-trace "tid"). The recovery engines open one span per
    {!Hyper.Latency_model} step, so a run's spans are a per-phase
    timeline of where recovery latency went: summing span durations per
    name reproduces the breakdown exactly (asserted by the test suite).

    Spans are kept in an unbounded collector: a run performs at most one
    recovery of ~a dozen phases, so the collection stays tiny. *)

type span = {
  name : string;
  cat : string; (* e.g. "recovery:NiLiHype" *)
  track : int; (* CPU or logical track the span belongs to *)
  start : int; (* simulated ns *)
  duration : int; (* simulated ns *)
}

type t = { mutable spans : span list (* newest first *) }

let create () = { spans = [] }
let clear t = t.spans <- []

let add t ~name ~cat ~track ~start ~duration =
  t.spans <- { name; cat; track; start; duration } :: t.spans

(* Chronological (start-time ascending; insertion order on ties). *)
let to_list t = List.rev t.spans
let count t = List.length t.spans

(* Sum of span durations grouped by span name, in first-seen order --
   directly comparable to [Latency_model.breakdown.steps]. *)
let sums_by_name t =
  let order = ref [] in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (match Hashtbl.find_opt totals s.name with
      | Some d -> Hashtbl.replace totals s.name (d + s.duration)
      | None ->
        order := s.name :: !order;
        Hashtbl.add totals s.name s.duration))
    (to_list t);
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order
