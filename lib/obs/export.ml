(** Exporters: Chrome-trace JSON (loadable in Perfetto / chrome://tracing)
    for a single run's events and spans, and a plain metrics-JSON document
    ([OBS_campaign.json]) for campaign-level snapshots.

    Both are hand-rolled writers over {!Json.escape}; timestamps are
    simulated nanoseconds converted to the microseconds Chrome-trace
    expects. Output is deterministic: events and spans are emitted in
    timestamp order with a stable tie-break, and metrics come from the
    canonically sorted {!Metrics.snapshot}. *)

let us_of_ns ns = float_of_int ns /. 1000.0

let add_arg buf (key, v) =
  Json.escape_to buf key;
  Buffer.add_char buf ':';
  match v with
  | `Int i -> Buffer.add_string buf (string_of_int i)
  | `Bool b -> Buffer.add_string buf (string_of_bool b)
  | `String s -> Json.escape_to buf s

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      add_arg buf a)
    args;
  Buffer.add_char buf '}'

(* Chrome-trace rows: a span becomes a complete event ("ph":"X"), a trace
   event becomes a thread-scoped instant ("ph":"i"). *)
type row = Span_row of Span.span | Event_row of Event.t

let row_time = function
  | Span_row s -> s.Span.start
  | Event_row e -> e.Event.time

let add_span_row buf (s : Span.span) =
  Buffer.add_string buf "{\"ph\":\"X\",\"name\":";
  Json.escape_to buf s.name;
  Buffer.add_string buf ",\"cat\":";
  Json.escape_to buf s.cat;
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f" (us_of_ns s.start));
  Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" (us_of_ns s.duration));
  Buffer.add_string buf
    (Printf.sprintf ",\"pid\":0,\"tid\":%d," (max 0 s.track));
  add_args buf [ ("duration_ns", `Int s.duration) ];
  Buffer.add_char buf '}'

let add_event_row buf (e : Event.t) =
  Buffer.add_string buf "{\"ph\":\"i\",\"s\":\"t\",\"name\":";
  Json.escape_to buf (Event.name e.payload);
  Buffer.add_string buf ",\"cat\":";
  Json.escape_to buf (Event.subsystem_name (Event.subsystem e.payload));
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f" (us_of_ns e.time));
  Buffer.add_string buf
    (Printf.sprintf ",\"pid\":0,\"tid\":%d," (max 0 e.cpu));
  add_args buf
    (("level", `String (Event.level_name e.level))
    :: ("domid", `Int e.domid)
    :: Event.args e.payload);
  Buffer.add_char buf '}'

let chrome_trace_to buf ~events ~spans =
  let rows =
    List.map (fun e -> Event_row e) events
    @ List.map (fun s -> Span_row s) spans
  in
  (* Stable: rows with equal timestamps keep events-then-spans order. *)
  let rows = List.stable_sort (fun a b -> compare (row_time a) (row_time b)) rows in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      match row with
      | Span_row s -> add_span_row buf s
      | Event_row e -> add_event_row buf e)
    rows;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_trace_string ~events ~spans =
  let buf = Buffer.create 4096 in
  chrome_trace_to buf ~events ~spans;
  Buffer.contents buf

let chrome_trace_of_recorder (r : Recorder.t) =
  chrome_trace_string
    ~events:(Trace.to_list r.Recorder.trace)
    ~spans:(Span.to_list r.Recorder.spans)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome_trace path (r : Recorder.t) =
  write_file path (chrome_trace_of_recorder r)

(* --- Metrics JSON (OBS_campaign.json) ------------------------------ *)

let add_int_assoc buf pairs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Json.escape_to buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v))
    pairs;
  Buffer.add_char buf '}'

let add_int_list buf l =
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    l;
  Buffer.add_char buf ']'

(** [metrics_json ~meta snapshot] renders the campaign metrics document:
    {v
    { "schema": "nlh-obs/1",
      "meta": { ... caller-supplied strings/ints ... },
      "counters": { name: total, ... },
      "gauges": { name: value, ... },
      "histograms": { name: {bounds, counts, sum, samples}, ... } }
    v}
    [counts] has one trailing overflow bucket beyond [bounds]. *)
let metrics_json ?(meta = []) (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"nlh-obs/1\",\n\"meta\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_arg buf (k, v))
    meta;
  Buffer.add_string buf "},\n\"counters\":";
  add_int_assoc buf s.Metrics.counters;
  Buffer.add_string buf ",\n\"gauges\":";
  add_int_assoc buf s.Metrics.gauges;
  Buffer.add_string buf ",\n\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Json.escape_to buf name;
      Buffer.add_string buf ":{\"bounds\":";
      add_int_list buf h.Metrics.h_bounds;
      Buffer.add_string buf ",\"counts\":";
      add_int_list buf h.Metrics.h_counts;
      Buffer.add_string buf
        (Printf.sprintf ",\"sum\":%d,\"samples\":%d" h.Metrics.h_sum
           h.Metrics.h_samples);
      (* Bucket-resolution quantile estimates (see [Metrics.quantile]);
         omitted for empty histograms, where no rank exists. *)
      (match (Metrics.p50 h, Metrics.p99 h, Metrics.p999 h) with
      | Some p50, Some p99, Some p999 ->
        Buffer.add_string buf
          (Printf.sprintf ",\"p50\":%d,\"p99\":%d,\"p999\":%d" p50 p99 p999)
      | _ -> ());
      Buffer.add_char buf '}')
    s.Metrics.histograms;
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

let write_metrics_json ?meta path s = write_file path (metrics_json ?meta s)
