(** A recorder bundles the three observability surfaces of one run: the
    typed event ring, the recovery-span collector and the metrics
    registry. The simulated hypervisor carries exactly one recorder;
    the injector threads it from boot to outcome classification.

    The hot-path instruments (journal writes, hypercall entries/retries,
    timer fires...) are registered once at creation and cached as plain
    record fields, so normal-operation code pays a single unguarded
    integer increment per metric -- no name lookup on the hot path. *)

type t = {
  trace : Trace.t;
  spans : Span.t;
  metrics : Metrics.t;
  (* Cached hot-path instruments (all registered by name in [metrics]). *)
  hypercall_entries : Metrics.counter;
  hypercall_retries : Metrics.counter;
  journal_writes : Metrics.counter;
  journal_undone : Metrics.counter;
  timer_fires : Metrics.counter;
  recovery_lock_releases : Metrics.counter;
  faults_injected : Metrics.counter;
  detections : Metrics.counter;
  recovery_latency_ms : Metrics.histogram;
  (* Outcome classification instruments. Registered eagerly so a reused
     recorder's registry is structurally identical to a fresh per-run one
     (lazily registering them on first use would make snapshots differ
     between runs that hit different outcome classes). *)
  outcome_non_manifested : Metrics.counter;
  outcome_sdc : Metrics.counter;
  outcome_detected : Metrics.counter;
  run_end_time_ns : Metrics.gauge;
}

(* Fixed recovery-latency buckets in milliseconds: NiLiHype lands in the
   16..32 ms region, ReHype around 700 ms; sub-ms and multi-second tails
   get their own buckets so miscalibrations show up. *)
let latency_bounds_ms = [| 1; 4; 16; 32; 64; 128; 256; 512; 1024; 4096 |]

let create ?(capacity = 4096) ?(min_level = Event.Info) () =
  let metrics = Metrics.create () in
  {
    trace = Trace.create ~capacity ~min_level ();
    spans = Span.create ();
    metrics;
    hypercall_entries = Metrics.counter metrics "hypercall.entries";
    hypercall_retries = Metrics.counter metrics "hypercall.retries";
    journal_writes = Metrics.counter metrics "journal.writes";
    journal_undone = Metrics.counter metrics "journal.entries_undone";
    timer_fires = Metrics.counter metrics "timer.fires";
    recovery_lock_releases = Metrics.counter metrics "recovery.locks_released";
    faults_injected = Metrics.counter metrics "inject.faults";
    detections = Metrics.counter metrics "detect.detections";
    recovery_latency_ms =
      Metrics.histogram metrics "recovery.latency_ms" ~bounds:latency_bounds_ms;
    outcome_non_manifested = Metrics.counter metrics "outcome.non_manifested";
    outcome_sdc = Metrics.counter metrics "outcome.sdc";
    outcome_detected = Metrics.counter metrics "outcome.detected";
    run_end_time_ns = Metrics.gauge metrics "run.end_time_ns";
  }

let set_min_level t level = Trace.set_min_level t.trace level

let clear t =
  Trace.clear t.trace;
  Span.clear t.spans

(* Whether an event at [level] would be recorded: lets hot call sites
   skip constructing the payload when it would only be filtered out. *)
let enabled t level = Trace.enabled t.trace level

(* Full per-run reset for worker reuse: drop trace/span contents and zero
   every metric, leaving the recorder exactly as freshly created (cached
   instrument handles stay valid). *)
let reset t =
  clear t;
  Metrics.reset t.metrics

(* Record a typed event. [domid = -1] when no domain is attributable. *)
let event t ~time ?(cpu = -1) ?(domid = -1) level payload =
  Trace.record t.trace { Event.time; level; cpu; domid; payload }

let span t ~name ~cat ~track ~start ~duration =
  Span.add t.spans ~name ~cat ~track ~start ~duration

let metrics_snapshot t = Metrics.snapshot t.metrics
