(** A recorder bundles the three observability surfaces of one run: the
    typed event ring, the recovery-span collector and the metrics
    registry. The simulated hypervisor carries exactly one recorder;
    the injector threads it from boot to outcome classification.

    The hot-path instruments (journal writes, hypercall entries/retries,
    timer fires...) are registered once at creation and cached as plain
    record fields, so normal-operation code pays a single unguarded
    integer increment per metric -- no name lookup on the hot path. *)

(* Phases of one injection run, as attributed by the allocation
   profiler. [Workload] covers both the warmup and the post-recovery
   activity stream; [Injection] is the armed trigger window. *)
type alloc_phase = Boot | Workload | Injection | Detection | Recovery | Audit

let alloc_phases = [ Boot; Workload; Injection; Detection; Recovery; Audit ]

let alloc_phase_name = function
  | Boot -> "boot"
  | Workload -> "workload"
  | Injection -> "injection"
  | Detection -> "detection"
  | Recovery -> "recovery"
  | Audit -> "audit"

type t = {
  trace : Trace.t;
  spans : Span.t;
  metrics : Metrics.t;
  (* Cached hot-path instruments (all registered by name in [metrics]). *)
  hypercall_entries : Metrics.counter;
  hypercall_retries : Metrics.counter;
  journal_writes : Metrics.counter;
  journal_undone : Metrics.counter;
  timer_fires : Metrics.counter;
  recovery_lock_releases : Metrics.counter;
  (* Which consistency-scan path a microreset took: dirty-list-driven
     incremental or the full table walk (chosen per recovery, including
     the forced fallback after a recovery attempt died). Registered
     eagerly like the outcome counters, and surfaced as fuzz coverage
     points via [Coverage.points]. *)
  scan_incremental : Metrics.counter;
  scan_full : Metrics.counter;
  faults_injected : Metrics.counter;
  detections : Metrics.counter;
  recovery_latency_ms : Metrics.histogram;
  (* Log-bucket (geometric) latency histograms: the fleet-tail primitive.
     Nanosecond-resolution with ~25% relative error, so p50/p99/p999 can
     be read off campaign aggregates (see [Metrics.quantile]). *)
  run_latency_ns : Metrics.histogram;
  recovery_latency_ns : Metrics.histogram;
  recovery_phase_ns : Metrics.histogram;
  (* Outcome classification instruments. Registered eagerly so a reused
     recorder's registry is structurally identical to a fresh per-run one
     (lazily registering them on first use would make snapshots differ
     between runs that hit different outcome classes). *)
  outcome_non_manifested : Metrics.counter;
  outcome_sdc : Metrics.counter;
  outcome_detected : Metrics.counter;
  run_end_time_ns : Metrics.gauge;
  (* Phase-attributed allocation profiler: per-phase [Gc.minor_words]
     deltas. The [alloc.*] counters are registered eagerly so a registry
     snapshots identically whether profiling is enabled or not (they
     just stay zero when off); the mark and current phase live outside
     the registry so they survive the mid-boot [reset] that
     [Hypervisor.reboot_in_place] performs. *)
  alloc_boot : Metrics.counter;
  alloc_workload : Metrics.counter;
  alloc_injection : Metrics.counter;
  alloc_detection : Metrics.counter;
  alloc_recovery : Metrics.counter;
  alloc_audit : Metrics.counter;
  mutable alloc_on : bool;
  mutable alloc_mark : float;
  mutable alloc_cur : alloc_phase;
}

(* Fixed recovery-latency buckets in milliseconds: NiLiHype lands in the
   16..32 ms region, ReHype around 700 ms; sub-ms and multi-second tails
   get their own buckets so miscalibrations show up. *)
let latency_bounds_ms = [| 1; 4; 16; 32; 64; 128; 256; 512; 1024; 4096 |]

(* Geometric bounds for the nanosecond histograms: 1us up to ~100s
   covers everything from a single recovery phase to a whole run. *)
let log_lo_ns = 1_000
let log_hi_ns = 100_000_000_000

let create ?(capacity = 4096) ?(min_level = Event.Info) () =
  let metrics = Metrics.create () in
  {
    trace = Trace.create ~capacity ~min_level ();
    spans = Span.create ();
    metrics;
    hypercall_entries = Metrics.counter metrics "hypercall.entries";
    hypercall_retries = Metrics.counter metrics "hypercall.retries";
    journal_writes = Metrics.counter metrics "journal.writes";
    journal_undone = Metrics.counter metrics "journal.entries_undone";
    timer_fires = Metrics.counter metrics "timer.fires";
    recovery_lock_releases = Metrics.counter metrics "recovery.locks_released";
    scan_incremental = Metrics.counter metrics "recovery.pfn_scan.incremental";
    scan_full = Metrics.counter metrics "recovery.pfn_scan.full";
    faults_injected = Metrics.counter metrics "inject.faults";
    detections = Metrics.counter metrics "detect.detections";
    recovery_latency_ms =
      Metrics.histogram metrics "recovery.latency_ms" ~bounds:latency_bounds_ms;
    run_latency_ns =
      Metrics.log_histogram metrics "run.latency_ns" ~lo:log_lo_ns ~hi:log_hi_ns;
    recovery_latency_ns =
      Metrics.log_histogram metrics "recovery.latency_ns" ~lo:log_lo_ns
        ~hi:log_hi_ns;
    recovery_phase_ns =
      Metrics.log_histogram metrics "recovery.phase_ns" ~lo:log_lo_ns
        ~hi:log_hi_ns;
    outcome_non_manifested = Metrics.counter metrics "outcome.non_manifested";
    outcome_sdc = Metrics.counter metrics "outcome.sdc";
    outcome_detected = Metrics.counter metrics "outcome.detected";
    run_end_time_ns = Metrics.gauge metrics "run.end_time_ns";
    alloc_boot = Metrics.counter metrics "alloc.boot";
    alloc_workload = Metrics.counter metrics "alloc.workload";
    alloc_injection = Metrics.counter metrics "alloc.injection";
    alloc_detection = Metrics.counter metrics "alloc.detection";
    alloc_recovery = Metrics.counter metrics "alloc.recovery";
    alloc_audit = Metrics.counter metrics "alloc.audit";
    alloc_on = false;
    alloc_mark = 0.0;
    alloc_cur = Boot;
  }

let alloc_counter t = function
  | Boot -> t.alloc_boot
  | Workload -> t.alloc_workload
  | Injection -> t.alloc_injection
  | Detection -> t.alloc_detection
  | Recovery -> t.alloc_recovery
  | Audit -> t.alloc_audit

(* Words attributed to [phase] so far, as a plain int read (no snapshot
   allocation) -- the bench's agreement check reads these in its loop. *)
let alloc_words t phase = (alloc_counter t phase).Metrics.count

let set_alloc_profiling t on = t.alloc_on <- on

(* Start attributing: minor words allocated from here on are credited to
   [Boot] until the first [alloc_phase] transition. Call BEFORE the
   rewind/boot work the boot phase should capture; the counters it later
   feeds are zeroed by the [reset] inside [reboot_in_place], but the
   mark set here survives it. *)
let alloc_begin t =
  if t.alloc_on then begin
    t.alloc_cur <- Boot;
    t.alloc_mark <- Gc.minor_words ()
  end

(* Credit the words since the last mark to the phase being left, then
   start attributing to [phase]. *)
let alloc_phase t phase =
  if t.alloc_on then begin
    let now = Gc.minor_words () in
    Metrics.incr
      ~by:(int_of_float (now -. t.alloc_mark))
      (alloc_counter t t.alloc_cur);
    t.alloc_mark <- now;
    t.alloc_cur <- phase
  end

(* End-of-run close: credit the tail to the current phase. *)
let alloc_close t = alloc_phase t t.alloc_cur

let set_min_level t level = Trace.set_min_level t.trace level
let min_level t = Trace.min_level t.trace

(* Oldest-first view of the event ring, for postmortem assembly. *)
let events t = Trace.to_list t.trace

let clear t =
  Trace.clear t.trace;
  Span.clear t.spans

(* Whether an event at [level] would be recorded: lets hot call sites
   skip constructing the payload when it would only be filtered out. *)
let enabled t level = Trace.enabled t.trace level

(* Full per-run reset for worker reuse: drop trace/span contents and zero
   every metric, leaving the recorder exactly as freshly created (cached
   instrument handles stay valid). *)
let reset t =
  clear t;
  Metrics.reset t.metrics

(* Record a typed event. [domid = -1] when no domain is attributable. *)
let event t ~time ?(cpu = -1) ?(domid = -1) level payload =
  Trace.record t.trace { Event.time; level; cpu; domid; payload }

let span t ~name ~cat ~track ~start ~duration =
  Span.add t.spans ~name ~cat ~track ~start ~duration

let metrics_snapshot t = Metrics.snapshot t.metrics
