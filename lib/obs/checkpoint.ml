(** Checkpoint files for resumable soak campaigns (schema nlh-checkpoint/1).

    A checkpoint records the progress of a chunked campaign: which chunks
    of the work range have been fully aggregated (a completed-chunk
    bitmap), the merged aggregate so far (an opaque JSON [payload] owned
    by the campaign kind), and enough configuration identity (the
    [fingerprint]) that a resume can refuse a checkpoint written for a
    different campaign. The file is rewritten atomically (tmp + rename),
    so a kill mid-write leaves the previous consistent checkpoint in
    place.

    The envelope is deliberately generic -- [lib/obs] knows nothing about
    injection campaigns. {!Inject.Campaign} and {!Endure} serialize their
    own aggregates into [payload] and parse them back on resume; the
    helpers at the bottom round-trip the one aggregate component they
    share, a {!Metrics.snapshot}. *)

let schema = "nlh-checkpoint/1"

(* The fuzzer reuses the same envelope (fingerprint identity, done
   bitmap, atomic write, opaque payload) under its own schema tag: a
   corpus/state file is a checkpoint whose payload happens to hold the
   corpus. The [?schema] parameters below default to the classic tag so
   existing campaign/endurance files are untouched. *)
let fuzz_schema = "nlh-fuzz/1"

type header = {
  kind : string; (* "campaign" | "endurance" *)
  fingerprint : string; (* config/seed identity; resume requires equality *)
  chunk : int; (* work items per chunk *)
  n_chunks : int;
  done_chunks : bool array; (* length [n_chunks] *)
}

let done_count h =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 h.done_chunks

let complete h = done_count h = h.n_chunks

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

(* [payload] must already be a serialized JSON object. The done bitmap is
   written as the ascending list of completed chunk indices: sparse early
   in a campaign, and self-validating (the parser rejects out-of-order or
   duplicate indices). *)
let to_string ?(schema = schema) h ~payload =
  let buf = Buffer.create (256 + String.length payload) in
  Buffer.add_string buf "{\"schema\":";
  Json.escape_to buf schema;
  Buffer.add_string buf ",\"kind\":";
  Json.escape_to buf h.kind;
  Buffer.add_string buf ",\"fingerprint\":";
  Json.escape_to buf h.fingerprint;
  Buffer.add_string buf
    (Printf.sprintf ",\"chunk\":%d,\"n_chunks\":%d,\"done\":[" h.chunk
       h.n_chunks);
  let first = ref true in
  Array.iteri
    (fun i d ->
      if d then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf (string_of_int i)
      end)
    h.done_chunks;
  Buffer.add_string buf "],\n\"payload\":";
  Buffer.add_string buf payload;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ?schema ~path h ~payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?schema h ~payload));
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Parser / validator                                                  *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let get what key v =
  match Json.member key v with
  | Some x -> x
  | None -> fail "%s: missing %S" what key

let str what key v =
  match Json.to_string (get what key v) with
  | Some s -> s
  | None -> fail "%s: %S is not a string" what key

let int_exn what key v =
  match Json.to_number (get what key v) with
  | Some f when Float.is_integer f -> int_of_float f
  | Some _ | None -> fail "%s: %S is not an integer" what key

let of_json ?(schema = schema) root =
  (match Json.member "schema" root with
  | Some (Json.String s) when s = schema -> ()
  | Some (Json.String s) -> fail "schema %S is not %S" s schema
  | _ -> fail "missing schema");
  let kind = str "checkpoint" "kind" root in
  let fingerprint = str "checkpoint" "fingerprint" root in
  if fingerprint = "" then fail "empty fingerprint";
  let chunk = int_exn "checkpoint" "chunk" root in
  if chunk < 1 then fail "chunk %d < 1" chunk;
  let n_chunks = int_exn "checkpoint" "n_chunks" root in
  if n_chunks < 0 then fail "n_chunks %d < 0" n_chunks;
  let done_chunks = Array.make n_chunks false in
  let indices =
    match Json.to_list (get "checkpoint" "done" root) with
    | Some l -> l
    | None -> fail "\"done\" is not an array"
  in
  let last = ref (-1) in
  List.iter
    (fun v ->
      match Json.to_number v with
      | Some f when Float.is_integer f ->
        let i = int_of_float f in
        if i < 0 || i >= n_chunks then
          fail "done index %d outside [0, %d)" i n_chunks;
        if i <= !last then fail "done indices not strictly ascending";
        last := i;
        done_chunks.(i) <- true
      | Some _ | None -> fail "non-integer done index")
    indices;
  let payload =
    match get "checkpoint" "payload" root with
    | Json.Obj _ as p -> p
    | _ -> fail "\"payload\" is not an object"
  in
  ({ kind; fingerprint; chunk; n_chunks; done_chunks }, payload)

let read ?schema path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match Json.parse contents with
    | Error msg -> Error ("invalid JSON: " ^ msg)
    | Ok root -> ( try Ok (of_json ?schema root) with Bad msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* Metrics-snapshot round trip                                         *)
(* ------------------------------------------------------------------ *)

(* The nlh-obs/1 body shape (counters/gauges/histograms), minus the
   derived quantile fields -- a checkpoint stores raw aggregates only, so
   the round trip is exact. *)
let add_metrics buf (s : Metrics.snapshot) =
  Buffer.add_string buf "{\"counters\":";
  Export.add_int_assoc buf s.Metrics.counters;
  Buffer.add_string buf ",\"gauges\":";
  Export.add_int_assoc buf s.Metrics.gauges;
  Buffer.add_string buf ",\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Json.escape_to buf name;
      Buffer.add_string buf ":{\"bounds\":";
      Export.add_int_list buf h.Metrics.h_bounds;
      Buffer.add_string buf ",\"counts\":";
      Export.add_int_list buf h.Metrics.h_counts;
      Buffer.add_string buf
        (Printf.sprintf ",\"sum\":%d,\"samples\":%d}" h.Metrics.h_sum
           h.Metrics.h_samples))
    s.Metrics.histograms;
  Buffer.add_string buf "}}"

let int_assoc_of what v =
  match v with
  | Json.Obj fields ->
    List.map
      (fun (k, x) ->
        match Json.to_number x with
        | Some f when Float.is_integer f -> (k, int_of_float f)
        | Some _ | None -> fail "%s: %S is not an integer" what k)
      fields
  | _ -> fail "%s is not an object" what

let int_list_of what v =
  match Json.to_list v with
  | Some l ->
    List.map
      (fun x ->
        match Json.to_number x with
        | Some f when Float.is_integer f -> int_of_float f
        | Some _ | None -> fail "%s: non-integer element" what)
      l
  | None -> fail "%s is not an array" what

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* Raises [Bad]: callers sit inside an [of_json]-style validation and
   convert to [Error] at the edge (see {!metrics_of_json}). *)
let metrics_of_json_exn v : Metrics.snapshot =
  let counters = int_assoc_of "counters" (get "metrics" "counters" v) in
  let gauges = int_assoc_of "gauges" (get "metrics" "gauges" v) in
  let histograms =
    match get "metrics" "histograms" v with
    | Json.Obj fields ->
      List.map
        (fun (name, h) ->
          let what = Printf.sprintf "histograms[%S]" name in
          let bounds = int_list_of (what ^ ".bounds") (get what "bounds" h) in
          let counts = int_list_of (what ^ ".counts") (get what "counts" h) in
          if List.length counts <> List.length bounds + 1 then
            fail "%s: counts length is not bounds+1" what;
          ( name,
            {
              Metrics.h_bounds = bounds;
              h_counts = counts;
              h_sum = int_exn what "sum" h;
              h_samples = int_exn what "samples" h;
            } ))
        fields
    | _ -> fail "histograms is not an object"
  in
  {
    Metrics.counters = by_name counters;
    gauges = by_name gauges;
    histograms = by_name histograms;
  }

let metrics_of_json v =
  try Ok (metrics_of_json_exn v) with Bad msg -> Error msg
