(** Minimal JSON support: a hand-rolled value type, string escaping for
    the exporters, and a small recursive-descent parser used by the
    trace-export smoke test and the golden-file tests to verify that
    exported artifacts are well-formed without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Escaping (exporter side) -------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

(* --- Parser (validator side) --------------------------------------- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
           | Some code ->
             (* Keep it simple: store the code point raw if ASCII, else
                a replacement character; content fidelity beyond ASCII
                is not needed for validation. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_string buf "?"
           | None -> fail "bad \\u escape")
         | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Number f
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- Accessors for tests and the smoke checker --------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_number = function Number f -> Some f | _ -> None
let to_string = function String s -> Some s | _ -> None
