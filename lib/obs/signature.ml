(** Failure signatures: the triage key for bad injection outcomes.

    A signature is the 4-tuple (fault kind x target structure x death
    cause x recovery branch) -- the same axes ReHype's evaluation uses to
    classify per-failure forensics. Campaigns dedupe postmortem bundles
    by signature: thousands of failing runs typically collapse into a
    handful of signatures, and one bounded exemplar bundle per signature
    is enough for hand-triage.

    The canonical rendering is [key]: the four fields joined with ['|'],
    e.g. ["failstop|failstop|recovery_aborted|NiLiHype/aborted"]. Keys
    are the sort key for triage tables, so every field must be a stable,
    low-cardinality label (no free-form messages, no seeds). *)

type t = {
  fault : string; (* injected fault kind: "failstop" / "register" / "code" *)
  target : string; (* first corrupted structure, or "failstop" *)
  cause : string; (* canonical death cause, e.g. "recovery_aborted" *)
  branch : string; (* recovery branch taken, e.g. "NiLiHype/aborted" *)
}

let make ~fault ~target ~cause ~branch = { fault; target; cause; branch }

let sep = '|'

(* Field sanitation: keys must round-trip through [of_key], so the
   separator (and whitespace, for one-line greppability) is rewritten. *)
let clean s =
  if s = "" then "unknown"
  else
    String.map (fun c -> if c = sep || c = ' ' || c = '\n' then '_' else c) s

let key t =
  String.concat (String.make 1 sep)
    [ clean t.fault; clean t.target; clean t.cause; clean t.branch ]

let of_key s =
  match String.split_on_char sep s with
  | [ fault; target; cause; branch ] -> Some { fault; target; cause; branch }
  | _ -> None

let compare a b = String.compare (key a) (key b)
let equal a b = compare a b = 0
let pp fmt t = Format.pp_print_string fmt (key t)
