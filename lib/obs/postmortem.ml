(** Postmortem bundles and failure-signature triage.

    A bundle is the bounded, deterministic forensic record assembled when
    an injection run ends badly: the causal timeline (injection events,
    first corrupted-structure touch, detection, recovery outcome), the
    recovery-phase breakdown, the flight-ring tails (last-N hypercalls
    and journal appends, read back from rings that survive restore and
    in-place reboot), the {!Hyper.Ledger}-style resource diff, and a
    one-line repro. Assembly is lazy -- the harness only builds a bundle
    on a bad outcome -- and everything in it is a pure function of
    (seed, config), so bundles are byte-identical however the campaign
    was parallelised.

    Triage dedupes bundles by {!Signature}: per signature it keeps a
    count, a bounded set of the smallest failing seeds, and the exemplar
    bundle with the smallest captured seed. The merge is commutative and
    associative (counts sum; seed sets union-then-truncate; exemplar
    takes the minimum seed), which is what keeps `nlh-triage/1` output
    bit-identical for any [--jobs] / [--fanout] split. *)

(* Bounds keeping a bundle "bounded": big enough to triage with, small
   enough to ship thousands of. *)
let max_timeline = 24
let max_tail = 16
let seed_cap = 8

type t = {
  pm_signature : Signature.t;
  pm_outcome : string; (* outcome class name, e.g. "detected" *)
  pm_seed : int64;
  pm_repro : string; (* one-line CLI invocation reproducing the run *)
  pm_config : (string * string) list; (* mech / fault / setup / fanout... *)
  pm_timeline : (string * Event.t) list; (* (label, event), time order *)
  pm_first_touch : (string * int) option; (* first hypercall at/after injection *)
  pm_phases : (string * int) list; (* recovery phase -> simulated ns *)
  pm_hypercalls : (string * int) list; (* flight tail: (name, ns), oldest first *)
  pm_journal_tail : (string * int) list; (* flight tail: (entry kind, ns) *)
  pm_ledger_diff : (string * int) list; (* nonzero resource deltas *)
}

let take n l =
  let rec go n = function
    | x :: r when n > 0 -> x :: go (n - 1) r
    | _ -> []
  in
  go n l

let last n l = List.rev (take n (List.rev l))

(* Label the causally interesting events out of a run's trace ring:
   injections, detections (incl. audit violations), recovery steps and
   the outcome classification. Events are already oldest-first. *)
let label_event (e : Event.t) =
  match e.Event.payload with
  | Event.Fault_injected _ -> Some "injection"
  | Event.Detection _ -> Some "detection"
  | Event.Audit_violation _ -> Some "audit"
  | Event.Outcome_classified _ -> Some "outcome"
  | Event.Recovery_step _ -> Some "recovery"
  | _ -> None

let timeline_of_events events =
  let labeled =
    List.filter_map
      (fun e -> match label_event e with Some l -> Some (l, e) | None -> None)
      events
  in
  (* Keep the bounded *tail*: the end of the story is the part that
     explains the death. *)
  last max_timeline labeled

(* First corrupted-structure touch: the first hypervisor entry (from the
   crash-surviving hypercall flight ring) at or after the first
   injection event. With no injection event recorded (e.g. the ring was
   level-filtered) there is no touch to report. *)
let first_touch ~events ~hypercalls =
  let injected_at =
    List.find_map
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Fault_injected _ -> Some e.Event.time
        | _ -> None)
      events
  in
  match injected_at with
  | None -> None
  | Some t0 -> List.find_opt (fun (_, t) -> t >= t0) hypercalls

let make ~signature ~outcome ~seed ~repro ~config ~events ~phases ~hypercalls
    ~journal_tail ~ledger_diff =
  {
    pm_signature = signature;
    pm_outcome = outcome;
    pm_seed = seed;
    pm_repro = repro;
    pm_config = config;
    pm_timeline = timeline_of_events events;
    pm_first_touch = first_touch ~events ~hypercalls;
    pm_phases = phases;
    pm_hypercalls = last max_tail hypercalls;
    pm_journal_tail = last max_tail journal_tail;
    pm_ledger_diff = List.filter (fun (_, v) -> v <> 0) ledger_diff;
  }

(* ------------------------------------------------------------------ *)
(* JSON (schema nlh-postmortem/1)                                      *)
(* ------------------------------------------------------------------ *)

let add_named_ns_list buf key l =
  Json.escape_to buf key;
  Buffer.add_string buf ":[";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      Json.escape_to buf name;
      Buffer.add_string buf (Printf.sprintf ",\"ns\":%d}" ns))
    l;
  Buffer.add_char buf ']'

let add_bundle_body buf t =
  Buffer.add_string buf "\"signature\":";
  Json.escape_to buf (Signature.key t.pm_signature);
  Buffer.add_string buf ",\"outcome\":";
  Json.escape_to buf t.pm_outcome;
  Buffer.add_string buf (Printf.sprintf ",\"seed\":%Ld" t.pm_seed);
  Buffer.add_string buf ",\"repro\":";
  Json.escape_to buf t.pm_repro;
  Buffer.add_string buf ",\"config\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Json.escape_to buf k;
      Buffer.add_char buf ':';
      Json.escape_to buf v)
    t.pm_config;
  Buffer.add_string buf "},\"timeline\":[";
  List.iteri
    (fun i (label, (e : Event.t)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"label\":";
      Json.escape_to buf label;
      Buffer.add_string buf (Printf.sprintf ",\"ns\":%d,\"cpu\":%d" e.Event.time e.Event.cpu);
      Buffer.add_string buf ",\"event\":";
      Json.escape_to buf (Event.name e.Event.payload);
      Buffer.add_char buf ',';
      Export.add_args buf (Event.args e.Event.payload);
      Buffer.add_char buf '}')
    t.pm_timeline;
  Buffer.add_string buf "],\"first_touch\":";
  (match t.pm_first_touch with
  | None -> Buffer.add_string buf "null"
  | Some (name, ns) ->
    Buffer.add_string buf "{\"name\":";
    Json.escape_to buf name;
    Buffer.add_string buf (Printf.sprintf ",\"ns\":%d}" ns));
  Buffer.add_char buf ',';
  add_named_ns_list buf "recovery_phases" t.pm_phases;
  Buffer.add_char buf ',';
  add_named_ns_list buf "hypercalls" t.pm_hypercalls;
  Buffer.add_char buf ',';
  add_named_ns_list buf "journal_tail" t.pm_journal_tail;
  Buffer.add_string buf ",\"ledger_diff\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Json.escape_to buf k;
      Buffer.add_string buf (Printf.sprintf ":%d" v))
    t.pm_ledger_diff;
  Buffer.add_char buf '}'

let to_json ?(meta = []) t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"schema\":\"nlh-postmortem/1\"";
  if meta <> [] then begin
    Buffer.add_string buf ",\"meta\":{";
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_char buf ',';
        Export.add_arg buf a)
      meta;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf ',';
  add_bundle_body buf t;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Triage: signature-keyed dedupe with a commutative merge             *)
(* ------------------------------------------------------------------ *)

(* Alias: [to_json] is shadowed inside [Triage] by the triage-document
   writer. *)
let bundle_json = to_json

module Triage = struct
  type entry = {
    e_signature : Signature.t;
    e_count : int;
    e_seeds : int64 list; (* ascending, at most [seed_cap] smallest *)
    e_exemplar : (int64 * t) option; (* bundle captured at smallest seed *)
  }

  type table = {
    tbl : (string, entry) Hashtbl.t;
    cap : int; (* max retained seeds per signature *)
  }

  let default_seed_cap = seed_cap

  let create ?(seed_cap = default_seed_cap) () =
    { tbl = Hashtbl.create 16; cap = max 1 seed_cap }

  let mem tr sg = Hashtbl.mem tr.tbl (Signature.key sg)

  (* Bounded ascending insert: keeps the [cap] smallest seeds, so the
     per-worker sets union-then-truncate to exactly the set a sequential
     run would keep. *)
  let merge_seeds ~cap a b =
    let rec union a b =
      match (a, b) with
      | [], l | l, [] -> l
      | x :: ra, y :: rb ->
        if Int64.compare x y < 0 then x :: union ra b
        else if Int64.compare x y > 0 then y :: union a rb
        else x :: union ra rb
    in
    take cap (union a b)

  let better_exemplar a b =
    match (a, b) with
    | None, e | e, None -> e
    | Some (sa, _), Some (sb, _) -> if Int64.compare sa sb <= 0 then a else b

  let merge_entry ~cap a b =
    {
      e_signature = a.e_signature;
      e_count = a.e_count + b.e_count;
      e_seeds = merge_seeds ~cap a.e_seeds b.e_seeds;
      e_exemplar = better_exemplar a.e_exemplar b.e_exemplar;
    }

  (* The destination table's cap is authoritative, so merging a table
     built with a larger cap still lands within bounds. *)
  let add_entry tr key e =
    match Hashtbl.find_opt tr.tbl key with
    | None -> Hashtbl.add tr.tbl key { e with e_seeds = take tr.cap e.e_seeds }
    | Some prev -> Hashtbl.replace tr.tbl key (merge_entry ~cap:tr.cap prev e)

  let record ?bundle tr sg ~seed =
    add_entry tr (Signature.key sg)
      {
        e_signature = sg;
        e_count = 1;
        e_seeds = [ seed ];
        e_exemplar = Option.map (fun b -> (seed, b)) bundle;
      }

  let merge_into ~into src =
    Hashtbl.iter (fun key e -> add_entry into key e) src.tbl

  let total tr = Hashtbl.fold (fun _ e acc -> acc + e.e_count) tr.tbl 0
  let signatures tr = Hashtbl.length tr.tbl

  (* Canonical key-sorted view: the determinism tests compare these
     structurally, exemplar bundles included. *)
  let snapshot tr =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) tr.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let to_json ?(meta = []) tr =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"schema\":\"nlh-triage/1\"";
    if meta <> [] then begin
      Buffer.add_string buf ",\"meta\":{";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_char buf ',';
          Export.add_arg buf a)
        meta;
      Buffer.add_char buf '}'
    end;
    Buffer.add_string buf (Printf.sprintf ",\"total\":%d" (total tr));
    Buffer.add_string buf ",\"signatures\":[";
    List.iteri
      (fun i (key, e) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n{\"signature\":";
        Json.escape_to buf key;
        Buffer.add_string buf ",\"fault\":";
        Json.escape_to buf e.e_signature.Signature.fault;
        Buffer.add_string buf ",\"target\":";
        Json.escape_to buf e.e_signature.Signature.target;
        Buffer.add_string buf ",\"cause\":";
        Json.escape_to buf e.e_signature.Signature.cause;
        Buffer.add_string buf ",\"branch\":";
        Json.escape_to buf e.e_signature.Signature.branch;
        Buffer.add_string buf (Printf.sprintf ",\"count\":%d" e.e_count);
        Buffer.add_string buf ",\"seeds\":[";
        List.iteri
          (fun j s ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "%Ld" s))
          e.e_seeds;
        Buffer.add_string buf "],\"exemplar\":";
        (match e.e_exemplar with
        | None -> Buffer.add_string buf "null"
        | Some (_, b) ->
          Buffer.add_char buf '{';
          add_bundle_body buf b;
          Buffer.add_char buf '}');
        Buffer.add_char buf '}')
      (snapshot tr);
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  (* Filesystem-safe bundle filename for a signature key. *)
  let file_of_key key =
    "PM_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
          | _ -> '-')
        key
    ^ ".json"

  (* Write one exemplar bundle file per signature under [dir]; returns
     the (key-sorted) list of files written. *)
  let write_postmortems ~dir tr =
    (try if not (Sys.is_directory dir) then invalid_arg (dir ^ ": not a directory")
     with Sys_error _ -> Sys.mkdir dir 0o755);
    List.filter_map
      (fun (key, e) ->
        match e.e_exemplar with
        | None -> None
        | Some (_, b) ->
          let file = Filename.concat dir (file_of_key key) in
          let oc = open_out file in
          output_string oc (bundle_json b);
          close_out oc;
          Some file)
      (snapshot tr)
end
