(** NiLiHype: fast hypervisor recovery without reboot -- public API.

    This library reproduces the system of Zhou & Tamir, "Fast Hypervisor
    Recovery Without Reboot" (DSN 2018): microreset-based component-level
    recovery of a (simulated) Xen-like hypervisor, the microreboot-based
    ReHype baseline, the Gigan-style fault injector used to evaluate
    them, and the three synthetic benchmarks of the paper's evaluation.

    Quick start:
    {[
      let outcome =
        Core.Experiment.inject_one ~fault:Core.Experiment.Register
          ~mechanism:Core.Experiment.Nilihype ~seed:42L ()
      in
      Format.printf "%a@." Core.Experiment.pp_outcome outcome
    ]}

    Sub-module map (each re-exported from its implementation library):
    - {!Sim}: deterministic discrete-event substrate
    - {!Hw}: machine model (CPUs, APICs, IO-APIC)
    - {!Hyper}: the simulated hypervisor
    - {!Recovery}: microreset (NiLiHype) and microreboot (ReHype)
    - {!Workloads}: BlkBench / UnixBench / NetBench
    - {!Inject}: fault injection and campaigns *)

module Sim = Sim
module Hw = Hw
module Obs = Obs
module Hyper = Hyper
module Guest = Guest
module Recovery = Recovery
module Workloads = Workloads
module Inject = Inject

(** High-level system construction. *)
module System = struct
  type setup = One_appvm | Three_appvm

  type t = {
    hypervisor : Hyper.Hypervisor.t;
    clock : Sim.Clock.t;
    rng : Sim.Rng.t;
  }

  (* Boot a virtualized system: Xen-like hypervisor, PrivVM on CPU 0,
     AppVMs pinned to their own CPUs, idle domain. *)
  let boot ?(seed = 42L) ?(config = Hyper.Config.nilihype)
      ?(machine = Hw.Machine.campaign_config) ~setup () =
    let clock = Sim.Clock.create () in
    let hv_setup =
      match setup with
      | One_appvm -> Hyper.Hypervisor.One_appvm
      | Three_appvm -> Hyper.Hypervisor.Three_appvm
    in
    let hypervisor =
      Hyper.Hypervisor.boot ~mconfig:machine ~config ~setup:hv_setup clock
    in
    { hypervisor; clock; rng = Sim.Rng.create seed }

  let execute t activity = Hyper.Hypervisor.execute t.hypervisor t.rng activity
  let audit t = Hyper.Hypervisor.audit t.hypervisor
  let healthy t = Hyper.Hypervisor.audit_clean (audit t)

  (* Recover the hypervisor with the given mechanism; returns the
     recovery latency in simulated nanoseconds. *)
  let recover ?(enh = Recovery.Enhancement.full_set)
      ?(mechanism = Recovery.Engine.Nilihype) ?(detected_on = 0) t =
    let outcome =
      Recovery.Engine.recover mechanism t.hypervisor ~enh ~detected_on
    in
    outcome.Recovery.Engine.latency
end

(** One-call fault-injection experiments. *)
module Experiment = struct
  type fault = Failstop | Register | Code | Data
  type mechanism = Nilihype | Rehype

  let to_inject_fault = function
    | Failstop -> Inject.Fault.Failstop
    | Register -> Inject.Fault.Register
    | Code -> Inject.Fault.Code
    | Data -> Inject.Fault.Data

  let to_engine = function
    | Nilihype -> Recovery.Engine.Nilihype
    | Rehype -> Recovery.Engine.Rehype

  type outcome = Inject.Run.outcome

  let inject_one ?(setup = Inject.Run.Three_appvm) ~fault ~mechanism ~seed () =
    let cfg =
      {
        Inject.Run.default_config with
        Inject.Run.seed;
        fault = to_inject_fault fault;
        setup;
        mech = Inject.Run.Mech (to_engine mechanism, Recovery.Enhancement.full_set);
        hv_config =
          (match mechanism with
          | Nilihype -> Hyper.Config.nilihype
          | Rehype -> Hyper.Config.rehype);
      }
    in
    Inject.Run.run cfg

  let campaign ?(setup = Inject.Run.Three_appvm) ?(base_seed = 10_000L)
      ?(jobs = 1) ~fault ~mechanism ~runs () =
    let cfg =
      {
        Inject.Run.default_config with
        Inject.Run.fault = to_inject_fault fault;
        setup;
        mech = Inject.Run.Mech (to_engine mechanism, Recovery.Enhancement.full_set);
        hv_config =
          (match mechanism with
          | Nilihype -> Hyper.Config.nilihype
          | Rehype -> Hyper.Config.rehype);
      }
    in
    Inject.Campaign.run ~base_seed ~jobs ~n:runs cfg

  let pp_outcome fmt (o : outcome) =
    match o with
    | Inject.Run.Non_manifested | Inject.Run.Silent_corruption ->
      Format.pp_print_string fmt (Inject.Run.outcome_label o)
    | Inject.Run.Detected d ->
      Format.fprintf fmt "detected (%a); %s; recovery latency %a"
        Hyper.Crash.pp d.Inject.Run.detection
        (if d.Inject.Run.success then "successful recovery" else "recovery FAILED")
        Sim.Time.pp d.Inject.Run.recovery_latency
end

(** Recovery-latency measurement at full machine geometry (Tables II and
    III of the paper). *)
module Latency = struct
  (* Measure a clean-recovery latency breakdown on the reference 8 GB /
     8 CPU machine (no fault: the latency is dominated by machine
     geometry, not damage). *)
  let measure mechanism =
    let clock = Sim.Clock.create () in
    let config = Recovery.Engine.config mechanism in
    let hv =
      Hyper.Hypervisor.boot ~mconfig:Hw.Machine.default_config ~config
        ~setup:Hyper.Hypervisor.One_appvm clock
    in
    (* Enter detection context as a real recovery would. *)
    Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
    Recovery.Engine.recover mechanism hv ~enh:Recovery.Enhancement.full_set
      ~detected_on:0

  let nilihype_breakdown () =
    let o = measure Recovery.Engine.Nilihype in
    o.Recovery.Engine.breakdown

  let rehype_breakdown () =
    let o = measure Recovery.Engine.Rehype in
    o.Recovery.Engine.breakdown
end
