(** Parallel work pool over OCaml 5 domains.

    Campaigns are embarrassingly parallel: each injection run is a pure
    function of [(config, seed)], with no shared mutable state anywhere
    in the simulator (every run boots its own machine and derives every
    stochastic decision from its own splitmix64 stream). The pool
    exploits that with shared-nothing workers: [jobs] domains pull
    chunks of the index range [0, n) from a single [Atomic] cursor,
    accumulate into a worker-local accumulator, and the per-worker
    accumulators are merged at the end.

    Determinism contract: as long as [body] is a pure function of the
    index (per accumulator) and [merge] is commutative and associative,
    the final accumulator is identical for every value of [jobs] and
    [chunk] — only the wall-clock time changes. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Chunked self-scheduling: aim for ~4 chunks per worker, so cursor
   contention stays negligible while the tail imbalance is bounded by a
   quarter of a worker's share. No upper cap: large [n] simply gets
   proportionally larger chunks. *)
let default_chunk ~n ~jobs = max 1 (n / (jobs * 4))

(* [map_reduce ~jobs ~chunk ~n ~init ~body ~merge] folds [body acc i]
   for every [i] in [0, n) into worker-local accumulators created by
   [init], then combines them with [merge]. [jobs] defaults to
   [default_jobs ()]; [jobs <= 1] (or [n <= 1]) degrades to a plain
   sequential loop with no domain spawned at all. [finish], if given,
   runs on each accumulator in its own worker domain after that worker's
   last index -- the place to capture domain-local state (e.g.
   [Gc.minor_words], which is per-domain in OCaml 5) before the
   accumulator crosses to the caller for merging.

   The pool never runs more domains than the host has cores (unless
   [oversubscribe] is set): each domain's minor collection is a
   stop-the-world rendezvous of every domain, and when runnable domains
   outnumber cores that rendezvous waits on the OS scheduler --
   allocating work measures ~20x slower at 4 domains on 1 core. Capping
   at the core count costs nothing (the extra domains had no core to run
   on) and cannot change results: the accumulator is identical for every
   worker count. [oversubscribe] exists so tests can force the
   real multi-domain path on any host. *)
let map_reduce ?jobs ?chunk ?(oversubscribe = false)
    ?(finish : ('acc -> unit) option) ~n ~(init : unit -> 'acc)
    ~(body : 'acc -> int -> unit) ~(merge : 'acc -> 'acc -> 'acc) () : 'acc =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  let jobs = if oversubscribe then jobs else min jobs (default_jobs ()) in
  let finish = match finish with Some f -> f | None -> fun _ -> () in
  if n <= 0 then begin
    let acc = init () in
    finish acc;
    acc
  end
  else if jobs = 1 then begin
    let acc = init () in
    for i = 0 to n - 1 do
      body acc i
    done;
    finish acc;
    acc
  end
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~n ~jobs
    in
    let next = Atomic.make 0 in
    let worker () =
      let acc = init () in
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            body acc i
          done;
          loop ()
        end
      in
      loop ();
      finish acc;
      acc
    in
    (* jobs - 1 spawned domains; the calling domain is the last worker. *)
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    let acc = worker () in
    Array.fold_left (fun acc d -> merge acc (Domain.join d)) acc spawned
  end
