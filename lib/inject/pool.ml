(** Parallel work pool over OCaml 5 domains.

    Campaigns are embarrassingly parallel: each injection run is a pure
    function of [(config, seed)], with no shared mutable state anywhere
    in the simulator (every run boots its own machine and derives every
    stochastic decision from its own splitmix64 stream). The pool
    exploits that with shared-nothing workers: [jobs] domains pull
    chunks of the index range [0, n) from a single [Atomic] cursor,
    accumulate into a worker-local accumulator, and the per-worker
    accumulators are merged at the end.

    Determinism contract: as long as [body] is a pure function of the
    index (per accumulator) and [merge] is commutative and associative,
    the final accumulator is identical for every value of [jobs] and
    [chunk] — only the wall-clock time changes. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Chunked self-scheduling: aim for ~4 chunks per worker, so cursor
   contention stays negligible while the tail imbalance is bounded by a
   quarter of a worker's share. Capped at [default_chunk_cap]: beyond
   ~16k items the cursor is already uncontended, and soak campaigns want
   many small chunks for checkpoint granularity and tail balance rather
   than a handful of enormous ones. *)
let default_chunk_cap = 4096

let default_chunk ~n ~jobs =
  max 1 (min default_chunk_cap (n / (jobs * 4)))

(* [map_reduce ~jobs ~chunk ~n ~init ~body ~merge] folds [body acc i]
   for every [i] in [0, n) into worker-local accumulators created by
   [init slot], then combines them with [merge]. [init] receives the
   worker's slot index ([0] for the calling domain, [1 .. jobs-1] for
   spawned domains) and runs inside that worker's own domain, so it can
   both pick a slot-indexed resource (a pre-booted machine pool) and
   capture domain-local state. [jobs] defaults to [default_jobs ()];
   [jobs <= 1] (or [n <= 1]) degrades to a plain sequential loop with no
   domain spawned at all. [finish], if given, runs on each accumulator
   in its own worker domain after that worker's last index -- the place
   to capture domain-local state (e.g. [Gc.minor_words], which is
   per-domain in OCaml 5) before the accumulator crosses to the caller
   for merging.

   The pool never runs more domains than the host has cores (unless
   [oversubscribe] is set): each domain's minor collection is a
   stop-the-world rendezvous of every domain, and when runnable domains
   outnumber cores that rendezvous waits on the OS scheduler --
   allocating work measures ~20x slower at 4 domains on 1 core. Capping
   at the core count costs nothing (the extra domains had no core to run
   on) and cannot change results: the accumulator is identical for every
   worker count. [oversubscribe] exists so tests can force the
   real multi-domain path on any host. *)
let map_reduce ?jobs ?chunk ?(oversubscribe = false)
    ?(finish : ('acc -> unit) option) ~n ~(init : int -> 'acc)
    ~(body : 'acc -> int -> unit) ~(merge : 'acc -> 'acc -> 'acc) () : 'acc =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  let jobs = if oversubscribe then jobs else min jobs (default_jobs ()) in
  let finish = match finish with Some f -> f | None -> fun _ -> () in
  if n <= 0 then begin
    let acc = init 0 in
    finish acc;
    acc
  end
  else if jobs = 1 then begin
    let acc = init 0 in
    for i = 0 to n - 1 do
      body acc i
    done;
    finish acc;
    acc
  end
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~n ~jobs
    in
    let next = Atomic.make 0 in
    let worker slot =
      let acc = init slot in
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            body acc i
          done;
          loop ()
        end
      in
      loop ();
      finish acc;
      acc
    in
    (* jobs - 1 spawned domains; the calling domain is slot 0. *)
    let spawned =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    let acc = worker 0 in
    Array.fold_left (fun acc d -> merge acc (Domain.join d)) acc spawned
  end

(* [map_chunks] is the checkpointable sibling of [map_reduce]: the work
   range is pre-cut into [n_chunks] fixed chunks, workers claim whole
   chunks from an [Atomic] cursor, and each finished chunk's result is
   handed to [publish] under a single mutex -- so the coordinator can
   fold chunk results into a running aggregate and periodically persist
   it, knowing exactly which chunks the aggregate covers. [skip c] lets
   a resumed campaign leave already-aggregated chunks untouched (the
   cursor still walks every index so chunk identity never depends on
   which chunks were skipped). [should_stop] is polled before claiming
   each chunk; it simulates a mid-campaign kill in tests. In-flight
   chunks still publish after the stop trips, so up to [jobs - 1] extra
   chunks beyond the trigger may land in the checkpoint -- a resume
   skips those too, which is the point.

   [publish] and [finish] both run under the mutex: they are the only
   cross-domain communication, so [body] results must not be mutated by
   the worker after publishing. *)
let map_chunks ?jobs ?(oversubscribe = false)
    ?(should_stop = fun () -> false) ?(finish : ('w -> unit) option)
    ~n_chunks ~(skip : int -> bool) ~(init : int -> 'w)
    ~(body : 'w -> int -> 'a) ~(publish : int -> 'a -> unit) () : unit =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n_chunks) in
  let jobs = if oversubscribe then jobs else min jobs (default_jobs ()) in
  let finish = match finish with Some f -> f | None -> fun _ -> () in
  let lock = Mutex.create () in
  let next = Atomic.make 0 in
  let worker slot =
    let w = init slot in
    let rec loop () =
      if not (should_stop ()) then begin
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          if not (skip c) then begin
            let r = body w c in
            Mutex.protect lock (fun () -> publish c r)
          end;
          loop ()
        end
      end
    in
    loop ();
    Mutex.protect lock (fun () -> finish w)
  in
  if jobs = 1 then worker 0
  else begin
    let spawned =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned
  end
