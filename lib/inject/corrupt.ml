(** Applying error propagation: a manifested fault that does not trap
    immediately writes a wrong value somewhere. Each target below
    mutates the *real* simulated structure; whether the damage is later
    detected, silently tolerated, repaired by a recovery enhancement or
    fatal emerges from the hypervisor's own assertions and the recovery
    mechanics. *)

open Hyper

type target =
  | Pfn_validated_flip (* validation bit of a random frame *)
  | Pfn_use_count_skew (* reference counter off by a small delta *)
  | Sched_metadata (* per-vCPU redundant current-records scrambled *)
  | Timer_deadline (* a queued timer event fires at the wrong time *)
  | Timer_structure (* heap-order links smashed: NiLiHype-fatal *)
  | Heap_freelist (* allocator free list smashed: NiLiHype-fatal *)
  | Static_scalar (* non-lock static segment data: reboot-repairable *)
  | Domain_struct (* live domain struct payload: fatal for both *)
  | Privvm_critical (* the PrivVM itself is taken out *)
  | Recovery_handler (* the recovery routine's own state/code *)
  | Guest_frame (* guest-owned memory: at most one VM affected *)
  | Heap_header (* live heap object's header canary smashed *)
  | Pfn_type_scramble (* pfn descriptor type field bit-flipped *)
  | Pfn_tracker (* dirty-tracking metadata smashed: incremental scan unusable *)

let name = function
  | Pfn_validated_flip -> "pfn_validated_flip"
  | Pfn_use_count_skew -> "pfn_use_count_skew"
  | Sched_metadata -> "sched_metadata"
  | Timer_deadline -> "timer_deadline"
  | Timer_structure -> "timer_structure"
  | Heap_freelist -> "heap_freelist"
  | Static_scalar -> "static_scalar"
  | Domain_struct -> "domain_struct"
  | Privvm_critical -> "privvm_critical"
  | Recovery_handler -> "recovery_handler"
  | Guest_frame -> "guest_frame"
  | Heap_header -> "heap_header"
  | Pfn_type_scramble -> "pfn_type_scramble"
  | Pfn_tracker -> "pfn_tracker"

(* The full target space in a fixed order, indexable by the fuzzer's
   directed faults ({!Fault.directive.d_target}). Append-only: corpus
   entries persist indices, so reordering would silently change what an
   old repro does. *)
let all =
  [|
    Pfn_validated_flip;
    Pfn_use_count_skew;
    Sched_metadata;
    Timer_deadline;
    Timer_structure;
    Heap_freelist;
    Static_scalar;
    Domain_struct;
    Privvm_critical;
    Recovery_handler;
    Guest_frame;
    Heap_header;
    Pfn_type_scramble;
    Pfn_tracker;
  |]

let n_targets = Array.length all
let of_index i = all.(((i mod n_targets) + n_targets) mod n_targets)

let random_domain hv rng ~app_only =
  let doms =
    if app_only then Hypervisor.app_domains hv else Hypervisor.all_domains hv
  in
  match doms with
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))

let apply hv rng target =
  match target with
  | Pfn_validated_flip ->
    let frames = Hypervisor.frames hv in
    (* Bias towards frames that are actually in use, as wild writes land
       in hot data structures. *)
    let rec pick tries =
      let d = Pfn.get hv.Hypervisor.pfn (Sim.Rng.int rng frames) in
      if d.Pfn.use_count > 0 || tries > 16 then d else pick (tries + 1)
    in
    let d = pick 0 in
    Pfn.touch d;
    d.Pfn.validated <- not d.Pfn.validated
  | Pfn_use_count_skew ->
    let frames = Hypervisor.frames hv in
    let rec pick tries =
      let d = Pfn.get hv.Hypervisor.pfn (Sim.Rng.int rng frames) in
      if d.Pfn.use_count > 0 || tries > 16 then d else pick (tries + 1)
    in
    let d = pick 0 in
    let delta = [| -2; -1; 1; 2 |].(Sim.Rng.int rng 4) in
    Pfn.touch d;
    d.Pfn.use_count <- d.Pfn.use_count + delta
  | Sched_metadata ->
    let vcpus = Hypervisor.all_vcpus hv in
    if vcpus <> [] then begin
      let v = List.nth vcpus (Sim.Rng.int rng (List.length vcpus)) in
      match Sim.Rng.int rng 3 with
      | 0 -> v.Domain.is_current <- not v.Domain.is_current
      | 1 -> v.Domain.curr_slot <- Sim.Rng.int rng (Hypervisor.cpu_count hv)
      | _ ->
        v.Domain.runstate <-
          (if v.Domain.runstate = Domain.Running then Domain.Runnable
           else Domain.Running)
    end
  | Timer_deadline ->
    (* A deadline register gets a wrong value: the event fires late (or
       early); heap order is preserved by re-sorting, as the comparison
       code still works on the wrong value. *)
    let timers = hv.Hypervisor.timers in
    (match Timer_heap.peek timers with
    | Some e ->
      Timer_heap.touch e;
      e.Timer_heap.deadline <-
        e.Timer_heap.deadline + Sim.Time.us (Sim.Rng.int rng 5000)
    | None -> ())
  | Timer_structure -> Timer_heap.corrupt_structure hv.Hypervisor.timers
  | Heap_freelist -> Heap.corrupt_freelist hv.Hypervisor.heap "wild write to chunk header"
  | Static_scalar ->
    hv.Hypervisor.static_data_ok <- false;
    hv.Hypervisor.static_data_note <- "wild write to static data segment"
  | Domain_struct ->
    (match random_domain hv rng ~app_only:false with
    | Some d -> d.Domain.struct_ok <- false
    | None -> ())
  | Privvm_critical ->
    let d = Hypervisor.privvm hv in
    d.Domain.guest_failed <- true
  | Recovery_handler -> hv.Hypervisor.recovery_handler_ok <- false
  | Guest_frame ->
    (match random_domain hv rng ~app_only:true with
    | Some d ->
      if Sim.Rng.bool rng then d.Domain.guest_sdc <- true
      else d.Domain.guest_failed <- true
    | None -> ())
  | Heap_header ->
    (* Flip the header canary of a live heap object. The object keeps
       working until either its owner frees it (panic on the corrupted
       header) or the end-of-run audit walks the heap -- damage that
       ReHype's reboot-time heap reconstruction repairs but a microreset
       preserves. The pick is by ascending oid, not hashtable order, so
       it depends only on the rng stream and the allocation history. *)
    let objs = ref [] in
    Heap.iter_live hv.Hypervisor.heap (fun o -> objs := o :: !objs);
    let objs =
      List.sort (fun (a : Heap.obj) b -> compare a.Heap.oid b.Heap.oid) !objs
    in
    (match objs with
    | [] -> ()
    | l ->
      let o = List.nth l (Sim.Rng.int rng (List.length l)) in
      Heap.corrupt_header o)
  | Pfn_type_scramble ->
    (* Bit-flip in a pfn descriptor's type field: the frame's recorded
       type no longer matches its references. [scan_and_fix] repairs the
       disagreement at recovery time; until then get_page/put_page and
       the allocator can trip over it. *)
    let frames = Hypervisor.frames hv in
    let rec pick tries =
      let d = Pfn.get hv.Hypervisor.pfn (Sim.Rng.int rng frames) in
      if d.Pfn.use_count > 0 || tries > 16 then d else pick (tries + 1)
    in
    let d = pick 0 in
    Pfn.touch d;
    d.Pfn.ptype <-
      (match d.Pfn.ptype with
      | Pfn.Free -> Pfn.Writable
      | Pfn.Writable -> Pfn.Page_table
      | Pfn.Page_table -> Pfn.Writable
      | Pfn.Segdesc -> Pfn.Shared
      | Pfn.Shared -> Pfn.Segdesc
      | Pfn.Xenheap -> Pfn.Free)
  | Pfn_tracker ->
    (* A wild write lands in the dirty-tracking metadata itself. No
       descriptor value changes, but the incremental consistency scan can
       no longer trust the dirty list to cover all damage -- recovery
       must fall back to the full scan. Snapshot restores re-establish a
       trusted baseline, so a rewind clears it. *)
    Pfn.invalidate_tracking hv.Hypervisor.pfn
