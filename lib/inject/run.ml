(** A single fault-injection run: boot the target system, run the
    benchmarks, inject one fault through the two-level trigger, let
    detection and recovery play out, then classify the outcome
    (Section VI-C / VII-A). *)

open Hyper

type setup = One_appvm of Workloads.Workload.kind | Three_appvm

type mech =
  | No_recovery
  | Mech of Recovery.Engine.mechanism * Recovery.Enhancement.set

(* Which execution threads microreset discards (the design choice of
   Section III-C). The paper's choice is all threads; the alternative --
   discard only the faulting CPU's thread -- leaves the surviving
   threads to collide with the recovery process's global state changes
   (released locks, cleared IRQ counts). *)
type discard_scope = Scope_all_threads | Scope_faulting_only

type config = {
  seed : int64;
  fault : Fault.t;
  setup : setup;
  mech : mech;
  hv_config : Config.t;
  mconfig : Hw.Machine.config;
  warmup_activities : int;
  post_activities : int;
  trigger_window_steps : int; (* second-level trigger range, in steps *)
  discard_scope : discard_scope;
  vcpus_per_cpu : int; (* >1 explores the paper's future-work configs *)
  directive : Fault.directive option;
      (* [Some d]: apply exactly the fault point [d] instead of sampling
         a manifestation -- the fuzzer's mutation hook. Post-warmup only,
         so runs sharing a seed share a warmup whatever their directives. *)
}

let default_config =
  {
    seed = 1L;
    fault = Fault.Failstop;
    setup = Three_appvm;
    mech = Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
    hv_config = Config.nilihype;
    mconfig = Hw.Machine.campaign_config;
    warmup_activities = 150;
    post_activities = 900;
    trigger_window_steps = 2000;
    discard_scope = Scope_all_threads;
    vcpus_per_cpu = 1;
    directive = None;
  }

type outcome =
  | Non_manifested
  | Silent_corruption
  | Detected of detected

and detected = {
  detection : Crash.detection;
  recovered : bool; (* the hypervisor survived and operates correctly *)
  app_vms_affected : int; (* initial AppVMs failed or corrupted *)
  new_vm_ok : bool; (* 3AppVM: post-recovery VM creation + BlkBench *)
  success : bool; (* the paper's per-setup success definition *)
  no_vmf : bool; (* detected errors with no AppVM failure at all *)
  recovery_latency : Sim.Time.ns;
  breakdown : Latency_model.breakdown option; (* per-phase recovery spans *)
  failure_reason : string option; (* why recovery failed, when it did *)
}

let outcome_class = function
  | Non_manifested -> `Non_manifested
  | Silent_corruption -> `Sdc
  | Detected _ -> `Detected

(* The one canonical outcome-class name, shared by display code, metric
   names and the [Outcome_classified] event payload. *)
let outcome_name = function
  | Non_manifested -> "non_manifested"
  | Silent_corruption -> "sdc"
  | Detected _ -> "detected"

(* Human-readable variant of the same classification. *)
let outcome_label = function
  | Non_manifested -> "non-manifested"
  | Silent_corruption -> "silent data corruption"
  | Detected _ -> "detected"

(* Mutable state threaded through a run. *)
type state = {
  cfg : config;
  rng : Sim.Rng.t;
  hv : Hypervisor.t;
  mix : Workloads.System_mix.t;
  benchmarks : Workloads.Workload.t list;
  mutable last_cpu : int; (* CPU of the most recent hypervisor step *)
  mutable fault_applied : bool;
  mutable first_target : string option;
      (* first structure the fault corrupted ("failstop" for pure
         crashes): the target axis of the failure signature *)
}

let hv_setup_of cfg =
  match cfg.setup with
  | One_appvm _ -> Hypervisor.One_appvm
  | Three_appvm -> Hypervisor.Three_appvm

(* Build the per-run state around an already-booted hypervisor. Shared by
   the fresh-boot path and the worker-reuse path, so both runs see the
   same benchmarks/mix construction. *)
let make_state cfg rng (hv : Hypervisor.t) =
  let vcpus = cfg.vcpus_per_cpu in
  let benchmarks =
    match cfg.setup with
    | One_appvm kind -> [ Workloads.Workload.create ~vcpus kind ~domid:1 ]
    | Three_appvm ->
      [
        Workloads.Workload.create ~vcpus Workloads.Workload.Unixbench ~domid:1;
        Workloads.Workload.create ~vcpus Workloads.Workload.Netbench ~domid:2;
      ]
  in
  let active_cpus =
    List.sort_uniq compare
      (List.concat_map
         (fun (d : Domain.t) ->
           Array.to_list d.Domain.vcpus
           |> List.map (fun (v : Domain.vcpu) -> v.Domain.processor))
         (List.filter
            (fun (d : Domain.t) -> not d.Domain.is_idle)
            (Hypervisor.all_domains hv)))
  in
  let blk_dom =
    List.find_opt (fun (b : Workloads.Workload.t) -> b.kind = Workloads.Workload.Blkbench) benchmarks
    |> Option.map (fun (b : Workloads.Workload.t) -> b.domid)
  in
  let net_dom =
    List.find_opt (fun (b : Workloads.Workload.t) -> b.kind = Workloads.Workload.Netbench) benchmarks
    |> Option.map (fun (b : Workloads.Workload.t) -> b.domid)
  in
  let mix =
    Workloads.System_mix.create ~benchmarks ~active_cpus ~blk_dom ~net_dom
  in
  {
    cfg;
    rng;
    hv;
    mix;
    benchmarks;
    last_cpu = 0;
    fault_applied = false;
    first_target = None;
  }

(* Boot the hypervisor for [cfg] on a fresh clock. The single boot
   construction shared by the fresh-boot path ([boot_state]), the worker
   path ([prepare]) and the worker's geometry-change rebuild, so all
   three see the same machine. *)
let boot_hv ?recorder (cfg : config) =
  let clock = Sim.Clock.create () in
  Hypervisor.boot ~mconfig:cfg.mconfig ?obs:recorder
    ~vcpus_per_cpu:cfg.vcpus_per_cpu ~config:cfg.hv_config
    ~setup:(hv_setup_of cfg) clock

let boot_state ?recorder cfg =
  make_state cfg (Sim.Rng.create cfg.seed) (boot_hv ?recorder cfg)

(* Execute one sampled activity. Timer ticks fire when the APIC deadline
   arrives, so the clock jumps there first; a CPU whose APIC is disarmed
   never gets another tick. Activities are separated by an
   exponential-ish think-time so software timer deadlines actually come
   due during a run. *)
let run_one_activity st =
  let gap = Sim.Time.us (30 + Sim.Rng.int st.rng 340) in
  Sim.Clock.advance_by st.hv.Hypervisor.clock gap;
  let activity = Workloads.System_mix.sample st.rng st.mix in
  match activity with
  | Hypervisor.Timer_tick cpu ->
    let apic = (Hw.Machine.cpu st.hv.Hypervisor.machine cpu).Hw.Cpu.apic in
    (match apic.Hw.Apic.timer_deadline with
    | None -> () (* disarmed: this CPU gets no more timer interrupts *)
    | Some d ->
      (* The tick happens when the one-shot deadline arrives. *)
      if d > Sim.Clock.now st.hv.Hypervisor.clock then
        Sim.Clock.advance_to st.hv.Hypervisor.clock d;
      Hypervisor.execute st.hv st.rng activity)
  | _ -> Hypervisor.execute st.hv st.rng activity

(* Track which CPU executes each step so detection knows where it was. *)
let install_cpu_tracker st =
  st.hv.Hypervisor.step_hook <-
    Some (fun _hv _activity _idx _name cpu -> st.last_cpu <- cpu)

(* Arm the two-level trigger: after [countdown] further hypervisor
   steps, the sampled manifestation is applied -- or, when the config
   carries a {!Fault.directive}, exactly that fault point. A directed
   fault draws the corruption's internal choices (which frame, which
   delta) from its own splitmix stream seeded by [d_payload] instead of
   the run stream: mutating the payload bits explores different concrete
   corruptions of the same target against the identical trigger state. *)
let arm_fault st =
  let directed = st.cfg.directive in
  let manifestation =
    match directed with
    | None -> Profile.sample_manifestation st.rng st.cfg.fault
    | Some d ->
      {
        Profile.corruptions = (if d.Fault.d_target >= 0 then 1 else 0);
        crash_now =
          (match d.Fault.d_crash with
          | Fault.Crash_none -> `No
          | Fault.Crash_panic -> `Panic
          | Fault.Crash_hang -> `Hang);
        guest_hit = false;
      }
  in
  let countdown =
    ref
      (match directed with
      | Some d -> 1 + (d.Fault.d_window mod max 1 st.cfg.trigger_window_steps)
      | None -> 1 + Sim.Rng.int st.rng st.cfg.trigger_window_steps)
  in
  st.hv.Hypervisor.step_hook <-
    Some
      (fun hv activity _idx step_name cpu ->
        st.last_cpu <- cpu;
        if not st.fault_applied then begin
          decr countdown;
          if !countdown <= 0 then begin
            st.fault_applied <- true;
            let note_fault target_name =
              if st.first_target = None then st.first_target <- Some target_name;
              Obs.Metrics.incr hv.Hypervisor.obs.Obs.Recorder.faults_injected;
              Obs.Recorder.event hv.Hypervisor.obs
                ~time:(Sim.Clock.now hv.Hypervisor.clock)
                ~cpu Obs.Event.Warn
                (Obs.Event.Fault_injected { target = target_name })
            in
            for _ = 1 to manifestation.Profile.corruptions do
              match directed with
              | Some d ->
                let target = Corrupt.of_index d.Fault.d_target in
                note_fault (Corrupt.name target);
                Corrupt.apply hv (Sim.Rng.create d.Fault.d_payload) target
              | None ->
                let target =
                  Profile.sample_corruption_target_for st.rng st.cfg.fault
                in
                note_fault (Corrupt.name target);
                Corrupt.apply hv st.rng target
            done;
            if manifestation.Profile.guest_hit then begin
              note_fault (Corrupt.name Corrupt.Guest_frame);
              Corrupt.apply hv st.rng Corrupt.Guest_frame
            end;
            (match manifestation.Profile.crash_now with
            | `Panic | `Hang -> note_fault "failstop"
            | `No -> ());
            match manifestation.Profile.crash_now with
            | `Panic ->
              Crash.panic "injected fault on cpu%d in %s/%s" cpu
                (Hypervisor.activity_name activity)
                step_name
            | `Hang ->
              Crash.hang "injected fault wedges cpu%d in %s" cpu
                (Hypervisor.activity_name activity)
            | `No -> ()
          end
        end)

(* Model the execution threads in flight on the *other* CPUs at
   detection: with some probability each was mid-request; its thread is
   abandoned with partial state in place. Returns the CPUs that were
   busy (needed by the Scope_faulting_only ablation). *)
let abandon_concurrent_work st ~faulted_cpu =
  let busy = ref [] in
  Array.iter
    (fun cpu ->
      if cpu <> faulted_cpu
         && Sim.Rng.float st.rng 1.0 < Profile.concurrent_busy_prob
      then begin
        busy := cpu :: !busy;
        let bench_on_cpu =
          List.find_opt
            (fun (b : Workloads.Workload.t) ->
              match Hypervisor.domain st.hv b.Workloads.Workload.domid with
              | Some d ->
                Array.exists
                  (fun (v : Domain.vcpu) -> v.Domain.processor = cpu)
                  d.Domain.vcpus
              | None -> false)
            st.benchmarks
        in
        let activity =
          match bench_on_cpu with
          | Some b when Sim.Rng.float st.rng 1.0 < 0.7 ->
            Workloads.Workload.sample_activity st.rng b
          | _ -> Hypervisor.Timer_tick cpu
        in
        let stop_at = Sim.Rng.int st.rng 14 in
        (* The concurrent thread may itself trip over state the fault
           already damaged (e.g. spin on a dead lock); either way it is
           abandoned here, partial state left in place. *)
        (try Hypervisor.execute_partial st.hv st.rng activity ~stop_at
         with Crash.Hypervisor_crash _ -> ())
      end)
    st.mix.Workloads.System_mix.active_cpus;
  !busy

(* The error-detection path runs in exception/NMI context on every CPU
   (the detecting CPU traps; the others are stopped by IPI), so each
   CPU's interrupt-nesting counter is bumped and stays bumped when the
   threads are discarded -- which is why "Clear IRQ count" is the very
   first enhancement needed. *)
let enter_detection_context st =
  Array.iter Percpu.irq_enter st.hv.Hypervisor.percpu

let count_affected_app_vms st ~initial_app_domids =
  List.fold_left
    (fun acc domid ->
      match Hypervisor.domain st.hv domid with
      | Some d -> if Domain.affected d then acc + 1 else acc
      | None -> acc + 1)
    0 initial_app_domids

(* Run the post-recovery phase: resume the VMs (retrying abandoned
   interactions), run the benchmarks to completion, and in the 3AppVM
   setup create the third AppVM and run BlkBench in it. Returns
   [(hv_ok, new_vm_ok)]. *)
let post_recovery_phase st =
  let hv = st.hv in
  (* The resumed benchmarks are workload again; the final audit gets its
     own allocation phase. *)
  Obs.Recorder.alloc_phase hv.Hypervisor.obs Obs.Recorder.Workload;
  let hv_ok = ref true in
  let new_vm_ok = ref true in
  let reason = ref None in
  let fail why = if !reason = None then reason := Some why in
  (try
     (* Retry interactions abandoned at detection. *)
     List.iter
       (fun (v : Domain.vcpu) ->
         if v.Domain.lost_work then begin
           (match Hypervisor.domain hv v.Domain.domid with
           | Some d -> d.Domain.guest_failed <- true
           | None -> ());
           v.Domain.lost_work <- false
         end;
         if v.Domain.retry_pending then Hypervisor.retry_hypercall hv st.rng v;
         if v.Domain.syscall_retry_pending then Hypervisor.retry_syscall hv v;
         if not v.Domain.fsgs_valid then begin
           (* Guest processes resumed with clobbered FS/GS crash. *)
           match Hypervisor.domain hv v.Domain.domid with
           | Some d -> d.Domain.guest_failed <- true
           | None -> ()
         end)
       (Hypervisor.all_vcpus hv);
     (* Interrupt vectors left in service block further delivery of that
        vector. A blocked timer vector is equivalent to a disarmed APIC
        (the CPU starves); blocked device vectors stall the paravirtual
        I/O of every VM, failing the benchmarks. *)
     Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
         let in_service = c.Hw.Cpu.apic.Hw.Apic.in_service in
         if List.exists (fun v -> v = 0x31 || v = 0x32) in_service then
           List.iter
             (fun (b : Workloads.Workload.t) ->
               match Hypervisor.domain hv b.Workloads.Workload.domid with
               | Some d -> d.Domain.guest_failed <- true
               | None -> ())
             st.benchmarks;
         if List.mem 0xf0 in_service then Hw.Apic.disarm_timer c.Hw.Cpu.apic);
     (* A CPU whose APIC timer was left disarmed gets no timer
        interrupts: the vCPU pinned there starves. If that CPU belongs
        to the PrivVM the platform is dead. *)
     Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
         if not (Hw.Apic.timer_armed c.Hw.Cpu.apic) then begin
           let victims =
             List.filter
               (fun (v : Domain.vcpu) -> v.Domain.processor = c.Hw.Cpu.id)
               (Hypervisor.all_vcpus hv)
           in
           List.iter
             (fun (v : Domain.vcpu) ->
               match Hypervisor.domain hv v.Domain.domid with
               | Some d ->
                 if d.Domain.privileged then begin
                   hv_ok := false;
                   fail "PrivVM CPU starved: APIC timer disarmed"
                 end
                 else d.Domain.guest_failed <- true
               | None -> ())
             victims
         end);
     (* Resume the benchmarks for their remaining duration. *)
     for _ = 1 to st.cfg.post_activities do
       if !hv_ok then run_one_activity st
     done;
     (* The PrivVM must still work for the platform to be healthy. *)
     if (Hypervisor.privvm hv).Domain.guest_failed then begin
       hv_ok := false;
       fail "PrivVM failed"
     end;
     (* 3AppVM: create the third AppVM and run BlkBench in it. *)
     (match st.cfg.setup with
     | Three_appvm ->
       if !hv_ok then begin
         (try
            Hypervisor.execute hv st.rng
              (Hypervisor.Hypercall
                 { domid = 0; vid = 0; kind = Hypercalls.Domctl_create_domain })
          with Crash.Hypervisor_crash _ -> new_vm_ok := false);
         (match
            List.find_opt
              (fun (d : Domain.t) ->
                (not d.Domain.privileged)
                && (not d.Domain.is_idle)
                && d.Domain.domid >= 3)
              (Hypervisor.all_domains hv)
          with
         | Some d when !new_vm_ok ->
           let blk = Workloads.Workload.create Workloads.Workload.Blkbench ~domid:d.Domain.domid in
           (try
              for _ = 1 to 150 do
                Hypervisor.execute hv st.rng
                  (Workloads.Workload.sample_activity st.rng blk)
              done;
              if Domain.affected d then new_vm_ok := false
            with Crash.Hypervisor_crash _ -> new_vm_ok := false)
         | Some _ | None -> new_vm_ok := false)
       end
       else new_vm_ok := false
     | One_appvm _ -> ());
     (* Final health check: residual inconsistencies that the benchmarks
        did not happen to touch still leave the hypervisor latently
        broken. *)
     Obs.Recorder.alloc_phase hv.Hypervisor.obs Obs.Recorder.Audit;
     if !hv_ok then begin
       let report = Hypervisor.audit hv in
       if not (Hypervisor.audit_clean report) then begin
         hv_ok := false;
         (* Violations also land as typed events + per-kind [audit.*]
            counters, not just this formatted failure note. *)
         Hypervisor.record_audit_violations hv report;
         fail (Format.asprintf "residual inconsistency: %a" Hypervisor.pp_audit report)
       end
     end
   with Crash.Hypervisor_crash d ->
     (* The hypervisor failed again after recovery. *)
     hv_ok := false;
     fail ("post-recovery crash: " ^ Crash.describe d));
  (!hv_ok, !new_vm_ok, !reason)

(* First half of a run: warm the machine up to the fault trigger point.
   Returns the AppVM domids present before injection (the set the
   outcome classification counts casualties against). Split from
   [finish_prepared] so clone fan-out can drive one machine to exactly
   this point, snapshot it, and replay many fault variants from the
   image. *)
let warmup_prepared st =
  let cfg = st.cfg in
  let obs = st.hv.Hypervisor.obs in
  install_cpu_tracker st;
  (* Boot (everything since [alloc_begin]) ends here; the warmup
     activities are workload. *)
  Obs.Recorder.alloc_phase obs Obs.Recorder.Workload;
  (* Warm-up: the first-level trigger fires well after benchmark start. *)
  for _ = 1 to cfg.warmup_activities do
    run_one_activity st
  done;
  List.map
    (fun (d : Domain.t) -> d.Domain.domid)
    (Hypervisor.app_domains st.hv)

(* Second half: arm the trigger, run to detection, recover, classify. *)
let finish_prepared st ~initial_app_domids : outcome =
  let cfg = st.cfg in
  let obs = st.hv.Hypervisor.obs in
  (* The armed trigger window counts as injection, detected or not. *)
  Obs.Recorder.alloc_phase obs Obs.Recorder.Injection;
  arm_fault st;
  (* Run until detection or end of benchmark. *)
  let detection = ref None in
  (try
     for _ = 1 to cfg.post_activities do
       run_one_activity st
     done
   with Crash.Hypervisor_crash d -> detection := Some d);
  let out =
    match !detection with
    | None ->
      st.hv.Hypervisor.step_hook <- None;
      let any_sdc =
        List.exists
          (fun (d : Domain.t) -> d.Domain.guest_sdc || d.Domain.guest_failed)
          (Hypervisor.app_domains st.hv)
      in
      if any_sdc then Silent_corruption else Non_manifested
    | Some det ->
      st.hv.Hypervisor.step_hook <- None;
      Obs.Recorder.alloc_phase obs Obs.Recorder.Detection;
      let faulted_cpu = st.last_cpu in
      Obs.Metrics.incr obs.Obs.Recorder.detections;
      Obs.Recorder.event obs
        ~time:(Sim.Clock.now st.hv.Hypervisor.clock)
        ~cpu:faulted_cpu Obs.Event.Error
        (Obs.Event.Detection
           {
             kind = (match det with Crash.Panic _ -> "panic" | Crash.Hang _ -> "hang");
             message = Crash.describe det;
           });
      Sim.Clock.advance_by st.hv.Hypervisor.clock
        (Crash.detection_latency ~config:st.hv.Hypervisor.config det);
    let busy_cpus = abandon_concurrent_work st ~faulted_cpu in
    enter_detection_context st;
    Obs.Recorder.alloc_phase obs Obs.Recorder.Recovery;
    let recovery_result =
      match cfg.mech with
      | No_recovery -> Error "no recovery mechanism"
      | Mech (mechanism, enh) -> (
        try Ok (Recovery.Engine.recover mechanism st.hv ~enh ~detected_on:faulted_cpu)
        with Crash.Hypervisor_crash d -> Error (Crash.describe d))
    in
    (* Scope_faulting_only ablation: the surviving threads on the other
       CPUs resume after recovery and collide with its global state
       changes -- their IRQ-nesting counters were zeroed while they were
       still inside handlers, and the locks they held were force-
       released, so their epilogues trip assertions. *)
    let recovery_result =
      match (recovery_result, cfg.discard_scope, busy_cpus) with
      | Ok _, Scope_faulting_only, _ :: _ ->
        Error
          (Printf.sprintf
             "surviving thread on cpu%d: irq_exit underflow after recovery \
              cleared its nesting counter"
             (List.hd busy_cpus))
      | (Ok _ | Error _), _, _ -> recovery_result
    in
    (match recovery_result with
    | Error why ->
      Detected
        {
          detection = det;
          recovered = false;
          app_vms_affected = List.length initial_app_domids;
          new_vm_ok = false;
          success = false;
          no_vmf = false;
          recovery_latency = 0;
          breakdown = None;
          failure_reason = Some ("recovery aborted: " ^ why);
        }
    | Ok recovery ->
      let hv_ok, new_vm_ok, reason = post_recovery_phase st in
      let app_vms_affected =
        if hv_ok then count_affected_app_vms st ~initial_app_domids
        else List.length initial_app_domids
      in
      let success, no_vmf =
        match cfg.setup with
        | One_appvm _ ->
          let s = hv_ok && app_vms_affected = 0 in
          (s, s)
        | Three_appvm ->
          ( hv_ok && new_vm_ok && app_vms_affected <= 1,
            hv_ok && new_vm_ok && app_vms_affected = 0 )
      in
      Detected
        {
          detection = det;
          recovered = hv_ok;
          app_vms_affected;
          new_vm_ok;
          success;
          no_vmf;
          recovery_latency = recovery.Recovery.Engine.latency;
          breakdown = Some recovery.Recovery.Engine.breakdown;
          failure_reason = reason;
        })
  in
  (* Classify: one counter per outcome class, the latency histogram for
     completed recoveries, and a terminal event closing the timeline. The
     instruments are the recorder's cached fields -- no name lookup. *)
  let now = Sim.Clock.now st.hv.Hypervisor.clock in
  (match out with
  | Non_manifested -> Obs.Metrics.incr obs.Obs.Recorder.outcome_non_manifested
  | Silent_corruption -> Obs.Metrics.incr obs.Obs.Recorder.outcome_sdc
  | Detected d ->
    Obs.Metrics.incr obs.Obs.Recorder.outcome_detected;
    if d.recovery_latency > 0 then begin
      Obs.Metrics.observe obs.Obs.Recorder.recovery_latency_ms
        (d.recovery_latency / 1_000_000);
      Obs.Metrics.observe obs.Obs.Recorder.recovery_latency_ns
        d.recovery_latency
    end;
    (* Per-phase recovery timings into the log-bucket histogram: the
       quantile source for "where does the recovery tail come from". *)
    (match d.breakdown with
    | Some b ->
      List.iter
        (fun (_, ns) ->
          if ns > 0 then
            Obs.Metrics.observe obs.Obs.Recorder.recovery_phase_ns ns)
        b.Latency_model.steps
    | None -> ()));
  Obs.Metrics.observe obs.Obs.Recorder.run_latency_ns now;
  Obs.Metrics.set obs.Obs.Recorder.run_end_time_ns now;
  Obs.Recorder.event obs ~time:now Obs.Event.Info
    (Obs.Event.Outcome_classified { name = outcome_name out });
  Obs.Recorder.alloc_close obs;
  out

(* The run proper, over an already-booted (fresh or restored) machine. *)
let run_prepared st : outcome =
  finish_prepared st ~initial_app_domids:(warmup_prepared st)

(* Execute one complete fault-injection run on a freshly booted machine.
   [recorder] (optional) is the observability recorder the run's
   hypervisor reports into; callers that want the trace/spans/metrics of
   the run pass one and inspect it after. *)
let run_obs ?recorder (cfg : config) : outcome =
  (match recorder with
  | Some r -> Obs.Recorder.alloc_begin r
  | None -> ());
  run_prepared (boot_state ?recorder cfg)

let run (cfg : config) : outcome = run_obs cfg

(* ------------------------------------------------------------------ *)
(* Worker reuse: one long-lived machine, reset in place between runs    *)
(* ------------------------------------------------------------------ *)

(* A worker owns one machine plus the per-run scratch (RNG, recorder)
   and reuses them across runs: [execute_into] rewinds everything by
   restoring a golden post-boot snapshot instead of reconstructing it
   (or even re-walking every table the way [Hypervisor.reboot_in_place]
   does), cutting the per-run reset to O(state the previous run touched)
   -- which is what lets parallel campaigns scale instead of serialising
   on the OCaml 5 stop-the-world minor GC. The contract (enforced by
   tests): a run through [execute_into] is observationally identical to
   [run_obs] on a fresh machine with the same config -- outcomes, stats
   and metric snapshots all match bit for bit, including after runs that
   died unrecovered.

   [w_boot_key] is the part of the config a golden image bakes in: runs
   that share it rewind through [Hypervisor.restore]; a mismatch falls
   back to reset-in-place (or a full boot when the machine geometry
   itself changed) and retakes the image. *)
type boot_key = {
  bk_hv_config : Config.t;
  bk_setup : Hypervisor.setup;
  bk_vcpus_per_cpu : int;
}

type worker = {
  w_recorder : Obs.Recorder.t option;
  w_rng : Sim.Rng.t;
  mutable w_mconfig : Hw.Machine.config; (* geometry the machine was built with *)
  mutable w_hv : Hypervisor.t;
  mutable w_boot_key : boot_key;
  mutable w_image : Hypervisor.image; (* golden snapshot, boot or trigger point *)
  mutable w_image_is_boot : bool;
      (* [w_image] is a post-boot image for [w_boot_key]; clone fan-out
         swaps in trigger-point images, after which a plain rewind must
         fall back to reset-in-place to get a booted machine again *)
  mutable w_golden_ledger : Ledger.t option; (* captured with the image when auditing *)
  mutable w_audit_restores : bool;
  mutable w_last_target : string option;
      (* [first_target] of the most recent run: postmortem capture reads
         it after [execute_into]/[clone_into] return *)
}

let boot_key_of (cfg : config) =
  {
    bk_hv_config = cfg.hv_config;
    bk_setup = hv_setup_of cfg;
    bk_vcpus_per_cpu = cfg.vcpus_per_cpu;
  }

(* (Re)take the worker's golden image at the machine's current state --
   always a freshly-booted quiesce point. When restore auditing is on,
   the resource ledger is captured alongside: it is the baseline every
   audited restore must come back to exactly. *)
let retake_image w =
  w.w_image <- Hypervisor.snapshot w.w_hv;
  w.w_image_is_boot <- true;
  w.w_golden_ledger <-
    (if w.w_audit_restores then Some (Ledger.capture w.w_hv) else None)

(* Opt-in zero-leak audit at restore points: after every snapshot
   restore, recapture the ledger and require the orphan view to be
   exactly the image's -- no orphaned frames, held locks, lost recurring
   timers etc. may survive a rewind, whatever the previous run did
   (fault-free, recovered, or died). [Ledger.capture] walks the whole
   frame table, so this deliberately stays off in production campaigns
   and is exercised by the tests. *)
let set_restore_audit w flag =
  w.w_audit_restores <- flag;
  w.w_golden_ledger <-
    (if flag then Some (Ledger.capture w.w_hv) else None)

let check_restore_leaks w =
  match w.w_golden_ledger with
  | None -> ()
  | Some golden ->
    let d = Ledger.diff ~before:golden ~after:(Ledger.capture w.w_hv) in
    if not (Ledger.no_leak d) then
      failwith
        (Format.asprintf "Run: resources leaked across snapshot restore: %a"
           Ledger.pp_diff d)

let prepare ?recorder (cfg : config) =
  let hv = boot_hv ?recorder cfg in
  let w =
    {
      w_recorder = recorder;
      w_rng = Sim.Rng.create cfg.seed;
      w_mconfig = cfg.mconfig;
      w_hv = hv;
      w_boot_key = boot_key_of cfg;
      w_image = Hypervisor.snapshot hv;
      w_image_is_boot = true;
      w_golden_ledger = None;
      w_audit_restores = false;
      w_last_target = None;
    }
  in
  w

(* The recorder the worker's next run will report into: inspect or export
   it after [execute_into] returns. *)
let worker_recorder w = w.w_hv.Hypervisor.obs

(* Rewind the worker to a freshly-booted machine for [cfg]: reseed the
   RNG and restore the golden boot image -- O(state the previous run
   dirtied), not O(machine). Runs whose boot parameters differ from the
   image's fall back to reset-in-place (same boot, different config) or
   a replacement boot (different geometry) and retake the image. Also
   used directly by the endurance driver, which then runs its own
   multi-cycle scenario instead of [run_prepared]. *)
let rewind w (cfg : config) =
  Sim.Rng.reseed w.w_rng cfg.seed;
  if cfg.mconfig <> w.w_mconfig then begin
    (* The machine geometry changed: the tables cannot be reused. Boot a
       replacement machine; subsequent runs reuse it. *)
    (match w.w_recorder with
    | Some r -> Obs.Recorder.reset r
    | None -> ());
    w.w_hv <- boot_hv ?recorder:w.w_recorder cfg;
    w.w_mconfig <- cfg.mconfig;
    w.w_boot_key <- boot_key_of cfg;
    retake_image w
  end
  else if boot_key_of cfg <> w.w_boot_key || not w.w_image_is_boot then begin
    (* The golden image is unusable: either it was taken for different
       boot parameters, or a clone fan-out replaced it with a trigger-
       point image. Reset in place and retake it. The recorder survives
       [reboot_in_place] (flight-recorder contract), so the per-run
       metric isolation reset is explicit here. *)
    Obs.Recorder.reset w.w_hv.Hypervisor.obs;
    Hypervisor.reboot_in_place w.w_hv ~config:cfg.hv_config
      ~setup:(hv_setup_of cfg) ~vcpus_per_cpu:cfg.vcpus_per_cpu;
    w.w_boot_key <- boot_key_of cfg;
    retake_image w
  end
  else begin
    (* The fast path, taken for every run of a homogeneous campaign --
       including after [died]/unrecovered outcomes, which used to force
       a fresh boot's worth of work. The recorder is not part of the
       image and survives [restore]; reset it by hand for per-run
       metric isolation. *)
    Obs.Recorder.reset w.w_hv.Hypervisor.obs;
    Hypervisor.restore w.w_hv w.w_image;
    check_restore_leaks w
  end

let execute_into w (cfg : config) : outcome =
  (* Mark before the rewind so the reset cost lands in the boot phase
     (the mark survives the recorder reset inside the rewind). *)
  Obs.Recorder.alloc_begin w.w_hv.Hypervisor.obs;
  rewind w cfg;
  (* New flight-ring epoch: the rings survive the rewind by design, so
     scope this run's readback to its own entries. *)
  Hypervisor.new_flight_epoch w.w_hv;
  let st = make_state cfg w.w_rng w.w_hv in
  let out = run_prepared st in
  w.w_last_target <- st.first_target;
  out

(* ------------------------------------------------------------------ *)
(* Clone fan-out: one warmed-up image, many fault variants              *)
(* ------------------------------------------------------------------ *)

(* A trigger-point clone source: the machine driven to the fault trigger
   point exactly once, plus everything [finish_prepared] needs to replay
   from there -- the hypervisor image, the metric values accumulated so
   far (fan-out variants must start from them or their per-run metric
   deltas would differ from a fresh run's), the RNG position and the
   harness scalars. *)
type clone_source = {
  cs_worker : worker;
  cs_state : state;
  cs_initial_app_domids : int list;
  cs_image : Hypervisor.image;
  cs_metrics : Obs.Metrics.snapshot;
  cs_rng_pos : int64;
  cs_last_cpu : int;
}

(* Drive the worker's machine to the trigger point for [cfg] (rewind,
   boot bookkeeping, warmup) and snapshot it there. The returned source
   replays with [clone_into]. A hypervisor carries one copy-on-write
   baseline at a time, so this snapshot supersedes the worker's golden
   boot image; [w_image] is re-armed with the trigger image to keep the
   worker's restore paths coherent. *)
let prepare_clone (w : worker) (cfg : config) : clone_source =
  Obs.Recorder.alloc_begin w.w_hv.Hypervisor.obs;
  rewind w cfg;
  let st = make_state cfg w.w_rng w.w_hv in
  let initial_app_domids = warmup_prepared st in
  (* Quiesce for the snapshot: the tracker hook is reinstalled (and the
     trigger armed over it) by each variant. *)
  st.hv.Hypervisor.step_hook <- None;
  let image = Hypervisor.snapshot st.hv in
  w.w_image <- image;
  w.w_image_is_boot <- false;
  {
    cs_worker = w;
    cs_state = st;
    cs_initial_app_domids = initial_app_domids;
    cs_image = image;
    cs_metrics = Obs.Recorder.metrics_snapshot st.hv.Hypervisor.obs;
    cs_rng_pos = Sim.Rng.save w.w_rng;
    cs_last_cpu = st.last_cpu;
  }

(* Replay one fault variant from the trigger-point image. [reseed]
   selects the variant: it rewinds the RNG to the trigger point by
   default (identical twins) or forks the stream for distinct variants.
   [cfg] overrides the post-trigger configuration -- fault kind and
   directive in particular -- so the fuzzer can clone one warmup across
   mutants that differ only past the trigger point; the prepared machine
   and warmup are shared, only [finish_prepared] sees the variant
   config. The first replay runs directly on the just-prepared machine;
   later ones restore the image first -- O(what the previous variant
   touched). Each variant's run records into the worker recorder exactly
   what a fresh full run with the same post-trigger stream would have
   recorded. *)
let clone_into ?reseed ?cfg (src : clone_source) : outcome =
  let st =
    match cfg with
    | None -> src.cs_state
    | Some cfg -> { src.cs_state with cfg }
  in
  let w = src.cs_worker in
  Obs.Recorder.alloc_begin st.hv.Hypervisor.obs;
  Hypervisor.restore st.hv src.cs_image;
  (* The restore rewinds [hv.config] to the image's. Recovery-path-only
     flags from the variant config are legitimate post-trigger variation
     (they cannot affect the shared warmup), so re-apply them here. *)
  st.hv.Hypervisor.config <-
    {
      st.hv.Hypervisor.config with
      Config.incremental_scan = st.cfg.hv_config.Config.incremental_scan;
    };
  let r = st.hv.Hypervisor.obs in
  Obs.Recorder.reset r;
  Obs.Metrics.restore r.Obs.Recorder.metrics src.cs_metrics;
  check_restore_leaks w;
  Hypervisor.new_flight_epoch st.hv;
  Sim.Rng.reseed st.rng
    (match reseed with Some s -> s | None -> src.cs_rng_pos);
  st.fault_applied <- false;
  st.first_target <- None;
  st.last_cpu <- src.cs_last_cpu;
  let out = finish_prepared st ~initial_app_domids:src.cs_initial_app_domids in
  w.w_last_target <- st.first_target;
  out
