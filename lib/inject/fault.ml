(** Fault types injected by the Gigan-equivalent injector (Section VI-C).

    - [Failstop]: the program counter is set to 0; execution stops
      immediately at the injection point (always detected).
    - [Register]: a random bit flip in a random register among the 16
      GPRs, stack pointer, flags and program counter; models transient
      datapath faults.
    - [Code]: a random bit flip in the instruction bytes at the current
      program counter; models instruction fetch/decode faults. The
      injector repairs the corrupted code once an error is detected, so
      the effect is transient -- but detection latency is longer, so
      errors propagate further before detection.
    - [Data]: a bit flip directly in hypervisor *data* structures --
      heap block headers and pfn descriptors -- rather than in the
      datapath. This is the first slice of the wider production fault
      taxonomy (torn writes, ECC corruption): the flip lands in state
      that persists across the injection point, so whether it manifests
      depends on whether anything ever reads the damaged word. *)

type t = Failstop | Register | Code | Data

let name = function
  | Failstop -> "Failstop"
  | Register -> "Register"
  | Code -> "Code"
  | Data -> "Data"

let all = [ Failstop; Register; Code; Data ]

(* Campaign sizes chosen for +/-2% CIs: the first three from
   Section VII-A; [Data] is not in the paper, sized like [Code] (its
   outcome distribution has comparable spread). *)
let paper_campaign_size = function
  | Failstop -> 1000
  | Register -> 5000
  | Code -> 2000
  | Data -> 2000

(* ------------------------------------------------------------------ *)
(* Directed faults: the fuzzer's mutation hook                         *)
(* ------------------------------------------------------------------ *)

(* How a directed fault crashes at the injection point (the sampled
   [Profile.manifestation]'s [crash_now] axis, made explicit). *)
type crash_mode = Crash_none | Crash_panic | Crash_hang

let crash_mode_name = function
  | Crash_none -> "no_crash"
  | Crash_panic -> "panic"
  | Crash_hang -> "hang"

(* A fully-determined fault point. When {!Run.config.directive} carries
   one, [Run.arm_fault] applies exactly this fault instead of sampling a
   manifestation from {!Profile}: the corruption target is selected by
   index into {!Corrupt.all} ([-1] = pure crash, no corruption), the
   corruption's internal choices (which frame, which delta...) are drawn
   from a splitmix stream seeded by [d_payload], and the second-level
   trigger fires [d_window mod trigger_window_steps] steps into the
   window. Everything is a pure function of the directive, which is what
   makes a fuzzer corpus entry [(base seed, mutation trace)] replay to
   the identical run. *)
type directive = {
  d_target : int; (* index into {!Corrupt.all}; -1 = crash only *)
  d_payload : int64; (* steers the corruption's internal choices *)
  d_crash : crash_mode;
  d_window : int; (* trigger offset within the window, >= 0 *)
}
