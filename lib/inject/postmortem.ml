(** Postmortem capture for injection runs: turn a bad {!Run.outcome}
    into a failure {!Obs.Signature} (the cheap, per-run part) and, for
    the first run of each signature, a bounded {!Obs.Postmortem} bundle
    assembled from the live flight-recorder state (the lazy part --
    nothing here runs on good outcomes).

    The signature axes:
    - fault kind: the injected {!Fault.t} ("failstop" / "register" / "code")
    - target structure: the first structure the fault corrupted
      ([Run.state.first_target]; "failstop" for pure crashes)
    - death cause: canonicalized from the classification
      ([failure_reason] collapses to a closed label vocabulary)
    - recovery branch: mechanism name plus whether it completed,
      e.g. "NiLiHype/recovered", "ReHype/aborted", or "none"

    Everything is a pure function of (seed, config): the same failing
    run produces the same signature and bundle on any worker, which is
    what triage determinism across [--jobs] / [--fanout] rests on. *)

open Hyper

(* CLI vocabulary for the one-line repro: must match the [Arg.Symbol]
   names in bin/nlh_campaign.ml. *)
let mech_cli = function
  | Run.No_recovery -> "none"
  | Run.Mech (Recovery.Engine.Nilihype, _) -> "nilihype"
  | Run.Mech (Recovery.Engine.Rehype, _) -> "rehype"

let setup_cli = function
  | Run.One_appvm _ -> "1appvm"
  | Run.Three_appvm -> "3appvm"

let fault_cli = function
  | Fault.Failstop -> "failstop"
  | Fault.Register -> "register"
  | Fault.Code -> "code"
  | Fault.Data -> "data"

(* Canonical death cause: collapse the free-form [failure_reason] into a
   closed, greppable vocabulary. Signature keys must stay low-cardinality
   -- a reason string with a CPU number in it would give every failure
   its own signature. *)
let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let death_cause (d : Run.detected) =
  if not d.Run.recovered then
    match d.Run.failure_reason with
    | Some r ->
      if starts_with "recovery aborted: no recovery mechanism" r then "hv_died"
      else if starts_with "recovery aborted" r then "recovery_aborted"
      else if starts_with "PrivVM CPU starved" r then "privvm_starved"
      else if starts_with "PrivVM failed" r then "privvm_failed"
      else if starts_with "residual inconsistency" r then "residual_inconsistency"
      else if starts_with "post-recovery crash" r then "post_recovery_crash"
      else if starts_with "surviving thread" r then "surviving_thread_collision"
      else "hv_failed"
    | None -> "hv_failed"
  else if not d.Run.new_vm_ok then "new_vm_failed"
  else "app_vm_casualties"

let branch_of (cfg : Run.config) (d : Run.detected option) =
  match (cfg.Run.mech, d) with
  | Run.No_recovery, _ | _, None -> "none"
  | Run.Mech (m, _), Some d ->
    Recovery.Engine.mechanism_name m
    ^ if d.Run.recovered then "/recovered" else "/aborted"

(* The triage signature of a bad outcome; [None] for good outcomes
   (non-manifested, or detected-and-successful), which produce no
   postmortem work at all. *)
let signature_of (cfg : Run.config) ~first_target (out : Run.outcome) =
  let target = match first_target with Some t -> t | None -> "none" in
  let fault = Fault.name cfg.Run.fault in
  match out with
  | Run.Non_manifested -> None
  | Run.Silent_corruption ->
    Some
      (Obs.Signature.make ~fault ~target ~cause:"silent_corruption"
         ~branch:"none")
  | Run.Detected d ->
    if d.Run.success then None
    else
      Some
        (Obs.Signature.make ~fault ~target ~cause:(death_cause d)
           ~branch:(branch_of cfg (Some d)))

(* One-line repro: re-running this CLI invocation reproduces the failing
   run (same seed, same config => same outcome class). [runs]/[fanout]
   describe the smallest campaign containing the run: a single run for
   the sequential path, the batch prefix for fan-out variants (the
   variant's warmup comes from the batch's first seed, so replaying the
   seed alone would sample a different trajectory). *)
let repro_line (cfg : Run.config) ~seed ~runs ~fanout =
  Printf.sprintf
    "nlh_campaign --mech %s --fault %s --setup %s --runs %d --seed %Ld --jobs \
     1%s"
    (mech_cli cfg.Run.mech)
    (fault_cli cfg.Run.fault)
    (setup_cli cfg.Run.setup)
    runs seed
    (if fanout > 1 then Printf.sprintf " --fanout %d" fanout else "")

let config_fields (cfg : Run.config) ~fanout =
  [
    ("mech", mech_cli cfg.Run.mech);
    ("fault", fault_cli cfg.Run.fault);
    ("setup", setup_cli cfg.Run.setup);
    ("fanout", string_of_int fanout);
  ]

(* Assemble the bundle from the live post-run state: the run's event
   ring, the crash-surviving flight-ring tails, the recovery breakdown
   out of the outcome, and the resource diff against the worker's golden
   boot ledger. O(ledger capture) -- only paid once per new signature. *)
let capture ~(signature : Obs.Signature.t) ~(hv : Hypervisor.t)
    ~(golden_ledger : Ledger.t option) ~repro ~config ~seed
    (out : Run.outcome) =
  let phases =
    match out with
    | Run.Detected { breakdown = Some b; _ } -> b.Latency_model.steps
    | _ -> []
  in
  let ledger_diff =
    match golden_ledger with
    | None -> []
    | Some golden ->
      Ledger.fields (Ledger.diff ~before:golden ~after:(Ledger.capture hv))
  in
  Obs.Postmortem.make ~signature ~outcome:(Run.outcome_name out) ~seed ~repro
    ~config
    ~events:(Obs.Recorder.events hv.Hypervisor.obs)
    ~phases
    ~hypercalls:(Hypervisor.hypercall_tail hv)
    ~journal_tail:(Hypervisor.journal_tail hv)
    ~ledger_diff
