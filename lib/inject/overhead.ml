(** Hypervisor processing overhead in normal operation (Section VII-C).

    The measurement mirrors the paper's methodology: run the same
    deterministic workload (same seed => same activity stream) on stock
    Xen and on the NiLiHype-modified hypervisor, count unhalted cycles
    spent in hypervisor code, and report the percent increase. The
    NiLiHype* variant disables the non-idempotent-hypercall logging,
    isolating the logging's share of the overhead. *)

open Hyper

type measurement = {
  label : string;
  stock_cycles : int;
  nilihype_cycles : int;
  nilihype_nolog_cycles : int;
  overhead_pct : float; (* NiLiHype vs stock *)
  overhead_nolog_pct : float; (* NiLiHype* vs stock *)
}

type bench_setup = {
  label : string;
  setup : Run.setup;
}

let configurations =
  [
    { label = "BlkBench"; setup = Run.One_appvm Workloads.Workload.Blkbench };
    { label = "UnixBench"; setup = Run.One_appvm Workloads.Workload.Unixbench };
    { label = "NetBench"; setup = Run.One_appvm Workloads.Workload.Netbench };
    { label = "3AppVM"; setup = Run.Three_appvm };
  ]

(* Run [activities] sampled activities with no fault injected and return
   the hypervisor cycle count. *)
let measure_cycles ~hv_config ~setup ~seed ~activities =
  let cfg =
    {
      Run.default_config with
      Run.seed;
      setup;
      hv_config;
      mech = Run.No_recovery;
    }
  in
  let st = Run.boot_state cfg in
  (* In the 3AppVM overhead configuration all three AppVMs run from the
     start (no recovery happens in these measurements). *)
  let st =
    match setup with
    | Run.Three_appvm ->
      let hv = st.Run.hv in
      let dom3 =
        Hypervisor.create_domain_internal hv ~privileged:false ~vcpu_pins:[ 3 ]
          ~mem_frames:96
      in
      Hypervisor.start_vcpus hv;
      let blk =
        Workloads.Workload.create Workloads.Workload.Blkbench
          ~domid:dom3.Domain.domid
      in
      let mix =
        Workloads.System_mix.create
          ~benchmarks:
            (blk :: Array.to_list st.Run.mix.Workloads.System_mix.benchmarks)
          ~active_cpus:[ 0; 1; 2; 3 ]
          ~blk_dom:(Some dom3.Domain.domid)
          ~net_dom:st.Run.mix.Workloads.System_mix.net_dom
      in
      { st with Run.mix }
    | Run.One_appvm _ -> st
  in
  for _ = 1 to activities do
    Run.run_one_activity st
  done;
  Cycle_account.total st.Run.hv.Hypervisor.cycles

let measure ?(seed = 4242L) ?(activities = 8000) (bench : bench_setup) =
  let stock_cycles =
    measure_cycles ~hv_config:Config.stock ~setup:bench.setup ~seed ~activities
  in
  let nilihype_cycles =
    measure_cycles ~hv_config:Config.nilihype ~setup:bench.setup ~seed ~activities
  in
  let nilihype_nolog_cycles =
    measure_cycles ~hv_config:Config.nilihype_no_logging ~setup:bench.setup ~seed
      ~activities
  in
  {
    label = bench.label;
    stock_cycles;
    nilihype_cycles;
    nilihype_nolog_cycles;
    overhead_pct =
      Cycle_account.overhead_pct ~baseline:stock_cycles
        ~instrumented:nilihype_cycles;
    overhead_nolog_pct =
      Cycle_account.overhead_pct ~baseline:stock_cycles
        ~instrumented:nilihype_nolog_cycles;
  }

let pp fmt (m : measurement) =
  Format.fprintf fmt "%-10s NiLiHype %5.2f%%   NiLiHype* %5.2f%%" m.label
    m.overhead_pct m.overhead_nolog_pct
