(** Injection campaigns: many runs of a configuration, aggregated the way
    Section VII-A reports them.

    Campaigns run either sequentially or across OCaml 5 domains (see
    {!Pool}); per-run randomness derives purely from the seed and the
    totals merge is commutative and associative, so the aggregate is
    identical for every [jobs] value. *)

type totals = {
  mutable runs : int;
  mutable non_manifested : int;
  mutable sdc : int;
  mutable detected : int;
  mutable successes : int;
  mutable no_vmf : int;
  mutable recovered : int;
  mutable latency_sum : Sim.Time.ns;
  mutable latency_samples : int;
  notes : Sim.Stats.Counts.t;
  mutable metrics : Obs.Metrics.snapshot; (* merged per-run metrics *)
  triage : Obs.Postmortem.Triage.table;
      (* failure signatures with bounded exemplar bundles; empty unless
         the campaign ran with [postmortems] *)
}

let make_totals () =
  {
    runs = 0;
    non_manifested = 0;
    sdc = 0;
    detected = 0;
    successes = 0;
    no_vmf = 0;
    recovered = 0;
    latency_sum = 0;
    latency_samples = 0;
    notes = Sim.Stats.Counts.create ();
    metrics = Obs.Metrics.empty_snapshot;
    triage = Obs.Postmortem.Triage.create ();
  }

let note t key = Sim.Stats.Counts.add t.notes key

(* Failure notes in canonical (key-sorted) order, so output and
   comparisons are stable regardless of accumulation order. *)
let failure_notes t = Sim.Stats.Counts.sorted t.notes

let add_outcome t (o : Run.outcome) =
  t.runs <- t.runs + 1;
  match o with
  | Run.Non_manifested -> t.non_manifested <- t.non_manifested + 1
  | Run.Silent_corruption -> t.sdc <- t.sdc + 1
  | Run.Detected d ->
    t.detected <- t.detected + 1;
    if d.Run.success then t.successes <- t.successes + 1;
    if d.Run.no_vmf then t.no_vmf <- t.no_vmf + 1;
    if d.Run.recovered then t.recovered <- t.recovered + 1;
    (match d.Run.failure_reason with
    | Some why -> note t why
    | None -> ());
    if d.Run.recovery_latency > 0 then begin
      t.latency_sum <- t.latency_sum + d.Run.recovery_latency;
      t.latency_samples <- t.latency_samples + 1
    end

(* Fold [src] into [dst]. Every field is a sum (or a counter table), so
   this merge is commutative and associative -- the property the
   parallel engine relies on for determinism. *)
let merge_into dst src =
  dst.runs <- dst.runs + src.runs;
  dst.non_manifested <- dst.non_manifested + src.non_manifested;
  dst.sdc <- dst.sdc + src.sdc;
  dst.detected <- dst.detected + src.detected;
  dst.successes <- dst.successes + src.successes;
  dst.no_vmf <- dst.no_vmf + src.no_vmf;
  dst.recovered <- dst.recovered + src.recovered;
  dst.latency_sum <- dst.latency_sum + src.latency_sum;
  dst.latency_samples <- dst.latency_samples + src.latency_samples;
  Sim.Stats.Counts.merge_into ~into:dst.notes src.notes;
  dst.metrics <- Obs.Metrics.merge_snapshots dst.metrics src.metrics;
  Obs.Postmortem.Triage.merge_into ~into:dst.triage src.triage

let merge a b =
  let t = make_totals () in
  merge_into t a;
  merge_into t b;
  t

(* An immutable, canonical view of [totals]: plain counters plus the
   sorted note list. Two aggregates are bit-identical iff their
   snapshots are structurally equal, which is what the determinism
   tests compare. *)
type snapshot = {
  s_runs : int;
  s_non_manifested : int;
  s_sdc : int;
  s_detected : int;
  s_successes : int;
  s_no_vmf : int;
  s_recovered : int;
  s_latency_sum : Sim.Time.ns;
  s_latency_samples : int;
  s_notes : (string * int) list;
  s_metrics : Obs.Metrics.snapshot; (* canonical: name-sorted lists *)
  s_triage : (string * Obs.Postmortem.Triage.entry) list;
      (* canonical: signature-key-sorted, exemplar bundles included *)
}

let snapshot t =
  {
    s_runs = t.runs;
    s_non_manifested = t.non_manifested;
    s_sdc = t.sdc;
    s_detected = t.detected;
    s_successes = t.successes;
    s_no_vmf = t.no_vmf;
    s_recovered = t.recovered;
    s_latency_sum = t.latency_sum;
    s_latency_samples = t.latency_samples;
    s_notes = failure_notes t;
    s_metrics = t.metrics;
    s_triage = Obs.Postmortem.Triage.snapshot t.triage;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "runs=%d nm=%d sdc=%d det=%d succ=%d novmf=%d rec=%d lat=(%d/%d) notes=[%a]"
    s.s_runs s.s_non_manifested s.s_sdc s.s_detected s.s_successes s.s_no_vmf
    s.s_recovered s.s_latency_sum s.s_latency_samples
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s x%d" k v))
    s.s_notes

type result = {
  config_label : string;
  totals : totals;
  jobs : int; (* worker domains the campaign actually used *)
  wall_seconds : float; (* host wall-clock time for the whole campaign *)
  minor_words : float;
      (* host minor-heap words allocated across all workers, summed from
         each worker domain's own [Gc.minor_words]. Host-side accounting
         only: deliberately NOT part of [totals], which stay bit-identical
         across hosts and [jobs] values. *)
}

let runs_per_sec r =
  if r.wall_seconds > 0.0 then float_of_int r.totals.runs /. r.wall_seconds
  else 0.0

(* Per-worker accumulator: the totals plus the worker's long-lived
   machine (booted lazily in the worker's own domain and reset in place
   between runs) and that domain's allocation accounting. *)
type acc = {
  acc_totals : totals;
  mutable acc_worker : Run.worker option;
  acc_minor_start : float;
  mutable acc_minor_words : float; (* set by the in-domain finish hook *)
  mutable acc_pm_ledger : Hyper.Ledger.t option;
      (* golden post-boot resource ledger, the baseline for a bundle's
         ledger diff; captured once per worker when postmortems are on *)
}

(* Run [n] injections of [cfg], varying only the seed. [jobs > 1]
   distributes the seed range over that many domains through
   {!Pool.map_reduce}; the default stays sequential so existing callers
   and tests behave exactly as before. Each worker reuses one machine
   across its runs ({!Run.prepare} / {!Run.execute_into}), which keeps
   per-run allocation -- and hence pressure on the shared stop-the-world
   minor GC -- low enough for parallel runs to actually scale. Worker
   domains are additionally capped at the host's core count unless
   [oversubscribe] is set (see {!Pool.map_reduce}). The result totals
   are identical for every [jobs] value either way.

   [alloc_profile] turns on the per-phase allocation profiler on every
   worker recorder: the merged [totals.metrics] then carry the [alloc.*]
   phase counters (still jobs-invariant -- each run's attribution depends
   only on its seed). Off by default: the phase counters stay zero and
   snapshots are unchanged.

   [fanout >= 2] switches to clone fan-out: runs are grouped into
   batches of that size, each batch drives one machine to the fault
   trigger point once ({!Run.prepare_clone}) and replays the trigger
   image for every run in the batch ({!Run.clone_into}), paying the
   boot-and-warmup cost once per batch instead of once per run. Each
   run still injects under its own seed's random stream, so outcomes
   within a batch differ; the batch's warmup comes from its first run's
   seed, so a fan-out campaign is its own (equally valid, equally
   deterministic) sampling design rather than a replay of the
   [fanout = 1] campaign. Batches never split across workers, so the
   aggregate stays bit-identical for every [jobs] value. *)
let run ?(label = "") ?(base_seed = 10_000L) ?(jobs = 1) ?chunk
    ?(oversubscribe = false) ?(alloc_profile = false) ?(fanout = 1)
    ?(postmortems = false) ~n (cfg : Run.config) =
  if fanout < 1 then invalid_arg "Campaign.run: fanout must be >= 1";
  let t0 = Unix.gettimeofday () in
  let init () =
    {
      acc_totals = make_totals ();
      acc_worker = None;
      acc_minor_start = Gc.minor_words ();
      acc_minor_words = 0.0;
      acc_pm_ledger = None;
    }
  in
  let worker_of acc (cfg : Run.config) =
    match acc.acc_worker with
    | Some w -> w
    | None ->
      (* A tiny per-worker recorder: the campaign keeps only the
         metrics, so the event ring is minimal; metrics collection is
         unconditional. Reset between runs by [execute_into]. With
         postmortems on, the ring grows to hold one run's Warn+ events
         (injections, detections, audits): the raw material a bundle's
         causal timeline is cut from. Same shape on every worker, so
         bundles stay jobs-invariant. *)
      let recorder =
        if postmortems then
          Obs.Recorder.create ~capacity:256 ~min_level:Obs.Event.Warn ()
        else Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error ()
      in
      Obs.Recorder.set_alloc_profiling recorder alloc_profile;
      let w = Run.prepare ~recorder cfg in
      (* Boot is seed-independent, so this baseline is identical on
         every worker (bundle determinism relies on that). *)
      if postmortems then
        acc.acc_pm_ledger <- Some (Hyper.Ledger.capture w.Run.w_hv);
      acc.acc_worker <- Some w;
      w
  in
  let merge_run_metrics acc w =
    acc.acc_totals.metrics <-
      Obs.Metrics.merge_snapshots acc.acc_totals.metrics
        (Obs.Recorder.metrics_snapshot (Run.worker_recorder w))
  in
  let seed_of i = Int64.add base_seed (Int64.of_int i) in
  (* Triage a bad outcome (lazy: good outcomes return [None] from
     [Postmortem.signature_of] and pay nothing). The bundle is only
     assembled the first time this worker sees the signature; workers
     process ascending seeds, so the captured seed is the worker-local
     minimum and the commutative triage merge keeps the global-minimum
     exemplar -- the same one a sequential campaign captures. *)
  let record_postmortem acc (w : Run.worker) (cfg : Run.config) out ~seed
      ~repro =
    match
      Postmortem.signature_of cfg ~first_target:w.Run.w_last_target out
    with
    | None -> ()
    | Some sg ->
      let tr = acc.acc_totals.triage in
      let bundle =
        if Obs.Postmortem.Triage.mem tr sg then None
        else
          Some
            (Postmortem.capture ~signature:sg ~hv:w.Run.w_hv
               ~golden_ledger:acc.acc_pm_ledger ~repro
               ~config:(Postmortem.config_fields cfg ~fanout) ~seed out)
      in
      Obs.Postmortem.Triage.record ?bundle tr sg ~seed
  in
  let run_one acc i =
    let cfg = { cfg with Run.seed = seed_of i } in
    let w = worker_of acc cfg in
    let out = Run.execute_into w cfg in
    add_outcome acc.acc_totals out;
    merge_run_metrics acc w;
    if postmortems then
      record_postmortem acc w cfg out ~seed:(seed_of i)
        ~repro:(Postmortem.repro_line cfg ~seed:(seed_of i) ~runs:1 ~fanout:1)
  in
  (* One fan-out batch: runs [g * fanout .. min n ((g+1) * fanout) - 1],
     prepared once and cloned per run. A batch is a single [body] call,
     so the pool can never split it across workers -- the per-batch
     results depend only on (config, base_seed, g, fanout). *)
  let run_batch acc g =
    let first = g * fanout in
    let last = min n (first + fanout) - 1 in
    let group_cfg = { cfg with Run.seed = seed_of first } in
    let w = worker_of acc group_cfg in
    let src = Run.prepare_clone w group_cfg in
    for i = first to last do
      let out = Run.clone_into ~reseed:(seed_of i) src in
      add_outcome acc.acc_totals out;
      merge_run_metrics acc w;
      if postmortems then
        (* The repro is the batch prefix up to this variant: a fan-out
           variant's warmup comes from the batch's first seed, so the
           seed alone does not reproduce it. *)
        record_postmortem acc w group_cfg out ~seed:(seed_of i)
          ~repro:
            (Postmortem.repro_line group_cfg ~seed:(seed_of first)
               ~runs:(i - first + 1) ~fanout)
    done
  in
  let pool_n, body =
    if fanout > 1 then (((n + fanout - 1) / fanout), run_batch)
    else (n, run_one)
  in
  let acc =
    Pool.map_reduce ~jobs ?chunk ~oversubscribe ~n:pool_n ~init ~body
      ~finish:(fun acc ->
        (* [Gc.minor_words] is per-domain in OCaml 5, so the delta must be
           taken here, in the worker's own domain. *)
        acc.acc_minor_words <- Gc.minor_words () -. acc.acc_minor_start)
      ~merge:(fun a b ->
        merge_into a.acc_totals b.acc_totals;
        a.acc_minor_words <- a.acc_minor_words +. b.acc_minor_words;
        a)
      ()
  in
  let used_jobs =
    (* Mirror the pool's clamps so the report shows the worker count
       that actually ran: bounded by the work-item count and, unless
       oversubscribing, by the core count. *)
    let j = max 1 (min jobs (max 1 pool_n)) in
    if oversubscribe then j else min j (Pool.default_jobs ())
  in
  {
    config_label = label;
    totals = acc.acc_totals;
    jobs = used_jobs;
    wall_seconds = Unix.gettimeofday () -. t0;
    minor_words = acc.acc_minor_words;
  }

let success_rate r =
  Sim.Stats.proportion ~successes:r.totals.successes ~trials:(max 1 r.totals.detected)

let no_vmf_rate r =
  Sim.Stats.proportion ~successes:r.totals.no_vmf ~trials:(max 1 r.totals.detected)

let breakdown r =
  let n = float_of_int (max 1 r.totals.runs) in
  ( 100.0 *. float_of_int r.totals.non_manifested /. n,
    100.0 *. float_of_int r.totals.sdc /. n,
    100.0 *. float_of_int r.totals.detected /. n )

(* Mean recovery latency in float nanoseconds: integer division floored
   sub-ns-granularity averages, so the mean is computed in float. *)
let mean_latency r =
  Sim.Stats.mean_of_sum ~sum:r.totals.latency_sum
    ~samples:r.totals.latency_samples

let pp fmt r =
  let nm, sdc, det = breakdown r in
  Format.fprintf fmt
    "%s: runs=%d outcomes: non-manifested %.1f%%, SDC %.1f%%, detected %.1f%% | \
     success %a, noVMF %a@."
    r.config_label r.totals.runs nm sdc det Sim.Stats.pp_proportion
    (success_rate r) Sim.Stats.pp_proportion (no_vmf_rate r);
  if r.wall_seconds > 0.0 then
    Format.fprintf fmt "%s: wall %.2fs, %.1f runs/s (jobs=%d, cores=%d)@."
      r.config_label r.wall_seconds (runs_per_sec r) r.jobs
      (Domain.recommended_domain_count ())
