(** Injection campaigns: many runs of a configuration, aggregated the way
    Section VII-A reports them.

    Campaigns run either sequentially or across OCaml 5 domains (see
    {!Pool}); per-run randomness derives purely from the seed and the
    totals merge is commutative and associative, so the aggregate is
    identical for every [jobs] value. *)

type totals = {
  mutable runs : int;
  mutable non_manifested : int;
  mutable sdc : int;
  mutable detected : int;
  mutable successes : int;
  mutable no_vmf : int;
  mutable recovered : int;
  mutable latency_sum : Sim.Time.ns;
  mutable latency_samples : int;
  notes : Sim.Stats.Counts.t;
  mutable metrics : Obs.Metrics.snapshot; (* merged per-run metrics *)
  triage : Obs.Postmortem.Triage.table;
      (* failure signatures with bounded exemplar bundles; empty unless
         the campaign ran with [postmortems] *)
}

let make_totals ?triage_seed_cap () =
  {
    runs = 0;
    non_manifested = 0;
    sdc = 0;
    detected = 0;
    successes = 0;
    no_vmf = 0;
    recovered = 0;
    latency_sum = 0;
    latency_samples = 0;
    notes = Sim.Stats.Counts.create ();
    metrics = Obs.Metrics.empty_snapshot;
    triage = Obs.Postmortem.Triage.create ?seed_cap:triage_seed_cap ();
  }

let note t key = Sim.Stats.Counts.add t.notes key

(* Failure notes in canonical (key-sorted) order, so output and
   comparisons are stable regardless of accumulation order. *)
let failure_notes t = Sim.Stats.Counts.sorted t.notes

let add_outcome t (o : Run.outcome) =
  t.runs <- t.runs + 1;
  match o with
  | Run.Non_manifested -> t.non_manifested <- t.non_manifested + 1
  | Run.Silent_corruption -> t.sdc <- t.sdc + 1
  | Run.Detected d ->
    t.detected <- t.detected + 1;
    if d.Run.success then t.successes <- t.successes + 1;
    if d.Run.no_vmf then t.no_vmf <- t.no_vmf + 1;
    if d.Run.recovered then t.recovered <- t.recovered + 1;
    (match d.Run.failure_reason with
    | Some why -> note t why
    | None -> ());
    if d.Run.recovery_latency > 0 then begin
      t.latency_sum <- t.latency_sum + d.Run.recovery_latency;
      t.latency_samples <- t.latency_samples + 1
    end

(* Fold [src] into [dst]. Every field is a sum (or a counter table), so
   this merge is commutative and associative -- the property the
   parallel engine relies on for determinism. *)
let merge_into dst src =
  dst.runs <- dst.runs + src.runs;
  dst.non_manifested <- dst.non_manifested + src.non_manifested;
  dst.sdc <- dst.sdc + src.sdc;
  dst.detected <- dst.detected + src.detected;
  dst.successes <- dst.successes + src.successes;
  dst.no_vmf <- dst.no_vmf + src.no_vmf;
  dst.recovered <- dst.recovered + src.recovered;
  dst.latency_sum <- dst.latency_sum + src.latency_sum;
  dst.latency_samples <- dst.latency_samples + src.latency_samples;
  Sim.Stats.Counts.merge_into ~into:dst.notes src.notes;
  dst.metrics <- Obs.Metrics.merge_snapshots dst.metrics src.metrics;
  Obs.Postmortem.Triage.merge_into ~into:dst.triage src.triage

let merge a b =
  let t = make_totals () in
  merge_into t a;
  merge_into t b;
  t

(* An immutable, canonical view of [totals]: plain counters plus the
   sorted note list. Two aggregates are bit-identical iff their
   snapshots are structurally equal, which is what the determinism
   tests compare. *)
type snapshot = {
  s_runs : int;
  s_non_manifested : int;
  s_sdc : int;
  s_detected : int;
  s_successes : int;
  s_no_vmf : int;
  s_recovered : int;
  s_latency_sum : Sim.Time.ns;
  s_latency_samples : int;
  s_notes : (string * int) list;
  s_metrics : Obs.Metrics.snapshot; (* canonical: name-sorted lists *)
  s_triage : (string * Obs.Postmortem.Triage.entry) list;
      (* canonical: signature-key-sorted, exemplar bundles included *)
}

let snapshot t =
  {
    s_runs = t.runs;
    s_non_manifested = t.non_manifested;
    s_sdc = t.sdc;
    s_detected = t.detected;
    s_successes = t.successes;
    s_no_vmf = t.no_vmf;
    s_recovered = t.recovered;
    s_latency_sum = t.latency_sum;
    s_latency_samples = t.latency_samples;
    s_notes = failure_notes t;
    s_metrics = t.metrics;
    s_triage = Obs.Postmortem.Triage.snapshot t.triage;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "runs=%d nm=%d sdc=%d det=%d succ=%d novmf=%d rec=%d lat=(%d/%d) notes=[%a]"
    s.s_runs s.s_non_manifested s.s_sdc s.s_detected s.s_successes s.s_no_vmf
    s.s_recovered s.s_latency_sum s.s_latency_samples
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s x%d" k v))
    s.s_notes

type result = {
  config_label : string;
  totals : totals;
  jobs : int; (* worker domains the campaign actually used *)
  wall_seconds : float; (* host wall-clock time for the whole campaign *)
  minor_words : float;
      (* host minor-heap words allocated across all workers, summed from
         each worker domain's own [Gc.minor_words]. Host-side accounting
         only: deliberately NOT part of [totals], which stay bit-identical
         across hosts and [jobs] values. *)
}

let runs_per_sec r =
  if r.wall_seconds > 0.0 then float_of_int r.totals.runs /. r.wall_seconds
  else 0.0

(* Per-worker accumulator: the totals plus the worker's long-lived
   machine (booted lazily in the worker's own domain and reset in place
   between runs) and that domain's allocation accounting. [acc_totals]
   is mutable because the checkpointed path swaps in a fresh totals per
   chunk (the old one is published to the coordinator). *)
type acc = {
  mutable acc_totals : totals;
  mutable acc_worker : Run.worker option;
  acc_minor_start : float;
  mutable acc_minor_words : float; (* set by the in-domain finish hook *)
  mutable acc_pm_ledger : Hyper.Ledger.t option;
      (* golden post-boot resource ledger, the baseline for a bundle's
         ledger diff; captured once per worker when postmortems are on *)
}

(* ------------------------------------------------------------------ *)
(* Pre-booted machine pools                                            *)
(* ------------------------------------------------------------------ *)

(* A machine pool pre-boots one {!Run.worker} per worker slot before the
   run loop starts, so the hot loop never pays a boot -- and on a large
   [--jobs] host the boots happen up front instead of staggered inside
   the measurement window. The recorder shape is baked in at preparation
   time, so a pool prepared with [alloc_profile]/[postmortems] can only
   serve a campaign run with the same settings ({!run} checks). *)
type pool = {
  p_workers : Run.worker array;
  p_ledgers : Hyper.Ledger.t option array;
  p_alloc_profile : bool;
  p_postmortems : bool;
}

let make_worker_recorder ~alloc_profile ~postmortems () =
  (* A tiny per-worker recorder: the campaign keeps only the metrics,
     so the event ring is minimal; metrics collection is unconditional.
     Reset between runs by [execute_into]. With postmortems on, the
     ring grows to hold one run's Warn+ events (injections, detections,
     audits): the raw material a bundle's causal timeline is cut from.
     Same shape on every worker, so bundles stay jobs-invariant. *)
  let recorder =
    if postmortems then
      Obs.Recorder.create ~capacity:256 ~min_level:Obs.Event.Warn ()
    else Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error ()
  in
  Obs.Recorder.set_alloc_profiling recorder alloc_profile;
  recorder

let pool_size p = Array.length p.p_workers

let prepare_pool ?(alloc_profile = false) ?(postmortems = false) ~jobs
    (cfg : Run.config) =
  if jobs < 1 then invalid_arg "Campaign.prepare_pool: jobs must be >= 1";
  (* Boot is seed-independent, so booting every machine from the main
     domain (before any worker exists) changes nothing about results. *)
  let workers =
    Array.init jobs (fun _ ->
        let recorder = make_worker_recorder ~alloc_profile ~postmortems () in
        Run.prepare ~recorder cfg)
  in
  let ledgers =
    Array.map
      (fun w ->
        if postmortems then Some (Hyper.Ledger.capture w.Run.w_hv) else None)
      workers
  in
  {
    p_workers = workers;
    p_ledgers = ledgers;
    p_alloc_profile = alloc_profile;
    p_postmortems = postmortems;
  }

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

(* Checkpointing a campaign: the work range is cut into fixed chunks
   (see {!Pool.map_chunks}); each completed chunk's totals are merged
   into a coordinator-side aggregate, and every [ck_every] publishes the
   aggregate plus the completed-chunk bitmap are written atomically to
   [ck_path] as an nlh-checkpoint/1 file. Because chunk boundaries are
   fixed by (n, fanout, chunk) -- never by [jobs] -- and the totals
   merge is commutative, a resumed campaign reproduces the exact
   aggregate of an uninterrupted one, whatever [--jobs] it resumes
   with. [ck_stop_after] stops claiming new chunks after that many have
   been published: the test harness's simulated kill. *)
type checkpoint = {
  ck_path : string;
  ck_every : int; (* write the file every this many published chunks *)
  ck_resume : bool; (* load [ck_path] and skip completed chunks *)
  ck_stop_after : int option;
}

(* Config/seed identity for resume validation. Excludes [fanout] and
   [chunk] on purpose: those are pinned *by* the checkpoint file, so a
   resume with different flags silently inherits the original values
   rather than corrupting chunk identity. *)
let fingerprint ~base_seed ~n (cfg : Run.config) =
  Printf.sprintf "campaign;mech=%s;fault=%s;setup=%s;base_seed=%Ld;n=%d"
    (Postmortem.mech_cli cfg.Run.mech)
    (Postmortem.fault_cli cfg.Run.fault)
    (Postmortem.setup_cli cfg.Run.setup)
    base_seed n

(* The checkpoint payload is the merged aggregate minus triage (the
   checkpointed path refuses [postmortems]; exemplar bundles are far too
   heavy to rewrite on every chunk). All fields are ints, notes are
   key-sorted and metrics name-sorted, so serialization is canonical:
   equal aggregates produce byte-identical payloads. *)
let payload_of_totals ~fanout (t : totals) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"fanout\":%d,\"totals\":{\"runs\":%d,\"non_manifested\":%d,\
        \"sdc\":%d,\"detected\":%d,\"successes\":%d,\"no_vmf\":%d,\
        \"recovered\":%d,\"latency_sum\":%d,\"latency_samples\":%d,\
        \"notes\":"
       fanout t.runs t.non_manifested t.sdc t.detected t.successes t.no_vmf
       t.recovered t.latency_sum t.latency_samples);
  Obs.Export.add_int_assoc buf (failure_notes t);
  Buffer.add_string buf ",\"metrics\":";
  Obs.Checkpoint.add_metrics buf t.metrics;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Parse a payload back into [(fanout, totals)]. Exposed (along with
   [payload_of_totals]) for the round-trip tests. *)
let totals_of_payload ?triage_seed_cap (payload : Obs.Json.t) =
  let int k v =
    match Obs.Json.(to_number (Option.value ~default:Null (member k v))) with
    | Some f when Float.is_integer f -> Ok (int_of_float f)
    | Some _ | None -> Error (Printf.sprintf "payload: %S is not an integer" k)
  in
  let ( let* ) = Result.bind in
  let* fanout = int "fanout" payload in
  match Obs.Json.member "totals" payload with
  | None -> Error "payload: missing \"totals\""
  | Some tv ->
    let* runs = int "runs" tv in
    let* non_manifested = int "non_manifested" tv in
    let* sdc = int "sdc" tv in
    let* detected = int "detected" tv in
    let* successes = int "successes" tv in
    let* no_vmf = int "no_vmf" tv in
    let* recovered = int "recovered" tv in
    let* latency_sum = int "latency_sum" tv in
    let* latency_samples = int "latency_samples" tv in
    let* notes =
      match Obs.Json.member "notes" tv with
      | Some (Obs.Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Obs.Json.to_number v with
            | Some f when Float.is_integer f -> Ok ((k, int_of_float f) :: acc)
            | Some _ | None ->
              Error (Printf.sprintf "payload: note %S is not an integer" k))
          (Ok []) fields
      | _ -> Error "payload: \"notes\" is not an object"
    in
    let* metrics =
      match Obs.Json.member "metrics" tv with
      | Some m -> Obs.Checkpoint.metrics_of_json m
      | None -> Error "payload: missing \"metrics\""
    in
    if runs <> non_manifested + sdc + detected then
      Error "payload: runs <> non_manifested + sdc + detected"
    else begin
      let t = make_totals ?triage_seed_cap () in
      t.runs <- runs;
      t.non_manifested <- non_manifested;
      t.sdc <- sdc;
      t.detected <- detected;
      t.successes <- successes;
      t.no_vmf <- no_vmf;
      t.recovered <- recovered;
      t.latency_sum <- latency_sum;
      t.latency_samples <- latency_samples;
      List.iter (fun (k, v) -> Sim.Stats.Counts.add ~by:v t.notes k) notes;
      t.metrics <- metrics;
      Ok (fanout, t)
    end

(* Run [n] injections of [cfg], varying only the seed. [jobs > 1]
   distributes the seed range over that many domains through
   {!Pool.map_reduce}; the default stays sequential so existing callers
   and tests behave exactly as before. Each worker reuses one machine
   across its runs ({!Run.prepare} / {!Run.execute_into}), which keeps
   per-run allocation -- and hence pressure on the shared stop-the-world
   minor GC -- low enough for parallel runs to actually scale. Worker
   domains are additionally capped at the host's core count unless
   [oversubscribe] is set (see {!Pool.map_reduce}). The result totals
   are identical for every [jobs] value either way.

   [alloc_profile] turns on the per-phase allocation profiler on every
   worker recorder: the merged [totals.metrics] then carry the [alloc.*]
   phase counters (still jobs-invariant -- each run's attribution depends
   only on its seed). Off by default: the phase counters stay zero and
   snapshots are unchanged.

   [fanout >= 2] switches to clone fan-out: runs are grouped into
   batches of that size, each batch drives one machine to the fault
   trigger point once ({!Run.prepare_clone}) and replays the trigger
   image for every run in the batch ({!Run.clone_into}), paying the
   boot-and-warmup cost once per batch instead of once per run. Each
   run still injects under its own seed's random stream, so outcomes
   within a batch differ; the batch's warmup comes from its first run's
   seed, so a fan-out campaign is its own (equally valid, equally
   deterministic) sampling design rather than a replay of the
   [fanout = 1] campaign. Batches never split across workers, so the
   aggregate stays bit-identical for every [jobs] value. *)
let run ?(label = "") ?(base_seed = 10_000L) ?(jobs = 1) ?chunk
    ?(oversubscribe = false) ?(alloc_profile = false) ?(fanout = 1)
    ?(postmortems = false) ?pool ?(checkpoint : checkpoint option)
    ?triage_seed_cap ~n (cfg : Run.config) =
  if fanout < 1 then invalid_arg "Campaign.run: fanout must be >= 1";
  (match pool with
  | Some p
    when p.p_alloc_profile <> alloc_profile
         || p.p_postmortems <> postmortems ->
    invalid_arg
      "Campaign.run: pool was prepared with different \
       alloc_profile/postmortems settings"
  | _ -> ());
  (match checkpoint with
  | Some _ when postmortems ->
    (* Exemplar bundles are far too heavy to rewrite every few chunks;
       soaks wanting triage can run the final aggregation un-checkpointed. *)
    invalid_arg "Campaign.run: checkpointing does not support postmortems"
  | _ -> ());
  let jobs = match pool with Some p -> min jobs (pool_size p) | None -> jobs in
  let fp = fingerprint ~base_seed ~n cfg in
  (* Resolve resume state first: the checkpoint file pins [chunk] and
     [fanout], and [fanout] shapes the work items below. *)
  let resumed =
    match checkpoint with
    | Some ck when ck.ck_resume -> (
      match Obs.Checkpoint.read ck.ck_path with
      | Error msg ->
        invalid_arg
          (Printf.sprintf "Campaign.run: cannot resume from %s: %s" ck.ck_path
             msg)
      | Ok (h, payload) ->
        if h.Obs.Checkpoint.kind <> "campaign" then
          invalid_arg
            (Printf.sprintf "Campaign.run: checkpoint kind %S is not a campaign"
               h.Obs.Checkpoint.kind);
        if h.Obs.Checkpoint.fingerprint <> fp then
          invalid_arg
            (Printf.sprintf
               "Campaign.run: checkpoint fingerprint mismatch\n  file: %s\n  \
                run:  %s"
               h.Obs.Checkpoint.fingerprint fp);
        (match totals_of_payload ?triage_seed_cap payload with
        | Error msg ->
          invalid_arg
            (Printf.sprintf "Campaign.run: cannot resume from %s: %s"
               ck.ck_path msg)
        | Ok (ck_fanout, merged) -> Some (h, ck_fanout, merged)))
    | _ -> None
  in
  let fanout =
    match resumed with Some (_, ck_fanout, _) -> ck_fanout | None -> fanout
  in
  let t0 = Unix.gettimeofday () in
  let init slot =
    let worker, ledger =
      match pool with
      | Some p when slot < pool_size p ->
        (Some p.p_workers.(slot), p.p_ledgers.(slot))
      | _ -> (None, None)
    in
    {
      acc_totals = make_totals ?triage_seed_cap ();
      acc_worker = worker;
      acc_minor_start = Gc.minor_words ();
      acc_minor_words = 0.0;
      acc_pm_ledger = ledger;
    }
  in
  let worker_of acc (cfg : Run.config) =
    match acc.acc_worker with
    | Some w -> w
    | None ->
      let recorder = make_worker_recorder ~alloc_profile ~postmortems () in
      let w = Run.prepare ~recorder cfg in
      (* Boot is seed-independent, so this baseline is identical on
         every worker (bundle determinism relies on that). *)
      if postmortems then
        acc.acc_pm_ledger <- Some (Hyper.Ledger.capture w.Run.w_hv);
      acc.acc_worker <- Some w;
      w
  in
  let merge_run_metrics acc w =
    acc.acc_totals.metrics <-
      Obs.Metrics.merge_snapshots acc.acc_totals.metrics
        (Obs.Recorder.metrics_snapshot (Run.worker_recorder w))
  in
  let seed_of i = Int64.add base_seed (Int64.of_int i) in
  (* Triage a bad outcome (lazy: good outcomes return [None] from
     [Postmortem.signature_of] and pay nothing). The bundle is only
     assembled the first time this worker sees the signature; workers
     process ascending seeds, so the captured seed is the worker-local
     minimum and the commutative triage merge keeps the global-minimum
     exemplar -- the same one a sequential campaign captures. *)
  let record_postmortem acc (w : Run.worker) (cfg : Run.config) out ~seed
      ~repro =
    match
      Postmortem.signature_of cfg ~first_target:w.Run.w_last_target out
    with
    | None -> ()
    | Some sg ->
      let tr = acc.acc_totals.triage in
      let bundle =
        if Obs.Postmortem.Triage.mem tr sg then None
        else
          Some
            (Postmortem.capture ~signature:sg ~hv:w.Run.w_hv
               ~golden_ledger:acc.acc_pm_ledger ~repro
               ~config:(Postmortem.config_fields cfg ~fanout) ~seed out)
      in
      Obs.Postmortem.Triage.record ?bundle tr sg ~seed
  in
  let run_one acc i =
    let cfg = { cfg with Run.seed = seed_of i } in
    let w = worker_of acc cfg in
    let out = Run.execute_into w cfg in
    add_outcome acc.acc_totals out;
    merge_run_metrics acc w;
    if postmortems then
      record_postmortem acc w cfg out ~seed:(seed_of i)
        ~repro:(Postmortem.repro_line cfg ~seed:(seed_of i) ~runs:1 ~fanout:1)
  in
  (* One fan-out batch: runs [g * fanout .. min n ((g+1) * fanout) - 1],
     prepared once and cloned per run. A batch is a single [body] call,
     so the pool can never split it across workers -- the per-batch
     results depend only on (config, base_seed, g, fanout). *)
  let run_batch acc g =
    let first = g * fanout in
    let last = min n (first + fanout) - 1 in
    let group_cfg = { cfg with Run.seed = seed_of first } in
    let w = worker_of acc group_cfg in
    let src = Run.prepare_clone w group_cfg in
    for i = first to last do
      let out = Run.clone_into ~reseed:(seed_of i) src in
      add_outcome acc.acc_totals out;
      merge_run_metrics acc w;
      if postmortems then
        (* The repro is the batch prefix up to this variant: a fan-out
           variant's warmup comes from the batch's first seed, so the
           seed alone does not reproduce it. *)
        record_postmortem acc w group_cfg out ~seed:(seed_of i)
          ~repro:
            (Postmortem.repro_line group_cfg ~seed:(seed_of first)
               ~runs:(i - first + 1) ~fanout)
    done
  in
  let pool_n, body =
    if fanout > 1 then (((n + fanout - 1) / fanout), run_batch)
    else (n, run_one)
  in
  match checkpoint with
  | None ->
    let acc =
      Pool.map_reduce ~jobs ?chunk ~oversubscribe ~n:pool_n ~init ~body
        ~finish:(fun acc ->
          (* [Gc.minor_words] is per-domain in OCaml 5, so the delta must
             be taken here, in the worker's own domain. *)
          acc.acc_minor_words <- Gc.minor_words () -. acc.acc_minor_start)
        ~merge:(fun a b ->
          merge_into a.acc_totals b.acc_totals;
          a.acc_minor_words <- a.acc_minor_words +. b.acc_minor_words;
          a)
        ()
    in
    let used_jobs =
      (* Mirror the pool's clamps so the report shows the worker count
         that actually ran: bounded by the work-item count and, unless
         oversubscribing, by the core count. *)
      let j = max 1 (min jobs (max 1 pool_n)) in
      if oversubscribe then j else min j (Pool.default_jobs ())
    in
    {
      config_label = label;
      totals = acc.acc_totals;
      jobs = used_jobs;
      wall_seconds = Unix.gettimeofday () -. t0;
      minor_words = acc.acc_minor_words;
    }
  | Some ck ->
    (* Streaming, checkpointed path: workers run one fixed chunk at a
       time, publish the chunk's totals to the coordinator, and start
       the next chunk with a fresh bounded accumulator -- memory never
       scales with [n]. The coordinator owns the only growing state:
       one merged totals plus the done bitmap. *)
    let chunk_size, merged, done_chunks =
      match resumed with
      | Some (h, _, merged) ->
        (h.Obs.Checkpoint.chunk, merged, h.Obs.Checkpoint.done_chunks)
      | None ->
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> Pool.default_chunk ~n:pool_n ~jobs:(max 1 jobs)
        in
        let n_chunks = if pool_n <= 0 then 0 else (pool_n + c - 1) / c in
        (c, make_totals ?triage_seed_cap (), Array.make n_chunks false)
    in
    let n_chunks = Array.length done_chunks in
    (match resumed with
    | Some (h, _, _) ->
      (* The file's geometry must reproduce from (n, fanout, chunk):
         a checkpoint written for a different range would mis-map chunk
         indices to seed ranges. *)
      if
        h.Obs.Checkpoint.n_chunks
        <> (if pool_n <= 0 then 0 else (pool_n + chunk_size - 1) / chunk_size)
      then
        invalid_arg
          (Printf.sprintf
             "Campaign.run: checkpoint has %d chunks but n=%d fanout=%d \
              chunk=%d implies %d"
             h.Obs.Checkpoint.n_chunks n fanout chunk_size
             ((pool_n + chunk_size - 1) / chunk_size))
    | None -> ());
    let published = ref 0 in
    let minor_total = ref 0.0 in
    let write_ck () =
      Obs.Checkpoint.write ~path:ck.ck_path
        {
          Obs.Checkpoint.kind = "campaign";
          fingerprint = fp;
          chunk = chunk_size;
          n_chunks;
          done_chunks;
        }
        ~payload:(payload_of_totals ~fanout merged)
    in
    (* Runs under [map_chunks]' mutex, like [finish] below. *)
    let publish c t =
      merge_into merged t;
      done_chunks.(c) <- true;
      incr published;
      if ck.ck_every > 0 && !published mod ck.ck_every = 0 then write_ck ()
    in
    let should_stop () =
      match ck.ck_stop_after with
      | Some m -> !published >= m
      | None -> false
    in
    Pool.map_chunks ~jobs ~oversubscribe ~should_stop ~n_chunks
      ~skip:(fun c -> done_chunks.(c))
      ~init
      ~body:(fun acc c ->
        acc.acc_totals <- make_totals ?triage_seed_cap ();
        let lo = c * chunk_size in
        let hi = min pool_n (lo + chunk_size) in
        for i = lo to hi - 1 do
          body acc i
        done;
        acc.acc_totals)
      ~publish
      ~finish:(fun acc ->
        acc.acc_minor_words <- Gc.minor_words () -. acc.acc_minor_start;
        minor_total := !minor_total +. acc.acc_minor_words)
      ();
    (* Always leave a final consistent file, even when [ck_every] did
       not divide the published count (or nothing ran at all). *)
    write_ck ();
    let used_jobs =
      let j = max 1 (min jobs (max 1 n_chunks)) in
      if oversubscribe then j else min j (Pool.default_jobs ())
    in
    {
      config_label = label;
      totals = merged;
      jobs = used_jobs;
      wall_seconds = Unix.gettimeofday () -. t0;
      minor_words = !minor_total;
    }

let success_rate r =
  Sim.Stats.proportion ~successes:r.totals.successes ~trials:(max 1 r.totals.detected)

let no_vmf_rate r =
  Sim.Stats.proportion ~successes:r.totals.no_vmf ~trials:(max 1 r.totals.detected)

let breakdown r =
  let n = float_of_int (max 1 r.totals.runs) in
  ( 100.0 *. float_of_int r.totals.non_manifested /. n,
    100.0 *. float_of_int r.totals.sdc /. n,
    100.0 *. float_of_int r.totals.detected /. n )

(* Mean recovery latency in float nanoseconds: integer division floored
   sub-ns-granularity averages, so the mean is computed in float. *)
let mean_latency r =
  Sim.Stats.mean_of_sum ~sum:r.totals.latency_sum
    ~samples:r.totals.latency_samples

let pp fmt r =
  let nm, sdc, det = breakdown r in
  Format.fprintf fmt
    "%s: runs=%d outcomes: non-manifested %.1f%%, SDC %.1f%%, detected %.1f%% | \
     success %a, noVMF %a@."
    r.config_label r.totals.runs nm sdc det Sim.Stats.pp_proportion
    (success_rate r) Sim.Stats.pp_proportion (no_vmf_rate r);
  if r.wall_seconds > 0.0 then
    Format.fprintf fmt "%s: wall %.2fs, %.1f runs/s (jobs=%d, cores=%d)@."
      r.config_label r.wall_seconds (runs_per_sec r) r.jobs
      (Domain.recommended_domain_count ())
