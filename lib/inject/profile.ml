(** Manifestation model: what a bit flip does, by fault type.

    The *frequencies* here are the calibrated inputs of the simulation
    (they stand in for the microarchitectural lottery of which register
    bit a real flip hits); everything downstream -- where the damage
    lands, whether it is detected, whether recovery repairs it -- is
    mechanical. Calibration anchors: the outcome breakdowns of
    Section VII-A (Register: 74.8% non-manifested / 5.6% SDC / 19.6%
    detected; Code: 35.0% / 12.1% / 52.9%). *)

type manifestation = {
  corruptions : int; (* how many wild-write corruptions to apply *)
  crash_now : [ `No | `Panic | `Hang ];
  guest_hit : bool; (* additionally corrupt guest-owned state *)
}

let no_effect = { corruptions = 0; crash_now = `No; guest_hit = false }

(* Failstop: program counter forced to 0 -- an immediate fatal trap with
   no preceding corruption. *)
let failstop = { corruptions = 0; crash_now = `Panic; guest_hit = false }

(* Register faults: most flips hit a dead register or a value that never
   influences control or memory traffic. *)
let register_distribution =
  [
    (0.735, no_effect);
    (0.135, { corruptions = 0; crash_now = `Panic; guest_hit = false });
    (0.025, { corruptions = 0; crash_now = `Hang; guest_hit = false });
    (0.018, { corruptions = 1; crash_now = `Panic; guest_hit = false });
    (0.042, { corruptions = 1; crash_now = `No; guest_hit = false });
    (0.030, { corruptions = 0; crash_now = `No; guest_hit = true });
    (0.015, { corruptions = 1; crash_now = `No; guest_hit = true });
  ]

(* Code faults: corrupted instructions execute for longer before
   trapping, so fewer flips are absorbed silently and the ones that
   manifest propagate wider (two corruptions) before detection. *)
let code_distribution =
  [
    (0.320, no_effect);
    (0.330, { corruptions = 0; crash_now = `Panic; guest_hit = false });
    (0.050, { corruptions = 0; crash_now = `Hang; guest_hit = false });
    (0.095, { corruptions = 2; crash_now = `Panic; guest_hit = false });
    (0.105, { corruptions = 2; crash_now = `No; guest_hit = false });
    (0.060, { corruptions = 0; crash_now = `No; guest_hit = true });
    (0.040, { corruptions = 1; crash_now = `No; guest_hit = true });
  ]

(* Data faults: the flip lands directly in a hypervisor data structure,
   so there is no immediate trap at all -- the damage sits latent until
   something reads it. Most flips hit dead or never-read words; the ones
   that land in live metadata corrupt one structure; a small fraction
   hit a word that is dereferenced immediately. *)
let data_distribution =
  [
    (0.450, no_effect);
    (0.330, { corruptions = 1; crash_now = `No; guest_hit = false });
    (0.120, { corruptions = 1; crash_now = `Panic; guest_hit = false });
    (0.060, { corruptions = 2; crash_now = `No; guest_hit = false });
    (0.040, { corruptions = 0; crash_now = `Hang; guest_hit = false });
  ]

let sample_manifestation rng (fault : Fault.t) =
  match fault with
  | Fault.Failstop -> failstop
  | Fault.Register -> Sim.Rng.choose_weighted rng register_distribution
  | Fault.Code -> Sim.Rng.choose_weighted rng code_distribution
  | Fault.Data -> Sim.Rng.choose_weighted rng data_distribution

(* Where a wild write lands. Weighted by the footprint and write
   frequency of each structure class in hypervisor execution. The three
   rarest classes are the ones the paper's failure analysis names: the
   corrupted recovery routine, a failed PrivVM, and corrupted linked
   lists / heaps. *)
let corruption_targets =
  [
    (0.270, Corrupt.Pfn_validated_flip);
    (0.170, Corrupt.Pfn_use_count_skew);
    (0.160, Corrupt.Sched_metadata);
    (0.120, Corrupt.Timer_deadline);
    (0.020, Corrupt.Timer_structure);
    (0.020, Corrupt.Heap_freelist);
    (0.025, Corrupt.Static_scalar);
    (0.045, Corrupt.Domain_struct);
    (0.030, Corrupt.Privvm_critical);
    (0.025, Corrupt.Recovery_handler);
    (0.115, Corrupt.Guest_frame);
  ]

let sample_corruption_target rng = Sim.Rng.choose_weighted rng corruption_targets

(* Data faults corrupt the two structure families the taxonomy names --
   heap block headers and pfn descriptors -- rather than the wild-write
   footprint above. *)
let data_corruption_targets =
  [
    (0.40, Corrupt.Heap_header);
    (0.25, Corrupt.Pfn_validated_flip);
    (0.20, Corrupt.Pfn_use_count_skew);
    (0.15, Corrupt.Pfn_type_scramble);
  ]

(* Target distribution by fault kind: identical to
   [sample_corruption_target] for the datapath kinds, so adding [Data]
   changed nothing about existing campaigns' streams. *)
let sample_corruption_target_for rng (fault : Fault.t) =
  match fault with
  | Fault.Data -> Sim.Rng.choose_weighted rng data_corruption_targets
  | Fault.Failstop | Fault.Register | Fault.Code ->
    Sim.Rng.choose_weighted rng corruption_targets

(* Probability that, at detection time, another CPU is mid-flight inside
   the hypervisor (its thread is then also discarded with partial state
   left behind). Hypervisor execution is <5% of cycles in typical
   deployments, but detection is biased towards busy periods. *)
let concurrent_busy_prob = 0.30
