(** Resource-leak ledger.

    NiLiHype's endurance argument (Section III / VI of the paper) is that
    abandoning all in-flight hypervisor work leaks only a bounded, small
    amount of resources per recovery -- a few page frames, a few heap
    blocks -- so one instance can survive hundreds of successive
    recoveries. This module is the accounting for that claim: a cheap
    snapshot of every pool the hypervisor allocates from, taken at
    quiesce points (no request mid-flight), and a per-cycle diff that
    attributes leaks to each recovery.

    Two views are recorded, because they answer different questions:

    - {b raw counts} (live heap bytes/blocks, frames by type, bound
      event channels, in-use grant entries, queued timers, domains and
      vCPUs). These drift under a healthy workload -- [mmu_update]
      pins a fresh page-table frame, [memory_op] populates and
      decreases reservations, [set_timer_op] queues one-shots -- so
      their diff across a workload segment is expected to be non-zero
      and is reported for context only.
    - the {b orphan view}: resources reachable from no live owner --
      frames whose owner is dead or whose owner does not account for
      them, heap blocks belonging to dead domains, stale frame
      references, locks still held at quiesce, recurring timers gone
      missing. In a healthy system every one of these is zero at every
      quiesce point regardless of workload, so any growth is a genuine
      leak and is what budget assertions ("few pages per recovery")
      check. *)

type t = {
  (* Raw counts: workload-dependent, reported for context. *)
  heap_bytes : int;
  heap_blocks : int;
  frames_used : int; (* non-Free page frames *)
  frames_page_table : int;
  frames_writable : int;
  evtchn_bound : int;
  evtchn_pending : int;
  grant_in_use : int;
  grant_mapped : int;
  timers_queued : int;
  domains_alive : int;
  vcpus : int;
  (* Orphan view: zero at every healthy quiesce point. *)
  orphan_frames : int;
      (* used frames owned by no live domain, or unaccounted by their
         owner's frame list *)
  stale_frame_refs : int;
      (* entries in a live domain's frame list pointing at a frame that
         is free or owned by someone else *)
  orphan_heap_blocks : int; (* heap objects belonging to dead domains *)
  orphan_heap_bytes : int;
  static_locks_held : int;
  heap_locks_held : int;
  recurring_missing : int;
}

(* Per-domain lock allocations are named "d<domid>_<what>" (see
   [Domain.create], [Evtchn.create], [Grant.create]); recovering the
   owner from the name is what lets the ledger spot lock objects that
   outlived their domain. Per-CPU locks ("percpu<n>_sched") and static
   locks do not match and are never orphans. *)
let lock_owner_domid name =
  if String.length name >= 3 && name.[0] = 'd' then
    match String.index_opt name '_' with
    | Some i when i > 1 -> int_of_string_opt (String.sub name 1 (i - 1))
    | _ -> None
  else None

let capture (hv : Hypervisor.t) =
  let live = Hashtbl.create 8 in
  let owned = Hashtbl.create 256 in
  let domains_alive = ref 0 and vcpus = ref 0 in
  let evtchn_bound = ref 0 and evtchn_pending = ref 0 in
  let grant_in_use = ref 0 and grant_mapped = ref 0 in
  List.iter
    (fun (d : Domain.t) ->
      if d.Domain.alive then begin
        incr domains_alive;
        vcpus := !vcpus + Array.length d.Domain.vcpus;
        Hashtbl.replace live d.Domain.domid ();
        List.iter
          (fun f -> Hashtbl.replace owned (d.Domain.domid, f) ())
          d.Domain.owned_frames;
        Array.iter
          (fun (c : Evtchn.chan) ->
            if c.Evtchn.bound then incr evtchn_bound;
            if c.Evtchn.pending then incr evtchn_pending)
          d.Domain.evtchn.Evtchn.chans;
        Array.iter
          (fun (e : Grant.entry) ->
            if e.Grant.in_use then incr grant_in_use;
            if e.Grant.mapped_by <> -1 then incr grant_mapped)
          d.Domain.grants.Grant.entries
      end)
    (Hypervisor.all_domains hv);
  let is_live domid = Hashtbl.mem live domid in
  let frames_used = ref 0 in
  let frames_page_table = ref 0 and frames_writable = ref 0 in
  let orphan_frames = ref 0 in
  let pfn = hv.Hypervisor.pfn in
  for i = 0 to Pfn.frames pfn - 1 do
    let d = Pfn.get pfn i in
    if d.Pfn.ptype <> Pfn.Free then begin
      incr frames_used;
      (match d.Pfn.ptype with
      | Pfn.Page_table -> incr frames_page_table
      | Pfn.Writable -> incr frames_writable
      | Pfn.Free | Pfn.Segdesc | Pfn.Shared | Pfn.Xenheap -> ());
      if not (is_live d.Pfn.owner && Hashtbl.mem owned (d.Pfn.owner, i)) then
        incr orphan_frames
    end
  done;
  let stale_frame_refs = ref 0 in
  Hashtbl.iter
    (fun (domid, f) () ->
      let d = Pfn.get pfn f in
      if d.Pfn.ptype = Pfn.Free || d.Pfn.owner <> domid then
        incr stale_frame_refs)
    owned;
  let orphan_heap_blocks = ref 0 and orphan_heap_bytes = ref 0 in
  let heap_locks_held = ref 0 in
  Heap.iter_live hv.Hypervisor.heap (fun (obj : Heap.obj) ->
      let orphaned =
        match obj.Heap.kind with
        | Heap.Domain_data domid -> not (is_live domid)
        | Heap.Lock l -> (
          if Spinlock.is_held l then incr heap_locks_held;
          match lock_owner_domid l.Spinlock.name with
          | Some domid -> not (is_live domid)
          | None -> false)
        | Heap.Timer_data | Heap.Percpu_area _ | Heap.Generic -> false
      in
      if orphaned then begin
        incr orphan_heap_blocks;
        orphan_heap_bytes := !orphan_heap_bytes + obj.Heap.size
      end);
  let static_locks_held = ref 0 in
  Spinlock.Segment.iter hv.Hypervisor.static_segment (fun l ->
      if Spinlock.is_held l then incr static_locks_held);
  {
    heap_bytes = Heap.bytes_live hv.Hypervisor.heap;
    heap_blocks = Heap.live_count hv.Hypervisor.heap;
    frames_used = !frames_used;
    frames_page_table = !frames_page_table;
    frames_writable = !frames_writable;
    evtchn_bound = !evtchn_bound;
    evtchn_pending = !evtchn_pending;
    grant_in_use = !grant_in_use;
    grant_mapped = !grant_mapped;
    timers_queued = Timer_heap.size hv.Hypervisor.timers;
    domains_alive = !domains_alive;
    vcpus = !vcpus;
    orphan_frames = !orphan_frames;
    stale_frame_refs = !stale_frame_refs;
    orphan_heap_blocks = !orphan_heap_blocks;
    orphan_heap_bytes = !orphan_heap_bytes;
    static_locks_held = !static_locks_held;
    heap_locks_held = !heap_locks_held;
    recurring_missing =
      List.length (Timer_heap.missing_recurring hv.Hypervisor.timers);
  }

(* The ledger as (name, value) rows, in a fixed order shared by
   snapshots and diffs -- the vocabulary for JSON export, [Leak_delta]
   events and the per-resource leak counters. *)
let fields t =
  [
    ("heap_bytes", t.heap_bytes);
    ("heap_blocks", t.heap_blocks);
    ("frames_used", t.frames_used);
    ("frames_page_table", t.frames_page_table);
    ("frames_writable", t.frames_writable);
    ("evtchn_bound", t.evtchn_bound);
    ("evtchn_pending", t.evtchn_pending);
    ("grant_in_use", t.grant_in_use);
    ("grant_mapped", t.grant_mapped);
    ("timers_queued", t.timers_queued);
    ("domains_alive", t.domains_alive);
    ("vcpus", t.vcpus);
    ("orphan_frames", t.orphan_frames);
    ("stale_frame_refs", t.stale_frame_refs);
    ("orphan_heap_blocks", t.orphan_heap_blocks);
    ("orphan_heap_bytes", t.orphan_heap_bytes);
    ("static_locks_held", t.static_locks_held);
    ("heap_locks_held", t.heap_locks_held);
    ("recurring_missing", t.recurring_missing);
  ]

(* Field-wise [after - before]. The result is itself a [t], so the same
   accessors and printers apply to snapshots and to per-cycle deltas. *)
let diff ~before ~after =
  {
    heap_bytes = after.heap_bytes - before.heap_bytes;
    heap_blocks = after.heap_blocks - before.heap_blocks;
    frames_used = after.frames_used - before.frames_used;
    frames_page_table = after.frames_page_table - before.frames_page_table;
    frames_writable = after.frames_writable - before.frames_writable;
    evtchn_bound = after.evtchn_bound - before.evtchn_bound;
    evtchn_pending = after.evtchn_pending - before.evtchn_pending;
    grant_in_use = after.grant_in_use - before.grant_in_use;
    grant_mapped = after.grant_mapped - before.grant_mapped;
    timers_queued = after.timers_queued - before.timers_queued;
    domains_alive = after.domains_alive - before.domains_alive;
    vcpus = after.vcpus - before.vcpus;
    orphan_frames = after.orphan_frames - before.orphan_frames;
    stale_frame_refs = after.stale_frame_refs - before.stale_frame_refs;
    orphan_heap_blocks = after.orphan_heap_blocks - before.orphan_heap_blocks;
    orphan_heap_bytes = after.orphan_heap_bytes - before.orphan_heap_bytes;
    static_locks_held = after.static_locks_held - before.static_locks_held;
    heap_locks_held = after.heap_locks_held - before.heap_locks_held;
    recurring_missing = after.recurring_missing - before.recurring_missing;
  }

(* The orphan-view row names: the fixed per-resource vocabulary for
   leak counters ("endure.leak.<resource>") and [Leak_delta] events. *)
let leak_resource_names =
  [
    "orphan_frames";
    "stale_frame_refs";
    "orphan_heap_blocks";
    "orphan_heap_bytes";
    "static_locks_held";
    "heap_locks_held";
    "recurring_missing";
  ]

(* The orphan-view rows of a diff: the per-resource leak attribution.
   Non-empty means the interval leaked (or repaired, if negative). *)
let leak_fields d =
  List.filter
    (fun (name, v) -> v <> 0 && List.mem name leak_resource_names)
    (fields d)

let no_leak d = leak_fields d = []

(* The paper's budget unit: page frames leaked. Stale references are
   counted too -- a frame the owner lost track of is unusable either
   way. Negative contributions (a later recovery repairing an earlier
   leak) do not offset the budget check's intent, so clamp at 0. *)
let leaked_pages d = max 0 d.orphan_frames + max 0 d.stale_frame_refs

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf fmt "@ ";
      Format.fprintf fmt "%s=%d" name v)
    (fields t);
  Format.fprintf fmt "@]"

(* Compact diff rendering: only the fields that moved. *)
let pp_diff fmt d =
  let moved = List.filter (fun (_, v) -> v <> 0) (fields d) in
  if moved = [] then Format.pp_print_string fmt "(no change)"
  else begin
    Format.fprintf fmt "@[<hov 2>";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Format.fprintf fmt "@ ";
        Format.fprintf fmt "%s%+d" (name ^ ":") v)
      moved;
    Format.fprintf fmt "@]"
  end
