(** Hypercall vocabulary and in-flight call records.

    The mix mirrors the hypercalls the paper's workloads stress: virtual
    memory management (mmu_update, update_va_mapping, memory_op) for
    UnixBench, grant-table and event-channel operations for BlkBench /
    NetBench I/O, scheduling operations, and the multicall batching whose
    fine-granularity retry Section IV introduces. *)

type kind =
  | Mmu_update of int (* number of page-table entry updates *)
  | Update_va_mapping
  | Memory_op_populate (* increase reservation: allocates frames *)
  | Memory_op_decrease (* decrease reservation: frees frames *)
  | Grant_table_op of int (* number of grant map/unmap sub-ops *)
  | Event_channel_send
  | Event_channel_bind
  | Sched_op_yield
  | Sched_op_block
  | Set_timer_op
  | Console_io
  | Vcpu_op_info
  | Domctl_create_domain
  | Domctl_destroy_domain
  | Domctl_pause_domain
  | Multicall of kind list

let rec name = function
  | Mmu_update n -> Printf.sprintf "mmu_update(%d)" n
  | Update_va_mapping -> "update_va_mapping"
  | Memory_op_populate -> "memory_op(populate)"
  | Memory_op_decrease -> "memory_op(decrease)"
  | Grant_table_op n -> Printf.sprintf "grant_table_op(%d)" n
  | Event_channel_send -> "evtchn_send"
  | Event_channel_bind -> "evtchn_bind"
  | Sched_op_yield -> "sched_op(yield)"
  | Sched_op_block -> "sched_op(block)"
  | Set_timer_op -> "set_timer_op"
  | Console_io -> "console_io"
  | Vcpu_op_info -> "vcpu_op(info)"
  | Domctl_create_domain -> "domctl(create)"
  | Domctl_destroy_domain -> "domctl(destroy)"
  | Domctl_pause_domain -> "domctl(pause)"
  | Multicall kinds ->
    Printf.sprintf "multicall[%s]" (String.concat "," (List.map name kinds))

(* Constant-string variant of [name] for the flight recorder's hot path:
   drops the per-call detail (sub-op counts, multicall contents) so no
   formatting -- and no allocation -- happens per hypercall. *)
let static_name = function
  | Mmu_update _ -> "mmu_update"
  | Update_va_mapping -> "update_va_mapping"
  | Memory_op_populate -> "memory_op(populate)"
  | Memory_op_decrease -> "memory_op(decrease)"
  | Grant_table_op _ -> "grant_table_op"
  | Event_channel_send -> "evtchn_send"
  | Event_channel_bind -> "evtchn_bind"
  | Sched_op_yield -> "sched_op(yield)"
  | Sched_op_block -> "sched_op(block)"
  | Set_timer_op -> "set_timer_op"
  | Console_io -> "console_io"
  | Vcpu_op_info -> "vcpu_op(info)"
  | Domctl_create_domain -> "domctl(create)"
  | Domctl_destroy_domain -> "domctl(destroy)"
  | Domctl_pause_domain -> "domctl(pause)"
  | Multicall _ -> "multicall"

(* Hypercalls whose naive re-execution corrupts state: they update
   reference counters / validation bits in page-frame descriptors. *)
let rec non_idempotent = function
  | Mmu_update _ | Update_va_mapping | Memory_op_populate | Memory_op_decrease
  | Grant_table_op _ | Domctl_create_domain | Domctl_destroy_domain ->
    true
  | Event_channel_send | Event_channel_bind | Sched_op_yield | Sched_op_block
  | Set_timer_op | Console_io | Vcpu_op_info | Domctl_pause_domain ->
    false
  | Multicall kinds -> List.exists non_idempotent kinds

(* In-flight record attached to the issuing vCPU; recovery uses it to set
   the vCPU up so the hypercall is retried on resume. The record carries
   the call's arguments (a retried hypercall replays the *same*
   arguments, which is what makes non-idempotent re-execution dangerous)
   and its undo journal. *)
type record = {
  kind : kind;
  mutable sub_completed : int;
      (* completed components of a multicall, logged when
         hypercall_progress_tracking is on (fine-granularity retry) *)
  mutable retries : int;
  mutable committed : bool;
  mutable target_frames : int list; (* frame arguments, fixed on first run *)
  mutable fresh_frames : int list; (* frames allocated by this call *)
  mutable children : record list; (* per-component records of a multicall *)
  enhanced : bool;
      (* [false] models the handlers the retry-failure mitigation did not
         cover ("we have not tested all hypercall handlers... the changes
         do not resolve 100% of the problem", Section IV) *)
  journal : Journal.t;
}

let make_record ?(enhanced = true) ~logging kind =
  let journal = Journal.create () in
  Journal.set_enabled journal (logging && enhanced);
  {
    kind;
    sub_completed = 0;
    retries = 0;
    committed = false;
    target_frames = [];
    fresh_frames = [];
    children = [];
    enhanced;
    journal;
  }
