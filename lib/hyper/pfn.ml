(** Page-frame descriptor table.

    Each physical frame has a descriptor with a validation bit, a use
    counter and a type -- the two components the paper singles out as
    being left mutually inconsistent by a failure ("the validation bit
    and the page use counter... can cause the hypervisor to hang
    following recovery"). The consistency scan over this table is the
    dominant component of NiLiHype's 22 ms recovery latency (21 ms for
    8 GB).

    The table is also the only O(machine) structure in the simulator
    (64 Ki descriptors on the campaign configuration), so it carries
    the copy-on-write machinery behind {!Hypervisor.snapshot}: every
    descriptor holds a golden copy of its mutable fields plus a dirty
    bit, and a shared per-table dirty list records which descriptors
    have been written since the last {!snapshot}. Both {!snapshot} and
    {!restore} walk only that list -- O(changed frames), not
    O(all frames). Mutators inside this module mark descriptors dirty
    themselves; the few external writers (the journal's undo arms, the
    fault injector's wild writes) call {!touch} explicitly. *)

type page_type =
  | Free
  | Writable
  | Page_table
  | Segdesc
  | Shared
  | Xenheap

type desc = {
  index : int;
  mutable validated : bool;
  mutable use_count : int;
  mutable ptype : page_type;
  mutable owner : int; (* domid, -1 = unowned *)
  (* Golden image of the four mutable fields, refreshed by [snapshot]. *)
  mutable g_validated : bool;
  mutable g_use_count : int;
  mutable g_ptype : page_type;
  mutable g_owner : int;
  mutable dirty : bool; (* on the table's dirty list? *)
  tracker : tracker; (* back-pointer: mutators see only the desc *)
}

and tracker = { mutable dirty_list : desc list }

type t = {
  descs : desc array;
  mutable free_head : int; (* cursor for simple free-frame allocation *)
  mutable g_free_head : int; (* free_head at the last snapshot *)
  tracker : tracker;
  mutable tracking_ok : bool;
      (* Is the dirty tracking itself trustworthy? The incremental
         recovery scan walks only the dirty list, which is sound exactly
         when every write since the last consistent baseline went
         through {!touch}. A wild write into the tracking structures
         ({!invalidate_tracking}, e.g. the fault injector's
         [Pfn_tracker] target) or a recovery attempt that itself died
         mid-flight clears this; recovery then falls back to the full
         scan. Re-established by {!snapshot}/{!restore}/{!reset}, which
         install a fresh consistent baseline. *)
}

let page_type_name = function
  | Free -> "free"
  | Writable -> "writable"
  | Page_table -> "page_table"
  | Segdesc -> "segdesc"
  | Shared -> "shared"
  | Xenheap -> "xenheap"

let create ~frames =
  let tracker = { dirty_list = [] } in
  {
    descs =
      Array.init frames (fun index ->
          {
            index;
            validated = false;
            use_count = 0;
            ptype = Free;
            owner = -1;
            g_validated = false;
            g_use_count = 0;
            g_ptype = Free;
            g_owner = -1;
            dirty = false;
            tracker;
          });
    free_head = 0;
    g_free_head = 0;
    tracker;
    tracking_ok = true;
  }

let frames t = Array.length t.descs
let get t i = t.descs.(i)

(* Mark a descriptor as modified since the last snapshot. First touch
   costs one list cons; subsequent touches are a load and a branch. *)
let touch d =
  if not d.dirty then begin
    d.dirty <- true;
    d.tracker.dirty_list <- d :: d.tracker.dirty_list
  end

(* Refresh the golden image: copy the live fields of every descriptor
   written since the previous snapshot and drain the dirty list.
   O(changed frames). *)
let snapshot t =
  List.iter
    (fun d ->
      d.g_validated <- d.validated;
      d.g_use_count <- d.use_count;
      d.g_ptype <- d.ptype;
      d.g_owner <- d.owner;
      d.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  t.g_free_head <- t.free_head;
  t.tracking_ok <- true

(* Rewind every descriptor written since the last snapshot back to its
   golden image. O(changed frames); repeatable (the dirty list is
   drained, later writes re-dirty). *)
let restore t =
  List.iter
    (fun d ->
      d.validated <- d.g_validated;
      d.use_count <- d.g_use_count;
      d.ptype <- d.g_ptype;
      d.owner <- d.g_owner;
      d.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  t.free_head <- t.g_free_head;
  t.tracking_ok <- true

let dirty_count t = List.length t.tracker.dirty_list
let dirty_descs t = t.tracker.dirty_list
let tracking_usable t = t.tracking_ok
let invalidate_tracking t = t.tracking_ok <- false

(* Return every descriptor to its created state and rewind the allocation
   cursor, so a reused table hands out frames in exactly fresh-boot order.
   Must touch all descriptors: injected corruption can dirty any frame.
   The golden image is rewound too -- after a reset the table looks
   exactly as created, snapshot baseline included. *)
let reset t =
  Array.iter
    (fun d ->
      d.validated <- false;
      d.use_count <- 0;
      d.ptype <- Free;
      d.owner <- -1;
      d.g_validated <- false;
      d.g_use_count <- 0;
      d.g_ptype <- Free;
      d.g_owner <- -1;
      d.dirty <- false)
    t.descs;
  t.tracker.dirty_list <- [];
  t.free_head <- 0;
  t.g_free_head <- 0;
  t.tracking_ok <- true

(* Allocate a free frame for a domain. Raises if the table is exhausted
   (campaign configurations are sized so this cannot happen in a healthy
   run). *)
let alloc_frame t ~owner ~ptype =
  let n = frames t in
  let rec find tries i =
    if tries > n then Crash.panic "pfn: out of physical frames"
    else begin
      let d = t.descs.(i mod n) in
      if d.ptype = Free && d.use_count = 0 && not d.validated then d
      else find (tries + 1) (i + 1)
    end
  in
  let d = find 0 t.free_head in
  t.free_head <- (d.index + 1) mod n;
  touch d;
  d.ptype <- ptype;
  d.owner <- owner;
  d.use_count <- 1;
  d

(* get_page / put_page: the non-idempotent reference-count pair the paper
   discusses. Both assert like Xen does. *)
let get_page d =
  Crash.hv_assert (d.ptype <> Free) "get_page on free frame %d" d.index;
  touch d;
  d.use_count <- d.use_count + 1

let put_page d =
  if d.use_count <= 0 then
    Crash.panic "pfn %d: use_count underflow (double put)" d.index;
  touch d;
  d.use_count <- d.use_count - 1;
  if d.use_count = 0 then begin
    d.validated <- false;
    d.ptype <- Free;
    d.owner <- -1
  end

(* validate / invalidate: setting the validation bit twice is a BUG() in
   Xen -- exactly the hazard a retried non-idempotent hypercall hits. *)
let validate d =
  if d.validated then
    Crash.panic "pfn %d: validating an already-validated frame" d.index;
  Crash.hv_assert (d.use_count > 0) "validate with zero use_count on %d" d.index;
  touch d;
  d.validated <- true

let invalidate d =
  if not d.validated then
    Crash.panic "pfn %d: invalidating a non-validated frame" d.index;
  touch d;
  d.validated <- false

let consistent d =
  match d.ptype with
  | Free -> d.use_count = 0 && not d.validated && d.owner = -1
  | Writable | Page_table | Segdesc | Shared | Xenheap ->
    d.use_count > 0 && (d.use_count <= 1_000_000) && ((not d.validated) || d.use_count > 0)

(* Detect validation-bit / use-counter disagreement on one descriptor
   and repair it. The repair is a pure function of the descriptor's own
   fields, so the scans below may visit descriptors in any order (full
   array sweep, dirty-list walk, per-domain shard) and converge on the
   same table. Returns whether a repair was made. *)
let fix_desc d =
  if consistent d then false
  else begin
    touch d;
    if d.ptype = Free then begin
      (* A frame marked free must carry no references. *)
      d.use_count <- 0;
      d.validated <- false;
      d.owner <- -1
    end
    else if d.use_count <= 0 then begin
      (* Typed page with no references: return it to the allocator. *)
      d.use_count <- 0;
      d.validated <- false;
      d.ptype <- Free;
      d.owner <- -1
    end
    else if d.use_count > 1_000_000 then begin
      (* Wild counter value: clamp and drop validation. *)
      d.use_count <- 1;
      d.validated <- false
    end;
    true
  end

(* The recovery-time scan: walk every descriptor, detect validation-bit /
   use-counter disagreement and repair it. Returns the number of
   descriptors repaired. Latency is charged by the caller (proportional
   to [frames t]). *)
let scan_and_fix t =
  let fixed = ref 0 in
  Array.iter (fun d -> if fix_desc d then incr fixed) t.descs;
  !fixed

(* The incremental scan: repair only descriptors written since the last
   golden refresh. Equivalent to [scan_and_fix] whenever the tracking is
   intact ([tracking_usable]): the baseline was a consistent quiesce
   point, mutators and wild writes alike mark descriptors dirty, so any
   descriptor not on the list still holds a consistent value. The dirty
   list is deliberately NOT drained -- it still backs {!restore}, and
   every repaired descriptor is already on it ([touch] inside [fix_desc]
   is a no-op here). Latency is charged by the caller, proportional to
   [dirty_count t]. *)
let scan_and_fix_dirty t =
  let fixed = ref 0 in
  List.iter (fun d -> if fix_desc d then incr fixed) t.tracker.dirty_list;
  !fixed

let count_inconsistent t =
  Array.fold_left (fun acc d -> if consistent d then acc else acc + 1) 0 t.descs

let free_frames t =
  Array.fold_left (fun acc d -> if d.ptype = Free then acc + 1 else acc) 0 t.descs
