(** Undo journal for non-idempotent hypercall mitigation.

    The paper's lightweight alternative to transactionalising hypercalls:
    changes to critical variables (page reference counters, validation
    bits, type changes) are logged during normal operation; following
    recovery, before a retried hypercall re-reads or re-modifies those
    variables, the logged changes are undone. Logging costs cycles --
    it is the dominant normal-operation overhead in Figure 3. *)

type entry =
  | Use_count_delta of Pfn.desc * int (* delta that was applied *)
  | Validated_set of Pfn.desc (* validation bit was set *)
  | Validated_cleared of Pfn.desc
  | Type_change of Pfn.desc * Pfn.page_type (* previous type *)
  | Owner_change of Pfn.desc * int (* previous owner *)
  | Counter_delta of int ref * int (* generic critical counter *)
  | Undo_fn of (unit -> unit) (* structure-specific undo closure *)

type t = {
  mutable entries : entry list; (* newest first *)
  mutable count : int; (* length of [entries], kept for O(1) depth *)
  mutable enabled : bool;
  mutable writes : int; (* total log appends, for cycle accounting *)
}

let create () = { entries = []; count = 0; enabled = false; writes = 0 }

let set_enabled t on = t.enabled <- on

(* Cycles charged per log append; calibrated so that the hypercall-heavy
   workloads show the Figure 3 overhead profile. *)
let cycles_per_write = 70

let log t entry =
  if t.enabled then begin
    t.entries <- entry :: t.entries;
    t.count <- t.count + 1;
    t.writes <- t.writes + 1
  end

(* Short entry-kind tag, used by the observability layer to label
   journal-append events without exposing the payload types. *)
let entry_kind = function
  | Use_count_delta _ -> "use_count_delta"
  | Validated_set _ -> "validated_set"
  | Validated_cleared _ -> "validated_cleared"
  | Type_change _ -> "type_change"
  | Owner_change _ -> "owner_change"
  | Counter_delta _ -> "counter_delta"
  | Undo_fn _ -> "undo_fn"

(* The Pfn arms write descriptor fields directly (not through the Pfn
   mutators), so they must mark the descriptor dirty themselves for the
   snapshot layer. *)
let undo_entry = function
  | Use_count_delta (d, delta) ->
    Pfn.touch d;
    d.Pfn.use_count <- d.Pfn.use_count - delta
  | Validated_set d ->
    Pfn.touch d;
    d.Pfn.validated <- false
  | Validated_cleared d ->
    Pfn.touch d;
    d.Pfn.validated <- true
  | Type_change (d, prev) ->
    Pfn.touch d;
    d.Pfn.ptype <- prev
  | Owner_change (d, prev) ->
    Pfn.touch d;
    d.Pfn.owner <- prev
  | Counter_delta (r, delta) -> r := !r - delta
  | Undo_fn f -> f ()

(* Undo everything logged since the last [commit], newest first. *)
let undo_all t =
  List.iter undo_entry t.entries;
  t.entries <- [];
  t.count <- 0

(* A hypercall completed: its changes are final, drop the log. *)
let commit t =
  t.entries <- [];
  t.count <- 0

let depth t = t.count
let writes t = t.writes
