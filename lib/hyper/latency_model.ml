(** Recovery-latency cost model.

    The paper measures recovery latency on bare hardware with 8 GB RAM
    and 8 CPUs (Tables II and III). Each recovery step charges simulated
    time; steps whose cost scales with machine size (page-frame scans,
    heap reconstruction, per-CPU bring-up) are expressed per-unit so that
    the model extrapolates, as Section VII-B discusses ("the latency ...
    is proportional to the size of the host memory"). Constants are
    calibrated to reproduce the paper's breakdowns at the reference
    geometry (2 Mi frames, 8 CPUs). *)

open Sim

(* Reference geometry: 8 GB / 4 KB pages = 2_097_152 frames; 8 CPUs.
   Centralized in {!Config.reference_geometry}; kept here as an alias
   because every scan cost below is calibrated against it. *)
let reference_frames = Config.reference_geometry.Config.frames

(* --- Steps common to both mechanisms ------------------------------- *)

(* 21 ms / 2 Mi frames. *)
let pfn_scan_ns_per_frame = 10

let pfn_scan ~frames = frames * pfn_scan_ns_per_frame

(* --- Incremental (dirty-set-proportional) passes ------------------- *)

(* Walking the dirty list instead of the whole table: worse locality
   (pointer chasing instead of a sequential array sweep), so a slightly
   higher per-descriptor cost, plus a fixed cost to fetch and validate
   the tracking structures. Cost is proportional to state written since
   the last golden refresh -- O(damaged state + workload drift), not
   O(machine). *)
let pfn_scan_dirty_base = Time.us 5
let pfn_scan_dirty_ns_per_frame = 12

let pfn_scan_dirty ~dirty = pfn_scan_dirty_base + (dirty * pfn_scan_dirty_ns_per_frame)

(* Heap / timer audit passes driven off their dirty lists. The full
   variants are folded into [microreset_enhancements] (they are
   O(cpus + domains + timers), part of the 700 us "Others" budget, not
   of machine size); the dirty variants replace that flat budget when
   incremental recovery is on. *)
let heap_audit_dirty ~dirty = dirty * 40
let timer_audit_dirty ~dirty = dirty * 80

(* --- NiLiHype (Table III) ------------------------------------------ *)

(* "Others: 1ms" -- interrupting the CPUs, discarding stacks, and the
   state-consistency enhancements. *)
let microreset_interrupt_cpus ~cpus = Time.us 20 * cpus
let microreset_enhancements = Time.us 700
let microreset_misc = Time.us 140

(* The enhancement pass under incremental recovery: the lock-release /
   scheduler / retry fixes still visit every lock site, vCPU and
   recurring timer (state that scales with geometry, not memory), but
   the audit walks over heap objects and timer events touch only the
   dirty sets. The base covers the geometry-proportional part. *)
let microreset_enhancements_dirty ~heap_dirty ~timer_dirty =
  Time.us 90 + heap_audit_dirty ~dirty:heap_dirty
  + timer_audit_dirty ~dirty:timer_dirty

(* --- Sharded recovery (per-component/per-domain shards) ------------ *)

(* The stop-the-world window every domain pays: interrupt the CPUs,
   discard execution threads and repair the global singletons (static
   locks, scheduler metadata, IRQ counts, recurring timers). Shorter
   than the serial enhancement pass because the per-domain work
   (hypercall/syscall retry set-up, FS/GS restoration, grant/evtchn
   audit) moves into that domain's own shard. *)
let shard_global_quiesce ~cpus = microreset_interrupt_cpus ~cpus + Time.us 220

(* Per-domain shard: retry/FS-GS/grant bookkeeping for one domain, plus
   its share of the consistency scan (charged separately, by dirty count
   or owned-frame count). *)
let shard_domain_base = Time.us 12

(* --- ReHype (Table II) --------------------------------------------- *)

let reboot_early_boot_cpu = Time.ms 12
let reboot_cpu_online_per_cpu = Time.us 21_430 (* 150ms / 7 secondary CPUs *)
let reboot_apic_ioapic_setup = Time.ms 200
let reboot_tsc_calibrate = Time.ms 50

let reboot_record_old_heap ~frames = frames * 10 (* 21ms @ 2Mi frames *)
let reboot_reinit_unpreserved_pfn ~frames = frames * 6 (* ~13ms *)
let reboot_recreate_heap ~frames = frames * 100 (* ~211ms *)

let reboot_smp_init = Time.ms 20
let reboot_relocate_modules = Time.ms 2
let reboot_others = Time.ms 13

(* A latency breakdown: ordered (step, duration) pairs. *)
type breakdown = { steps : (string * Time.ns) list }

let total b = List.fold_left (fun acc (_, d) -> acc + d) 0 b.steps

let pp fmt b =
  List.iter
    (fun (name, d) -> Format.fprintf fmt "  %-55s %a@." name Time.pp_ms d)
    b.steps;
  Format.fprintf fmt "  %-55s %a@." "Total" Time.pp_ms (total b)
