(** The composite hypervisor and its request-processing paths.

    Control enters the hypervisor through hypercalls, exceptions and
    interrupts (Section III-A). Each entry is executed as a sequence of
    named micro-steps over the real simulated structures; the fault
    injector observes every step through [step_hook] and can corrupt
    state or abandon the execution mid-flight, leaving exactly the
    partial state a real fault leaves (held locks, half-done context
    switches, disarmed APIC timers, partially executed hypercalls...). *)

type activity =
  | Timer_tick of int (* cpu *)
  | Device_interrupt of { line : int; target_dom : int }
  | Hypercall of { domid : int; vid : int; kind : Hypercalls.kind }
  | Syscall_forward of { domid : int; vid : int }
  | Context_switch of int (* cpu *)
  | Idle_poll of int (* cpu *)

let activity_name = function
  | Timer_tick c -> Printf.sprintf "timer_tick(cpu%d)" c
  | Device_interrupt { line; target_dom } ->
    Printf.sprintf "dev_irq(line%d->d%d)" line target_dom
  | Hypercall { domid; vid; kind } ->
    Printf.sprintf "hypercall(d%dv%d,%s)" domid vid (Hypercalls.name kind)
  | Syscall_forward { domid; vid } -> Printf.sprintf "syscall(d%dv%d)" domid vid
  | Context_switch c -> Printf.sprintf "ctx_switch(cpu%d)" c
  | Idle_poll c -> Printf.sprintf "idle(cpu%d)" c

type step_ctx = {
  activity : activity;
  step_index : int;
  step_name : string;
  cpu : int;
}

(* Raised by [execute_partial]'s stepper to abandon an activity at a
   given step, modelling work in flight on other CPUs at detection. *)
exception Abandoned

type t = {
  machine : Hw.Machine.t;
  clock : Sim.Clock.t;
  mutable config : Config.t;
  pfn : Pfn.t;
  heap : Heap.t;
  static_segment : Spinlock.Segment.t;
  console_lock : Spinlock.t;
  domlist_lock : Spinlock.t;
  global_heap_lock : Spinlock.t;
  percpu : Percpu.t array;
  timers : Timer_heap.t;
  sched : Sched.t;
  domains : (int, Domain.t) Hashtbl.t;
  cycles : Cycle_account.t;
  obs : Obs.Recorder.t;
  watchdog_soft : int array; (* per-CPU software tick counters *)
  mutable time_sync_count : int;
  mutable next_domid : int;
  mutable static_data_ok : bool; (* non-lock static segment integrity *)
  mutable static_data_note : string;
  mutable recovery_handler_ok : bool;
  mutable bootline_ok : bool; (* boot options usable for a re-boot *)
  mutable step_hook : (t -> step_ctx -> unit) option;
  need_resched_flags : bool array;
}

let cpu_count t = Hw.Machine.num_cpus t.machine
let frames t = Pfn.frames t.pfn
let domain t domid = Hashtbl.find_opt t.domains domid

let all_domains t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
  |> List.sort (fun a b -> compare a.Domain.domid b.Domain.domid)

let app_domains t =
  List.filter
    (fun d -> (not d.Domain.privileged) && not d.Domain.is_idle)
    (all_domains t)

let all_vcpus t =
  List.concat_map (fun d -> Array.to_list d.Domain.vcpus) (all_domains t)

let privvm t =
  match List.find_opt (fun d -> d.Domain.privileged) (all_domains t) with
  | Some d -> d
  | None -> Crash.panic "no PrivVM"

(* The idle domain: one always-runnable vCPU per physical CPU, which the
   scheduler switches to whenever a guest vCPU blocks or yields. Its
   presence is what makes context switching -- and hence scheduling-
   metadata vulnerability windows -- pervasive, as in Xen. *)
let idle_domain t =
  match List.find_opt (fun d -> d.Domain.is_idle) (all_domains t) with
  | Some d -> d
  | None -> Crash.panic "no idle domain"

(* ------------------------------------------------------------------ *)
(* Construction and boot                                               *)
(* ------------------------------------------------------------------ *)

(* The fixed vocabulary of audit-violation kinds (one [audit.*] counter
   per kind). Listed here, ahead of [create], so every recorder attached
   to a hypervisor gets all the instruments registered eagerly -- a
   reused recorder must stay structurally identical to a fresh one
   regardless of which violations a particular run exhibits. *)
let audit_violation_kinds =
  [
    "static_locks_held";
    "heap_locks_held";
    "irq_counts_nonzero";
    "sched_inconsistent";
    "pfn_inconsistent";
    "heap_corrupt";
    "timer_structure_bad";
    "recurring_missing";
    "apics_unarmed";
    "static_data_corrupt";
  ]

let audit_counter obs kind =
  Obs.Metrics.counter obs.Obs.Recorder.metrics ("audit." ^ kind)

let create ?(mconfig = Hw.Machine.default_config) ?obs ~config clock =
  let machine = Hw.Machine.create ~config:mconfig clock in
  let obs =
    match obs with
    | Some r -> r
    | None -> Obs.Recorder.create ~capacity:1024 ~min_level:Obs.Event.Warn ()
  in
  let heap = Heap.create () in
  let static_segment = Spinlock.Segment.create () in
  let static_lock name =
    let l = Spinlock.create ~name ~location:Spinlock.Static in
    Spinlock.Segment.register static_segment l;
    l
  in
  let console_lock = static_lock "console" in
  let domlist_lock = static_lock "domlist" in
  let global_heap_lock = static_lock "heap" in
  let num_cpus = Hw.Machine.num_cpus machine in
  let t =
    {
      machine;
      clock;
      config;
      pfn = Pfn.create ~frames:(Hw.Machine.num_frames machine);
      heap;
      static_segment;
      console_lock;
      domlist_lock;
      global_heap_lock;
      percpu = Array.init num_cpus (fun c -> Percpu.create heap c);
      timers = Timer_heap.create ();
      sched = Sched.create ~num_cpus;
      domains = Hashtbl.create 8;
      cycles = Cycle_account.create ();
      obs;
      watchdog_soft = Array.make num_cpus 0;
      time_sync_count = 0;
      next_domid = 0;
      static_data_ok = true;
      static_data_note = "";
      recovery_handler_ok = true;
      bootline_ok = true;
      step_hook = None;
      need_resched_flags = Array.make num_cpus false;
    }
  in
  Hw.Ioapic.set_logging machine.Hw.Machine.ioapic config.Config.ioapic_write_logging;
  List.iter (fun kind -> ignore (audit_counter obs kind)) audit_violation_kinds;
  t

(* Record a typed event against the hypervisor's recorder at the current
   simulated time. *)
let observe ?cpu ?domid t level payload =
  Obs.Recorder.event t.obs ~time:(Sim.Clock.now t.clock) ?cpu ?domid level
    payload

(* Legacy free-form trace path, now a [Message] event. *)
let tracef t level fmt =
  Format.kasprintf (fun s -> observe t level (Obs.Event.Message s)) fmt

let _ = tracef (* kept for ad-hoc debugging call sites *)

(* Standard recurring timer events plus APIC programming, performed at
   boot and re-performed by ReHype's reboot. *)
let register_recurring_events t =
  let now = Sim.Clock.now t.clock in
  ignore (Timer_heap.add t.timers ~deadline:(now + Sim.Time.ms 30) ~period:(Sim.Time.ms 30) Timer_heap.Time_sync);
  let wd_period = Sim.Time.ms t.config.Config.watchdog_period_ms in
  ignore
    (Timer_heap.add t.timers ~deadline:(now + wd_period) ~period:wd_period
       Timer_heap.Watchdog_tick);
  for cpu = 0 to cpu_count t - 1 do
    ignore
      (Timer_heap.add t.timers
         ~deadline:(now + Sim.Time.ms 10 + (cpu * Sim.Time.ms 1))
         ~period:(Sim.Time.ms 10)
         (Timer_heap.Sched_tick cpu))
  done

let arm_all_apics t =
  let now = Sim.Clock.now t.clock in
  let deadline =
    match Timer_heap.next_deadline t.timers with
    | Some d -> max d (now + Sim.Time.us 10)
    | None -> now + Sim.Time.ms 10
  in
  Hw.Machine.iter_cpus t.machine (fun c ->
      Hw.Apic.program_timer c.Hw.Cpu.apic ~deadline)

let setup_ioapic_routing t =
  (* Line 1: block backend, line 2: network backend; both routed to the
     PrivVM's CPU, which hosts the device drivers. *)
  Hw.Ioapic.write t.machine.Hw.Machine.ioapic ~line:1 ~vector:0x31 ~dest_cpu:0
    ~masked:false;
  Hw.Ioapic.write t.machine.Hw.Machine.ioapic ~line:2 ~vector:0x32 ~dest_cpu:0
    ~masked:false

(* Create a domain: allocate its control structures from the heap, give
   it memory (validated page-table frames plus writable frames), bind
   its event channels and install its vCPUs in the scheduler. Used both
   at boot and by the PrivVM toolstack after recovery. *)
let create_domain_internal ?(is_idle = false) t ~privileged ~vcpu_pins ~mem_frames =
  let domid = t.next_domid in
  t.next_domid <- t.next_domid + 1;
  let dom = Domain.create ~is_idle t.heap ~domid ~privileged ~vcpus:vcpu_pins in
  Hashtbl.replace t.domains domid dom;
  for i = 0 to mem_frames - 1 do
    let ptype = if i mod 8 = 0 then Pfn.Page_table else Pfn.Writable in
    let d = Pfn.alloc_frame t.pfn ~owner:domid ~ptype in
    (* Reference convention: every owned frame carries the allocation
       reference; a validated page table additionally carries the pin
       (type) reference, exactly as one pinned by mmu_update does -- so
       unpinning any table drops one reference and never frees it. *)
    if ptype = Pfn.Page_table then begin
      Pfn.validate d;
      Pfn.get_page d
    end;
    dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames
  done;
  Evtchn.bind dom.Domain.evtchn ~port:1;
  Evtchn.bind dom.Domain.evtchn ~port:2;
  (* Grant a few page-table-typed frames for I/O rings; these pinned
     frames are never handed back by decrease_reservation, so grant maps
     cannot race with frame freeing. *)
  let granted = ref 0 in
  List.iter
    (fun f ->
      if !granted < 8 && (Pfn.get t.pfn f).Pfn.ptype = Pfn.Page_table then begin
        Grant.grant dom.Domain.grants ~slot:!granted ~frame:f;
        incr granted
      end)
    dom.Domain.owned_frames;
  Array.iter (fun v -> Sched.enqueue t.sched v) dom.Domain.vcpus;
  dom

let destroy_domain_internal t dom =
  dom.Domain.alive <- false;
  List.iter
    (fun f ->
      let d = Pfn.get t.pfn f in
      if d.Pfn.owner = dom.Domain.domid then begin
        if d.Pfn.validated then Pfn.invalidate d;
        (* Drop every reference (pin and allocation) so the frame really
           returns to the allocator. *)
        while d.Pfn.use_count > 0 do
          Pfn.put_page d
        done
      end)
    dom.Domain.owned_frames;
  dom.Domain.owned_frames <- [];
  List.iter (fun obj -> if obj.Heap.live then Heap.free t.heap obj) dom.Domain.heap_objs;
  dom.Domain.heap_objs <- [];
  Hashtbl.remove t.domains dom.Domain.domid

(* Make each pinned vCPU current on its CPU, as after boot completes. *)
let start_vcpus t =
  List.iter
    (fun (v : Domain.vcpu) ->
      match Sched.current t.sched ~cpu:v.Domain.processor with
      | None ->
        (match Sched.dequeue t.sched ~cpu:v.Domain.processor with
        | Some v' when v' == v -> ()
        | Some v' -> Sched.enqueue t.sched v'
        | None -> ());
        Sched.set_current t.sched ~cpu:v.Domain.processor (Some v);
        Sched.vcpu_mark_current v ~cpu:v.Domain.processor;
        t.percpu.(v.Domain.processor).Percpu.curr_domid <- v.Domain.domid;
        t.percpu.(v.Domain.processor).Percpu.curr_vcpuid <- v.Domain.vid
      | Some _ -> ())
    (all_vcpus t)

type setup = One_appvm | Three_appvm

(* Boot a target system: PrivVM on CPU 0 plus AppVMs pinned to their own
   CPUs (each VM has one vCPU pinned to a different physical CPU,
   Section VI-A). [vcpus_per_cpu > 1] gives each AppVM several vCPUs
   sharing its physical CPU -- the "more complex configurations, that
   include multiple vCPUs per CPU" of the paper's future work. *)
let boot_target t ~setup ~vcpus_per_cpu =
  register_recurring_events t;
  arm_all_apics t;
  setup_ioapic_routing t;
  let dom_frames = 96 in
  let app_pins cpu = List.init (max 1 vcpus_per_cpu) (fun _ -> cpu) in
  let _privvm = create_domain_internal t ~privileged:true ~vcpu_pins:[ 0 ] ~mem_frames:dom_frames in
  (match setup with
  | One_appvm ->
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 1)
         ~mem_frames:dom_frames)
  | Three_appvm ->
    (* Initially two AppVMs (UnixBench, NetBench); the third (BlkBench)
       is created after recovery. *)
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 1)
         ~mem_frames:dom_frames);
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 2)
         ~mem_frames:dom_frames));
  start_vcpus t;
  (* The idle domain, created last (Xen gives it a reserved domid): one
     always-runnable vCPU per CPU that the scheduler alternates with
     guest vCPUs. *)
  let saved_next_domid = t.next_domid in
  t.next_domid <- 1000;
  let num_cpus = Hw.Machine.num_cpus t.machine in
  let idle =
    create_domain_internal ~is_idle:true t ~privileged:false
      ~vcpu_pins:(List.init num_cpus (fun c -> c))
      ~mem_frames:0
  in
  (* Idle vCPUs become current on CPUs with no guest vCPU. *)
  Array.iter
    (fun (v : Domain.vcpu) ->
      match Sched.current t.sched ~cpu:v.Domain.processor with
      | None ->
        (match Sched.dequeue t.sched ~cpu:v.Domain.processor with
        | Some v' when v' == v -> ()
        | Some v' -> Sched.enqueue t.sched v'
        | None -> ());
        Sched.set_current t.sched ~cpu:v.Domain.processor (Some v);
        Sched.vcpu_mark_current v ~cpu:v.Domain.processor;
        t.percpu.(v.Domain.processor).Percpu.curr_domid <- v.Domain.domid;
        t.percpu.(v.Domain.processor).Percpu.curr_vcpuid <- v.Domain.vid
      | Some _ -> ())
    idle.Domain.vcpus;
  t.next_domid <- saved_next_domid

let boot ?(mconfig = Hw.Machine.default_config) ?obs ?(vcpus_per_cpu = 1)
    ~config ~setup clock =
  let t = create ~mconfig ?obs ~config clock in
  boot_target t ~setup ~vcpus_per_cpu;
  t

(* Reuse a previously booted hypervisor for a new run: rewind the clock,
   reset every component in place to its freshly-created state (including
   heap object-id numbering and frame-allocation order, which surface in
   panic messages), then run the same boot sequence as [boot]. The result
   is observationally identical to a fresh [boot] on the same machine
   geometry -- the reset ≡ reboot determinism contract the campaign
   engine's worker reuse relies on -- but reuses all the big tables (pfn
   descriptors, trace ring, per-CPU areas), so it allocates almost
   nothing. The machine geometry ([mconfig]) is fixed at [create]; only
   the hypervisor [config] may change between runs. *)
let reboot_in_place t ~config ~setup ~vcpus_per_cpu =
  Sim.Clock.reset t.clock;
  t.config <- config;
  Hw.Machine.reset t.machine;
  Heap.reset t.heap;
  Spinlock.Segment.reset t.static_segment;
  (* Ascending CPU order reproduces [create]'s heap-allocation sequence
     (per-CPU lock object then per-CPU area, cpu 0 first). *)
  Array.iter (Percpu.reset t.heap) t.percpu;
  Pfn.reset t.pfn;
  Timer_heap.reset t.timers;
  Sched.reset t.sched;
  Hashtbl.reset t.domains;
  Cycle_account.reset t.cycles;
  Obs.Recorder.reset t.obs;
  Array.fill t.watchdog_soft 0 (Array.length t.watchdog_soft) 0;
  Array.fill t.need_resched_flags 0 (Array.length t.need_resched_flags) false;
  t.time_sync_count <- 0;
  t.next_domid <- 0;
  t.static_data_ok <- true;
  t.static_data_note <- "";
  t.recovery_handler_ok <- true;
  t.bootline_ok <- true;
  t.step_hook <- None;
  Hw.Ioapic.set_logging t.machine.Hw.Machine.ioapic
    config.Config.ioapic_write_logging;
  boot_target t ~setup ~vcpus_per_cpu

(* ------------------------------------------------------------------ *)
(* The stepper: instrumented micro-step execution                      *)
(* ------------------------------------------------------------------ *)

type stepper = { run : 'a. ?cycles:int -> string -> (unit -> 'a) -> 'a }

let cycles_to_ns cycles = (cycles / 3) + 1 (* ~2.9 GHz *)

let make_stepper t activity cpu =
  let idx = ref 0 in
  let run : type a. ?cycles:int -> string -> (unit -> a) -> a =
   fun ?(cycles = 150) step_name f ->
    let step_index = !idx in
    incr idx;
    Cycle_account.charge t.cycles cycles;
    Hw.Cpu.charge_cycles (Hw.Machine.cpu t.machine cpu) cycles;
    Sim.Clock.advance_by t.clock (cycles_to_ns cycles);
    (match t.step_hook with
    | Some hook -> hook t { activity; step_index; step_name; cpu }
    | None -> ());
    f ()
  in
  { run }

(* Journal append helper: charges the logging cycles that produce the
   Figure 3 overhead. *)
let journal_log t (journal : Journal.t) entry =
  if journal.Journal.enabled then begin
    Cycle_account.charge_logging t.cycles Journal.cycles_per_write;
    Sim.Clock.advance_by t.clock (cycles_to_ns Journal.cycles_per_write);
    Obs.Metrics.incr t.obs.Obs.Recorder.journal_writes;
    if Obs.Recorder.enabled t.obs Obs.Event.Debug then
      observe t Obs.Event.Debug
        (Obs.Event.Journal_append
           { kind = Journal.entry_kind entry; depth = Journal.depth journal + 1 })
  end;
  Journal.log journal entry

(* ------------------------------------------------------------------ *)
(* Hypercall handlers                                                  *)
(* ------------------------------------------------------------------ *)

(* Names for the indexed hot-path steps, computed once: formatting them
   with sprintf on every loop iteration was a measurable share of per-run
   allocation. The tables cover the sub-op counts the activity mix
   actually generates; larger indices fall back to sprintf. *)
let indexed_names prefix = Array.init 9 (fun i -> Printf.sprintf "%s%d" prefix i)

let pte_write_names = indexed_names "pte_write_"
let grant_map_names = indexed_names "grant_map_"
let ring_io_names = indexed_names "ring_io_"
let grant_unmap_names = indexed_names "grant_unmap_"

let indexed_name table prefix i =
  if i < Array.length table then table.(i) else Printf.sprintf "%s%d" prefix i

let pick_writable_frame t rng (dom : Domain.t) =
  let candidates =
    List.filter
      (fun f -> (Pfn.get t.pfn f).Pfn.ptype = Pfn.Writable)
      dom.Domain.owned_frames
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int rng (List.length l)))

(* mmu_update: pin a fresh frame as a page table (get ref, write PTEs,
   validate) and unpin an old one. The validate/commit gap is the
   non-idempotent retry hazard of Section IV; code reordering moves the
   critical updates as late as possible, the undo journal makes them
   reversible. *)
let exec_mmu_update t (s : stepper) journal (dom : Domain.t)
    (record : Hypercalls.record) ~entries =
  s.run "lock_page_alloc" (fun () ->
      Spinlock.acquire dom.Domain.page_lock ~cpu:0);
  let target, old_frame =
    match record.Hypercalls.target_frames with
    | f :: rest ->
      (Pfn.get t.pfn f, match rest with o :: _ -> Some o | [] -> None)
    | [] ->
      let d =
        s.run "alloc_frame" (fun () ->
            Pfn.alloc_frame t.pfn ~owner:dom.Domain.domid ~ptype:Pfn.Page_table)
      in
      (* The table being replaced: a currently pinned page-table frame
         (not one backing a grant entry). *)
      let granted =
        Array.to_list dom.Domain.grants.Grant.entries
        |> List.filter_map (fun e ->
               if e.Grant.in_use then Some e.Grant.frame else None)
      in
      let old_frame =
        List.find_opt
          (fun f ->
            let o = Pfn.get t.pfn f in
            o.Pfn.ptype = Pfn.Page_table && o.Pfn.validated
            && f <> d.Pfn.index
            && not (List.mem f granted))
          dom.Domain.owned_frames
      in
      record.Hypercalls.target_frames <-
        (d.Pfn.index :: (match old_frame with Some o -> [ o ] | None -> []));
      record.Hypercalls.fresh_frames <- [ d.Pfn.index ];
      dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames;
      (d, old_frame)
  in
  (* Unpin the table being replaced: invalidate + drop the pin
     reference. The frame keeps its allocation reference and returns to
     the guest's writable pool (a later decrease_reservation frees it);
     unpinning must not orphan it. Non-idempotent (retrying invalidates
     an already-invalid frame); reversible only through the undo
     journal -- code reordering cannot move this, because the PTE writes
     below must not race with a still-pinned old table. *)
  (match old_frame with
  | Some o ->
    let od = Pfn.get t.pfn o in
    s.run "unpin_old_table" (fun () ->
        if od.Pfn.validated then begin
          journal_log t journal (Journal.Validated_cleared od);
          Pfn.invalidate od;
          journal_log t journal (Journal.Type_change (od, od.Pfn.ptype));
          journal_log t journal (Journal.Owner_change (od, od.Pfn.owner));
          journal_log t journal (Journal.Use_count_delta (od, -1));
          Pfn.put_page od;
          if od.Pfn.use_count > 0 then od.Pfn.ptype <- Pfn.Writable
        end
        else
          (* Retry without undo: double unpin. *)
          Pfn.invalidate od)
  | None -> ());
  (* Retrying with the same target: if the first execution already
     validated it and nothing undid that, [Pfn.validate] panics -- the
     paper's "re-execution results in an inconsistent state". Code
     reordering (when this handler is among the enhanced ones) moves the
     critical update to the end, shrinking the window. *)
  if not (t.config.Config.code_reordering && record.Hypercalls.enhanced) then begin
    s.run "validate_early" (fun () ->
        if not target.Pfn.validated then begin
          journal_log t journal (Journal.Validated_set target);
          Pfn.validate target
        end
        else Pfn.validate target (* panics: double validation *))
  end;
  for i = 1 to entries do
    s.run (indexed_name pte_write_names "pte_write_" i) ~cycles:120 (fun () -> ())
  done;
  s.run "get_page_ref" (fun () ->
      journal_log t journal (Journal.Use_count_delta (target, 1));
      Pfn.get_page target);
  if t.config.Config.code_reordering && record.Hypercalls.enhanced then
    s.run "validate_late" (fun () ->
        if not target.Pfn.validated then begin
          journal_log t journal (Journal.Validated_set target);
          Pfn.validate target
        end
        else Pfn.validate target);
  s.run "unlock_page_alloc" (fun () ->
      Spinlock.release dom.Domain.page_lock ~cpu:0)

let exec_update_va_mapping t (s : stepper) rng journal (dom : Domain.t)
    (record : Hypercalls.record) =
  let frame =
    match record.Hypercalls.target_frames with
    | f :: _ -> Some f
    | [] ->
      let f = pick_writable_frame t rng dom in
      (match f with
      | Some f -> record.Hypercalls.target_frames <- [ f ]
      | None -> ());
      f
  in
  match frame with
  | None -> ()
  | Some f ->
    let d = Pfn.get t.pfn f in
    s.run "get_page" (fun () ->
        journal_log t journal (Journal.Use_count_delta (d, 1));
        Pfn.get_page d);
    s.run "write_pte" ~cycles:100 (fun () -> ());
    s.run "flush_tlb" ~cycles:200 (fun () -> ());
    s.run "put_page" (fun () ->
        journal_log t journal (Journal.Use_count_delta (d, -1));
        Pfn.put_page d)

let exec_memory_op_populate t (s : stepper) journal (dom : Domain.t)
    (record : Hypercalls.record) =
  for i = 1 to 2 do
    ignore i;
    (* The buddy-allocator critical section under the static heap lock is
       short: acquire and release within the allocation step. *)
    let d =
      s.run "alloc_frame" (fun () ->
          Spinlock.acquire t.global_heap_lock ~cpu:0;
          let d = Pfn.alloc_frame t.pfn ~owner:dom.Domain.domid ~ptype:Pfn.Writable in
          Spinlock.release t.global_heap_lock ~cpu:0;
          d)
    in
    journal_log t journal
      (Journal.Undo_fn
         (fun () ->
           if d.Pfn.use_count > 0 then Pfn.put_page d));
    record.Hypercalls.fresh_frames <- d.Pfn.index :: record.Hypercalls.fresh_frames;
    s.run "assign_page" (fun () ->
        dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames)
  done

let exec_memory_op_decrease t (s : stepper) rng journal (dom : Domain.t)
    (record : Hypercalls.record) =
  (match record.Hypercalls.target_frames with
  | [] ->
    (match pick_writable_frame t rng dom with
    | Some f -> record.Hypercalls.target_frames <- [ f ]
    | None -> ())
  | _ -> ());
  match record.Hypercalls.target_frames with
  | [] -> ()
  | f :: _ ->
    let d = Pfn.get t.pfn f in
    (* Double execution without undo double-puts the frame: underflow. *)
    s.run "put_page" (fun () ->
        journal_log t journal (Journal.Type_change (d, d.Pfn.ptype));
        journal_log t journal (Journal.Owner_change (d, d.Pfn.owner));
        journal_log t journal (Journal.Use_count_delta (d, -1));
        Spinlock.acquire t.global_heap_lock ~cpu:0;
        Pfn.put_page d;
        Spinlock.release t.global_heap_lock ~cpu:0);
    s.run "remove_from_domain" (fun () ->
        dom.Domain.owned_frames <-
          List.filter (fun f' -> f' <> f) dom.Domain.owned_frames)

let exec_grant_table_op t (s : stepper) rng journal (dom : Domain.t)
    (record : Hypercalls.record) ~subops =
  s.run "lock_grant" (fun () -> Spinlock.acquire dom.Domain.grants.Grant.lock ~cpu:0);
  (match record.Hypercalls.target_frames with
  | [] ->
    (* Map then unmap a granted frame per sub-op pair. *)
    let slots =
      Array.to_list dom.Domain.grants.Grant.entries
      |> List.filter (fun e -> e.Grant.in_use && e.Grant.mapped_by = -1)
    in
    (match slots with
    | [] -> ()
    | l ->
      let e = List.nth l (Sim.Rng.int rng (List.length l)) in
      record.Hypercalls.target_frames <- [ e.Grant.slot ])
  | _ -> ());
  (match record.Hypercalls.target_frames with
  | slot :: _ ->
    let e = dom.Domain.grants.Grant.entries.(slot) in
    for i = 1 to subops do
      let frame_desc =
        if e.Grant.frame >= 0 then Some (Pfn.get t.pfn e.Grant.frame) else None
      in
      s.run (indexed_name grant_map_names "grant_map_" i) (fun () ->
          (* Retrying a completed map panics ("already mapped") unless
             the undo log reverted it. *)
          journal_log t journal
            (Journal.Undo_fn (fun () -> if e.Grant.mapped_by <> -1 then e.Grant.mapped_by <- -1));
          Grant.map dom.Domain.grants ~slot ~by:0;
          match frame_desc with
          | Some d ->
            journal_log t journal (Journal.Use_count_delta (d, 1));
            Pfn.get_page d
          | None -> ());
      s.run (indexed_name ring_io_names "ring_io_" i) ~cycles:400 (fun () -> ());
      s.run (indexed_name grant_unmap_names "grant_unmap_" i) (fun () ->
          journal_log t journal
            (Journal.Undo_fn (fun () -> if e.Grant.mapped_by = -1 then e.Grant.mapped_by <- 0));
          Grant.unmap dom.Domain.grants ~slot;
          match frame_desc with
          | Some d ->
            journal_log t journal (Journal.Use_count_delta (d, -1));
            Pfn.put_page d
          | None -> ())
    done
  | [] -> ());
  s.run "unlock_grant" (fun () ->
      Spinlock.release dom.Domain.grants.Grant.lock ~cpu:0)

let exec_evtchn_send t (s : stepper) (dom : Domain.t) =
  s.run "lock_evtchn" (fun () -> Spinlock.acquire dom.Domain.evtchn.Evtchn.lock ~cpu:0);
  s.run "set_pending" (fun () -> Evtchn.send dom.Domain.evtchn ~port:1);
  s.run "unlock_evtchn" (fun () ->
      Spinlock.release dom.Domain.evtchn.Evtchn.lock ~cpu:0);
  ignore t

let exec_sched_op_block t (s : stepper) cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  s.run "lock_sched" (fun () -> Spinlock.acquire percpu.Percpu.heap_lock ~cpu);
  (* A guest can only block the vCPU that is actually executing. *)
  let is_current =
    match Sched.current t.sched ~cpu with
    | Some v -> v == vcpu
    | None -> false
  in
  if is_current then begin
    s.run "set_blocked" (fun () -> vcpu.Domain.runstate <- Domain.Blocked);
    s.run "clear_percpu_curr" (fun () ->
        Sched.set_current t.sched ~cpu None;
        percpu.Percpu.curr_domid <- -1;
        percpu.Percpu.curr_vcpuid <- -1);
    s.run "clear_vcpu_current" (fun () -> Sched.vcpu_clear_current vcpu);
    (* Pick someone else to run, if anyone is queued. *)
    (match s.run "pick_next" (fun () -> Sched.dequeue t.sched ~cpu) with
    | Some next ->
      s.run "set_next_current" (fun () ->
          Sched.set_current t.sched ~cpu (Some next);
          percpu.Percpu.curr_domid <- next.Domain.domid;
          percpu.Percpu.curr_vcpuid <- next.Domain.vid);
      s.run "mark_next" (fun () -> Sched.vcpu_mark_current next ~cpu)
    | None -> ());
    (* The event the guest blocked on arrives shortly (I/O completion):
       requeue the vCPU as runnable. *)
    s.run "arrange_wakeup" (fun () ->
        if vcpu.Domain.runstate = Domain.Blocked then Sched.enqueue t.sched vcpu)
  end
  else s.run "poll_pending_events" ~cycles:80 (fun () -> ());
  s.run "unlock_sched" (fun () -> Spinlock.release percpu.Percpu.heap_lock ~cpu)

let exec_set_timer_op t (s : stepper) cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  s.run "lock_timers" (fun () -> Spinlock.acquire percpu.Percpu.heap_lock ~cpu);
  s.run "insert_timer" (fun () ->
      let now = Sim.Clock.now t.clock in
      ignore
        (Timer_heap.add t.timers
           ~deadline:(now + Sim.Time.ms 1)
           (Timer_heap.Vcpu_timer (vcpu.Domain.domid, vcpu.Domain.vid))));
  s.run "unlock_timers" (fun () -> Spinlock.release percpu.Percpu.heap_lock ~cpu)

let exec_console_io t (s : stepper) cpu =
  s.run "lock_console" (fun () -> Spinlock.acquire t.console_lock ~cpu);
  s.run "emit" ~cycles:300 (fun () -> ());
  s.run "unlock_console" (fun () -> Spinlock.release t.console_lock ~cpu)

(* Toolstack domain creation: walks the domain list under the static
   domlist lock, allocates control structures from the heap and memory
   from the frame allocator -- the path that must still work after
   recovery for the hypervisor to count as healthy. *)
let exec_domctl_create t (s : stepper) cpu ~vcpu_pin ~mem_frames =
  Domain.check_struct (privvm t);
  s.run "lock_domlist" (fun () -> Spinlock.acquire t.domlist_lock ~cpu);
  if not t.static_data_ok then
    Crash.panic "domctl: static configuration data corrupted (%s)"
      t.static_data_note;
  let dom =
    s.run "alloc_domain_struct" (fun () ->
        create_domain_internal t ~privileged:false ~vcpu_pins:[ vcpu_pin ]
          ~mem_frames)
  in
  s.run "unlock_domlist" (fun () -> Spinlock.release t.domlist_lock ~cpu);
  dom

let exec_domctl_destroy t (s : stepper) cpu (dom : Domain.t) =
  s.run "lock_domlist" (fun () -> Spinlock.acquire t.domlist_lock ~cpu);
  s.run "teardown" (fun () -> destroy_domain_internal t dom);
  s.run "unlock_domlist" (fun () -> Spinlock.release t.domlist_lock ~cpu)

(* Dispatch a hypercall body. [record] carries retry state. *)
let rec exec_hypercall_body t (s : stepper) rng journal cpu (vcpu : Domain.vcpu)
    (record : Hypercalls.record) (kind : Hypercalls.kind) =
  let dom =
    match domain t vcpu.Domain.domid with
    | Some d -> d
    | None -> Crash.panic "hypercall from dead domain %d" vcpu.Domain.domid
  in
  Domain.check_struct dom;
  match kind with
  | Hypercalls.Mmu_update entries -> exec_mmu_update t s journal dom record ~entries
  | Hypercalls.Update_va_mapping -> exec_update_va_mapping t s rng journal dom record
  | Hypercalls.Memory_op_populate -> exec_memory_op_populate t s journal dom record
  | Hypercalls.Memory_op_decrease -> exec_memory_op_decrease t s rng journal dom record
  | Hypercalls.Grant_table_op subops ->
    exec_grant_table_op t s rng journal dom record ~subops
  | Hypercalls.Event_channel_send -> exec_evtchn_send t s dom
  | Hypercalls.Event_channel_bind ->
    s.run "bind_port" (fun () ->
        let free =
          Array.to_list dom.Domain.evtchn.Evtchn.chans
          |> List.find_opt (fun c -> not c.Evtchn.bound)
        in
        match free with
        | Some c -> Evtchn.bind dom.Domain.evtchn ~port:c.Evtchn.port
        | None -> ())
  | Hypercalls.Sched_op_yield ->
    s.run "yield" (fun () -> t.need_resched_flags.(cpu) <- true)
  | Hypercalls.Sched_op_block -> exec_sched_op_block t s cpu vcpu
  | Hypercalls.Set_timer_op -> exec_set_timer_op t s cpu vcpu
  | Hypercalls.Console_io -> exec_console_io t s cpu
  | Hypercalls.Vcpu_op_info -> s.run "read_info" ~cycles:100 (fun () -> ())
  | Hypercalls.Domctl_create_domain ->
    ignore (exec_domctl_create t s cpu ~vcpu_pin:3 ~mem_frames:32)
  | Hypercalls.Domctl_destroy_domain ->
    (match app_domains t with
    | d :: _ -> exec_domctl_destroy t s cpu d
    | [] -> ())
  | Hypercalls.Domctl_pause_domain -> s.run "pause" (fun () -> ())
  | Hypercalls.Multicall kinds ->
    (* Each component gets its own argument record (created once, reused
       verbatim on retry); all components share the batch's journal. *)
    if record.Hypercalls.children = [] then
      record.Hypercalls.children <-
        List.map
          (fun k ->
            Hypercalls.make_record ~enhanced:record.Hypercalls.enhanced
              ~logging:false k)
          kinds;
    List.iteri
      (fun i child ->
        if i >= record.Hypercalls.sub_completed then begin
          exec_hypercall_body t s rng journal cpu vcpu child
            child.Hypercalls.kind;
          if t.config.Config.hypercall_progress_tracking then begin
            (* Fine-granularity batched retry: log each component's
               completion so a retry skips it. *)
            Cycle_account.charge_logging t.cycles 40;
            record.Hypercalls.sub_completed <- record.Hypercalls.sub_completed + 1;
            Journal.commit journal
          end
        end)
      record.Hypercalls.children

let journal_of_record _t (record : Hypercalls.record) = record.Hypercalls.journal

(* ------------------------------------------------------------------ *)
(* Top-level activities                                                *)
(* ------------------------------------------------------------------ *)

let run_timer_action t (s : stepper) cpu (e : Timer_heap.event) =
  Obs.Metrics.incr t.obs.Obs.Recorder.timer_fires;
  if Obs.Recorder.enabled t.obs Obs.Event.Debug then
    observe t ~cpu Obs.Event.Debug
      (Obs.Event.Timer_fire { action = Timer_heap.action_name e.Timer_heap.action });
  match e.Timer_heap.action with
  | Timer_heap.Time_sync ->
    s.run "time_sync" (fun () -> t.time_sync_count <- t.time_sync_count + 1)
  | Timer_heap.Sched_tick c ->
    s.run "sched_tick" (fun () -> t.need_resched_flags.(c) <- true)
  | Timer_heap.Watchdog_tick ->
    s.run "watchdog_tick" (fun () ->
        Array.iteri (fun i v -> t.watchdog_soft.(i) <- v + 1) t.watchdog_soft)
  | Timer_heap.Vcpu_timer (domid, vid) ->
    s.run "vcpu_timer" (fun () ->
        match domain t domid with
        | Some d when d.Domain.alive ->
          let v = Domain.vcpu d vid in
          if v.Domain.runstate = Domain.Blocked then begin
            v.Domain.runstate <- Domain.Runnable;
            Sched.enqueue t.sched v
          end
        | Some _ | None -> ())
  | Timer_heap.Generic_oneshot -> s.run "oneshot" (fun () -> ())
  [@@warning "-27"]

(* The context-switch path, decomposed so an abandonment between the
   per-CPU update and the per-vCPU updates leaves the redundant records
   disagreeing. Returns [true] if the wrong register context would have
   been restored. *)
let do_context_switch t (s : stepper) cpu =
  let percpu = t.percpu.(cpu) in
  s.run "lock_sched" (fun () -> Spinlock.acquire percpu.Percpu.heap_lock ~cpu);
  s.run "assert_not_in_irq" (fun () -> Percpu.assert_not_in_irq percpu);
  let wrong_context = ref false in
  (match s.run "pick_next" (fun () -> Sched.dequeue t.sched ~cpu) with
  | None -> ()
  | Some next ->
    (match Sched.current t.sched ~cpu with
    | Some prev when prev == next -> ()
    | Some prev ->
      (* The assertion-rich part of Xen's schedule(): metadata must
         agree before the switch. *)
      s.run "assert_consistent" (fun () ->
          Crash.hv_assert prev.Domain.is_current
            "schedule: cpu%d prev d%dv%d lost is_current" cpu prev.Domain.domid
            prev.Domain.vid;
          if prev.Domain.curr_slot <> cpu then
            (* Disagreement that does not trip an assertion restores a
               stale context instead. *)
            wrong_context := true);
      s.run "clear_prev" (fun () ->
          Sched.vcpu_clear_current prev;
          if prev.Domain.runstate = Domain.Running then
            prev.Domain.runstate <- Domain.Runnable;
          Sched.enqueue t.sched prev);
      s.run "set_percpu_curr" (fun () ->
          Sched.set_current t.sched ~cpu (Some next);
          percpu.Percpu.curr_domid <- next.Domain.domid;
          percpu.Percpu.curr_vcpuid <- next.Domain.vid);
      s.run "mark_next_current" (fun () -> Sched.vcpu_mark_current next ~cpu);
      s.run "restore_context" ~cycles:350 (fun () ->
          (* Disagreeing redundant records make Xen restore a stale
             register context: the guest resumes with wrong registers. *)
          if !wrong_context then begin
            match domain t next.Domain.domid with
            | Some d when not d.Domain.is_idle -> d.Domain.guest_failed <- true
            | Some _ | None -> ()
          end)
    | None ->
      s.run "set_percpu_curr" (fun () ->
          Sched.set_current t.sched ~cpu (Some next);
          percpu.Percpu.curr_domid <- next.Domain.domid;
          percpu.Percpu.curr_vcpuid <- next.Domain.vid);
      s.run "mark_next_current" (fun () -> Sched.vcpu_mark_current next ~cpu);
      s.run "restore_context" ~cycles:350 (fun () -> ())));
  s.run "unlock_sched" (fun () -> Spinlock.release percpu.Percpu.heap_lock ~cpu);
  t.need_resched_flags.(cpu) <- false;
  !wrong_context

let do_timer_tick t (s : stepper) cpu =
  let percpu = t.percpu.(cpu) in
  let apic = (Hw.Machine.cpu t.machine cpu).Hw.Cpu.apic in
  s.run "irq_enter" (fun () ->
      Percpu.irq_enter percpu;
      (* The APIC one-shot timer fired to get here: it is now disarmed
         and stays so until the reprogram step below. *)
      Hw.Apic.disarm_timer apic;
      Hw.Apic.begin_service apic 0xf0);
  s.run "lock_timers" (fun () -> Spinlock.acquire percpu.Percpu.heap_lock ~cpu);
  let now = Sim.Clock.now t.clock in
  (* Each due event is popped, its handler runs and (for recurring
     events) it is re-inserted at the end of the handler -- the pop-to-
     requeue gap is the window the "Reactivate recurring timer events"
     enhancement closes. *)
  let rec drain budget =
    if budget > 0 then begin
      match Timer_heap.pop_due t.timers ~now with
      | None -> ()
      | Some e ->
        (* The periodic-timer infrastructure re-arms scheduler/watchdog
           ticks up front; the time-sync handler re-arms itself at the
           end of its (longer) handler, leaving the pop-to-requeue gap
           that "Reactivate recurring timer events" closes. *)
        (match e.Timer_heap.action with
        | Timer_heap.Time_sync ->
          run_timer_action t s cpu e;
          Timer_heap.requeue t.timers e ~now:(Sim.Clock.now t.clock)
        | Timer_heap.Sched_tick _ | Timer_heap.Watchdog_tick
        | Timer_heap.Vcpu_timer _ | Timer_heap.Generic_oneshot ->
          Timer_heap.requeue t.timers e ~now:(Sim.Clock.now t.clock);
          run_timer_action t s cpu e);
        drain (budget - 1)
    end
  in
  drain 3;
  s.run "unlock_timers" (fun () -> Spinlock.release percpu.Percpu.heap_lock ~cpu);
  s.run "reprogram_apic" (fun () ->
      let deadline =
        match Timer_heap.next_deadline t.timers with
        | Some d -> max d (Sim.Clock.now t.clock + Sim.Time.us 10)
        | None -> Sim.Clock.now t.clock + Sim.Time.ms 10
      in
      Hw.Apic.program_timer apic ~deadline);
  s.run "apic_eoi" (fun () -> Hw.Apic.eoi apic 0xf0);
  s.run "irq_exit" (fun () -> Percpu.irq_exit percpu)
(* Resched requests raised by the tick are honoured by the softirq path
   on the next idle poll / explicit context switch. *)

let do_device_interrupt t (s : stepper) ~line ~target_dom =
  let cpu = 0 (* device interrupts are routed to the PrivVM's CPU *) in
  let percpu = t.percpu.(cpu) in
  let apic = (Hw.Machine.cpu t.machine cpu).Hw.Cpu.apic in
  let vector, _, masked = Hw.Ioapic.read t.machine.Hw.Machine.ioapic ~line in
  if masked || vector = 0 then
    (* Routing lost (e.g. after a reboot without the IO-APIC log):
       the device's interrupts simply never arrive. *)
    ()
  else begin
    s.run "irq_enter" (fun () ->
        Percpu.irq_enter percpu;
        Hw.Apic.begin_service apic vector);
    (match domain t target_dom with
    | Some dom when dom.Domain.alive ->
      s.run "lock_evtchn" (fun () ->
          Spinlock.acquire dom.Domain.evtchn.Evtchn.lock ~cpu);
      s.run "notify_guest" (fun () ->
          Evtchn.send dom.Domain.evtchn ~port:2;
          (* The event wakes the target vCPU if it blocked. *)
          Array.iter
            (fun (v : Domain.vcpu) ->
              if v.Domain.runstate = Domain.Blocked then Sched.enqueue t.sched v)
            dom.Domain.vcpus);
      s.run "unlock_evtchn" (fun () ->
          Spinlock.release dom.Domain.evtchn.Evtchn.lock ~cpu)
    | Some _ | None -> ());
    s.run "apic_eoi" (fun () -> Hw.Apic.eoi apic vector);
    s.run "irq_exit" (fun () -> Percpu.irq_exit percpu)
  end

(* Fraction of the non-idempotent hypercall paths actually covered by the
   logging/reordering mitigation (the paper covered the handlers fault
   injection surfaced, not all of them: 84% -> 96% recovery rate). *)
let mitigation_coverage = 0.80

let do_hypercall t (s : stepper) rng ~cpu (vcpu : Domain.vcpu) kind ~retry_of =
  let percpu = t.percpu.(cpu) in
  let record =
    match retry_of with
    | Some r ->
      r.Hypercalls.retries <- r.Hypercalls.retries + 1;
      r
    | None ->
      let enhanced =
        (not (Hypercalls.non_idempotent kind))
        || Sim.Rng.float rng 1.0 < mitigation_coverage
      in
      Hypercalls.make_record ~enhanced
        ~logging:t.config.Config.nonidempotent_logging kind
  in
  let journal = journal_of_record t record in
  let domid = vcpu.Domain.domid and vid = vcpu.Domain.vid in
  Obs.Metrics.incr t.obs.Obs.Recorder.hypercall_entries;
  (* [Hypercalls.name] formats, so even computing the payload's fields is
     deferred until the event is known to pass the level filter. *)
  (match retry_of with
  | Some r ->
    Obs.Metrics.incr t.obs.Obs.Recorder.hypercall_retries;
    if Obs.Recorder.enabled t.obs Obs.Event.Info then
      observe t ~cpu ~domid Obs.Event.Info
        (Obs.Event.Hypercall_retry
           { domid; vid; kind = Hypercalls.name kind; attempt = r.Hypercalls.retries })
  | None ->
    if Obs.Recorder.enabled t.obs Obs.Event.Debug then
      observe t ~cpu ~domid Obs.Event.Debug
        (Obs.Event.Hypercall_entry
           { domid; vid; kind = Hypercalls.name kind; retry = false }));
  s.run "hypercall_entry" (fun () ->
      Cycle_account.note_entry t.cycles;
      percpu.Percpu.in_hypercall_depth <- percpu.Percpu.in_hypercall_depth + 1;
      if t.config.Config.save_fs_gs then begin
        (* The x86-64 port fix: explicitly save the guest's FS/GS. *)
        Cycle_account.charge t.cycles 30;
        percpu.Percpu.saved_guest_fsgs <-
          Some
            ( Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.FS,
              Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.GS )
      end;
      vcpu.Domain.in_hypercall <- Some record);
  exec_hypercall_body t s rng journal cpu vcpu record kind;
  s.run "hypercall_commit" (fun () ->
      record.Hypercalls.committed <- true;
      let debug_on = Obs.Recorder.enabled t.obs Obs.Event.Debug in
      let entries = Journal.depth journal in
      if entries > 0 && debug_on then
        observe t ~cpu ~domid Obs.Event.Debug
          (Obs.Event.Journal_commit { entries });
      Journal.commit journal;
      if debug_on then
        observe t ~cpu ~domid Obs.Event.Debug
          (Obs.Event.Hypercall_commit { domid; vid; kind = Hypercalls.name kind }));
  s.run "hypercall_exit" (fun () ->
      vcpu.Domain.in_hypercall <- None;
      vcpu.Domain.retry_pending <- false;
      percpu.Percpu.saved_guest_fsgs <- None;
      percpu.Percpu.in_hypercall_depth <- max 0 (percpu.Percpu.in_hypercall_depth - 1))

let do_syscall_forward t (s : stepper) ~cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  s.run "syscall_entry" (fun () ->
      Cycle_account.note_entry t.cycles;
      if t.config.Config.save_fs_gs then
        percpu.Percpu.saved_guest_fsgs <-
          Some
            ( Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.FS,
              Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.GS );
      vcpu.Domain.in_syscall_forward <- true);
  s.run "decode_target" ~cycles:60 (fun () -> ());
  s.run "forward_to_kernel" (fun () -> ());
  s.run "syscall_exit" (fun () ->
      vcpu.Domain.in_syscall_forward <- false;
      vcpu.Domain.syscall_retry_pending <- false;
      percpu.Percpu.saved_guest_fsgs <- None)

let do_idle_poll t (s : stepper) cpu =
  s.run "check_softirq" ~cycles:50 (fun () -> ());
  if t.need_resched_flags.(cpu) then ignore (do_context_switch t s cpu)

let execute t rng activity =
  match activity with
  | Timer_tick cpu -> do_timer_tick t (make_stepper t activity cpu) cpu
  | Device_interrupt { line; target_dom } ->
    do_device_interrupt t (make_stepper t activity 0) ~line ~target_dom
  | Hypercall { domid; vid; kind } ->
    (match domain t domid with
    | Some dom when dom.Domain.alive ->
      let vcpu = Domain.vcpu dom vid in
      let cpu = vcpu.Domain.processor in
      do_hypercall t (make_stepper t activity cpu) rng ~cpu vcpu kind ~retry_of:None
    | Some _ | None -> ())
  | Syscall_forward { domid; vid } ->
    (match domain t domid with
    | Some dom when dom.Domain.alive ->
      let vcpu = Domain.vcpu dom vid in
      let cpu = vcpu.Domain.processor in
      do_syscall_forward t (make_stepper t activity cpu) ~cpu vcpu
    | Some _ | None -> ())
  | Context_switch cpu ->
    ignore (do_context_switch t (make_stepper t activity cpu) cpu)
  | Idle_poll cpu -> do_idle_poll t (make_stepper t activity cpu) cpu

(* Execute an activity but abandon it (exactly as a discarded execution
   thread would be) at step [stop_at]: partial state stays in place. *)
let execute_partial t rng activity ~stop_at =
  let saved_hook = t.step_hook in
  let counter = ref 0 in
  t.step_hook <-
    Some
      (fun t' ctx ->
        (match saved_hook with Some h -> h t' ctx | None -> ());
        if !counter >= stop_at then raise Abandoned;
        incr counter);
  Fun.protect
    ~finally:(fun () -> t.step_hook <- saved_hook)
    (fun () -> try execute t rng activity with Abandoned -> ())

(* Retry a hypercall abandoned by recovery (the "hypercall retry"
   mechanism): optionally undo the journal first (non-idempotent
   mitigation), then re-execute with the same arguments. *)
let retry_hypercall t rng (vcpu : Domain.vcpu) =
  match vcpu.Domain.in_hypercall with
  | None -> ()
  | Some record ->
    let journal = journal_of_record t record in
    if t.config.Config.nonidempotent_logging then begin
      let entries = Journal.depth journal in
      if entries > 0 then begin
        Obs.Metrics.incr ~by:entries t.obs.Obs.Recorder.journal_undone;
        if Obs.Recorder.enabled t.obs Obs.Event.Info then
          observe t ~cpu:vcpu.Domain.processor ~domid:vcpu.Domain.domid
            Obs.Event.Info (Obs.Event.Journal_undo { entries })
      end;
      Journal.undo_all journal
    end;
    let cpu = vcpu.Domain.processor in
    let activity =
      Hypercall
        { domid = vcpu.Domain.domid; vid = vcpu.Domain.vid; kind = record.Hypercalls.kind }
    in
    do_hypercall t (make_stepper t activity cpu) rng ~cpu vcpu
      record.Hypercalls.kind ~retry_of:(Some record)

let retry_syscall t (vcpu : Domain.vcpu) =
  let cpu = vcpu.Domain.processor in
  let activity = Syscall_forward { domid = vcpu.Domain.domid; vid = vcpu.Domain.vid } in
  do_syscall_forward t (make_stepper t activity cpu) ~cpu vcpu

(* ------------------------------------------------------------------ *)
(* Consistency audit                                                   *)
(* ------------------------------------------------------------------ *)

type audit_report = {
  static_locks_held : int;
  heap_locks_held : bool;
  irq_counts_nonzero : int;
  sched_consistent : bool;
  pfn_inconsistent : int;
  heap_ok : bool;
  timer_structure_ok : bool;
  recurring_missing : int;
  apics_unarmed : int;
  static_data_ok : bool;
}

let audit t =
  let static_locks_held =
    let n = ref 0 in
    Spinlock.Segment.iter t.static_segment (fun l ->
        if Spinlock.is_held l then incr n);
    !n
  in
  let irq_counts_nonzero =
    Array.fold_left
      (fun acc (p : Percpu.t) -> if p.Percpu.local_irq_count <> 0 then acc + 1 else acc)
      0 t.percpu
  in
  let apics_unarmed =
    let n = ref 0 in
    Hw.Machine.iter_cpus t.machine (fun c ->
        if not (Hw.Apic.timer_armed c.Hw.Cpu.apic) then incr n);
    !n
  in
  {
    static_locks_held;
    heap_locks_held = Heap.any_heap_lock_held t.heap;
    irq_counts_nonzero;
    sched_consistent = Sched.audit t.sched (all_vcpus t);
    pfn_inconsistent = Pfn.count_inconsistent t.pfn;
    heap_ok = Heap.audit t.heap;
    timer_structure_ok = Timer_heap.structure_ok t.timers;
    recurring_missing = List.length (Timer_heap.missing_recurring t.timers);
    apics_unarmed;
    static_data_ok = t.static_data_ok;
  }

let audit_clean r =
  r.static_locks_held = 0 && (not r.heap_locks_held) && r.irq_counts_nonzero = 0
  && r.sched_consistent && r.pfn_inconsistent = 0 && r.heap_ok
  && r.timer_structure_ok && r.recurring_missing = 0 && r.apics_unarmed = 0
  && r.static_data_ok

(* The audit's violations as (kind, magnitude) pairs — the fixed kind
   vocabulary behind the per-kind obs counters (see
   [audit_violation_kinds] above; instruments are registered eagerly at
   [create] so fresh and reused recorders stay structurally identical). *)
let audit_violations r =
  let flag name cond = if cond then [ (name, 1) ] else [] in
  let count name n = if n > 0 then [ (name, n) ] else [] in
  count "static_locks_held" r.static_locks_held
  @ flag "heap_locks_held" r.heap_locks_held
  @ count "irq_counts_nonzero" r.irq_counts_nonzero
  @ flag "sched_inconsistent" (not r.sched_consistent)
  @ count "pfn_inconsistent" r.pfn_inconsistent
  @ flag "heap_corrupt" (not r.heap_ok)
  @ flag "timer_structure_bad" (not r.timer_structure_ok)
  @ count "recurring_missing" r.recurring_missing
  @ count "apics_unarmed" r.apics_unarmed
  @ flag "static_data_corrupt" (not r.static_data_ok)

(* Bump the per-kind [audit.*] counters and emit one typed
   [Audit_violation] event per violated invariant. Called wherever an
   audit is consulted for pass/fail (post-recovery classification,
   endurance cycles) so violations are queryable instead of living only
   in a formatted failure string. *)
let record_audit_violations t r =
  List.iter
    (fun (kind, count) ->
      Obs.Metrics.incr ~by:count (audit_counter t.obs kind);
      if Obs.Recorder.enabled t.obs Obs.Event.Warn then
        observe t Obs.Event.Warn (Obs.Event.Audit_violation { kind; count }))
    (audit_violations r)

let pp_audit fmt r =
  Format.fprintf fmt
    "static_locks_held=%d heap_locks_held=%b irq_nonzero=%d sched_ok=%b \
     pfn_bad=%d heap_ok=%b timer_ok=%b recurring_missing=%d apics_unarmed=%d \
     static_data_ok=%b"
    r.static_locks_held r.heap_locks_held r.irq_counts_nonzero
    r.sched_consistent r.pfn_inconsistent r.heap_ok r.timer_structure_ok
    r.recurring_missing r.apics_unarmed r.static_data_ok
