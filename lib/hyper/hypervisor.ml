(** The composite hypervisor and its request-processing paths.

    Control enters the hypervisor through hypercalls, exceptions and
    interrupts (Section III-A). Each entry is executed as a sequence of
    named micro-steps over the real simulated structures; the fault
    injector observes every step through [step_hook] and can corrupt
    state or abandon the execution mid-flight, leaving exactly the
    partial state a real fault leaves (held locks, half-done context
    switches, disarmed APIC timers, partially executed hypercalls...). *)

type activity =
  | Timer_tick of int (* cpu *)
  | Device_interrupt of { line : int; target_dom : int }
  | Hypercall of { domid : int; vid : int; kind : Hypercalls.kind }
  | Syscall_forward of { domid : int; vid : int }
  | Context_switch of int (* cpu *)
  | Idle_poll of int (* cpu *)

let activity_name = function
  | Timer_tick c -> Printf.sprintf "timer_tick(cpu%d)" c
  | Device_interrupt { line; target_dom } ->
    Printf.sprintf "dev_irq(line%d->d%d)" line target_dom
  | Hypercall { domid; vid; kind } ->
    Printf.sprintf "hypercall(d%dv%d,%s)" domid vid (Hypercalls.name kind)
  | Syscall_forward { domid; vid } -> Printf.sprintf "syscall(d%dv%d)" domid vid
  | Context_switch c -> Printf.sprintf "ctx_switch(cpu%d)" c
  | Idle_poll c -> Printf.sprintf "idle(cpu%d)" c

(* Raised by [execute_partial]'s stepper to abandon an activity at a
   given step, modelling work in flight on other CPUs at detection. *)
exception Abandoned

type t = {
  machine : Hw.Machine.t;
  clock : Sim.Clock.t;
  mutable config : Config.t;
  pfn : Pfn.t;
  heap : Heap.t;
  static_segment : Spinlock.Segment.t;
  console_lock : Spinlock.t;
  domlist_lock : Spinlock.t;
  global_heap_lock : Spinlock.t;
  percpu : Percpu.t array;
  timers : Timer_heap.t;
  sched : Sched.t;
  domains : (int, Domain.t) Hashtbl.t;
  cycles : Cycle_account.t;
  obs : Obs.Recorder.t;
  (* Crash-surviving flight rings (the postmortem "black box"): last-N
     hypercall entries and journal appends. Deliberately NOT touched by
     [reboot_in_place] or [restore] -- like the paper's persistent
     journal, the evidence of what led up to a failure must outlive the
     recovery that wipes the rest of the hypervisor state. The harness
     bumps their epoch at run boundaries ([new_flight_epoch]) so
     readback never mixes runs. *)
  hc_flight : Obs.Flight.t;
  journal_flight : Obs.Flight.t;
  watchdog_soft : int array; (* per-CPU software tick counters *)
  mutable time_sync_count : int;
  mutable next_domid : int;
  mutable static_data_ok : bool; (* non-lock static segment integrity *)
  mutable static_data_note : string;
  mutable recovery_handler_ok : bool;
  mutable bootline_ok : bool; (* boot options usable for a re-boot *)
  mutable step_hook : (t -> activity -> int -> string -> int -> unit) option;
      (* called per micro-step with (hv, activity, step_index, step_name,
         cpu); plain arguments, so observing a step allocates nothing *)
  need_resched_flags : bool array;
  (* The activity the stepper is currently executing. Mutable fields on
     [t] rather than a per-activity stepper closure: [execute] runs one
     activity at a time, and threading the context this way keeps the
     per-step and per-activity cost allocation-free. *)
  mutable cur_activity : activity;
  mutable cur_cpu : int;
  mutable cur_step : int;
  (* Names for the indexed hot-path steps, computed once per instance and
     sized from [Config.max_hypercall_subops]: formatting them with
     sprintf on every loop iteration was a measurable share of per-run
     allocation. Indices past the ABI limit fall back to sprintf. *)
  mutable pte_write_names : string array;
  mutable grant_map_names : string array;
  mutable ring_io_names : string array;
  mutable grant_unmap_names : string array;
  (* [audit.*] counters in [audit_violation_kinds] order, resolved once
     at [create] so bumping one needs no name concatenation or registry
     lookup. *)
  audit_counters : Obs.Metrics.counter array;
}

let cpu_count t = Hw.Machine.num_cpus t.machine
let frames t = Pfn.frames t.pfn

(* The geometry all size-proportional recovery costs are charged at: the
   config's pinned geometry when present (reporting latencies for the
   modelled host), else the simulated machine's own tables. Mechanics
   always operate on the real tables; only cost accounting uses this. *)
let geometry t =
  match t.config.Config.geometry with
  | Some g -> g
  | None ->
    { Config.frames = Pfn.frames t.pfn; cpus = Hw.Machine.num_cpus t.machine }

let domain t domid = Hashtbl.find_opt t.domains domid

let all_domains t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
  |> List.sort (fun a b -> compare a.Domain.domid b.Domain.domid)

let app_domains t =
  List.filter
    (fun d -> (not d.Domain.privileged) && not d.Domain.is_idle)
    (all_domains t)

let all_vcpus t =
  List.concat_map (fun d -> Array.to_list d.Domain.vcpus) (all_domains t)

let privvm t =
  match List.find_opt (fun d -> d.Domain.privileged) (all_domains t) with
  | Some d -> d
  | None -> Crash.panic "no PrivVM"

(* The idle domain: one always-runnable vCPU per physical CPU, which the
   scheduler switches to whenever a guest vCPU blocks or yields. Its
   presence is what makes context switching -- and hence scheduling-
   metadata vulnerability windows -- pervasive, as in Xen. *)
let idle_domain t =
  match List.find_opt (fun d -> d.Domain.is_idle) (all_domains t) with
  | Some d -> d
  | None -> Crash.panic "no idle domain"

(* ------------------------------------------------------------------ *)
(* Construction and boot                                               *)
(* ------------------------------------------------------------------ *)

(* The fixed vocabulary of audit-violation kinds (one [audit.*] counter
   per kind). Listed here, ahead of [create], so every recorder attached
   to a hypervisor gets all the instruments registered eagerly -- a
   reused recorder must stay structurally identical to a fresh one
   regardless of which violations a particular run exhibits. *)
let audit_violation_kinds =
  [
    "static_locks_held";
    "heap_locks_held";
    "irq_counts_nonzero";
    "sched_inconsistent";
    "pfn_inconsistent";
    "heap_corrupt";
    "timer_structure_bad";
    "recurring_missing";
    "apics_unarmed";
    "static_data_corrupt";
  ]

let audit_counter obs kind =
  Obs.Metrics.counter obs.Obs.Recorder.metrics ("audit." ^ kind)

let indexed_names prefix n =
  Array.init (n + 1) (fun i -> Printf.sprintf "%s%d" prefix i)

let create ?(mconfig = Hw.Machine.default_config) ?obs ~config clock =
  let machine = Hw.Machine.create ~config:mconfig clock in
  let obs =
    match obs with
    | Some r -> r
    | None -> Obs.Recorder.create ~capacity:1024 ~min_level:Obs.Event.Warn ()
  in
  let heap = Heap.create () in
  let static_segment = Spinlock.Segment.create () in
  let static_lock name =
    let l = Spinlock.create ~name ~location:Spinlock.Static in
    Spinlock.Segment.register static_segment l;
    l
  in
  let console_lock = static_lock "console" in
  let domlist_lock = static_lock "domlist" in
  let global_heap_lock = static_lock "heap" in
  let num_cpus = Hw.Machine.num_cpus machine in
  let t =
    {
      machine;
      clock;
      config;
      pfn = Pfn.create ~frames:(Hw.Machine.num_frames machine);
      heap;
      static_segment;
      console_lock;
      domlist_lock;
      global_heap_lock;
      percpu = Array.init num_cpus (fun c -> Percpu.create heap c);
      timers = Timer_heap.create ();
      sched = Sched.create ~num_cpus;
      domains = Hashtbl.create 8;
      cycles = Cycle_account.create ();
      obs;
      hc_flight = Obs.Flight.create ~capacity:64 ();
      journal_flight = Obs.Flight.create ~capacity:64 ();
      watchdog_soft = Array.make num_cpus 0;
      time_sync_count = 0;
      next_domid = 0;
      static_data_ok = true;
      static_data_note = "";
      recovery_handler_ok = true;
      bootline_ok = true;
      step_hook = None;
      need_resched_flags = Array.make num_cpus false;
      cur_activity = Idle_poll 0;
      cur_cpu = 0;
      cur_step = 0;
      pte_write_names = indexed_names "pte_write_" config.Config.max_hypercall_subops;
      grant_map_names = indexed_names "grant_map_" config.Config.max_hypercall_subops;
      ring_io_names = indexed_names "ring_io_" config.Config.max_hypercall_subops;
      grant_unmap_names =
        indexed_names "grant_unmap_" config.Config.max_hypercall_subops;
      audit_counters =
        Array.of_list (List.map (audit_counter obs) audit_violation_kinds);
    }
  in
  Hw.Ioapic.set_logging machine.Hw.Machine.ioapic config.Config.ioapic_write_logging;
  t

(* Record a typed event against the hypervisor's recorder at the current
   simulated time. *)
let observe ?cpu ?domid t level payload =
  Obs.Recorder.event t.obs ~time:(Sim.Clock.now t.clock) ?cpu ?domid level
    payload

(* Legacy free-form trace path, now a [Message] event. *)
let tracef t level fmt =
  Format.kasprintf (fun s -> observe t level (Obs.Event.Message s)) fmt

let _ = tracef (* kept for ad-hoc debugging call sites *)

(* Standard recurring timer events plus APIC programming, performed at
   boot and re-performed by ReHype's reboot. *)
let register_recurring_events t =
  let now = Sim.Clock.now t.clock in
  ignore (Timer_heap.add t.timers ~deadline:(now + Sim.Time.ms 30) ~period:(Sim.Time.ms 30) Timer_heap.Time_sync);
  let wd_period = Sim.Time.ms t.config.Config.watchdog_period_ms in
  ignore
    (Timer_heap.add t.timers ~deadline:(now + wd_period) ~period:wd_period
       Timer_heap.Watchdog_tick);
  for cpu = 0 to cpu_count t - 1 do
    ignore
      (Timer_heap.add t.timers
         ~deadline:(now + Sim.Time.ms 10 + (cpu * Sim.Time.ms 1))
         ~period:(Sim.Time.ms 10)
         (Timer_heap.Sched_tick cpu))
  done

let arm_all_apics t =
  let now = Sim.Clock.now t.clock in
  let deadline =
    match Timer_heap.next_deadline t.timers with
    | Some d -> max d (now + Sim.Time.us 10)
    | None -> now + Sim.Time.ms 10
  in
  Hw.Machine.iter_cpus t.machine (fun c ->
      Hw.Apic.program_timer c.Hw.Cpu.apic ~deadline)

let setup_ioapic_routing t =
  (* Line 1: block backend, line 2: network backend; both routed to the
     PrivVM's CPU, which hosts the device drivers. *)
  Hw.Ioapic.write t.machine.Hw.Machine.ioapic ~line:1 ~vector:0x31 ~dest_cpu:0
    ~masked:false;
  Hw.Ioapic.write t.machine.Hw.Machine.ioapic ~line:2 ~vector:0x32 ~dest_cpu:0
    ~masked:false

(* Create a domain: allocate its control structures from the heap, give
   it memory (validated page-table frames plus writable frames), bind
   its event channels and install its vCPUs in the scheduler. Used both
   at boot and by the PrivVM toolstack after recovery. *)
let create_domain_internal ?(is_idle = false) t ~privileged ~vcpu_pins ~mem_frames =
  let domid = t.next_domid in
  t.next_domid <- t.next_domid + 1;
  let dom = Domain.create ~is_idle t.heap ~domid ~privileged ~vcpus:vcpu_pins in
  Hashtbl.replace t.domains domid dom;
  for i = 0 to mem_frames - 1 do
    let ptype = if i mod 8 = 0 then Pfn.Page_table else Pfn.Writable in
    let d = Pfn.alloc_frame t.pfn ~owner:domid ~ptype in
    (* Reference convention: every owned frame carries the allocation
       reference; a validated page table additionally carries the pin
       (type) reference, exactly as one pinned by mmu_update does -- so
       unpinning any table drops one reference and never frees it. *)
    if ptype = Pfn.Page_table then begin
      Pfn.validate d;
      Pfn.get_page d
    end;
    dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames
  done;
  Evtchn.bind dom.Domain.evtchn ~port:1;
  Evtchn.bind dom.Domain.evtchn ~port:2;
  (* Grant a few page-table-typed frames for I/O rings; these pinned
     frames are never handed back by decrease_reservation, so grant maps
     cannot race with frame freeing. *)
  let granted = ref 0 in
  List.iter
    (fun f ->
      if !granted < 8 && (Pfn.get t.pfn f).Pfn.ptype = Pfn.Page_table then begin
        Grant.grant dom.Domain.grants ~slot:!granted ~frame:f;
        incr granted
      end)
    dom.Domain.owned_frames;
  Array.iter (fun v -> Sched.enqueue t.sched v) dom.Domain.vcpus;
  dom

let destroy_domain_internal t dom =
  dom.Domain.alive <- false;
  List.iter
    (fun f ->
      let d = Pfn.get t.pfn f in
      if d.Pfn.owner = dom.Domain.domid then begin
        if d.Pfn.validated then Pfn.invalidate d;
        (* Drop every reference (pin and allocation) so the frame really
           returns to the allocator. *)
        while d.Pfn.use_count > 0 do
          Pfn.put_page d
        done
      end)
    dom.Domain.owned_frames;
  dom.Domain.owned_frames <- [];
  List.iter (fun obj -> if obj.Heap.live then Heap.free t.heap obj) dom.Domain.heap_objs;
  dom.Domain.heap_objs <- [];
  Hashtbl.remove t.domains dom.Domain.domid

(* Make each pinned vCPU current on its CPU, as after boot completes. *)
let start_vcpus t =
  List.iter
    (fun (v : Domain.vcpu) ->
      match Sched.current t.sched ~cpu:v.Domain.processor with
      | None ->
        (match Sched.dequeue t.sched ~cpu:v.Domain.processor with
        | Some v' when v' == v -> ()
        | Some v' -> Sched.enqueue t.sched v'
        | None -> ());
        Sched.set_current t.sched ~cpu:v.Domain.processor (Some v);
        Sched.vcpu_mark_current v ~cpu:v.Domain.processor;
        t.percpu.(v.Domain.processor).Percpu.curr_domid <- v.Domain.domid;
        t.percpu.(v.Domain.processor).Percpu.curr_vcpuid <- v.Domain.vid
      | Some _ -> ())
    (all_vcpus t)

type setup =
  | One_appvm
  | Three_appvm
  | Tenant_fleet of int
      (* n small tenant VMs, one vCPU each, round-robin pinned across the
         non-PrivVM CPUs: the fleet-scale serving scenario *)

(* Boot a target system: PrivVM on CPU 0 plus AppVMs pinned to their own
   CPUs (each VM has one vCPU pinned to a different physical CPU,
   Section VI-A). [vcpus_per_cpu > 1] gives each AppVM several vCPUs
   sharing its physical CPU -- the "more complex configurations, that
   include multiple vCPUs per CPU" of the paper's future work. *)
let boot_target t ~setup ~vcpus_per_cpu =
  register_recurring_events t;
  arm_all_apics t;
  setup_ioapic_routing t;
  let dom_frames = 96 in
  let app_pins cpu = List.init (max 1 vcpus_per_cpu) (fun _ -> cpu) in
  let _privvm = create_domain_internal t ~privileged:true ~vcpu_pins:[ 0 ] ~mem_frames:dom_frames in
  (match setup with
  | One_appvm ->
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 1)
         ~mem_frames:dom_frames)
  | Three_appvm ->
    (* Initially two AppVMs (UnixBench, NetBench); the third (BlkBench)
       is created after recovery. *)
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 1)
         ~mem_frames:dom_frames);
    ignore
      (create_domain_internal t ~privileged:false ~vcpu_pins:(app_pins 2)
         ~mem_frames:dom_frames)
  | Tenant_fleet tenants ->
    (* Many small single-vCPU tenants sharing the non-PrivVM CPUs. Small
       memory footprint each, so hundreds of tenants fit the campaign
       frame table with room for post-boot allocation. *)
    let num_cpus = Hw.Machine.num_cpus t.machine in
    let tenant_frames = 24 in
    for i = 0 to tenants - 1 do
      let cpu = if num_cpus = 1 then 0 else 1 + (i mod (num_cpus - 1)) in
      ignore
        (create_domain_internal t ~privileged:false ~vcpu_pins:[ cpu ]
           ~mem_frames:tenant_frames)
    done);
  start_vcpus t;
  (* The idle domain, created last (Xen gives it a reserved domid): one
     always-runnable vCPU per CPU that the scheduler alternates with
     guest vCPUs. *)
  let saved_next_domid = t.next_domid in
  t.next_domid <- 1000;
  let num_cpus = Hw.Machine.num_cpus t.machine in
  let idle =
    create_domain_internal ~is_idle:true t ~privileged:false
      ~vcpu_pins:(List.init num_cpus (fun c -> c))
      ~mem_frames:0
  in
  (* Idle vCPUs become current on CPUs with no guest vCPU. *)
  Array.iter
    (fun (v : Domain.vcpu) ->
      match Sched.current t.sched ~cpu:v.Domain.processor with
      | None ->
        (match Sched.dequeue t.sched ~cpu:v.Domain.processor with
        | Some v' when v' == v -> ()
        | Some v' -> Sched.enqueue t.sched v'
        | None -> ());
        Sched.set_current t.sched ~cpu:v.Domain.processor (Some v);
        Sched.vcpu_mark_current v ~cpu:v.Domain.processor;
        t.percpu.(v.Domain.processor).Percpu.curr_domid <- v.Domain.domid;
        t.percpu.(v.Domain.processor).Percpu.curr_vcpuid <- v.Domain.vid
      | Some _ -> ())
    idle.Domain.vcpus;
  t.next_domid <- saved_next_domid

let boot ?(mconfig = Hw.Machine.default_config) ?obs ?(vcpus_per_cpu = 1)
    ~config ~setup clock =
  let t = create ~mconfig ?obs ~config clock in
  boot_target t ~setup ~vcpus_per_cpu;
  t

(* Reuse a previously booted hypervisor for a new run: rewind the clock,
   reset every component in place to its freshly-created state (including
   heap object-id numbering and frame-allocation order, which surface in
   panic messages), then run the same boot sequence as [boot]. The result
   is observationally identical to a fresh [boot] on the same machine
   geometry -- the reset ≡ reboot determinism contract the campaign
   engine's worker reuse relies on -- but reuses all the big tables (pfn
   descriptors, trace ring, per-CPU areas), so it allocates almost
   nothing. The machine geometry ([mconfig]) is fixed at [create]; only
   the hypervisor [config] may change between runs. *)
let reboot_in_place t ~config ~setup ~vcpus_per_cpu =
  Sim.Clock.reset t.clock;
  t.config <- config;
  Hw.Machine.reset t.machine;
  Heap.reset t.heap;
  Spinlock.Segment.reset t.static_segment;
  (* Ascending CPU order reproduces [create]'s heap-allocation sequence
     (per-CPU lock object then per-CPU area, cpu 0 first). *)
  Array.iter (Percpu.reset t.heap) t.percpu;
  Pfn.reset t.pfn;
  Timer_heap.reset t.timers;
  Sched.reset t.sched;
  Hashtbl.reset t.domains;
  Cycle_account.reset t.cycles;
  (* The recorder and the flight rings deliberately survive the in-place
     reboot: the flight recorder must keep the pre-crash evidence a
     postmortem reads back. Harness code that wants per-run metric
     isolation calls [Obs.Recorder.reset] itself at run boundaries. *)
  Array.fill t.watchdog_soft 0 (Array.length t.watchdog_soft) 0;
  Array.fill t.need_resched_flags 0 (Array.length t.need_resched_flags) false;
  t.time_sync_count <- 0;
  t.next_domid <- 0;
  t.static_data_ok <- true;
  t.static_data_note <- "";
  t.recovery_handler_ok <- true;
  t.bootline_ok <- true;
  t.step_hook <- None;
  (* The indexed-name tables depend only on the ABI sub-op limit: rebuild
     them only if a config swap changed it, so steady-state reuse keeps
     the interned names. *)
  if Array.length t.pte_write_names <> config.Config.max_hypercall_subops + 1
  then begin
    t.pte_write_names <-
      indexed_names "pte_write_" config.Config.max_hypercall_subops;
    t.grant_map_names <-
      indexed_names "grant_map_" config.Config.max_hypercall_subops;
    t.ring_io_names <- indexed_names "ring_io_" config.Config.max_hypercall_subops;
    t.grant_unmap_names <-
      indexed_names "grant_unmap_" config.Config.max_hypercall_subops
  end;
  Hw.Ioapic.set_logging t.machine.Hw.Machine.ioapic
    config.Config.ioapic_write_logging;
  boot_target t ~setup ~vcpus_per_cpu

(* ------------------------------------------------------------------ *)
(* Flight-recorder readback                                           *)
(* ------------------------------------------------------------------ *)

(* Run-boundary epoch bump: flight rings are never cleared (they must
   survive restore / in-place reboot), so readback is scoped to the
   entries recorded since the last bump. *)
let new_flight_epoch t =
  Obs.Flight.new_epoch t.hc_flight;
  Obs.Flight.new_epoch t.journal_flight

(* Oldest-first (name, simulated ns) tails for the current epoch. *)
let hypercall_tail t = Obs.Flight.tail t.hc_flight
let journal_tail t = Obs.Flight.tail t.journal_flight

(* ------------------------------------------------------------------ *)
(* Copy-on-write golden snapshots                                      *)
(* ------------------------------------------------------------------ *)

(* [snapshot] captures a golden image of the mutable hypervisor state;
   [restore] rewinds the same instance back to it in place. Cost model:
   the page-frame table, the heap and the timer heap are handled
   copy-on-write inside [Pfn] / [Heap] / [Timer_heap] (each descriptor,
   object and event carries its own golden copy plus a dirty bit and
   mutators maintain shared dirty lists), so snapshot and restore are
   O(changed state) there; everything else (domains, vcpus, locks,
   per-CPU areas, hardware) is small and constant-size and captured
   whole.

   Constraints:
   - One outstanding image per instance: taking a new snapshot refreshes
     the pfn/heap/timer tables' built-in golden copies, invalidating an
     older image's baseline. Restoring the *most recent* image is
     repeatable (restore, run, restore again): each restore drains the
     dirty lists, later writes re-dirty.
   - Snapshot at quiesce points only: an in-flight hypercall record
     ([vcpu.in_hypercall]) is captured by reference, so interior
     mutation of a record alive at snapshot time (sub-op progress, its
     undo journal) would leak across a restore. Both harness snapshot
     points (post-boot, post-warmup) have no in-flight hypercalls.
   - The recorder ([t.obs]) and the flight rings are deliberately NOT
     part of the image, and [restore] never resets them: observability
     state survives recovery, like the paper's persistent journal.
     Harness code wanting per-run isolation pairs [restore] with
     [Obs.Recorder.reset] (boot-time images) or [Obs.Metrics.restore]
     (trigger-point clone fan-out), plus [new_flight_epoch].
   - [step_hook] comes back as [None]; the harness reinstalls its CPU
     tracker per run. *)

type lock_image = {
  il_lock : Spinlock.t;
  il_holder : int option;
  il_acquisitions : int;
}

let capture_lock (l : Spinlock.t) =
  { il_lock = l; il_holder = l.Spinlock.holder; il_acquisitions = l.Spinlock.acquisitions }

let restore_lock im =
  im.il_lock.Spinlock.holder <- im.il_holder;
  im.il_lock.Spinlock.acquisitions <- im.il_acquisitions

type vcpu_image = {
  iv_vcpu : Domain.vcpu;
  iv_processor : int;
  iv_runstate : Domain.runstate;
  iv_is_current : bool;
  iv_curr_slot : int;
  iv_guest_regs : Hw.Regs.t;
  iv_fsgs_valid : bool;
  iv_in_hypercall : Hypercalls.record option;
  iv_in_syscall_forward : bool;
  iv_retry_pending : bool;
  iv_syscall_retry_pending : bool;
  iv_lost_work : bool;
}

type domain_image = {
  id_dom : Domain.t; (* live record, reinserted into the table on restore *)
  id_alive : bool;
  id_struct_ok : bool;
  id_guest_failed : bool;
  id_guest_sdc : bool;
  id_owned_frames : int list;
  id_heap_objs : Heap.obj list;
  id_vcpus : vcpu_image array;
  id_evtchn : (bool * bool * bool) array; (* (bound, pending, masked) *)
  id_evtchn_lock : lock_image;
  id_grants : (bool * int * int) array; (* (in_use, frame, mapped_by) *)
  id_grant_lock : lock_image;
  id_page_lock : lock_image;
}

type percpu_image = {
  ip_local_irq_count : int;
  ip_in_hypercall_depth : int;
  ip_curr_domid : int;
  ip_curr_vcpuid : int;
  ip_saved_guest_fsgs : (int64 * int64) option;
  ip_heap_lock : lock_image;
}

type image = {
  im_config : Config.t;
  im_machine : Hw.Machine.image;
  im_now : Sim.Time.ns;
  (* Heap and timer-heap golden state lives inside those instances
     (copy-on-write, refreshed by [snapshot] below), not in the image. *)
  im_static_locks : lock_image list;
  im_percpu : percpu_image array;
  im_runq : Domain.vcpu list array;
  im_curr : Domain.vcpu option array;
  im_domains : domain_image list; (* ascending domid = boot insertion order *)
  im_cycles_total : int;
  im_cycles_logging : int;
  im_cycles_entries : int;
  im_watchdog_soft : int array;
  im_need_resched : bool array;
  im_time_sync_count : int;
  im_next_domid : int;
  im_static_data_ok : bool;
  im_static_data_note : string;
  im_recovery_handler_ok : bool;
  im_bootline_ok : bool;
  im_cur_activity : activity;
  im_cur_cpu : int;
  im_cur_step : int;
}

let capture_vcpu (v : Domain.vcpu) =
  {
    iv_vcpu = v;
    iv_processor = v.Domain.processor;
    iv_runstate = v.Domain.runstate;
    iv_is_current = v.Domain.is_current;
    iv_curr_slot = v.Domain.curr_slot;
    iv_guest_regs = Hw.Regs.copy v.Domain.guest_regs;
    iv_fsgs_valid = v.Domain.fsgs_valid;
    iv_in_hypercall = v.Domain.in_hypercall;
    iv_in_syscall_forward = v.Domain.in_syscall_forward;
    iv_retry_pending = v.Domain.retry_pending;
    iv_syscall_retry_pending = v.Domain.syscall_retry_pending;
    iv_lost_work = v.Domain.lost_work;
  }

let restore_vcpu im =
  let v = im.iv_vcpu in
  v.Domain.processor <- im.iv_processor;
  v.Domain.runstate <- im.iv_runstate;
  v.Domain.is_current <- im.iv_is_current;
  v.Domain.curr_slot <- im.iv_curr_slot;
  Hw.Regs.restore ~from:im.iv_guest_regs v.Domain.guest_regs;
  v.Domain.fsgs_valid <- im.iv_fsgs_valid;
  v.Domain.in_hypercall <- im.iv_in_hypercall;
  v.Domain.in_syscall_forward <- im.iv_in_syscall_forward;
  v.Domain.retry_pending <- im.iv_retry_pending;
  v.Domain.syscall_retry_pending <- im.iv_syscall_retry_pending;
  v.Domain.lost_work <- im.iv_lost_work

let capture_domain (d : Domain.t) =
  {
    id_dom = d;
    id_alive = d.Domain.alive;
    id_struct_ok = d.Domain.struct_ok;
    id_guest_failed = d.Domain.guest_failed;
    id_guest_sdc = d.Domain.guest_sdc;
    id_owned_frames = d.Domain.owned_frames;
    id_heap_objs = d.Domain.heap_objs;
    id_vcpus = Array.map capture_vcpu d.Domain.vcpus;
    id_evtchn =
      Array.map
        (fun (c : Evtchn.chan) -> (c.Evtchn.bound, c.Evtchn.pending, c.Evtchn.masked))
        d.Domain.evtchn.Evtchn.chans;
    id_evtchn_lock = capture_lock d.Domain.evtchn.Evtchn.lock;
    id_grants =
      Array.map
        (fun (e : Grant.entry) -> (e.Grant.in_use, e.Grant.frame, e.Grant.mapped_by))
        d.Domain.grants.Grant.entries;
    id_grant_lock = capture_lock d.Domain.grants.Grant.lock;
    id_page_lock = capture_lock d.Domain.page_lock;
  }

let restore_domain im =
  let d = im.id_dom in
  d.Domain.alive <- im.id_alive;
  d.Domain.struct_ok <- im.id_struct_ok;
  d.Domain.guest_failed <- im.id_guest_failed;
  d.Domain.guest_sdc <- im.id_guest_sdc;
  d.Domain.owned_frames <- im.id_owned_frames;
  d.Domain.heap_objs <- im.id_heap_objs;
  Array.iter restore_vcpu im.id_vcpus;
  Array.iteri
    (fun i (c : Evtchn.chan) ->
      let bound, pending, masked = im.id_evtchn.(i) in
      c.Evtchn.bound <- bound;
      c.Evtchn.pending <- pending;
      c.Evtchn.masked <- masked)
    d.Domain.evtchn.Evtchn.chans;
  restore_lock im.id_evtchn_lock;
  Array.iteri
    (fun i (e : Grant.entry) ->
      let in_use, frame, mapped_by = im.id_grants.(i) in
      e.Grant.in_use <- in_use;
      e.Grant.frame <- frame;
      e.Grant.mapped_by <- mapped_by)
    d.Domain.grants.Grant.entries;
  restore_lock im.id_grant_lock;
  restore_lock im.id_page_lock

let snapshot t =
  Pfn.snapshot t.pfn;
  Heap.snapshot t.heap;
  Timer_heap.snapshot t.timers;
  let static_locks = ref [] in
  Spinlock.Segment.iter t.static_segment (fun l ->
      static_locks := capture_lock l :: !static_locks);
  {
    im_config = t.config;
    im_machine = Hw.Machine.snapshot t.machine;
    im_now = Sim.Clock.now t.clock;
    im_static_locks = !static_locks;
    im_percpu =
      Array.map
        (fun (p : Percpu.t) ->
          {
            ip_local_irq_count = p.Percpu.local_irq_count;
            ip_in_hypercall_depth = p.Percpu.in_hypercall_depth;
            ip_curr_domid = p.Percpu.curr_domid;
            ip_curr_vcpuid = p.Percpu.curr_vcpuid;
            ip_saved_guest_fsgs = p.Percpu.saved_guest_fsgs;
            ip_heap_lock = capture_lock p.Percpu.heap_lock;
          })
        t.percpu;
    im_runq = Array.copy t.sched.Sched.runq;
    im_curr = Array.copy t.sched.Sched.curr;
    im_domains = List.map capture_domain (all_domains t);
    im_cycles_total = t.cycles.Cycle_account.total;
    im_cycles_logging = t.cycles.Cycle_account.logging;
    im_cycles_entries = t.cycles.Cycle_account.entries;
    im_watchdog_soft = Array.copy t.watchdog_soft;
    im_need_resched = Array.copy t.need_resched_flags;
    im_time_sync_count = t.time_sync_count;
    im_next_domid = t.next_domid;
    im_static_data_ok = t.static_data_ok;
    im_static_data_note = t.static_data_note;
    im_recovery_handler_ok = t.recovery_handler_ok;
    im_bootline_ok = t.bootline_ok;
    im_cur_activity = t.cur_activity;
    im_cur_cpu = t.cur_cpu;
    im_cur_step = t.cur_step;
  }

let restore t (im : image) =
  Pfn.restore t.pfn;
  Heap.restore t.heap;
  Timer_heap.restore t.timers;
  t.config <- im.im_config;
  Hw.Machine.restore t.machine im.im_machine;
  t.clock.Sim.Clock.now <- im.im_now;
  List.iter restore_lock im.im_static_locks;
  Array.iteri
    (fun i (p : Percpu.t) ->
      let s = im.im_percpu.(i) in
      p.Percpu.local_irq_count <- s.ip_local_irq_count;
      p.Percpu.in_hypercall_depth <- s.ip_in_hypercall_depth;
      p.Percpu.curr_domid <- s.ip_curr_domid;
      p.Percpu.curr_vcpuid <- s.ip_curr_vcpuid;
      p.Percpu.saved_guest_fsgs <- s.ip_saved_guest_fsgs;
      restore_lock s.ip_heap_lock)
    t.percpu;
  Array.blit im.im_runq 0 t.sched.Sched.runq 0 (Array.length im.im_runq);
  Array.blit im.im_curr 0 t.sched.Sched.curr 0 (Array.length im.im_curr);
  Hashtbl.reset t.domains;
  List.iter
    (fun di ->
      restore_domain di;
      Hashtbl.replace t.domains di.id_dom.Domain.domid di.id_dom)
    im.im_domains;
  t.cycles.Cycle_account.total <- im.im_cycles_total;
  t.cycles.Cycle_account.logging <- im.im_cycles_logging;
  t.cycles.Cycle_account.entries <- im.im_cycles_entries;
  Array.blit im.im_watchdog_soft 0 t.watchdog_soft 0
    (Array.length im.im_watchdog_soft);
  Array.blit im.im_need_resched 0 t.need_resched_flags 0
    (Array.length im.im_need_resched);
  t.time_sync_count <- im.im_time_sync_count;
  t.next_domid <- im.im_next_domid;
  t.static_data_ok <- im.im_static_data_ok;
  t.static_data_note <- im.im_static_data_note;
  t.recovery_handler_ok <- im.im_recovery_handler_ok;
  t.bootline_ok <- im.im_bootline_ok;
  t.step_hook <- None;
  t.cur_activity <- im.im_cur_activity;
  t.cur_cpu <- im.im_cur_cpu;
  t.cur_step <- im.im_cur_step;
  (* Mirror [reboot_in_place]: the indexed-name tables depend only on
     the ABI sub-op limit, rebuilt only if the restored config moved it. *)
  if
    Array.length t.pte_write_names
    <> im.im_config.Config.max_hypercall_subops + 1
  then begin
    t.pte_write_names <-
      indexed_names "pte_write_" im.im_config.Config.max_hypercall_subops;
    t.grant_map_names <-
      indexed_names "grant_map_" im.im_config.Config.max_hypercall_subops;
    t.ring_io_names <-
      indexed_names "ring_io_" im.im_config.Config.max_hypercall_subops;
    t.grant_unmap_names <-
      indexed_names "grant_unmap_" im.im_config.Config.max_hypercall_subops
  end

(* ------------------------------------------------------------------ *)
(* The stepper: instrumented micro-step execution                      *)
(* ------------------------------------------------------------------ *)

let cycles_to_ns cycles = (cycles / 3) + 1 (* ~2.9 GHz *)

(* Enter an activity: every [step] until the next [begin_activity] is
   accounted against it. *)
let begin_activity t activity cpu =
  t.cur_activity <- activity;
  t.cur_cpu <- cpu;
  t.cur_step <- 0

(* One instrumented micro-step: charge the cycles, advance the clock and
   let the step hook observe (and possibly abandon or corrupt) the
   execution, then the caller runs the step's body inline. Accounting
   *precedes* the body, so a hook that raises [Abandoned] stops the
   activity with that step's effects not yet applied -- the same contract
   the previous closure-passing stepper had, minus the per-step closure
   and context-record allocations. *)
let step ?(cycles = 150) t step_name =
  let step_index = t.cur_step in
  t.cur_step <- step_index + 1;
  (* The cycle/clock charges are record-field updates written out inline:
     this runs ~18k times per injection run and, without flambda, each of
     the equivalent cross-module calls (Cycle_account.charge,
     Hw.Cpu.charge_cycles, Sim.Clock.advance_by) costs more than the add
     it performs. [cycles_to_ns] is always positive, so bypassing
     Clock.advance_by's negative-delta check loses nothing. *)
  let cyc = t.cycles in
  cyc.Cycle_account.total <- cyc.Cycle_account.total + cycles;
  let cpu = t.machine.Hw.Machine.cpus.(t.cur_cpu) in
  cpu.Hw.Cpu.unhalted_cycles <- cpu.Hw.Cpu.unhalted_cycles + cycles;
  let clk = t.clock in
  clk.Sim.Clock.now <- clk.Sim.Clock.now + cycles_to_ns cycles;
  match t.step_hook with
  | Some hook -> hook t t.cur_activity step_index step_name t.cur_cpu
  | None -> ()

(* Journal append helper: charges the logging cycles that produce the
   Figure 3 overhead. Same inlined field updates as [step]: the journal
   write path runs a few thousand times per run. *)
let journal_log t (journal : Journal.t) entry =
  if journal.Journal.enabled then begin
    let cyc = t.cycles in
    cyc.Cycle_account.total <- cyc.Cycle_account.total + Journal.cycles_per_write;
    cyc.Cycle_account.logging <-
      cyc.Cycle_account.logging + Journal.cycles_per_write;
    let clk = t.clock in
    clk.Sim.Clock.now <- clk.Sim.Clock.now + cycles_to_ns Journal.cycles_per_write;
    Obs.Metrics.incr t.obs.Obs.Recorder.journal_writes;
    (* Flight ring: entry kinds are constant strings, so this is pure
       array stores -- always on, no level filter. *)
    Obs.Flight.note t.journal_flight ~name:(Journal.entry_kind entry)
      ~time:clk.Sim.Clock.now;
    if Obs.Recorder.enabled t.obs Obs.Event.Debug then
      observe t Obs.Event.Debug
        (Obs.Event.Journal_append
           { kind = Journal.entry_kind entry; depth = Journal.depth journal + 1 })
  end;
  Journal.log journal entry

(* ------------------------------------------------------------------ *)
(* Hypercall handlers                                                  *)
(* ------------------------------------------------------------------ *)

let indexed_name table prefix i =
  if i < Array.length table then table.(i) else Printf.sprintf "%s%d" prefix i

(* Random-element selection over filtered collections, as two passes
   (count, then walk to the k-th match) instead of materialising the
   filtered list. The single [Rng.int] draw is over the same bound as
   before, so the streams -- and the chosen elements -- are identical. *)
let rec count_writable t acc = function
  | [] -> acc
  | f :: rest ->
    count_writable t
      (if (Pfn.get t.pfn f).Pfn.ptype = Pfn.Writable then acc + 1 else acc)
      rest

let rec nth_writable t k = function
  | [] -> -1 (* unreachable: k < count_writable *)
  | f :: rest ->
    if (Pfn.get t.pfn f).Pfn.ptype = Pfn.Writable then
      if k = 0 then f else nth_writable t (k - 1) rest
    else nth_writable t k rest

let pick_writable_frame t rng (dom : Domain.t) =
  match count_writable t 0 dom.Domain.owned_frames with
  | 0 -> None
  | n -> Some (nth_writable t (Sim.Rng.int rng n) dom.Domain.owned_frames)

(* Whether [f] backs an in-use grant entry (the membership test formerly
   done against a freshly built list of granted frames). *)
let rec frame_granted (entries : Grant.entry array) f i =
  i < Array.length entries
  && ((entries.(i).Grant.in_use && entries.(i).Grant.frame = f)
     || frame_granted entries f (i + 1))

let rec count_free_grant_slots (entries : Grant.entry array) acc i =
  if i >= Array.length entries then acc
  else
    count_free_grant_slots entries
      (if entries.(i).Grant.in_use && entries.(i).Grant.mapped_by = -1 then
         acc + 1
       else acc)
      (i + 1)

let rec nth_free_grant_slot (entries : Grant.entry array) k i =
  let e = entries.(i) in
  if e.Grant.in_use && e.Grant.mapped_by = -1 then
    if k = 0 then e else nth_free_grant_slot entries (k - 1) (i + 1)
  else nth_free_grant_slot entries k (i + 1)

(* mmu_update: pin a fresh frame as a page table (get ref, write PTEs,
   validate) and unpin an old one. The validate/commit gap is the
   non-idempotent retry hazard of Section IV; code reordering moves the
   critical updates as late as possible, the undo journal makes them
   reversible. *)
let exec_mmu_update t journal (dom : Domain.t) (record : Hypercalls.record)
    ~entries =
  step t "lock_page_alloc";
  Spinlock.acquire dom.Domain.page_lock ~cpu:0;
  let target, old_frame =
    match record.Hypercalls.target_frames with
    | f :: rest ->
      (Pfn.get t.pfn f, match rest with o :: _ -> Some o | [] -> None)
    | [] ->
      step t "alloc_frame";
      let d = Pfn.alloc_frame t.pfn ~owner:dom.Domain.domid ~ptype:Pfn.Page_table in
      (* The table being replaced: a currently pinned page-table frame
         (not one backing a grant entry). *)
      let old_frame =
        List.find_opt
          (fun f ->
            let o = Pfn.get t.pfn f in
            o.Pfn.ptype = Pfn.Page_table && o.Pfn.validated
            && f <> d.Pfn.index
            && not (frame_granted dom.Domain.grants.Grant.entries f 0))
          dom.Domain.owned_frames
      in
      record.Hypercalls.target_frames <-
        (d.Pfn.index :: (match old_frame with Some o -> [ o ] | None -> []));
      record.Hypercalls.fresh_frames <- [ d.Pfn.index ];
      dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames;
      (d, old_frame)
  in
  (* Unpin the table being replaced: invalidate + drop the pin
     reference. The frame keeps its allocation reference and returns to
     the guest's writable pool (a later decrease_reservation frees it);
     unpinning must not orphan it. Non-idempotent (retrying invalidates
     an already-invalid frame); reversible only through the undo
     journal -- code reordering cannot move this, because the PTE writes
     below must not race with a still-pinned old table. *)
  (match old_frame with
  | Some o ->
    let od = Pfn.get t.pfn o in
    step t "unpin_old_table";
    if od.Pfn.validated then begin
      journal_log t journal (Journal.Validated_cleared od);
      Pfn.invalidate od;
      journal_log t journal (Journal.Type_change (od, od.Pfn.ptype));
      journal_log t journal (Journal.Owner_change (od, od.Pfn.owner));
      journal_log t journal (Journal.Use_count_delta (od, -1));
      Pfn.put_page od;
      if od.Pfn.use_count > 0 then begin
        Pfn.touch od;
        od.Pfn.ptype <- Pfn.Writable
      end
    end
    else
      (* Retry without undo: double unpin. *)
      Pfn.invalidate od
  | None -> ());
  (* Retrying with the same target: if the first execution already
     validated it and nothing undid that, [Pfn.validate] panics -- the
     paper's "re-execution results in an inconsistent state". Code
     reordering (when this handler is among the enhanced ones) moves the
     critical update to the end, shrinking the window. *)
  if not (t.config.Config.code_reordering && record.Hypercalls.enhanced) then begin
    step t "validate_early";
    if not target.Pfn.validated then begin
      journal_log t journal (Journal.Validated_set target);
      Pfn.validate target
    end
    else Pfn.validate target (* panics: double validation *)
  end;
  for i = 1 to entries do
    step ~cycles:120 t (indexed_name t.pte_write_names "pte_write_" i)
  done;
  step t "get_page_ref";
  journal_log t journal (Journal.Use_count_delta (target, 1));
  Pfn.get_page target;
  if t.config.Config.code_reordering && record.Hypercalls.enhanced then begin
    step t "validate_late";
    if not target.Pfn.validated then begin
      journal_log t journal (Journal.Validated_set target);
      Pfn.validate target
    end
    else Pfn.validate target
  end;
  step t "unlock_page_alloc";
  Spinlock.release dom.Domain.page_lock ~cpu:0

let exec_update_va_mapping t rng journal (dom : Domain.t)
    (record : Hypercalls.record) =
  let frame =
    match record.Hypercalls.target_frames with
    | f :: _ -> Some f
    | [] ->
      let f = pick_writable_frame t rng dom in
      (match f with
      | Some f -> record.Hypercalls.target_frames <- [ f ]
      | None -> ());
      f
  in
  match frame with
  | None -> ()
  | Some f ->
    let d = Pfn.get t.pfn f in
    step t "get_page";
    journal_log t journal (Journal.Use_count_delta (d, 1));
    Pfn.get_page d;
    step ~cycles:100 t "write_pte";
    step ~cycles:200 t "flush_tlb";
    step t "put_page";
    journal_log t journal (Journal.Use_count_delta (d, -1));
    Pfn.put_page d

let exec_memory_op_populate t journal (dom : Domain.t)
    (record : Hypercalls.record) =
  for i = 1 to 2 do
    ignore i;
    (* The buddy-allocator critical section under the static heap lock is
       short: acquire and release within the allocation step. *)
    step t "alloc_frame";
    Spinlock.acquire t.global_heap_lock ~cpu:0;
    let d = Pfn.alloc_frame t.pfn ~owner:dom.Domain.domid ~ptype:Pfn.Writable in
    Spinlock.release t.global_heap_lock ~cpu:0;
    journal_log t journal
      (Journal.Undo_fn
         (fun () ->
           if d.Pfn.use_count > 0 then Pfn.put_page d));
    record.Hypercalls.fresh_frames <- d.Pfn.index :: record.Hypercalls.fresh_frames;
    step t "assign_page";
    dom.Domain.owned_frames <- d.Pfn.index :: dom.Domain.owned_frames
  done

let exec_memory_op_decrease t rng journal (dom : Domain.t)
    (record : Hypercalls.record) =
  (match record.Hypercalls.target_frames with
  | [] ->
    (match pick_writable_frame t rng dom with
    | Some f -> record.Hypercalls.target_frames <- [ f ]
    | None -> ())
  | _ -> ());
  match record.Hypercalls.target_frames with
  | [] -> ()
  | f :: _ ->
    let d = Pfn.get t.pfn f in
    (* Double execution without undo double-puts the frame: underflow. *)
    step t "put_page";
    journal_log t journal (Journal.Type_change (d, d.Pfn.ptype));
    journal_log t journal (Journal.Owner_change (d, d.Pfn.owner));
    journal_log t journal (Journal.Use_count_delta (d, -1));
    Spinlock.acquire t.global_heap_lock ~cpu:0;
    Pfn.put_page d;
    Spinlock.release t.global_heap_lock ~cpu:0;
    step t "remove_from_domain";
    dom.Domain.owned_frames <-
      List.filter (fun f' -> f' <> f) dom.Domain.owned_frames

let exec_grant_table_op t rng journal (dom : Domain.t)
    (record : Hypercalls.record) ~subops =
  step t "lock_grant";
  Spinlock.acquire dom.Domain.grants.Grant.lock ~cpu:0;
  (match record.Hypercalls.target_frames with
  | [] -> (
    (* Map then unmap a granted frame per sub-op pair. *)
    let entries = dom.Domain.grants.Grant.entries in
    match count_free_grant_slots entries 0 0 with
    | 0 -> ()
    | n ->
      let e = nth_free_grant_slot entries (Sim.Rng.int rng n) 0 in
      record.Hypercalls.target_frames <- [ e.Grant.slot ])
  | _ -> ());
  (match record.Hypercalls.target_frames with
  | slot :: _ ->
    let e = dom.Domain.grants.Grant.entries.(slot) in
    for i = 1 to subops do
      let frame_desc =
        if e.Grant.frame >= 0 then Some (Pfn.get t.pfn e.Grant.frame) else None
      in
      step t (indexed_name t.grant_map_names "grant_map_" i);
      (* Retrying a completed map panics ("already mapped") unless the
         undo log reverted it. *)
      journal_log t journal
        (Journal.Undo_fn (fun () -> if e.Grant.mapped_by <> -1 then e.Grant.mapped_by <- -1));
      Grant.map dom.Domain.grants ~slot ~by:0;
      (match frame_desc with
      | Some d ->
        journal_log t journal (Journal.Use_count_delta (d, 1));
        Pfn.get_page d
      | None -> ());
      step ~cycles:400 t (indexed_name t.ring_io_names "ring_io_" i);
      step t (indexed_name t.grant_unmap_names "grant_unmap_" i);
      journal_log t journal
        (Journal.Undo_fn (fun () -> if e.Grant.mapped_by = -1 then e.Grant.mapped_by <- 0));
      Grant.unmap dom.Domain.grants ~slot;
      match frame_desc with
      | Some d ->
        journal_log t journal (Journal.Use_count_delta (d, -1));
        Pfn.put_page d
      | None -> ()
    done
  | [] -> ());
  step t "unlock_grant";
  Spinlock.release dom.Domain.grants.Grant.lock ~cpu:0

let exec_evtchn_send t (dom : Domain.t) =
  step t "lock_evtchn";
  Spinlock.acquire dom.Domain.evtchn.Evtchn.lock ~cpu:0;
  step t "set_pending";
  Evtchn.send dom.Domain.evtchn ~port:1;
  step t "unlock_evtchn";
  Spinlock.release dom.Domain.evtchn.Evtchn.lock ~cpu:0

let exec_sched_op_block t cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  step t "lock_sched";
  Spinlock.acquire percpu.Percpu.heap_lock ~cpu;
  (* A guest can only block the vCPU that is actually executing. *)
  let is_current =
    match Sched.current t.sched ~cpu with
    | Some v -> v == vcpu
    | None -> false
  in
  if is_current then begin
    step t "set_blocked";
    vcpu.Domain.runstate <- Domain.Blocked;
    step t "clear_percpu_curr";
    Sched.set_current t.sched ~cpu None;
    percpu.Percpu.curr_domid <- -1;
    percpu.Percpu.curr_vcpuid <- -1;
    step t "clear_vcpu_current";
    Sched.vcpu_clear_current vcpu;
    (* Pick someone else to run, if anyone is queued. *)
    step t "pick_next";
    (match Sched.dequeue t.sched ~cpu with
    | Some next ->
      step t "set_next_current";
      Sched.set_current t.sched ~cpu (Some next);
      percpu.Percpu.curr_domid <- next.Domain.domid;
      percpu.Percpu.curr_vcpuid <- next.Domain.vid;
      step t "mark_next";
      Sched.vcpu_mark_current next ~cpu
    | None -> ());
    (* The event the guest blocked on arrives shortly (I/O completion):
       requeue the vCPU as runnable. *)
    step t "arrange_wakeup";
    if vcpu.Domain.runstate = Domain.Blocked then Sched.enqueue t.sched vcpu
  end
  else step ~cycles:80 t "poll_pending_events";
  step t "unlock_sched";
  Spinlock.release percpu.Percpu.heap_lock ~cpu

let exec_set_timer_op t cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  step t "lock_timers";
  Spinlock.acquire percpu.Percpu.heap_lock ~cpu;
  step t "insert_timer";
  let now = Sim.Clock.now t.clock in
  ignore
    (Timer_heap.add t.timers
       ~deadline:(now + Sim.Time.ms 1)
       (Timer_heap.Vcpu_timer (vcpu.Domain.domid, vcpu.Domain.vid)));
  step t "unlock_timers";
  Spinlock.release percpu.Percpu.heap_lock ~cpu

let exec_console_io t cpu =
  step t "lock_console";
  Spinlock.acquire t.console_lock ~cpu;
  step ~cycles:300 t "emit";
  step t "unlock_console";
  Spinlock.release t.console_lock ~cpu

(* Toolstack domain creation: walks the domain list under the static
   domlist lock, allocates control structures from the heap and memory
   from the frame allocator -- the path that must still work after
   recovery for the hypervisor to count as healthy. *)
let exec_domctl_create t cpu ~vcpu_pin ~mem_frames =
  Domain.check_struct (privvm t);
  step t "lock_domlist";
  Spinlock.acquire t.domlist_lock ~cpu;
  if not t.static_data_ok then
    Crash.panic "domctl: static configuration data corrupted (%s)"
      t.static_data_note;
  step t "alloc_domain_struct";
  let dom =
    create_domain_internal t ~privileged:false ~vcpu_pins:[ vcpu_pin ]
      ~mem_frames
  in
  step t "unlock_domlist";
  Spinlock.release t.domlist_lock ~cpu;
  dom

let exec_domctl_destroy t cpu (dom : Domain.t) =
  step t "lock_domlist";
  Spinlock.acquire t.domlist_lock ~cpu;
  step t "teardown";
  destroy_domain_internal t dom;
  step t "unlock_domlist";
  Spinlock.release t.domlist_lock ~cpu

(* First unbound event channel, lowest port first (the order the old
   [Array.to_list |> find_opt] walk produced). *)
let rec first_unbound_chan (chans : Evtchn.chan array) i =
  if i >= Array.length chans then -1
  else if not chans.(i).Evtchn.bound then i
  else first_unbound_chan chans (i + 1)

(* Dispatch a hypercall body. [record] carries retry state. *)
let rec exec_hypercall_body t rng journal cpu (vcpu : Domain.vcpu)
    (record : Hypercalls.record) (kind : Hypercalls.kind) =
  let dom =
    match domain t vcpu.Domain.domid with
    | Some d -> d
    | None -> Crash.panic "hypercall from dead domain %d" vcpu.Domain.domid
  in
  Domain.check_struct dom;
  match kind with
  | Hypercalls.Mmu_update entries -> exec_mmu_update t journal dom record ~entries
  | Hypercalls.Update_va_mapping -> exec_update_va_mapping t rng journal dom record
  | Hypercalls.Memory_op_populate -> exec_memory_op_populate t journal dom record
  | Hypercalls.Memory_op_decrease -> exec_memory_op_decrease t rng journal dom record
  | Hypercalls.Grant_table_op subops ->
    exec_grant_table_op t rng journal dom record ~subops
  | Hypercalls.Event_channel_send -> exec_evtchn_send t dom
  | Hypercalls.Event_channel_bind -> (
    step t "bind_port";
    let chans = dom.Domain.evtchn.Evtchn.chans in
    match first_unbound_chan chans 0 with
    | -1 -> ()
    | i -> Evtchn.bind dom.Domain.evtchn ~port:chans.(i).Evtchn.port)
  | Hypercalls.Sched_op_yield ->
    step t "yield";
    t.need_resched_flags.(cpu) <- true
  | Hypercalls.Sched_op_block -> exec_sched_op_block t cpu vcpu
  | Hypercalls.Set_timer_op -> exec_set_timer_op t cpu vcpu
  | Hypercalls.Console_io -> exec_console_io t cpu
  | Hypercalls.Vcpu_op_info -> step ~cycles:100 t "read_info"
  | Hypercalls.Domctl_create_domain ->
    ignore (exec_domctl_create t cpu ~vcpu_pin:3 ~mem_frames:32)
  | Hypercalls.Domctl_destroy_domain ->
    (match app_domains t with
    | d :: _ -> exec_domctl_destroy t cpu d
    | [] -> ())
  | Hypercalls.Domctl_pause_domain -> step t "pause"
  | Hypercalls.Multicall kinds ->
    (* Each component gets its own argument record (created once, reused
       verbatim on retry); all components share the batch's journal. *)
    if record.Hypercalls.children = [] then
      record.Hypercalls.children <-
        List.map
          (fun k ->
            Hypercalls.make_record ~enhanced:record.Hypercalls.enhanced
              ~logging:false k)
          kinds;
    List.iteri
      (fun i child ->
        if i >= record.Hypercalls.sub_completed then begin
          exec_hypercall_body t rng journal cpu vcpu child
            child.Hypercalls.kind;
          if t.config.Config.hypercall_progress_tracking then begin
            (* Fine-granularity batched retry: log each component's
               completion so a retry skips it. *)
            Cycle_account.charge_logging t.cycles 40;
            record.Hypercalls.sub_completed <- record.Hypercalls.sub_completed + 1;
            Journal.commit journal
          end
        end)
      record.Hypercalls.children

let journal_of_record _t (record : Hypercalls.record) = record.Hypercalls.journal

(* ------------------------------------------------------------------ *)
(* Top-level activities                                                *)
(* ------------------------------------------------------------------ *)

let run_timer_action t cpu (e : Timer_heap.event) =
  Obs.Metrics.incr t.obs.Obs.Recorder.timer_fires;
  if Obs.Recorder.enabled t.obs Obs.Event.Debug then
    observe t ~cpu Obs.Event.Debug
      (Obs.Event.Timer_fire { action = Timer_heap.action_name e.Timer_heap.action });
  match e.Timer_heap.action with
  | Timer_heap.Time_sync ->
    step t "time_sync";
    t.time_sync_count <- t.time_sync_count + 1
  | Timer_heap.Sched_tick c ->
    step t "sched_tick";
    t.need_resched_flags.(c) <- true
  | Timer_heap.Watchdog_tick ->
    step t "watchdog_tick";
    for i = 0 to Array.length t.watchdog_soft - 1 do
      t.watchdog_soft.(i) <- t.watchdog_soft.(i) + 1
    done
  | Timer_heap.Vcpu_timer (domid, vid) -> (
    step t "vcpu_timer";
    match domain t domid with
    | Some d when d.Domain.alive ->
      let v = Domain.vcpu d vid in
      if v.Domain.runstate = Domain.Blocked then begin
        v.Domain.runstate <- Domain.Runnable;
        Sched.enqueue t.sched v
      end
    | Some _ | None -> ())
  | Timer_heap.Generic_oneshot -> step t "oneshot"
  [@@warning "-27"]

(* The context-switch path, decomposed so an abandonment between the
   per-CPU update and the per-vCPU updates leaves the redundant records
   disagreeing. Returns [true] if the wrong register context would have
   been restored. *)
let do_context_switch t cpu =
  let percpu = t.percpu.(cpu) in
  step t "lock_sched";
  Spinlock.acquire percpu.Percpu.heap_lock ~cpu;
  step t "assert_not_in_irq";
  Percpu.assert_not_in_irq percpu;
  let wrong_context = ref false in
  step t "pick_next";
  (match Sched.dequeue t.sched ~cpu with
  | None -> ()
  | Some next ->
    (match Sched.current t.sched ~cpu with
    | Some prev when prev == next -> ()
    | Some prev ->
      (* The assertion-rich part of Xen's schedule(): metadata must
         agree before the switch. *)
      step t "assert_consistent";
      Crash.hv_assert prev.Domain.is_current
        "schedule: cpu%d prev d%dv%d lost is_current" cpu prev.Domain.domid
        prev.Domain.vid;
      if prev.Domain.curr_slot <> cpu then
        (* Disagreement that does not trip an assertion restores a
           stale context instead. *)
        wrong_context := true;
      step t "clear_prev";
      Sched.vcpu_clear_current prev;
      if prev.Domain.runstate = Domain.Running then
        prev.Domain.runstate <- Domain.Runnable;
      Sched.enqueue t.sched prev;
      step t "set_percpu_curr";
      Sched.set_current t.sched ~cpu (Some next);
      percpu.Percpu.curr_domid <- next.Domain.domid;
      percpu.Percpu.curr_vcpuid <- next.Domain.vid;
      step t "mark_next_current";
      Sched.vcpu_mark_current next ~cpu;
      step ~cycles:350 t "restore_context";
      (* Disagreeing redundant records make Xen restore a stale
         register context: the guest resumes with wrong registers. *)
      if !wrong_context then begin
        match domain t next.Domain.domid with
        | Some d when not d.Domain.is_idle -> d.Domain.guest_failed <- true
        | Some _ | None -> ()
      end
    | None ->
      step t "set_percpu_curr";
      Sched.set_current t.sched ~cpu (Some next);
      percpu.Percpu.curr_domid <- next.Domain.domid;
      percpu.Percpu.curr_vcpuid <- next.Domain.vid;
      step t "mark_next_current";
      Sched.vcpu_mark_current next ~cpu;
      step ~cycles:350 t "restore_context"));
  step t "unlock_sched";
  Spinlock.release percpu.Percpu.heap_lock ~cpu;
  t.need_resched_flags.(cpu) <- false;
  !wrong_context

let rec drain_due_timers t cpu ~now budget =
  if budget > 0 then begin
    match Timer_heap.pop_due t.timers ~now with
    | None -> ()
    | Some e ->
      (* The periodic-timer infrastructure re-arms scheduler/watchdog
         ticks up front; the time-sync handler re-arms itself at the
         end of its (longer) handler, leaving the pop-to-requeue gap
         that "Reactivate recurring timer events" closes. *)
      (match e.Timer_heap.action with
      | Timer_heap.Time_sync ->
        run_timer_action t cpu e;
        Timer_heap.requeue t.timers e ~now:(Sim.Clock.now t.clock)
      | Timer_heap.Sched_tick _ | Timer_heap.Watchdog_tick
      | Timer_heap.Vcpu_timer _ | Timer_heap.Generic_oneshot ->
        Timer_heap.requeue t.timers e ~now:(Sim.Clock.now t.clock);
        run_timer_action t cpu e);
      drain_due_timers t cpu ~now (budget - 1)
  end

let do_timer_tick t cpu =
  let percpu = t.percpu.(cpu) in
  let apic = (Hw.Machine.cpu t.machine cpu).Hw.Cpu.apic in
  step t "irq_enter";
  Percpu.irq_enter percpu;
  (* The APIC one-shot timer fired to get here: it is now disarmed
     and stays so until the reprogram step below. *)
  Hw.Apic.disarm_timer apic;
  Hw.Apic.begin_service apic 0xf0;
  step t "lock_timers";
  Spinlock.acquire percpu.Percpu.heap_lock ~cpu;
  let now = Sim.Clock.now t.clock in
  (* Each due event is popped, its handler runs and (for recurring
     events) it is re-inserted at the end of the handler -- the pop-to-
     requeue gap is the window the "Reactivate recurring timer events"
     enhancement closes. *)
  drain_due_timers t cpu ~now 3;
  step t "unlock_timers";
  Spinlock.release percpu.Percpu.heap_lock ~cpu;
  step t "reprogram_apic";
  let deadline =
    match Timer_heap.next_deadline t.timers with
    | Some d -> max d (Sim.Clock.now t.clock + Sim.Time.us 10)
    | None -> Sim.Clock.now t.clock + Sim.Time.ms 10
  in
  Hw.Apic.program_timer apic ~deadline;
  step t "apic_eoi";
  Hw.Apic.eoi apic 0xf0;
  step t "irq_exit";
  Percpu.irq_exit percpu
(* Resched requests raised by the tick are honoured by the softirq path
   on the next idle poll / explicit context switch. *)

let do_device_interrupt t ~line ~target_dom =
  let cpu = 0 (* device interrupts are routed to the PrivVM's CPU *) in
  let percpu = t.percpu.(cpu) in
  let apic = (Hw.Machine.cpu t.machine cpu).Hw.Cpu.apic in
  let vector, _, masked = Hw.Ioapic.read t.machine.Hw.Machine.ioapic ~line in
  if masked || vector = 0 then
    (* Routing lost (e.g. after a reboot without the IO-APIC log):
       the device's interrupts simply never arrive. *)
    ()
  else begin
    step t "irq_enter";
    Percpu.irq_enter percpu;
    Hw.Apic.begin_service apic vector;
    (match domain t target_dom with
    | Some dom when dom.Domain.alive ->
      step t "lock_evtchn";
      Spinlock.acquire dom.Domain.evtchn.Evtchn.lock ~cpu;
      step t "notify_guest";
      Evtchn.send dom.Domain.evtchn ~port:2;
      (* The event wakes the target vCPU if it blocked. *)
      let vcpus = dom.Domain.vcpus in
      for i = 0 to Array.length vcpus - 1 do
        let v = vcpus.(i) in
        if v.Domain.runstate = Domain.Blocked then Sched.enqueue t.sched v
      done;
      step t "unlock_evtchn";
      Spinlock.release dom.Domain.evtchn.Evtchn.lock ~cpu
    | Some _ | None -> ());
    step t "apic_eoi";
    Hw.Apic.eoi apic vector;
    step t "irq_exit";
    Percpu.irq_exit percpu
  end

(* Fraction of the non-idempotent hypercall paths actually covered by the
   logging/reordering mitigation (the paper covered the handlers fault
   injection surfaced, not all of them: 84% -> 96% recovery rate). *)
let mitigation_coverage = 0.80

let do_hypercall t rng ~cpu (vcpu : Domain.vcpu) kind ~retry_of =
  let percpu = t.percpu.(cpu) in
  let record =
    match retry_of with
    | Some r ->
      r.Hypercalls.retries <- r.Hypercalls.retries + 1;
      r
    | None ->
      let enhanced =
        (not (Hypercalls.non_idempotent kind))
        || Sim.Rng.float rng 1.0 < mitigation_coverage
      in
      Hypercalls.make_record ~enhanced
        ~logging:t.config.Config.nonidempotent_logging kind
  in
  let journal = journal_of_record t record in
  let domid = vcpu.Domain.domid and vid = vcpu.Domain.vid in
  Obs.Metrics.incr t.obs.Obs.Recorder.hypercall_entries;
  (* Flight ring: [static_name] is a pre-interned constant (unlike
     [Hypercalls.name], which formats), so the note allocates nothing. *)
  Obs.Flight.note t.hc_flight
    ~name:(Hypercalls.static_name kind)
    ~time:(Sim.Clock.now t.clock);
  (* [Hypercalls.name] formats, so even computing the payload's fields is
     deferred until the event is known to pass the level filter. *)
  (match retry_of with
  | Some r ->
    Obs.Metrics.incr t.obs.Obs.Recorder.hypercall_retries;
    if Obs.Recorder.enabled t.obs Obs.Event.Info then
      observe t ~cpu ~domid Obs.Event.Info
        (Obs.Event.Hypercall_retry
           { domid; vid; kind = Hypercalls.name kind; attempt = r.Hypercalls.retries })
  | None ->
    if Obs.Recorder.enabled t.obs Obs.Event.Debug then
      observe t ~cpu ~domid Obs.Event.Debug
        (Obs.Event.Hypercall_entry
           { domid; vid; kind = Hypercalls.name kind; retry = false }));
  step t "hypercall_entry";
  Cycle_account.note_entry t.cycles;
  percpu.Percpu.in_hypercall_depth <- percpu.Percpu.in_hypercall_depth + 1;
  if t.config.Config.save_fs_gs then begin
    (* The x86-64 port fix: explicitly save the guest's FS/GS. *)
    Cycle_account.charge t.cycles 30;
    percpu.Percpu.saved_guest_fsgs <-
      Some
        ( Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.FS,
          Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.GS )
  end;
  vcpu.Domain.in_hypercall <- Some record;
  exec_hypercall_body t rng journal cpu vcpu record kind;
  step t "hypercall_commit";
  record.Hypercalls.committed <- true;
  let debug_on = Obs.Recorder.enabled t.obs Obs.Event.Debug in
  let entries = Journal.depth journal in
  if entries > 0 && debug_on then
    observe t ~cpu ~domid Obs.Event.Debug (Obs.Event.Journal_commit { entries });
  Journal.commit journal;
  if debug_on then
    observe t ~cpu ~domid Obs.Event.Debug
      (Obs.Event.Hypercall_commit { domid; vid; kind = Hypercalls.name kind });
  step t "hypercall_exit";
  vcpu.Domain.in_hypercall <- None;
  vcpu.Domain.retry_pending <- false;
  percpu.Percpu.saved_guest_fsgs <- None;
  percpu.Percpu.in_hypercall_depth <- max 0 (percpu.Percpu.in_hypercall_depth - 1)

let do_syscall_forward t ~cpu (vcpu : Domain.vcpu) =
  let percpu = t.percpu.(cpu) in
  step t "syscall_entry";
  Cycle_account.note_entry t.cycles;
  if t.config.Config.save_fs_gs then
    percpu.Percpu.saved_guest_fsgs <-
      Some
        ( Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.FS,
          Hw.Regs.get vcpu.Domain.guest_regs Hw.Regs.GS );
  vcpu.Domain.in_syscall_forward <- true;
  step ~cycles:60 t "decode_target";
  step t "forward_to_kernel";
  step t "syscall_exit";
  vcpu.Domain.in_syscall_forward <- false;
  vcpu.Domain.syscall_retry_pending <- false;
  percpu.Percpu.saved_guest_fsgs <- None

let do_idle_poll t cpu =
  step ~cycles:50 t "check_softirq";
  if t.need_resched_flags.(cpu) then ignore (do_context_switch t cpu)

let execute t rng activity =
  match activity with
  | Timer_tick cpu ->
    begin_activity t activity cpu;
    do_timer_tick t cpu
  | Device_interrupt { line; target_dom } ->
    begin_activity t activity 0;
    do_device_interrupt t ~line ~target_dom
  | Hypercall { domid; vid; kind } ->
    (match domain t domid with
    | Some dom when dom.Domain.alive ->
      let vcpu = Domain.vcpu dom vid in
      let cpu = vcpu.Domain.processor in
      begin_activity t activity cpu;
      do_hypercall t rng ~cpu vcpu kind ~retry_of:None
    | Some _ | None -> ())
  | Syscall_forward { domid; vid } ->
    (match domain t domid with
    | Some dom when dom.Domain.alive ->
      let vcpu = Domain.vcpu dom vid in
      let cpu = vcpu.Domain.processor in
      begin_activity t activity cpu;
      do_syscall_forward t ~cpu vcpu
    | Some _ | None -> ())
  | Context_switch cpu ->
    begin_activity t activity cpu;
    ignore (do_context_switch t cpu)
  | Idle_poll cpu ->
    begin_activity t activity cpu;
    do_idle_poll t cpu

(* Execute an activity but abandon it (exactly as a discarded execution
   thread would be) at step [stop_at]: partial state stays in place. *)
let execute_partial t rng activity ~stop_at =
  let saved_hook = t.step_hook in
  let counter = ref 0 in
  t.step_hook <-
    Some
      (fun t' act idx name cpu ->
        (match saved_hook with Some h -> h t' act idx name cpu | None -> ());
        if !counter >= stop_at then raise Abandoned;
        incr counter);
  Fun.protect
    ~finally:(fun () -> t.step_hook <- saved_hook)
    (fun () -> try execute t rng activity with Abandoned -> ())

(* Retry a hypercall abandoned by recovery (the "hypercall retry"
   mechanism): optionally undo the journal first (non-idempotent
   mitigation), then re-execute with the same arguments. *)
let retry_hypercall t rng (vcpu : Domain.vcpu) =
  match vcpu.Domain.in_hypercall with
  | None -> ()
  | Some record ->
    let journal = journal_of_record t record in
    if t.config.Config.nonidempotent_logging then begin
      let entries = Journal.depth journal in
      if entries > 0 then begin
        Obs.Metrics.incr ~by:entries t.obs.Obs.Recorder.journal_undone;
        if Obs.Recorder.enabled t.obs Obs.Event.Info then
          observe t ~cpu:vcpu.Domain.processor ~domid:vcpu.Domain.domid
            Obs.Event.Info (Obs.Event.Journal_undo { entries })
      end;
      Journal.undo_all journal
    end;
    let cpu = vcpu.Domain.processor in
    let activity =
      Hypercall
        { domid = vcpu.Domain.domid; vid = vcpu.Domain.vid; kind = record.Hypercalls.kind }
    in
    begin_activity t activity cpu;
    do_hypercall t rng ~cpu vcpu record.Hypercalls.kind ~retry_of:(Some record)

let retry_syscall t (vcpu : Domain.vcpu) =
  let cpu = vcpu.Domain.processor in
  let activity = Syscall_forward { domid = vcpu.Domain.domid; vid = vcpu.Domain.vid } in
  begin_activity t activity cpu;
  do_syscall_forward t ~cpu vcpu

(* ------------------------------------------------------------------ *)
(* Consistency audit                                                   *)
(* ------------------------------------------------------------------ *)

type audit_report = {
  static_locks_held : int;
  heap_locks_held : bool;
  irq_counts_nonzero : int;
  sched_consistent : bool;
  pfn_inconsistent : int;
  heap_ok : bool;
  timer_structure_ok : bool;
  recurring_missing : int;
  apics_unarmed : int;
  static_data_ok : bool;
}

let audit t =
  let static_locks_held =
    let n = ref 0 in
    Spinlock.Segment.iter t.static_segment (fun l ->
        if Spinlock.is_held l then incr n);
    !n
  in
  let irq_counts_nonzero =
    Array.fold_left
      (fun acc (p : Percpu.t) -> if p.Percpu.local_irq_count <> 0 then acc + 1 else acc)
      0 t.percpu
  in
  let apics_unarmed =
    let n = ref 0 in
    Hw.Machine.iter_cpus t.machine (fun c ->
        if not (Hw.Apic.timer_armed c.Hw.Cpu.apic) then incr n);
    !n
  in
  {
    static_locks_held;
    heap_locks_held = Heap.any_heap_lock_held t.heap;
    irq_counts_nonzero;
    sched_consistent = Sched.audit t.sched (all_vcpus t);
    pfn_inconsistent = Pfn.count_inconsistent t.pfn;
    heap_ok = Heap.audit t.heap;
    timer_structure_ok = Timer_heap.structure_ok t.timers;
    recurring_missing = List.length (Timer_heap.missing_recurring t.timers);
    apics_unarmed;
    static_data_ok = t.static_data_ok;
  }

let audit_clean r =
  r.static_locks_held = 0 && (not r.heap_locks_held) && r.irq_counts_nonzero = 0
  && r.sched_consistent && r.pfn_inconsistent = 0 && r.heap_ok
  && r.timer_structure_ok && r.recurring_missing = 0 && r.apics_unarmed = 0
  && r.static_data_ok

(* Visit the audit's violations as (index, kind, magnitude) triples
   without materialising a list; [index] follows [audit_violation_kinds]
   order, so counter lookups against [t.audit_counters] are plain array
   reads (instruments are registered eagerly at [create] so fresh and
   reused recorders stay structurally identical). *)
let iter_violations r f =
  if r.static_locks_held > 0 then f 0 "static_locks_held" r.static_locks_held;
  if r.heap_locks_held then f 1 "heap_locks_held" 1;
  if r.irq_counts_nonzero > 0 then f 2 "irq_counts_nonzero" r.irq_counts_nonzero;
  if not r.sched_consistent then f 3 "sched_inconsistent" 1;
  if r.pfn_inconsistent > 0 then f 4 "pfn_inconsistent" r.pfn_inconsistent;
  if not r.heap_ok then f 5 "heap_corrupt" 1;
  if not r.timer_structure_ok then f 6 "timer_structure_bad" 1;
  if r.recurring_missing > 0 then f 7 "recurring_missing" r.recurring_missing;
  if r.apics_unarmed > 0 then f 8 "apics_unarmed" r.apics_unarmed;
  if not r.static_data_ok then f 9 "static_data_corrupt" 1

(* The same violations as (kind, magnitude) pairs, for callers that want
   a value rather than a visit. *)
let audit_violations r =
  let acc = ref [] in
  iter_violations r (fun _ kind count -> acc := (kind, count) :: !acc);
  List.rev !acc

(* Bump the per-kind [audit.*] counters and emit one typed
   [Audit_violation] event per violated invariant. Called wherever an
   audit is consulted for pass/fail (post-recovery classification,
   endurance cycles) so violations are queryable instead of living only
   in a formatted failure string. The counter bumps go through the
   cached [audit_counters] array: no name concatenation, no registry
   lookup, no intermediate list. *)
let record_audit_violations t r =
  iter_violations r (fun idx kind count ->
      Obs.Metrics.incr ~by:count t.audit_counters.(idx);
      if Obs.Recorder.enabled t.obs Obs.Event.Warn then
        observe t Obs.Event.Warn (Obs.Event.Audit_violation { kind; count }))

let pp_audit fmt r =
  Format.fprintf fmt
    "static_locks_held=%d heap_locks_held=%b irq_nonzero=%d sched_ok=%b \
     pfn_bad=%d heap_ok=%b timer_ok=%b recurring_missing=%d apics_unarmed=%d \
     static_data_ok=%b"
    r.static_locks_held r.heap_locks_held r.irq_counts_nonzero
    r.sched_consistent r.pfn_inconsistent r.heap_ok r.timer_structure_ok
    r.recurring_missing r.apics_unarmed r.static_data_ok
