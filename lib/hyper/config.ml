(** Normal-operation feature flags.

    These are the mechanisms that must already be active *before* a fault
    for recovery to use them (Section IV of the paper). They cost cycles
    during normal operation (Figure 3) and are what distinguishes the
    stock hypervisor from the NiLiHype / ReHype builds. *)

(* Machine geometry as the latency model sees it: the frame count and
   CPU count every size-proportional recovery cost derives from. The
   paper's reference host is 8 GB / 8 CPUs (Tables II and III).

   Simulated machines are usually much smaller than the machine they
   model (campaign tables hold 64 Ki descriptors, not 2 Mi), and the
   recovery-latency accounting is analytic in the counts -- so a config
   can pin an explicit geometry to report latencies for the *modelled*
   host while the simulation walks the scaled-down tables. *)
type geometry = { frames : int; cpus : int }

(* 8 GB / 4 KB pages = 2_097_152 frames; 8 CPUs. *)
let reference_geometry = { frames = 2_097_152; cpus = 8 }

type t = {
  nonidempotent_logging : bool;
      (* undo-journal critical variable changes in non-idempotent
         hypercalls; the dominant source of normal-operation overhead *)
  code_reordering : bool;
      (* move critical-variable updates to the end of hypercall handlers;
         shrinks the retry vulnerability window at zero cycle cost *)
  save_fs_gs : bool;
      (* save FS/GS on hypervisor entry (x86-64 port fix) *)
  hypercall_progress_tracking : bool;
      (* log completion of each hypercall within a multicall batch so a
         retry can skip completed components *)
  ioapic_write_logging : bool;
      (* ReHype only: log IO-APIC redirection writes so the reboot can
         restore routing *)
  bootline_logging : bool;
      (* ReHype only: log boot command-line options for the re-boot *)
  watchdog_period_ms : int;
      (* NMI-watchdog tick period; a hang is detected after
         [watchdog_hang_periods] missed ticks, so this sets the hang
         detection latency (endurance runs sweep it) *)
  max_hypercall_subops : int;
      (* ABI limit on batched sub-operations per hypercall (PTE writes in
         an mmu_update, map/unmap pairs in a grant_table_op); sizes the
         hypervisor's interned step-name tables at create time *)
  geometry : geometry option;
      (* the geometry all scan costs are charged at; [None] derives it
         from the simulated machine itself (honest for that machine),
         [Some g] reports latencies for a modelled host of [g] while the
         simulation runs on its own (usually smaller) tables *)
  incremental_scan : bool;
      (* drive the recovery-time consistency passes off the copy-on-write
         dirty lists (O(damaged state)) instead of walking the whole
         structures (O(machine)); requires the dirty tracking to be
         intact at recovery time, else recovery falls back to the full
         scan *)
}

(* The watchdog declares a hang after this many consecutive missed
   ticks (the paper's "roughly three 100 ms periods"). *)
let watchdog_hang_periods = 3

let hang_detection_latency t = Sim.Time.ms (watchdog_hang_periods * t.watchdog_period_ms)

let stock =
  {
    nonidempotent_logging = false;
    code_reordering = false;
    save_fs_gs = false;
    hypercall_progress_tracking = false;
    ioapic_write_logging = false;
    bootline_logging = false;
    watchdog_period_ms = 100;
    max_hypercall_subops = 8;
    geometry = None;
    incremental_scan = false;
  }

let nilihype =
  {
    nonidempotent_logging = true;
    code_reordering = true;
    save_fs_gs = true;
    hypercall_progress_tracking = true;
    ioapic_write_logging = false;
    bootline_logging = false;
    watchdog_period_ms = 100;
    max_hypercall_subops = 8;
    geometry = None;
    incremental_scan = false;
  }

(* NiLiHype* in Figure 3: the logging turned off. *)
let nilihype_no_logging = { nilihype with nonidempotent_logging = false }

(* NiLiHype with the incremental (dirty-list-driven) recovery passes:
   identical normal-operation cost -- the copy-on-write dirty tracking
   already exists for snapshots -- but recovery walks only state written
   since the last golden refresh, falling back to the full scan when the
   tracking cannot be trusted. *)
let nilihype_incremental = { nilihype with incremental_scan = true }

let rehype = { nilihype with ioapic_write_logging = true; bootline_logging = true }
