(** Hypervisor spinlocks.

    Two populations, matching the paper's treatment:
    - locks allocated in the heap (per-domain, per-CPU scheduler and timer
      locks): ReHype already had a mechanism to release these, reused by
      NiLiHype;
    - locks in the static data segment ("static locks": console, domain
      list, global heap lock...): ReHype gets them re-initialised by the
      boot; NiLiHype gathers them into one linker segment and walks that
      segment to unlock them ("Unlock static locks" enhancement).

    In the simulator a lock left held by a discarded execution thread is
    permanent: the next acquisition spins forever, which the watchdog
    reports as a hang. *)

type location =
  | Static (* lives in the static data segment's lock section *)
  | Heap (* allocated from the Xen heap *)

type t = {
  name : string;
  location : location;
  mutable holder : int option; (* CPU id of the holder *)
  mutable acquisitions : int;
}

let create ~name ~location = { name; location; holder = None; acquisitions = 0 }

let acquire t ~cpu =
  match t.holder with
  | None ->
    t.holder <- Some cpu;
    t.acquisitions <- t.acquisitions + 1
  | Some c when c = cpu ->
    (* Recursive acquisition deadlocks a non-recursive spinlock; Xen's
       debug build asserts on it. *)
    Crash.panic "spinlock %s: recursive acquisition on cpu%d" t.name cpu
  | Some c ->
    (* The holder's execution thread no longer exists (it was abandoned
       by a failure), so this spin never ends. *)
    Crash.hang "spinlock %s: spinning (held by dead thread on cpu%d)" t.name c

let release t ~cpu =
  match t.holder with
  | Some c when c = cpu -> t.holder <- None
  | Some c -> Crash.panic "spinlock %s: released by cpu%d, held by cpu%d" t.name cpu c
  | None -> Crash.panic "spinlock %s: releasing an unheld lock" t.name

let is_held t = t.holder <> None

let force_unlock t = t.holder <- None

(* Back to created state (for machine reuse); the lock object itself is
   kept so existing registrations stay valid. *)
let reset t =
  t.holder <- None;
  t.acquisitions <- 0

(** The static-lock segment: the array the modified linker script
    produces, over which the recovering CPU iterates. *)
module Segment = struct
  type lock = t

  type t = { mutable locks : lock list }

  let create () = { locks = [] }

  let register t lock =
    if lock.location <> Static then
      invalid_arg "Spinlock.Segment.register: not a static lock";
    t.locks <- lock :: t.locks

  let iter t f = List.iter f t.locks

  (* The "Unlock static locks" enhancement: walk the segment and unlock
     any locked lock. Returns how many were released. *)
  let unlock_all t =
    let released = ref 0 in
    iter t (fun l ->
        if is_held l then begin
          force_unlock l;
          incr released
        end);
    !released

  let any_held t = List.exists is_held t.locks
  let count t = List.length t.locks

  (* Reset every registered lock in place without touching the
     registration list (re-registering would duplicate entries). *)
  let reset t = iter t reset
end
