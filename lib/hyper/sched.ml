(** Credit-scheduler model: per-CPU run queues plus the redundant
    current-vCPU records described in [Domain].

    [schedule] is assertion-rich, like Xen's: it checks the IRQ-nesting
    counter and the agreement between per-CPU and per-vCPU metadata, so
    inconsistencies left by an abandoned context switch surface as panics
    -- or as restoring the wrong register context, which manifests as
    guest failure. *)

type t = {
  runq : Domain.vcpu list array;
      (* cpu -> queued vcpus, newest first. A vCPU's [processor] pin is
         set at creation and never moves, so plain per-CPU lists replace
         the multi-binding hashtable the run queue used to be: same LIFO
         order ([Hashtbl.add]/[find_all] were newest-first too), no
         hashing and no [find_all] list allocation on the context-switch
         path. *)
  curr : Domain.vcpu option array; (* authoritative per-CPU current *)
  num_cpus : int;
}

let create ~num_cpus =
  { runq = Array.make num_cpus []; curr = Array.make num_cpus None; num_cpus }

(* Empty the run queues and current records, as [create] would. *)
let reset t =
  Array.fill t.runq 0 t.num_cpus [];
  Array.fill t.curr 0 t.num_cpus None

let enqueue t vcpu =
  vcpu.Domain.runstate <- Domain.Runnable;
  let cpu = vcpu.Domain.processor in
  let q = t.runq.(cpu) in
  if not (List.memq vcpu q) then t.runq.(cpu) <- vcpu :: q

let dequeue t ~cpu =
  match t.runq.(cpu) with
  | v :: rest ->
    t.runq.(cpu) <- rest;
    Some v
  | [] -> None

let queued t ~cpu = t.runq.(cpu)

let current t ~cpu = t.curr.(cpu)

(* Commit a context switch: updates the authoritative per-CPU record and
   both redundant per-vCPU copies. The fault injector can abandon the
   caller between these steps, leaving them disagreeing. *)
let set_current t ~cpu vcpu_opt =
  t.curr.(cpu) <- vcpu_opt

let vcpu_mark_current (v : Domain.vcpu) ~cpu =
  v.Domain.is_current <- true;
  v.Domain.curr_slot <- cpu;
  v.Domain.runstate <- Domain.Running

let vcpu_clear_current (v : Domain.vcpu) =
  v.Domain.is_current <- false;
  v.Domain.curr_slot <- -1

(* The consistency rules between per-CPU and per-vCPU records. *)
let consistent_on t ~cpu =
  match t.curr.(cpu) with
  | None -> true
  | Some v ->
    v.Domain.is_current && v.Domain.curr_slot = cpu
    && v.Domain.runstate = Domain.Running

let audit t all_vcpus =
  let ok = ref true in
  for cpu = 0 to t.num_cpus - 1 do
    if not (consistent_on t ~cpu) then ok := false
  done;
  List.iter
    (fun (v : Domain.vcpu) ->
      if v.Domain.is_current then begin
        match t.curr.(v.Domain.curr_slot) with
        | exception Invalid_argument _ -> ok := false
        | Some v' when v' == v -> ()
        | Some _ | None -> ok := false
      end;
      (* A runnable vCPU must be somewhere the scheduler can find it:
         either current or in its CPU's run queue. A vCPU dequeued by an
         abandoned context switch silently starves otherwise. *)
      if v.Domain.runstate = Domain.Runnable && not v.Domain.is_current then begin
        if not (List.memq v t.runq.(v.Domain.processor)) then ok := false
      end)
    all_vcpus;
  !ok

(* The "Ensure consistency within scheduling metadata" enhancement: the
   per-CPU structures are picked as the most reliable source and every
   per-vCPU record is rewritten from them. *)
let fix_from_percpu t all_vcpus =
  let fixes = ref 0 in
  List.iter
    (fun (v : Domain.vcpu) ->
      if v.Domain.is_current || v.Domain.curr_slot <> -1 then begin
        v.Domain.is_current <- false;
        v.Domain.curr_slot <- -1;
        incr fixes
      end;
      if v.Domain.runstate = Domain.Running then begin
        v.Domain.runstate <- Domain.Runnable;
        incr fixes
      end)
    all_vcpus;
  for cpu = 0 to t.num_cpus - 1 do
    match t.curr.(cpu) with
    | Some v ->
      vcpu_mark_current v ~cpu;
      (* Anything the per-CPU view says is current must not also sit in
         a run queue: remove stale queue entries for it. *)
      if List.memq v t.runq.(cpu) then begin
        t.runq.(cpu) <- List.filter (fun v' -> not (v' == v)) t.runq.(cpu);
        incr fixes
      end
    | None -> ()
  done;
  (* Runnable vCPUs that are in no run queue would starve: re-queue them. *)
  List.iter
    (fun (v : Domain.vcpu) ->
      if v.Domain.runstate = Domain.Runnable
         && not (List.memq v t.runq.(v.Domain.processor))
      then begin
        t.runq.(v.Domain.processor) <- v :: t.runq.(v.Domain.processor);
        incr fixes
      end)
    all_vcpus;
  !fixes

(* The scheduling routine proper: asserts on metadata inconsistencies
   (the failure mode the paper describes) and returns the vCPU whose
   register context will be restored -- if the metadata is wrong, that is
   the *wrong* context, which we surface via [`Wrong_context]. *)
let schedule t (percpu : Percpu.t) ~cpu =
  Percpu.assert_not_in_irq percpu;
  (match t.curr.(cpu) with
  | Some v ->
    Crash.hv_assert v.Domain.is_current
      "schedule: cpu%d current vcpu d%dv%d lacks is_current" cpu
      v.Domain.domid v.Domain.vid;
    Crash.hv_assert
      (v.Domain.curr_slot = cpu)
      "schedule: cpu%d current vcpu d%dv%d says slot %d" cpu v.Domain.domid
      v.Domain.vid v.Domain.curr_slot
  | None -> ());
  match dequeue t ~cpu with
  | None -> `Keep_current
  | Some next ->
    (match t.curr.(cpu) with
    | Some prev when prev == next -> `Keep_current
    | Some prev ->
      (* If the previous vCPU's redundant records disagree with the
         per-CPU view, Xen restores a stale register context. *)
      let inconsistent = not (consistent_on t ~cpu) in
      vcpu_clear_current prev;
      if prev.Domain.runstate = Domain.Running then
        prev.Domain.runstate <- Domain.Runnable;
      enqueue t prev;
      set_current t ~cpu (Some next);
      vcpu_mark_current next ~cpu;
      if inconsistent then `Wrong_context next else `Switched next
    | None ->
      set_current t ~cpu (Some next);
      vcpu_mark_current next ~cpu;
      `Switched next)
