(** Per-CPU hypervisor data.

    [local_irq_count] records interrupt-nesting depth and is checked by
    assertions ("is this CPU currently servicing an interrupt?"); because
    microreset discards all execution threads, these counters are left
    non-zero and must be cleared by the "Clear IRQ count" enhancement --
    the very first enhancement in Table I, without which recovery never
    succeeds. *)

type t = {
  cpu : int;
  mutable local_irq_count : int;
  mutable in_hypercall_depth : int;
  mutable curr_domid : int; (* authoritative: domain running on this CPU *)
  mutable curr_vcpuid : int;
  mutable saved_guest_fsgs : (int64 * int64) option;
  heap_lock : Spinlock.t; (* per-CPU scheduler/timer lock, heap-resident *)
}

let create heap cpu =
  let lock =
    Spinlock.create ~name:(Printf.sprintf "percpu%d_sched" cpu) ~location:Spinlock.Heap
  in
  (* The per-CPU area (and its locks) live in the Xen heap, so the
     heap-lock-release mechanism covers them. *)
  ignore (Heap.alloc heap ~size:4096 (Heap.Lock lock));
  ignore (Heap.alloc heap ~size:4096 (Heap.Percpu_area cpu));
  {
    cpu;
    local_irq_count = 0;
    in_hypercall_depth = 0;
    curr_domid = -1;
    curr_vcpuid = -1;
    saved_guest_fsgs = None;
    heap_lock = lock;
  }

(* Reset for machine reuse: clear the mutable state and re-allocate the
   two per-CPU heap objects on the (just reset) heap in the same order and
   sizes as [create], so heap object ids line up exactly with a fresh
   boot's allocation sequence. The lock record is reused in place. *)
let reset heap t =
  Spinlock.reset t.heap_lock;
  ignore (Heap.alloc heap ~size:4096 (Heap.Lock t.heap_lock));
  ignore (Heap.alloc heap ~size:4096 (Heap.Percpu_area t.cpu));
  t.local_irq_count <- 0;
  t.in_hypercall_depth <- 0;
  t.curr_domid <- -1;
  t.curr_vcpuid <- -1;
  t.saved_guest_fsgs <- None

let irq_enter t = t.local_irq_count <- t.local_irq_count + 1

let irq_exit t =
  Crash.hv_assert (t.local_irq_count > 0) "cpu%d: irq_exit with count %d" t.cpu
    t.local_irq_count;
  t.local_irq_count <- t.local_irq_count - 1

let assert_not_in_irq t =
  Crash.hv_assert (t.local_irq_count = 0)
    "cpu%d: scheduling while local_irq_count = %d" t.cpu t.local_irq_count

let clear_irq_count t = t.local_irq_count <- 0
