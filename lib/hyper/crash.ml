(** Hypervisor failure signalling.

    A [Panic] models a fatal hardware exception or failed software
    assertion (detected immediately by Xen's built-in panic path). A
    [Hang] models a CPU stuck in the hypervisor (spinning on a dead lock,
    broken data structure loop); it is detected by the NMI watchdog after
    roughly three 100 ms periods. *)

type detection =
  | Panic of string
  | Hang of string

exception Hypervisor_crash of detection

let panic fmt = Format.kasprintf (fun s -> raise (Hypervisor_crash (Panic s))) fmt
let hang fmt = Format.kasprintf (fun s -> raise (Hypervisor_crash (Hang s))) fmt

(* Xen asserts liberally; failed assertions are panics. The passing case
   must not format (it is on the injection hot path), so the message is
   only rendered when the assertion actually fails. *)
let hv_assert cond fmt =
  if cond then Format.ikfprintf ignore Format.str_formatter fmt
  else
    Format.kasprintf
      (fun s -> raise (Hypervisor_crash (Panic ("ASSERT: " ^ s))))
      fmt

(* Panics trap immediately; hangs wait for the NMI watchdog, i.e.
   [Config.watchdog_hang_periods] ticks of the configured period
   (three 100 ms periods by default, as in the paper). *)
let detection_latency ?(config = Config.nilihype) = function
  | Panic _ -> Sim.Time.us 10
  | Hang _ -> Config.hang_detection_latency config

let describe = function
  | Panic s -> "panic: " ^ s
  | Hang s -> "hang: " ^ s

let pp fmt d = Format.pp_print_string fmt (describe d)
