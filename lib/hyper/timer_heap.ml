(** Software timer heap.

    Xen keeps pending timer events in a binary heap examined from the
    APIC timer interrupt; the handler reprograms the APIC to fire at the
    deadline of the top node. Recurring events (system-time
    synchronisation, scheduler ticks, the watchdog's soft tick) are
    re-inserted by their handlers -- so a failure between pop and
    re-insert silently loses them, the damage the "Reactivate recurring
    timer events" enhancement repairs. *)

type action =
  | Time_sync (* system time calibration, global *)
  | Sched_tick of int (* credit scheduler accounting on a CPU *)
  | Watchdog_tick (* software counter the NMI handler checks *)
  | Vcpu_timer of int * int (* (domid, vcpuid) singleshot timer *)
  | Generic_oneshot

let action_name = function
  | Time_sync -> "time_sync"
  | Sched_tick cpu -> Printf.sprintf "sched_tick(cpu%d)" cpu
  | Watchdog_tick -> "watchdog_tick"
  | Vcpu_timer (domid, vid) -> Printf.sprintf "vcpu_timer(d%dv%d)" domid vid
  | Generic_oneshot -> "oneshot"

type event = {
  id : int;
  mutable deadline : Sim.Time.ns;
  period : Sim.Time.ns option; (* [Some p] for recurring events *)
  action : action;
  mutable queued : bool;
  mutable active : bool; (* an inactive recurring event is "lost" *)
}

type t = {
  mutable arr : event array;
  mutable size : int;
  mutable next_id : int;
  mutable structure_ok : bool; (* heap-order integrity *)
  mutable recurring : event list; (* registry of all recurring events *)
}

(* The backing array is sized eagerly: campaign workers reuse one heap
   across thousands of runs ([reset] keeps the array), and growing it
   lazily would make the first run on each worker allocate more than the
   rest -- breaking the jobs-invariance of the allocation profiler's
   phase counters. 64 slots cover every configuration the campaigns use
   (a few recurring events per CPU plus singleshot vCPU timers). *)
let dummy_event =
  {
    id = -1;
    deadline = 0;
    period = None;
    action = Generic_oneshot;
    queued = false;
    active = false;
  }

let create () =
  {
    arr = Array.make 64 dummy_event;
    size = 0;
    next_id = 0;
    structure_ok = true;
    recurring = [];
  }

let size t = t.size

(* Empty the heap and drop the recurring registry, as [create] would; the
   backing array keeps its capacity (entries beyond [size] are never
   read), so reuse allocates nothing. *)
let reset t =
  t.size <- 0;
  t.next_id <- 0;
  t.structure_ok <- true;
  t.recurring <- []

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.arr.(i).deadline < t.arr.(parent).deadline then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.size && t.arr.(l).deadline < t.arr.(!m).deadline then m := l;
  if r < t.size && t.arr.(r).deadline < t.arr.(!m).deadline then m := r;
  if !m <> i then begin
    swap t i !m;
    sift_down t !m
  end

let push_event t event =
  if not t.structure_ok then
    Crash.panic "timer heap: structure corrupted (insert walks bad links)";
  let cap = Array.length t.arr in
  if t.size = cap then begin
    let narr = Array.make (max 16 (cap * 2)) event in
    Array.blit t.arr 0 narr 0 t.size;
    t.arr <- narr
  end;
  t.arr.(t.size) <- event;
  event.queued <- true;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let add t ~deadline ?period action =
  let event =
    {
      id = t.next_id;
      deadline;
      period;
      action;
      queued = false;
      active = true;
    }
  in
  t.next_id <- t.next_id + 1;
  if period <> None then t.recurring <- event :: t.recurring;
  push_event t event;
  event

let peek t = if t.size = 0 then None else Some t.arr.(0)

let pop t =
  if not t.structure_ok then
    Crash.panic "timer heap: structure corrupted (pop finds bad ordering)";
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t 0
    end;
    top.queued <- false;
    Some top
  end

(* Pop the next event if its deadline has passed. The caller runs the
   handler and (for recurring events) must re-insert via [requeue] --
   the re-insert gap is the vulnerability window. *)
let pop_due t ~now =
  match peek t with
  | Some e when e.deadline <= now -> pop t
  | Some _ | None -> None

let requeue t event ~now =
  match event.period with
  | None -> ()
  | Some p ->
    event.deadline <- now + p;
    event.active <- true;
    push_event t event

let next_deadline t = match peek t with Some e -> Some e.deadline | None -> None

(* Recovery: find recurring events that are neither queued nor about to
   be re-inserted (their handler was abandoned mid-flight) and re-insert
   them. Returns the number reactivated. *)
let reactivate_recurring t ~now =
  let reactivated = ref 0 in
  List.iter
    (fun e ->
      if not e.queued then begin
        (match e.period with
        | Some p -> e.deadline <- now + p
        | None -> ());
        e.active <- true;
        push_event t e;
        incr reactivated
      end)
    t.recurring;
  !reactivated

let missing_recurring t = List.filter (fun e -> not e.queued) t.recurring

let corrupt_structure t = t.structure_ok <- false
let structure_ok t = t.structure_ok

(* ReHype: the reboot constructs a fresh heap and re-registers the
   standard recurring events; domain singleshot timers are re-created
   from the preserved domain state. *)
let rebuild_for_reboot t ~now =
  t.structure_ok <- true;
  t.size <- 0;
  List.iter
    (fun e ->
      e.queued <- false;
      (match e.period with Some p -> e.deadline <- now + p | None -> ());
      e.active <- true;
      push_event t e)
    t.recurring

let heap_property_holds t =
  if not t.structure_ok then false
  else begin
    let ok = ref true in
    for i = 1 to t.size - 1 do
      let parent = (i - 1) / 2 in
      if t.arr.(parent).deadline > t.arr.(i).deadline then ok := false
    done;
    !ok
  end
