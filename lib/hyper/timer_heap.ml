(** Software timer heap.

    Xen keeps pending timer events in a binary heap examined from the
    APIC timer interrupt; the handler reprograms the APIC to fire at the
    deadline of the top node. Recurring events (system-time
    synchronisation, scheduler ticks, the watchdog's soft tick) are
    re-inserted by their handlers -- so a failure between pop and
    re-insert silently loses them, the damage the "Reactivate recurring
    timer events" enhancement repairs.

    Like {!Pfn} and {!Heap}, the timer heap carries copy-on-write golden
    state behind {!Hypervisor.snapshot}: each event holds a golden copy
    of its mutable fields plus a dirty bit, and the heap keeps a golden
    copy of its occupied prefix (event refs, order included) in a
    persistent side array. {!snapshot} and {!restore} walk the dirty
    list plus the occupied prefix -- O(changed events + queue length),
    never O(allocated capacity) -- and allocate nothing in steady state.
    External writers (the fault injector's deadline scribbles) must call
    {!touch} first. *)

type action =
  | Time_sync (* system time calibration, global *)
  | Sched_tick of int (* credit scheduler accounting on a CPU *)
  | Watchdog_tick (* software counter the NMI handler checks *)
  | Vcpu_timer of int * int (* (domid, vcpuid) singleshot timer *)
  | Generic_oneshot

let action_name = function
  | Time_sync -> "time_sync"
  | Sched_tick cpu -> Printf.sprintf "sched_tick(cpu%d)" cpu
  | Watchdog_tick -> "watchdog_tick"
  | Vcpu_timer (domid, vid) -> Printf.sprintf "vcpu_timer(d%dv%d)" domid vid
  | Generic_oneshot -> "oneshot"

type event = {
  id : int;
  mutable deadline : Sim.Time.ns;
  period : Sim.Time.ns option; (* [Some p] for recurring events *)
  action : action;
  mutable queued : bool;
  mutable active : bool; (* an inactive recurring event is "lost" *)
  (* Golden image of the mutable fields, refreshed by [snapshot]. *)
  mutable g_deadline : Sim.Time.ns;
  mutable g_queued : bool;
  mutable g_active : bool;
  mutable dirty : bool; (* on the heap's dirty list? *)
  tracker : tracker; (* back-pointer: mutators see only the event *)
}

and tracker = { mutable dirty_list : event list }

type t = {
  mutable arr : event array;
  mutable size : int;
  mutable next_id : int;
  mutable structure_ok : bool; (* heap-order integrity *)
  mutable recurring : event list; (* registry of all recurring events *)
  tracker : tracker;
  (* Golden copy of the occupied prefix (refs in heap order) plus the
     structural scalars, refreshed by [snapshot]. *)
  mutable g_arr : event array;
  mutable g_size : int;
  mutable g_next_id : int;
  mutable g_structure_ok : bool;
  mutable g_recurring : event list;
}

(* The backing arrays are sized eagerly: campaign workers reuse one heap
   across thousands of runs ([reset] keeps the arrays), and growing them
   lazily would make the first run on each worker allocate more than the
   rest -- breaking the jobs-invariance of the allocation profiler's
   phase counters. 64 slots cover every configuration the campaigns use
   (a few recurring events per CPU plus singleshot vCPU timers). *)
let dummy_tracker = { dirty_list = [] }

let dummy_event =
  {
    id = -1;
    deadline = 0;
    period = None;
    action = Generic_oneshot;
    queued = false;
    active = false;
    g_deadline = 0;
    g_queued = false;
    g_active = false;
    dirty = false;
    tracker = dummy_tracker;
  }

let create () =
  {
    arr = Array.make 64 dummy_event;
    size = 0;
    next_id = 0;
    structure_ok = true;
    recurring = [];
    tracker = { dirty_list = [] };
    g_arr = Array.make 64 dummy_event;
    g_size = 0;
    g_next_id = 0;
    g_structure_ok = true;
    g_recurring = [];
  }

let size t = t.size

(* Mark an event as modified since the last snapshot. Exported: the
   fault injector scribbles on deadlines directly and must call this
   first, like {!Pfn.touch}. *)
let touch e =
  if not e.dirty then begin
    e.dirty <- true;
    e.tracker.dirty_list <- e :: e.tracker.dirty_list
  end

let dirty_count t = List.length t.tracker.dirty_list

(* Refresh the golden image: per-event fields for everything touched
   since the previous snapshot, plus the occupied prefix and structural
   scalars. O(changed events + queue length); allocates only if the
   queue outgrew the golden array's capacity. *)
let snapshot t =
  List.iter
    (fun e ->
      e.g_deadline <- e.deadline;
      e.g_queued <- e.queued;
      e.g_active <- e.active;
      e.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  if Array.length t.g_arr < t.size then
    t.g_arr <- Array.make (Array.length t.arr) dummy_event;
  Array.blit t.arr 0 t.g_arr 0 t.size;
  t.g_size <- t.size;
  t.g_next_id <- t.next_id;
  t.g_structure_ok <- t.structure_ok;
  t.g_recurring <- t.recurring

(* Rewind to the last snapshot: per-event fields for everything touched
   since, then the queue prefix and scalars. Repeatable (the dirty list
   is drained; later writes re-dirty). *)
let restore t =
  List.iter
    (fun e ->
      e.deadline <- e.g_deadline;
      e.queued <- e.g_queued;
      e.active <- e.g_active;
      e.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  (* [arr] never shrinks, so its capacity covers any historical size. *)
  Array.blit t.g_arr 0 t.arr 0 t.g_size;
  t.size <- t.g_size;
  t.next_id <- t.g_next_id;
  t.structure_ok <- t.g_structure_ok;
  t.recurring <- t.g_recurring

(* Empty the heap and drop the recurring registry, as [create] would; the
   backing arrays keep their capacity (entries beyond [size] are never
   read), so reuse allocates nothing. The golden state is reset too --
   after a reset the heap looks exactly as created, snapshot baseline
   included. *)
let reset t =
  t.size <- 0;
  t.next_id <- 0;
  t.structure_ok <- true;
  t.recurring <- [];
  List.iter (fun e -> e.dirty <- false) t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  t.g_size <- 0;
  t.g_next_id <- 0;
  t.g_structure_ok <- true;
  t.g_recurring <- []

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.arr.(i).deadline < t.arr.(parent).deadline then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.size && t.arr.(l).deadline < t.arr.(!m).deadline then m := l;
  if r < t.size && t.arr.(r).deadline < t.arr.(!m).deadline then m := r;
  if !m <> i then begin
    swap t i !m;
    sift_down t !m
  end

let push_event t event =
  if not t.structure_ok then
    Crash.panic "timer heap: structure corrupted (insert walks bad links)";
  let cap = Array.length t.arr in
  if t.size = cap then begin
    let narr = Array.make (max 16 (cap * 2)) event in
    Array.blit t.arr 0 narr 0 t.size;
    t.arr <- narr
  end;
  touch event;
  t.arr.(t.size) <- event;
  event.queued <- true;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let add t ~deadline ?period action =
  let event =
    {
      id = t.next_id;
      deadline;
      period;
      action;
      queued = false;
      active = true;
      g_deadline = deadline;
      g_queued = false;
      g_active = false; (* did not exist at the last snapshot *)
      dirty = false;
      tracker = t.tracker;
    }
  in
  touch event;
  t.next_id <- t.next_id + 1;
  if period <> None then t.recurring <- event :: t.recurring;
  push_event t event;
  event

let peek t = if t.size = 0 then None else Some t.arr.(0)

let pop t =
  if not t.structure_ok then
    Crash.panic "timer heap: structure corrupted (pop finds bad ordering)";
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t 0
    end;
    touch top;
    top.queued <- false;
    Some top
  end

(* Pop the next event if its deadline has passed. The caller runs the
   handler and (for recurring events) must re-insert via [requeue] --
   the re-insert gap is the vulnerability window. *)
let pop_due t ~now =
  match peek t with
  | Some e when e.deadline <= now -> pop t
  | Some _ | None -> None

let requeue t event ~now =
  match event.period with
  | None -> ()
  | Some p ->
    touch event;
    event.deadline <- now + p;
    event.active <- true;
    push_event t event

let next_deadline t = match peek t with Some e -> Some e.deadline | None -> None

(* Recovery: find recurring events that are neither queued nor about to
   be re-inserted (their handler was abandoned mid-flight) and re-insert
   them. Returns the number reactivated. *)
let reactivate_recurring t ~now =
  let reactivated = ref 0 in
  List.iter
    (fun e ->
      if not e.queued then begin
        touch e;
        (match e.period with
        | Some p -> e.deadline <- now + p
        | None -> ());
        e.active <- true;
        push_event t e;
        incr reactivated
      end)
    t.recurring;
  !reactivated

let missing_recurring t = List.filter (fun e -> not e.queued) t.recurring

let corrupt_structure t = t.structure_ok <- false
let structure_ok t = t.structure_ok

(* ReHype: the reboot constructs a fresh heap and re-registers the
   standard recurring events; domain singleshot timers are re-created
   from the preserved domain state. *)
let rebuild_for_reboot t ~now =
  t.structure_ok <- true;
  t.size <- 0;
  List.iter
    (fun e ->
      touch e;
      e.queued <- false;
      (match e.period with Some p -> e.deadline <- now + p | None -> ());
      e.active <- true;
      push_event t e)
    t.recurring

let heap_property_holds t =
  if not t.structure_ok then false
  else begin
    let ok = ref true in
    for i = 1 to t.size - 1 do
      let parent = (i - 1) / 2 in
      if t.arr.(parent).deadline > t.arr.(i).deadline then ok := false
    done;
    !ok
  end
