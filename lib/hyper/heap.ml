(** Xen heap model.

    Tracks live heap objects by kind (so the recovery mechanisms can walk
    "all the locks stored in the heap") plus the integrity of the
    allocator's free lists. Free-list corruption is the class of damage
    that ReHype's "recreate the new heap" reboot step repairs but
    NiLiHype cannot -- one source of ReHype's small recovery-rate edge. *)

type kind =
  | Lock of Spinlock.t
  | Timer_data
  | Domain_data of int (* domid *)
  | Percpu_area of int (* cpu *)
  | Generic

type obj = {
  oid : int;
  kind : kind;
  mutable live : bool;
  mutable header_ok : bool; (* object header canary *)
  size : int;
}

type t = {
  mutable next_oid : int;
  objs : (int, obj) Hashtbl.t;
  mutable freelist_ok : bool;
  mutable freelist_note : string;
  mutable bytes_live : int;
  mutable allocs : int;
}

let create () =
  {
    next_oid = 0;
    objs = Hashtbl.create 256;
    freelist_ok = true;
    freelist_note = "";
    bytes_live = 0;
    allocs = 0;
  }

(* Forget every object and restart oid numbering, as [create] would.
   [Hashtbl.reset] (not [clear]) restores the initial capacity so the
   reused table also iterates in the same order as a fresh one. *)
let reset t =
  t.next_oid <- 0;
  Hashtbl.reset t.objs;
  t.freelist_ok <- true;
  t.freelist_note <- "";
  t.bytes_live <- 0;
  t.allocs <- 0

let alloc t ?(size = 64) kind =
  if not t.freelist_ok then
    Crash.hang "heap: free-list walk never terminates (%s)" t.freelist_note;
  let obj = { oid = t.next_oid; kind; live = true; header_ok = true; size } in
  t.next_oid <- t.next_oid + 1;
  Hashtbl.replace t.objs obj.oid obj;
  t.bytes_live <- t.bytes_live + size;
  t.allocs <- t.allocs + 1;
  obj

let free t obj =
  if not t.freelist_ok then
    Crash.hang "heap: free-list insert never terminates (%s)" t.freelist_note;
  if not obj.live then Crash.panic "heap: double free of object %d" obj.oid;
  if not obj.header_ok then
    Crash.panic "heap: corrupted object header on free (oid %d)" obj.oid;
  obj.live <- false;
  t.bytes_live <- t.bytes_live - obj.size;
  Hashtbl.remove t.objs obj.oid

let iter_live t f = Hashtbl.iter (fun _ obj -> if obj.live then f obj) t.objs

let live_count t = Hashtbl.length t.objs
let bytes_live t = t.bytes_live

(* Corruption entry points used by the fault injector. *)
let corrupt_freelist t note =
  t.freelist_ok <- false;
  t.freelist_note <- note

let freelist_ok t = t.freelist_ok

(* Release all heap-resident locks (the ReHype mechanism NiLiHype
   reuses). Returns how many were released. *)
let release_locks t =
  let released = ref 0 in
  iter_live t (fun obj ->
      match obj.kind with
      | Lock l when Spinlock.is_held l ->
        Spinlock.force_unlock l;
        incr released
      | Lock _ | Timer_data | Domain_data _ | Percpu_area _ | Generic -> ());
  !released

let any_heap_lock_held t =
  let held = ref false in
  iter_live t (fun obj ->
      match obj.kind with
      | Lock l when Spinlock.is_held l -> held := true
      | Lock _ | Timer_data | Domain_data _ | Percpu_area _ | Generic -> ());
  !held

(* ReHype's reboot-time heap reconstruction: a brand-new allocator is
   built, then live (preserved) objects are re-integrated. This restores
   free-list integrity and drops corrupted-but-dead metadata; it cannot
   repair corruption inside live object payloads (e.g. a smashed domain
   struct). *)
let rebuild_for_reboot t =
  t.freelist_ok <- true;
  t.freelist_note <- "";
  iter_live t (fun obj -> obj.header_ok <- true)

let audit t =
  let ok = ref t.freelist_ok in
  iter_live t (fun obj -> if not obj.header_ok then ok := false);
  !ok
