(** Xen heap model.

    Tracks live heap objects by kind (so the recovery mechanisms can walk
    "all the locks stored in the heap") plus the integrity of the
    allocator's free lists. Free-list corruption is the class of damage
    that ReHype's "recreate the new heap" reboot step repairs but
    NiLiHype cannot -- one source of ReHype's small recovery-rate edge.

    Like the page-frame table ({!Pfn}), the heap carries copy-on-write
    golden state behind {!Hypervisor.snapshot}: each object holds a
    golden copy of its mutable fields plus a dirty bit, and a shared
    dirty list records objects allocated, freed or written since the
    last {!snapshot}. Both {!snapshot} and {!restore} walk only that
    list -- O(changed objects), not O(live heap). Mutators inside this
    module mark objects dirty themselves; external writers (the fault
    injector) must go through {!corrupt_header}. *)

type kind =
  | Lock of Spinlock.t
  | Timer_data
  | Domain_data of int (* domid *)
  | Percpu_area of int (* cpu *)
  | Generic

type obj = {
  oid : int;
  kind : kind;
  mutable live : bool;
  mutable header_ok : bool; (* object header canary *)
  size : int;
  (* Golden image of the mutable fields plus table membership,
     refreshed by [snapshot]. *)
  mutable g_live : bool;
  mutable g_header_ok : bool;
  mutable g_in_table : bool;
  mutable in_table : bool;
  mutable dirty : bool; (* on the heap's dirty list? *)
  tracker : tracker; (* back-pointer: mutators see only the object *)
}

and tracker = { mutable dirty_list : obj list }

type t = {
  mutable next_oid : int;
  objs : (int, obj) Hashtbl.t;
  mutable freelist_ok : bool;
  mutable freelist_note : string;
  mutable bytes_live : int;
  mutable allocs : int;
  tracker : tracker;
  (* Golden scalars, refreshed by [snapshot]. *)
  mutable g_next_oid : int;
  mutable g_freelist_ok : bool;
  mutable g_freelist_note : string;
  mutable g_bytes_live : int;
  mutable g_allocs : int;
}

let create () =
  {
    next_oid = 0;
    objs = Hashtbl.create 256;
    freelist_ok = true;
    freelist_note = "";
    bytes_live = 0;
    allocs = 0;
    tracker = { dirty_list = [] };
    g_next_oid = 0;
    g_freelist_ok = true;
    g_freelist_note = "";
    g_bytes_live = 0;
    g_allocs = 0;
  }

(* Forget every object and restart oid numbering, as [create] would.
   [Hashtbl.reset] (not [clear]) restores the initial capacity so the
   reused table also iterates in the same order as a fresh one. The
   golden state is reset too -- after a reset the heap looks exactly as
   created, snapshot baseline included. *)
let reset t =
  t.next_oid <- 0;
  Hashtbl.reset t.objs;
  t.freelist_ok <- true;
  t.freelist_note <- "";
  t.bytes_live <- 0;
  t.allocs <- 0;
  t.tracker.dirty_list <- [];
  t.g_next_oid <- 0;
  t.g_freelist_ok <- true;
  t.g_freelist_note <- "";
  t.g_bytes_live <- 0;
  t.g_allocs <- 0

(* Mark an object as modified since the last snapshot. *)
let touch obj =
  if not obj.dirty then begin
    obj.dirty <- true;
    obj.tracker.dirty_list <- obj :: obj.tracker.dirty_list
  end

let dirty_count t = List.length t.tracker.dirty_list

(* Refresh the golden image: record the live fields and table membership
   of every object changed since the previous snapshot and drain the
   dirty list. O(changed objects). *)
let snapshot t =
  List.iter
    (fun o ->
      o.g_live <- o.live;
      o.g_header_ok <- o.header_ok;
      o.g_in_table <- o.in_table;
      o.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  t.g_next_oid <- t.next_oid;
  t.g_freelist_ok <- t.freelist_ok;
  t.g_freelist_note <- t.freelist_note;
  t.g_bytes_live <- t.bytes_live;
  t.g_allocs <- t.allocs

(* Rewind every object changed since the last snapshot: re-insert
   objects freed since, drop objects allocated since, rewind field
   values. O(changed objects); repeatable like {!Pfn.restore}. *)
let restore t =
  List.iter
    (fun o ->
      o.live <- o.g_live;
      o.header_ok <- o.g_header_ok;
      if o.g_in_table && not o.in_table then begin
        Hashtbl.replace t.objs o.oid o;
        o.in_table <- true
      end
      else if o.in_table && not o.g_in_table then begin
        Hashtbl.remove t.objs o.oid;
        o.in_table <- false
      end;
      o.dirty <- false)
    t.tracker.dirty_list;
  t.tracker.dirty_list <- [];
  t.next_oid <- t.g_next_oid;
  t.freelist_ok <- t.g_freelist_ok;
  t.freelist_note <- t.g_freelist_note;
  t.bytes_live <- t.g_bytes_live;
  t.allocs <- t.g_allocs

let alloc t ?(size = 64) kind =
  if not t.freelist_ok then
    Crash.hang "heap: free-list walk never terminates (%s)" t.freelist_note;
  let obj =
    {
      oid = t.next_oid;
      kind;
      live = true;
      header_ok = true;
      size;
      g_live = false;
      g_header_ok = true;
      g_in_table = false; (* did not exist at the last snapshot *)
      in_table = true;
      dirty = false;
      tracker = t.tracker;
    }
  in
  touch obj;
  t.next_oid <- t.next_oid + 1;
  Hashtbl.replace t.objs obj.oid obj;
  t.bytes_live <- t.bytes_live + size;
  t.allocs <- t.allocs + 1;
  obj

let free t obj =
  if not t.freelist_ok then
    Crash.hang "heap: free-list insert never terminates (%s)" t.freelist_note;
  if not obj.live then Crash.panic "heap: double free of object %d" obj.oid;
  if not obj.header_ok then
    Crash.panic "heap: corrupted object header on free (oid %d)" obj.oid;
  touch obj;
  obj.live <- false;
  obj.in_table <- false;
  t.bytes_live <- t.bytes_live - obj.size;
  Hashtbl.remove t.objs obj.oid

let iter_live t f = Hashtbl.iter (fun _ obj -> if obj.live then f obj) t.objs

let live_count t = Hashtbl.length t.objs
let bytes_live t = t.bytes_live

(* Corruption entry points used by the fault injector. *)
let corrupt_freelist t note =
  t.freelist_ok <- false;
  t.freelist_note <- note

(* A wild write smashing a live object's header canary. Marks the object
   dirty like any other write, so a snapshot restore rewinds the damage
   and the incremental recovery audit visits it. *)
let corrupt_header obj =
  touch obj;
  obj.header_ok <- false

let freelist_ok t = t.freelist_ok

(* Release all heap-resident locks (the ReHype mechanism NiLiHype
   reuses). Returns how many were released. *)
let release_locks t =
  let released = ref 0 in
  iter_live t (fun obj ->
      match obj.kind with
      | Lock l when Spinlock.is_held l ->
        Spinlock.force_unlock l;
        incr released
      | Lock _ | Timer_data | Domain_data _ | Percpu_area _ | Generic -> ());
  !released

let any_heap_lock_held t =
  let held = ref false in
  iter_live t (fun obj ->
      match obj.kind with
      | Lock l when Spinlock.is_held l -> held := true
      | Lock _ | Timer_data | Domain_data _ | Percpu_area _ | Generic -> ());
  !held

(* ReHype's reboot-time heap reconstruction: a brand-new allocator is
   built, then live (preserved) objects are re-integrated. This restores
   free-list integrity and drops corrupted-but-dead metadata; it cannot
   repair corruption inside live object payloads (e.g. a smashed domain
   struct). *)
let rebuild_for_reboot t =
  t.freelist_ok <- true;
  t.freelist_note <- "";
  iter_live t (fun obj ->
      touch obj;
      obj.header_ok <- true)

let audit t =
  let ok = ref t.freelist_ok in
  iter_live t (fun obj -> if not obj.header_ok then ok := false);
  !ok
