(** Successive-failure endurance campaigns.

    The single-shot injector answers "does one recovery work?"; this
    subsystem answers the paper's endurance claim: because microreset
    abandons in-flight work, each recovery can leak a few resources, and
    those leaks must stay small enough that {e hundreds of successive
    recoveries} of one long-lived instance are viable (the evaluation
    mode of the original ReHype paper, and the whole point of
    Candea-style microrecovery).

    A {e scenario} keeps one hypervisor instance alive through [cycles]
    inject -> detect -> recover rounds interleaved with workload
    activity. At every quiesce point the {!Hyper.Ledger} is captured and
    diffed, attributing leaked frames/heap blocks/locks/timers to the
    recovery of that cycle. A {e campaign} runs many scenarios (one per
    seed) over {!Inject.Pool}, merging per-cycle tallies with a
    commutative merge -- so the survival curve is bit-identical for
    every [jobs] value, exactly like the single-shot campaigns. *)

open Hyper

type config = {
  run_cfg : Inject.Run.config;
      (* fault/setup/mechanism/machine configuration; [seed] is
         overridden per scenario *)
  cycles : int; (* inject->recover rounds per scenario *)
  settle_activities : int;
      (* post-recovery workload before the quiesce snapshot: lets
         retried requests complete so the ledger sees steady state *)
  leak_budget_pages : int option;
      (* per-recovery orphan-page ceiling (the paper's "few pages per
         recovery"); [None] disables budget accounting *)
}

let default_config =
  {
    run_cfg = Inject.Run.default_config;
    cycles = 20;
    settle_activities = 120;
    leak_budget_pages = Some 8;
  }

(* ------------------------------------------------------------------ *)
(* Per-scenario driver                                                 *)
(* ------------------------------------------------------------------ *)

type cycle_class =
  | Cycle_quiet (* fault did not manifest: no detection, no recovery *)
  | Cycle_recovered (* detected, recovered, post-cycle audit clean *)
  | Cycle_latent (* recovered but the audit found residual damage *)
  | Cycle_died (* recovery failed, or the instance crashed again
                  before reaching the next quiesce point *)

let cycle_class_name = function
  | Cycle_quiet -> "quiet"
  | Cycle_recovered -> "recovered"
  | Cycle_latent -> "latent"
  | Cycle_died -> "died"

type cycle = {
  cy_index : int;
  cy_class : cycle_class;
  cy_detection : string option;
  cy_latent_trigger : bool;
      (* the crash arrived before this cycle's fault was applied:
         residue of an earlier cycle, not this cycle's injection *)
  cy_latency : Sim.Time.ns; (* recovery latency; 0 when no recovery ran *)
  cy_leak : Ledger.t; (* ledger diff across the cycle *)
  cy_leaked_pages : int;
  cy_repairs : Recovery.Engine.repairs option;
}

type end_state = Survived | Died_at of int

type scenario = {
  sc_seed : int64;
  sc_end : end_state;
  sc_death_why : string option; (* stable death-cause label *)
  sc_first_latent : int option;
  sc_cycles : cycle list; (* chronological; shorter than [cycles] on death *)
  sc_postmortem : (Obs.Signature.t * Obs.Postmortem.t) option;
      (* death forensics, captured live at the [Dead] raise when the
         campaign runs with postmortems *)
}

(* Scenario-level instruments, registered eagerly (all of them, on
   every recorder that drives scenarios) so campaign metric snapshots
   are structurally identical regardless of which outcomes occur. *)
type instruments = {
  i_cycles : Obs.Metrics.counter;
  i_quiet : Obs.Metrics.counter;
  i_recoveries : Obs.Metrics.counter;
  i_clean : Obs.Metrics.counter;
  i_latent : Obs.Metrics.counter;
  i_deaths : Obs.Metrics.counter;
  i_leaked_pages : Obs.Metrics.counter;
  i_leaks : (string * Obs.Metrics.counter) list; (* per ledger resource *)
  i_last_cycle : Obs.Metrics.gauge;
}

let instruments (obs : Obs.Recorder.t) =
  let m = obs.Obs.Recorder.metrics in
  {
    i_cycles = Obs.Metrics.counter m "endure.cycles";
    i_quiet = Obs.Metrics.counter m "endure.cycles_quiet";
    i_recoveries = Obs.Metrics.counter m "endure.recoveries";
    i_clean = Obs.Metrics.counter m "endure.cycles_clean";
    i_latent = Obs.Metrics.counter m "endure.cycles_latent";
    i_deaths = Obs.Metrics.counter m "endure.deaths";
    i_leaked_pages = Obs.Metrics.counter m "endure.leaked_pages";
    i_leaks =
      List.map
        (fun r -> (r, Obs.Metrics.counter m ("endure.leak." ^ r)))
        Ledger.leak_resource_names;
    i_last_cycle = Obs.Metrics.gauge m "endure.last_cycle";
  }

(* Resume the guests after a recovery: re-issue retried interactions and
   surface lost work, as the single-shot classifier does -- but without
   the single-shot new-VM probe, which would create and leak domains the
   ledger would then (correctly, uselessly) report every cycle. *)
let resume_guests (st : Inject.Run.state) =
  let hv = st.Inject.Run.hv in
  let mark_failed domid =
    match Hypervisor.domain hv domid with
    | Some d -> d.Domain.guest_failed <- true
    | None -> ()
  in
  List.iter
    (fun (v : Domain.vcpu) ->
      if v.Domain.lost_work then begin
        mark_failed v.Domain.domid;
        v.Domain.lost_work <- false
      end;
      if v.Domain.retry_pending then
        Hypervisor.retry_hypercall hv st.Inject.Run.rng v;
      if v.Domain.syscall_retry_pending then Hypervisor.retry_syscall hv v;
      if not v.Domain.fsgs_valid then mark_failed v.Domain.domid)
    (Hypervisor.all_vcpus hv)

(* [why] is a stable low-cardinality label ("recovery_failed",
   "privvm_failed", "post_recovery_crash") used for death-cause tallies;
   [detection] keeps the full crash description for the cycle record. *)
exception Dead of { at : int; why : string; detection : string option }

(* One inject -> detect -> recover -> settle round. Returns the cycle
   record; raises [Dead] when the instance does not reach the next
   quiesce point. [before] is the quiesce-point ledger entering the
   cycle. *)
let run_cycle (st : Inject.Run.state) cfg ins ~mechanism ~enh ~index ~before =
  let hv = st.Inject.Run.hv in
  let obs = hv.Hypervisor.obs in
  let run_cfg = st.Inject.Run.cfg in
  st.Inject.Run.fault_applied <- false;
  (* Per-cycle signature axis: the dying cycle's own fault target. *)
  st.Inject.Run.first_target <- None;
  Inject.Run.arm_fault st;
  let detection = ref None in
  (try
     for _ = 1 to run_cfg.Inject.Run.post_activities do
       Inject.Run.run_one_activity st
     done
   with Crash.Hypervisor_crash d -> detection := Some d);
  let finish cls ~detection ~latent_trigger ~latency ~repairs =
    let after = Ledger.capture hv in
    let leak = Ledger.diff ~before ~after in
    let leaked_pages = Ledger.leaked_pages leak in
    (* Per-cycle ledger diffs on stderr: a development aid for chasing a
       new leak source without modifying the driver. *)
    if Sys.getenv_opt "NLH_ENDURE_DEBUG" <> None then
      Format.eprintf "cycle %d (%s): %a@." index (cycle_class_name cls)
        Ledger.pp_diff leak;
    Obs.Metrics.incr ins.i_cycles;
    Obs.Metrics.set ins.i_last_cycle index;
    Obs.Metrics.incr ~by:leaked_pages ins.i_leaked_pages;
    List.iter
      (fun (r, c) ->
        match List.assoc_opt r (Ledger.leak_fields leak) with
        | Some v when v > 0 -> Obs.Metrics.incr ~by:v c
        | Some _ | None -> ())
      ins.i_leaks;
    (match cls with
    | Cycle_quiet -> Obs.Metrics.incr ins.i_quiet
    | Cycle_recovered ->
      Obs.Metrics.incr ins.i_recoveries;
      Obs.Metrics.incr ins.i_clean
    | Cycle_latent ->
      Obs.Metrics.incr ins.i_recoveries;
      Obs.Metrics.incr ins.i_latent
    | Cycle_died -> Obs.Metrics.incr ins.i_deaths);
    if Obs.Recorder.enabled obs Obs.Event.Info then begin
      let now = Sim.Clock.now hv.Hypervisor.clock in
      Obs.Recorder.event obs ~time:now Obs.Event.Info
        (Obs.Event.Endure_cycle
           {
             index;
             survived = cls <> Cycle_died;
             clean = (cls = Cycle_recovered || cls = Cycle_quiet);
           });
      List.iter
        (fun (resource, delta) ->
          Obs.Recorder.event obs ~time:now Obs.Event.Warn
            (Obs.Event.Leak_delta { resource; delta }))
        (Ledger.leak_fields leak)
    end;
    ( {
        cy_index = index;
        cy_class = cls;
        cy_detection = detection;
        cy_latent_trigger = latent_trigger;
        cy_latency = latency;
        cy_leak = leak;
        cy_leaked_pages = leaked_pages;
        cy_repairs = repairs;
      },
      after )
  in
  match !detection with
  | None ->
    (* Quiet cycle: the sampled manifestation did not crash the
       hypervisor within this cycle's activity budget (frequent for
       register/code faults, impossible for failstop). Any silent
       corruption it left stays for later cycles to trip over. *)
    finish Cycle_quiet ~detection:None ~latent_trigger:false ~latency:0
      ~repairs:None
  | Some det ->
    let latent_trigger = not st.Inject.Run.fault_applied in
    hv.Hypervisor.step_hook <- None;
    Obs.Metrics.incr obs.Obs.Recorder.detections;
    Sim.Clock.advance_by hv.Hypervisor.clock
      (Crash.detection_latency ~config:hv.Hypervisor.config det);
    let faulted_cpu = st.Inject.Run.last_cpu in
    ignore (Inject.Run.abandon_concurrent_work st ~faulted_cpu);
    Inject.Run.enter_detection_context st;
    let recovery =
      try Ok (Recovery.Engine.recover mechanism hv ~enh ~detected_on:faulted_cpu)
      with Crash.Hypervisor_crash d -> Error (Crash.describe d)
    in
    (match recovery with
    | Error why ->
      Obs.Metrics.incr ins.i_deaths;
      ignore why;
      raise
        (Dead
           {
             at = index;
             why = "recovery_failed";
             detection = Some (Crash.describe det);
           })
    | Ok recovery -> (
      try
        resume_guests st;
        Inject.Run.install_cpu_tracker st;
        for _ = 1 to cfg.settle_activities do
          Inject.Run.run_one_activity st
        done;
        if (Hypervisor.privvm hv).Domain.guest_failed then
          raise
            (Dead
               {
                 at = index;
                 why = "privvm_failed";
                 detection = Some (Crash.describe det);
               });
        let report = Hypervisor.audit hv in
        let clean = Hypervisor.audit_clean report in
        if not clean then Hypervisor.record_audit_violations hv report;
        finish
          (if clean then Cycle_recovered else Cycle_latent)
          ~detection:(Some (Crash.describe det))
          ~latent_trigger
          ~latency:recovery.Recovery.Engine.latency
          ~repairs:(Some recovery.Recovery.Engine.repairs)
      with Crash.Hypervisor_crash d ->
        (* Crashed again between recovery and the next quiesce point:
           the instance is gone (a second recovery of an already-broken
           instance is the next cycle's business only if we reach it --
           we did not). *)
        Obs.Metrics.incr ins.i_deaths;
        ignore d;
        raise
          (Dead
             {
               at = index;
               why = "post_recovery_crash";
               detection = Some (Crash.describe det);
             })))

(* Drive one full scenario over an already-rewound machine state. *)
let drive ?(postmortems = false) (st : Inject.Run.state) (cfg : config) :
    scenario =
  let mechanism, enh =
    match st.Inject.Run.cfg.Inject.Run.mech with
    | Inject.Run.Mech (m, e) -> (m, e)
    | Inject.Run.No_recovery ->
      invalid_arg "Endure.drive: endurance needs a recovery mechanism"
  in
  let hv = st.Inject.Run.hv in
  let ins = instruments hv.Hypervisor.obs in
  Inject.Run.install_cpu_tracker st;
  for _ = 1 to st.Inject.Run.cfg.Inject.Run.warmup_activities do
    Inject.Run.run_one_activity st
  done;
  let cycles = ref [] in
  let first_latent = ref None in
  let death = ref None in
  let death_why = ref None in
  let postmortem = ref None in
  let before = ref (Ledger.capture hv) in
  (try
     for index = 0 to cfg.cycles - 1 do
       let cy, after =
         run_cycle st cfg ins ~mechanism ~enh ~index ~before:!before
       in
       before := after;
       cycles := cy :: !cycles;
       if cy.cy_class = Cycle_latent && !first_latent = None then
         first_latent := Some index
     done
   with Dead { at; why; detection } ->
     death := Some at;
     death_why := Some why;
     (* Live postmortem capture, right at the point of death: the event
        ring still holds the scenario's trace, the flight rings the
        pre-crash hypercall/journal tails, and [!before] is the quiesce
        ledger entering the dying cycle. The death causes are already a
        closed vocabulary, so they are the signature's cause axis
        directly. *)
     if postmortems then begin
       let run_cfg = st.Inject.Run.cfg in
       let sg =
         Obs.Signature.make
           ~fault:(Inject.Fault.name run_cfg.Inject.Run.fault)
           ~target:
             (match st.Inject.Run.first_target with
             | Some t -> t
             | None -> "none")
           ~cause:why
           ~branch:(Recovery.Engine.mechanism_name mechanism ^ "/died")
       in
       let seed = run_cfg.Inject.Run.seed in
       let repro =
         Printf.sprintf
           "nlh_endurance --mech %s --fault %s --cycles %d --scenarios 1 \
            --seed %Ld --jobs 1"
           (Inject.Postmortem.mech_cli run_cfg.Inject.Run.mech)
           (Inject.Postmortem.fault_cli run_cfg.Inject.Run.fault)
           cfg.cycles seed
       in
       let bundle =
         Obs.Postmortem.make ~signature:sg ~outcome:"died" ~seed ~repro
           ~config:
             (("cycles", string_of_int cfg.cycles)
             :: ("died_at_cycle", string_of_int at)
             :: Inject.Postmortem.config_fields run_cfg ~fanout:1)
           ~events:(Obs.Recorder.events hv.Hypervisor.obs)
           ~phases:[]
           ~hypercalls:(Hypervisor.hypercall_tail hv)
           ~journal_tail:(Hypervisor.journal_tail hv)
           ~ledger_diff:
             (Ledger.fields
                (Ledger.diff ~before:!before ~after:(Ledger.capture hv)))
       in
       postmortem := Some (sg, bundle)
     end;
     cycles :=
       {
         cy_index = at;
         cy_class = Cycle_died;
         cy_detection = detection;
         cy_latent_trigger = false;
         cy_latency = 0;
         cy_leak = Ledger.diff ~before:!before ~after:!before;
         cy_leaked_pages = 0;
         cy_repairs = None;
       }
       :: List.filter (fun c -> c.cy_index < at) !cycles);
  {
    sc_seed = st.Inject.Run.cfg.Inject.Run.seed;
    sc_end = (match !death with None -> Survived | Some k -> Died_at k);
    sc_death_why = !death_why;
    sc_first_latent = !first_latent;
    sc_cycles = List.rev !cycles;
    sc_postmortem = !postmortem;
  }

(* Run one scenario on a reusable worker: rewind the machine in place
   (exactly as a campaign run would), then drive the cycles. *)
let scenario_on_worker ?postmortems (w : Inject.Run.worker) (cfg : config)
    ~seed =
  let run_cfg = { cfg.run_cfg with Inject.Run.seed } in
  Inject.Run.rewind w run_cfg;
  (* New flight-ring epoch: scope this scenario's postmortem readback to
     its own entries (the rings survive the rewind by design). *)
  Hypervisor.new_flight_epoch w.Inject.Run.w_hv;
  drive ?postmortems
    (Inject.Run.make_state run_cfg w.Inject.Run.w_rng w.Inject.Run.w_hv)
    cfg

(* One-shot convenience: boot a fresh machine and drive one scenario.
   [recorder] receives the cycle/leak events, recovery spans and
   endurance metrics. *)
let run_scenario ?recorder ?postmortems (cfg : config) ~seed =
  let run_cfg = { cfg.run_cfg with Inject.Run.seed } in
  drive ?postmortems (Inject.Run.boot_state ?recorder run_cfg) cfg

(* ------------------------------------------------------------------ *)
(* Campaign aggregation                                                *)
(* ------------------------------------------------------------------ *)

(* Per-cycle-index tallies, summed over scenarios. Every field is a sum,
   so index-wise array merge is commutative and associative. *)
type cycle_stats = {
  mutable cs_entered : int; (* scenarios alive entering this cycle *)
  mutable cs_quiet : int;
  mutable cs_recovered : int;
  mutable cs_latent : int;
  mutable cs_died : int;
  mutable cs_leaked_pages : int;
  mutable cs_budget_violations : int;
  mutable cs_latency_sum : Sim.Time.ns;
  mutable cs_latency_samples : int;
}

let make_cycle_stats () =
  {
    cs_entered = 0;
    cs_quiet = 0;
    cs_recovered = 0;
    cs_latent = 0;
    cs_died = 0;
    cs_leaked_pages = 0;
    cs_budget_violations = 0;
    cs_latency_sum = 0;
    cs_latency_samples = 0;
  }

type totals = {
  mutable scenarios : int;
  mutable survived : int;
  mutable deaths : int;
  mutable latent_scenarios : int; (* survived, but some cycle left residue *)
  mutable max_leaked_pages : int; (* worst single recovery *)
  mutable budget_violations : int;
  per_cycle : cycle_stats array; (* length = configured cycle count *)
  leaks : Sim.Stats.Counts.t; (* per-resource leak totals (positive deltas) *)
  death_notes : Sim.Stats.Counts.t;
  mutable metrics : Obs.Metrics.snapshot;
  triage : Obs.Postmortem.Triage.table;
      (* death signatures with exemplar bundles; populated only when the
         campaign runs with postmortems *)
}

let make_totals ?triage_seed_cap ~cycles () =
  {
    scenarios = 0;
    survived = 0;
    deaths = 0;
    latent_scenarios = 0;
    max_leaked_pages = 0;
    budget_violations = 0;
    per_cycle = Array.init cycles (fun _ -> make_cycle_stats ());
    leaks = Sim.Stats.Counts.create ();
    death_notes = Sim.Stats.Counts.create ();
    metrics = Obs.Metrics.empty_snapshot;
    triage = Obs.Postmortem.Triage.create ?seed_cap:triage_seed_cap ();
  }

let add_scenario t (cfg : config) (sc : scenario) =
  t.scenarios <- t.scenarios + 1;
  (match sc.sc_end with
  | Survived ->
    t.survived <- t.survived + 1;
    if sc.sc_first_latent <> None then
      t.latent_scenarios <- t.latent_scenarios + 1
  | Died_at _ ->
    t.deaths <- t.deaths + 1;
    (match sc.sc_death_why with
    | Some why -> Sim.Stats.Counts.add t.death_notes why
    | None -> ());
    (match sc.sc_postmortem with
    | Some (sg, bundle) ->
      Obs.Postmortem.Triage.record ~bundle t.triage sg ~seed:sc.sc_seed
    | None -> ()));
  List.iter
    (fun cy ->
      let cs = t.per_cycle.(cy.cy_index) in
      cs.cs_entered <- cs.cs_entered + 1;
      (match cy.cy_class with
      | Cycle_quiet -> cs.cs_quiet <- cs.cs_quiet + 1
      | Cycle_recovered -> cs.cs_recovered <- cs.cs_recovered + 1
      | Cycle_latent -> cs.cs_latent <- cs.cs_latent + 1
      | Cycle_died -> cs.cs_died <- cs.cs_died + 1);
      cs.cs_leaked_pages <- cs.cs_leaked_pages + cy.cy_leaked_pages;
      if cy.cy_latency > 0 then begin
        cs.cs_latency_sum <- cs.cs_latency_sum + cy.cy_latency;
        cs.cs_latency_samples <- cs.cs_latency_samples + 1
      end;
      if cy.cy_leaked_pages > t.max_leaked_pages then
        t.max_leaked_pages <- cy.cy_leaked_pages;
      (match cfg.leak_budget_pages with
      | Some budget when cy.cy_leaked_pages > budget ->
        cs.cs_budget_violations <- cs.cs_budget_violations + 1;
        t.budget_violations <- t.budget_violations + 1
      | Some _ | None -> ());
      List.iter
        (fun (r, v) -> if v > 0 then Sim.Stats.Counts.add ~by:v t.leaks r)
        (Ledger.leak_fields cy.cy_leak))
    sc.sc_cycles

(* Commutative, associative fold of [src] into [dst] -- the property the
   parallel campaign relies on for jobs-independence. *)
let merge_into dst src =
  dst.scenarios <- dst.scenarios + src.scenarios;
  dst.survived <- dst.survived + src.survived;
  dst.deaths <- dst.deaths + src.deaths;
  dst.latent_scenarios <- dst.latent_scenarios + src.latent_scenarios;
  dst.max_leaked_pages <- max dst.max_leaked_pages src.max_leaked_pages;
  dst.budget_violations <- dst.budget_violations + src.budget_violations;
  Array.iteri
    (fun i (s : cycle_stats) ->
      let d = dst.per_cycle.(i) in
      d.cs_entered <- d.cs_entered + s.cs_entered;
      d.cs_quiet <- d.cs_quiet + s.cs_quiet;
      d.cs_recovered <- d.cs_recovered + s.cs_recovered;
      d.cs_latent <- d.cs_latent + s.cs_latent;
      d.cs_died <- d.cs_died + s.cs_died;
      d.cs_leaked_pages <- d.cs_leaked_pages + s.cs_leaked_pages;
      d.cs_budget_violations <- d.cs_budget_violations + s.cs_budget_violations;
      d.cs_latency_sum <- d.cs_latency_sum + s.cs_latency_sum;
      d.cs_latency_samples <- d.cs_latency_samples + s.cs_latency_samples)
    src.per_cycle;
  Sim.Stats.Counts.merge_into ~into:dst.leaks src.leaks;
  Sim.Stats.Counts.merge_into ~into:dst.death_notes src.death_notes;
  dst.metrics <- Obs.Metrics.merge_snapshots dst.metrics src.metrics;
  Obs.Postmortem.Triage.merge_into ~into:dst.triage src.triage

(* Canonical immutable view for determinism comparisons: plain ints and
   key-sorted lists only. *)
type snapshot = {
  s_scenarios : int;
  s_survived : int;
  s_deaths : int;
  s_latent_scenarios : int;
  s_max_leaked_pages : int;
  s_budget_violations : int;
  s_per_cycle : (int * int * int * int * int * int * int) list;
      (* (entered, quiet, recovered, latent, died, leaked_pages,
         latency_sum) per cycle index *)
  s_leaks : (string * int) list;
  s_death_notes : (string * int) list;
  s_metrics : Obs.Metrics.snapshot;
  s_triage : (string * Obs.Postmortem.Triage.entry) list;
}

let snapshot t =
  {
    s_scenarios = t.scenarios;
    s_survived = t.survived;
    s_deaths = t.deaths;
    s_latent_scenarios = t.latent_scenarios;
    s_max_leaked_pages = t.max_leaked_pages;
    s_budget_violations = t.budget_violations;
    s_per_cycle =
      Array.to_list
        (Array.map
           (fun c ->
             ( c.cs_entered,
               c.cs_quiet,
               c.cs_recovered,
               c.cs_latent,
               c.cs_died,
               c.cs_leaked_pages,
               c.cs_latency_sum ))
           t.per_cycle);
    s_leaks = Sim.Stats.Counts.sorted t.leaks;
    s_death_notes = Sim.Stats.Counts.sorted t.death_notes;
    s_metrics = t.metrics;
    s_triage = Obs.Postmortem.Triage.snapshot t.triage;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "scenarios=%d survived=%d deaths=%d latent=%d max_leak=%d budget_viol=%d \
     curve=[%a] leaks=[%a]"
    s.s_scenarios s.s_survived s.s_deaths s.s_latent_scenarios
    s.s_max_leaked_pages s.s_budget_violations
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (e, q, r, l, d, lp, _) ->
         Format.fprintf fmt "%d/%d/%d/%d/%d/%d" e q r l d lp))
    s.s_per_cycle
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s x%d" k v))
    s.s_leaks

type result = {
  config_label : string;
  cfg : config;
  totals : totals;
  jobs : int; (* worker domains actually used *)
  wall_seconds : float;
  minor_words : float;
      (* host minor-heap words allocated across all workers (per-domain
         [Gc.minor_words] deltas, summed). Host-side accounting only, as
         in {!Inject.Campaign}: NOT part of [totals], which stay
         bit-identical across hosts and [jobs] values. *)
}

let minor_words_per_scenario r =
  if r.totals.scenarios > 0 then
    r.minor_words /. float_of_int r.totals.scenarios
  else 0.0

(* Survival curve point: fraction of scenarios still alive *after* each
   cycle index, plus that cycle's audit-clean rate among recoveries. *)
let survival_curve r =
  let n = max 1 r.totals.scenarios in
  let alive = ref r.totals.scenarios in
  Array.mapi
    (fun i (c : cycle_stats) ->
      alive := !alive - c.cs_died;
      let recoveries = c.cs_recovered + c.cs_latent in
      ( i,
        float_of_int !alive /. float_of_int n,
        (if recoveries = 0 then 1.0
         else float_of_int c.cs_recovered /. float_of_int recoveries) ))
    r.totals.per_cycle

let mean_leak_pages_per_recovery r =
  let recoveries, pages =
    Array.fold_left
      (fun (n, p) c -> (n + c.cs_recovered + c.cs_latent, p + c.cs_leaked_pages))
      (0, 0) r.totals.per_cycle
  in
  Sim.Stats.mean_of_sum ~sum:pages ~samples:recoveries

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume (same nlh-checkpoint/1 surface as campaigns)    *)
(* ------------------------------------------------------------------ *)

(* Config/seed identity for resume validation; see
   {!Inject.Campaign.fingerprint} for the contract. *)
let fingerprint ~base_seed ~scenarios (cfg : config) =
  Printf.sprintf
    "endurance;mech=%s;fault=%s;setup=%s;cycles=%d;settle=%d;budget=%s;\
     base_seed=%Ld;n=%d"
    (Inject.Postmortem.mech_cli cfg.run_cfg.Inject.Run.mech)
    (Inject.Postmortem.fault_cli cfg.run_cfg.Inject.Run.fault)
    (Inject.Postmortem.setup_cli cfg.run_cfg.Inject.Run.setup)
    cfg.cycles cfg.settle_activities
    (match cfg.leak_budget_pages with
    | Some b -> string_of_int b
    | None -> "none")
    base_seed scenarios

(* Canonical payload: every [totals] field, with [per_cycle] as 9-int
   arrays. Note this is richer than {!snapshot}'s 7-tuple view -- the
   checkpoint must round-trip the full [cycle_stats], budget violations
   and latency samples included, or a resumed run would drift. *)
let payload_of_totals (t : totals) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"totals\":{\"scenarios\":%d,\"survived\":%d,\"deaths\":%d,\
        \"latent_scenarios\":%d,\"max_leaked_pages\":%d,\
        \"budget_violations\":%d,\"per_cycle\":["
       t.scenarios t.survived t.deaths t.latent_scenarios t.max_leaked_pages
       t.budget_violations);
  Array.iteri
    (fun i (c : cycle_stats) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "[%d,%d,%d,%d,%d,%d,%d,%d,%d]" c.cs_entered c.cs_quiet
           c.cs_recovered c.cs_latent c.cs_died c.cs_leaked_pages
           c.cs_budget_violations c.cs_latency_sum c.cs_latency_samples))
    t.per_cycle;
  Buffer.add_string buf "],\"leaks\":";
  Obs.Export.add_int_assoc buf (Sim.Stats.Counts.sorted t.leaks);
  Buffer.add_string buf ",\"death_notes\":";
  Obs.Export.add_int_assoc buf (Sim.Stats.Counts.sorted t.death_notes);
  Buffer.add_string buf ",\"metrics\":";
  Obs.Checkpoint.add_metrics buf t.metrics;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let totals_of_payload ?triage_seed_cap ~cycles (payload : Obs.Json.t) =
  let ( let* ) = Result.bind in
  let int k v =
    match Obs.Json.member k v with
    | Some x -> (
      match Obs.Json.to_number x with
      | Some f when Float.is_integer f -> Ok (int_of_float f)
      | Some _ | None ->
        Error (Printf.sprintf "payload: %S is not an integer" k))
    | None -> Error (Printf.sprintf "payload: missing %S" k)
  in
  let int_assoc k v =
    match Obs.Json.member k v with
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (name, x) ->
          let* acc = acc in
          match Obs.Json.to_number x with
          | Some f when Float.is_integer f -> Ok ((name, int_of_float f) :: acc)
          | Some _ | None ->
            Error (Printf.sprintf "payload: %S.%S is not an integer" k name))
        (Ok []) fields
    | _ -> Error (Printf.sprintf "payload: %S is not an object" k)
  in
  match Obs.Json.member "totals" payload with
  | None -> Error "payload: missing \"totals\""
  | Some tv ->
    let* scenarios = int "scenarios" tv in
    let* survived = int "survived" tv in
    let* deaths = int "deaths" tv in
    let* latent_scenarios = int "latent_scenarios" tv in
    let* max_leaked_pages = int "max_leaked_pages" tv in
    let* budget_violations = int "budget_violations" tv in
    let* per_cycle =
      match Obs.Json.member "per_cycle" tv with
      | Some v -> (
        match Obs.Json.to_list v with
        | Some l ->
          if List.length l <> cycles then
            Error
              (Printf.sprintf "payload: per_cycle has %d cycles, expected %d"
                 (List.length l) cycles)
          else
            List.fold_left
              (fun acc cv ->
                let* acc = acc in
                match Obs.Json.to_list cv with
                | Some fields ->
                  let* ints =
                    List.fold_left
                      (fun acc x ->
                        let* acc = acc in
                        match Obs.Json.to_number x with
                        | Some f when Float.is_integer f ->
                          Ok (int_of_float f :: acc)
                        | Some _ | None ->
                          Error "payload: non-integer per_cycle field")
                      (Ok []) fields
                  in
                  (match List.rev ints with
                  | [ en; qu; re; la; di; lp; bv; ls; lsam ] ->
                    Ok
                      ({
                         cs_entered = en;
                         cs_quiet = qu;
                         cs_recovered = re;
                         cs_latent = la;
                         cs_died = di;
                         cs_leaked_pages = lp;
                         cs_budget_violations = bv;
                         cs_latency_sum = ls;
                         cs_latency_samples = lsam;
                       }
                      :: acc)
                  | _ -> Error "payload: per_cycle entry is not 9 ints")
                | None -> Error "payload: per_cycle entry is not an array")
              (Ok []) l
            |> Result.map List.rev
        | None -> Error "payload: \"per_cycle\" is not an array")
      | None -> Error "payload: missing \"per_cycle\""
    in
    let* leaks = int_assoc "leaks" tv in
    let* death_notes = int_assoc "death_notes" tv in
    let* metrics =
      match Obs.Json.member "metrics" tv with
      | Some m -> Obs.Checkpoint.metrics_of_json m
      | None -> Error "payload: missing \"metrics\""
    in
    if scenarios <> survived + deaths then
      Error "payload: scenarios <> survived + deaths"
    else begin
      let t = make_totals ?triage_seed_cap ~cycles () in
      t.scenarios <- scenarios;
      t.survived <- survived;
      t.deaths <- deaths;
      t.latent_scenarios <- latent_scenarios;
      t.max_leaked_pages <- max_leaked_pages;
      t.budget_violations <- budget_violations;
      List.iteri (fun i c -> t.per_cycle.(i) <- c) per_cycle;
      List.iter (fun (k, v) -> Sim.Stats.Counts.add ~by:v t.leaks k) leaks;
      List.iter
        (fun (k, v) -> Sim.Stats.Counts.add ~by:v t.death_notes k)
        death_notes;
      t.metrics <- metrics;
      Ok t
    end

(* Run [scenarios] endurance scenarios of [cfg], varying only the seed,
   optionally across OCaml 5 domains. Mirrors {!Inject.Campaign.run}:
   one long-lived worker machine per domain, reset in place between
   scenarios; totals merged commutatively, hence jobs-independent.
   [checkpoint] switches to the streaming chunked engine (see
   {!Inject.Campaign.run} and {!Inject.Pool.map_chunks}) writing and
   resuming nlh-checkpoint/1 files with kind "endurance". *)
let run ?(label = "") ?(base_seed = 77_000L) ?(jobs = 1) ?chunk
    ?(oversubscribe = false) ?(postmortems = false)
    ?(checkpoint : Inject.Campaign.checkpoint option) ?triage_seed_cap
    ~scenarios (cfg : config) =
  (match checkpoint with
  | Some _ when postmortems ->
    invalid_arg "Endure.run: checkpointing does not support postmortems"
  | _ -> ());
  let fp = fingerprint ~base_seed ~scenarios cfg in
  let resumed =
    match checkpoint with
    | Some ck when ck.Inject.Campaign.ck_resume -> (
      match Obs.Checkpoint.read ck.Inject.Campaign.ck_path with
      | Error msg ->
        invalid_arg
          (Printf.sprintf "Endure.run: cannot resume from %s: %s"
             ck.Inject.Campaign.ck_path msg)
      | Ok (h, payload) ->
        if h.Obs.Checkpoint.kind <> "endurance" then
          invalid_arg
            (Printf.sprintf
               "Endure.run: checkpoint kind %S is not an endurance soak"
               h.Obs.Checkpoint.kind);
        if h.Obs.Checkpoint.fingerprint <> fp then
          invalid_arg
            (Printf.sprintf
               "Endure.run: checkpoint fingerprint mismatch\n  file: %s\n  \
                run:  %s"
               h.Obs.Checkpoint.fingerprint fp);
        (match totals_of_payload ?triage_seed_cap ~cycles:cfg.cycles payload with
        | Error msg ->
          invalid_arg
            (Printf.sprintf "Endure.run: cannot resume from %s: %s"
               ck.Inject.Campaign.ck_path msg)
        | Ok merged -> Some (h, merged)))
    | _ -> None
  in
  let t0 = Unix.gettimeofday () in
  let worker_of worker i =
    match !worker with
    | Some w -> w
    | None ->
      let seed = Int64.add base_seed (Int64.of_int i) in
      let recorder =
        (* With postmortems on, the ring must hold a whole scenario's
           Warn+ events for the death bundle's timeline. *)
        if postmortems then
          Obs.Recorder.create ~capacity:1024 ~min_level:Obs.Event.Warn ()
        else Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error ()
      in
      (* Register the endurance instruments before the first scenario
         so every worker's registry is structurally identical. *)
      ignore (instruments recorder);
      let w =
        Inject.Run.prepare ~recorder { cfg.run_cfg with Inject.Run.seed }
      in
      worker := Some w;
      w
  in
  let scenario_into totals worker i =
    let seed = Int64.add base_seed (Int64.of_int i) in
    let w = worker_of worker i in
    add_scenario totals cfg (scenario_on_worker ~postmortems w cfg ~seed);
    totals.metrics <-
      Obs.Metrics.merge_snapshots totals.metrics
        (Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w))
  in
  match checkpoint with
  | None ->
    let init _ =
      ( make_totals ?triage_seed_cap ~cycles:cfg.cycles (),
        ref None,
        Gc.minor_words (),
        ref 0.0 )
    in
    let body (totals, worker, _, _) i = scenario_into totals worker i in
    let totals, _, _, minor_words =
      Inject.Pool.map_reduce ~jobs ?chunk ~oversubscribe ~n:scenarios ~init
        ~body
        ~finish:(fun (_, _, minor_start, minor_words) ->
          (* [Gc.minor_words] is per-domain in OCaml 5: take the delta in
             the worker's own domain. *)
          minor_words := Gc.minor_words () -. minor_start)
        ~merge:(fun (a, wa, sa, mwa) (b, _, _, mwb) ->
          merge_into a b;
          mwa := !mwa +. !mwb;
          (a, wa, sa, mwa))
        ()
    in
    let used_jobs =
      let j = max 1 (min jobs (max 1 scenarios)) in
      if oversubscribe then j else min j (Inject.Pool.default_jobs ())
    in
    {
      config_label = label;
      cfg;
      totals;
      jobs = used_jobs;
      wall_seconds = Unix.gettimeofday () -. t0;
      minor_words = !minor_words;
    }
  | Some ck ->
    (* Streaming, checkpointed endurance soak; same engine shape as the
       campaign path -- fixed chunks, coordinator-side merge, atomic
       nlh-checkpoint/1 rewrites. *)
    let chunk_size, merged, done_chunks =
      match resumed with
      | Some (h, merged) ->
        (h.Obs.Checkpoint.chunk, merged, h.Obs.Checkpoint.done_chunks)
      | None ->
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> Inject.Pool.default_chunk ~n:scenarios ~jobs:(max 1 jobs)
        in
        let n_chunks =
          if scenarios <= 0 then 0 else (scenarios + c - 1) / c
        in
        ( c,
          make_totals ?triage_seed_cap ~cycles:cfg.cycles (),
          Array.make n_chunks false )
    in
    let n_chunks = Array.length done_chunks in
    (match resumed with
    | Some (h, _) ->
      if
        h.Obs.Checkpoint.n_chunks
        <> (if scenarios <= 0 then 0
            else (scenarios + chunk_size - 1) / chunk_size)
      then
        invalid_arg
          (Printf.sprintf
             "Endure.run: checkpoint has %d chunks but n=%d chunk=%d implies \
              %d"
             h.Obs.Checkpoint.n_chunks scenarios chunk_size
             ((scenarios + chunk_size - 1) / chunk_size))
    | None -> ());
    let published = ref 0 in
    let minor_total = ref 0.0 in
    let write_ck () =
      Obs.Checkpoint.write ~path:ck.Inject.Campaign.ck_path
        {
          Obs.Checkpoint.kind = "endurance";
          fingerprint = fp;
          chunk = chunk_size;
          n_chunks;
          done_chunks;
        }
        ~payload:(payload_of_totals merged)
    in
    let publish c t =
      merge_into merged t;
      done_chunks.(c) <- true;
      incr published;
      if
        ck.Inject.Campaign.ck_every > 0
        && !published mod ck.Inject.Campaign.ck_every = 0
      then write_ck ()
    in
    let should_stop () =
      match ck.Inject.Campaign.ck_stop_after with
      | Some m -> !published >= m
      | None -> false
    in
    Inject.Pool.map_chunks ~jobs ~oversubscribe ~should_stop ~n_chunks
      ~skip:(fun c -> done_chunks.(c))
      ~init:(fun _ -> (ref None, Gc.minor_words (), ref 0.0))
      ~body:(fun (worker, _, _) c ->
        let totals = make_totals ?triage_seed_cap ~cycles:cfg.cycles () in
        let lo = c * chunk_size in
        let hi = min scenarios (lo + chunk_size) in
        for i = lo to hi - 1 do
          scenario_into totals worker i
        done;
        totals)
      ~publish
      ~finish:(fun (_, minor_start, minor_words) ->
        minor_words := Gc.minor_words () -. minor_start;
        minor_total := !minor_total +. !minor_words)
      ();
    write_ck ();
    let used_jobs =
      let j = max 1 (min jobs (max 1 n_chunks)) in
      if oversubscribe then j else min j (Inject.Pool.default_jobs ())
    in
    {
      config_label = label;
      cfg;
      totals = merged;
      jobs = used_jobs;
      wall_seconds = Unix.gettimeofday () -. t0;
      minor_words = !minor_total;
    }

let pp fmt r =
  let t = r.totals in
  Format.fprintf fmt
    "%s: scenarios=%d cycles=%d | survived %d, died %d, latent %d | \
     leak max %d pages/recovery%a, budget violations %d@."
    r.config_label t.scenarios r.cfg.cycles t.survived t.deaths
    t.latent_scenarios t.max_leaked_pages
    (fun fmt () ->
      match mean_leak_pages_per_recovery r with
      | Some m -> Format.fprintf fmt " (mean %.2f)" m
      | None -> ())
    () t.budget_violations;
  if r.wall_seconds > 0.0 then
    Format.fprintf fmt "%s: wall %.2fs (jobs=%d, cores=%d)@." r.config_label
      r.wall_seconds r.jobs
      (Inject.Pool.default_jobs ())

(* ------------------------------------------------------------------ *)
(* JSON export (BENCH_endurance.json)                                  *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled like the bench records: schema [nlh-endurance/1]. *)
let write_json oc ?(meta = []) r =
  let t = r.totals in
  Printf.fprintf oc "{\n  \"schema\": \"nlh-endurance/1\",\n";
  List.iter
    (fun (k, v) ->
      match v with
      | `String s -> Printf.fprintf oc "  %S: %S,\n" k s
      | `Int i -> Printf.fprintf oc "  %S: %d,\n" k i
      | `Bool b -> Printf.fprintf oc "  %S: %b,\n" k b)
    meta;
  Printf.fprintf oc "  \"scenarios\": %d,\n  \"cycles\": %d,\n" t.scenarios
    r.cfg.cycles;
  Printf.fprintf oc "  \"jobs\": %d,\n  \"cores\": %d,\n" r.jobs
    (Inject.Pool.default_jobs ());
  Printf.fprintf oc "  \"seconds\": %.3f,\n" r.wall_seconds;
  Printf.fprintf oc "  \"minor_words\": %.0f,\n" r.minor_words;
  Printf.fprintf oc "  \"minor_words_per_scenario\": %.0f,\n"
    (minor_words_per_scenario r);
  Printf.fprintf oc
    "  \"survived\": %d,\n  \"died\": %d,\n  \"latent_scenarios\": %d,\n"
    t.survived t.deaths t.latent_scenarios;
  Printf.fprintf oc "  \"max_leaked_pages_per_recovery\": %d,\n"
    t.max_leaked_pages;
  (match mean_leak_pages_per_recovery r with
  | Some m -> Printf.fprintf oc "  \"mean_leaked_pages_per_recovery\": %.4f,\n" m
  | None -> ());
  (match r.cfg.leak_budget_pages with
  | Some b -> Printf.fprintf oc "  \"leak_budget_pages\": %d,\n" b
  | None -> ());
  Printf.fprintf oc "  \"budget_violations\": %d,\n" t.budget_violations;
  Printf.fprintf oc "  \"leaks_by_resource\": {";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "%s\n    %S: %d" (if i > 0 then "," else "") k v)
    (Sim.Stats.Counts.sorted t.leaks);
  Printf.fprintf oc "\n  },\n  \"curve\": [";
  let curve = survival_curve r in
  Array.iteri
    (fun i (idx, survival, clean_rate) ->
      let c = t.per_cycle.(idx) in
      Printf.fprintf oc
        "%s\n    { \"cycle\": %d, \"entered\": %d, \"quiet\": %d, \
         \"recovered\": %d, \"latent\": %d, \"died\": %d, \"leaked_pages\": \
         %d, \"survival\": %.4f, \"clean_rate\": %.4f }"
        (if i > 0 then "," else "")
        idx c.cs_entered c.cs_quiet c.cs_recovered c.cs_latent c.cs_died
        c.cs_leaked_pages survival clean_rate)
    curve;
  Printf.fprintf oc "\n  ]\n}\n"
