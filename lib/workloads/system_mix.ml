(** The whole-system distribution of hypervisor activity: guest-driven
    entries from every benchmark plus the hypervisor's own timer ticks,
    device interrupts, context switches and idle polling. A random
    fault injected "while the CPU is executing target hypervisor code"
    lands in an activity drawn from this mix. *)

type t = {
  benchmarks : Workload.t array;
  active_cpus : int array; (* CPUs with a pinned vCPU (incl. PrivVM's) *)
  blk_dom : int option; (* domain receiving block-device completions *)
  net_dom : int option; (* domain receiving network packets *)
  (* Device-interrupt pressure, folded over the benchmarks once at
     creation (the per-sample fold was pure allocation: every [+.] in a
     fold closure boxes its accumulator). *)
  blk_w : float;
  net_w : float;
}

let create ~benchmarks ~active_cpus ~blk_dom ~net_dom =
  (* Line 1 = block backend, line 2 = network backend. Device pressure
     follows the benchmarks that are running. Folded in list order with
     the same 0.01 floor so the partial sums -- and thus every draw --
     match the previous per-sample computation bit for bit. *)
  let blk_w =
    List.fold_left
      (fun acc (b : Workload.t) -> acc +. fst (Workload.device_share b.Workload.kind))
      0.01 benchmarks
  and net_w =
    List.fold_left
      (fun acc (b : Workload.t) -> acc +. snd (Workload.device_share b.Workload.kind))
      0.01 benchmarks
  in
  {
    benchmarks = Array.of_list benchmarks;
    active_cpus = Array.of_list active_cpus;
    blk_dom;
    net_dom;
    blk_w;
    net_w;
  }

(* Category weights: guest entries dominate hypervisor execution time,
   followed by timer interrupts, device interrupts and scheduling. *)
let category_weights =
  [
    (0.38, `Guest_entry);
    (0.16, `Timer_tick);
    (0.08, `Device_interrupt);
    (0.31, `Context_switch);
    (0.07, `Idle);
  ]

let category_cum = Sim.Rng.cumulative category_weights
let category_tags = Array.of_list (List.map snd category_weights)

let sample rng t : Hyper.Hypervisor.activity =
  let random_cpu () =
    match Array.length t.active_cpus with
    | 0 -> 0
    | n -> t.active_cpus.(Sim.Rng.int rng n)
  in
  match category_tags.(Sim.Rng.choose_index_cum rng category_cum) with
  | `Guest_entry ->
    (match Array.length t.benchmarks with
    | 0 -> Hyper.Hypervisor.Idle_poll (random_cpu ())
    | n -> Workload.sample_activity rng t.benchmarks.(Sim.Rng.int rng n))
  | `Timer_tick -> Hyper.Hypervisor.Timer_tick (random_cpu ())
  | `Device_interrupt ->
    let pick_blk = Sim.Rng.float rng (t.blk_w +. t.net_w) < t.blk_w in
    (match (pick_blk, t.blk_dom, t.net_dom) with
    | true, Some d, _ -> Hyper.Hypervisor.Device_interrupt { line = 1; target_dom = d }
    | false, _, Some d -> Hyper.Hypervisor.Device_interrupt { line = 2; target_dom = d }
    | true, None, Some d -> Hyper.Hypervisor.Device_interrupt { line = 2; target_dom = d }
    | false, Some d, None -> Hyper.Hypervisor.Device_interrupt { line = 1; target_dom = d }
    | _, None, None -> Hyper.Hypervisor.Idle_poll (random_cpu ()))
  | `Context_switch -> Hyper.Hypervisor.Context_switch (random_cpu ())
  | `Idle -> Hyper.Hypervisor.Idle_poll (random_cpu ())
