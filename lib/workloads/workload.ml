(** The three synthetic benchmarks of Section VI-A, expressed as
    distributions over the hypervisor requests they generate.

    - BlkBench exercises the block-device interface: it creates, copies,
      reads, writes and removes 1 MB files with guest caching off, so
      every operation reaches the hypervisor as grant-table and
      event-channel traffic plus backend block interrupts.
    - UnixBench stresses hypercall handling, especially virtual memory
      management (mmu_update, update_va_mapping, memory_op, multicall
      batches) plus process activity (forwarded system calls).
    - NetBench is a user-level UDP ping handled every 1 ms: event
      channels, small grant maps, network backend interrupts. *)

type kind = Blkbench | Unixbench | Netbench

let kind_name = function
  | Blkbench -> "BlkBench"
  | Unixbench -> "UnixBench"
  | Netbench -> "NetBench"

(* Weighted menu of the hypercalls a guest running this benchmark
   issues. Weights are request-frequency calibrated: they determine
   which hypervisor path a random fault lands in, which in turn drives
   the recovery-rate profile. *)
let hypercall_menu = function
  | Unixbench ->
    [
      (0.27, `Mmu);
      (0.18, `Va);
      (0.06, `Mem_pop);
      (0.06, `Mem_dec);
      (0.09, `Multicall);
      (0.12, `Block);
      (0.06, `Yield);
      (0.05, `Set_timer);
      (0.02, `Console);
      (0.03, `Vcpu_info);
      (0.06, `Evt_send);
    ]
  | Blkbench ->
    [
      (0.48, `Grant);
      (0.18, `Evt_send);
      (0.06, `Mmu);
      (0.06, `Va);
      (0.05, `Mem_pop);
      (0.05, `Mem_dec);
      (0.06, `Block);
      (0.03, `Set_timer);
      (0.03, `Multicall);
    ]
  | Netbench ->
    [
      (0.34, `Evt_send);
      (0.28, `Grant);
      (0.10, `Block);
      (0.12, `Set_timer);
      (0.06, `Va);
      (0.05, `Mmu);
      (0.05, `Vcpu_info);
    ]

(* Relative share of forwarded system calls vs hypercalls in the guest's
   hypervisor entries (x86-64: system calls trap into the hypervisor). *)
let syscall_share = function
  | Unixbench -> 0.30
  | Blkbench -> 0.18
  | Netbench -> 0.12

(* Device-interrupt pressure this benchmark puts on the PrivVM backends:
   (block, net) relative weights. *)
let device_share = function
  | Blkbench -> (0.9, 0.1)
  | Unixbench -> (0.2, 0.1)
  | Netbench -> (0.1, 0.9)

(* Sampling-time form of the menus: cumulative weights plus the tags in
   list order, precomputed once per kind. [choose_index_cum] over these
   draws exactly as [choose_weighted] over the lists above would (same
   single float draw, same boundaries), without traversing a boxed-float
   list per request. *)
let menu_cum_unixbench = Sim.Rng.cumulative (hypercall_menu Unixbench)
let menu_cum_blkbench = Sim.Rng.cumulative (hypercall_menu Blkbench)
let menu_cum_netbench = Sim.Rng.cumulative (hypercall_menu Netbench)
let menu_tags_unixbench = Array.of_list (List.map snd (hypercall_menu Unixbench))
let menu_tags_blkbench = Array.of_list (List.map snd (hypercall_menu Blkbench))
let menu_tags_netbench = Array.of_list (List.map snd (hypercall_menu Netbench))

let menu_cum = function
  | Unixbench -> menu_cum_unixbench
  | Blkbench -> menu_cum_blkbench
  | Netbench -> menu_cum_netbench

let menu_tags = function
  | Unixbench -> menu_tags_unixbench
  | Blkbench -> menu_tags_blkbench
  | Netbench -> menu_tags_netbench

let sample_hypercall rng kind : Hyper.Hypercalls.kind =
  match (menu_tags kind).(Sim.Rng.choose_index_cum rng (menu_cum kind)) with
  | `Mmu -> Hyper.Hypercalls.Mmu_update (1 + Sim.Rng.int rng 4)
  | `Va -> Hyper.Hypercalls.Update_va_mapping
  | `Mem_pop -> Hyper.Hypercalls.Memory_op_populate
  | `Mem_dec -> Hyper.Hypercalls.Memory_op_decrease
  | `Grant -> Hyper.Hypercalls.Grant_table_op (1 + Sim.Rng.int rng 3)
  | `Evt_send -> Hyper.Hypercalls.Event_channel_send
  | `Block -> Hyper.Hypercalls.Sched_op_block
  | `Yield -> Hyper.Hypercalls.Sched_op_yield
  | `Set_timer -> Hyper.Hypercalls.Set_timer_op
  | `Console -> Hyper.Hypercalls.Console_io
  | `Vcpu_info -> Hyper.Hypercalls.Vcpu_op_info
  | `Multicall ->
    Hyper.Hypercalls.Multicall
      [
        Hyper.Hypercalls.Mmu_update (1 + Sim.Rng.int rng 2);
        Hyper.Hypercalls.Update_va_mapping;
        Hyper.Hypercalls.Mmu_update 1;
      ]

(* A benchmark bound to a domain. *)
type t = {
  kind : kind;
  domid : int;
  vcpus : int; (* vCPUs the guest spreads its work across *)
  mutable activities_run : int;
  mutable verified_ok : bool;
}

let create ?(vcpus = 1) kind ~domid =
  { kind; domid; vcpus = max 1 vcpus; activities_run = 0; verified_ok = true }

(* Sample one hypervisor entry caused by this benchmark's guest. *)
let sample_activity rng t : Hyper.Hypervisor.activity =
  let vid = if t.vcpus = 1 then 0 else Sim.Rng.int rng t.vcpus in
  if Sim.Rng.float rng 1.0 < syscall_share t.kind then
    Hyper.Hypervisor.Syscall_forward { domid = t.domid; vid }
  else
    Hyper.Hypervisor.Hypercall
      { domid = t.domid; vid; kind = sample_hypercall rng t.kind }

(* Verification criteria (Section VI-A): BlkBench and UnixBench compare
   produced files against a golden copy and watch for failed system
   calls; both are represented by the guest-state flags the simulation
   maintains. *)
let check_guest_outputs (dom : Hyper.Domain.t) =
  (not dom.Hyper.Domain.guest_sdc) && not dom.Hyper.Domain.guest_failed
