(** Sharded microreset: partition repair into per-domain shards recovered
    concurrently across the simulated CPUs.

    The serial microreset stops the world for the whole repair, so every
    domain pays the full recovery latency even when only one domain's
    state was damaged. Sharded recovery splits the work: a short global
    quiesce repairs the singletons every domain depends on (static
    locks, heap locks, IRQ state, scheduler metadata, recurring timers),
    then per-domain shards -- the domain's page-frame descriptors plus
    its hypercall/syscall retry and FS/GS bookkeeping -- run concurrently
    on the available CPUs. A domain resumes as soon as the global phase
    and its own shard are done; domains with no damaged state and no
    in-flight hypervisor work pay only the global window.

    Concurrency is simulated, not host-parallel: shards are assigned to
    [geometry.cpus] lanes by deterministic longest-processing-time
    scheduling, each shard's span is recorded at its lane start time via
    {!Common.timed_at}, and the clock advances once by the makespan. The
    mechanics run in a fixed sequential order regardless of lane
    assignment, so the post-recovery machine state is identical to the
    serial microreset's (the per-descriptor repair is order-independent,
    see {!Pfn.fix_desc}) and deterministic across [--jobs]. *)

open Hyper

let mechanism_name = "NiLiHype-sharded"

type shard = {
  sh_domid : int; (* -1 = unowned/system frames *)
  sh_lane : int; (* simulated CPU lane the shard ran on *)
  sh_frames : int; (* descriptors scanned *)
  sh_fixed : int; (* descriptors repaired *)
  sh_cost : Sim.Time.ns;
  sh_start : Sim.Time.ns; (* offset from the shard-phase start *)
}

type result = {
  breakdown : Latency_model.breakdown;
      (* per-step costs; sums of concurrent shard steps exceed the
         wall-clock latency by design *)
  scan_mode : Microreset.scan_mode;
  shards : shard list; (* ascending domid *)
  makespan : Sim.Time.ns; (* wall-clock of the concurrent shard phase *)
  latency : Sim.Time.ns; (* end-to-end: quiesce + makespan + resume *)
  resume_offsets : (int * Sim.Time.ns) list;
      (* per-domain offset from recovery start at which that domain
         resumes serving, ascending domid; domains without a shard pay
         only the global quiesce + resume window *)
  heap_locks_released : int;
  static_locks_released : int;
  sched_fixes : int;
  pfn_fixed : int;
  recurring_reactivated : int;
}

(* Scale a simulated-table frame count to the configured geometry, so a
   full-scan shard over the 64 Ki-frame campaign table charges its
   proportional share of the modelled host's 2 Mi-frame scan. Exact
   (factor 1) when no geometry override is set. *)
let scale_frames ~geo_frames ~real_frames n =
  if real_frames = geo_frames then n else n * geo_frames / real_frames

let recover (hv : Hypervisor.t) ~(enh : Enhancement.set) ~detected_on =
  Common.check_recovery_handler hv;
  let log = Common.make_log ~track:detected_on ~mechanism:mechanism_name hv in
  let clock = hv.Hypervisor.clock in
  let geo = Hypervisor.geometry hv in
  let lanes_n = max 1 geo.Config.cpus in
  let real_frames = Hypervisor.frames hv in
  let incremental =
    hv.Hypervisor.config.Config.incremental_scan
    && Pfn.tracking_usable hv.Hypervisor.pfn
  in
  let has e =
    let present = Enhancement.mem enh e in
    if present then
      Common.note_enhancement hv ~mechanism:mechanism_name ~cpu:detected_on e;
    present
  in
  let start = Sim.Clock.now clock in

  (* --- Global phase: stop the world, repair the singletons ----------- *)
  let heap_locks_released = ref 0 in
  let static_locks_released = ref 0 in
  let sched_fixes = ref 0 in
  let recurring_reactivated = ref 0 in
  Common.timed log "Quiesce CPUs, repair global singletons"
    (Latency_model.shard_global_quiesce ~cpus:geo.Config.cpus)
    (fun () ->
      Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
          Hw.Cpu.disable_interrupts c;
          Hw.Cpu.discard_hypervisor_stack c;
          c.Hw.Cpu.state <-
            (if c.Hw.Cpu.id = detected_on then Hw.Cpu.Running
             else Hw.Cpu.Busy_wait));
      Array.iter
        (fun (p : Percpu.t) -> p.Percpu.in_hypercall_depth <- 0)
        hv.Hypervisor.percpu;
      if has Enhancement.Clear_irq_count then
        Array.iter Percpu.clear_irq_count hv.Hypervisor.percpu;
      if has Enhancement.Release_heap_locks then
        heap_locks_released := Common.release_heap_locks hv;
      if has Enhancement.Unlock_static_locks then
        static_locks_released :=
          Spinlock.Segment.unlock_all hv.Hypervisor.static_segment;
      if has Enhancement.Ack_interrupts then Common.ack_interrupts hv;
      if has Enhancement.Sched_consistency then
        sched_fixes :=
          Sched.fix_from_percpu hv.Hypervisor.sched (Hypervisor.all_vcpus hv);
      if has Enhancement.Reactivate_recurring_timers then
        recurring_reactivated :=
          Timer_heap.reactivate_recurring hv.Hypervisor.timers
            ~now:(Sim.Clock.now clock));
  Common.note_lock_release hv ~cpu:detected_on ~name:"heap"
    !heap_locks_released;
  Common.note_lock_release hv ~cpu:detected_on ~name:"static"
    !static_locks_released;

  (* --- Partition the per-domain work --------------------------------- *)
  let do_scan = has Enhancement.Pfn_consistency_scan in
  if do_scan then
    Obs.Metrics.incr
      (if incremental then hv.Hypervisor.obs.Obs.Recorder.scan_incremental
       else hv.Hypervisor.obs.Obs.Recorder.scan_full);
  (* Group descriptors needing a scan by owner. Each descriptor has
     exactly one owner value, so the groups are a total partition of the
     scanned set whatever state the owner fields are in (damaged owners
     land in some group and are still repaired). Groups keep reverse
     visit order; repairs are order-independent. *)
  let groups : (int, Pfn.desc list ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let group owner =
    match Hashtbl.find_opt groups owner with
    | Some g -> g
    | None ->
      let g = (ref [], ref 0) in
      Hashtbl.replace groups owner g;
      g
  in
  if do_scan then begin
    let visit (d : Pfn.desc) =
      let descs, count = group d.Pfn.owner in
      descs := d :: !descs;
      incr count
    in
    if incremental then List.iter visit (Pfn.dirty_descs hv.Hypervisor.pfn)
    else
      for i = 0 to real_frames - 1 do
        visit (Pfn.get hv.Hypervisor.pfn i)
      done
  end;
  (* Domains with in-flight hypervisor work need a shard for their
     retry / FS-GS bookkeeping even if none of their frames is dirty. *)
  let vcpu_in_flight (v : Domain.vcpu) =
    v.Domain.in_hypercall <> None || v.Domain.in_syscall_forward
  in
  let domains = Hypervisor.all_domains hv in
  List.iter
    (fun (d : Domain.t) ->
      if Array.exists vcpu_in_flight d.Domain.vcpus then
        ignore (group d.Domain.domid))
    domains;

  (* --- Cost each shard and schedule onto lanes (deterministic LPT) --- *)
  let shard_work =
    Hashtbl.fold
      (fun owner (descs, count) acc ->
        let scan_cost =
          if not do_scan then 0
          else if incremental then Latency_model.pfn_scan_dirty ~dirty:!count
          else
            Latency_model.pfn_scan
              ~frames:
                (scale_frames ~geo_frames:geo.Config.frames ~real_frames !count)
        in
        (owner, !descs, !count, Latency_model.shard_domain_base + scan_cost)
        :: acc)
      groups []
  in
  let shard_work =
    List.sort
      (fun (o1, _, _, c1) (o2, _, _, c2) ->
        if c1 <> c2 then compare c2 c1 else compare o1 o2)
      shard_work
  in
  let lanes = Array.make lanes_n 0 in
  let pick_lane () =
    let best = ref 0 in
    for l = 1 to lanes_n - 1 do
      if lanes.(l) < lanes.(!best) then best := l
    done;
    !best
  in
  let phase_start = Sim.Clock.now clock in
  let pfn_fixed = ref 0 in
  let shards =
    List.map
      (fun (owner, descs, count, cost) ->
        let lane = pick_lane () in
        let s_off = lanes.(lane) in
        lanes.(lane) <- s_off + cost;
        let name =
          if owner < 0 then "Shard: unowned frames"
          else Printf.sprintf "Shard: domain %d" owner
        in
        let fixed =
          Common.timed_at log name ~start:(phase_start + s_off) cost (fun () ->
              let fixed = ref 0 in
              List.iter (fun d -> if Pfn.fix_desc d then incr fixed) descs;
              (match Hypervisor.domain hv owner with
              | Some d ->
                let vcpus = Array.to_list d.Domain.vcpus in
                Common.setup_retries_vcpus ~enh vcpus;
                Common.restore_fs_gs_vcpus hv ~enh vcpus
              | None -> ());
              !fixed)
        in
        pfn_fixed := !pfn_fixed + fixed;
        {
          sh_domid = owner;
          sh_lane = lane;
          sh_frames = count;
          sh_fixed = fixed;
          sh_cost = cost;
          sh_start = s_off;
        })
      shard_work
  in
  let makespan = Array.fold_left max 0 lanes in
  Sim.Clock.advance_by clock makespan;

  (* --- Resume -------------------------------------------------------- *)
  Common.timed log "Reprogram timers, resume normal operation"
    Latency_model.microreset_misc (fun () ->
      if has Enhancement.Reprogram_apic_timer then
        Common.reprogram_apic_timers hv;
      Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
          Hw.Cpu.enable_interrupts c;
          c.Hw.Cpu.state <- Hw.Cpu.Running));
  let finish = Sim.Clock.now clock in
  let quiesce = phase_start - start in
  let resume_tail = finish - (phase_start + makespan) in
  let shard_finish domid =
    List.fold_left
      (fun acc s ->
        if s.sh_domid = domid then max acc (s.sh_start + s.sh_cost) else acc)
      0 shards
  in
  let resume_offsets =
    List.map
      (fun (d : Domain.t) ->
        (d.Domain.domid, quiesce + shard_finish d.Domain.domid + resume_tail))
      domains
  in
  {
    breakdown = Common.breakdown log;
    scan_mode =
      (if incremental then Microreset.Incremental_scan
       else Microreset.Full_scan);
    shards = List.sort (fun a b -> compare a.sh_domid b.sh_domid) shards;
    makespan;
    latency = finish - start;
    resume_offsets;
    heap_locks_released = !heap_locks_released;
    static_locks_released = !static_locks_released;
    sched_fixes = !sched_fixes;
    pfn_fixed = !pfn_fixed;
    recurring_reactivated = !recurring_reactivated;
  }
