(** NiLiHype: microreset-based recovery of the hypervisor (Section V).

    When an error is detected, the recovery handler is invoked on the
    detecting CPU. It disables interrupts on its own CPU and interrupts
    all others, which disable theirs; every CPU discards its execution
    thread within the hypervisor by resetting its stack pointer, then
    all but the detecting CPU busy-wait while it applies the
    enhancements. No reboot: the entire global state stays in place,
    which is why recovery completes in ~22 ms instead of ~713 ms. *)

open Hyper

(* Which consistency-scan path a recovery took. Incremental walks only
   the copy-on-write dirty lists (O(damaged state)); Full walks the
   whole structures (O(machine)). The repaired state is identical either
   way whenever the tracking is intact -- the per-element repairs are
   pure functions of the element, and every write since the last
   consistent baseline marked its element dirty. *)
type scan_mode = Full_scan | Incremental_scan

let scan_mode_name = function
  | Full_scan -> "full"
  | Incremental_scan -> "incremental"

type result = {
  breakdown : Latency_model.breakdown;
  heap_locks_released : int;
  static_locks_released : int;
  sched_fixes : int;
  pfn_fixed : int;
  recurring_reactivated : int;
  scan_mode : scan_mode;
}

(* Perform microreset recovery. Raises [Crash.Hypervisor_crash] if the
   recovery process itself fails (e.g. the handler was corrupted). *)
let recover (hv : Hypervisor.t) ~(enh : Enhancement.set) ~detected_on =
  Common.check_recovery_handler hv;
  let log = Common.make_log ~track:detected_on ~mechanism:"NiLiHype" hv in
  (* Costs are charged at the configured geometry; mechanics operate on
     the real (possibly scaled-down) simulated tables. *)
  let geo = Hypervisor.geometry hv in
  let cpus = geo.Config.cpus in
  (* Decide the scan path up front: the recovery's own repairs dirty
     state as they go, and the decision must not depend on them. *)
  let incremental =
    hv.Hypervisor.config.Config.incremental_scan
    && Pfn.tracking_usable hv.Hypervisor.pfn
  in
  let heap_dirty = Heap.dirty_count hv.Hypervisor.heap in
  let timer_dirty = Timer_heap.dirty_count hv.Hypervisor.timers in
  let pfn_dirty = Pfn.dirty_count hv.Hypervisor.pfn in
  let has e =
    let present = Enhancement.mem enh e in
    if present then
      Common.note_enhancement hv ~mechanism:"NiLiHype" ~cpu:detected_on e;
    present
  in

  (* Phase 1: stop the world. The detecting CPU disables its interrupts
     and IPIs the others; each CPU discards its hypervisor execution
     thread (stack pointer reset) and busy-waits. *)
  Common.timed log "Interrupt CPUs, discard execution threads"
    (Latency_model.microreset_interrupt_cpus ~cpus)
    (fun () ->
      Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
          Hw.Cpu.disable_interrupts c;
          Hw.Cpu.discard_hypervisor_stack c;
          c.Hw.Cpu.state <-
            (if c.Hw.Cpu.id = detected_on then Hw.Cpu.Running else Hw.Cpu.Busy_wait));
      Array.iter
        (fun (p : Percpu.t) -> p.Percpu.in_hypercall_depth <- 0)
        hv.Hypervisor.percpu);

  (* Phase 2: state-consistency enhancements, run by the detecting CPU. *)
  let heap_locks_released = ref 0 in
  let static_locks_released = ref 0 in
  let sched_fixes = ref 0 in
  let recurring_reactivated = ref 0 in
  Common.timed log "Apply state-consistency enhancements"
    (if incremental then
       Latency_model.microreset_enhancements_dirty ~heap_dirty ~timer_dirty
     else Latency_model.microreset_enhancements)
    (fun () ->
      if has Enhancement.Clear_irq_count then
        Array.iter Percpu.clear_irq_count hv.Hypervisor.percpu;
      if has Enhancement.Release_heap_locks then
        heap_locks_released := Common.release_heap_locks hv;
      if has Enhancement.Unlock_static_locks then
        static_locks_released :=
          Spinlock.Segment.unlock_all hv.Hypervisor.static_segment;
      if has Enhancement.Ack_interrupts then Common.ack_interrupts hv;
      if has Enhancement.Sched_consistency then
        sched_fixes :=
          Sched.fix_from_percpu hv.Hypervisor.sched (Hypervisor.all_vcpus hv);
      if has Enhancement.Reactivate_recurring_timers then
        recurring_reactivated :=
          Timer_heap.reactivate_recurring hv.Hypervisor.timers
            ~now:(Sim.Clock.now hv.Hypervisor.clock);
      Common.setup_retries hv ~enh;
      Common.restore_fs_gs hv ~enh);
  Common.note_lock_release hv ~cpu:detected_on ~name:"heap"
    !heap_locks_released;
  Common.note_lock_release hv ~cpu:detected_on ~name:"static"
    !static_locks_released;

  (* Phase 3: page-frame descriptor consistency scan. The full walk is
     the dominant latency component (21 ms for 8 GB), proportional to
     memory size; the incremental walk visits only descriptors written
     since the last golden refresh -- O(damaged state + workload drift)
     -- and repairs exactly the same descriptors (clean ones are
     consistent by construction of the baseline). *)
  let pfn_fixed = ref 0 in
  if has Enhancement.Pfn_consistency_scan then begin
    Obs.Metrics.incr
      (if incremental then hv.Hypervisor.obs.Obs.Recorder.scan_incremental
       else hv.Hypervisor.obs.Obs.Recorder.scan_full);
    if incremental then
      Common.timed log "Incremental consistency scan of dirty page frame entries"
        (Latency_model.pfn_scan_dirty ~dirty:pfn_dirty)
        (fun () -> pfn_fixed := Pfn.scan_and_fix_dirty hv.Hypervisor.pfn)
    else
      Common.timed log "Restore and check consistency of page frame entries"
        (Latency_model.pfn_scan ~frames:geo.Config.frames)
        (fun () -> pfn_fixed := Pfn.scan_and_fix hv.Hypervisor.pfn)
  end;

  (* Phase 4: reprogram hardware timers and resume normal operation. *)
  Common.timed log "Reprogram timers, resume normal operation"
    Latency_model.microreset_misc (fun () ->
      if has Enhancement.Reprogram_apic_timer then
        Common.reprogram_apic_timers hv;
      Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
          Hw.Cpu.enable_interrupts c;
          c.Hw.Cpu.state <- Hw.Cpu.Running));

  {
    breakdown = Common.breakdown log;
    heap_locks_released = !heap_locks_released;
    static_locks_released = !static_locks_released;
    sched_fixes = !sched_fixes;
    pfn_fixed = !pfn_fixed;
    recurring_reactivated = !recurring_reactivated;
    scan_mode = (if incremental then Incremental_scan else Full_scan);
  }

(* The Table III presentation: every step taking more than 1 ms is
   listed individually; the rest are "Others". *)
let table3_breakdown (r : result) =
  let big, small =
    List.partition
      (fun (_, d) -> d >= Sim.Time.ms 1)
      r.breakdown.Latency_model.steps
  in
  let others = List.fold_left (fun acc (_, d) -> acc + d) 0 small in
  { Latency_model.steps = big @ [ ("Others", others) ] }
