(** Unified interface over the two component-level recovery mechanisms. *)

type mechanism =
  | Nilihype (* microreset: reset to a quiescent state, no reboot *)
  | Rehype (* microreboot: boot a new instance, re-integrate state *)

val mechanism_name : mechanism -> string

val config : mechanism -> Hyper.Config.t
(** The normal-operation configuration each mechanism requires (ReHype
    additionally needs IO-APIC write logging and boot-line logging). *)

type repairs = {
  heap_locks_released : int;
  static_locks_released : int;
  sched_fixes : int;
  pfn_fixed : int;
  recurring_reactivated : int;
}
(** Abandoned in-flight work the recovery had to repair. For ReHype the
    static-lock / scheduler / recurring-timer counts are structurally 0:
    the reboot re-initialises those structures instead of fixing them. *)

type outcome = {
  mechanism : mechanism;
  latency : Sim.Time.ns; (* simulated end-to-end recovery latency *)
  breakdown : Hyper.Latency_model.breakdown;
  repairs : repairs;
  scan_mode : Microreset.scan_mode option;
      (* which consistency-scan path a microreset took; [None] for
         ReHype *)
}

val recover :
  mechanism ->
  Hyper.Hypervisor.t ->
  enh:Enhancement.set ->
  detected_on:int ->
  outcome
(** Raises [Hyper.Crash.Hypervisor_crash] when recovery itself fails.
    A recovery attempt that dies invalidates the pfn dirty tracking
    before the exception propagates, so a later attempt on the same
    instance automatically falls back to the full consistency scan. *)
