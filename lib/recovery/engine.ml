(** Unified interface over the two component-level recovery mechanisms. *)

type mechanism =
  | Nilihype (* microreset: reset to a quiescent state, no reboot *)
  | Rehype (* microreboot: boot a new instance, re-integrate state *)

let mechanism_name = function Nilihype -> "NiLiHype" | Rehype -> "ReHype"

(* The normal-operation configuration each mechanism requires. *)
let config = function
  | Nilihype -> Hyper.Config.nilihype
  | Rehype -> Hyper.Config.rehype

(* How much abandoned in-flight work the enhancements had to repair:
   the per-recovery residue the endurance ledger attributes leaks to.
   Microreboot gets lock release and frame repair "for free" from the
   reboot, so some counts are structurally zero there. *)
type repairs = {
  heap_locks_released : int;
  static_locks_released : int;
  sched_fixes : int;
  pfn_fixed : int;
  recurring_reactivated : int;
}

type outcome = {
  mechanism : mechanism;
  latency : Sim.Time.ns;
  breakdown : Hyper.Latency_model.breakdown;
  repairs : repairs;
  scan_mode : Microreset.scan_mode option;
      (* microreset only; [None] for ReHype (the reboot has no scan-path
         choice to make) *)
}

(* Run recovery; raises [Hyper.Crash.Hypervisor_crash] if the recovery
   process itself fails. A recovery attempt that dies mid-flight leaves
   the machine with partially applied repairs that did not all go
   through the write-tracking discipline recovery itself relies on, so
   the dirty tracking is invalidated before re-raising: any subsequent
   recovery attempt on this instance falls back to the full scan, and
   only a snapshot restore (a fresh consistent baseline) re-arms the
   incremental path. *)
let recover mechanism (hv : Hyper.Hypervisor.t) ~enh ~detected_on =
  let start = Sim.Clock.now hv.Hyper.Hypervisor.clock in
  let breakdown, repairs, scan_mode =
    try
      match mechanism with
      | Nilihype ->
        let r = Microreset.recover hv ~enh ~detected_on in
        ( r.Microreset.breakdown,
          {
            heap_locks_released = r.Microreset.heap_locks_released;
            static_locks_released = r.Microreset.static_locks_released;
            sched_fixes = r.Microreset.sched_fixes;
            pfn_fixed = r.Microreset.pfn_fixed;
            recurring_reactivated = r.Microreset.recurring_reactivated;
          },
          Some r.Microreset.scan_mode )
      | Rehype ->
        let r = Microreboot.recover hv ~enh ~detected_on in
        ( r.Microreboot.breakdown,
          {
            heap_locks_released = r.Microreboot.heap_locks_released;
            static_locks_released = 0; (* re-initialised by the boot *)
            sched_fixes = 0; (* runqueues rebuilt from scratch *)
            pfn_fixed = r.Microreboot.pfn_fixed;
            recurring_reactivated = 0; (* recurring re-registered by boot *)
          },
          None )
    with e ->
      Hyper.Pfn.invalidate_tracking hv.Hyper.Hypervisor.pfn;
      raise e
  in
  {
    mechanism;
    latency = Sim.Clock.now hv.Hyper.Hypervisor.clock - start;
    breakdown;
    repairs;
    scan_mode;
  }
