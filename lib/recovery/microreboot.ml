(** ReHype: microreboot-based recovery of the hypervisor (Section III-B).

    All CPUs disable interrupts and all but one halt. The remaining CPU
    preserves the static data segments, boots a new hypervisor instance
    (hardware re-initialisation, fresh memory state), re-integrates the
    preserved state (non-free heap pages, page tables, domain
    structures) and wakes the other CPUs. The reboot gives ReHype
    "free" repairs that NiLiHype needs explicit enhancements for --
    fresh static data, a rebuilt heap, a fresh timer heap, re-initialised
    scheduler state -- at the price of a ~713 ms recovery latency
    (Table II) and extra normal-operation logging (IO-APIC writes, boot
    line options). *)

open Hyper

type result = {
  breakdown : Latency_model.breakdown;
  heap_locks_released : int;
  pfn_fixed : int;
  ioapic_restored : bool;
}

let recover (hv : Hypervisor.t) ~(enh : Enhancement.set) ~detected_on =
  Common.check_recovery_handler hv;
  let log = Common.make_log ~track:detected_on ~mechanism:"ReHype" hv in
  (* Costs are charged at the configured geometry; mechanics operate on
     the real (possibly scaled-down) simulated tables. *)
  let geo = Hypervisor.geometry hv in
  let frames = geo.Config.frames in
  let cpus = Hypervisor.cpu_count hv in
  let machine = hv.Hypervisor.machine in

  (* Boot requires the logged boot-line options; without the log the new
     instance comes up with wrong parameters. *)
  if not hv.Hypervisor.config.Config.bootline_logging then
    Crash.panic "rehype: boot line options were not logged; reboot misconfigured";
  if not hv.Hypervisor.bootline_ok then
    Crash.panic "rehype: logged boot line options corrupted";

  (* --- Stop the world and preserve state ---------------------------- *)
  Common.timed log "Halt CPUs, preserve static data segments" (Sim.Time.ms 1)
    (fun () ->
      Hw.Machine.iter_cpus machine (fun c ->
          Hw.Cpu.disable_interrupts c;
          Hw.Cpu.discard_hypervisor_stack c;
          c.Hw.Cpu.state <- Hw.Cpu.Halted);
      Array.iter
        (fun (p : Percpu.t) -> p.Percpu.in_hypercall_depth <- 0)
        hv.Hypervisor.percpu);

  (* --- Hardware initialisation (412 ms, Table II) ------------------- *)
  Common.timed log "Early initialize of the boot CPU" Latency_model.reboot_early_boot_cpu
    (fun () -> Hw.Machine.reset_for_reboot machine);
  Common.timed log "Initialize and wait for other CPUs to come online"
    (Latency_model.reboot_cpu_online_per_cpu * (geo.Config.cpus - 1))
    (fun () ->
      Hw.Machine.iter_cpus machine (fun c -> c.Hw.Cpu.state <- Hw.Cpu.Halted));
  let ioapic_restored = ref false in
  Common.timed log "Verify, connect and setup local APIC and IO APIC"
    Latency_model.reboot_apic_ioapic_setup (fun () ->
      (* The reboot re-initialises the IO-APIC; the pre-failure routing
         must be replayed from the normal-operation write log. *)
      if hv.Hypervisor.config.Config.ioapic_write_logging then begin
        Hw.Ioapic.replay_log machine.Hw.Machine.ioapic;
        ioapic_restored := true
      end);
  Common.timed log "Initialize and calibrate TSC timer"
    Latency_model.reboot_tsc_calibrate (fun () ->
      machine.Hw.Machine.tsc_calibrated <- true);

  (* --- Memory initialisation (266 ms, Table II) --------------------- *)
  Common.timed log "Record allocated pages of old heap"
    (Latency_model.reboot_record_old_heap ~frames)
    (fun () -> ());
  let pfn_fixed = ref 0 in
  Common.timed log "Restore and check consistency of page frame entries"
    (Latency_model.pfn_scan ~frames)
    (fun () -> pfn_fixed := Pfn.scan_and_fix hv.Hypervisor.pfn);
  Common.timed log "Re-initialize the page frame descriptor for un-preserved pages"
    (Latency_model.reboot_reinit_unpreserved_pfn ~frames)
    (fun () -> ());
  Common.timed log "Recreate the new heap"
    (Latency_model.reboot_recreate_heap ~frames)
    (fun () ->
      (* A fresh allocator is built and live objects re-integrated: this
         repairs free-list corruption and, because static data was
         re-initialised by the boot, static-segment corruption too. *)
      Heap.rebuild_for_reboot hv.Hypervisor.heap;
      hv.Hypervisor.static_data_ok <- true;
      hv.Hypervisor.static_data_note <- "");

  (* --- Misc (35 ms, Table II) --------------------------------------- *)
  let heap_locks_released = ref 0 in
  Common.timed log "SMP initialization" Latency_model.reboot_smp_init (fun () ->
      (* Fresh per-CPU state: IRQ counts zero, static locks re-initialised
         unlocked, timer heap rebuilt with the standard recurring events,
         scheduler state rebuilt from the preserved domain structures. *)
      Array.iter Percpu.clear_irq_count hv.Hypervisor.percpu;
      ignore (Spinlock.Segment.unlock_all hv.Hypervisor.static_segment);
      heap_locks_released := Common.release_heap_locks hv;
      Common.ack_interrupts hv;
      Timer_heap.rebuild_for_reboot hv.Hypervisor.timers
        ~now:(Sim.Clock.now hv.Hypervisor.clock);
      (* Scheduler: every vCPU is re-queued; nothing is current. *)
      let sched = hv.Hypervisor.sched in
      List.iter
        (fun (v : Domain.vcpu) ->
          Sched.vcpu_clear_current v;
          if v.Domain.runstate = Domain.Running then
            v.Domain.runstate <- Domain.Runnable)
        (Hypervisor.all_vcpus hv);
      for cpu = 0 to cpus - 1 do
        Sched.set_current sched ~cpu None;
        hv.Hypervisor.percpu.(cpu).Percpu.curr_domid <- -1;
        hv.Hypervisor.percpu.(cpu).Percpu.curr_vcpuid <- -1
      done;
      List.iter
        (fun (v : Domain.vcpu) ->
          if not (List.memq v (Sched.queued sched ~cpu:v.Domain.processor)) then
            Sched.enqueue sched v)
        (Hypervisor.all_vcpus hv));
  Common.note_lock_release hv ~cpu:detected_on ~name:"heap"
    !heap_locks_released;
  Common.timed log "Identify valid page frames, relocate boot modules"
    Latency_model.reboot_relocate_modules (fun () -> ());
  Common.timed log "Others (state re-integration, domain wiring)"
    Latency_model.reboot_others (fun () ->
      Common.setup_retries hv ~enh;
      Common.restore_fs_gs hv ~enh;
      (* Resume: make each pinned vCPU current again and re-arm timers. *)
      Hypervisor.start_vcpus hv;
      Common.reprogram_apic_timers hv;
      Hw.Machine.iter_cpus machine (fun c ->
          Hw.Cpu.enable_interrupts c;
          c.Hw.Cpu.state <- Hw.Cpu.Running));

  {
    breakdown = Common.breakdown log;
    heap_locks_released = !heap_locks_released;
    pfn_fixed = !pfn_fixed;
    ioapic_restored = !ioapic_restored;
  }

(* Table II groups the steps under Hardware/Memory/Misc headings. *)
let table2_breakdown (r : result) = r.breakdown
