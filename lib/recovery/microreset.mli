(** NiLiHype: microreset-based component-level recovery (Section V).

    Resets the hypervisor to a quiescent state by discarding all
    execution threads (stack-pointer reset on every CPU), then applies
    the enabled state-consistency enhancements in place. No reboot: the
    entire global state is reused, which bounds recovery latency at
    ~22 ms (dominated by the page-frame consistency scan). *)

type scan_mode = Full_scan | Incremental_scan
(** Which consistency-scan path the recovery took: the O(machine) full
    table walk, or the O(damaged state) dirty-list walk (available when
    [Hyper.Config.incremental_scan] is set and the dirty tracking is
    intact; recovery falls back to [Full_scan] otherwise, e.g. after a
    recovery attempt that itself died). The repaired state is identical
    either way. *)

val scan_mode_name : scan_mode -> string

type result = {
  breakdown : Hyper.Latency_model.breakdown; (* per-step simulated time *)
  heap_locks_released : int;
  static_locks_released : int;
  sched_fixes : int;
  pfn_fixed : int;
  recurring_reactivated : int;
  scan_mode : scan_mode;
}

val recover :
  Hyper.Hypervisor.t -> enh:Enhancement.set -> detected_on:int -> result
(** [recover hv ~enh ~detected_on] performs microreset recovery on the
    CPU that detected the error. Raises [Hyper.Crash.Hypervisor_crash]
    if the recovery process itself fails (e.g. the recovery routine was
    corrupted by the fault). *)

val table3_breakdown : result -> Hyper.Latency_model.breakdown
(** Table III presentation: steps >= 1 ms listed individually, the rest
    folded into "Others". *)
