(** Recovery steps shared between microreset (NiLiHype) and microreboot
    (ReHype): latency bookkeeping, the guard on the recovery handler
    itself, and the post-reset resolution of inconsistencies with the
    VMs (hypercall/syscall retry set-up, FS/GS restoration). *)

open Hyper

type step_log = {
  mutable steps : (string * Sim.Time.ns) list; (* reverse order *)
  clock : Sim.Clock.t;
  obs : Obs.Recorder.t;
  mechanism : string; (* "NiLiHype" / "ReHype", span category suffix *)
  track : int; (* CPU the recovery runs on (Chrome-trace tid) *)
}

let make_log ?(track = 0) ~mechanism (hv : Hypervisor.t) =
  { steps = []; clock = hv.Hypervisor.clock; obs = hv.Hypervisor.obs; mechanism; track }

(* Record a named recovery step that takes [cost] simulated time. Each
   step becomes both a latency-breakdown entry and an observability span
   with the same name and duration, so summing span durations per phase
   reproduces [Latency_model.breakdown] exactly. *)
let timed log name cost f =
  let start = Sim.Clock.now log.clock in
  Sim.Clock.advance_by log.clock cost;
  let r = f () in
  log.steps <- (name, cost) :: log.steps;
  Obs.Recorder.span log.obs ~name
    ~cat:("recovery:" ^ log.mechanism)
    ~track:log.track ~start ~duration:cost;
  Obs.Recorder.event log.obs ~time:start ~cpu:log.track Obs.Event.Info
    (Obs.Event.Recovery_step { mechanism = log.mechanism; step = name });
  r

(* Like [timed], but for work running concurrently with other recovery
   work (sharded recovery): the step starts at an explicit simulated
   time and the clock is NOT advanced -- the caller advances it once by
   the makespan after all concurrent shards are accounted. Span and
   breakdown bookkeeping are identical to [timed], so summing span
   durations per phase still reproduces [Latency_model.breakdown]. *)
let timed_at log name ~start cost f =
  let r = f () in
  log.steps <- (name, cost) :: log.steps;
  Obs.Recorder.span log.obs ~name
    ~cat:("recovery:" ^ log.mechanism)
    ~track:log.track ~start ~duration:cost;
  Obs.Recorder.event log.obs ~time:start ~cpu:log.track Obs.Event.Info
    (Obs.Event.Recovery_step { mechanism = log.mechanism; step = name });
  r

(* Debug-level note that a specific state-consistency enhancement ran. *)
let note_enhancement (hv : Hypervisor.t) ~mechanism ~cpu e =
  Obs.Recorder.event hv.Hypervisor.obs
    ~time:(Sim.Clock.now hv.Hypervisor.clock)
    ~cpu Obs.Event.Debug
    (Obs.Event.Recovery_step
       { mechanism; step = "enhancement:" ^ Enhancement.name e })

(* Record forced lock releases performed during recovery: a typed event
   plus the [recovery.locks_released] counter. *)
let note_lock_release (hv : Hypervisor.t) ~cpu ~name count =
  if count > 0 then begin
    Obs.Metrics.incr ~by:count
      hv.Hypervisor.obs.Obs.Recorder.recovery_lock_releases;
    Obs.Recorder.event hv.Hypervisor.obs
      ~time:(Sim.Clock.now hv.Hypervisor.clock)
      ~cpu Obs.Event.Info
      (Obs.Event.Lock_release { name; count })
  end

let breakdown log : Latency_model.breakdown =
  { Latency_model.steps = List.rev log.steps }

(* The recovery routine can itself be a casualty: reason #1 for recovery
   failure in Section VII-A is "the recovery routine fails to be invoked
   due to the corrupted hypervisor state". *)
let check_recovery_handler (hv : Hypervisor.t) =
  if not hv.Hypervisor.recovery_handler_ok then
    Crash.panic "recovery routine corrupted: cannot be invoked"

(* Resolve inconsistencies between the recovered hypervisor and the VMs:
   arrange for partially executed hypercalls and forwarded system calls
   to be retried when VM execution resumes. Without the retry
   mechanisms the interaction is simply lost and the issuing guest
   blocks forever. *)
let setup_retries_vcpus ~(enh : Enhancement.set) vcpus =
  let hypercall_retry = Enhancement.mem enh Enhancement.Hypercall_retry in
  let syscall_retry = Enhancement.mem enh Enhancement.Syscall_retry in
  List.iter
    (fun (v : Domain.vcpu) ->
      (match v.Domain.in_hypercall with
      | Some record when not record.Hypercalls.committed ->
        if hypercall_retry then v.Domain.retry_pending <- true
        else v.Domain.lost_work <- true
      | Some _ -> v.Domain.in_hypercall <- None
      | None -> ());
      if v.Domain.in_syscall_forward then begin
        if syscall_retry then v.Domain.syscall_retry_pending <- true
        else v.Domain.lost_work <- true
      end)
    vcpus

let setup_retries (hv : Hypervisor.t) ~(enh : Enhancement.set) =
  setup_retries_vcpus ~enh (Hypervisor.all_vcpus hv)

(* Restore guest FS/GS for vCPUs that were inside the hypervisor when
   the error was detected. Only possible if the entry path saved them
   (the Save-FS/GS port fix, [Config.save_fs_gs]); otherwise the guest
   resumes with clobbered segment bases and its processes fail. *)
let restore_fs_gs_vcpus (hv : Hypervisor.t) ~(enh : Enhancement.set) vcpus =
  let can_restore =
    Enhancement.mem enh Enhancement.Restore_fs_gs
    && hv.Hypervisor.config.Config.save_fs_gs
  in
  List.iter
    (fun (v : Domain.vcpu) ->
      let was_in_hypervisor =
        v.Domain.in_hypercall <> None || v.Domain.in_syscall_forward
        || v.Domain.retry_pending || v.Domain.syscall_retry_pending
      in
      if was_in_hypervisor && not can_restore then v.Domain.fsgs_valid <- false)
    vcpus

let restore_fs_gs (hv : Hypervisor.t) ~(enh : Enhancement.set) =
  restore_fs_gs_vcpus hv ~enh (Hypervisor.all_vcpus hv)

(* Acknowledge all pending and in-service interrupts so stale interrupt
   state cannot block future delivery (shared ReHype mechanism). *)
let ack_interrupts (hv : Hypervisor.t) =
  Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c -> Hw.Apic.ack_all c.Hw.Cpu.apic)

(* Release all heap-resident locks (ReHype mechanism reused by
   NiLiHype). *)
let release_heap_locks (hv : Hypervisor.t) = Heap.release_locks hv.Hypervisor.heap

(* Reprogram each CPU's APIC one-shot timer from the software timer
   heap, closing the fired-but-not-reprogrammed window. *)
let reprogram_apic_timers (hv : Hypervisor.t) =
  let now = Sim.Clock.now hv.Hypervisor.clock in
  let deadline =
    match Timer_heap.next_deadline hv.Hypervisor.timers with
    | Some d -> max d (now + Sim.Time.us 10)
    | None -> now + Sim.Time.ms 10
  in
  Hw.Machine.iter_cpus hv.Hypervisor.machine (fun c ->
      Hw.Apic.program_timer c.Hw.Cpu.apic ~deadline)
