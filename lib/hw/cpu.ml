(** Physical CPU model: a register file, interrupt-enable state, the
    hypervisor stack cursor and the local APIC. *)

type exec_state =
  | Running (* executing guest or hypervisor code *)
  | Halted (* parked (ReHype parks all but one CPU during recovery) *)
  | Spinning of string (* stuck on a named resource; watchdog-visible *)
  | Busy_wait (* NiLiHype recovery rendezvous *)

type t = {
  id : int;
  regs : Regs.t;
  apic : Apic.t;
  mutable irq_enabled : bool;
  mutable state : exec_state;
  mutable in_hypervisor : bool;
  mutable hv_stack_depth : int;
      (* nesting of hypervisor frames; "discarding the stack" resets it *)
  mutable unhalted_cycles : int;
  mutable fsgs_saved : (int64 * int64) option;
      (* set on hypervisor entry when the Save-FS/GS fix is enabled *)
}

let create id =
  {
    id;
    regs = Regs.create ();
    apic = Apic.create id;
    irq_enabled = true;
    state = Running;
    in_hypervisor = false;
    hv_stack_depth = 0;
    unhalted_cycles = 0;
    fsgs_saved = None;
  }

(* Restore the exact state [create] produces, reusing the record. *)
let reset t =
  Regs.reset t.regs;
  Apic.reset t.apic;
  t.irq_enabled <- true;
  t.state <- Running;
  t.in_hypervisor <- false;
  t.hv_stack_depth <- 0;
  t.unhalted_cycles <- 0;
  t.fsgs_saved <- None

let disable_interrupts t = t.irq_enabled <- false
let enable_interrupts t = t.irq_enabled <- true

let charge_cycles t n = t.unhalted_cycles <- t.unhalted_cycles + n

(* Microreset: discard this CPU's hypervisor execution thread by resetting
   the stack pointer to the top of the per-CPU hypervisor stack. *)
let discard_hypervisor_stack t =
  t.hv_stack_depth <- 0;
  t.in_hypervisor <- false;
  Regs.set t.regs Regs.RSP 0x8000L

let is_stuck t = match t.state with Spinning _ -> true | _ -> false
