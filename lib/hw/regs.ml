(** x86-64 register file model.

    The fault injector flips bits here (Register faults) and the recovery
    enhancements save/restore FS/GS, so the register set mirrors the one
    Gigan targets: the 16 general-purpose registers, the stack pointer
    (part of the GPRs as RSP), the flags register and the program counter,
    plus the FS/GS segment bases that Xen on x86-64 does not save. *)

type reg =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15
  | RFLAGS
  | RIP
  | FS
  | GS

let all_regs =
  [|
    RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15;
    RFLAGS; RIP; FS; GS;
  |]

(* The registers Gigan draws from for Register faults: 16 GPRs (includes
   RSP), RFLAGS and RIP -- not FS/GS. *)
let injectable_regs =
  [|
    RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15;
    RFLAGS; RIP;
  |]

let index = function
  | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3
  | RSI -> 4 | RDI -> 5 | RBP -> 6 | RSP -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15
  | RFLAGS -> 16 | RIP -> 17 | FS -> 18 | GS -> 19

let name = function
  | RAX -> "rax" | RBX -> "rbx" | RCX -> "rcx" | RDX -> "rdx"
  | RSI -> "rsi" | RDI -> "rdi" | RBP -> "rbp" | RSP -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"
  | RFLAGS -> "rflags" | RIP -> "rip" | FS -> "fs" | GS -> "gs"

type t = { values : int64 array }

let count = Array.length all_regs

let create () = { values = Array.make count 0L }

let get t r = t.values.(index r)
let set t r v = t.values.(index r) <- v

let flip_bit t r bit =
  let v = get t r in
  set t r (Int64.logxor v (Int64.shift_left 1L bit))

(* Zero the whole file in place, as [create] would. *)
let reset t = Array.fill t.values 0 count 0L

let copy t = { values = Array.copy t.values }

let restore ~from t = Array.blit from.values 0 t.values 0 count

let equal a b = a.values = b.values

let pp fmt t =
  Array.iter
    (fun r -> Format.fprintf fmt "%s=%Lx " (name r) (get t r))
    all_regs
