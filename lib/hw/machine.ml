(** The physical machine: CPUs, IO-APIC, physical memory geometry and the
    TSC. Mirrors the paper's testbed: 8-core Nehalem, 8 GB RAM. *)

type config = {
  num_cpus : int;
  mem_bytes : int;
  ioapic_lines : int;
}

let page_size = 4096

let default_config =
  { num_cpus = 8; mem_bytes = 8 * 1024 * 1024 * 1024; ioapic_lines = 24 }

(* Campaigns use a scaled-down memory so that per-run page-frame scans stay
   cheap; recovery-latency accounting is analytic in the frame count, so the
   reported latencies still correspond to the configured geometry. *)
let campaign_config =
  { default_config with mem_bytes = 256 * 1024 * 1024 }

type t = {
  config : config;
  cpus : Cpu.t array;
  ioapic : Ioapic.t;
  clock : Sim.Clock.t;
  mutable tsc_calibrated : bool;
}

let create ?(config = default_config) clock =
  {
    config;
    cpus = Array.init config.num_cpus Cpu.create;
    ioapic = Ioapic.create ~lines:config.ioapic_lines;
    clock;
    tsc_calibrated = true;
  }

let num_cpus t = t.config.num_cpus
let num_frames t = t.config.mem_bytes / page_size
let cpu t i = t.cpus.(i)
let read_tsc t = Sim.Clock.now t.clock

let iter_cpus t f = Array.iter f t.cpus

(* Reset every hardware component to its created state so the machine can
   be reused for another run without reallocating. Distinct from
   [reset_for_reboot] below, which models what a ReHype reboot does to the
   hardware (and e.g. leaves the TSC uncalibrated). *)
let reset t =
  Array.iter Cpu.reset t.cpus;
  Ioapic.reset t.ioapic;
  t.tsc_calibrated <- true

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* Golden image of all mutable hardware state, taken once per snapshot
   and written back in place on restore. Hardware state is small and
   constant-size (a few hundred words for 8 CPUs), so unlike the page
   frame table it is captured whole rather than copy-on-write: the
   capture itself is O(cpus), not O(memory). APIC vector lists and the
   IO-APIC write log have immutable spines, so capturing the list heads
   by value is enough. *)
type cpu_image = {
  im_regs : Regs.t;
  im_timer_deadline : Sim.Time.ns option;
  im_pending : int list;
  im_in_service : int list;
  im_ipi_pending : bool;
  im_nmi_pending : bool;
  im_irq_enabled : bool;
  im_state : Cpu.exec_state;
  im_in_hypervisor : bool;
  im_hv_stack_depth : int;
  im_unhalted_cycles : int;
  im_fsgs_saved : (int64 * int64) option;
}

type image = {
  im_cpus : cpu_image array;
  im_ioapic : (int * int * bool) array; (* (vector, dest_cpu, masked) *)
  im_ioapic_log : (int * int * int * bool) list;
  im_ioapic_logging : bool;
  im_tsc_calibrated : bool;
}

let snapshot t =
  {
    im_cpus =
      Array.map
        (fun (c : Cpu.t) ->
          let a = c.Cpu.apic in
          {
            im_regs = Regs.copy c.Cpu.regs;
            im_timer_deadline = a.Apic.timer_deadline;
            im_pending = a.Apic.pending;
            im_in_service = a.Apic.in_service;
            im_ipi_pending = a.Apic.ipi_pending;
            im_nmi_pending = a.Apic.nmi_pending;
            im_irq_enabled = c.Cpu.irq_enabled;
            im_state = c.Cpu.state;
            im_in_hypervisor = c.Cpu.in_hypervisor;
            im_hv_stack_depth = c.Cpu.hv_stack_depth;
            im_unhalted_cycles = c.Cpu.unhalted_cycles;
            im_fsgs_saved = c.Cpu.fsgs_saved;
          })
        t.cpus;
    im_ioapic =
      Array.map
        (fun (e : Ioapic.entry) -> (e.Ioapic.vector, e.Ioapic.dest_cpu, e.Ioapic.masked))
        t.ioapic.Ioapic.entries;
    im_ioapic_log = t.ioapic.Ioapic.write_log;
    im_ioapic_logging = t.ioapic.Ioapic.logging;
    im_tsc_calibrated = t.tsc_calibrated;
  }

let restore t (im : image) =
  Array.iteri
    (fun i (c : Cpu.t) ->
      let s = im.im_cpus.(i) in
      let a = c.Cpu.apic in
      Regs.restore ~from:s.im_regs c.Cpu.regs;
      a.Apic.timer_deadline <- s.im_timer_deadline;
      a.Apic.pending <- s.im_pending;
      a.Apic.in_service <- s.im_in_service;
      a.Apic.ipi_pending <- s.im_ipi_pending;
      a.Apic.nmi_pending <- s.im_nmi_pending;
      c.Cpu.irq_enabled <- s.im_irq_enabled;
      c.Cpu.state <- s.im_state;
      c.Cpu.in_hypervisor <- s.im_in_hypervisor;
      c.Cpu.hv_stack_depth <- s.im_hv_stack_depth;
      c.Cpu.unhalted_cycles <- s.im_unhalted_cycles;
      c.Cpu.fsgs_saved <- s.im_fsgs_saved)
    t.cpus;
  Array.iteri
    (fun i (e : Ioapic.entry) ->
      let vector, dest_cpu, masked = im.im_ioapic.(i) in
      e.Ioapic.vector <- vector;
      e.Ioapic.dest_cpu <- dest_cpu;
      e.Ioapic.masked <- masked)
    t.ioapic.Ioapic.entries;
  t.ioapic.Ioapic.write_log <- im.im_ioapic_log;
  t.ioapic.Ioapic.logging <- im.im_ioapic_logging;
  t.tsc_calibrated <- im.im_tsc_calibrated

(* ReHype reboot model: parks the hardware back at power-on-like state. *)
let reset_for_reboot t =
  Array.iter
    (fun (c : Cpu.t) ->
      c.Cpu.state <- Cpu.Halted;
      c.Cpu.irq_enabled <- false;
      Apic.ack_all c.Cpu.apic;
      Apic.disarm_timer c.Cpu.apic)
    t.cpus;
  Ioapic.reset_to_power_on t.ioapic;
  t.tsc_calibrated <- false
