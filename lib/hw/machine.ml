(** The physical machine: CPUs, IO-APIC, physical memory geometry and the
    TSC. Mirrors the paper's testbed: 8-core Nehalem, 8 GB RAM. *)

type config = {
  num_cpus : int;
  mem_bytes : int;
  ioapic_lines : int;
}

let page_size = 4096

let default_config =
  { num_cpus = 8; mem_bytes = 8 * 1024 * 1024 * 1024; ioapic_lines = 24 }

(* Campaigns use a scaled-down memory so that per-run page-frame scans stay
   cheap; recovery-latency accounting is analytic in the frame count, so the
   reported latencies still correspond to the configured geometry. *)
let campaign_config =
  { default_config with mem_bytes = 256 * 1024 * 1024 }

type t = {
  config : config;
  cpus : Cpu.t array;
  ioapic : Ioapic.t;
  clock : Sim.Clock.t;
  mutable tsc_calibrated : bool;
}

let create ?(config = default_config) clock =
  {
    config;
    cpus = Array.init config.num_cpus Cpu.create;
    ioapic = Ioapic.create ~lines:config.ioapic_lines;
    clock;
    tsc_calibrated = true;
  }

let num_cpus t = t.config.num_cpus
let num_frames t = t.config.mem_bytes / page_size
let cpu t i = t.cpus.(i)
let read_tsc t = Sim.Clock.now t.clock

let iter_cpus t f = Array.iter f t.cpus

(* Reset every hardware component to its created state so the machine can
   be reused for another run without reallocating. Distinct from
   [reset_for_reboot] below, which models what a ReHype reboot does to the
   hardware (and e.g. leaves the TSC uncalibrated). *)
let reset t =
  Array.iter Cpu.reset t.cpus;
  Ioapic.reset t.ioapic;
  t.tsc_calibrated <- true

(* ReHype reboot model: parks the hardware back at power-on-like state. *)
let reset_for_reboot t =
  Array.iter
    (fun (c : Cpu.t) ->
      c.Cpu.state <- Cpu.Halted;
      c.Cpu.irq_enabled <- false;
      Apic.ack_all c.Cpu.apic;
      Apic.disarm_timer c.Cpu.apic)
    t.cpus;
  Ioapic.reset_to_power_on t.ioapic;
  t.tsc_calibrated <- false
