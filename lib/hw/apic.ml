(** Per-CPU local APIC model.

    Only the parts NiLiHype's recovery interacts with are modelled: the
    one-shot timer (which Xen reprograms from the software timer heap on
    every fire -- the window the "reprogram hardware timer" enhancement
    closes) and the interrupt state (pending / in-service vectors that
    the shared "acknowledge interrupts" mechanism clears). *)

type t = {
  cpu : int;
  mutable timer_deadline : Sim.Time.ns option;
      (* [None] means the one-shot timer is not armed: without recovery
         intervention it will never fire again. *)
  mutable pending : int list; (* vectors raised but not yet serviced *)
  mutable in_service : int list; (* vectors being serviced, not EOI'd *)
  mutable ipi_pending : bool;
  mutable nmi_pending : bool;
}

let create cpu =
  {
    cpu;
    timer_deadline = None;
    pending = [];
    in_service = [];
    ipi_pending = false;
    nmi_pending = false;
  }

(* Restore the exact state [create] produces, reusing the record. *)
let reset t =
  t.timer_deadline <- None;
  t.pending <- [];
  t.in_service <- [];
  t.ipi_pending <- false;
  t.nmi_pending <- false

let program_timer t ~deadline = t.timer_deadline <- Some deadline

let disarm_timer t = t.timer_deadline <- None

let timer_armed t = t.timer_deadline <> None

(* Returns [true] when the deadline has passed; the timer is one-shot so
   firing disarms it -- exactly the hazard the paper describes. *)
let timer_fire_check t ~now =
  match t.timer_deadline with
  | Some d when d <= now ->
    t.timer_deadline <- None;
    true
  | Some _ | None -> false

let raise_vector t v = if not (List.mem v t.pending) then t.pending <- v :: t.pending

let begin_service t v =
  t.pending <- List.filter (fun x -> x <> v) t.pending;
  if not (List.mem v t.in_service) then t.in_service <- v :: t.in_service

let eoi t v = t.in_service <- List.filter (fun x -> x <> v) t.in_service

(* Recovery: acknowledge everything pending and in service so stale
   interrupt state cannot block future delivery. *)
let ack_all t =
  t.pending <- [];
  t.in_service <- [];
  t.ipi_pending <- false;
  t.nmi_pending <- false

let send_ipi t = t.ipi_pending <- true
let consume_ipi t =
  let was = t.ipi_pending in
  t.ipi_pending <- false;
  was

let quiescent t =
  t.pending = [] && t.in_service = [] && (not t.ipi_pending)
  && not t.nmi_pending
