(** IO-APIC model: a redirection table mapping device IRQ lines to CPU
    vectors.

    ReHype's reboot re-initialises these registers, so during normal
    operation it must log every write in order to restore the pre-failure
    routing afterwards (one of the two loggings NiLiHype does not need,
    cf. Table IV discussion). *)

type entry = { mutable vector : int; mutable dest_cpu : int; mutable masked : bool }

type t = {
  entries : entry array;
  mutable write_log : (int * int * int * bool) list;
      (* (line, vector, dest, masked) writes recorded when logging is on *)
  mutable logging : bool;
}

let lines t = Array.length t.entries

let create ~lines =
  {
    entries =
      Array.init lines (fun _ -> { vector = 0; dest_cpu = 0; masked = true });
    write_log = [];
    logging = false;
  }

let set_logging t on = t.logging <- on

(* Full reset for machine reuse: entries back to power-on defaults AND the
   write log / logging flag cleared, matching a freshly created IO-APIC.
   Distinct from [reset_to_power_on], which models the hardware side of a
   ReHype reboot and deliberately preserves the log for replay. *)
let reset t =
  Array.iter
    (fun e ->
      e.vector <- 0;
      e.dest_cpu <- 0;
      e.masked <- true)
    t.entries;
  t.write_log <- [];
  t.logging <- false

let write t ~line ~vector ~dest_cpu ~masked =
  let e = t.entries.(line) in
  e.vector <- vector;
  e.dest_cpu <- dest_cpu;
  e.masked <- masked;
  if t.logging then t.write_log <- (line, vector, dest_cpu, masked) :: t.write_log

let read t ~line =
  let e = t.entries.(line) in
  (e.vector, e.dest_cpu, e.masked)

(* Model of the reboot's hardware re-initialisation: routing is lost. *)
let reset_to_power_on t =
  Array.iter
    (fun e ->
      e.vector <- 0;
      e.dest_cpu <- 0;
      e.masked <- true)
    t.entries

(* Replay the logged writes after a reboot, oldest first. *)
let replay_log t =
  List.iter
    (fun (line, vector, dest_cpu, masked) ->
      let e = t.entries.(line) in
      e.vector <- vector;
      e.dest_cpu <- dest_cpu;
      e.masked <- masked)
    (List.rev t.write_log)

let routing_valid t =
  Array.exists (fun e -> not e.masked) t.entries
