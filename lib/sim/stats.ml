(** Statistics helpers used to report campaign results with the same
    95% confidence intervals the paper quotes. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let z_95 = 1.959964

(* Normal-approximation half-width of the 95% CI for a proportion, the
   convention used in the paper's "rate +/- x%" figures. *)
let proportion_ci_half ~successes ~trials =
  if trials <= 0 then nan
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    z_95 *. sqrt (p *. (1.0 -. p) /. n)
  end

(* Wilson score interval: better behaved near 0% and 100%. *)
let wilson_interval ~successes ~trials =
  if trials <= 0 then (nan, nan)
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z = z_95 in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
    in
    (max 0.0 (centre -. half), min 1.0 (centre +. half))
  end

let mean_ci_half xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ -> z_95 *. stddev xs /. sqrt (float_of_int (List.length xs))

(* String-keyed occurrence counters, used for campaign failure notes.
   Accumulation and merging are O(1) amortised per key; [sorted] gives a
   canonical (key-ordered) view so aggregates are comparable regardless
   of the order in which counts were accumulated or merged. *)
module Counts = struct
  type t = (string, int) Hashtbl.t

  let create ?(size = 16) () : t = Hashtbl.create size

  let add ?(by = 1) (t : t) key =
    match Hashtbl.find_opt t key with
    | Some c -> Hashtbl.replace t key (c + by)
    | None -> Hashtbl.add t key by

  (* Commutative, associative merge: [into] absorbs every count of
     [src]. *)
  let merge_into ~into (src : t) =
    Hashtbl.iter (fun k v -> add ~by:v into k) src

  let sorted (t : t) =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let total (t : t) = Hashtbl.fold (fun _ v acc -> acc + v) t 0

  let of_list l =
    let t = create () in
    List.iter (fun (k, v) -> add ~by:v t k) l;
    t
end

(* Mean of an integer sum without integer truncation; [None] when there
   are no samples. Keeping (sum, samples) instead of a running mean is
   what makes campaign aggregates mergeable exactly. *)
let mean_of_sum ~sum ~samples =
  if samples <= 0 then None
  else Some (float_of_int sum /. float_of_int samples)

type proportion = { successes : int; trials : int }

let proportion ~successes ~trials = { successes; trials }

let rate p =
  if p.trials = 0 then nan
  else float_of_int p.successes /. float_of_int p.trials

let pp_proportion fmt p =
  let half = proportion_ci_half ~successes:p.successes ~trials:p.trials in
  Format.fprintf fmt "%.1f%% +/- %.1f%%" (100.0 *. rate p) (100.0 *. half)
