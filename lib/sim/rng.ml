(* splitmix64, computed on two 32-bit limbs held in native ints.

   The reference implementation is the obvious one over [Int64], but
   without flambda every [Int64] operation allocates a 3-word box, which
   made the generator the single largest allocator in the injection hot
   loop (~10 boxed temporaries per draw). The limb form keeps the whole
   state step in untagged native-int arithmetic: 16-bit partial products
   stay below 2^32 and their accumulated sums below 2^34, so nothing
   overflows the 63-bit native int. The mixed output limbs are written
   into the generator's own scratch fields ([out_hi]/[out_lo]) rather
   than returned as a tuple or through a continuation, both of which
   would allocate; a generator is owned by exactly one domain, so the
   scratch is race-free. [int] and [bool] allocate nothing at all,
   [float] only its boxed return.

   Stream compatibility with the Int64 reference is bit-exact and
   guarded by a test (test_sim: "limb arithmetic matches Int64
   reference"). *)

type t = {
  mutable hi : int; (* state, upper 32 bits *)
  mutable lo : int; (* state, lower 32 bits *)
  mutable out_hi : int; (* last mixed output, upper 32 bits *)
  mutable out_lo : int; (* last mixed output, lower 32 bits *)
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

let create seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32);
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    out_hi = 0;
    out_lo = 0;
  }

let copy t = { hi = t.hi; lo = t.lo; out_hi = 0; out_lo = 0 }

(* Rewind an existing generator to a new seed: [reseed t s] makes [t]
   produce exactly the stream of [create s] without allocating. *)
let reseed t seed =
  t.hi <- Int64.to_int (Int64.shift_right_logical seed 32);
  t.lo <- Int64.to_int (Int64.logand seed 0xFFFFFFFFL)

(* Capture the current stream position as a seed value: [reseed t (save t)]
   is the identity, and [create (save t)] clones the remaining stream.
   Together with [reseed] this is the snapshot/restore pair -- one boxed
   Int64 per save, nothing per restore. *)
let save t =
  Int64.logor
    (Int64.shift_left (Int64.of_int t.hi) 32)
    (Int64.of_int t.lo)

(* (hi, lo) * C mod 2^64, where C is given as four 16-bit digits
   (b0 least significant); result into out_hi/out_lo. Six 32x16-bit
   partial products (each < 2^48, sums < 2^51, so nothing overflows the
   63-bit native int) instead of the ten 16x16 products of the obvious
   schoolbook form: the upper half only ever needs the cross terms mod
   2^32, so the high-digit products can take whole 32-bit limbs. Output
   is bit-identical to the full schoolbook product (guarded by the
   Int64-reference test in test_sim). *)
let mul_into t hi lo b0 b1 b2 b3 =
  let m0 = lo * b0 in
  let m1 = lo * b1 in
  let lo_acc = m0 + ((m1 land 0xFFFF) lsl 16) in
  let hi_acc =
    (lo_acc lsr 32) + (m1 lsr 16) + (lo * b2)
    + (((lo land 0xFFFF) * b3) lsl 16)
    + (hi * b0)
    + (((hi land 0xFFFF) * b1) lsl 16)
  in
  t.out_hi <- hi_acc land mask32;
  t.out_lo <- lo_acc land mask32

(* splitmix64 step: advance state by the golden gamma, then mix
     z ^= z >>> 30; z *= 0xBF58476D1CE4E5B9;
     z ^= z >>> 27; z *= 0x94D049BB133111EB;
     z ^= z >>> 31
   leaving the result in out_hi/out_lo. *)
let next t =
  let lo_acc = t.lo + gamma_lo in
  let lo = lo_acc land mask32 in
  let hi = (t.hi + gamma_hi + (lo_acc lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30 *)
  let xlo = lo lxor (((hi lsl 2) lor (lo lsr 30)) land mask32) in
  let xhi = hi lxor (hi lsr 30) in
  mul_into t xhi xlo 0xE5B9 0x1CE4 0x476D 0xBF58;
  (* z ^= z >>> 27 *)
  let hi = t.out_hi and lo = t.out_lo in
  let xlo = lo lxor (((hi lsl 5) lor (lo lsr 27)) land mask32) in
  let xhi = hi lxor (hi lsr 27) in
  mul_into t xhi xlo 0x11EB 0x1331 0x49BB 0x94D0;
  (* z ^= z >>> 31 *)
  let hi = t.out_hi and lo = t.out_lo in
  t.out_lo <- lo lxor (((hi lsl 1) lor (lo lsr 31)) land mask32);
  t.out_hi <- hi lxor (hi lsr 31)

let int64 t =
  next t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t = create (int64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is negligible for the bounds used here (<= 2^30). The
     62-bit truncation mirrors the Int64 reference's 0x3FFF... mask. *)
  next t;
  (((t.out_hi land 0x3FFFFFFF) lsl 32) lor t.out_lo) mod n

let float t x =
  (* The top 53 bits (the >>> 11 of the reference) are exact in a float. *)
  next t;
  let v = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  x *. (float_of_int v /. 9007199254740992.0 (* 2^53 *))

let bool t =
  next t;
  t.out_lo land 1 = 1

let bit64 t = int t 64

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t weights =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: no positive weight";
  let target = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest ->
      let acc = acc +. w in
      if target < acc then x else go acc rest
  in
  go 0.0 weights

(* Hot-path form of [choose_weighted]: the caller precomputes the
   cumulative partial sums (cum.(i) = w0 +. ... +. wi, in list order)
   once and samples indices with no per-draw traversal of a boxed-float
   list. Same single [float] draw against the same total and the same
   strict [target < cum.(i)] boundary (with last-element fallback), so
   the selected index -- and the RNG stream -- match [choose_weighted]
   over the originating list exactly. *)
let choose_index_cum t cum =
  let n = Array.length cum in
  if n = 0 then invalid_arg "Rng.choose_index_cum: empty array";
  let total = cum.(n - 1) in
  if total <= 0.0 then invalid_arg "Rng.choose_index_cum: no positive weight";
  let target = float t total in
  let i = ref 0 in
  while !i < n - 1 && target >= cum.(!i) do
    incr i
  done;
  !i

(* Cumulative sums of a weight list, for [choose_index_cum]. Summed in
   list order so the partial sums match [choose_weighted]'s bit for bit. *)
let cumulative weights =
  let n = List.length weights in
  if n = 0 then invalid_arg "Rng.cumulative: empty list";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  List.iteri
    (fun i (w, _) ->
      acc := !acc +. w;
      cum.(i) <- !acc)
    weights;
  cum

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
