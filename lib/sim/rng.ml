type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* Rewind an existing generator to a new seed: [reseed t s] makes [t]
   produce exactly the stream of [create s] without allocating. *)
let reseed t seed = t.state <- seed

(* splitmix64 step: advance state by the golden gamma and mix. *)
let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is negligible for the bounds used here (<= 2^30). *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let bit64 t = int t 64

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t weights =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: no positive weight";
  let target = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest ->
      let acc = acc +. w in
      if target < acc then x else go acc rest
  in
  go 0.0 weights

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
