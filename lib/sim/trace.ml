(** Bounded in-memory trace of simulator events, for debugging runs and
    for inspecting what a failed recovery did. *)

type level = Debug | Info | Warn | Error

type entry = { time : Time.ns; level : level; message : string }

type t = {
  entries : entry array;
  mutable size : int;
  mutable head : int;
  capacity : int;
  mutable min_level : level;
}

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let dummy = { time = 0; level = Debug; message = "" }

(* The ring is allocated eagerly so the first recorded event pays no
   allocation and [record] stays branch-free on the storage. *)
let create ?(capacity = 4096) ?(min_level = Info) () =
  let capacity = max 1 capacity in
  { entries = Array.make capacity dummy; size = 0; head = 0; capacity; min_level }

let set_min_level t level = t.min_level <- level

let clear t =
  t.size <- 0;
  t.head <- 0;
  Array.fill t.entries 0 t.capacity dummy

let record t ~time level message =
  if level_rank level >= level_rank t.min_level then begin
    t.entries.(t.head) <- { time; level; message };
    t.head <- (t.head + 1) mod t.capacity;
    if t.size < t.capacity then t.size <- t.size + 1
  end

let to_list t =
  let result = ref [] in
  for i = 0 to t.size - 1 do
    let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
    result := t.entries.(idx) :: !result
  done;
  !result

let pp_level fmt = function
  | Debug -> Format.pp_print_string fmt "DEBUG"
  | Info -> Format.pp_print_string fmt "INFO"
  | Warn -> Format.pp_print_string fmt "WARN"
  | Error -> Format.pp_print_string fmt "ERROR"

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "[%a] %a %s@." Time.pp e.time pp_level e.level
        e.message)
    (to_list t)
