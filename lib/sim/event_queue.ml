(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion sequence so execution order is
    deterministic. Events may be cancelled through their handle. *)

type 'a entry = {
  time : Time.ns;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry option ref;
}

type 'a handle = 'a entry

let create () = { heap = [||]; size = 0; next_seq = 0; dummy = ref None }

let length t = t.size
let is_empty t = t.size = 0

(* Drop every entry (cancelled or not) but keep the backing array, so a
   reused queue behaves exactly like a fresh one without reallocating. *)
let clear t =
  t.size <- 0;
  t.next_seq <- 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (cap * 2) in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  entry

let cancel handle = handle.cancelled <- true
let is_cancelled handle = handle.cancelled

let rec pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    if top.cancelled then pop t else Some (top.time, top.payload)
  end

let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).cancelled then begin
    (* Drop cancelled entries lazily. *)
    ignore (pop t);
    peek_time t
  end
  else Some t.heap.(0).time
