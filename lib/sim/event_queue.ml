(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion sequence so execution order is
    deterministic. Events may be cancelled through their handle.

    Entries are recycled: a popped (or cleared-away) entry is parked in
    the vacated heap slot and the next [push] reuses it in place of a
    fresh allocation, so a queue that is cleared and refilled every run
    -- the campaign engine's reuse pattern -- allocates entries only
    until its high-water mark. The observable behaviour (pop order, seq
    numbering, cancellation) is identical to a fresh queue; the
    fresh-vs-reused equivalence test in test_sim guards this. A parked
    entry keeps its last payload reachable until overwritten, and a
    handle must not be cancelled after its event already popped (it
    could name a recycled entry) -- both fine for the simulator's
    schedule-then-drain usage. *)

type 'a entry = {
  mutable time : Time.ns;
  mutable seq : int;
  mutable payload : 'a;
  mutable cancelled : bool;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable parked : int;
      (* slots [0, parked) of [heap] hold real (possibly dead) entries;
         slots [size, parked) are dead ones [push] may recycle. Never
         past the last explicitly-written slot, so the duplicate filler
         references [Array.make] leaves in a grown array are never
         mistaken for recyclable entries. *)
}

type 'a handle = 'a entry

let create () = { heap = [||]; size = 0; next_seq = 0; parked = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Drop every entry (cancelled or not) but keep the backing array and
   the parked entries, so a reused queue behaves exactly like a fresh
   one without reallocating. *)
let clear t =
  t.size <- 0;
  t.next_seq <- 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let slot = t.size in
  let entry =
    if slot < t.parked then begin
      (* Recycle the dead entry parked in the vacated slot. *)
      let e = t.heap.(slot) in
      e.time <- time;
      e.seq <- seq;
      e.payload <- payload;
      e.cancelled <- false;
      e
    end
    else begin
      let e = { time; seq; payload; cancelled = false } in
      if slot = Array.length t.heap then begin
        let ncap = max 16 (slot * 2) in
        let nheap = Array.make ncap e in
        Array.blit t.heap 0 nheap 0 slot;
        t.heap <- nheap
      end;
      t.heap.(slot) <- e;
      t.parked <- slot + 1;
      e
    end
  in
  t.size <- slot + 1;
  sift_up t slot;
  entry

let cancel handle = handle.cancelled <- true
let is_cancelled handle = handle.cancelled

let rec pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      t.heap.(0) <- t.heap.(last);
      (* Park the popped entry in the vacated slot (instead of leaving an
         alias of the entry just moved to the root) so [push] can recycle
         it. *)
      t.heap.(last) <- top;
      sift_down t 0
    end;
    if top.cancelled then pop t else Some (top.time, top.payload)
  end

let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).cancelled then begin
    (* Drop cancelled entries lazily. *)
    ignore (pop t);
    peek_time t
  end
  else Some t.heap.(0).time
