(** Virtual clock driven by the event engine. *)

type t = { mutable now : Time.ns }

let create () = { now = 0 }
let now t = t.now

(* Rewind to the epoch for machine reuse: a reset clock is
   indistinguishable from a freshly created one. *)
let reset t = t.now <- 0

let advance_to t target =
  if target < t.now then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: time goes backwards (%d < %d)" target
         t.now);
  t.now <- target

let advance_by t delta =
  if delta < 0 then invalid_arg "Clock.advance_by: negative delta";
  t.now <- t.now + delta
