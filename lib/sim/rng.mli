(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit
    [Rng.t] so that campaigns are exactly reproducible from their seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current position. *)

val reseed : t -> int64 -> unit
(** [reseed t seed] rewinds [t] to the start of [seed]'s stream, exactly
    as if it had been created with [create seed]. Lets long-lived
    workers reuse one generator across runs without allocating. *)

val save : t -> int64
(** Capture the current stream position: [reseed t (save t)] is the
    identity, so [save]/[reseed] snapshot and restore a generator
    without touching its remaining stream. *)

val split : t -> t
(** Derive a statistically independent child generator, advancing the
    parent by one step. Used to give each subsystem its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform over [0, n). Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform over [0, x). *)

val bool : t -> bool

val bit64 : t -> int
(** Uniform bit position in [0, 64). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** Sample according to the given non-negative weights (need not be
    normalised). Raises [Invalid_argument] on an empty or all-zero list. *)

val choose_index_cum : t -> float array -> int
(** [choose_index_cum t cum] samples an index given the cumulative
    partial sums of a weight list ([cum.(i) = w0 +. ... +. wi]).
    Draw-for-draw and bit-for-bit equivalent to [choose_weighted] over
    the originating list, without its per-draw list traversal; hot paths
    precompute [cum] once with {!cumulative}. *)

val cumulative : (float * 'a) list -> float array
(** Cumulative partial sums of the weights, in list order, for
    {!choose_index_cum}. Raises [Invalid_argument] on an empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
