(** Simulated time, measured in integer nanoseconds.

    63-bit nanoseconds cover ~292 years of simulated time, far beyond any
    campaign. All durations in the code base are expressed through the
    constructors below so that units are explicit at call sites. *)

type ns = int

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let to_us n = float_of_int n /. 1e3
let to_ms n = float_of_int n /. 1e6
let to_s n = float_of_int n /. 1e9

let pp_ms fmt n = Format.fprintf fmt "%.3fms" (to_ms n)

(* Pretty-print a duration held as float nanoseconds (e.g. a mean over
   integer samples, which need not be a whole number of ns). *)
let pp_float fmt n =
  if n >= 1e9 then Format.fprintf fmt "%.3fs" (n /. 1e9)
  else if n >= 1e6 then Format.fprintf fmt "%.3fms" (n /. 1e6)
  else if n >= 1e3 then Format.fprintf fmt "%.3fus" (n /. 1e3)
  else Format.fprintf fmt "%.1fns" n
let pp fmt n =
  if n >= s 1 then Format.fprintf fmt "%.3fs" (to_s n)
  else if n >= ms 1 then Format.fprintf fmt "%.3fms" (to_ms n)
  else if n >= us 1 then Format.fprintf fmt "%.3fus" (to_us n)
  else Format.fprintf fmt "%dns" n
