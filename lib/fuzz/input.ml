(** The fuzzer's input space and its mutation encoding.

    A fault-space *point* pins every axis a run's outcome depends on:
    the warmup seed, the fault kind, the corruption target, the payload
    bits steering the corruption's internal choices, the crash mode and
    the trigger offset within the window. A corpus entry is not a point
    but a [(base seed, mutation trace)] pair: the trace is a list of
    small integer op codes folded over the base point, so replaying the
    trace on the same base seed reconstructs the identical point -- and,
    because a directed run is a pure function of its point (see
    {!Inject.Fault.directive}), the identical run.

    Op codes are capped at 48 bits so they survive the JSON round trip
    exactly (the hand-rolled parser reads numbers as floats; 48 < 53).
    The decode is total -- every 48-bit integer is a valid op -- which
    keeps mutation trivial: append random integers. *)

type point = {
  p_seed : int64; (* warmup seed; drawn from a small pool near the base *)
  p_kind : Inject.Fault.t;
  p_target : int; (* index into {!Inject.Corrupt.all}; -1 = crash only *)
  p_payload : int64; (* seeds the corruption's private rng stream *)
  p_crash : int; (* 0 = none, 1 = panic, 2 = hang *)
  p_window : int; (* trigger offset, folded mod the window by arm_fault *)
  p_incremental : bool; (* dirty-list consistency scan on recovery *)
}

(* Matches [Run.default_config.trigger_window_steps]; window ops wrap
   here so the stored offset is already canonical. *)
let window_span = 2000

(* Warmup seeds come from a bounded pool so mutants of different traces
   still land on a handful of distinct seeds -- which is what lets the
   scheduler group candidates by seed and clone one warmup across a
   whole group. *)
let seed_pool = 64

let n_kinds = List.length Inject.Fault.all

let base_point ~base_seed =
  {
    p_seed = base_seed;
    p_kind = Inject.Fault.Failstop;
    p_target = -1;
    p_payload = 0L;
    p_crash = 1;
    p_window = 0;
    p_incremental = false;
  }

let op_bits = 48
let op_space = 1 lsl op_bits

(* One op: tag in the low 3 bits, argument in the rest. *)
let apply_op ~base_seed p code =
  let tag = code land 7 in
  let arg = code lsr 3 in
  match tag with
  | 0 -> { p with p_seed = Int64.add base_seed (Int64.of_int (arg mod seed_pool)) }
  | 1 -> { p with p_kind = List.nth Inject.Fault.all (arg mod n_kinds) }
  | 2 -> { p with p_target = (arg mod (Inject.Corrupt.n_targets + 1)) - 1 }
  | 3 -> { p with p_payload = Int64.logxor p.p_payload (Int64.of_int arg) }
  (* Tag 4 packs two axes: the crash mode in the low arg bits and the
     recovery path (incremental vs full consistency scan) in bit 2, so
     the fuzzer explores both scan paths without widening the 3-bit tag
     space (which would re-encode every stored trace). *)
  | 4 ->
    {
      p with
      p_crash = arg mod 3;
      p_incremental = (arg lsr 2) land 1 = 1;
    }
  | 5 -> { p with p_window = arg mod window_span }
  | 6 -> { p with p_window = (p.p_window + 1 + (arg mod 31)) mod window_span }
  | _ -> { p with p_payload = Int64.add p.p_payload (Int64.of_int (1 + (arg mod 255))) }

let apply ~base_seed trace =
  List.fold_left (fun p c -> apply_op ~base_seed p c) (base_point ~base_seed) trace

(* Append 1-3 random ops: the whole mutation operator. Every op code is
   valid, so mutation never needs to understand the point it mutates. *)
let mutate rng trace =
  let extra = 1 + Sim.Rng.int rng 3 in
  let rec add acc n =
    if n = 0 then acc else add (acc @ [ Sim.Rng.int rng op_space ]) (n - 1)
  in
  add trace extra

let kind_index k =
  let rec go i = function
    | [] -> 0
    | x :: rest -> if x = k then i else go (i + 1) rest
  in
  go 0 Inject.Fault.all

(* Canonical rendering of a point, used for grouping and display. *)
let point_key p =
  Printf.sprintf "%Ld|%d|%d|%Ld|%d|%d|%c" p.p_seed (kind_index p.p_kind)
    p.p_target p.p_payload p.p_crash p.p_window
    (if p.p_incremental then 'i' else 'f')

let crash_of = function
  | 0 -> Inject.Fault.Crash_none
  | 1 -> Inject.Fault.Crash_panic
  | _ -> Inject.Fault.Crash_hang

let directive_of p =
  {
    Inject.Fault.d_target = p.p_target;
    d_payload = p.p_payload;
    d_crash = crash_of p.p_crash;
    d_window = p.p_window;
  }

(* The run configuration a point resolves to, over the session's base
   config. The directive fires post-warmup, so two points sharing a seed
   share a warmup -- the invariant clone fan-out scheduling rests on.
   The incremental axis only toggles which consistency-scan path the
   recovery takes; the machine geometry and warmup are unchanged, so it
   preserves that invariant. *)
let config_of ~(base : Inject.Run.config) p =
  {
    base with
    Inject.Run.seed = p.p_seed;
    fault = p.p_kind;
    directive = Some (directive_of p);
    hv_config =
      { base.Inject.Run.hv_config with Hyper.Config.incremental_scan = p.p_incremental };
  }

(* CLI encoding of a trace: decimal op codes joined by commas ("-" for
   the empty trace). This is the payload of every one-line repro. *)
let trace_string = function
  | [] -> "-"
  | trace -> String.concat "," (List.map string_of_int trace)

let trace_of_string s =
  if s = "-" || s = "" then Ok []
  else
    try
      Ok
        (List.map
           (fun tok ->
             let v = int_of_string (String.trim tok) in
             if v < 0 || v >= op_space then failwith "range";
             v)
           (String.split_on_char ',' s))
    with _ -> Error (Printf.sprintf "invalid trace %S (comma-separated op codes in [0, 2^%d))" s op_bits)
