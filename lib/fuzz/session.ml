(** A coverage-guided fuzzing session over the fault space.

    One session explores [f_runs] mutants in rounds of [f_batch]. Each
    round the coordinator deterministically generates a batch of
    candidates from the session RNG and the canonical corpus (fresh
    traces or mutations of kept entries), groups them by warmup seed,
    and fans the groups out over {!Inject.Pool} domains: a group drives
    one machine to the trigger point once ({!Inject.Run.prepare_clone})
    and replays the trigger image for every candidate in the group
    ({!Inject.Run.clone_into} with the candidate's directed config).

    Determinism invariants, tested in test/test_fuzz.ml:
    - every candidate's evaluation is a pure function of its
      [(base seed, trace)] -- the variant rng rewinds to the trigger
      point's canonical position, so neither the group composition
      ([--fanout]) nor the worker that ran it ([--jobs]) can leak in;
    - the coordinator absorbs evaluations in candidate order, so the
      corpus, stats and triage evolve identically for every [--jobs];
    - candidate generation happens before distribution, from state that
      is itself jobs-invariant.

    Sessions persist as nlh-fuzz/1 files (the nlh-checkpoint/1 envelope
    under the fuzz schema tag): fingerprint, completed-round prefix,
    and a payload holding the session RNG position, the stats and the
    canonical corpus. Kill -> resume continues the same exploration and
    converges to the byte-identical final file. *)

open Inject

type config = {
  f_base : Run.config; (* seed/fault/directive fields are overridden per candidate *)
  f_base_seed : int64;
  f_runs : int;
  f_batch : int;
  f_jobs : int;
  f_oversubscribe : bool;
  f_fanout : int; (* max candidates cloned from one prepared warmup *)
  f_corpus_path : string option;
  f_resume : bool;
  f_save_every : int; (* write the corpus file every this many rounds *)
  f_stop_after : int option; (* stop after this many rounds this invocation *)
  f_triage_seed_cap : int option;
}

let default_config ~base_seed =
  {
    f_base = Run.default_config;
    f_base_seed = base_seed;
    f_runs = 256;
    f_batch = 32;
    f_jobs = 1;
    f_oversubscribe = false;
    f_fanout = 8;
    f_corpus_path = None;
    f_resume = false;
    f_save_every = 1;
    f_stop_after = None;
    f_triage_seed_cap = None;
  }

let n_rounds cfg =
  if cfg.f_runs <= 0 then 0 else (cfg.f_runs + cfg.f_batch - 1) / cfg.f_batch

(* Config/seed identity for resume validation. Excludes [jobs] and
   [fanout]: both are scheduling knobs the aggregate is invariant to,
   so a resume may change them freely. *)
let fingerprint cfg =
  Printf.sprintf "fuzz;mech=%s;setup=%s;base_seed=%Ld;runs=%d;batch=%d"
    (Postmortem.mech_cli cfg.f_base.Run.mech)
    (Postmortem.setup_cli cfg.f_base.Run.setup)
    cfg.f_base_seed cfg.f_runs cfg.f_batch

type t = {
  s_cfg : config;
  s_rng : Sim.Rng.t; (* coordinator-only: candidate generation *)
  s_corpus : Corpus.t;
  s_triage : Obs.Postmortem.Triage.table;
  mutable s_rounds : int; (* completed rounds *)
  mutable s_evaluated : int;
  mutable s_kept : int;
  mutable s_dud : int;
  s_workers : (Run.worker * Hyper.Ledger.t) option array; (* per pool slot *)
}

let max_slots = 128

let create cfg =
  {
    s_cfg = cfg;
    s_rng = Sim.Rng.create (Int64.logxor cfg.f_base_seed 0x66757A7AL (* "fuzz" *));
    s_corpus = Corpus.create ();
    s_triage = Obs.Postmortem.Triage.create ?seed_cap:cfg.f_triage_seed_cap ();
    s_rounds = 0;
    s_evaluated = 0;
    s_kept = 0;
    s_dud = 0;
    s_workers = Array.make max_slots None;
  }

(* ------------------------------------------------------------------ *)
(* Persistence (nlh-fuzz/1)                                            *)
(* ------------------------------------------------------------------ *)

let payload_of t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"base_seed\":";
  Obs.Json.escape_to buf (Printf.sprintf "%Ld" t.s_cfg.f_base_seed);
  Buffer.add_string buf ",\"rng\":";
  Obs.Json.escape_to buf (Printf.sprintf "%Ld" (Sim.Rng.save t.s_rng));
  Buffer.add_string buf
    (Printf.sprintf ",\"evaluated\":%d,\"kept\":%d,\"dud\":%d," t.s_evaluated
       t.s_kept t.s_dud);
  Corpus.add_payload buf t.s_corpus;
  Buffer.add_char buf '}';
  Buffer.contents buf

let header_of t =
  let rounds = n_rounds t.s_cfg in
  {
    Obs.Checkpoint.kind = "fuzz";
    fingerprint = fingerprint t.s_cfg;
    chunk = t.s_cfg.f_batch;
    n_chunks = rounds;
    (* Rounds complete strictly in order, so "done" is always a prefix. *)
    done_chunks = Array.init rounds (fun i -> i < t.s_rounds);
  }

let save t path =
  Obs.Checkpoint.write ~schema:Obs.Checkpoint.fuzz_schema ~path (header_of t)
    ~payload:(payload_of t)

(* Restore corpus/stats/RNG from an nlh-fuzz/1 file into a fresh
   session. The file's fingerprint must match the session config. *)
let resume_from cfg path =
  match Obs.Checkpoint.read ~schema:Obs.Checkpoint.fuzz_schema path with
  | Error msg ->
    invalid_arg (Printf.sprintf "Fuzz: cannot resume from %s: %s" path msg)
  | Ok (h, payload) ->
    if h.Obs.Checkpoint.kind <> "fuzz" then
      invalid_arg
        (Printf.sprintf "Fuzz: checkpoint kind %S is not \"fuzz\""
           h.Obs.Checkpoint.kind);
    if h.Obs.Checkpoint.fingerprint <> fingerprint cfg then
      invalid_arg
        (Printf.sprintf
           "Fuzz: corpus fingerprint mismatch\n  file: %s\n  run:  %s"
           h.Obs.Checkpoint.fingerprint (fingerprint cfg));
    if h.Obs.Checkpoint.n_chunks <> n_rounds cfg then
      invalid_arg "Fuzz: corpus round count does not match --runs/--batch";
    let done_rounds = Obs.Checkpoint.done_count h in
    Array.iteri
      (fun i d ->
        if d <> (i < done_rounds) then
          invalid_arg "Fuzz: corpus done-rounds are not a prefix")
      h.Obs.Checkpoint.done_chunks;
    let t = create cfg in
    (try
       let rng_s = Obs.Checkpoint.str "payload" "rng" payload in
       (match Int64.of_string_opt rng_s with
       | Some st -> Sim.Rng.reseed t.s_rng st
       | None -> Obs.Checkpoint.fail "payload.rng %S is not an int64" rng_s);
       t.s_evaluated <- Obs.Checkpoint.int_exn "payload" "evaluated" payload;
       t.s_kept <- Obs.Checkpoint.int_exn "payload" "kept" payload;
       t.s_dud <- Obs.Checkpoint.int_exn "payload" "dud" payload;
       Corpus.merge_into ~into:t.s_corpus (Corpus.of_json payload)
     with Obs.Checkpoint.Bad msg ->
       invalid_arg (Printf.sprintf "Fuzz: cannot resume from %s: %s" path msg));
    t.s_rounds <- done_rounds;
    t

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type candidate = { c_index : int; c_trace : int list; c_point : Input.point }

(* What one candidate's run produced -- everything the coordinator needs
   to update corpus and triage, computed at the worker. A pure function
   of the candidate. *)
type eval = {
  ev_index : int;
  ev_trace : int list;
  ev_seed : int64;
  ev_outcome : string;
  ev_signature : string; (* "" for good outcomes *)
  ev_points : string list;
  ev_bundle : Obs.Postmortem.t option;
  ev_metrics : Obs.Metrics.snapshot;
}

let repro_line cfg trace =
  Printf.sprintf "nlh_fuzz --mech %s --setup %s --seed %Ld --replay %s"
    (Postmortem.mech_cli cfg.f_base.Run.mech)
    (Postmortem.setup_cli cfg.f_base.Run.setup)
    cfg.f_base_seed (Input.trace_string trace)

(* The recorder shape is fixed (the postmortem shape, whatever the
   session does with bundles) so metric snapshots -- and hence coverage
   -- are identical between sessions, replays and tests. *)
let make_worker cfg seed =
  let recorder =
    Campaign.make_worker_recorder ~alloc_profile:false ~postmortems:true ()
  in
  let w = Run.prepare ~recorder { cfg.f_base with Run.seed } in
  (* Boot is seed-independent, so this golden ledger is identical on
     every worker: bundle determinism relies on that. *)
  (w, Hyper.Ledger.capture w.Run.w_hv)

(* Evaluate one candidate from a prepared trigger-point source. The
   default (no [reseed]) rewinds the variant rng to the source's
   canonical trigger position, so the result cannot depend on which
   other candidates share the group. *)
let eval_candidate cfg (w : Run.worker) ledger src c =
  let varcfg = Input.config_of ~base:cfg.f_base c.c_point in
  let out = Run.clone_into ~cfg:varcfg src in
  let metrics = Obs.Recorder.metrics_snapshot (Run.worker_recorder w) in
  let signature =
    Postmortem.signature_of varcfg ~first_target:w.Run.w_last_target out
  in
  let sigkey = match signature with Some s -> Obs.Signature.key s | None -> "" in
  let bundle =
    (* Captured for every bad run: workers cannot know global novelty,
       and the coordinator keeps only the first-in-order bundle per
       signature. Fuzz batches are small, so the ledger walk is cheap
       relative to the runs themselves. *)
    match signature with
    | None -> None
    | Some signature ->
      Some
        (Postmortem.capture ~signature ~hv:w.Run.w_hv
           ~golden_ledger:(Some ledger) ~repro:(repro_line cfg c.c_trace)
           ~config:
             (("trace", Input.trace_string c.c_trace)
             :: Postmortem.config_fields varcfg ~fanout:cfg.f_fanout)
           ~seed:c.c_point.Input.p_seed out)
  in
  {
    ev_index = c.c_index;
    ev_trace = c.c_trace;
    ev_seed = c.c_point.Input.p_seed;
    ev_outcome = Run.outcome_name out;
    ev_signature = sigkey;
    ev_points =
      Obs.Coverage.points
        ?signature:(if sigkey = "" then None else Some sigkey)
        ~outcome:(Run.outcome_name out) metrics;
    ev_bundle = bundle;
    ev_metrics = metrics;
  }

(* Evaluate a group of candidates sharing a warmup seed: prepare the
   machine to the trigger point once, clone per candidate. *)
let eval_group cfg (w : Run.worker) ledger group =
  match group with
  | [] -> []
  | first :: _ ->
    let src =
      Run.prepare_clone w { cfg.f_base with Run.seed = first.c_point.Input.p_seed }
    in
    List.map (fun c -> eval_candidate cfg w ledger src c) group

(* Group a batch by warmup seed (first-occurrence order), splitting any
   seed's run of candidates into chunks of at most [fanout]. Grouping
   only affects how often warmups are re-prepared, never results. *)
let group_candidates ~fanout cands =
  let buckets : (int64, candidate list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun c ->
      let seed = c.c_point.Input.p_seed in
      match Hashtbl.find_opt buckets seed with
      | Some l -> l := c :: !l
      | None ->
        Hashtbl.add buckets seed (ref [ c ]);
        order := seed :: !order)
    cands;
  let chunks l =
    let rec go acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | c :: rest ->
        if n = fanout then go (List.rev cur :: acc) [ c ] 1 rest
        else go acc (c :: cur) (n + 1) rest
    in
    go [] [] 0 l
  in
  List.concat_map
    (fun seed -> chunks (List.rev !(Hashtbl.find buckets seed)))
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Rounds                                                              *)
(* ------------------------------------------------------------------ *)

(* Generate round candidates from the session RNG and the canonical
   corpus: ~1/4 fresh traces, the rest mutations of kept entries. Runs
   on the coordinator before any distribution, so the batch is a pure
   function of (rng position, corpus). *)
let gen_candidates t ~count =
  let ents = Array.of_list (Corpus.entries t.s_corpus) in
  List.init count (fun i ->
      let parent =
        if Array.length ents = 0 || Sim.Rng.int t.s_rng 4 = 0 then []
        else ents.(Sim.Rng.int t.s_rng (Array.length ents)).Corpus.en_trace
      in
      let trace = Input.mutate t.s_rng parent in
      {
        c_index = i;
        c_trace = trace;
        c_point = Input.apply ~base_seed:t.s_cfg.f_base_seed trace;
      })

(* Absorb one round's evaluations in candidate order: corpus novelty,
   stats, and triage (bundle attached only at the globally-first
   occurrence of each signature). *)
let absorb t evals =
  List.iter
    (fun ev ->
      t.s_evaluated <- t.s_evaluated + 1;
      let entry =
        {
          Corpus.en_trace = ev.ev_trace;
          en_seed = ev.ev_seed;
          en_outcome = ev.ev_outcome;
          en_signature = ev.ev_signature;
        }
      in
      if Corpus.absorb t.s_corpus ~points:ev.ev_points entry then
        t.s_kept <- t.s_kept + 1
      else t.s_dud <- t.s_dud + 1;
      if ev.ev_signature <> "" then
        match Obs.Signature.of_key ev.ev_signature with
        | None -> ()
        | Some sg ->
          let bundle =
            if Obs.Postmortem.Triage.mem t.s_triage sg then None
            else ev.ev_bundle
          in
          Obs.Postmortem.Triage.record ?bundle t.s_triage sg ~seed:ev.ev_seed)
    (List.sort (fun a b -> compare a.ev_index b.ev_index) evals)

type acc = { acc_slot : int; mutable acc_evals : eval list }

let run_round t =
  let cfg = t.s_cfg in
  let count = min cfg.f_batch (cfg.f_runs - (t.s_rounds * cfg.f_batch)) in
  let cands = gen_candidates t ~count in
  let groups =
    Array.of_list (group_candidates ~fanout:(max 1 cfg.f_fanout) cands)
  in
  let evals =
    Pool.map_reduce ~jobs:(min cfg.f_jobs max_slots)
      ~oversubscribe:cfg.f_oversubscribe ~n:(Array.length groups)
      ~init:(fun slot -> { acc_slot = slot; acc_evals = [] })
      ~body:(fun acc gi ->
        let w, ledger =
          match t.s_workers.(acc.acc_slot) with
          | Some wl -> wl
          | None ->
            let wl =
              make_worker cfg (List.hd groups.(gi)).c_point.Input.p_seed
            in
            t.s_workers.(acc.acc_slot) <- Some wl;
            wl
        in
        acc.acc_evals <- eval_group cfg w ledger groups.(gi) @ acc.acc_evals)
      ~merge:(fun a b ->
        a.acc_evals <- a.acc_evals @ b.acc_evals;
        a)
      ()
  in
  absorb t evals.acc_evals;
  t.s_rounds <- t.s_rounds + 1

(* Run rounds until the budget (or [f_stop_after]) is exhausted, saving
   the corpus file per [f_save_every] and always once at the end. *)
let run t =
  let total = n_rounds t.s_cfg in
  let stop =
    match t.s_cfg.f_stop_after with
    | Some k -> min total (t.s_rounds + max 0 k)
    | None -> total
  in
  while t.s_rounds < stop do
    run_round t;
    match t.s_cfg.f_corpus_path with
    | Some path
      when t.s_cfg.f_save_every > 0 && t.s_rounds mod t.s_cfg.f_save_every = 0
      ->
      save t path
    | _ -> ()
  done;
  match t.s_cfg.f_corpus_path with Some path -> save t path | None -> ()

(* Create-or-resume, then run. *)
let explore cfg =
  let t =
    match cfg.f_corpus_path with
    | Some path when cfg.f_resume -> resume_from cfg path
    | _ -> create cfg
  in
  run t;
  t

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type replay_result = {
  r_point : Input.point;
  r_outcome : string;
  r_signature : string;
  r_bundle : Obs.Postmortem.t option;
  r_metrics : Obs.Metrics.snapshot;
  r_points : string list;
}

(* Re-run one [(base seed, trace)] on a fresh worker, through exactly
   the session's evaluation path (prepare to trigger, clone with the
   directed config), so the result is byte-identical to the session's
   -- whatever --jobs/--fanout the session used. *)
let replay cfg trace =
  let point = Input.apply ~base_seed:cfg.f_base_seed trace in
  let w, ledger = make_worker cfg point.Input.p_seed in
  let ev =
    List.hd
      (eval_group cfg w ledger [ { c_index = 0; c_trace = trace; c_point = point } ])
  in
  {
    r_point = point;
    r_outcome = ev.ev_outcome;
    r_signature = ev.ev_signature;
    r_bundle = ev.ev_bundle;
    r_metrics = ev.ev_metrics;
    r_points = ev.ev_points;
  }

(* The canonical repro for each discovered signature: the first entry
   (in corpus preference order) carrying it. *)
let exemplars t =
  List.fold_left
    (fun acc (e : Corpus.entry) ->
      if e.Corpus.en_signature <> "" && not (List.mem_assoc e.Corpus.en_signature acc)
      then acc @ [ (e.Corpus.en_signature, e) ]
      else acc)
    []
    (Corpus.entries t.s_corpus)
