(** The fuzzer's corpus: coverage points mapped to the entry that
    reaches them.

    The map is keyed by coverage point ({!Obs.Coverage}); the value is
    the *preferred* entry for that point -- shortest mutation trace
    first, then lexicographically smallest. Preference is a total order
    on traces, so inserting the same set of evaluations in any order
    (or merging per-worker corpora in any order) converges to the same
    map: merge is commutative and associative, which is what makes the
    fuzz aggregate [--jobs]-invariant.

    An entry records everything a human needs from a discovery -- the
    trace (the repro), the resolved warmup seed, the outcome class and
    the triage signature -- but not the point or the metrics: both
    re-derive from the trace, and the corpus file stays small. *)

type entry = {
  en_trace : int list; (* mutation trace; op codes in [0, 2^48) *)
  en_seed : int64; (* resolved warmup seed, for display *)
  en_outcome : string; (* outcome class name *)
  en_signature : string; (* triage signature key, "" for good outcomes *)
}

type t = { tbl : (string, entry) Hashtbl.t (* coverage point -> entry *) }

let create () = { tbl = Hashtbl.create 64 }
let n_points t = Hashtbl.length t.tbl
let mem t point = Hashtbl.mem t.tbl point

(* Shorter trace first, then lexicographic: a total order, so the
   preferred entry for a point is independent of insertion order. Equal
   traces imply equal entries (an entry is a pure function of its
   trace), so ties are harmless. *)
let compare_trace a b =
  compare (List.length a, a) (List.length b, b)

let compare_entry a b = compare_trace a.en_trace b.en_trace

let add t point e =
  match Hashtbl.find_opt t.tbl point with
  | None -> Hashtbl.add t.tbl point e
  | Some prev -> if compare_entry e prev < 0 then Hashtbl.replace t.tbl point e

(* Record one evaluation: if any of its coverage points is new, the
   entry is kept (registered under *all* its points, taking over any it
   reaches with a shorter trace); otherwise it is a dud and the corpus
   is untouched. Returns whether the entry was kept. *)
let absorb t ~points e =
  let novel = List.exists (fun p -> not (mem t p)) points in
  if novel then List.iter (fun p -> add t p e) points;
  novel

let merge_into ~into src = Hashtbl.iter (fun p e -> add into p e) src.tbl

(* Canonical views: sorted coverage points; entries deduplicated by
   trace in preference order. Serialization below builds on these, so
   equal corpora produce byte-identical files. *)
let coverage t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.tbl []
  |> List.sort String.compare

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort_uniq compare_entry

(* Distinct triage signatures discovered, sorted. *)
let signatures t =
  List.filter_map
    (fun e -> if e.en_signature = "" then None else Some e.en_signature)
    (entries t)
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Serialization (the "entries"/"coverage" fields of a fuzz payload)    *)
(* ------------------------------------------------------------------ *)

let add_trace buf trace =
  Buffer.add_char buf '[';
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int c))
    trace;
  Buffer.add_char buf ']'

(* Entries as a canonical array; coverage as sorted (point, entry-index)
   pairs into it. Seeds are strings: the JSON parser reads numbers as
   floats, and int64 must round-trip exactly. *)
let add_payload buf t =
  let ents = entries t in
  let index =
    let h = Hashtbl.create (List.length ents) in
    List.iteri (fun i e -> Hashtbl.replace h e.en_trace i) ents;
    h
  in
  Buffer.add_string buf "\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n{\"trace\":";
      add_trace buf e.en_trace;
      Buffer.add_string buf ",\"seed\":";
      Obs.Json.escape_to buf (Printf.sprintf "%Ld" e.en_seed);
      Buffer.add_string buf ",\"outcome\":";
      Obs.Json.escape_to buf e.en_outcome;
      Buffer.add_string buf ",\"signature\":";
      Obs.Json.escape_to buf e.en_signature;
      Buffer.add_char buf '}')
    ents;
  Buffer.add_string buf "],\"coverage\":[";
  List.iteri
    (fun i point ->
      if i > 0 then Buffer.add_char buf ',';
      let e = Hashtbl.find t.tbl point in
      Buffer.add_string buf "\n{\"point\":";
      Obs.Json.escape_to buf point;
      Buffer.add_string buf
        (Printf.sprintf ",\"entry\":%d}" (Hashtbl.find index e.en_trace)))
    (coverage t);
  Buffer.add_char buf ']'

(* Parser: raises {!Obs.Checkpoint.Bad} like the envelope helpers it is
   built from; callers convert to [Error] at the edge. *)
let fail fmt = Obs.Checkpoint.fail fmt

let entry_of_json v =
  let trace =
    Obs.Checkpoint.int_list_of "entry.trace"
      (Obs.Checkpoint.get "entry" "trace" v)
  in
  List.iter
    (fun c ->
      if c < 0 || c >= Input.op_space then
        fail "entry.trace: op code %d outside [0, 2^%d)" c Input.op_bits)
    trace;
  let seed_s = Obs.Checkpoint.str "entry" "seed" v in
  let seed =
    match Int64.of_string_opt seed_s with
    | Some s -> s
    | None -> fail "entry.seed %S is not an int64" seed_s
  in
  let outcome = Obs.Checkpoint.str "entry" "outcome" v in
  if outcome = "" then fail "entry.outcome is empty";
  {
    en_trace = trace;
    en_seed = seed;
    en_outcome = outcome;
    en_signature = Obs.Checkpoint.str "entry" "signature" v;
  }

let of_json payload =
  let ents =
    match Obs.Json.to_list (Obs.Checkpoint.get "payload" "entries" payload) with
    | Some l -> Array.of_list (List.map entry_of_json l)
    | None -> fail "\"entries\" is not an array"
  in
  let t = create () in
  (match Obs.Json.to_list (Obs.Checkpoint.get "payload" "coverage" payload) with
  | None -> fail "\"coverage\" is not an array"
  | Some l ->
    let last = ref "" in
    List.iter
      (fun v ->
        let point = Obs.Checkpoint.str "coverage" "point" v in
        if point = "" then fail "empty coverage point";
        if !last <> "" && String.compare !last point >= 0 then
          fail "coverage points not sorted/unique at %S" point;
        last := point;
        let i = Obs.Checkpoint.int_exn "coverage" "entry" v in
        if i < 0 || i >= Array.length ents then
          fail "coverage entry index %d outside [0, %d)" i (Array.length ents);
        Hashtbl.replace t.tbl point ents.(i))
      l);
  t
