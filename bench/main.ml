(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VII).

     dune exec bench/main.exe            -- everything, scaled-down sizes
     dune exec bench/main.exe -- --full  -- paper-sized campaigns
     dune exec bench/main.exe -- table1 figure2 ...  -- selected sections

   Campaign sizes are scaled down by default so the whole harness runs in
   minutes; pass --full for the paper's 1000/5000/2000 injections. *)

let full = ref false
let sections = ref []
let jobs = ref 1 (* 0 = one worker domain per recommended core *)
let json_out = ref "BENCH_campaign.json"
let obs_out = ref "OBS_campaign.json"
let scaling_out = ref "BENCH_scaling.json"
let endurance_out = ref "BENCH_endurance.json"
let alloc_out = ref "BENCH_alloc.json"
let snapshot_out = ref "BENCH_snapshot.json"
let obs_bench_out = ref "BENCH_obs.json"
let triage_out = ref "TRIAGE_campaign.json"
let max_obs_overhead = ref 5.0 (* postmortems-on runs/s deficit ceiling, % *)
let leak_budget = ref 8 (* max leaked pages per recovery in the smoke *)
let min_speedup = ref 0.0 (* jobs>1 throughput floor, x jobs=1; 0 = off *)
let max_words_per_run = ref 0.0 (* minor words/run ceiling in scaling; 0 = off *)
let fuzz_out = ref "BENCH_fuzz.json"
let soak_out = ref "BENCH_soak.json"
let fleet_out = ref "BENCH_fleet.json"
let max_incremental_frac = ref 0.15 (* incremental/full recovery-mean ceiling *)
let soak_runs = ref 100_000
let max_heap_growth = ref 15.0 (* top-heap growth ceiling 1e3 -> soak, % *)

let resolve_jobs () = if !jobs > 0 then !jobs else Inject.Pool.default_jobs ()

(* campaign_smoke and scaling are perf-tracking targets, not part of the
   paper reproduction, so they only run when named explicitly. *)
let perf_sections =
  [
    "campaign_smoke"; "scaling"; "endurance"; "alloc"; "snapshot";
    "obs_overhead"; "fuzz"; "soak"; "fleet";
  ]

let section name =
  if List.mem name perf_sections then List.mem name !sections
  else !sections = [] || List.mem name !sections

let hr title = Format.printf "@.==== %s ====@." title

(* ------------------------------------------------------------------ *)
(* Table I: incremental development of NiLiHype enhancements           *)
(* ------------------------------------------------------------------ *)

let table1 () =
  hr "Table I: NiLiHype recovery rate by enhancement (1AppVM, failstop)";
  Format.printf "(paper: 0%% / 16.0%% / 51.8%% / 82.2%% / 95.0%% / 96.1%% / ~96.5%%)@.";
  let n = if !full then 1000 else 600 in
  List.iter
    (fun (label, hv_config, enh) ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
          mech = Inject.Run.Mech (Recovery.Engine.Nilihype, enh);
          hv_config;
        }
      in
      let result =
        Inject.Campaign.run ~label ~base_seed:7000L ~jobs:(resolve_jobs ()) ~n cfg
      in
      Format.printf "%-52s %a@." label Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate result))
    Recovery.Enhancement.table1_ladder

(* ------------------------------------------------------------------ *)
(* Figure 2: recovery rate, NiLiHype vs ReHype, 3AppVM                 *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  hr "Figure 2: successful recovery rate (3AppVM)";
  Format.printf
    "(paper: Failstop ~96/~96, Register ~94.5/~96.4, Code ~88/~90; Success \
     and noVMF among detected errors)@.";
  let faults =
    [
      (Inject.Fault.Failstop, if !full then 1000 else 400);
      (Inject.Fault.Register, if !full then 5000 else 1500);
      (Inject.Fault.Code, if !full then 2000 else 800);
    ]
  in
  List.iter
    (fun (fault, n) ->
      List.iter
        (fun (mech, mech_name, hv_config) ->
          let cfg =
            {
              Inject.Run.default_config with
              Inject.Run.fault;
              setup = Inject.Run.Three_appvm;
              mech = Inject.Run.Mech (mech, Recovery.Enhancement.full_set);
              hv_config;
            }
          in
          let label = Printf.sprintf "%s/%s" mech_name (Inject.Fault.name fault) in
          let r =
            Inject.Campaign.run ~label ~base_seed:31000L ~jobs:(resolve_jobs ())
              ~n cfg
          in
          let fmt_prop p = Format.asprintf "%a" Sim.Stats.pp_proportion p in
          Format.printf "%-22s Success %-18s noVMF %s@." label
            (fmt_prop (Inject.Campaign.success_rate r))
            (fmt_prop (Inject.Campaign.no_vmf_rate r)))
        [
          (Recovery.Engine.Nilihype, "NiLiHype", Hyper.Config.nilihype);
          (Recovery.Engine.Rehype, "ReHype", Hyper.Config.rehype);
        ])
    faults

(* ------------------------------------------------------------------ *)
(* Section VII-A text: breakdown of injection outcomes per fault type  *)
(* ------------------------------------------------------------------ *)

let outcomes () =
  hr "Injection outcome breakdown (Section VII-A text)";
  Format.printf
    "(paper: Register 74.8/5.6/19.6; Code 35.0/12.1/52.9; Failstop 0/0/100)@.";
  List.iter
    (fun (fault, n) ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault;
          setup = Inject.Run.Three_appvm;
          mech =
            Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config = Hyper.Config.nilihype;
        }
      in
      let r = Inject.Campaign.run ~base_seed:52000L ~jobs:(resolve_jobs ()) ~n cfg in
      let nm, sdc, det = Inject.Campaign.breakdown r in
      Format.printf "%-9s non-manifested %5.1f%%  SDC %5.1f%%  detected %5.1f%%@."
        (Inject.Fault.name fault) nm sdc det)
    [
      (Inject.Fault.Failstop, if !full then 500 else 200);
      (Inject.Fault.Register, if !full then 5000 else 1500);
      (Inject.Fault.Code, if !full then 2000 else 800);
    ]

(* ------------------------------------------------------------------ *)
(* Tables II and III: recovery latency breakdowns (8 GB, 8 CPUs)       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hr "Table II: ReHype recovery latency breakdown (8 GB, 8 CPUs)";
  Format.printf "(paper total: 713ms; hw init 412ms, memory init 266ms, misc 35ms)@.";
  let b = Core.Latency.rehype_breakdown () in
  Format.printf "%a" Hyper.Latency_model.pp b

let table3 () =
  hr "Table III: NiLiHype recovery latency breakdown (8 GB, 8 CPUs)";
  Format.printf "(paper total: 22ms; page-frame scan 21ms + others 1ms)@.";
  let b = Core.Latency.nilihype_breakdown () in
  Format.printf "%a" Hyper.Latency_model.pp b;
  let nl = Hyper.Latency_model.total b in
  let re = Hyper.Latency_model.total (Core.Latency.rehype_breakdown ()) in
  Format.printf "Latency ratio ReHype/NiLiHype: %.1fx (paper: >30x)@."
    (float_of_int re /. float_of_int nl)

(* ------------------------------------------------------------------ *)
(* Figure 3: hypervisor processing overhead in normal operation        *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  hr "Figure 3: hypervisor processing overhead (NiLiHype vs stock Xen)";
  Format.printf
    "(paper: logging dominates; worst case BlkBench; total-CPU impact <1%%)@.";
  let activities = if !full then 30000 else 8000 in
  List.iter
    (fun bench ->
      let m = Inject.Overhead.measure ~activities bench in
      Format.printf "%a@." Inject.Overhead.pp m)
    Inject.Overhead.configurations

(* ------------------------------------------------------------------ *)
(* Table IV: implementation complexity (LOC)                           *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         (* CLOC-style: skip blanks and pure comment lines. *)
         if String.length line > 0
            && not (String.length line >= 2 && String.sub line 0 2 = "(*")
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let table4 () =
  hr "Table IV: implementation complexity (lines of code)";
  Format.printf
    "(paper: NiLiHype ~1.9k / ReHype ~2.2k lines added+modified in Xen; the \
     same normal-operation vs recovery-only split applied to this code base)@.";
  let normal_op =
    [
      "lib/hyper/journal.ml"; (* non-idempotent hypercall logging *)
      "lib/hyper/config.ml"; (* feature flags for the added mechanisms *)
      "lib/hyper/cycle_account.ml"; (* measurement instrumentation *)
    ]
  in
  let recovery_shared =
    [
      "lib/recovery/common.ml";
      "lib/recovery/enhancement.ml";
      "lib/recovery/engine.ml";
    ]
  in
  let nilihype_only = [ "lib/recovery/microreset.ml" ] in
  let rehype_only = [ "lib/recovery/microreboot.ml" ] in
  let sum = List.fold_left (fun acc f -> acc + count_lines f) 0 in
  let norm = sum normal_op and shared = sum recovery_shared in
  let nl = sum nilihype_only and re = sum rehype_only in
  Format.printf "  %-46s %5d@." "normal-operation mechanisms (shared)" norm;
  Format.printf "  %-46s %5d@." "recovery code shared by both mechanisms" shared;
  Format.printf "  %-46s %5d@." "NiLiHype-specific recovery code" nl;
  Format.printf "  %-46s %5d@." "ReHype-specific recovery code" re;
  Format.printf "  NiLiHype total: %d   ReHype total: %d@." (norm + shared + nl)
    (norm + shared + re);
  Format.printf
    "  (shape preserved: ReHype needs more recovery-time code -- state \
     preservation and re-integration -- plus IO-APIC and boot-line logging)@."

(* ------------------------------------------------------------------ *)
(* Section VII-B: service interruption seen by NetBench                *)
(* ------------------------------------------------------------------ *)

let latency_service () =
  hr "Service interruption (NetBench, 1 ms UDP ping, Section VII-B)";
  let nl = Hyper.Latency_model.total (Core.Latency.nilihype_breakdown ()) in
  let re = Hyper.Latency_model.total (Core.Latency.rehype_breakdown ()) in
  List.iter
    (fun (name, latency) ->
      let lost = latency / Sim.Time.ms 1 in
      Format.printf
        "%-9s recovery latency %a -> ~%d pings unanswered (1/ms sender)@." name
        Sim.Time.pp_ms latency lost)
    [ ("NiLiHype", nl); ("ReHype", re) ]

(* ------------------------------------------------------------------ *)
(* Ablation: discard all threads vs only the faulting thread           *)
(* (the design choice argued in Section III-C)                         *)
(* ------------------------------------------------------------------ *)

let ablation () =
  hr "Ablation: microreset discard scope (Section III-C design choice)";
  Format.printf
    "(paper predicts discarding only the faulting thread is worse: surviving \
     threads collide with recovery's global state changes)@.";
  let n = if !full then 1000 else 400 in
  List.iter
    (fun (label, scope) ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.Three_appvm;
          mech =
            Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config = Hyper.Config.nilihype;
          discard_scope = scope;
        }
      in
      let r =
        Inject.Campaign.run ~label ~base_seed:64000L ~jobs:(resolve_jobs ()) ~n cfg
      in
      Format.printf "%-36s success %a@." label Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate r))
    [
      ("discard all threads (NiLiHype)", Inject.Run.Scope_all_threads);
      ("discard faulting thread only", Inject.Run.Scope_faulting_only);
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: value of the non-idempotent hypercall mitigation          *)
(* (Section IV: logging off costs ~12% recovery rate)                  *)
(* ------------------------------------------------------------------ *)

let ablation_logging () =
  hr "Ablation: non-idempotent hypercall retry mitigation (Section IV)";
  Format.printf "(paper: mitigation raises failstop recovery 84%% -> 96%%)@.";
  let n = if !full then 1000 else 400 in
  List.iter
    (fun (label, hv_config) ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
          mech =
            Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config;
        }
      in
      let r =
        Inject.Campaign.run ~label ~base_seed:71000L ~jobs:(resolve_jobs ()) ~n cfg
      in
      Format.printf "%-44s success %a@." label Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate r))
    [
      ("with logging + code reordering", Hyper.Config.nilihype);
      ( "without logging (NiLiHype*)",
        { Hyper.Config.nilihype with Hyper.Config.nonidempotent_logging = false } );
      ( "without logging or reordering",
        {
          Hyper.Config.nilihype with
          Hyper.Config.nonidempotent_logging = false;
          code_reordering = false;
        } );
    ]

(* ------------------------------------------------------------------ *)
(* Extension: multiple vCPUs per CPU (the paper's future work)         *)
(* ------------------------------------------------------------------ *)

let multivcpu () =
  hr "Extension: recovery rate with multiple vCPUs per CPU (future work)";
  Format.printf
    "(the paper leaves this to future work; richer scheduler state means \
     more metadata to make consistent at recovery)@.";
  let n = if !full then 1000 else 400 in
  List.iter
    (fun vcpus_per_cpu ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.Three_appvm;
          mech =
            Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config = Hyper.Config.nilihype;
          vcpus_per_cpu;
        }
      in
      let r = Inject.Campaign.run ~base_seed:83000L ~jobs:(resolve_jobs ()) ~n cfg in
      Format.printf "%d vCPU(s) per CPU: success %a@." vcpus_per_cpu
        Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate r))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of recovery hot paths                      *)
(* ------------------------------------------------------------------ *)

let microbench () =
  hr "Microbenchmarks (wall clock, Bechamel)";
  let open Bechamel in
  let make_hv () =
    let clock = Sim.Clock.create () in
    Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
      ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock
  in
  let hv = make_hv () in
  let rng = Sim.Rng.create 99L in
  let tests =
    [
      Test.make ~name:"pfn_scan_64k_frames"
        (Staged.stage (fun () ->
             ignore (Hyper.Pfn.scan_and_fix hv.Hyper.Hypervisor.pfn)));
      Test.make ~name:"microreset_recover"
        (Staged.stage (fun () ->
             Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
             ignore
               (Recovery.Microreset.recover hv ~enh:Recovery.Enhancement.full_set
                  ~detected_on:0)));
      Test.make ~name:"timer_heap_push_pop"
        (Staged.stage (fun () ->
             let th = Hyper.Timer_heap.create () in
             for i = 1 to 64 do
               ignore
                 (Hyper.Timer_heap.add th
                    ~deadline:(i * 17 mod 97)
                    Hyper.Timer_heap.Generic_oneshot)
             done;
             while Hyper.Timer_heap.pop th <> None do
               ()
             done));
      Test.make ~name:"hypercall_update_va_mapping"
        (Staged.stage (fun () ->
             Hyper.Hypervisor.execute hv rng
               (Hyper.Hypervisor.Hypercall
                  {
                    domid = 1;
                    vid = 0;
                    kind = Hyper.Hypercalls.Update_va_mapping;
                  })));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "  %-28s %12.1f ns/run@." name est
          | Some _ | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Campaign-engine smoke benchmark: runs the same campaign at jobs=1   *)
(* and jobs=N, asserts the aggregates are bit-identical, and writes a  *)
(* machine-readable BENCH_campaign.json so the perf trajectory is      *)
(* tracked across PRs.                                                 *)
(* ------------------------------------------------------------------ *)

(* Campaigns allocate a few hundred kwords of minor heap per run (see the
   GC-budget test); with the default 256 kword minor heap every worker
   triggers a stop-the-world collection -- a cross-domain rendezvous --
   several times per run, which is what throttles [jobs > cores]
   oversubscription. A campaign-sized minor heap (4 Mwords per domain,
   ~32 MB) makes collections ~16x rarer without changing any result:
   totals depend only on seeds, never on GC scheduling. *)
let tune_gc_for_campaigns () =
  let current = Gc.get () in
  let want = 4_194_304 in
  if current.Gc.minor_heap_size < want then
    Gc.set { current with Gc.minor_heap_size = want }

let campaign_smoke () =
  hr "Campaign engine smoke benchmark (parallel vs sequential)";
  tune_gc_for_campaigns ();
  let n = if !full then 1000 else 240 in
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.Three_appvm;
      mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  let measure jobs =
    Inject.Campaign.run
      ~label:(Printf.sprintf "jobs=%d" jobs)
      ~base_seed:90_000L ~jobs ~n cfg
  in
  let par_jobs =
    let j = resolve_jobs () in
    if j > 1 then j else 4
  in
  let seq = measure 1 in
  let par = measure par_jobs in
  if
    Inject.Campaign.snapshot seq.Inject.Campaign.totals
    <> Inject.Campaign.snapshot par.Inject.Campaign.totals
  then failwith "campaign_smoke: parallel aggregate differs from sequential";
  Format.printf "%a%a" Inject.Campaign.pp seq Inject.Campaign.pp par;
  let speedup =
    if par.Inject.Campaign.wall_seconds > 0.0 then
      seq.Inject.Campaign.wall_seconds /. par.Inject.Campaign.wall_seconds
    else 1.0
  in
  Format.printf "speedup jobs=%d vs jobs=1: %.2fx (on %d core(s))@." par_jobs
    speedup
    (Domain.recommended_domain_count ());
  let entry requested r =
    Printf.sprintf
      "    { \"jobs\": %d, \"domains_used\": %d, \"runs\": %d, \"seconds\": \
       %.4f, \"runs_per_sec\": %.2f }"
      requested r.Inject.Campaign.jobs
      r.Inject.Campaign.totals.Inject.Campaign.runs
      r.Inject.Campaign.wall_seconds
      (Inject.Campaign.runs_per_sec r)
  in
  let oc = open_out !json_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"campaign_smoke\",\n\
    \  \"runs\": %d,\n\
    \  \"seconds\": %.4f,\n\
    \  \"runs_per_sec\": %.2f,\n\
    \  \"jobs\": %d,\n\
    \  \"domains_used\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"speedup_vs_jobs1\": %.2f,\n\
    \  \"identical_totals\": true,\n\
    \  \"series\": [\n%s,\n%s\n  ]\n\
     }\n"
    par.Inject.Campaign.totals.Inject.Campaign.runs
    par.Inject.Campaign.wall_seconds
    (Inject.Campaign.runs_per_sec par)
    par_jobs
    par.Inject.Campaign.jobs (* worker domains that actually ran *)
    (Domain.recommended_domain_count ())
    speedup (entry 1 seq) (entry par_jobs par);
  close_out oc;
  Format.printf "wrote %s@." !json_out;
  (* Campaign-level metrics snapshot (same data for both jobs values --
     asserted identical above). *)
  Obs.Export.write_metrics_json
    ~meta:
      [
        ("benchmark", `String "campaign_smoke");
        ("runs", `Int par.Inject.Campaign.totals.Inject.Campaign.runs);
        ("jobs", `Int par.Inject.Campaign.jobs);
        ("cores", `Int (Domain.recommended_domain_count ()));
      ]
    !obs_out par.Inject.Campaign.totals.Inject.Campaign.metrics;
  Format.printf "wrote %s@." !obs_out

(* ------------------------------------------------------------------ *)
(* Scaling sweep: the same campaign at jobs=1,2,4 with per-jobs         *)
(* throughput and per-run minor-heap allocation, written to             *)
(* BENCH_scaling.json. Aggregates must be bit-identical across the      *)
(* sweep; with --min-speedup S, exits 1 if any jobs>1 point falls       *)
(* below S x the jobs=1 throughput.                                     *)
(* ------------------------------------------------------------------ *)

let scaling () =
  hr "Campaign scaling sweep (jobs=1,2,4)";
  tune_gc_for_campaigns ();
  let n = if !full then 1000 else 240 in
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.Three_appvm;
      mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  let sweep = [ 1; 2; 4 ] in
  let results =
    (* (requested jobs, result): the result's own [jobs] field is the
       worker count that actually ran (capped at the core count). *)
    List.map
      (fun jobs ->
        ( jobs,
          Inject.Campaign.run
            ~label:(Printf.sprintf "jobs=%d" jobs)
            ~base_seed:90_000L ~jobs ~n cfg ))
      sweep
  in
  let base = snd (List.hd results) in
  let base_snap = Inject.Campaign.snapshot base.Inject.Campaign.totals in
  List.iter
    (fun (requested, r) ->
      if Inject.Campaign.snapshot r.Inject.Campaign.totals <> base_snap then
        failwith
          (Printf.sprintf "scaling: jobs=%d aggregate differs from jobs=1"
             requested))
    results;
  let base_rps = Inject.Campaign.runs_per_sec base in
  let speedup r =
    if base_rps > 0.0 then Inject.Campaign.runs_per_sec r /. base_rps else 1.0
  in
  let minor_per_run r =
    r.Inject.Campaign.minor_words
    /. float_of_int (max 1 r.Inject.Campaign.totals.Inject.Campaign.runs)
  in
  List.iter
    (fun (requested, r) ->
      Format.printf
        "jobs=%d (%d domain(s)): %8.1f runs/s  speedup %5.2fx  minor \
         words/run %10.0f@."
        requested r.Inject.Campaign.jobs
        (Inject.Campaign.runs_per_sec r)
        (speedup r) (minor_per_run r))
    results;
  let entry (requested, r) =
    Printf.sprintf
      "    { \"jobs\": %d, \"domains_used\": %d, \"runs\": %d, \"seconds\": \
       %.4f, \"runs_per_sec\": %.2f, \"speedup_vs_jobs1\": %.2f, \
       \"minor_words_per_run\": %.0f }"
      requested r.Inject.Campaign.jobs
      r.Inject.Campaign.totals.Inject.Campaign.runs
      r.Inject.Campaign.wall_seconds
      (Inject.Campaign.runs_per_sec r)
      (speedup r) (minor_per_run r)
  in
  let oc = open_out !scaling_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"scaling\",\n\
    \  \"runs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"identical_totals\": true,\n\
    \  \"series\": [\n%s\n  ]\n\
     }\n"
    n
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map entry results));
  close_out oc;
  Format.printf "wrote %s@." !scaling_out;
  if !min_speedup > 0.0 then
    List.iter
      (fun (requested, r) ->
        if requested > 1 && speedup r < !min_speedup then begin
          Format.printf
            "FAIL: jobs=%d throughput %.2fx of jobs=1, below floor %.2fx@."
            requested (speedup r) !min_speedup;
          exit 1
        end)
      results;
  if !max_words_per_run > 0.0 then
    List.iter
      (fun (requested, r) ->
        if minor_per_run r > !max_words_per_run then begin
          Format.printf
            "FAIL: jobs=%d allocates %.0f minor words/run, above ceiling %.0f@."
            requested (minor_per_run r) !max_words_per_run;
          exit 1
        end)
      results

(* ------------------------------------------------------------------ *)
(* Allocation attribution: where the minor words of one injection run   *)
(* go, by phase (boot/workload/injection/detection/recovery/audit).     *)
(* Checks that the phase attribution accounts for the whole-run          *)
(* [Gc.minor_words] delta (within 5%) and that the [alloc.*] counters   *)
(* merged into campaign totals are bit-identical for any --jobs value.  *)
(* Written to BENCH_alloc.json.                                          *)
(* ------------------------------------------------------------------ *)

let alloc () =
  hr "Allocation attribution by run phase";
  tune_gc_for_campaigns ();
  let n = if !full then 1000 else 240 in
  let base_seed = 90_000L in
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.Three_appvm;
      mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  (* Direct single-worker loop for the agreement check: the per-run
     [alloc.*] counters are read back as plain ints after each run (the
     worker reset zeroes them at the next rewind), so the loop adds
     almost nothing outside the attributed window. *)
  let recorder = Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error () in
  Obs.Recorder.set_alloc_profiling recorder true;
  let w = Inject.Run.prepare ~recorder cfg in
  let phases = Obs.Recorder.alloc_phases in
  let nphases = List.length phases in
  let sums = Array.make nphases 0 in
  let run_one i =
    let seed = Int64.add base_seed (Int64.of_int i) in
    ignore (Inject.Run.execute_into w { cfg with Inject.Run.seed })
  in
  (* Warm runs: first-touch growth of long-lived structures must not
     pollute the steady-state attribution. *)
  for i = 0 to 2 do
    run_one i
  done;
  let gc_start = Gc.minor_words () in
  for i = 0 to n - 1 do
    run_one i;
    List.iteri
      (fun pi p -> sums.(pi) <- sums.(pi) + Obs.Recorder.alloc_words recorder p)
      phases
  done;
  let gc_delta = Gc.minor_words () -. gc_start in
  let attributed = float_of_int (Array.fold_left ( + ) 0 sums) in
  let agreement = if gc_delta > 0.0 then attributed /. gc_delta else 0.0 in
  let per_run words = float_of_int words /. float_of_int n in
  List.iteri
    (fun pi p ->
      Format.printf "  %-10s %10.0f words/run@."
        (Obs.Recorder.alloc_phase_name p)
        (per_run sums.(pi)))
    phases;
  Format.printf
    "  attributed %.0f of %.0f words/run (%.1f%% of the Gc.minor_words \
     delta)@."
    (attributed /. float_of_int n)
    (gc_delta /. float_of_int n)
    (100.0 *. agreement);
  if agreement < 0.95 || agreement > 1.05 then
    failwith "alloc: phase attribution disagrees with Gc.minor_words by >5%";
  (* Jobs invariance: the merged [alloc.*] counters (and every other
     metric) must be bit-identical whatever the worker count. The >1
     points oversubscribe so multiple domains really run even on one
     core. *)
  let campaign jobs =
    Inject.Campaign.run
      ~label:(Printf.sprintf "alloc jobs=%d" jobs)
      ~base_seed ~jobs ~oversubscribe:(jobs > 1) ~alloc_profile:true ~n cfg
  in
  let seq = campaign 1 in
  let seq_snap = Inject.Campaign.snapshot seq.Inject.Campaign.totals in
  List.iter
    (fun jobs ->
      let r = campaign jobs in
      if Inject.Campaign.snapshot r.Inject.Campaign.totals <> seq_snap then
        failwith
          (Printf.sprintf "alloc: jobs=%d aggregate differs from jobs=1" jobs))
    [ 2; 4 ];
  (* The campaign path must attribute exactly what the direct loop saw:
     same seeds, same runs, same counters. *)
  let counter name =
    match
      List.assoc_opt name
        seq.Inject.Campaign.totals.Inject.Campaign.metrics.Obs.Metrics.counters
    with
    | Some v -> v
    | None -> 0
  in
  List.iteri
    (fun pi p ->
      let name = "alloc." ^ Obs.Recorder.alloc_phase_name p in
      if counter name <> sums.(pi) then
        failwith
          (Printf.sprintf "alloc: campaign %s=%d differs from direct loop %d"
             name (counter name) sums.(pi)))
    phases;
  Format.printf "alloc.* counters bit-identical for jobs=1,2,4 (n=%d)@." n;
  let oc = open_out !alloc_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"alloc\",\n\
    \  \"runs\": %d,\n\
    \  \"words_per_run\": %.1f,\n\
    \  \"gc_delta_words_per_run\": %.1f,\n\
    \  \"agreement\": %.4f,\n\
    \  \"jobs_invariant\": true,\n\
    \  \"phases\": {\n%s\n  }\n\
     }\n"
    n
    (attributed /. float_of_int n)
    (gc_delta /. float_of_int n)
    agreement
    (String.concat ",\n"
       (List.mapi
          (fun pi p ->
            Printf.sprintf "    \"%s\": %.1f"
              (Obs.Recorder.alloc_phase_name p)
              (per_run sums.(pi)))
          phases));
  close_out oc;
  Format.printf "wrote %s@." !alloc_out

(* ------------------------------------------------------------------ *)
(* Endurance smoke: successive recoveries on ONE instance, with the     *)
(* resource-leak ledger enforcing the paper's "few pages per recovery"  *)
(* claim and the jobs=1 vs jobs=N aggregates asserted bit-identical.    *)
(* Written to BENCH_endurance.json.                                     *)
(* ------------------------------------------------------------------ *)

let endurance () =
  hr "Endurance smoke: successive failures on one hypervisor instance";
  tune_gc_for_campaigns ();
  let cycles = if !full then 50 else 12 in
  let scenarios = if !full then 20 else 6 in
  let cfg =
    {
      Endure.run_cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.Three_appvm;
          mech =
            Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config = Hyper.Config.nilihype;
        };
      cycles;
      settle_activities = 120;
      leak_budget_pages = Some !leak_budget;
    }
  in
  let measure jobs =
    Endure.run
      ~label:(Printf.sprintf "jobs=%d" jobs)
      ~base_seed:96_000L ~jobs ~scenarios cfg
  in
  let par_jobs =
    let j = resolve_jobs () in
    if j > 1 then j else 4
  in
  let seq = measure 1 in
  let par = measure par_jobs in
  (* Determinism: the same seeds must yield the same survival curve, leak
     totals and metric snapshot whatever the worker count. *)
  if Endure.snapshot seq.Endure.totals <> Endure.snapshot par.Endure.totals then
    failwith "endurance: parallel aggregate differs from sequential";
  Format.printf "%a" Endure.pp par;
  (* Leak ceiling: no recovery may leak more than the budget. *)
  if par.Endure.totals.Endure.budget_violations > 0 then
    failwith
      (Printf.sprintf
         "endurance: %d recovery cycle(s) exceeded the %d-page leak budget"
         par.Endure.totals.Endure.budget_violations !leak_budget);
  let oc = open_out !endurance_out in
  Endure.write_json oc
    ~meta:
      [
        ("benchmark", `String "endurance");
        ("base_seed", `Int 96_000);
        ("identical_totals", `Bool true);
      ]
    par;
  close_out oc;
  Format.printf "wrote %s@." !endurance_out

(* ------------------------------------------------------------------ *)
(* Snapshot/restore benchmark: golden-image restore cost vs fresh boot  *)
(* (by previous-run outcome class) and clone fan-out throughput vs      *)
(* per-variant re-preparation, with fan-out aggregates asserted         *)
(* bit-identical across --jobs. Written to BENCH_snapshot.json.         *)
(* Gates: restore <= 15% of fresh-boot minor words; fan-out >= 2x the   *)
(* re-prepare baseline at jobs=1.                                       *)
(* ------------------------------------------------------------------ *)

let snapshot_bench () =
  hr "Snapshot/restore: O(changed-state) rewind and clone fan-out";
  tune_gc_for_campaigns ();
  let mech_nili =
    Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set)
  in
  let base_cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Register;
      setup = Inject.Run.Three_appvm;
      mech = mech_nili;
      hv_config = Hyper.Config.nilihype;
    }
  in
  (* --- Fresh boot cost: the baseline a snapshot restore replaces. --- *)
  let boot_iters = if !full then 30 else 10 in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to boot_iters - 1 do
    let seed = Int64.of_int (100_000 + i) in
    ignore (Sys.opaque_identity (Inject.Run.boot_state { base_cfg with Inject.Run.seed }))
  done;
  let fresh_words = (Gc.minor_words () -. w0) /. float_of_int boot_iters in
  let fresh_ns =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int boot_iters
  in
  (* --- Restore cost, bucketed by the outcome class of the run that
     dirtied the machine (the dirty set -- and hence the restore cost --
     depends on how far the run got). [died] = detected but unrecovered,
     the class that used to force a fresh boot. --- *)
  let classes = Hashtbl.create 8 in
  let record cls words ns =
    let c, w, t =
      match Hashtbl.find_opt classes cls with
      | Some (c, w, t) -> (c, w, t)
      | None -> (0, 0.0, 0.0)
    in
    Hashtbl.replace classes cls (c + 1, w +. words, t +. ns)
  in
  let total_restores = ref 0 and total_restore_words = ref 0.0 in
  let measure_restores (cfg : Inject.Run.config) n seed0 =
    let w = Inject.Run.prepare cfg in
    for i = 0 to n - 1 do
      let cfg = { cfg with Inject.Run.seed = Int64.of_int (seed0 + i) } in
      let out = Inject.Run.execute_into w cfg in
      let cls =
        match out with
        | Inject.Run.Detected d when not d.Inject.Run.recovered -> "died"
        | o -> Inject.Run.outcome_name o
      in
      let w0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      Inject.Run.rewind w cfg;
      let dw = Gc.minor_words () -. w0 in
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      incr total_restores;
      total_restore_words := !total_restore_words +. dw;
      record cls dw dt
    done
  in
  let n_restore = if !full then 150 else 60 in
  (* Register faults under NiLiHype cover non-manifested, SDC and
     detected-recovered; no-recovery failstop runs cover [died]. *)
  measure_restores base_cfg n_restore 100_000;
  measure_restores
    {
      base_cfg with
      Inject.Run.fault = Inject.Fault.Failstop;
      mech = Inject.Run.No_recovery;
      hv_config = Hyper.Config.stock;
    }
    (n_restore / 3) 100_000;
  let restore_words = !total_restore_words /. float_of_int !total_restores in
  let restore_fraction =
    if fresh_words > 0.0 then restore_words /. fresh_words else 1.0
  in
  Format.printf "fresh boot : %10.0f minor words  %10.0f ns@." fresh_words
    fresh_ns;
  let class_rows =
    List.sort compare
      (Hashtbl.fold (fun cls acc l -> (cls, acc) :: l) classes [])
  in
  List.iter
    (fun (cls, (c, w, t)) ->
      Format.printf
        "restore after %-15s %10.0f minor words  %10.0f ns  (n=%d)@." cls
        (w /. float_of_int c)
        (t /. float_of_int c)
        c)
    class_rows;
  Format.printf "restore overall: %.0f words = %.1f%% of a fresh boot@."
    restore_words
    (100.0 *. restore_fraction);
  (* --- Clone fan-out throughput vs per-variant re-preparation. The
     warmup-heavy config makes preparation the dominant per-run cost,
     which is the workload fan-out exists for: drive to the trigger
     point once, replay many variants. The baseline pays that warmup for
     every variant (the pre-fan-out behaviour). --- *)
  let fanout = 8 in
  let n = if !full then 240 else 96 in
  let fan_cfg =
    { base_cfg with Inject.Run.warmup_activities = 3600; post_activities = 150 }
  in
  let campaign ~fanout ~jobs ~oversubscribe =
    Inject.Campaign.run
      ~label:(Printf.sprintf "fanout=%d jobs=%d" fanout jobs)
      ~base_seed:120_000L ~jobs ~oversubscribe ~fanout ~n fan_cfg
  in
  let reprep = campaign ~fanout:1 ~jobs:1 ~oversubscribe:false in
  let fan = campaign ~fanout ~jobs:1 ~oversubscribe:false in
  let reprep_rps = Inject.Campaign.runs_per_sec reprep in
  let fan_rps = Inject.Campaign.runs_per_sec fan in
  let fan_speedup = if reprep_rps > 0.0 then fan_rps /. reprep_rps else 0.0 in
  Format.printf
    "re-prepare baseline: %8.1f runs/s   fan-out x%d: %8.1f runs/s  \
     (%.2fx)@."
    reprep_rps fanout fan_rps fan_speedup;
  (* --- Determinism: fan-out aggregates must be bit-identical for any
     [jobs]. The >1 points oversubscribe so multiple worker domains
     really run even on a single-core host. --- *)
  let fan_snap = Inject.Campaign.snapshot fan.Inject.Campaign.totals in
  List.iter
    (fun jobs ->
      let r = campaign ~fanout ~jobs ~oversubscribe:true in
      if Inject.Campaign.snapshot r.Inject.Campaign.totals <> fan_snap then
        failwith
          (Printf.sprintf "snapshot: fanout jobs=%d aggregate differs from jobs=1"
             jobs))
    [ 2; 4 ];
  Format.printf "fan-out totals bit-identical for jobs=1,2,4 (n=%d)@." n;
  let oc = open_out !snapshot_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"snapshot\",\n\
    \  \"fresh_boot_minor_words\": %.0f,\n\
    \  \"fresh_boot_ns\": %.0f,\n\
    \  \"restore_minor_words\": %.0f,\n\
    \  \"restore_fraction_of_fresh_boot\": %.4f,\n\
    \  \"restore_by_outcome\": {\n%s\n  },\n\
    \  \"fanout\": %d,\n\
    \  \"fanout_runs\": %d,\n\
    \  \"reprepare_runs_per_sec\": %.2f,\n\
    \  \"fanout_runs_per_sec\": %.2f,\n\
    \  \"fanout_speedup\": %.2f,\n\
    \  \"identical_totals\": true\n\
     }\n"
    fresh_words fresh_ns restore_words restore_fraction
    (String.concat ",\n"
       (List.map
          (fun (cls, (c, w, t)) ->
            Printf.sprintf
              "    \"%s\": { \"minor_words\": %.0f, \"ns\": %.0f, \"runs\": %d }"
              cls
              (w /. float_of_int c)
              (t /. float_of_int c)
              c)
          class_rows))
    fanout n reprep_rps fan_rps fan_speedup;
  close_out oc;
  Format.printf "wrote %s@." !snapshot_out;
  if restore_fraction > 0.15 then begin
    Format.printf
      "FAIL: restore costs %.1f%% of a fresh boot in minor words (ceiling \
       15%%)@."
      (100.0 *. restore_fraction);
    exit 1
  end;
  if fan_speedup < 2.0 then begin
    Format.printf
      "FAIL: fan-out throughput %.2fx of the re-prepare baseline (floor \
       2.00x)@."
      fan_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability overhead: the flight recorder is always on and          *)
(* postmortem capture is lazy, so a campaign with postmortems enabled    *)
(* must not be measurably slower than one without. Measures runs/s both  *)
(* ways (best of 3 to damp scheduler noise), gates the deficit at        *)
(* --max-obs-overhead (default 5%), asserts triage output is             *)
(* bit-identical across --jobs and --fanout splits, and re-runs an       *)
(* exemplar's one-line repro to confirm it reproduces the failure        *)
(* signature. Written to BENCH_obs.json (+ TRIAGE_campaign.json).        *)
(* ------------------------------------------------------------------ *)

let obs_overhead () =
  hr "Observability overhead: flight recorder + lazy postmortem capture";
  tune_gc_for_campaigns ();
  let n = if !full then 1000 else 240 in
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.Three_appvm;
      mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  let campaign ?(jobs = 1) ?(oversubscribe = false) ?(fanout = 1)
      ~postmortems label =
    Inject.Campaign.run ~label ~base_seed:90_000L ~jobs ~oversubscribe ~fanout
      ~postmortems ~n cfg
  in
  (* Best of 3: campaigns are deterministic in results, only wall clock
     varies, so max runs/s is the least-noisy throughput estimate. *)
  let best ~postmortems label =
    let reps =
      List.init 3 (fun i ->
          campaign ~postmortems (Printf.sprintf "%s #%d" label i))
    in
    List.fold_left
      (fun (best_rps, keep) r ->
        let rps = Inject.Campaign.runs_per_sec r in
        if rps > best_rps then (rps, r) else (best_rps, keep))
      (Inject.Campaign.runs_per_sec (List.hd reps), List.hd reps)
      (List.tl reps)
  in
  ignore (campaign ~postmortems:false "warmup");
  let base_rps, base = best ~postmortems:false "postmortems off" in
  let pm_rps, pm = best ~postmortems:true "postmortems on" in
  let overhead_pct =
    if base_rps > 0.0 then 100.0 *. (base_rps -. pm_rps) /. base_rps else 0.0
  in
  Format.printf
    "postmortems off: %8.1f runs/s   on: %8.1f runs/s   overhead %+.1f%%@."
    base_rps pm_rps overhead_pct;
  (* Capture must not perturb results: everything except the triage table
     itself is bit-identical with postmortems on. *)
  let strip s = { s with Inject.Campaign.s_triage = [] } in
  if
    strip (Inject.Campaign.snapshot base.Inject.Campaign.totals)
    <> strip (Inject.Campaign.snapshot pm.Inject.Campaign.totals)
  then failwith "obs_overhead: postmortem capture changed campaign results";
  (* Triage determinism: same table for any worker/fan-out split. The
     jobs>1 points oversubscribe so several domains run even on one
     core; the byte-level comparison covers exemplar bundles too. *)
  let triage_json r =
    Obs.Postmortem.Triage.to_json
      r.Inject.Campaign.totals.Inject.Campaign.triage
  in
  let pm_json = triage_json pm in
  List.iter
    (fun jobs ->
      let r =
        campaign ~jobs ~oversubscribe:true ~postmortems:true
          (Printf.sprintf "triage jobs=%d" jobs)
      in
      if triage_json r <> pm_json then
        failwith
          (Printf.sprintf "obs_overhead: triage differs at jobs=%d" jobs))
    [ 2; 4 ];
  let fan1 =
    campaign ~fanout:4 ~postmortems:true "triage fanout=4 jobs=1"
  in
  let fan4 =
    campaign ~fanout:4 ~jobs:4 ~oversubscribe:true ~postmortems:true
      "triage fanout=4 jobs=4"
  in
  if triage_json fan1 <> triage_json fan4 then
    failwith "obs_overhead: fan-out triage differs across jobs";
  Format.printf "triage bit-identical for jobs=1,2,4 and fanout=4 splits@.";
  (* Repro fidelity: a no-recovery campaign must emit bundles, and an
     exemplar's one-line repro (--runs 1 --seed S) must land in the same
     failure signature when re-run. *)
  let dead_cfg =
    {
      cfg with
      Inject.Run.mech = Inject.Run.No_recovery;
      hv_config = Hyper.Config.stock;
    }
  in
  let dead =
    Inject.Campaign.run ~label:"no-recovery" ~base_seed:90_000L
      ~postmortems:true ~n:(min n 24) dead_cfg
  in
  let dead_triage = dead.Inject.Campaign.totals.Inject.Campaign.triage in
  let exemplars =
    List.filter_map
      (fun (key, e) ->
        Option.map
          (fun (seed, _) -> (key, seed))
          e.Obs.Postmortem.Triage.e_exemplar)
      (Obs.Postmortem.Triage.snapshot dead_triage)
  in
  if exemplars = [] then
    failwith "obs_overhead: no postmortem bundle from a died campaign";
  List.iter
    (fun (key, seed) ->
      let rerun =
        Inject.Campaign.run ~label:"repro" ~base_seed:seed ~postmortems:true
          ~n:1 dead_cfg
      in
      let keys =
        List.map fst
          (Obs.Postmortem.Triage.snapshot
             rerun.Inject.Campaign.totals.Inject.Campaign.triage)
      in
      if keys <> [ key ] then
        failwith
          (Printf.sprintf "obs_overhead: repro of seed %Ld gave %s, want %s"
             seed
             (String.concat "," keys)
             key))
    exemplars;
  Format.printf
    "repro fidelity: %d exemplar seed(s) re-ran to their own signature@."
    (List.length exemplars);
  if !triage_out <> "" then begin
    let oc = open_out !triage_out in
    output_string oc
      (Obs.Postmortem.Triage.to_json
         ~meta:
           [
             ("benchmark", `String "obs_overhead");
             ("runs", `Int (min n 24));
             ("base_seed", `Int 90_000);
           ]
         dead_triage);
    close_out oc;
    Format.printf "wrote %s@." !triage_out
  end;
  let oc = open_out !obs_bench_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"obs_overhead\",\n\
    \  \"runs\": %d,\n\
    \  \"baseline_runs_per_sec\": %.2f,\n\
    \  \"postmortem_runs_per_sec\": %.2f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"overhead_ceiling_pct\": %.2f,\n\
    \  \"identical_results\": true,\n\
    \  \"triage_jobs_invariant\": true,\n\
    \  \"triage_fanout_invariant\": true,\n\
    \  \"repro_signatures_verified\": %d\n\
     }\n"
    n base_rps pm_rps overhead_pct !max_obs_overhead
    (List.length exemplars);
  close_out oc;
  Format.printf "wrote %s@." !obs_bench_out;
  if overhead_pct > !max_obs_overhead then begin
    Format.printf
      "FAIL: postmortem capture costs %.1f%% runs/s (ceiling %.1f%%)@."
      overhead_pct !max_obs_overhead;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fuzz: coverage-guided fault-space search vs uniform-grid sampling    *)
(* at an equal run budget. The grid baseline spends the same N runs     *)
(* evenly across the four fault kinds with consecutive seeds (the       *)
(* campaign strategy every prior PR used); the fuzzer spends N mutants  *)
(* steered by Obs.Coverage novelty. Gates: (a) the fuzzer discovers     *)
(* strictly more distinct triage signatures than the grid, and (b)      *)
(* every discovered signature's one-line repro replays to a             *)
(* byte-identical triage entry (run twice, compared as JSON).           *)
(* BENCH_fuzz.json.                                                     *)
(* ------------------------------------------------------------------ *)

let fuzz_bench () =
  hr "Fuzz: coverage-guided search vs uniform-grid sampling";
  tune_gc_for_campaigns ();
  let n = if !full then 1024 else 192 in
  let base =
    {
      Inject.Run.default_config with
      Inject.Run.setup = Inject.Run.Three_appvm;
      mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  (* Grid baseline: N/4 runs per fault kind, consecutive seeds, same
     mechanism and setup. Signatures = union over the four triages. *)
  let kinds =
    [ Inject.Fault.Failstop; Inject.Fault.Register; Inject.Fault.Code;
      Inject.Fault.Data ]
  in
  let per_kind = n / List.length kinds in
  let grid_t0 = Unix.gettimeofday () in
  let grid_sigs =
    List.concat_map
      (fun fault ->
        let r =
          Inject.Campaign.run
            ~label:(Printf.sprintf "grid %s" (Inject.Fault.name fault))
            ~base_seed:9_000L ~jobs:(resolve_jobs ()) ~oversubscribe:(!jobs = 0)
            ~postmortems:true ~n:per_kind
            { base with Inject.Run.fault }
        in
        List.map fst
          (Obs.Postmortem.Triage.snapshot
             r.Inject.Campaign.totals.Inject.Campaign.triage))
      kinds
    |> List.sort_uniq String.compare
  in
  let grid_secs = Unix.gettimeofday () -. grid_t0 in
  (* Fuzzer: same budget, same base seed, same mechanism. *)
  let fcfg =
    {
      (Fuzz.Session.default_config ~base_seed:9_000L) with
      Fuzz.Session.f_base = base;
      f_runs = per_kind * List.length kinds;
      f_batch = max 8 (n / 8);
      f_jobs = resolve_jobs ();
      f_oversubscribe = !jobs = 0;
    }
  in
  let fuzz_t0 = Unix.gettimeofday () in
  let t = Fuzz.Session.explore fcfg in
  let fuzz_secs = Unix.gettimeofday () -. fuzz_t0 in
  let fuzz_sigs = Fuzz.Corpus.signatures t.Fuzz.Session.s_corpus in
  Format.printf
    "grid: %d runs -> %d signatures (%.1fs)   fuzz: %d runs -> %d signatures \
     (%.1fs), %d coverage points, %d corpus entries@."
    (per_kind * List.length kinds)
    (List.length grid_sigs) grid_secs t.Fuzz.Session.s_evaluated
    (List.length fuzz_sigs) fuzz_secs
    (Fuzz.Corpus.n_points t.Fuzz.Session.s_corpus)
    (List.length (Fuzz.Corpus.entries t.Fuzz.Session.s_corpus));
  (* Repro fidelity: every discovered signature's exemplar must replay
     -- twice -- to the byte-identical triage entry recorded for it. *)
  let entry_json (r : Fuzz.Session.replay_result) =
    let tr = Obs.Postmortem.Triage.create () in
    (match Obs.Signature.of_key r.Fuzz.Session.r_signature with
    | Some sg ->
      Obs.Postmortem.Triage.record ?bundle:r.Fuzz.Session.r_bundle tr sg
        ~seed:r.Fuzz.Session.r_point.Fuzz.Input.p_seed
    | None -> ());
    Obs.Postmortem.Triage.to_json tr
  in
  let exemplars = Fuzz.Session.exemplars t in
  List.iter
    (fun (sigkey, (e : Fuzz.Corpus.entry)) ->
      let a = Fuzz.Session.replay fcfg e.Fuzz.Corpus.en_trace in
      let b = Fuzz.Session.replay fcfg e.Fuzz.Corpus.en_trace in
      if a.Fuzz.Session.r_signature <> sigkey then
        failwith
          (Printf.sprintf "fuzz: repro of %s replayed to %s" sigkey
             a.Fuzz.Session.r_signature);
      if a.Fuzz.Session.r_outcome <> e.Fuzz.Corpus.en_outcome then
        failwith (Printf.sprintf "fuzz: repro of %s changed outcome" sigkey);
      if entry_json a <> entry_json b then
        failwith
          (Printf.sprintf "fuzz: repro of %s is not byte-stable" sigkey))
    exemplars;
  Format.printf "repro fidelity: %d signature(s) replayed byte-identically@."
    (List.length exemplars);
  let coverage_wins = List.length fuzz_sigs > List.length grid_sigs in
  let oc = open_out !fuzz_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"fuzz\",\n\
    \  \"runs\": %d,\n\
    \  \"grid_signatures\": %d,\n\
    \  \"grid_secs\": %.2f,\n\
    \  \"fuzz_signatures\": %d,\n\
    \  \"fuzz_secs\": %.2f,\n\
    \  \"coverage_points\": %d,\n\
    \  \"corpus_entries\": %d,\n\
    \  \"replayed_signatures\": %d,\n\
    \  \"coverage_beats_grid\": %b\n\
     }\n"
    (per_kind * List.length kinds)
    (List.length grid_sigs) grid_secs (List.length fuzz_sigs) fuzz_secs
    (Fuzz.Corpus.n_points t.Fuzz.Session.s_corpus)
    (List.length (Fuzz.Corpus.entries t.Fuzz.Session.s_corpus))
    (List.length exemplars) coverage_wins;
  close_out oc;
  Format.printf "wrote %s@." !fuzz_out;
  if not coverage_wins then begin
    Format.printf
      "FAIL: fuzzer found %d signature(s), grid found %d at the same budget@."
      (List.length fuzz_sigs) (List.length grid_sigs);
    exit 1
  end;
  if exemplars = [] then begin
    Format.printf "FAIL: fuzzer discovered no signatures to replay@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Soak: million-run-scale streaming campaigns. Gates (a) constant      *)
(* memory -- top-heap growth from a 10^3-run campaign to the 10^5+ soak *)
(* must stay under --max-heap-growth -- and (b) kill -> resume          *)
(* determinism: a campaign stopped mid-flight and resumed with a        *)
(* different --jobs must reproduce the uninterrupted aggregate exactly, *)
(* with a byte-identical final checkpoint file. BENCH_soak.json.        *)
(* ------------------------------------------------------------------ *)

let soak () =
  hr "Soak: streaming aggregation, checkpoint/resume, machine pools";
  tune_gc_for_campaigns ();
  let n = max 1_000 !soak_runs in
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.Three_appvm;
      mech =
        Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
      hv_config = Hyper.Config.nilihype;
    }
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let jobs = resolve_jobs () in
  (* Machines for every worker slot boot once, up front, and serve the
     small run, the soak, and the resume drills below. *)
  let pool = Inject.Campaign.prepare_pool ~jobs cfg in
  let ck path =
    {
      Inject.Campaign.ck_path = path;
      ck_every = 16;
      ck_resume = false;
      ck_stop_after = None;
    }
  in
  (* The top-heap high-water mark only ratchets up, and the major heap
     keeps expanding toward its steady-state pacing for well past 10^3
     runs no matter how small the live set is. Warm the collector to
     steady state first so the small/soak comparison below measures
     streaming-aggregation growth, not GC ramp-up. *)
  let n_warm = min 20_000 (max 2_000 n) in
  ignore
    (Inject.Campaign.run ~label:"soak warmup" ~base_seed:110_000L ~jobs ~pool
       ~n:n_warm cfg);
  (* Small streaming campaign next: establishes the top-heap high-water
     mark (a process-global maximum) that the soak must not materially
     exceed -- THE constant-memory claim, measured end to end. *)
  let small =
    Inject.Campaign.run ~label:"soak small" ~base_seed:120_000L ~jobs ~pool
      ~checkpoint:(ck "SOAK_small_checkpoint.json") ~n:1_000 cfg
  in
  (* The constant-memory gate compares the *live* heap -- what actually
     survives a full major collection -- between the 10^3 campaign and
     the soak. The top-heap high-water mark from [Gc.quick_stat] is
     reported alongside, but only informationally: it ratchets up with
     the collector's pacing for hundreds of thousands of runs even when
     the live set is flat, so gating on it measures GC heuristics, not
     the streaming accumulator. *)
  let live_heap () =
    (* Twice: the first finishes the in-flight incremental cycle, the
       second collects everything that died during it. *)
    Gc.full_major ();
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let live_small = live_heap () in
  let heap_small = (Gc.quick_stat ()).Gc.top_heap_words in
  Format.printf "10^3 streaming: %7.1f runs/s, live %d words, top heap %d@."
    (Inject.Campaign.runs_per_sec small)
    live_small heap_small;
  let big =
    Inject.Campaign.run ~label:"soak" ~base_seed:120_000L ~jobs ~pool
      ~checkpoint:(ck "SOAK_checkpoint.json") ~n cfg
  in
  let live_big = live_heap () in
  let heap_big = (Gc.quick_stat ()).Gc.top_heap_words in
  (* Keep the pool reachable past the second measurement; its booted
     machines dominate the live set, and letting the optimizer treat it
     as dead after its last campaign would make the two live-heap
     samples measure different worlds. *)
  ignore (Sys.opaque_identity pool);
  let rps = Inject.Campaign.runs_per_sec big in
  let words_per_run =
    big.Inject.Campaign.minor_words /. float_of_int (max 1 n)
  in
  let growth_pct =
    100.0
    *. float_of_int (live_big - live_small)
    /. float_of_int (max 1 live_small)
  in
  Format.printf
    "%d-run soak: %7.1f runs/s, %.0f minor words/run, live %d words \
     (%+.2f%% vs 10^3), top heap %d@."
    n rps words_per_run live_big growth_pct heap_big;
  (* Kill -> resume determinism drill, small enough to run thrice. A
     20-chunk prefix simulates the kill; the resume runs with a
     different --jobs (oversubscribed so several domains actually run
     on this host) and must land on the uninterrupted aggregate with a
     byte-identical checkpoint. *)
  let drill_n = 4_000 in
  let drill ~path ~stop_after ~resume ~jobs ~oversubscribe =
    (* No pool here: the resume runs with more jobs than the pool has
       slots, and extra workers booting their own machine is exactly the
       add-workers-on-resume scenario. *)
    Inject.Campaign.run ~label:"resume drill" ~base_seed:130_000L ~jobs
      ~oversubscribe ~chunk:64
      ~checkpoint:
        {
          Inject.Campaign.ck_path = path;
          ck_every = 4;
          ck_resume = resume;
          ck_stop_after = stop_after;
        }
      ~n:drill_n cfg
  in
  let killed =
    drill ~path:"SOAK_resume.json" ~stop_after:(Some 20) ~resume:false ~jobs:1
      ~oversubscribe:false
  in
  Format.printf "killed after %d/%d runs; resuming with jobs=2@."
    killed.Inject.Campaign.totals.Inject.Campaign.runs drill_n;
  let resumed =
    drill ~path:"SOAK_resume.json" ~stop_after:None ~resume:true ~jobs:2
      ~oversubscribe:true
  in
  let uninterrupted =
    drill ~path:"SOAK_uninterrupted.json" ~stop_after:None ~resume:false
      ~jobs:1 ~oversubscribe:false
  in
  let resume_identical =
    Inject.Campaign.snapshot resumed.Inject.Campaign.totals
    = Inject.Campaign.snapshot uninterrupted.Inject.Campaign.totals
  in
  let bytes_identical =
    read_file "SOAK_resume.json" = read_file "SOAK_uninterrupted.json"
  in
  Format.printf "resume aggregate identical: %b, checkpoint bytes identical: %b@."
    resume_identical bytes_identical;
  let oc = open_out !soak_out in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"soak\",\n\
    \  \"runs\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"seconds\": %.3f,\n\
    \  \"runs_per_sec\": %.2f,\n\
    \  \"minor_words_per_run\": %.0f,\n\
    \  \"live_words_small\": %d,\n\
    \  \"live_words_soak\": %d,\n\
    \  \"top_heap_words_small\": %d,\n\
    \  \"top_heap_words_soak\": %d,\n\
    \  \"max_heap_growth_pct\": %.3f,\n\
    \  \"max_heap_growth_ceiling_pct\": %.2f,\n\
    \  \"resume_identical\": %b,\n\
    \  \"checkpoint_bytes_identical\": %b\n\
     }\n"
    n big.Inject.Campaign.jobs big.Inject.Campaign.wall_seconds rps
    words_per_run live_small live_big heap_small heap_big growth_pct
    !max_heap_growth resume_identical bytes_identical;
  close_out oc;
  Format.printf "wrote %s@." !soak_out;
  if growth_pct > !max_heap_growth then begin
    Format.printf
      "FAIL: live heap grew %.2f%% from 10^3 to %d runs (ceiling %.1f%%)@."
      growth_pct n !max_heap_growth;
    exit 1
  end;
  if not (resume_identical && bytes_identical) then begin
    Format.printf "FAIL: kill -> resume did not reproduce the aggregate@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fleet: hundreds of tenant VMs, request latency through a recovery    *)
(* event, per mechanism. Gates (a) the incremental microreset: its mean *)
(* recovery latency must be at most --max-incremental-frac of the       *)
(* full-scan's at the paper's reference geometry (2 Mi frames); (b) the *)
(* sharded recovery: its request p99 through the event must be strictly *)
(* below serial (full-scan) recovery's; and (c) jobs invariance: every  *)
(* mechanism's merged aggregate must be bit-identical when the trials   *)
(* are re-run on a different, oversubscribed worker count.              *)
(* BENCH_fleet.json.                                                    *)
(* ------------------------------------------------------------------ *)

let fleet_bench () =
  hr "Fleet: tenant request latency through a recovery event";
  tune_gc_for_campaigns ();
  let cfg =
    if !full then Fleet.default_config
    else { Fleet.default_config with Fleet.tenants = 96; trials = 2 }
  in
  let j = resolve_jobs () in
  Format.printf "%d tenants, %d trials/mechanism, %d victims, jobs=%d@.@."
    cfg.Fleet.tenants cfg.Fleet.trials cfg.Fleet.victims j;
  let results =
    List.map
      (fun mech ->
        let r = Fleet.run ~jobs:j cfg mech in
        Format.printf "  %a" Fleet.pp r;
        r)
      Fleet.all_mechanisms
  in
  let find mech =
    List.find (fun (r : Fleet.result) -> r.Fleet.mech = mech) results
  in
  let full_r = find Fleet.Serial_full in
  let incr_r = find Fleet.Serial_incremental in
  let shard_r = find Fleet.Sharded in
  let full_mean = Fleet.recovery_mean_ns full_r in
  let incr_mean = Fleet.recovery_mean_ns incr_r in
  let frac = float_of_int incr_mean /. float_of_int full_mean in
  let p99_full = Fleet.request_quantile full_r 0.99 in
  let p99_shard = Fleet.request_quantile shard_r 0.99 in
  Format.printf
    "@.incremental/full recovery mean: %a / %a = %.3f (ceiling %.2f)@."
    Sim.Time.pp_ms incr_mean Sim.Time.pp_ms full_mean frac
    !max_incremental_frac;
  Format.printf "request p99 through the event: sharded %a vs serial-full %a@."
    Sim.Time.pp_ms p99_shard Sim.Time.pp_ms p99_full;
  (* Jobs invariance, the adversarial way: different worker count,
     oversubscribed scheduling. *)
  let invariant =
    List.for_all
      (fun (r : Fleet.result) ->
        let r' = Fleet.run ~jobs:(j + 1) ~oversubscribe:true cfg r.Fleet.mech in
        r'.Fleet.metrics = r.Fleet.metrics)
      results
  in
  Format.printf "aggregates jobs-invariant (jobs=%d vs %d): %b@." j (j + 1)
    invariant;
  let oc = open_out !fleet_out in
  Fleet.write_json oc cfg results;
  close_out oc;
  Format.printf "wrote %s@." !fleet_out;
  if frac > !max_incremental_frac then begin
    Format.printf
      "FAIL: incremental microreset is %.3f of the full scan (ceiling %.2f)@."
      frac !max_incremental_frac;
    exit 1
  end;
  if p99_shard >= p99_full then begin
    Format.printf
      "FAIL: sharded request p99 (%a) not below serial recovery's (%a)@."
      Sim.Time.pp_ms p99_shard Sim.Time.pp_ms p99_full;
    exit 1
  end;
  if not invariant then begin
    Format.printf "FAIL: fleet aggregates depend on --jobs@.";
    exit 1
  end

let () =
  Arg.parse
    [
      ("--full", Arg.Set full, " paper-sized campaigns");
      ( "--jobs",
        Arg.Set_int jobs,
        " parallel worker domains for campaigns (0 = one per core; default 1)" );
      ( "--json-out",
        Arg.Set_string json_out,
        " output path for the campaign_smoke JSON record" );
      ( "--obs-out",
        Arg.Set_string obs_out,
        " output path for the campaign_smoke metrics snapshot (nlh-obs/1)" );
      ( "--scaling-out",
        Arg.Set_string scaling_out,
        " output path for the scaling sweep JSON record" );
      ( "--min-speedup",
        Arg.Set_float min_speedup,
        " fail the scaling sweep if jobs>1 throughput is below this x jobs=1" );
      ( "--max-words-per-run",
        Arg.Set_float max_words_per_run,
        " fail the scaling sweep if any point allocates more minor words per \
         run" );
      ( "--alloc-out",
        Arg.Set_string alloc_out,
        " output path for the allocation-attribution JSON record" );
      ( "--endurance-out",
        Arg.Set_string endurance_out,
        " output path for the endurance smoke JSON record (nlh-endurance/1)" );
      ( "--leak-budget",
        Arg.Set_int leak_budget,
        " max leaked pages per recovery tolerated by the endurance smoke" );
      ( "--snapshot-out",
        Arg.Set_string snapshot_out,
        " output path for the snapshot/restore benchmark JSON record" );
      ( "--obs-bench-out",
        Arg.Set_string obs_bench_out,
        " output path for the observability-overhead JSON record" );
      ( "--triage-out",
        Arg.Set_string triage_out,
        " output path for the no-recovery campaign triage (nlh-triage/1; \
         empty = skip)" );
      ( "--max-obs-overhead",
        Arg.Set_float max_obs_overhead,
        " fail obs_overhead if postmortems cost more than this % runs/s" );
      ( "--fuzz-out",
        Arg.Set_string fuzz_out,
        " output path for the fuzz coverage-vs-grid JSON record" );
      ( "--soak-out",
        Arg.Set_string soak_out,
        " output path for the soak campaign JSON record" );
      ( "--soak-runs",
        Arg.Set_int soak_runs,
        " soak campaign size (default 100000; floor 1000)" );
      ( "--max-heap-growth",
        Arg.Set_float max_heap_growth,
        " fail the soak if top-heap words grow more than this % from the \
         1000-run campaign" );
      ( "--fleet-out",
        Arg.Set_string fleet_out,
        " output path for the fleet tail-latency JSON record (nlh-fleet/1)" );
      ( "--max-incremental-frac",
        Arg.Set_float max_incremental_frac,
        " fail the fleet section if incremental recovery mean exceeds this \
         fraction of the full scan's" );
    ]
    (fun s -> sections := s :: !sections)
    "bench/main.exe [--full] [--jobs N] [sections...]";
  if section "table1" then table1 ();
  if section "figure2" then figure2 ();
  if section "outcomes" then outcomes ();
  if section "table2" then table2 ();
  if section "table3" then table3 ();
  if section "figure3" then figure3 ();
  if section "table4" then table4 ();
  if section "latency" then latency_service ();
  if section "ablation" then ablation ();
  if section "ablation_logging" then ablation_logging ();
  if section "multivcpu" then multivcpu ();
  if section "micro" then microbench ();
  if section "campaign_smoke" then campaign_smoke ();
  if section "scaling" then scaling ();
  if section "endurance" then endurance ();
  if section "alloc" then alloc ();
  if section "snapshot" then snapshot_bench ();
  if section "obs_overhead" then obs_overhead ();
  if section "fuzz" then fuzz_bench ();
  if section "soak" then soak ();
  if section "fleet" then fleet_bench ();
  Format.printf "@.done.@."
