(* Fleet tail-latency explorer: host hundreds of tenant VMs, inject a
   recovery event under them, and report per-mechanism request latency
   quantiles through the event (p50/p99/p999), SLO violations and
   netstack loss -- the end-user view of hypervisor recovery.

     dune exec bin/nlh_fleet.exe -- --tenants 200 --trials 4 --jobs 4
     dune exec bin/nlh_fleet.exe -- --mech sharded --out fleet.json *)

let () =
  let tenants = ref Fleet.default_config.Fleet.tenants in
  let trials = ref Fleet.default_config.Fleet.trials in
  let victims = ref Fleet.default_config.Fleet.victims in
  let jobs = ref 1 in
  let seed = ref (Int64.to_int Fleet.default_config.Fleet.base_seed) in
  let out = ref "" in
  let mechs = ref [] in
  let selfcheck = ref false in
  let add_mech s =
    match Fleet.mechanism_of_string s with
    | Some m -> mechs := m :: !mechs
    | None ->
      prerr_endline
        ("unknown mechanism " ^ s
       ^ " (expected serial-full | serial-incremental | sharded)");
      exit 2
  in
  let spec =
    [
      ("--tenants", Arg.Set_int tenants, "N tenant VMs on the host (200)");
      ("--trials", Arg.Set_int trials, "N independent trials per mechanism (4)");
      ("--victims", Arg.Set_int victims, "N tenants damaged by the fault (3)");
      ("--jobs", Arg.Set_int jobs, "N worker processes for trials (1)");
      ("--seed", Arg.Set_int seed, "N base seed (42000)");
      ( "--mech",
        Arg.String add_mech,
        "M serial-full|serial-incremental|sharded (default: all three)" );
      ("--out", Arg.Set_string out, "FILE write nlh-fleet/1 JSON");
      ( "--selfcheck",
        Arg.Set selfcheck,
        " verify aggregates are jobs-invariant (jobs=1 vs jobs=2)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "nlh_fleet: tenant-fleet request latency through a recovery event";
  let cfg =
    {
      Fleet.default_config with
      Fleet.tenants = !tenants;
      trials = !trials;
      victims = !victims;
      base_seed = Int64.of_int !seed;
    }
  in
  let mechs =
    if !mechs = [] then Fleet.all_mechanisms else List.rev !mechs
  in
  if !selfcheck then begin
    (* The fleet contract: trial aggregation is a commutative merge of
       per-trial snapshots, so results are bit-identical for any --jobs.
       Exercise it the adversarial way -- serial vs oversubscribed. *)
    List.iter
      (fun mech ->
        let a = Fleet.run ~jobs:1 cfg mech in
        let b = Fleet.run ~jobs:2 ~oversubscribe:true cfg mech in
        if a.Fleet.metrics <> b.Fleet.metrics then begin
          Format.printf "FAIL: %s aggregates differ between jobs=1 and jobs=2@."
            (Fleet.mechanism_name mech);
          exit 1
        end)
      mechs;
    Format.printf "selfcheck OK: aggregates jobs-invariant for %s@."
      (String.concat ", " (List.map Fleet.mechanism_name mechs))
  end;
  Format.printf
    "Fleet: %d tenants, %d trials/mechanism, %d victims, jobs=%d@.@." !tenants
    !trials !victims !jobs;
  let results =
    List.map
      (fun mech ->
        let r = Fleet.run ~jobs:!jobs cfg mech in
        Format.printf "  %a" Fleet.pp r;
        r)
      mechs
  in
  if !out <> "" then begin
    let oc = open_out !out in
    Fleet.write_json oc cfg results;
    close_out oc;
    Format.printf "@.wrote %s@." !out
  end
