(* Shared observability CLI plumbing for the nlh_* tools:
   --trace FILE / --trace-level LEVEL / --metrics FILE. *)

let trace_file = ref ""
let trace_level = ref "info"
let metrics_file = ref ""

let arg_specs =
  [
    ( "--trace",
      Arg.Set_string trace_file,
      "FILE write a Chrome-trace JSON timeline (Perfetto-loadable) of one \
       instrumented run" );
    ( "--trace-level",
      Arg.Symbol
        ( [ "debug"; "info"; "warn"; "error" ],
          fun s -> trace_level := s ),
      " minimum event level kept in the trace ring (default info)" );
    ( "--metrics",
      Arg.Set_string metrics_file,
      "FILE write metrics as JSON (nlh-obs/1 schema)" );
  ]

let level () =
  match Obs.Event.level_of_string !trace_level with
  | Some l -> l
  | None -> Obs.Event.Info

let make_recorder () =
  Obs.Recorder.create ~capacity:65536 ~min_level:(level ()) ()

(* Re-run one injection with a full recorder attached and export its
   Chrome-trace timeline. Prints the recovery-phase breakdown, whose
   entries equal the per-phase span sums by construction. *)
let traced_run path (cfg : Inject.Run.config) =
  let recorder = make_recorder () in
  let outcome = Inject.Run.run_obs ~recorder cfg in
  Obs.Export.write_chrome_trace path recorder;
  Format.printf "trace: wrote %s (%d events, %d spans; outcome: %s)@." path
    (Obs.Trace.size recorder.Obs.Recorder.trace)
    (Obs.Span.count recorder.Obs.Recorder.spans)
    (Inject.Run.outcome_name outcome);
  (match outcome with
  | Inject.Run.Detected { breakdown = Some b; _ } ->
    Format.printf "recovery phases of the traced run:@.%a" Hyper.Latency_model.pp b
  | Inject.Run.Detected _ | Inject.Run.Non_manifested
  | Inject.Run.Silent_corruption ->
    ());
  outcome

let write_metrics ?meta path snapshot =
  Obs.Export.write_metrics_json ?meta path snapshot;
  Format.printf "metrics: wrote %s@." path
