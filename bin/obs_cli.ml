(* Shared observability CLI plumbing for the nlh_* tools:
   --trace FILE / --trace-level LEVEL / --metrics FILE, plus the
   checkpoint/resume flags shared by nlh_campaign and nlh_endurance. *)

let trace_file = ref ""
let trace_level = ref "info"
let metrics_file = ref ""
let triage_file = ref ""
let postmortem_dir = ref ""
let checkpoint_file = ref ""
let checkpoint_every = ref 16
let resume = ref false
let stop_after_chunks = ref 0
let triage_seeds = ref 0

(* Postmortem capture is on when either output is requested. *)
let postmortems_on () = !triage_file <> "" || !postmortem_dir <> ""

(* The checkpoint config assembled from the flags; [None] unless
   --checkpoint was given. *)
let checkpoint () : Inject.Campaign.checkpoint option =
  if !checkpoint_file = "" then begin
    if !resume then
      raise (Arg.Bad "--resume requires --checkpoint FILE");
    None
  end
  else
    Some
      {
        Inject.Campaign.ck_path = !checkpoint_file;
        ck_every = max 1 !checkpoint_every;
        ck_resume = !resume;
        ck_stop_after =
          (if !stop_after_chunks > 0 then Some !stop_after_chunks else None);
      }

let triage_seed_cap () =
  if !triage_seeds > 0 then Some !triage_seeds else None

let arg_specs =
  [
    ( "--trace",
      Arg.Set_string trace_file,
      "FILE write a Chrome-trace JSON timeline (Perfetto-loadable) of one \
       instrumented run" );
    ( "--trace-level",
      Arg.Symbol
        ( [ "debug"; "info"; "warn"; "error" ],
          fun s -> trace_level := s ),
      " minimum event level kept in the trace ring (default info)" );
    ( "--metrics",
      Arg.Set_string metrics_file,
      "FILE write metrics as JSON (nlh-obs/1 schema)" );
    ( "--triage-out",
      Arg.Set_string triage_file,
      "FILE write failure-signature triage as JSON (nlh-triage/1 schema)" );
    ( "--postmortem-dir",
      Arg.Set_string postmortem_dir,
      "DIR write one exemplar postmortem bundle per failure signature \
       (nlh-postmortem/1 schema)" );
    ( "--checkpoint",
      Arg.Set_string checkpoint_file,
      "FILE stream partial aggregates to FILE (nlh-checkpoint/1 schema, \
       atomic rewrite) so the campaign can be resumed after a kill" );
    ( "--checkpoint-every",
      Arg.Set_int checkpoint_every,
      "N rewrite the checkpoint every N completed chunks (default 16)" );
    ( "--resume",
      Arg.Set resume,
      " resume from --checkpoint FILE: skip completed chunks and merge \
       into the saved aggregate (chunk size and fanout are pinned by the \
       file; --jobs may differ freely)" );
    ( "--stop-after-chunks",
      Arg.Set_int stop_after_chunks,
      "N stop claiming work after N chunks have been published (testing \
       aid: simulates a mid-campaign kill with a consistent checkpoint)" );
    ( "--triage-seeds",
      Arg.Set_int triage_seeds,
      "K keep at most K smallest failing seeds per triage signature \
       (default 8)" );
  ]

let level () =
  match Obs.Event.level_of_string !trace_level with
  | Some l -> l
  | None -> Obs.Event.Info

let make_recorder () =
  Obs.Recorder.create ~capacity:65536 ~min_level:(level ()) ()

(* Re-run one injection with a full recorder attached and export its
   Chrome-trace timeline. Prints the recovery-phase breakdown, whose
   entries equal the per-phase span sums by construction. *)
let traced_run path (cfg : Inject.Run.config) =
  let recorder = make_recorder () in
  let outcome = Inject.Run.run_obs ~recorder cfg in
  Obs.Export.write_chrome_trace path recorder;
  Format.printf "trace: wrote %s (%d events, %d spans; outcome: %s)@." path
    (Obs.Trace.size recorder.Obs.Recorder.trace)
    (Obs.Span.count recorder.Obs.Recorder.spans)
    (Inject.Run.outcome_name outcome);
  (match outcome with
  | Inject.Run.Detected { breakdown = Some b; _ } ->
    Format.printf "recovery phases of the traced run:@.%a" Hyper.Latency_model.pp b
  | Inject.Run.Detected _ | Inject.Run.Non_manifested
  | Inject.Run.Silent_corruption ->
    ());
  outcome

let write_metrics ?meta path snapshot =
  Obs.Export.write_metrics_json ?meta path snapshot;
  Format.printf "metrics: wrote %s@." path

(* Emit the triage artifacts requested on the command line: the
   nlh-triage/1 summary document and/or one exemplar bundle file per
   failure signature. A campaign with no bad outcomes still writes a
   valid (empty) triage document, so downstream tooling never has to
   special-case the happy path. *)
let write_triage ?meta (triage : Obs.Postmortem.Triage.table) =
  if !triage_file <> "" then begin
    Obs.Export.write_file !triage_file
      (Obs.Postmortem.Triage.to_json ?meta triage);
    Format.printf "triage: wrote %s (%d signature(s), %d failure(s))@."
      !triage_file
      (Obs.Postmortem.Triage.signatures triage)
      (Obs.Postmortem.Triage.total triage)
  end;
  if !postmortem_dir <> "" then begin
    let files = Obs.Postmortem.Triage.write_postmortems ~dir:!postmortem_dir triage in
    Format.printf "postmortems: wrote %d bundle(s) under %s@."
      (List.length files) !postmortem_dir
  end
