(* Postmortem reader: human-oriented rendering of the triage artifacts.

   Given an nlh-triage/1 document, prints the failure-signature table --
   count, failing seeds, and the exemplar's one-line repro -- sorted by
   descending count so the dominant failure mode tops the list. Given an
   nlh-postmortem/1 bundle, pretty-prints the whole forensic record:
   causal timeline, first corrupted-structure touch, recovery phases,
   flight-ring tails and the resource-ledger diff. Accepts several files
   and dispatches per file on the "schema" member. *)

let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let get path what key v =
  match Obs.Json.member key v with
  | Some x -> x
  | None -> die "%s: %s: missing %S" path what key

let str path what key v =
  match Obs.Json.to_string (get path what key v) with
  | Some s -> s
  | None -> die "%s: %s: %S is not a string" path what key

let int_of path what key v =
  match Obs.Json.to_number (get path what key v) with
  | Some f -> int_of_float f
  | None -> die "%s: %s: %S is not a number" path what key

let list_of path what key v =
  match Obs.Json.to_list (get path what key v) with
  | Some l -> l
  | None -> die "%s: %s: %S is not an array" path what key

let named_ns path what key v =
  List.map
    (fun e -> (str path what "name" e, int_of path what "ns" e))
    (list_of path what key v)

(* --- Bundle rendering ------------------------------------------------ *)

let print_bundle path what b =
  Printf.printf "  signature: %s\n" (str path what "signature" b);
  Printf.printf "  outcome:   %s\n" (str path what "outcome" b);
  Printf.printf "  seed:      %d\n" (int_of path what "seed" b);
  Printf.printf "  repro:     %s\n" (str path what "repro" b);
  (match get path what "config" b with
  | Obs.Json.Obj fields ->
    Printf.printf "  config:   ";
    List.iter
      (fun (k, v) ->
        match Obs.Json.to_string v with
        | Some s -> Printf.printf " %s=%s" k s
        | None -> ())
      fields;
    print_newline ()
  | _ -> ());
  let timeline = list_of path what "timeline" b in
  if timeline <> [] then begin
    Printf.printf "  timeline (%d events):\n" (List.length timeline);
    List.iter
      (fun e ->
        Printf.printf "    %10d ns  %-9s %s\n"
          (int_of path what "ns" e)
          (str path what "label" e)
          (str path what "event" e))
      timeline
  end;
  (match get path what "first_touch" b with
  | Obs.Json.Null -> ()
  | ft ->
    Printf.printf "  first touch after injection: %s at %d ns\n"
      (str path what "name" ft) (int_of path what "ns" ft));
  let section title rows =
    if rows <> [] then begin
      Printf.printf "  %s:\n" title;
      List.iter (fun (n, ns) -> Printf.printf "    %-28s %10d ns\n" n ns) rows
    end
  in
  section "recovery phases" (named_ns path what "recovery_phases" b);
  section "hypercall tail" (named_ns path what "hypercalls" b);
  section "journal tail" (named_ns path what "journal_tail" b);
  match get path what "ledger_diff" b with
  | Obs.Json.Obj fields when fields <> [] ->
    Printf.printf "  ledger diff vs boot:\n";
    List.iter
      (fun (k, v) ->
        match Obs.Json.to_number v with
        | Some f -> Printf.printf "    %-28s %+d\n" k (int_of_float f)
        | None -> ())
      fields
  | _ -> ()

(* --- Triage rendering ------------------------------------------------ *)

let print_triage path root =
  let sigs = list_of path "document" "signatures" root in
  Printf.printf "%s: %d failure(s) across %d signature(s)\n" path
    (int_of path "document" "total" root)
    (List.length sigs);
  let by_count =
    (* Descending count, key as the deterministic tie-break. *)
    List.stable_sort
      (fun a b ->
        let ca = int_of path "sig" "count" a
        and cb = int_of path "sig" "count" b in
        if ca <> cb then compare cb ca
        else
          String.compare (str path "sig" "signature" a)
            (str path "sig" "signature" b))
      sigs
  in
  List.iter
    (fun e ->
      let what = "signature " ^ str path "sig" "signature" e in
      Printf.printf "\n%4dx %s\n" (int_of path what "count" e)
        (str path what "signature" e);
      let seeds =
        List.filter_map Obs.Json.to_number (list_of path what "seeds" e)
      in
      Printf.printf "      seeds:%s\n"
        (String.concat ""
           (List.map (fun s -> Printf.sprintf " %d" (int_of_float s)) seeds));
      match get path what "exemplar" e with
      | Obs.Json.Null -> ()
      | b -> Printf.printf "      repro: %s\n" (str path what "repro" b))
    by_count

let () =
  if Array.length Sys.argv < 2 then
    die "usage: nlh_postmortem TRIAGE.json|BUNDLE.json...";
  for i = 1 to Array.length Sys.argv - 1 do
    let path = Sys.argv.(i) in
    let contents = try read_file path with Sys_error e -> die "%s" e in
    let root =
      match Obs.Json.parse contents with
      | Ok v -> v
      | Error msg -> die "%s: invalid JSON: %s" path msg
    in
    match Option.bind (Obs.Json.member "schema" root) Obs.Json.to_string with
    | Some "nlh-triage/1" -> print_triage path root
    | Some "nlh-postmortem/1" ->
      Printf.printf "%s:\n" path;
      print_bundle path "bundle" root
    | Some s -> die "%s: unsupported schema %S" path s
    | None -> die "%s: missing schema member" path
  done
