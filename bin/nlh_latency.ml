(* Recovery-latency explorer: print the Table II/III breakdowns for a
   configurable machine geometry, demonstrating the paper's point that
   NiLiHype's latency is proportional to host memory size (and how that
   could be mitigated).

     dune exec bin/nlh_latency.exe -- --mem-gb 32 --cpus 16 *)

let minor_words_per_run (r : Inject.Campaign.result) =
  let n = r.Inject.Campaign.totals.Inject.Campaign.runs in
  if n > 0 then r.Inject.Campaign.minor_words /. float_of_int n else 0.0

(* Empirical cross-check of the analytic model: measure the mean
   recovery latency observed across a failstop campaign (parallelised
   over [jobs] domains), and report the campaign's allocation cost the
   same way the bench sections do. Returns the campaign result so the
   JSON export can include it. *)
let empirical_latency ~runs ~jobs =
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
    }
  in
  let r = Inject.Campaign.run ~label:"latency" ~base_seed:42_000L ~jobs ~n:runs cfg in
  Format.printf
    "@.Empirical (campaign of %d failstop injections, jobs=%d, wall %.2fs, \
     %.1f runs/s, %.0f minor words/run):@."
    runs r.Inject.Campaign.jobs r.Inject.Campaign.wall_seconds
    (Inject.Campaign.runs_per_sec r)
    (minor_words_per_run r);
  (match Inject.Campaign.mean_latency r with
  | Some l ->
    Format.printf "  mean NiLiHype recovery latency over %d recoveries: %a@."
      r.Inject.Campaign.totals.Inject.Campaign.latency_samples Sim.Time.pp_float l
  | None -> Format.printf "  no recovery latency samples recorded@.");
  r

(* Hand-rolled like the bench records: schema [nlh-latency/1]. The
   analytic Table II/III latencies plus, when --runs was given, the
   empirical campaign cross-check with its words/run -- so latency
   explorations are covered by the same allocation accounting as
   campaigns. *)
let write_json path ~mem_gb ~mconfig ~(nl : Recovery.Engine.outcome)
    ~(re : Recovery.Engine.outcome) ~(empirical : Inject.Campaign.result option)
    =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"nlh-latency/1\",\n";
  Printf.fprintf oc "  \"tool\": \"nlh_latency\",\n";
  Printf.fprintf oc "  \"mem_gb\": %d,\n  \"cpus\": %d,\n" mem_gb
    mconfig.Hw.Machine.num_cpus;
  Printf.fprintf oc "  \"nilihype_latency_ns\": %d,\n" nl.Recovery.Engine.latency;
  Printf.fprintf oc "  \"rehype_latency_ns\": %d,\n" re.Recovery.Engine.latency;
  Printf.fprintf oc "  \"rehype_over_nilihype\": %.2f" 
    (float_of_int re.Recovery.Engine.latency
    /. float_of_int nl.Recovery.Engine.latency);
  (match empirical with
  | None -> ()
  | Some r ->
    Printf.fprintf oc ",\n  \"empirical\": {\n";
    Printf.fprintf oc "    \"runs\": %d,\n    \"jobs\": %d,\n"
      r.Inject.Campaign.totals.Inject.Campaign.runs r.Inject.Campaign.jobs;
    Printf.fprintf oc "    \"seconds\": %.3f,\n" r.Inject.Campaign.wall_seconds;
    Printf.fprintf oc "    \"runs_per_sec\": %.1f,\n"
      (Inject.Campaign.runs_per_sec r);
    Printf.fprintf oc "    \"minor_words\": %.0f,\n"
      r.Inject.Campaign.minor_words;
    Printf.fprintf oc "    \"minor_words_per_run\": %.0f,\n"
      (minor_words_per_run r);
    (match Inject.Campaign.mean_latency r with
    | Some l -> Printf.fprintf oc "    \"mean_recovery_latency_ns\": %.0f,\n" l
    | None -> ());
    Printf.fprintf oc "    \"latency_samples\": %d\n  }"
      r.Inject.Campaign.totals.Inject.Campaign.latency_samples);
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Format.printf "latency report written to %s@." path

let () =
  let mem_gb = ref 8 in
  let cpus = ref 8 in
  let runs = ref 0 in
  let jobs = ref 1 in
  let json_out = ref "" in
  let spec =
    [
      ("--mem-gb", Arg.Set_int mem_gb, " host memory in GiB (default 8)");
      ("--cpus", Arg.Set_int cpus, " physical CPUs (default 8)");
      ( "--runs",
        Arg.Set_int runs,
        " also measure mean latency over a failstop campaign of this size" );
      ( "--jobs",
        Arg.Set_int jobs,
        " parallel worker domains for --runs (0 = one per core; default 1)" );
      ( "--json-out",
        Arg.Set_string json_out,
        " write the latency report (analytic + empirical) as JSON" );
    ]
    @ Obs_cli.arg_specs
  in
  Arg.parse spec (fun _ -> ()) "nlh_latency [options]";
  let mconfig =
    {
      Hw.Machine.default_config with
      Hw.Machine.mem_bytes = !mem_gb * 1024 * 1024 * 1024;
      num_cpus = max 2 !cpus;
    }
  in
  let measure ?obs mechanism =
    let clock = Sim.Clock.create () in
    let config = Recovery.Engine.config mechanism in
    let hv =
      Hyper.Hypervisor.boot ~mconfig ?obs ~config
        ~setup:Hyper.Hypervisor.One_appvm clock
    in
    Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
    Recovery.Engine.recover mechanism hv ~enh:Recovery.Enhancement.full_set
      ~detected_on:0
  in
  (* With --trace/--metrics, the NiLiHype measurement runs against a full
     recorder: its recovery spans become the exported timeline. *)
  let recorder =
    if !Obs_cli.trace_file <> "" || !Obs_cli.metrics_file <> "" then
      Some (Obs_cli.make_recorder ())
    else None
  in
  Format.printf "Machine: %d GiB RAM (%d frames), %d CPUs@.@." !mem_gb
    (mconfig.Hw.Machine.mem_bytes / Hw.Machine.page_size)
    mconfig.Hw.Machine.num_cpus;
  let nl = measure ?obs:recorder Recovery.Engine.Nilihype in
  Format.printf "NiLiHype (microreset):@.%a@." Hyper.Latency_model.pp
    nl.Recovery.Engine.breakdown;
  (match recorder with
  | Some r ->
    if !Obs_cli.trace_file <> "" then begin
      Obs.Export.write_chrome_trace !Obs_cli.trace_file r;
      Format.printf "trace: wrote %s (%d events, %d spans)@." !Obs_cli.trace_file
        (Obs.Trace.size r.Obs.Recorder.trace)
        (Obs.Span.count r.Obs.Recorder.spans)
    end;
    if !Obs_cli.metrics_file <> "" then
      Obs_cli.write_metrics
        ~meta:
          [
            ("tool", `String "nlh_latency");
            ("mem_gb", `Int !mem_gb);
            ("cpus", `Int mconfig.Hw.Machine.num_cpus);
          ]
        !Obs_cli.metrics_file
        (Obs.Recorder.metrics_snapshot r)
  | None -> ());
  let re = measure Recovery.Engine.Rehype in
  Format.printf "ReHype (microreboot):@.%a@." Hyper.Latency_model.pp
    re.Recovery.Engine.breakdown;
  Format.printf "ratio: %.1fx@."
    (float_of_int re.Recovery.Engine.latency
    /. float_of_int nl.Recovery.Engine.latency);
  if !mem_gb > 8 then
    Format.printf
      "@.Note (Section VII-B): the page-frame scan grows linearly with \
       memory; the paper suggests parallelising it across cores or skipping \
       it at a ~4%% recovery-rate cost.@.";
  let empirical =
    if !runs > 0 then
      Some
        (empirical_latency ~runs:!runs
           ~jobs:(if !jobs > 0 then !jobs else Inject.Pool.default_jobs ()))
    else None
  in
  if !json_out <> "" then
    write_json !json_out ~mem_gb:!mem_gb ~mconfig ~nl ~re ~empirical
