(* Recovery-latency explorer: print the Table II/III breakdowns for a
   configurable machine geometry, demonstrating the paper's point that
   NiLiHype's latency is proportional to host memory size (and how that
   could be mitigated).

     dune exec bin/nlh_latency.exe -- --mem-gb 32 --cpus 16 *)

(* Empirical cross-check of the analytic model: measure the mean
   recovery latency observed across a failstop campaign (parallelised
   over [jobs] domains). *)
let empirical_latency ~runs ~jobs =
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault = Inject.Fault.Failstop;
      setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
    }
  in
  let r = Inject.Campaign.run ~label:"latency" ~base_seed:42_000L ~jobs ~n:runs cfg in
  Format.printf
    "@.Empirical (campaign of %d failstop injections, jobs=%d, wall %.2fs, \
     %.1f runs/s):@."
    runs r.Inject.Campaign.jobs r.Inject.Campaign.wall_seconds
    (Inject.Campaign.runs_per_sec r);
  match Inject.Campaign.mean_latency r with
  | Some l ->
    Format.printf "  mean NiLiHype recovery latency over %d recoveries: %a@."
      r.Inject.Campaign.totals.Inject.Campaign.latency_samples Sim.Time.pp_float l
  | None -> Format.printf "  no recovery latency samples recorded@."

let () =
  let mem_gb = ref 8 in
  let cpus = ref 8 in
  let runs = ref 0 in
  let jobs = ref 1 in
  let spec =
    [
      ("--mem-gb", Arg.Set_int mem_gb, " host memory in GiB (default 8)");
      ("--cpus", Arg.Set_int cpus, " physical CPUs (default 8)");
      ( "--runs",
        Arg.Set_int runs,
        " also measure mean latency over a failstop campaign of this size" );
      ( "--jobs",
        Arg.Set_int jobs,
        " parallel worker domains for --runs (0 = one per core; default 1)" );
    ]
    @ Obs_cli.arg_specs
  in
  Arg.parse spec (fun _ -> ()) "nlh_latency [options]";
  let mconfig =
    {
      Hw.Machine.default_config with
      Hw.Machine.mem_bytes = !mem_gb * 1024 * 1024 * 1024;
      num_cpus = max 2 !cpus;
    }
  in
  let measure ?obs mechanism =
    let clock = Sim.Clock.create () in
    let config = Recovery.Engine.config mechanism in
    let hv =
      Hyper.Hypervisor.boot ~mconfig ?obs ~config
        ~setup:Hyper.Hypervisor.One_appvm clock
    in
    Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
    Recovery.Engine.recover mechanism hv ~enh:Recovery.Enhancement.full_set
      ~detected_on:0
  in
  (* With --trace/--metrics, the NiLiHype measurement runs against a full
     recorder: its recovery spans become the exported timeline. *)
  let recorder =
    if !Obs_cli.trace_file <> "" || !Obs_cli.metrics_file <> "" then
      Some (Obs_cli.make_recorder ())
    else None
  in
  Format.printf "Machine: %d GiB RAM (%d frames), %d CPUs@.@." !mem_gb
    (mconfig.Hw.Machine.mem_bytes / Hw.Machine.page_size)
    mconfig.Hw.Machine.num_cpus;
  let nl = measure ?obs:recorder Recovery.Engine.Nilihype in
  Format.printf "NiLiHype (microreset):@.%a@." Hyper.Latency_model.pp
    nl.Recovery.Engine.breakdown;
  (match recorder with
  | Some r ->
    if !Obs_cli.trace_file <> "" then begin
      Obs.Export.write_chrome_trace !Obs_cli.trace_file r;
      Format.printf "trace: wrote %s (%d events, %d spans)@." !Obs_cli.trace_file
        (Obs.Trace.size r.Obs.Recorder.trace)
        (Obs.Span.count r.Obs.Recorder.spans)
    end;
    if !Obs_cli.metrics_file <> "" then
      Obs_cli.write_metrics
        ~meta:
          [
            ("tool", `String "nlh_latency");
            ("mem_gb", `Int !mem_gb);
            ("cpus", `Int mconfig.Hw.Machine.num_cpus);
          ]
        !Obs_cli.metrics_file
        (Obs.Recorder.metrics_snapshot r)
  | None -> ());
  let re = measure Recovery.Engine.Rehype in
  Format.printf "ReHype (microreboot):@.%a@." Hyper.Latency_model.pp
    re.Recovery.Engine.breakdown;
  Format.printf "ratio: %.1fx@."
    (float_of_int re.Recovery.Engine.latency
    /. float_of_int nl.Recovery.Engine.latency);
  if !mem_gb > 8 then
    Format.printf
      "@.Note (Section VII-B): the page-frame scan grows linearly with \
       memory; the paper suggests parallelising it across cores or skipping \
       it at a ~4%% recovery-rate cost.@.";
  if !runs > 0 then
    empirical_latency ~runs:!runs
      ~jobs:(if !jobs > 0 then !jobs else Inject.Pool.default_jobs ())
