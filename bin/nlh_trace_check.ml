(* Validate exported observability artifacts: well-formed JSON plus
   per-schema structural checks. Dispatches on document shape:

   - Chrome-trace timelines (a "traceEvents" array): rows all carry
     name/ph/ts and timestamps are globally non-decreasing.
   - "nlh-obs/1" metrics documents: counters/gauges are integer maps;
     histograms have strictly increasing bounds, counts one longer than
     bounds, counts summing to samples, and ordered quantile estimates.
   - "nlh-triage/1" triage documents: per-signature entries whose counts
     sum to the total, ascending seed sets, and well-formed exemplars.
   - "nlh-postmortem/1" bundles: signature grammar, timeline and
     flight-tail shape, monotone timeline timestamps.
   - "nlh-checkpoint/1" soak checkpoints: kind/fingerprint identity,
     ascending done-chunk indices in range, and a payload whose totals
     satisfy the per-kind accounting identities.
   - "nlh-fleet/1" fleet reports: known mechanisms appearing once each,
     request counts matching histogram samples, ordered latency
     quantiles, and per-trial scan-path accounting.

   Accepts any number of files; used by the @check alias as the
   export smoke test. *)

let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Chrome-trace ---------------------------------------------------- *)

let check_chrome path events =
  let spans = ref 0 and instants = ref 0 in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i row ->
      let str key =
        match Option.bind (Obs.Json.member key row) Obs.Json.to_string with
        | Some s -> s
        | None -> die "%s: traceEvents[%d]: missing string %S" path i key
      in
      let num key =
        match Option.bind (Obs.Json.member key row) Obs.Json.to_number with
        | Some f -> f
        | None -> die "%s: traceEvents[%d]: missing number %S" path i key
      in
      if str "name" = "" then die "%s: traceEvents[%d]: empty name" path i;
      let ts = num "ts" in
      if ts < 0.0 then die "%s: traceEvents[%d]: negative ts" path i;
      if ts < !last_ts then
        die "%s: traceEvents[%d]: ts %.3f < previous %.3f (not monotone)" path
          i ts !last_ts;
      last_ts := ts;
      match str "ph" with
      | "X" ->
        if num "dur" < 0.0 then die "%s: traceEvents[%d]: negative dur" path i;
        incr spans
      | "i" -> incr instants
      | ph -> die "%s: traceEvents[%d]: unexpected ph %S" path i ph)
    events;
  Printf.printf "%s: OK chrome-trace (%d rows: %d spans, %d instants)\n" path
    (List.length events) !spans !instants

(* --- Shared accessors ------------------------------------------------ *)

let obj_members path what v =
  match v with
  | Obs.Json.Obj fields -> fields
  | _ -> die "%s: %s is not an object" path what

let list_of path what v =
  match Obs.Json.to_list v with
  | Some l -> l
  | None -> die "%s: %s is not an array" path what

let get path what key v =
  match Obs.Json.member key v with
  | Some x -> x
  | None -> die "%s: %s: missing %S" path what key

let num path what key v =
  match Obs.Json.to_number (get path what key v) with
  | Some f -> f
  | None -> die "%s: %s: %S is not a number" path what key

let str path what key v =
  match Obs.Json.to_string (get path what key v) with
  | Some s -> s
  | None -> die "%s: %s: %S is not a string" path what key

let int_assoc path what v =
  List.iter
    (fun (k, x) ->
      if Obs.Json.to_number x = None then
        die "%s: %s: %S is not a number" path what k)
    (obj_members path what v)

(* --- nlh-obs/1 ------------------------------------------------------- *)

let check_metrics path root =
  int_assoc path "counters" (get path "document" "counters" root);
  int_assoc path "gauges" (get path "document" "gauges" root);
  let hists =
    obj_members path "histograms" (get path "document" "histograms" root)
  in
  List.iter
    (fun (name, h) ->
      let what = Printf.sprintf "histograms[%S]" name in
      let bounds =
        List.map
          (fun b ->
            match Obs.Json.to_number b with
            | Some f -> f
            | None -> die "%s: %s: non-numeric bound" path what)
          (list_of path what (get path what "bounds" h))
      in
      let rec mono = function
        | a :: (b :: _ as r) ->
          if a >= b then die "%s: %s: bounds not strictly increasing" path what;
          mono r
        | _ -> ()
      in
      mono bounds;
      let counts =
        List.map
          (fun c ->
            match Obs.Json.to_number c with
            | Some f when f >= 0.0 -> f
            | _ -> die "%s: %s: bad bucket count" path what)
          (list_of path what (get path what "counts" h))
      in
      if List.length counts <> List.length bounds + 1 then
        die "%s: %s: %d counts for %d bounds (want bounds+1)" path what
          (List.length counts) (List.length bounds);
      let samples = num path what "samples" h in
      ignore (num path what "sum" h);
      if List.fold_left ( +. ) 0.0 counts <> samples then
        die "%s: %s: counts do not sum to samples" path what;
      (* Quantiles: present together iff the histogram is non-empty,
         and necessarily ordered. *)
      let q key = Option.bind (Obs.Json.member key h) Obs.Json.to_number in
      match (q "p50", q "p99", q "p999") with
      | Some p50, Some p99, Some p999 ->
        if samples <= 0.0 then
          die "%s: %s: quantiles on an empty histogram" path what;
        if not (p50 <= p99 && p99 <= p999) then
          die "%s: %s: quantiles not ordered (p50 %g p99 %g p999 %g)" path
            what p50 p99 p999
      | None, None, None ->
        if samples > 0.0 then
          die "%s: %s: non-empty histogram missing quantiles" path what
      | _ -> die "%s: %s: partial quantile set" path what)
    hists;
  Printf.printf "%s: OK nlh-obs/1 (%d histograms)\n" path (List.length hists)

(* --- nlh-postmortem/1 bundles ---------------------------------------- *)

(* Shared between standalone bundle files and triage exemplars. *)
let check_bundle path what b =
  let sg = str path what "signature" b in
  let parts = String.split_on_char '|' sg in
  if List.length parts <> 4 || List.exists (fun p -> p = "") parts then
    die "%s: %s: signature %S is not fault|target|cause|branch" path what sg;
  if str path what "outcome" b = "" then die "%s: %s: empty outcome" path what;
  if str path what "repro" b = "" then die "%s: %s: empty repro" path what;
  ignore (num path what "seed" b);
  List.iter
    (fun (k, v) ->
      if Obs.Json.to_string v = None then
        die "%s: %s: config[%S] is not a string" path what k)
    (obj_members path (what ^ ".config") (get path what "config" b));
  let last_ns = ref neg_infinity in
  List.iteri
    (fun i e ->
      let ewhat = Printf.sprintf "%s.timeline[%d]" what i in
      if str path ewhat "label" e = "" then die "%s: %s: empty label" path ewhat;
      if str path ewhat "event" e = "" then die "%s: %s: empty event" path ewhat;
      let ns = num path ewhat "ns" e in
      if ns < !last_ns then die "%s: %s: timeline not monotone" path ewhat;
      last_ns := ns)
    (list_of path (what ^ ".timeline") (get path what "timeline" b));
  (match get path what "first_touch" b with
  | Obs.Json.Null -> ()
  | ft ->
    ignore (str path (what ^ ".first_touch") "name" ft);
    ignore (num path (what ^ ".first_touch") "ns" ft));
  List.iter
    (fun key ->
      List.iteri
        (fun i e ->
          let ewhat = Printf.sprintf "%s.%s[%d]" what key i in
          ignore (str path ewhat "name" e);
          ignore (num path ewhat "ns" e))
        (list_of path (what ^ "." ^ key) (get path what key b)))
    [ "recovery_phases"; "hypercalls"; "journal_tail" ];
  int_assoc path (what ^ ".ledger_diff") (get path what "ledger_diff" b)

let check_postmortem path root =
  check_bundle path "bundle" root;
  Printf.printf "%s: OK nlh-postmortem/1 (%s)\n" path
    (str path "bundle" "signature" root)

(* --- nlh-triage/1 ---------------------------------------------------- *)

let check_triage path root =
  let total = num path "document" "total" root in
  let sigs =
    list_of path "signatures" (get path "document" "signatures" root)
  in
  let counted = ref 0.0 in
  let last_key = ref "" in
  List.iteri
    (fun i e ->
      let what = Printf.sprintf "signatures[%d]" i in
      let key = str path what "signature" e in
      if key <= !last_key && i > 0 then
        die "%s: %s: keys not strictly key-sorted" path what;
      last_key := key;
      (* The flat fields must agree with the composite key. *)
      let recomposed =
        String.concat "|"
          [
            str path what "fault" e;
            str path what "target" e;
            str path what "cause" e;
            str path what "branch" e;
          ]
      in
      if recomposed <> key then
        die "%s: %s: fields %S disagree with key %S" path what recomposed key;
      let count = num path what "count" e in
      if count < 1.0 then die "%s: %s: count < 1" path what;
      counted := !counted +. count;
      let seeds =
        List.map
          (fun s ->
            match Obs.Json.to_number s with
            | Some f -> f
            | None -> die "%s: %s: non-numeric seed" path what)
          (list_of path (what ^ ".seeds") (get path what "seeds" e))
      in
      if seeds = [] then die "%s: %s: empty seed set" path what;
      let rec asc = function
        | a :: (b :: _ as r) ->
          if a >= b then die "%s: %s: seeds not ascending" path what;
          asc r
        | _ -> ()
      in
      asc seeds;
      match get path what "exemplar" e with
      | Obs.Json.Null -> ()
      | b ->
        check_bundle path (what ^ ".exemplar") b;
        if str path (what ^ ".exemplar") "signature" b <> key then
          die "%s: %s: exemplar signature disagrees with key" path what)
    sigs;
  if !counted <> total then
    die "%s: signature counts sum to %g but total is %g" path !counted total;
  Printf.printf "%s: OK nlh-triage/1 (%d signatures, %g failures)\n" path
    (List.length sigs) total

(* --- nlh-checkpoint/1 ------------------------------------------------ *)

(* A checkpoint payload carries raw metrics aggregates (no derived
   quantiles), so the full nlh-obs/1 check does not apply: validate the
   counters/gauges maps and histogram raw-field invariants only. *)
let check_payload_metrics path what m =
  int_assoc path (what ^ ".counters") (get path what "counters" m);
  int_assoc path (what ^ ".gauges") (get path what "gauges" m);
  List.iter
    (fun (name, h) ->
      let hwhat = Printf.sprintf "%s.histograms[%S]" what name in
      let bounds = list_of path hwhat (get path hwhat "bounds" h) in
      let counts =
        List.map
          (fun c ->
            match Obs.Json.to_number c with
            | Some f when f >= 0.0 -> f
            | _ -> die "%s: %s: bad bucket count" path hwhat)
          (list_of path hwhat (get path hwhat "counts" h))
      in
      if List.length counts <> List.length bounds + 1 then
        die "%s: %s: %d counts for %d bounds (want bounds+1)" path hwhat
          (List.length counts) (List.length bounds);
      if List.fold_left ( +. ) 0.0 counts <> num path hwhat "samples" h then
        die "%s: %s: counts do not sum to samples" path hwhat)
    (obj_members path (what ^ ".histograms") (get path what "histograms" m))

let check_checkpoint path root =
  let kind = str path "checkpoint" "kind" root in
  if kind <> "campaign" && kind <> "endurance" then
    die "%s: checkpoint kind %S is neither campaign nor endurance" path kind;
  if str path "checkpoint" "fingerprint" root = "" then
    die "%s: empty fingerprint" path;
  let chunk = num path "checkpoint" "chunk" root in
  if chunk < 1.0 then die "%s: chunk %g < 1" path chunk;
  let n_chunks = num path "checkpoint" "n_chunks" root in
  let last = ref (-1.0) in
  let dones =
    list_of path "done" (get path "checkpoint" "done" root)
  in
  List.iter
    (fun v ->
      match Obs.Json.to_number v with
      | Some i ->
        if i < 0.0 || i >= n_chunks then
          die "%s: done index %g outside [0, %g)" path i n_chunks;
        if i <= !last then die "%s: done indices not strictly ascending" path;
        last := i
      | None -> die "%s: non-numeric done index" path)
    dones;
  let payload = get path "checkpoint" "payload" root in
  ignore (obj_members path "payload" payload);
  (if kind = "campaign" then begin
     let fanout = num path "payload" "fanout" payload in
     if fanout < 1.0 then die "%s: payload fanout %g < 1" path fanout;
     let t = get path "payload" "totals" payload in
     let f k = num path "totals" k t in
     List.iter
       (fun k -> ignore (f k))
       [
         "runs"; "non_manifested"; "sdc"; "detected"; "successes"; "no_vmf";
         "recovered"; "latency_sum"; "latency_samples";
       ];
     if f "runs" <> f "non_manifested" +. f "sdc" +. f "detected" then
       die "%s: totals: runs <> non_manifested + sdc + detected" path;
     int_assoc path "totals.notes" (get path "totals" "notes" t);
     check_payload_metrics path "totals.metrics" (get path "totals" "metrics" t)
   end
   else begin
     let t = get path "payload" "totals" payload in
     let f k = num path "totals" k t in
     List.iter
       (fun k -> ignore (f k))
       [
         "scenarios"; "survived"; "deaths"; "latent_scenarios";
         "max_leaked_pages"; "budget_violations";
       ];
     if f "scenarios" <> f "survived" +. f "deaths" then
       die "%s: totals: scenarios <> survived + deaths" path;
     List.iteri
       (fun i cv ->
         let what = Printf.sprintf "totals.per_cycle[%d]" i in
         let fields = list_of path what cv in
         if List.length fields <> 9 then
           die "%s: %s: expected 9 ints, got %d" path what
             (List.length fields);
         List.iter
           (fun x ->
             match Obs.Json.to_number x with
             | Some f when f >= 0.0 -> ()
             | _ -> die "%s: %s: bad cycle field" path what)
           fields)
       (list_of path "totals.per_cycle" (get path "totals" "per_cycle" t));
     int_assoc path "totals.leaks" (get path "totals" "leaks" t);
     int_assoc path "totals.death_notes" (get path "totals" "death_notes" t);
     check_payload_metrics path "totals.metrics" (get path "totals" "metrics" t)
   end);
  Printf.printf "%s: OK nlh-checkpoint/1 (%s, %d/%g chunks done)\n" path kind
    (List.length dones) n_chunks

(* --- nlh-fuzz/1 ------------------------------------------------------ *)

(* A fuzz corpus/state file: the checkpoint envelope under the fuzz
   schema tag (kind "fuzz", done-rounds a prefix), with a payload
   holding the session identity (base_seed/rng as exact int64 strings),
   the accounting identity evaluated = kept + duds, the canonically
   sorted corpus entries and the sorted coverage map into them. *)
let check_fuzz path root =
  let kind = str path "fuzz" "kind" root in
  if kind <> "fuzz" then die "%s: fuzz checkpoint kind %S" path kind;
  if str path "fuzz" "fingerprint" root = "" then
    die "%s: empty fingerprint" path;
  if num path "fuzz" "chunk" root < 1.0 then die "%s: chunk < 1" path;
  let n_chunks = num path "fuzz" "n_chunks" root in
  let dones = list_of path "done" (get path "fuzz" "done" root) in
  List.iteri
    (fun i v ->
      match Obs.Json.to_number v with
      | Some f ->
        if f <> float_of_int i then
          die "%s: done rounds are not the prefix 0..%d" path
            (List.length dones - 1);
        if f >= n_chunks then die "%s: done index %g out of range" path f
      | None -> die "%s: non-numeric done index" path)
    dones;
  let payload = get path "fuzz" "payload" root in
  let int64_str what key =
    let s = str path what key payload in
    if Int64.of_string_opt s = None then
      die "%s: %s.%s %S is not an int64" path what key s
  in
  int64_str "payload" "base_seed";
  int64_str "payload" "rng";
  let evaluated = num path "payload" "evaluated" payload in
  let kept = num path "payload" "kept" payload in
  let dud = num path "payload" "dud" payload in
  if evaluated <> kept +. dud then
    die "%s: evaluated %g <> kept %g + duds %g" path evaluated kept dud;
  let entries = list_of path "entries" (get path "payload" "entries" payload) in
  let last_trace = ref None in
  List.iteri
    (fun i e ->
      let what = Printf.sprintf "entries[%d]" i in
      let trace =
        List.map
          (fun c ->
            match Obs.Json.to_number c with
            | Some f
              when Float.is_integer f && f >= 0.0
                   && f < float_of_int Fuzz.Input.op_space ->
              int_of_float f
            | _ -> die "%s: %s: bad trace op code" path what)
          (list_of path (what ^ ".trace") (get path what "trace" e))
      in
      if trace = [] then die "%s: %s: empty trace" path what;
      (match !last_trace with
      | Some prev when compare (List.length prev, prev) (List.length trace, trace) >= 0
        ->
        die "%s: %s: entries not in canonical (length, lex) order" path what
      | _ -> ());
      last_trace := Some trace;
      let seed = str path what "seed" e in
      if Int64.of_string_opt seed = None then
        die "%s: %s: seed %S is not an int64" path what seed;
      if str path what "outcome" e = "" then die "%s: %s: empty outcome" path what;
      let sg = str path what "signature" e in
      if sg <> "" then begin
        let parts = String.split_on_char '|' sg in
        if List.length parts <> 4 || List.exists (fun p -> p = "") parts then
          die "%s: %s: signature %S is not fault|target|cause|branch" path what
            sg
      end)
    entries;
  let coverage =
    list_of path "coverage" (get path "payload" "coverage" payload)
  in
  let last_point = ref "" in
  List.iteri
    (fun i c ->
      let what = Printf.sprintf "coverage[%d]" i in
      let point = str path what "point" c in
      if point = "" then die "%s: %s: empty point" path what;
      if i > 0 && point <= !last_point then
        die "%s: %s: coverage points not strictly sorted" path what;
      last_point := point;
      let idx = num path what "entry" c in
      if idx < 0.0 || idx >= float_of_int (List.length entries) then
        die "%s: %s: entry index %g out of range" path what idx)
    coverage;
  Printf.printf "%s: OK nlh-fuzz/1 (%d/%g rounds, %d entries, %d points)\n"
    path (List.length dones) n_chunks (List.length entries)
    (List.length coverage)

(* --- nlh-fleet/1 ----------------------------------------------------- *)

(* A fleet report: per-mechanism request-latency quantiles through a
   recovery event. Invariants: every mechanism name is known and appears
   once; request counts equal the histogram sample counts; stalled and
   SLO-violating requests cannot exceed the total; quantiles are
   ordered; mean recovery latency cannot exceed the max; and each trial
   took exactly one consistency-scan path (incremental + full = trials). *)
let check_fleet path root =
  let trials = num path "document" "trials" root in
  if trials < 1.0 then die "%s: trials %g < 1" path trials;
  if num path "document" "tenants" root < 1.0 then die "%s: tenants < 1" path;
  if num path "document" "slo_ns" root <= 0.0 then die "%s: slo_ns <= 0" path;
  let mechs =
    list_of path "mechanisms" (get path "document" "mechanisms" root)
  in
  if mechs = [] then die "%s: empty mechanisms array" path;
  let seen = ref [] in
  List.iteri
    (fun i m ->
      let what = Printf.sprintf "mechanisms[%d]" i in
      let name = str path what "mechanism" m in
      if
        not
          (List.mem name [ "serial-full"; "serial-incremental"; "sharded" ])
      then die "%s: %s: unknown mechanism %S" path what name;
      if List.mem name !seen then
        die "%s: %s: duplicate mechanism %S" path what name;
      seen := name :: !seen;
      let f k = num path what k m in
      let requests = f "requests" in
      if requests < 1.0 then die "%s: %s: no requests" path what;
      if f "samples" <> requests then
        die "%s: %s: samples %g <> requests %g" path what (f "samples")
          requests;
      if f "stalled" > requests then
        die "%s: %s: stalled > requests" path what;
      if f "slo_violations" > requests then
        die "%s: %s: slo_violations > requests" path what;
      List.iter
        (fun k -> if f k < 0.0 then die "%s: %s: negative %s" path what k)
        [ "stalled"; "slo_violations"; "tenants_failed"; "net_lost" ];
      let p50 = f "request_p50_ns"
      and p99 = f "request_p99_ns"
      and p999 = f "request_p999_ns" in
      if not (0.0 < p50 && p50 <= p99 && p99 <= p999) then
        die "%s: %s: request quantiles not ordered (%g %g %g)" path what p50
          p99 p999;
      if f "recovery_ns_mean" > f "recovery_ns_max" then
        die "%s: %s: recovery mean exceeds max" path what;
      if f "recovery_ns_mean" <= 0.0 then
        die "%s: %s: non-positive recovery latency" path what;
      if f "scan_incremental" +. f "scan_full" <> trials then
        die "%s: %s: scan_incremental %g + scan_full %g <> trials %g" path
          what (f "scan_incremental") (f "scan_full") trials)
    mechs;
  Printf.printf "%s: OK nlh-fleet/1 (%d mechanisms, %g trials each)\n" path
    (List.length mechs) trials

(* --- Dispatch -------------------------------------------------------- *)

let check_file path =
  let contents = try read_file path with Sys_error e -> die "%s" e in
  let root =
    match Obs.Json.parse contents with
    | Ok v -> v
    | Error msg -> die "%s: invalid JSON: %s" path msg
  in
  match Obs.Json.member "traceEvents" root with
  | Some v -> check_chrome path (list_of path "traceEvents" v)
  | None -> (
    match Option.bind (Obs.Json.member "schema" root) Obs.Json.to_string with
    | Some "nlh-obs/1" -> check_metrics path root
    | Some "nlh-triage/1" -> check_triage path root
    | Some "nlh-postmortem/1" -> check_postmortem path root
    | Some "nlh-checkpoint/1" -> check_checkpoint path root
    | Some "nlh-fuzz/1" -> check_fuzz path root
    | Some "nlh-fleet/1" -> check_fleet path root
    | Some s -> die "%s: unknown schema %S" path s
    | None -> die "%s: neither a Chrome trace nor a schema document" path)

let () =
  if Array.length Sys.argv < 2 then die "usage: nlh_trace_check FILE.json...";
  for i = 1 to Array.length Sys.argv - 1 do
    check_file Sys.argv.(i)
  done
