(* Validate an exported Chrome-trace JSON file: well-formed JSON, a
   traceEvents array whose rows all carry name/ph/ts, and globally
   non-decreasing timestamps (the exporter emits rows time-sorted).
   Used by the @check alias as the trace-export smoke test. *)

let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  if Array.length Sys.argv <> 2 then die "usage: nlh_trace_check TRACE.json";
  let path = Sys.argv.(1) in
  let contents = try read_file path with Sys_error e -> die "%s" e in
  let root =
    match Obs.Json.parse contents with
    | Ok v -> v
    | Error msg -> die "%s: invalid JSON: %s" path msg
  in
  let events =
    match Obs.Json.member "traceEvents" root with
    | Some v -> (
      match Obs.Json.to_list v with
      | Some l -> l
      | None -> die "%s: traceEvents is not an array" path)
    | None -> die "%s: missing traceEvents" path
  in
  let spans = ref 0 and instants = ref 0 in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i row ->
      let str key =
        match Option.bind (Obs.Json.member key row) Obs.Json.to_string with
        | Some s -> s
        | None -> die "%s: traceEvents[%d]: missing string %S" path i key
      in
      let num key =
        match Option.bind (Obs.Json.member key row) Obs.Json.to_number with
        | Some f -> f
        | None -> die "%s: traceEvents[%d]: missing number %S" path i key
      in
      if str "name" = "" then die "%s: traceEvents[%d]: empty name" path i;
      let ts = num "ts" in
      if ts < 0.0 then die "%s: traceEvents[%d]: negative ts" path i;
      if ts < !last_ts then
        die "%s: traceEvents[%d]: ts %.3f < previous %.3f (not monotone)" path
          i ts !last_ts;
      last_ts := ts;
      match str "ph" with
      | "X" ->
        if num "dur" < 0.0 then die "%s: traceEvents[%d]: negative dur" path i;
        incr spans
      | "i" -> incr instants
      | ph -> die "%s: traceEvents[%d]: unexpected ph %S" path i ph)
    events;
  Printf.printf "%s: OK (%d rows: %d spans, %d instants)\n" path
    (List.length events) !spans !instants
