(* Endurance CLI: keep one hypervisor instance alive through successive
   inject -> detect -> recover cycles and account for resource leaks.
   Exits non-zero when any recovery leaks more pages than the budget. *)

let resolve_jobs jobs = if jobs > 0 then jobs else Inject.Pool.default_jobs ()

let () =
  let mech = ref `Nilihype in
  let fault = ref Inject.Fault.Failstop in
  let cycles = ref 50 in
  let scenarios = ref 10 in
  let settle = ref Endure.default_config.Endure.settle_activities in
  let seed = ref 77_000 in
  let jobs = ref 1 in
  let chunk = ref 0 in
  let budget = ref 8 in
  let json_out = ref "BENCH_endurance.json" in
  let spec =
    [
      ( "--mech",
        Arg.Symbol
          ( [ "nilihype"; "rehype" ],
            function "nilihype" -> mech := `Nilihype | _ -> mech := `Rehype ),
        " recovery mechanism" );
      ( "--fault",
        Arg.Symbol
          ( [ "failstop"; "register"; "code"; "data" ],
            function
            | "failstop" -> fault := Inject.Fault.Failstop
            | "register" -> fault := Inject.Fault.Register
            | "data" -> fault := Inject.Fault.Data
            | _ -> fault := Inject.Fault.Code ),
        " fault type" );
      ("--cycles", Arg.Set_int cycles, " recovery cycles per scenario");
      ("--scenarios", Arg.Set_int scenarios, " independent scenarios (seeds)");
      ( "--settle",
        Arg.Set_int settle,
        " post-recovery activities before each ledger snapshot" );
      ("--seed", Arg.Set_int seed, " base seed");
      ( "--jobs",
        Arg.Set_int jobs,
        " parallel worker domains (0 = one per core; default 1)" );
      ( "--chunk",
        Arg.Set_int chunk,
        " scenarios per scheduling chunk (0 = auto; ignored on --resume)" );
      ( "--leak-budget",
        Arg.Set_int budget,
        " max leaked pages per recovery (-1 = unlimited; default 8)" );
      ( "--json-out",
        Arg.Set_string json_out,
        " endurance report path (empty = no report; default \
         BENCH_endurance.json)" );
    ]
    @ Obs_cli.arg_specs
  in
  Arg.parse spec (fun _ -> ()) "nlh_endurance [options]";
  let mech_name, hv_config =
    match !mech with
    | `Nilihype -> ("NiLiHype", Hyper.Config.nilihype)
    | `Rehype -> ("ReHype", Hyper.Config.rehype)
  in
  let mechanism =
    match !mech with
    | `Nilihype -> Recovery.Engine.Nilihype
    | `Rehype -> Recovery.Engine.Rehype
  in
  let cfg =
    {
      Endure.run_cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = !fault;
          mech = Inject.Run.Mech (mechanism, Recovery.Enhancement.full_set);
          hv_config;
        };
      cycles = !cycles;
      settle_activities = !settle;
      leak_budget_pages = (if !budget < 0 then None else Some !budget);
    }
  in
  let label = Printf.sprintf "%s/%s" mech_name (Inject.Fault.name !fault) in
  let result =
    Endure.run ~label ~base_seed:(Int64.of_int !seed)
      ~jobs:(resolve_jobs !jobs)
      ?chunk:(if !chunk > 0 then Some !chunk else None)
      ~postmortems:(Obs_cli.postmortems_on ())
      ?checkpoint:(Obs_cli.checkpoint ())
      ?triage_seed_cap:(Obs_cli.triage_seed_cap ())
      ~scenarios:!scenarios cfg
  in
  (match Obs_cli.checkpoint () with
  | Some ck ->
    Format.printf "checkpoint: %s (%d scenarios aggregated)@."
      ck.Inject.Campaign.ck_path result.Endure.totals.Endure.scenarios
  | None -> ());
  Format.printf "%a" Endure.pp result;
  Format.printf
    "survival curve (cycle: alive%% quiet recovered latent died over_budget \
     leak_pages clean%%):@.";
  Array.iter
    (fun (idx, survival, clean_rate) ->
      let c = result.Endure.totals.Endure.per_cycle.(idx) in
      Format.printf
        "  %3d: %5.1f%%  %3d %3d %3d %3d %3d  %3d   clean %5.1f%%@." idx
        (100.0 *. survival) c.Endure.cs_quiet c.Endure.cs_recovered
        c.Endure.cs_latent c.Endure.cs_died c.Endure.cs_budget_violations
        c.Endure.cs_leaked_pages (100.0 *. clean_rate))
    (Endure.survival_curve result);
  List.iter
    (fun (k, v) -> Format.printf "  leak: %s x%d@." k v)
    (Sim.Stats.Counts.sorted result.Endure.totals.Endure.leaks);
  List.iter
    (fun (k, v) -> Format.printf "  death: %s x%d@." k v)
    (Sim.Stats.Counts.sorted result.Endure.totals.Endure.death_notes);
  Obs_cli.write_triage
    ~meta:
      [
        ("tool", `String "nlh_endurance");
        ("label", `String label);
        ("scenarios", `Int !scenarios);
        ("cycles", `Int !cycles);
        ("base_seed", `Int !seed);
      ]
    result.Endure.totals.Endure.triage;
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    Endure.write_json oc
      ~meta:
        [
          ("tool", `String "nlh_endurance");
          ("label", `String label);
          ("mechanism", `String mech_name);
          ("fault", `String (Inject.Fault.name !fault));
          ("base_seed", `Int !seed);
        ]
      result;
    close_out oc;
    Format.printf "endurance report written to %s@." !json_out
  end;
  if !Obs_cli.metrics_file <> "" then
    Obs_cli.write_metrics
      ~meta:
        [
          ("tool", `String "nlh_endurance");
          ("label", `String label);
          ("scenarios", `Int !scenarios);
          ("cycles", `Int !cycles);
          ("base_seed", `Int !seed);
          ("jobs", `Int result.Endure.jobs);
        ]
      !Obs_cli.metrics_file
      result.Endure.totals.Endure.metrics;
  if result.Endure.totals.Endure.budget_violations > 0 then begin
    Format.printf
      "FAIL: %d recovery cycle(s) exceeded the leak budget of %d page(s)@."
      result.Endure.totals.Endure.budget_violations !budget;
    exit 1
  end
