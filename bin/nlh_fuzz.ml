(* Coverage-guided fault-space fuzzer CLI.

   Three modes:
   - default: run (or resume) a fuzzing session, write the nlh-fuzz/1
     corpus file, print the discovered signatures with one-line repros;
   - --replay TRACE: deterministically re-run one (base seed, trace)
     corpus entry and print its outcome/signature/coverage;
   - --replay-check K: reload the corpus file and replay the exemplar
     entry of up to K discovered signatures twice each, requiring
     byte-identical triage entries that match the corpus record (exit 1
     otherwise) -- the repro-fidelity gate @check runs in CI. *)

let base_config mech setup =
  let mechanism, hv_config =
    match mech with
    | `Nilihype ->
      ( Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set),
        Hyper.Config.nilihype )
    | `Rehype ->
      ( Inject.Run.Mech (Recovery.Engine.Rehype, Recovery.Enhancement.full_set),
        Hyper.Config.rehype )
    | `None -> (Inject.Run.No_recovery, Hyper.Config.stock)
  in
  { Inject.Run.default_config with Inject.Run.setup; mech = mechanism; hv_config }

let triage_entry_json (r : Fuzz.Session.replay_result) =
  let tr = Obs.Postmortem.Triage.create () in
  (match Obs.Signature.of_key r.Fuzz.Session.r_signature with
  | Some sg ->
    Obs.Postmortem.Triage.record ?bundle:r.Fuzz.Session.r_bundle tr sg
      ~seed:r.Fuzz.Session.r_point.Fuzz.Input.p_seed
  | None -> ());
  Obs.Postmortem.Triage.to_json tr

let () =
  let mech = ref `Nilihype in
  let setup = ref Inject.Run.Three_appvm in
  let runs = ref 256 in
  let batch = ref 32 in
  let jobs = ref 1 in
  let fanout = ref 8 in
  let oversubscribe = ref false in
  let seed = ref 10_000 in
  let corpus_out = ref "" in
  let resume = ref false in
  let save_every = ref 1 in
  let stop_after = ref 0 in
  let replay = ref "" in
  let replay_check = ref 0 in
  let spec =
    [
      ( "--mech",
        Arg.Symbol
          ( [ "nilihype"; "rehype"; "none" ],
            function
            | "nilihype" -> mech := `Nilihype
            | "rehype" -> mech := `Rehype
            | _ -> mech := `None ),
        " recovery mechanism" );
      ( "--setup",
        Arg.Symbol
          ( [ "1appvm"; "3appvm" ],
            function
            | "1appvm" -> setup := Inject.Run.One_appvm Workloads.Workload.Unixbench
            | _ -> setup := Inject.Run.Three_appvm ),
        " target system setup" );
      ("--runs", Arg.Set_int runs, " total mutant budget for the session");
      ("--batch", Arg.Set_int batch, " mutants generated per round");
      ("--jobs", Arg.Set_int jobs, " parallel worker domains (0 = one per core)");
      ( "--fanout",
        Arg.Set_int fanout,
        " max mutants cloned from one prepared warmup (default 8)" );
      ( "--oversubscribe",
        Arg.Set oversubscribe,
        " allow more worker domains than cores" );
      ("--seed", Arg.Set_int seed, " base seed of the fault space");
      ( "--corpus-out",
        Arg.Set_string corpus_out,
        " nlh-fuzz/1 corpus/state file (written per round, resumable)" );
      ("--resume", Arg.Set resume, " continue the session in --corpus-out");
      ( "--save-every",
        Arg.Set_int save_every,
        " rounds between corpus writes (default 1)" );
      ( "--stop-after-rounds",
        Arg.Set_int stop_after,
        " stop after this many rounds (simulated kill; resume later)" );
      ( "--replay",
        Arg.Set_string replay,
        " replay one mutation trace (comma-separated op codes) and exit" );
      ( "--replay-check",
        Arg.Set_int replay_check,
        " replay up to K discovered signatures' exemplars from --corpus-out, \
         twice each, requiring byte-identical triage entries" );
      ( "--triage-out",
        Arg.Set_string Obs_cli.triage_file,
        " write the session's nlh-triage/1 signature table here" );
      ( "--postmortem-dir",
        Arg.Set_string Obs_cli.postmortem_dir,
        " write one exemplar postmortem bundle per signature here" );
    ]
  in
  Arg.parse spec (fun _ -> ()) "nlh_fuzz [options]";
  let cfg =
    {
      Fuzz.Session.f_base = base_config !mech !setup;
      f_base_seed = Int64.of_int !seed;
      f_runs = !runs;
      f_batch = max 1 !batch;
      f_jobs = (if !jobs > 0 then !jobs else Inject.Pool.default_jobs ());
      f_oversubscribe = !oversubscribe;
      f_fanout = max 1 !fanout;
      f_corpus_path = (if !corpus_out = "" then None else Some !corpus_out);
      f_resume = !resume;
      f_save_every = max 1 !save_every;
      f_stop_after = (if !stop_after > 0 then Some !stop_after else None);
      f_triage_seed_cap = None;
    }
  in
  if !replay <> "" then begin
    match Fuzz.Input.trace_of_string !replay with
    | Error msg ->
      Format.eprintf "nlh_fuzz: %s@." msg;
      exit 2
    | Ok trace ->
      let r = Fuzz.Session.replay cfg trace in
      Format.printf "point: %s@."
        (Fuzz.Input.point_key r.Fuzz.Session.r_point);
      Format.printf "outcome: %s@." r.Fuzz.Session.r_outcome;
      Format.printf "signature: %s@."
        (if r.Fuzz.Session.r_signature = "" then "(none)"
         else r.Fuzz.Session.r_signature);
      Format.printf "coverage: %d points@."
        (List.length r.Fuzz.Session.r_points)
  end
  else if !replay_check > 0 then begin
    if !corpus_out = "" then begin
      Format.eprintf "nlh_fuzz: --replay-check requires --corpus-out@.";
      exit 2
    end;
    let t = Fuzz.Session.resume_from cfg !corpus_out in
    let exemplars = Fuzz.Session.exemplars t in
    if exemplars = [] then begin
      Format.eprintf "nlh_fuzz: no discovered signatures to replay in %s@."
        !corpus_out;
      exit 1
    end;
    let failures = ref 0 in
    List.iteri
      (fun i (sigkey, (e : Fuzz.Corpus.entry)) ->
        if i < !replay_check then begin
          let a = Fuzz.Session.replay cfg e.Fuzz.Corpus.en_trace in
          let b = Fuzz.Session.replay cfg e.Fuzz.Corpus.en_trace in
          let ok =
            a.Fuzz.Session.r_signature = sigkey
            && a.Fuzz.Session.r_outcome = e.Fuzz.Corpus.en_outcome
            && triage_entry_json a = triage_entry_json b
          in
          if not ok then incr failures;
          Format.printf "%s %s (trace %s)@."
            (if ok then "OK  " else "FAIL")
            sigkey
            (Fuzz.Input.trace_string e.Fuzz.Corpus.en_trace)
        end)
      exemplars;
    if !failures > 0 then begin
      Format.eprintf "nlh_fuzz: %d repro(s) failed to replay identically@."
        !failures;
      exit 1
    end
  end
  else begin
    let t = Fuzz.Session.explore cfg in
    Format.printf
      "fuzz: %d evaluated (%d kept, %d duds) over %d rounds | %d coverage \
       points, %d corpus entries, %d signatures@."
      t.Fuzz.Session.s_evaluated t.Fuzz.Session.s_kept t.Fuzz.Session.s_dud
      t.Fuzz.Session.s_rounds
      (Fuzz.Corpus.n_points t.Fuzz.Session.s_corpus)
      (List.length (Fuzz.Corpus.entries t.Fuzz.Session.s_corpus))
      (List.length (Fuzz.Corpus.signatures t.Fuzz.Session.s_corpus));
    List.iter
      (fun (sigkey, (e : Fuzz.Corpus.entry)) ->
        Format.printf "  %s@.    repro: %s@." sigkey
          (Fuzz.Session.repro_line cfg e.Fuzz.Corpus.en_trace))
      (Fuzz.Session.exemplars t);
    Obs_cli.write_triage
      ~meta:
        [
          ("tool", `String "nlh_fuzz");
          ("runs", `Int !runs);
          ("base_seed", `Int !seed);
        ]
      t.Fuzz.Session.s_triage
  end
