(* Campaign CLI: run fault-injection campaigns against the simulated
   virtualization platform from the command line. *)

(* [jobs = 0] means "auto": one worker per recommended domain. *)
let resolve_jobs jobs = if jobs > 0 then jobs else Inject.Pool.default_jobs ()

let run_campaign ~mech ~fault ~setup ~n ~seed ~jobs ~chunk ~fanout ~label =
  let mechanism, enh, hv_config =
    match mech with
    | `Nilihype ->
      ( Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set),
        Recovery.Enhancement.full_set,
        Hyper.Config.nilihype )
    | `Rehype ->
      ( Inject.Run.Mech (Recovery.Engine.Rehype, Recovery.Enhancement.full_set),
        Recovery.Enhancement.full_set,
        Hyper.Config.rehype )
    | `None -> (Inject.Run.No_recovery, Recovery.Enhancement.full_set, Hyper.Config.stock)
  in
  ignore enh;
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.fault;
      setup;
      mech = mechanism;
      hv_config;
    }
  in
  let result =
    Inject.Campaign.run ~label ~base_seed:seed ~jobs ?chunk ~fanout
      ~postmortems:(Obs_cli.postmortems_on ())
      ?checkpoint:(Obs_cli.checkpoint ())
      ?triage_seed_cap:(Obs_cli.triage_seed_cap ()) ~n cfg
  in
  (match Obs_cli.checkpoint () with
  | Some ck ->
    Format.printf "checkpoint: %s (%d runs aggregated)@."
      ck.Inject.Campaign.ck_path
      result.Inject.Campaign.totals.Inject.Campaign.runs
  | None -> ());
  Format.printf "%a" Inject.Campaign.pp result;
  (match Inject.Campaign.mean_latency result with
  | Some l -> Format.printf "mean recovery latency: %a@." Sim.Time.pp_float l
  | None -> ());
  List.iter
    (fun (k, v) -> Format.printf "  note: %s x%d@." k v)
    (Inject.Campaign.failure_notes result.Inject.Campaign.totals);
  if !Obs_cli.metrics_file <> "" then
    Obs_cli.write_metrics
      ~meta:
        [
          ("tool", `String "nlh_campaign");
          ("label", `String label);
          ("runs", `Int n);
          ("base_seed", `Int (Int64.to_int seed));
          ("jobs", `Int result.Inject.Campaign.jobs);
          ("fanout", `Int fanout);
          ("cores", `Int (Domain.recommended_domain_count ()));
        ]
      !Obs_cli.metrics_file
      result.Inject.Campaign.totals.Inject.Campaign.metrics;
  Obs_cli.write_triage
    ~meta:
      [
        ("tool", `String "nlh_campaign");
        ("label", `String label);
        ("runs", `Int n);
        ("base_seed", `Int (Int64.to_int seed));
        ("fanout", `Int fanout);
      ]
    result.Inject.Campaign.totals.Inject.Campaign.triage;
  if !Obs_cli.trace_file <> "" then
    (* One extra instrumented run at the base seed: same config, full
       event/span recording, exported as a Chrome-trace timeline. *)
    ignore (Obs_cli.traced_run !Obs_cli.trace_file { cfg with Inject.Run.seed })

let () =
  let mech = ref `Nilihype in
  let fault = ref Inject.Fault.Failstop in
  let setup = ref Inject.Run.Three_appvm in
  let n = ref 200 in
  let seed = ref 10_000 in
  let jobs = ref 1 in
  let chunk = ref 0 in
  let fanout = ref 1 in
  let ladder = ref false in
  let spec =
    [
      ( "--mech",
        Arg.Symbol
          ( [ "nilihype"; "rehype"; "none" ],
            function
            | "nilihype" -> mech := `Nilihype
            | "rehype" -> mech := `Rehype
            | _ -> mech := `None ),
        " recovery mechanism" );
      ( "--fault",
        Arg.Symbol
          ( [ "failstop"; "register"; "code"; "data" ],
            function
            | "failstop" -> fault := Inject.Fault.Failstop
            | "register" -> fault := Inject.Fault.Register
            | "data" -> fault := Inject.Fault.Data
            | _ -> fault := Inject.Fault.Code ),
        " fault type" );
      ( "--setup",
        Arg.Symbol
          ( [ "1appvm"; "3appvm" ],
            function
            | "1appvm" -> setup := Inject.Run.One_appvm Workloads.Workload.Unixbench
            | _ -> setup := Inject.Run.Three_appvm ),
        " target system setup" );
      ("--runs", Arg.Set_int n, " number of injection runs");
      ("--seed", Arg.Set_int seed, " base seed");
      ( "--jobs",
        Arg.Set_int jobs,
        " parallel worker domains (0 = one per core; default 1)" );
      ( "--chunk",
        Arg.Set_int chunk,
        " work items per scheduling chunk (0 = auto; ignored on --resume, \
         which pins the checkpoint's chunk size)" );
      ( "--fanout",
        Arg.Set_int fanout,
        " fault variants cloned from each prepared snapshot (default 1)" );
      ("--ladder", Arg.Set ladder, " run the Table I enhancement ladder");
    ]
    @ Obs_cli.arg_specs
  in
  Arg.parse spec (fun _ -> ()) "nlh_campaign [options]";
  if !ladder then
    List.iter
      (fun (label, hv_config, enh) ->
        let cfg =
          {
            Inject.Run.default_config with
            Inject.Run.fault = Inject.Fault.Failstop;
            setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
            mech = Inject.Run.Mech (Recovery.Engine.Nilihype, enh);
            hv_config;
          }
        in
        let result =
          Inject.Campaign.run ~label ~base_seed:(Int64.of_int !seed)
            ~jobs:(resolve_jobs !jobs) ~n:!n cfg
        in
        Format.printf "%-50s success %a@." label Sim.Stats.pp_proportion
          (Inject.Campaign.success_rate result);
        List.iter
          (fun (k, v) ->
            let k = if String.length k > 90 then String.sub k 0 90 else k in
            Format.printf "      %3dx %s@." v k)
          (List.sort
             (fun (_, a) (_, b) -> compare b a)
             (Inject.Campaign.failure_notes result.Inject.Campaign.totals)))
      Recovery.Enhancement.table1_ladder
  else
    run_campaign ~mech:!mech ~fault:!fault ~setup:!setup ~n:!n
      ~seed:(Int64.of_int !seed) ~jobs:(resolve_jobs !jobs)
      ~chunk:(if !chunk > 0 then Some !chunk else None)
      ~fanout:!fanout
      ~label:
        (Printf.sprintf "%s/%s"
           (match !mech with
           | `Nilihype -> "NiLiHype"
           | `Rehype -> "ReHype"
           | `None -> "none")
           (Inject.Fault.name !fault))
