(* Incremental-enhancement walk-through: reproduce the measurement-driven
   development of NiLiHype (Table I) at small scale, printing what each
   enhancement repairs.

     dune exec examples/incremental_enhancements.exe *)

let () =
  let n = 120 in
  Format.printf
    "Failstop faults, 1AppVM (UnixBench), %d injections per row:@.@." n;
  List.iter
    (fun (label, hv_config, enh) ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
          mech = Inject.Run.Mech (Recovery.Engine.Nilihype, enh);
          hv_config;
        }
      in
      let r = Inject.Campaign.run ~label ~base_seed:1234L ~n cfg in
      Format.printf "%-52s %a@." label Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate r);
      (* Show the dominant remaining failure causes for this row. *)
      let top =
        List.sort (fun (_, a) (_, b) -> compare b a)
          (Inject.Campaign.failure_notes r.Inject.Campaign.totals)
      in
      List.iteri
        (fun i (why, count) ->
          if i < 2 then begin
            let why =
              if String.length why > 72 then String.sub why 0 72 ^ "..." else why
            in
            Format.printf "    %2dx %s@." count why
          end)
        top)
    Recovery.Enhancement.table1_ladder;
  Format.printf
    "@.Each enhancement mechanically repairs the failure class above it:@.";
  Format.printf
    "  clear IRQ count -> scheduling asserts; heap-lock release -> dead-lock \
     spins;@.";
  Format.printf
    "  sched consistency -> stale current-vCPU records; timer reprogram -> \
     silent CPUs.@."
