(* Fault-injection campaign: inject register bit-flips into the
   hypervisor under the 3AppVM workload and compare NiLiHype's
   microreset against ReHype's microreboot (a small-scale Figure 2).

     dune exec examples/fault_campaign.exe *)

let () =
  let runs = 200 in
  Format.printf "Injecting %d register faults per mechanism (3AppVM)...@." runs;
  List.iter
    (fun mechanism ->
      let r =
        Core.Experiment.campaign ~fault:Core.Experiment.Register ~mechanism ~runs ()
      in
      let name =
        match mechanism with
        | Core.Experiment.Nilihype -> "NiLiHype"
        | Core.Experiment.Rehype -> "ReHype"
      in
      let nm, sdc, det = Inject.Campaign.breakdown r in
      Format.printf
        "%-9s outcomes: %.1f%% non-manifested / %.1f%% SDC / %.1f%% detected@."
        name nm sdc det;
      Format.printf "%-9s recovery success among detected: %a@." name
        Sim.Stats.pp_proportion
        (Inject.Campaign.success_rate r);
      match Inject.Campaign.mean_latency r with
      | Some l ->
        Format.printf "%-9s mean recovery latency: %a@." name Sim.Time.pp_float l
      | None -> ())
    [ Core.Experiment.Nilihype; Core.Experiment.Rehype ]
