test/test_integration.ml: Alcotest Array Core Hw Hyper Inject List Recovery Sim Workloads
