test/test_hyper.ml: Alcotest Array Hw Hyper List Option Sim Workloads
