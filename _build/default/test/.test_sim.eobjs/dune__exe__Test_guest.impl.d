test/test_guest.ml: Alcotest Array Guest Hw Hyper Option Recovery Sim
