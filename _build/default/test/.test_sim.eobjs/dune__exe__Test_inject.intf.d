test/test_inject.mli:
