test/test_hw.ml: Alcotest Array Hw List Sim
