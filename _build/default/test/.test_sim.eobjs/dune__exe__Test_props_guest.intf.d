test/test_props_guest.mli:
