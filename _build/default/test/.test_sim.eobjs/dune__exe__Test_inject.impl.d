test/test_inject.ml: Alcotest Hw Hyper Inject Int64 List Recovery Sim Workloads
