test/test_workloads.ml: Alcotest Hyper List Sim Workloads
