test/test_props.ml: Alcotest Array Hw Hyper Inject Int64 List QCheck QCheck_alcotest Recovery Sim
