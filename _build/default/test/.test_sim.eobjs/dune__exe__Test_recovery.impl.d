test/test_recovery.ml: Alcotest Array Core Format Hw Hyper List Option Recovery Sim
