test/test_props_guest.ml: Alcotest Guest Hyper List Printf QCheck QCheck_alcotest Recovery Sim
