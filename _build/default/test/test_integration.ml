(* End-to-end integration tests: whole fault-injection runs through the
   public Core API, checking the paper's headline claims at small scale. *)

let checkb = Alcotest.check Alcotest.bool

let test_quickstart_flow () =
  (* The README quickstart: boot, damage, recover, verify. *)
  let system = Core.System.boot ~setup:Core.System.Three_appvm () in
  let hv = system.Core.System.hypervisor in
  checkb "healthy at boot" true (Core.System.healthy system);
  (try
     Hyper.Hypervisor.execute_partial hv system.Core.System.rng
       (Hyper.Hypervisor.Timer_tick 1) ~stop_at:4
   with Hyper.Crash.Hypervisor_crash _ -> ());
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  checkb "dirty after damage" false (Core.System.healthy system);
  let latency = Core.System.recover system in
  checkb "recovered quickly" true (latency < Sim.Time.ms 5);
  checkb "healthy after recovery" true (Core.System.healthy system)

let test_failstop_campaign_headline () =
  (* Both mechanisms recover the overwhelming majority of failstop
     faults, at essentially the same rate (Figure 2, failstop bars). *)
  let rate mechanism =
    let r =
      Core.Experiment.campaign ~fault:Core.Experiment.Failstop ~mechanism ~runs:120 ()
    in
    Sim.Stats.rate (Inject.Campaign.success_rate r)
  in
  let nl = rate Core.Experiment.Nilihype in
  let re = rate Core.Experiment.Rehype in
  checkb "NiLiHype high" true (nl > 0.88);
  checkb "ReHype high" true (re > 0.88);
  checkb "essentially identical" true (abs_float (nl -. re) < 0.06)

let test_latency_headline () =
  (* NiLiHype recovers >30x faster than ReHype (the paper's headline). *)
  let nl = Hyper.Latency_model.total (Core.Latency.nilihype_breakdown ()) in
  let re = Hyper.Latency_model.total (Core.Latency.rehype_breakdown ()) in
  checkb "NiLiHype ~22ms" true (nl >= Sim.Time.ms 21 && nl <= Sim.Time.ms 23);
  checkb "ReHype ~713ms" true (re >= Sim.Time.ms 700 && re <= Sim.Time.ms 725);
  checkb ">30x" true (re > 30 * nl)

let test_enhancement_ladder_monotone () =
  (* Table I: every enhancement (weakly) improves the recovery rate. *)
  let rates =
    List.map
      (fun (_, hv_config, enh) ->
        let cfg =
          {
            Inject.Run.default_config with
            Inject.Run.fault = Inject.Fault.Failstop;
            setup = Inject.Run.One_appvm Workloads.Workload.Unixbench;
            mech = Inject.Run.Mech (Recovery.Engine.Nilihype, enh);
            hv_config;
          }
        in
        let r = Inject.Campaign.run ~base_seed:400L ~n:80 cfg in
        Sim.Stats.rate (Inject.Campaign.success_rate r))
      Recovery.Enhancement.table1_ladder
  in
  (match rates with
  | basic :: _ -> checkb "basic never succeeds" true (basic = 0.0)
  | [] -> Alcotest.fail "no ladder");
  let rec weakly_monotone tolerance = function
    | a :: (b :: _ as rest) -> b >= a -. tolerance && weakly_monotone tolerance rest
    | _ -> true
  in
  checkb "ladder (weakly) monotone" true (weakly_monotone 0.05 rates);
  checkb "full set above 90%" true (List.nth rates 6 > 0.90)

let test_outcome_one_call () =
  match
    Core.Experiment.inject_one ~fault:Core.Experiment.Failstop
      ~mechanism:Core.Experiment.Nilihype ~seed:5L ()
  with
  | Inject.Run.Detected d ->
    checkb "recovered" true d.Inject.Run.recovered;
    checkb "latency present" true (d.Inject.Run.recovery_latency > 0)
  | _ -> Alcotest.fail "failstop must be detected"

let test_sdc_rarer_than_detected_for_code () =
  let r =
    Core.Experiment.campaign ~fault:Core.Experiment.Code
      ~mechanism:Core.Experiment.Nilihype ~runs:150 ()
  in
  let _, sdc, det = Inject.Campaign.breakdown r in
  checkb "SDC < detected (Code faults)" true (sdc < det)

let test_full_geometry_run () =
  (* One complete failstop run at the paper's real 8 GB geometry: the
     page-frame scan walks 2 Mi descriptors. *)
  let cfg =
    {
      Inject.Run.default_config with
      Inject.Run.seed = 77L;
      mconfig = Hw.Machine.default_config;
      fault = Inject.Fault.Failstop;
    }
  in
  match Inject.Run.run cfg with
  | Inject.Run.Detected d ->
    checkb "latency about 22ms" true
      (d.Inject.Run.recovery_latency > Sim.Time.ms 21
       && d.Inject.Run.recovery_latency < Sim.Time.ms 24)
  | _ -> Alcotest.fail "failstop must be detected"

let () =
  Alcotest.run "integration"
    [
      ( "end_to_end",
        [
          Alcotest.test_case "quickstart flow" `Quick test_quickstart_flow;
          Alcotest.test_case "failstop campaign headline" `Slow
            test_failstop_campaign_headline;
          Alcotest.test_case "latency headline >30x" `Quick test_latency_headline;
          Alcotest.test_case "enhancement ladder monotone" `Slow
            test_enhancement_ladder_monotone;
          Alcotest.test_case "one-call experiment" `Quick test_outcome_one_call;
          Alcotest.test_case "code SDC < detected" `Slow
            test_sdc_rarer_than_detected_for_code;
          Alcotest.test_case "full 8GB geometry run" `Quick test_full_geometry_run;
        ] );
    ]
