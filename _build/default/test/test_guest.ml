(* Tests for the guest library: file system + golden copy, processes,
   netstack, toolstack. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------- Fs --------------------------------------- *)

let test_fs_create_and_match () =
  let live = Guest.Fs.create () and golden = Guest.Fs.create () in
  ignore (Guest.Fs.create_file live ~name:"a" ~seed:1 ~size_kb:1024);
  ignore (Guest.Fs.create_file golden ~name:"a" ~seed:1 ~size_kb:1024);
  Guest.Fs.flush live ~io_ok:true;
  Guest.Fs.flush golden ~io_ok:true;
  checkb "matches golden" true (Guest.Fs.compare_golden ~golden live = Guest.Fs.Match)

let test_fs_content_differs () =
  let live = Guest.Fs.create () and golden = Guest.Fs.create () in
  ignore (Guest.Fs.create_file live ~name:"a" ~seed:1 ~size_kb:4);
  ignore (Guest.Fs.create_file golden ~name:"a" ~seed:2 ~size_kb:4);
  Guest.Fs.flush live ~io_ok:true;
  checkb "different seed differs" false
    (Guest.Fs.compare_golden ~golden live = Guest.Fs.Match)

let test_fs_missing_file () =
  let live = Guest.Fs.create () and golden = Guest.Fs.create () in
  ignore (Guest.Fs.create_file golden ~name:"a" ~seed:1 ~size_kb:4);
  match Guest.Fs.compare_golden ~golden live with
  | Guest.Fs.Mismatch _ -> ()
  | Guest.Fs.Match -> Alcotest.fail "missing file must mismatch"

let test_fs_copy_duplicates_content () =
  let fs = Guest.Fs.create () in
  ignore (Guest.Fs.create_file fs ~name:"src" ~seed:5 ~size_kb:8);
  (match Guest.Fs.copy fs ~src:"src" ~dst:"dst" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "copy failed");
  let d1 = Guest.Fs.read fs ~name:"src" and d2 = Guest.Fs.read fs ~name:"dst" in
  checkb "same digest" true (d1 = d2)

let test_fs_write_changes_digest () =
  let fs = Guest.Fs.create () in
  ignore (Guest.Fs.create_file fs ~name:"a" ~seed:1 ~size_kb:4);
  let before = Guest.Fs.read fs ~name:"a" in
  ignore (Guest.Fs.write fs ~name:"a" ~seed:99);
  checkb "digest changed" false (before = Guest.Fs.read fs ~name:"a")

let test_fs_remove () =
  let fs = Guest.Fs.create () in
  ignore (Guest.Fs.create_file fs ~name:"a" ~seed:1 ~size_kb:4);
  ignore (Guest.Fs.remove fs ~name:"a");
  checkb "gone" true (Guest.Fs.read fs ~name:"a" = Error `Not_found)

let test_fs_double_create_rejected () =
  let fs = Guest.Fs.create () in
  ignore (Guest.Fs.create_file fs ~name:"a" ~seed:1 ~size_kb:4);
  checkb "exists" true (Guest.Fs.create_file fs ~name:"a" ~seed:1 ~size_kb:4 = Error `Exists)

let test_fs_io_errors_fail_verification () =
  let live = Guest.Fs.create () and golden = Guest.Fs.create () in
  ignore (Guest.Fs.create_file live ~name:"a" ~seed:1 ~size_kb:4);
  ignore (Guest.Fs.create_file golden ~name:"a" ~seed:1 ~size_kb:4);
  Guest.Fs.flush golden ~io_ok:true;
  Guest.Fs.flush live ~io_ok:false; (* the block device is broken *)
  checkb "io errors mismatch" false
    (Guest.Fs.compare_golden ~golden live = Guest.Fs.Match)

let test_fs_corruption_detected () =
  let live = Guest.Fs.create () and golden = Guest.Fs.create () in
  ignore (Guest.Fs.create_file live ~name:"a" ~seed:1 ~size_kb:4);
  ignore (Guest.Fs.create_file golden ~name:"a" ~seed:1 ~size_kb:4);
  Guest.Fs.flush live ~io_ok:true;
  checkb "corrupted" true (Guest.Fs.corrupt_one live);
  checkb "golden compare catches SDC" false
    (Guest.Fs.compare_golden ~golden live = Guest.Fs.Match)

(* ------------------------- Process ---------------------------------- *)

let test_process_syscall_lifecycle () =
  let p = Guest.Process.create ~pid:1 ~name:"test" in
  Guest.Process.issue_syscall p;
  checkb "in syscall" true (p.Guest.Process.state = Guest.Process.In_syscall);
  Guest.Process.complete_syscall p;
  checkb "healthy" true (Guest.Process.healthy p);
  checki "one completed" 1 p.Guest.Process.syscalls_completed

let test_process_lost_syscall_blocks_forever () =
  let p = Guest.Process.create ~pid:1 ~name:"test" in
  Guest.Process.issue_syscall p;
  Guest.Process.lose_syscall p;
  checkb "blocked forever" true (p.Guest.Process.state = Guest.Process.Blocked_forever);
  checkb "unhealthy" false (Guest.Process.healthy p)

let test_process_failed_syscall_counts () =
  let p = Guest.Process.create ~pid:1 ~name:"test" in
  Guest.Process.issue_syscall p;
  Guest.Process.complete_syscall ~failed:true p;
  checkb "failed syscall makes benchmark fail" false (Guest.Process.healthy p)

let test_process_tls_clobber_crashes () =
  let p = Guest.Process.create ~pid:1 ~name:"test" in
  Guest.Process.clobber_tls p;
  checkb "crashed" true (p.Guest.Process.state = Guest.Process.Crashed)

let test_process_double_issue_rejected () =
  let p = Guest.Process.create ~pid:1 ~name:"test" in
  Guest.Process.issue_syscall p;
  Alcotest.check_raises "double issue"
    (Invalid_argument "Process.issue_syscall: process not running") (fun () ->
      Guest.Process.issue_syscall p)

(* ------------------------- Netstack --------------------------------- *)

let test_netstack_healthy_traffic () =
  let n = Guest.Netstack.create () in
  for i = 1 to 5000 do
    Guest.Netstack.sender_tick n ~now:(i * Sim.Time.ms 1) ~delivered:true
  done;
  checkb "no failure" false (Guest.Netstack.failed n);
  checkb "zero loss" true (Guest.Netstack.loss_rate n = 0.0)

let test_netstack_nilihype_gap_tolerated () =
  (* A 22 ms pause loses ~22 of 1000 pings in its window: 2.2% < 10%. *)
  let n = Guest.Netstack.create () in
  Guest.Netstack.interruption n ~now:(Sim.Time.s 1) ~duration:(Sim.Time.ms 22);
  checkb "below 10% window criterion" false (Guest.Netstack.failed n)

let test_netstack_rehype_gap_trips_criterion () =
  (* A 713 ms pause loses 71% of a 1 s window: NetBench notices. *)
  let n = Guest.Netstack.create () in
  Guest.Netstack.interruption n ~now:(Sim.Time.s 1) ~duration:(Sim.Time.ms 713);
  checkb "over 10% window criterion" true (Guest.Netstack.failed n)

let test_netstack_max_gap () =
  let n = Guest.Netstack.create () in
  Guest.Netstack.sender_tick n ~now:(Sim.Time.ms 1) ~delivered:true;
  Guest.Netstack.interruption n ~now:(Sim.Time.ms 2) ~duration:(Sim.Time.ms 50);
  checkb "max gap recorded" true (n.Guest.Netstack.max_gap >= Sim.Time.ms 50)

(* ------------------------- Kernel ----------------------------------- *)

let make_system () =
  let clock = Sim.Clock.create () in
  let hv =
    Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
      ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock
  in
  (hv, Sim.Rng.create 7L)

let test_kernel_verify_clean () =
  let hv, _ = make_system () in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let k = Guest.Kernel.create dom in
  Guest.Kernel.populate_blkbench_files k ~files:4 ~size_kb:1024;
  Guest.Fs.flush k.Guest.Kernel.fs ~io_ok:true;
  Guest.Fs.flush k.Guest.Kernel.golden ~io_ok:true;
  checkb "verifies" true (Guest.Kernel.verify k)

let test_kernel_sdc_flag_corrupts_fs () =
  let hv, _ = make_system () in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let k = Guest.Kernel.create dom in
  Guest.Kernel.populate_blkbench_files k ~files:4 ~size_kb:1024;
  dom.Hyper.Domain.guest_sdc <- true;
  Guest.Kernel.apply_domain_flags k;
  checkb "verification fails" false (Guest.Kernel.verify k)

let test_kernel_failed_flag_kills_processes () =
  let hv, _ = make_system () in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let k = Guest.Kernel.create dom in
  let p = Guest.Kernel.spawn k ~name:"worker" in
  Guest.Process.issue_syscall p;
  dom.Hyper.Domain.guest_failed <- true;
  Guest.Kernel.apply_domain_flags k;
  checkb "process blocked" true (p.Guest.Process.state = Guest.Process.Blocked_forever);
  checkb "verification fails" false (Guest.Kernel.verify k)

let test_kernel_fsgs_loss_crashes_processes () =
  let hv, _ = make_system () in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let k = Guest.Kernel.create dom in
  let p = Guest.Kernel.spawn k ~name:"worker" in
  dom.Hyper.Domain.vcpus.(0).Hyper.Domain.fsgs_valid <- false;
  Guest.Kernel.apply_domain_flags k;
  checkb "process crashed" true (p.Guest.Process.state = Guest.Process.Crashed)

(* ------------------------- Toolstack -------------------------------- *)

let test_toolstack_create_vm () =
  let hv, rng = make_system () in
  let ts = Guest.Toolstack.create hv ~rng in
  match Guest.Toolstack.create_vm ts with
  | Guest.Toolstack.Created dom ->
    checkb "app domain" false dom.Hyper.Domain.privileged;
    checkb "alive" true dom.Hyper.Domain.alive
  | Guest.Toolstack.Failed why -> Alcotest.fail ("create_vm: " ^ why)

let test_toolstack_create_fails_on_broken_heap () =
  let hv, rng = make_system () in
  Hyper.Heap.corrupt_freelist hv.Hyper.Hypervisor.heap "test";
  let ts = Guest.Toolstack.create hv ~rng in
  match Guest.Toolstack.create_vm ts with
  | Guest.Toolstack.Created _ -> Alcotest.fail "should have failed"
  | Guest.Toolstack.Failed _ -> ()

let test_toolstack_create_after_recovery () =
  (* The 3AppVM health check: create a VM after a full recovery. *)
  let hv, rng = make_system () in
  (try
     Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Timer_tick 0)
       ~stop_at:4
   with Hyper.Crash.Hypervisor_crash _ -> ());
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  ignore
    (Recovery.Microreset.recover hv ~enh:Recovery.Enhancement.full_set
       ~detected_on:0);
  let ts = Guest.Toolstack.create hv ~rng in
  match Guest.Toolstack.create_vm ts with
  | Guest.Toolstack.Created _ -> ()
  | Guest.Toolstack.Failed why -> Alcotest.fail ("post-recovery create: " ^ why)

let () =
  Alcotest.run "guest"
    [
      ( "fs",
        [
          Alcotest.test_case "create and match" `Quick test_fs_create_and_match;
          Alcotest.test_case "content differs" `Quick test_fs_content_differs;
          Alcotest.test_case "missing file" `Quick test_fs_missing_file;
          Alcotest.test_case "copy duplicates" `Quick test_fs_copy_duplicates_content;
          Alcotest.test_case "write changes digest" `Quick test_fs_write_changes_digest;
          Alcotest.test_case "remove" `Quick test_fs_remove;
          Alcotest.test_case "double create" `Quick test_fs_double_create_rejected;
          Alcotest.test_case "io errors fail verification" `Quick
            test_fs_io_errors_fail_verification;
          Alcotest.test_case "corruption detected" `Quick test_fs_corruption_detected;
        ] );
      ( "process",
        [
          Alcotest.test_case "syscall lifecycle" `Quick test_process_syscall_lifecycle;
          Alcotest.test_case "lost syscall" `Quick test_process_lost_syscall_blocks_forever;
          Alcotest.test_case "failed syscall" `Quick test_process_failed_syscall_counts;
          Alcotest.test_case "tls clobber" `Quick test_process_tls_clobber_crashes;
          Alcotest.test_case "double issue" `Quick test_process_double_issue_rejected;
        ] );
      ( "netstack",
        [
          Alcotest.test_case "healthy traffic" `Quick test_netstack_healthy_traffic;
          Alcotest.test_case "NiLiHype gap tolerated" `Quick
            test_netstack_nilihype_gap_tolerated;
          Alcotest.test_case "ReHype gap trips criterion" `Quick
            test_netstack_rehype_gap_trips_criterion;
          Alcotest.test_case "max gap" `Quick test_netstack_max_gap;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "verify clean" `Quick test_kernel_verify_clean;
          Alcotest.test_case "sdc corrupts fs" `Quick test_kernel_sdc_flag_corrupts_fs;
          Alcotest.test_case "failure kills processes" `Quick
            test_kernel_failed_flag_kills_processes;
          Alcotest.test_case "fsgs loss crashes processes" `Quick
            test_kernel_fsgs_loss_crashes_processes;
        ] );
      ( "toolstack",
        [
          Alcotest.test_case "create vm" `Quick test_toolstack_create_vm;
          Alcotest.test_case "create on broken heap" `Quick
            test_toolstack_create_fails_on_broken_heap;
          Alcotest.test_case "create after recovery" `Quick
            test_toolstack_create_after_recovery;
        ] );
    ]
