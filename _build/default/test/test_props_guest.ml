(* Property-based tests over the guest substrate and remaining
   invariants: golden-copy mirroring, heap bookkeeping, netstack window
   accounting, latency-model monotonicity. *)

(* Applying the same operation sequence to a live FS and its golden copy
   keeps them equal; diverging at any single point is detected. *)
let fs_op =
  QCheck.(
    oneof
      [
        map (fun (n, s) -> `Create (n mod 8, s)) (pair small_nat small_nat);
        map (fun (n, s) -> `Write (n mod 8, s)) (pair small_nat small_nat);
        map (fun (a, b) -> `Copy (a mod 8, b mod 8)) (pair small_nat small_nat);
        map (fun n -> `Remove (n mod 8)) small_nat;
      ])

let apply_fs_op fs op =
  let name i = Printf.sprintf "f%d" i in
  match op with
  | `Create (i, seed) -> ignore (Guest.Fs.create_file fs ~name:(name i) ~seed ~size_kb:4)
  | `Write (i, seed) -> ignore (Guest.Fs.write fs ~name:(name i) ~seed)
  | `Copy (a, b) -> ignore (Guest.Fs.copy fs ~src:(name a) ~dst:(name b))
  | `Remove (i) -> ignore (Guest.Fs.remove fs ~name:(name i))

let prop_fs_mirrored_ops_match =
  QCheck.Test.make ~name:"fs: mirrored op sequences stay golden-equal"
    (QCheck.list fs_op) (fun ops ->
      let live = Guest.Fs.create () and golden = Guest.Fs.create () in
      List.iter
        (fun op ->
          apply_fs_op live op;
          apply_fs_op golden op)
        ops;
      Guest.Fs.flush live ~io_ok:true;
      Guest.Fs.flush golden ~io_ok:true;
      Guest.Fs.compare_golden ~golden live = Guest.Fs.Match)

let prop_fs_corruption_always_detected =
  QCheck.Test.make ~name:"fs: single corruption never passes verification"
    (QCheck.list fs_op) (fun ops ->
      let live = Guest.Fs.create () and golden = Guest.Fs.create () in
      List.iter
        (fun op ->
          apply_fs_op live op;
          apply_fs_op golden op)
        ops;
      Guest.Fs.flush live ~io_ok:true;
      Guest.Fs.flush golden ~io_ok:true;
      (* Only meaningful when at least one file exists. *)
      if Guest.Fs.corrupt_one live then
        Guest.Fs.compare_golden ~golden live <> Guest.Fs.Match
      else true)

(* Heap: bytes_live equals the sum of live object sizes under any
   alloc/free interleaving. *)
let prop_heap_bytes_accounting =
  QCheck.Test.make ~name:"heap: bytes_live = sum of live sizes"
    QCheck.(list (pair bool (int_range 1 512)))
    (fun ops ->
      let h = Hyper.Heap.create () in
      let live = ref [] in
      List.iter
        (fun (free, size) ->
          if free then begin
            match !live with
            | o :: rest ->
              Hyper.Heap.free h o;
              live := rest
            | [] -> ()
          end
          else live := Hyper.Heap.alloc h ~size Hyper.Heap.Generic :: !live)
        ops;
      let expected = List.fold_left (fun acc o -> acc + o.Hyper.Heap.size) 0 !live in
      Hyper.Heap.bytes_live h = expected)

(* Netstack: an interruption of duration d loses exactly d/interval
   pings, and trips the 10% criterion iff some 1 s window lost >10%. *)
let prop_netstack_interruption_accounting =
  QCheck.Test.make ~name:"netstack: interruption loss accounting"
    QCheck.(int_range 1 5_000)
    (fun ms ->
      let n = Guest.Netstack.create () in
      Guest.Netstack.interruption n ~now:(Sim.Time.s 1) ~duration:(Sim.Time.ms ms);
      let lost = n.Guest.Netstack.sent - n.Guest.Netstack.echoed in
      lost = ms
      && Guest.Netstack.failed n = (min ms 1000 > 100 || ms mod 1000 > 100))

(* Latency model: recovery latency grows monotonically with frames for
   both mechanisms, and ReHype dominates NiLiHype at every size. *)
let prop_latency_monotone =
  QCheck.Test.make ~name:"latency model: monotone in frames, ReHype > NiLiHype"
    QCheck.(pair (int_range 1_000 5_000_000) (int_range 1_000 5_000_000))
    (fun (f1, f2) ->
      let lo = min f1 f2 and hi = max f1 f2 in
      let nl frames = Hyper.Latency_model.pfn_scan ~frames in
      let re frames =
        Hyper.Latency_model.reboot_record_old_heap ~frames
        + Hyper.Latency_model.pfn_scan ~frames
        + Hyper.Latency_model.reboot_reinit_unpreserved_pfn ~frames
        + Hyper.Latency_model.reboot_recreate_heap ~frames
        + Hyper.Latency_model.reboot_early_boot_cpu
        + Hyper.Latency_model.reboot_apic_ioapic_setup
      in
      nl lo <= nl hi && re lo <= re hi && re lo > nl lo && re hi > nl hi)

(* Process: any legal syscall trajectory keeps counts consistent. *)
let prop_process_syscall_counts =
  QCheck.Test.make ~name:"process: syscall counters consistent"
    QCheck.(list bool)
    (fun failures ->
      let p = Guest.Process.create ~pid:1 ~name:"x" in
      List.iter
        (fun failed ->
          if p.Guest.Process.state = Guest.Process.Running then begin
            Guest.Process.issue_syscall p;
            Guest.Process.complete_syscall ~failed p
          end)
        failures;
      p.Guest.Process.syscalls_issued
      = p.Guest.Process.syscalls_completed + p.Guest.Process.syscalls_failed)

(* Table I ladder rows never lose enhancements relative to the previous
   row (set inclusion, not just cardinality). *)
let prop_ladder_set_inclusion =
  QCheck.Test.make ~name:"ladder rows are supersets of their predecessors" ~count:1
    QCheck.unit (fun () ->
      let rec check = function
        | (_, _, a) :: ((_, _, b) :: _ as rest) ->
          List.for_all
            (fun e -> List.mem e b.Recovery.Enhancement.enabled)
            a.Recovery.Enhancement.enabled
          && check rest
        | _ -> true
      in
      check Recovery.Enhancement.table1_ladder)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties_guest"
    [
      ( "guest",
        List.map to_alcotest
          [
            prop_fs_mirrored_ops_match;
            prop_fs_corruption_always_detected;
            prop_netstack_interruption_accounting;
            prop_process_syscall_counts;
          ] );
      ( "hyper",
        List.map to_alcotest
          [ prop_heap_bytes_accounting; prop_latency_monotone; prop_ladder_set_inclusion ]
      );
    ]
