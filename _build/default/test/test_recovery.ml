(* Tests for the recovery engines: microreset (NiLiHype) and microreboot
   (ReHype), enhancement-by-enhancement. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let crashes f =
  match f () with
  | _ -> false
  | exception Hyper.Crash.Hypervisor_crash _ -> true

let boot ?(config = Hyper.Config.nilihype) () =
  let clock = Sim.Clock.create () in
  Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config ~config
    ~setup:Hyper.Hypervisor.Three_appvm clock

(* Put the hypervisor in a typical post-failure state: a hypercall
   abandoned mid-flight, a concurrent context switch abandoned, IRQ
   counts bumped by the detection path. *)
let wreck hv rng =
  (try
     Hyper.Hypervisor.execute_partial hv rng
       (Hyper.Hypervisor.Hypercall
          { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 2 })
       ~stop_at:5
   with Hyper.Crash.Hypervisor_crash _ -> ());
  (try
     Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Context_switch 2)
       ~stop_at:6
   with Hyper.Crash.Hypervisor_crash _ -> ());
  (try
     Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Timer_tick 0)
       ~stop_at:3
   with Hyper.Crash.Hypervisor_crash _ -> ());
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu

let full = Recovery.Enhancement.full_set

(* ------------------------- Enhancement catalogue -------------------- *)

let test_ladder_is_cumulative () =
  let sizes =
    List.map
      (fun (_, _, set) -> List.length set.Recovery.Enhancement.enabled)
      Recovery.Enhancement.table1_ladder
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "each row adds enhancements" true (monotone sizes);
  checki "seven rows like Table I" 7 (List.length Recovery.Enhancement.table1_ladder)

let test_ladder_first_row_basic () =
  match Recovery.Enhancement.table1_ladder with
  | (label, _, set) :: _ ->
    Alcotest.check Alcotest.string "basic" "Basic" label;
    checki "no enhancements" 0 (List.length set.Recovery.Enhancement.enabled)
  | [] -> Alcotest.fail "empty ladder"

let test_rehype_mechanisms_subset_of_all () =
  List.iter
    (fun e -> checkb (Recovery.Enhancement.name e) true (List.mem e Recovery.Enhancement.all))
    Recovery.Enhancement.rehype_mechanisms

(* ------------------------- Microreset ------------------------------- *)

let test_microreset_clears_irq_counts () =
  let hv = boot () in
  let rng = Sim.Rng.create 1L in
  wreck hv rng;
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  Array.iter
    (fun (p : Hyper.Percpu.t) -> checki "irq count zero" 0 p.Hyper.Percpu.local_irq_count)
    hv.Hyper.Hypervisor.percpu

let test_microreset_releases_locks () =
  let hv = boot () in
  let rng = Sim.Rng.create 2L in
  wreck hv rng;
  Hyper.Spinlock.acquire hv.Hyper.Hypervisor.console_lock ~cpu:3;
  let r = Recovery.Microreset.recover hv ~enh:full ~detected_on:0 in
  checkb "heap locks released" true (r.Recovery.Microreset.heap_locks_released > 0);
  checkb "static locks released" true (r.Recovery.Microreset.static_locks_released > 0);
  checkb "console lock free" false
    (Hyper.Spinlock.is_held hv.Hyper.Hypervisor.console_lock)

let test_microreset_reprograms_apics () =
  let hv = boot () in
  let rng = Sim.Rng.create 3L in
  wreck hv rng;
  (* The abandoned timer tick left CPU 0's APIC disarmed. *)
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  Hw.Machine.iter_cpus hv.Hyper.Hypervisor.machine (fun c ->
      checkb "apic armed after recovery" true (Hw.Apic.timer_armed c.Hw.Cpu.apic))

let test_microreset_sets_up_retry () =
  let hv = boot () in
  let rng = Sim.Rng.create 4L in
  wreck hv rng;
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "hypercall retry pending" true v.Hyper.Domain.retry_pending

let test_microreset_without_retry_loses_work () =
  let hv = boot () in
  let rng = Sim.Rng.create 5L in
  wreck hv rng;
  let enh =
    Recovery.Enhancement.set_of_list
      (List.filter
         (fun e -> e <> Recovery.Enhancement.Hypercall_retry)
         Recovery.Enhancement.all)
  in
  ignore (Recovery.Microreset.recover hv ~enh ~detected_on:0);
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "work lost without retry" true v.Hyper.Domain.lost_work;
  checkb "no retry pending" false v.Hyper.Domain.retry_pending

let test_microreset_audit_clean_after_full_recovery () =
  let hv = boot () in
  let rng = Sim.Rng.create 6L in
  wreck hv rng;
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  (* Complete the retries, then the audit must be clean. *)
  List.iter
    (fun (v : Hyper.Domain.vcpu) ->
      if v.Hyper.Domain.retry_pending then Hyper.Hypervisor.retry_hypercall hv rng v;
      if v.Hyper.Domain.syscall_retry_pending then Hyper.Hypervisor.retry_syscall hv v)
    (Hyper.Hypervisor.all_vcpus hv);
  let report = Hyper.Hypervisor.audit hv in
  checkb
    (Format.asprintf "clean: %a" Hyper.Hypervisor.pp_audit report)
    true
    (Hyper.Hypervisor.audit_clean report)

let test_microreset_basic_leaves_irq_residue () =
  (* With no enhancements, the IRQ counters bumped by detection stay,
     and the next schedule() asserts: Table I's 0% row. *)
  let hv = boot ~config:Hyper.Config.stock () in
  let rng = Sim.Rng.create 7L in
  wreck hv rng;
  ignore
    (Recovery.Microreset.recover hv
       ~enh:(Recovery.Enhancement.set_of_list [])
       ~detected_on:0);
  checkb "irq residue" true
    (Array.exists
       (fun (p : Hyper.Percpu.t) -> p.Hyper.Percpu.local_irq_count > 0)
       hv.Hyper.Hypervisor.percpu);
  checkb "next schedule asserts" true
    (crashes (fun () ->
         Hyper.Hypervisor.execute hv rng (Hyper.Hypervisor.Context_switch 0)))

let test_microreset_corrupted_handler_fails () =
  let hv = boot () in
  let rng = Sim.Rng.create 8L in
  wreck hv rng;
  hv.Hyper.Hypervisor.recovery_handler_ok <- false;
  checkb "recovery aborts" true
    (crashes (fun () -> Recovery.Microreset.recover hv ~enh:full ~detected_on:0))

let test_microreset_latency_breakdown () =
  (* Table III at full geometry: ~22 ms dominated by the pfn scan. *)
  let clock = Sim.Clock.create () in
  let hv =
    Hyper.Hypervisor.boot ~mconfig:Hw.Machine.default_config
      ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.One_appvm clock
  in
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  let r = Recovery.Microreset.recover hv ~enh:full ~detected_on:0 in
  let total = Hyper.Latency_model.total r.Recovery.Microreset.breakdown in
  checkb "about 22ms" true (total > Sim.Time.ms 21 && total < Sim.Time.ms 23);
  let scan =
    List.assoc "Restore and check consistency of page frame entries"
      r.Recovery.Microreset.breakdown.Hyper.Latency_model.steps
  in
  checkb "scan dominates" true (scan > (total * 9) / 10)

let test_microreset_latency_scales_with_memory () =
  let measure mem_bytes =
    let clock = Sim.Clock.create () in
    let hv =
      Hyper.Hypervisor.boot
        ~mconfig:{ Hw.Machine.default_config with Hw.Machine.mem_bytes }
        ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.One_appvm clock
    in
    let r = Recovery.Microreset.recover hv ~enh:full ~detected_on:0 in
    Hyper.Latency_model.total r.Recovery.Microreset.breakdown
  in
  let l8 = measure (8 * 1024 * 1024 * 1024) in
  let l16 = measure (16 * 1024 * 1024 * 1024) in
  (* Section VII-B: "the latency ... is proportional to the size of the
     host memory". *)
  checkb "16GB roughly doubles the scan" true
    (l16 > l8 + Sim.Time.ms 19 && l16 < (2 * l8) + Sim.Time.ms 1)

(* ------------------------- Microreboot ------------------------------ *)

let test_microreboot_latency_breakdown () =
  let clock = Sim.Clock.create () in
  let hv =
    Hyper.Hypervisor.boot ~mconfig:Hw.Machine.default_config
      ~config:Hyper.Config.rehype ~setup:Hyper.Hypervisor.One_appvm clock
  in
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  let r = Recovery.Microreboot.recover hv ~enh:full ~detected_on:0 in
  let total = Hyper.Latency_model.total r.Recovery.Microreboot.breakdown in
  checkb "about 713ms" true (total > Sim.Time.ms 700 && total < Sim.Time.ms 725)

let test_latency_ratio_over_30x () =
  let nl = Hyper.Latency_model.total (Core.Latency.nilihype_breakdown ()) in
  let re = Hyper.Latency_model.total (Core.Latency.rehype_breakdown ()) in
  checkb "paper headline: >30x" true (re > 30 * nl)

let test_microreboot_requires_bootline_log () =
  let hv = boot ~config:{ Hyper.Config.rehype with Hyper.Config.bootline_logging = false } () in
  let rng = Sim.Rng.create 9L in
  wreck hv rng;
  checkb "reboot without boot options fails" true
    (crashes (fun () -> Recovery.Microreboot.recover hv ~enh:full ~detected_on:0))

let test_microreboot_restores_ioapic_from_log () =
  let hv = boot ~config:Hyper.Config.rehype () in
  let rng = Sim.Rng.create 10L in
  wreck hv rng;
  let r = Recovery.Microreboot.recover hv ~enh:full ~detected_on:0 in
  checkb "ioapic restored" true r.Recovery.Microreboot.ioapic_restored;
  checkb "routing valid" true
    (Hw.Ioapic.routing_valid hv.Hyper.Hypervisor.machine.Hw.Machine.ioapic)

let test_microreboot_repairs_heap_and_static () =
  (* The reboot repairs damage classes microreset cannot. *)
  let hv = boot ~config:Hyper.Config.rehype () in
  let rng = Sim.Rng.create 11L in
  wreck hv rng;
  Hyper.Heap.corrupt_freelist hv.Hyper.Hypervisor.heap "test";
  hv.Hyper.Hypervisor.static_data_ok <- false;
  Hyper.Timer_heap.corrupt_structure hv.Hyper.Hypervisor.timers;
  ignore (Recovery.Microreboot.recover hv ~enh:full ~detected_on:0);
  checkb "freelist rebuilt" true (Hyper.Heap.freelist_ok hv.Hyper.Hypervisor.heap);
  checkb "static data reinitialised" true hv.Hyper.Hypervisor.static_data_ok;
  checkb "timer heap rebuilt" true
    (Hyper.Timer_heap.structure_ok hv.Hyper.Hypervisor.timers)

let test_microreset_cannot_repair_freelist () =
  let hv = boot () in
  let rng = Sim.Rng.create 12L in
  wreck hv rng;
  Hyper.Heap.corrupt_freelist hv.Hyper.Hypervisor.heap "test";
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  checkb "freelist still corrupt (NiLiHype limit)" false
    (Hyper.Heap.freelist_ok hv.Hyper.Hypervisor.heap)

let test_microreboot_audit_clean () =
  let hv = boot ~config:Hyper.Config.rehype () in
  let rng = Sim.Rng.create 13L in
  wreck hv rng;
  ignore (Recovery.Microreboot.recover hv ~enh:full ~detected_on:0);
  List.iter
    (fun (v : Hyper.Domain.vcpu) ->
      if v.Hyper.Domain.retry_pending then Hyper.Hypervisor.retry_hypercall hv rng v;
      if v.Hyper.Domain.syscall_retry_pending then Hyper.Hypervisor.retry_syscall hv v)
    (Hyper.Hypervisor.all_vcpus hv);
  let report = Hyper.Hypervisor.audit hv in
  checkb
    (Format.asprintf "clean: %a" Hyper.Hypervisor.pp_audit report)
    true
    (Hyper.Hypervisor.audit_clean report)

let test_fsgs_lost_without_save () =
  (* x86-64 port fix: without Save FS/GS, a vCPU inside the hypervisor at
     detection resumes with clobbered segment bases. *)
  let hv = boot ~config:{ Hyper.Config.nilihype with Hyper.Config.save_fs_gs = false } () in
  let rng = Sim.Rng.create 14L in
  wreck hv rng;
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "fs/gs lost" false v.Hyper.Domain.fsgs_valid

let test_fsgs_preserved_with_save () =
  let hv = boot ~config:Hyper.Config.nilihype () in
  let rng = Sim.Rng.create 14L in
  wreck hv rng;
  ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "fs/gs preserved" true v.Hyper.Domain.fsgs_valid

let test_engine_dispatch () =
  let hv = boot () in
  let rng = Sim.Rng.create 15L in
  wreck hv rng;
  let o = Recovery.Engine.recover Recovery.Engine.Nilihype hv ~enh:full ~detected_on:0 in
  checkb "latency positive" true (o.Recovery.Engine.latency > 0);
  checkb "mechanism recorded" true (o.Recovery.Engine.mechanism = Recovery.Engine.Nilihype)

let test_recovery_is_repeatable () =
  (* Nine lives: the hypervisor can be recovered many times over. The
     abandoned hypercall here is idempotent, so every retry succeeds;
     the non-idempotent hazard is exercised by its own tests. *)
  let hv = boot () in
  let rng = Sim.Rng.create 16L in
  for _ = 1 to 9 do
    (try
       Hyper.Hypervisor.execute_partial hv rng
         (Hyper.Hypervisor.Hypercall
            { domid = 1; vid = 0; kind = Hyper.Hypercalls.Sched_op_block })
         ~stop_at:4
     with Hyper.Crash.Hypervisor_crash _ -> ());
    (try
       Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Timer_tick 0)
         ~stop_at:3
     with Hyper.Crash.Hypervisor_crash _ -> ());
    Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
    ignore (Recovery.Microreset.recover hv ~enh:full ~detected_on:0);
    List.iter
      (fun (v : Hyper.Domain.vcpu) ->
        if v.Hyper.Domain.retry_pending then Hyper.Hypervisor.retry_hypercall hv rng v;
        if v.Hyper.Domain.syscall_retry_pending then Hyper.Hypervisor.retry_syscall hv v;
        v.Hyper.Domain.lost_work <- false)
      (Hyper.Hypervisor.all_vcpus hv)
  done;
  checkb "healthy after nine recoveries" true
    (Hyper.Hypervisor.audit_clean (Hyper.Hypervisor.audit hv))

let () =
  Alcotest.run "recovery"
    [
      ( "enhancements",
        [
          Alcotest.test_case "ladder cumulative" `Quick test_ladder_is_cumulative;
          Alcotest.test_case "basic row" `Quick test_ladder_first_row_basic;
          Alcotest.test_case "rehype mechanisms subset" `Quick
            test_rehype_mechanisms_subset_of_all;
        ] );
      ( "microreset",
        [
          Alcotest.test_case "clears irq counts" `Quick test_microreset_clears_irq_counts;
          Alcotest.test_case "releases locks" `Quick test_microreset_releases_locks;
          Alcotest.test_case "reprograms apics" `Quick test_microreset_reprograms_apics;
          Alcotest.test_case "sets up retry" `Quick test_microreset_sets_up_retry;
          Alcotest.test_case "without retry loses work" `Quick
            test_microreset_without_retry_loses_work;
          Alcotest.test_case "audit clean after recovery" `Quick
            test_microreset_audit_clean_after_full_recovery;
          Alcotest.test_case "basic leaves irq residue" `Quick
            test_microreset_basic_leaves_irq_residue;
          Alcotest.test_case "corrupted handler fails" `Quick
            test_microreset_corrupted_handler_fails;
          Alcotest.test_case "latency breakdown ~22ms" `Quick
            test_microreset_latency_breakdown;
          Alcotest.test_case "latency scales with memory" `Quick
            test_microreset_latency_scales_with_memory;
          Alcotest.test_case "cannot repair freelist" `Quick
            test_microreset_cannot_repair_freelist;
          Alcotest.test_case "repeatable (nine lives)" `Quick test_recovery_is_repeatable;
        ] );
      ( "microreboot",
        [
          Alcotest.test_case "latency breakdown ~713ms" `Quick
            test_microreboot_latency_breakdown;
          Alcotest.test_case "ratio >30x" `Quick test_latency_ratio_over_30x;
          Alcotest.test_case "requires bootline log" `Quick
            test_microreboot_requires_bootline_log;
          Alcotest.test_case "restores ioapic from log" `Quick
            test_microreboot_restores_ioapic_from_log;
          Alcotest.test_case "repairs heap and static data" `Quick
            test_microreboot_repairs_heap_and_static;
          Alcotest.test_case "audit clean" `Quick test_microreboot_audit_clean;
        ] );
      ( "fsgs",
        [
          Alcotest.test_case "lost without save" `Quick test_fsgs_lost_without_save;
          Alcotest.test_case "preserved with save" `Quick test_fsgs_preserved_with_save;
        ] );
      ( "engine",
        [ Alcotest.test_case "dispatch" `Quick test_engine_dispatch ] );
    ]
