(* Tests for the machine model: registers, APIC, IO-APIC, CPUs. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------- Regs ------------------------------------- *)

let test_regs_get_set () =
  let r = Hw.Regs.create () in
  Hw.Regs.set r Hw.Regs.RAX 0xdeadL;
  Alcotest.check Alcotest.int64 "rax" 0xdeadL (Hw.Regs.get r Hw.Regs.RAX);
  Alcotest.check Alcotest.int64 "rbx untouched" 0L (Hw.Regs.get r Hw.Regs.RBX)

let test_regs_flip_bit () =
  let r = Hw.Regs.create () in
  Hw.Regs.flip_bit r Hw.Regs.RSP 3;
  Alcotest.check Alcotest.int64 "bit 3 set" 8L (Hw.Regs.get r Hw.Regs.RSP);
  Hw.Regs.flip_bit r Hw.Regs.RSP 3;
  Alcotest.check Alcotest.int64 "flip twice restores" 0L (Hw.Regs.get r Hw.Regs.RSP)

let test_regs_copy_restore () =
  let r = Hw.Regs.create () in
  Hw.Regs.set r Hw.Regs.FS 42L;
  let saved = Hw.Regs.copy r in
  Hw.Regs.set r Hw.Regs.FS 0L;
  Hw.Regs.restore ~from:saved r;
  Alcotest.check Alcotest.int64 "restored" 42L (Hw.Regs.get r Hw.Regs.FS)

let test_regs_injectable_excludes_fsgs () =
  checkb "FS not injectable" false (Array.mem Hw.Regs.FS Hw.Regs.injectable_regs);
  checkb "GS not injectable" false (Array.mem Hw.Regs.GS Hw.Regs.injectable_regs);
  checki "18 injectable registers" 18 (Array.length Hw.Regs.injectable_regs)

(* ------------------------- Apic ------------------------------------- *)

let test_apic_oneshot () =
  let a = Hw.Apic.create 0 in
  checkb "initially disarmed" false (Hw.Apic.timer_armed a);
  Hw.Apic.program_timer a ~deadline:100;
  checkb "armed" true (Hw.Apic.timer_armed a);
  checkb "not due yet" false (Hw.Apic.timer_fire_check a ~now:50);
  checkb "fires at deadline" true (Hw.Apic.timer_fire_check a ~now:100);
  (* One-shot: after firing it is disarmed and never fires again. *)
  checkb "disarmed after fire" false (Hw.Apic.timer_armed a);
  checkb "never fires again" false (Hw.Apic.timer_fire_check a ~now:10_000)

let test_apic_interrupt_lifecycle () =
  let a = Hw.Apic.create 0 in
  Hw.Apic.raise_vector a 0x31;
  checkb "pending" true (List.mem 0x31 a.Hw.Apic.pending);
  Hw.Apic.begin_service a 0x31;
  checkb "no longer pending" false (List.mem 0x31 a.Hw.Apic.pending);
  checkb "in service" true (List.mem 0x31 a.Hw.Apic.in_service);
  Hw.Apic.eoi a 0x31;
  checkb "quiescent after EOI" true (Hw.Apic.quiescent a)

let test_apic_ack_all () =
  let a = Hw.Apic.create 0 in
  Hw.Apic.raise_vector a 0x31;
  Hw.Apic.begin_service a 0x31;
  Hw.Apic.raise_vector a 0x32;
  Hw.Apic.send_ipi a;
  Hw.Apic.ack_all a;
  checkb "quiescent after ack_all" true (Hw.Apic.quiescent a)

let test_apic_ipi () =
  let a = Hw.Apic.create 0 in
  Hw.Apic.send_ipi a;
  checkb "ipi consumed" true (Hw.Apic.consume_ipi a);
  checkb "only once" false (Hw.Apic.consume_ipi a)

let test_apic_duplicate_vector () =
  let a = Hw.Apic.create 0 in
  Hw.Apic.raise_vector a 0x31;
  Hw.Apic.raise_vector a 0x31;
  checki "no duplicates" 1 (List.length a.Hw.Apic.pending)

(* ------------------------- Ioapic ----------------------------------- *)

let test_ioapic_write_read () =
  let io = Hw.Ioapic.create ~lines:4 in
  Hw.Ioapic.write io ~line:1 ~vector:0x31 ~dest_cpu:0 ~masked:false;
  let v, d, m = Hw.Ioapic.read io ~line:1 in
  checki "vector" 0x31 v;
  checki "dest" 0 d;
  checkb "unmasked" false m

let test_ioapic_reset_loses_routing () =
  let io = Hw.Ioapic.create ~lines:4 in
  Hw.Ioapic.write io ~line:1 ~vector:0x31 ~dest_cpu:0 ~masked:false;
  checkb "routed" true (Hw.Ioapic.routing_valid io);
  Hw.Ioapic.reset_to_power_on io;
  checkb "routing lost" false (Hw.Ioapic.routing_valid io)

let test_ioapic_log_replay () =
  (* ReHype's normal-operation IO-APIC write logging allows the reboot to
     restore routing. *)
  let io = Hw.Ioapic.create ~lines:4 in
  Hw.Ioapic.set_logging io true;
  Hw.Ioapic.write io ~line:1 ~vector:0x31 ~dest_cpu:0 ~masked:false;
  Hw.Ioapic.write io ~line:2 ~vector:0x32 ~dest_cpu:1 ~masked:false;
  Hw.Ioapic.reset_to_power_on io;
  Hw.Ioapic.replay_log io;
  let v1, _, _ = Hw.Ioapic.read io ~line:1 in
  let v2, d2, _ = Hw.Ioapic.read io ~line:2 in
  checki "line1 restored" 0x31 v1;
  checki "line2 restored" 0x32 v2;
  checki "dest restored" 1 d2

let test_ioapic_no_log_no_replay () =
  let io = Hw.Ioapic.create ~lines:4 in
  (* logging off: NiLiHype does not need it, but a reboot without it
     cannot restore routing *)
  Hw.Ioapic.write io ~line:1 ~vector:0x31 ~dest_cpu:0 ~masked:false;
  Hw.Ioapic.reset_to_power_on io;
  Hw.Ioapic.replay_log io;
  checkb "nothing restored" false (Hw.Ioapic.routing_valid io)

let test_ioapic_replay_order () =
  (* Later writes must win on replay. *)
  let io = Hw.Ioapic.create ~lines:4 in
  Hw.Ioapic.set_logging io true;
  Hw.Ioapic.write io ~line:1 ~vector:0x10 ~dest_cpu:0 ~masked:false;
  Hw.Ioapic.write io ~line:1 ~vector:0x20 ~dest_cpu:0 ~masked:false;
  Hw.Ioapic.reset_to_power_on io;
  Hw.Ioapic.replay_log io;
  let v, _, _ = Hw.Ioapic.read io ~line:1 in
  checki "latest write wins" 0x20 v

(* ------------------------- Cpu / Machine ---------------------------- *)

let test_cpu_discard_stack () =
  let c = Hw.Cpu.create 0 in
  c.Hw.Cpu.hv_stack_depth <- 3;
  c.Hw.Cpu.in_hypervisor <- true;
  Hw.Cpu.discard_hypervisor_stack c;
  checki "depth reset" 0 c.Hw.Cpu.hv_stack_depth;
  checkb "out of hypervisor" false c.Hw.Cpu.in_hypervisor

let test_cpu_cycle_accounting () =
  let c = Hw.Cpu.create 0 in
  Hw.Cpu.charge_cycles c 100;
  Hw.Cpu.charge_cycles c 50;
  checki "cycles accumulate" 150 c.Hw.Cpu.unhalted_cycles

let test_machine_geometry () =
  let clock = Sim.Clock.create () in
  let m = Hw.Machine.create clock in
  checki "8 CPUs" 8 (Hw.Machine.num_cpus m);
  checki "2Mi frames for 8GB" 2_097_152 (Hw.Machine.num_frames m)

let test_machine_campaign_geometry () =
  let clock = Sim.Clock.create () in
  let m = Hw.Machine.create ~config:Hw.Machine.campaign_config clock in
  checki "64Ki frames for 256MB" 65_536 (Hw.Machine.num_frames m)

let test_machine_tsc () =
  let clock = Sim.Clock.create () in
  let m = Hw.Machine.create clock in
  Sim.Clock.advance_by clock 1234;
  checki "tsc follows clock" 1234 (Hw.Machine.read_tsc m)

let test_machine_reset_for_reboot () =
  let clock = Sim.Clock.create () in
  let m = Hw.Machine.create clock in
  Hw.Ioapic.write m.Hw.Machine.ioapic ~line:1 ~vector:0x31 ~dest_cpu:0 ~masked:false;
  (Hw.Machine.cpu m 0).Hw.Cpu.apic |> fun a -> Hw.Apic.program_timer a ~deadline:10;
  Hw.Machine.reset_for_reboot m;
  checkb "tsc uncalibrated" false m.Hw.Machine.tsc_calibrated;
  checkb "ioapic routing lost" false (Hw.Ioapic.routing_valid m.Hw.Machine.ioapic);
  checkb "apic disarmed" false
    (Hw.Apic.timer_armed (Hw.Machine.cpu m 0).Hw.Cpu.apic);
  Hw.Machine.iter_cpus m (fun c ->
      checkb "halted" true (c.Hw.Cpu.state = Hw.Cpu.Halted))

let () =
  Alcotest.run "hw"
    [
      ( "regs",
        [
          Alcotest.test_case "get/set" `Quick test_regs_get_set;
          Alcotest.test_case "flip bit" `Quick test_regs_flip_bit;
          Alcotest.test_case "copy/restore" `Quick test_regs_copy_restore;
          Alcotest.test_case "injectable set" `Quick test_regs_injectable_excludes_fsgs;
        ] );
      ( "apic",
        [
          Alcotest.test_case "one-shot timer" `Quick test_apic_oneshot;
          Alcotest.test_case "interrupt lifecycle" `Quick test_apic_interrupt_lifecycle;
          Alcotest.test_case "ack all" `Quick test_apic_ack_all;
          Alcotest.test_case "ipi" `Quick test_apic_ipi;
          Alcotest.test_case "no duplicate vectors" `Quick test_apic_duplicate_vector;
        ] );
      ( "ioapic",
        [
          Alcotest.test_case "write/read" `Quick test_ioapic_write_read;
          Alcotest.test_case "reset loses routing" `Quick test_ioapic_reset_loses_routing;
          Alcotest.test_case "log replay" `Quick test_ioapic_log_replay;
          Alcotest.test_case "no log, no replay" `Quick test_ioapic_no_log_no_replay;
          Alcotest.test_case "replay order" `Quick test_ioapic_replay_order;
        ] );
      ( "cpu_machine",
        [
          Alcotest.test_case "discard stack" `Quick test_cpu_discard_stack;
          Alcotest.test_case "cycle accounting" `Quick test_cpu_cycle_accounting;
          Alcotest.test_case "default geometry" `Quick test_machine_geometry;
          Alcotest.test_case "campaign geometry" `Quick test_machine_campaign_geometry;
          Alcotest.test_case "tsc" `Quick test_machine_tsc;
          Alcotest.test_case "reset for reboot" `Quick test_machine_reset_for_reboot;
        ] );
    ]
