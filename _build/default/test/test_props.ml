(* Property-based tests (QCheck) on the core data structures and the
   recovery invariants. *)

let seeded_rng i = Sim.Rng.create (Int64.of_int i)

(* ------------------------- Timer heap ------------------------------- *)

(* Popping a timer heap built from any deadline list yields the
   deadlines in sorted order. *)
let prop_timer_heap_sorts =
  QCheck.Test.make ~name:"timer_heap pops sorted"
    QCheck.(list (int_bound 1_000_000))
    (fun deadlines ->
      let th = Hyper.Timer_heap.create () in
      List.iter
        (fun d ->
          ignore (Hyper.Timer_heap.add th ~deadline:d Hyper.Timer_heap.Generic_oneshot))
        deadlines;
      let rec drain acc =
        match Hyper.Timer_heap.pop th with
        | Some e -> drain (e.Hyper.Timer_heap.deadline :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare deadlines)

(* The heap property holds after any interleaving of adds and pops. *)
let prop_timer_heap_property =
  QCheck.Test.make ~name:"timer_heap invariant under ops"
    QCheck.(list (pair bool (int_bound 1_000_000)))
    (fun ops ->
      let th = Hyper.Timer_heap.create () in
      List.iter
        (fun (pop, d) ->
          if pop then ignore (Hyper.Timer_heap.pop th)
          else ignore (Hyper.Timer_heap.add th ~deadline:d Hyper.Timer_heap.Generic_oneshot))
        ops;
      Hyper.Timer_heap.heap_property_holds th)

(* Reactivation restores every recurring event, regardless of which were
   lost. *)
let prop_timer_reactivate_complete =
  QCheck.Test.make ~name:"reactivate_recurring leaves none missing"
    QCheck.(pair (int_range 1 20) (list bool))
    (fun (n, losses) ->
      let th = Hyper.Timer_heap.create () in
      let events =
        List.init n (fun i ->
            Hyper.Timer_heap.add th ~deadline:(10 * (i + 1)) ~period:100
              Hyper.Timer_heap.Time_sync)
      in
      (* Lose a subset: pop them without requeueing. *)
      List.iteri
        (fun i lose ->
          if lose && i < n then begin
            let e = List.nth events i in
            if e.Hyper.Timer_heap.queued then begin
              (* pop until we take this one out, then push back others *)
              let popped = ref [] in
              let rec hunt () =
                match Hyper.Timer_heap.pop th with
                | Some e' when e' == e -> ()
                | Some e' ->
                  popped := e' :: !popped;
                  hunt ()
                | None -> ()
              in
              hunt ();
              List.iter
                (fun e' -> Hyper.Timer_heap.requeue th e' ~now:e'.Hyper.Timer_heap.deadline)
                !popped
            end
          end)
        losses;
      ignore (Hyper.Timer_heap.reactivate_recurring th ~now:0);
      Hyper.Timer_heap.missing_recurring th = [])

(* ------------------------- Event queue ------------------------------ *)

let prop_event_queue_sorts =
  QCheck.Test.make ~name:"event_queue pops time-ordered"
    QCheck.(list (int_bound 1_000_000))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> ignore (Sim.Event_queue.push q ~time:t t)) times;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

(* ------------------------- Pfn scan --------------------------------- *)

(* After scan_and_fix, every descriptor is consistent, for any pattern of
   validation-bit / use-counter corruption. *)
let prop_pfn_scan_restores_consistency =
  QCheck.Test.make ~name:"pfn scan_and_fix restores full consistency"
    QCheck.(list (pair (int_bound 31) (int_range (-3) 3)))
    (fun corruptions ->
      let t = Hyper.Pfn.create ~frames:32 in
      (* Allocate some frames to mix free and in-use descriptors. *)
      for i = 0 to 9 do
        ignore
          (Hyper.Pfn.alloc_frame t ~owner:1
             ~ptype:(if i mod 2 = 0 then Hyper.Pfn.Writable else Hyper.Pfn.Page_table))
      done;
      List.iter
        (fun (idx, delta) ->
          let d = Hyper.Pfn.get t idx in
          if delta = 0 then d.Hyper.Pfn.validated <- not d.Hyper.Pfn.validated
          else d.Hyper.Pfn.use_count <- d.Hyper.Pfn.use_count + delta)
        corruptions;
      ignore (Hyper.Pfn.scan_and_fix t);
      Hyper.Pfn.count_inconsistent t = 0)

(* ------------------------- Locks ------------------------------------ *)

(* unlock_all releases exactly the held locks and leaves the segment
   fully released, for any subset held. *)
let prop_static_segment_unlock_all =
  QCheck.Test.make ~name:"segment unlock_all releases exactly the held locks"
    QCheck.(list bool)
    (fun held_pattern ->
      let seg = Hyper.Spinlock.Segment.create () in
      let held = ref 0 in
      List.iteri
        (fun i h ->
          let l =
            Hyper.Spinlock.create ~name:(string_of_int i)
              ~location:Hyper.Spinlock.Static
          in
          Hyper.Spinlock.Segment.register seg l;
          if h then begin
            Hyper.Spinlock.acquire l ~cpu:(i mod 8);
            incr held
          end)
        held_pattern;
      let released = Hyper.Spinlock.Segment.unlock_all seg in
      released = !held && not (Hyper.Spinlock.Segment.any_held seg))

(* ------------------------- Journal ---------------------------------- *)

(* undo_all exactly inverts any sequence of journaled counter deltas. *)
let prop_journal_undo_inverts =
  QCheck.Test.make ~name:"journal undo_all inverts counter deltas"
    QCheck.(list (int_range (-10) 10))
    (fun deltas ->
      let j = Hyper.Journal.create () in
      Hyper.Journal.set_enabled j true;
      let x = ref 100 in
      List.iter
        (fun d ->
          Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, d));
          x := !x + d)
        deltas;
      Hyper.Journal.undo_all j;
      !x = 100)

(* ------------------------- Scheduler -------------------------------- *)

(* fix_from_percpu makes the metadata consistent for any scramble of the
   redundant per-vCPU records. *)
let prop_sched_fix_restores_consistency =
  QCheck.Test.make ~name:"sched fix_from_percpu restores consistency"
    QCheck.(list (triple (int_bound 20) (int_bound 2) (int_bound 8)))
    (fun scrambles ->
      let clock = Sim.Clock.create () in
      let hv =
        Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
          ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock
      in
      let vcpus = Array.of_list (Hyper.Hypervisor.all_vcpus hv) in
      List.iter
        (fun (vi, field, value) ->
          let v = vcpus.(vi mod Array.length vcpus) in
          match field with
          | 0 -> v.Hyper.Domain.is_current <- not v.Hyper.Domain.is_current
          | 1 -> v.Hyper.Domain.curr_slot <- (value mod 8) - 1
          | _ ->
            v.Hyper.Domain.runstate <-
              (if value mod 2 = 0 then Hyper.Domain.Running else Hyper.Domain.Runnable))
        scrambles;
      ignore
        (Hyper.Sched.fix_from_percpu hv.Hyper.Hypervisor.sched
           (Hyper.Hypervisor.all_vcpus hv));
      Hyper.Sched.audit hv.Hyper.Hypervisor.sched (Hyper.Hypervisor.all_vcpus hv))

(* ------------------------- Rng -------------------------------------- *)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds"
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let r = seeded_rng seed in
      let v = Sim.Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_reproducible =
  QCheck.Test.make ~name:"rng streams reproducible" QCheck.small_int (fun seed ->
      let a = seeded_rng seed and b = seeded_rng seed in
      List.init 20 (fun _ -> Sim.Rng.int64 a)
      = List.init 20 (fun _ -> Sim.Rng.int64 b))

(* ------------------------- Recovery invariant ----------------------- *)

(* Full-enhancement microreset always leaves: zero IRQ counts, no held
   locks, consistent scheduler metadata, armed APICs -- no matter which
   activities were abandoned at which steps. *)
let prop_microreset_postconditions =
  QCheck.Test.make ~name:"microreset postconditions for any abandonment" ~count:60
    QCheck.(pair small_int (list (pair (int_bound 4) (int_bound 12))))
    (fun (seed, abandonments) ->
      let clock = Sim.Clock.create () in
      let hv =
        Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
          ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock
      in
      let rng = seeded_rng seed in
      List.iter
        (fun (which, stop_at) ->
          let activity =
            match which with
            | 0 -> Hyper.Hypervisor.Timer_tick (stop_at mod 3)
            | 1 -> Hyper.Hypervisor.Context_switch (stop_at mod 3)
            | 2 ->
              Hyper.Hypervisor.Hypercall
                { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 1 }
            | 3 ->
              Hyper.Hypervisor.Hypercall
                { domid = 2; vid = 0; kind = Hyper.Hypercalls.Grant_table_op 2 }
            | _ -> Hyper.Hypervisor.Device_interrupt { line = 1; target_dom = 1 }
          in
          try Hyper.Hypervisor.execute_partial hv rng activity ~stop_at
          with Hyper.Crash.Hypervisor_crash _ -> ())
        abandonments;
      Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
      ignore
        (Recovery.Microreset.recover hv ~enh:Recovery.Enhancement.full_set
           ~detected_on:0);
      let report = Hyper.Hypervisor.audit hv in
      report.Hyper.Hypervisor.irq_counts_nonzero = 0
      && report.Hyper.Hypervisor.static_locks_held = 0
      && (not report.Hyper.Hypervisor.heap_locks_held)
      && report.Hyper.Hypervisor.sched_consistent
      && report.Hyper.Hypervisor.apics_unarmed = 0
      && report.Hyper.Hypervisor.recurring_missing = 0
      && report.Hyper.Hypervisor.pfn_inconsistent = 0)

(* Run determinism: identical configs and seeds give identical outcomes. *)
let prop_run_deterministic =
  QCheck.Test.make ~name:"fault-injection runs deterministic" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg =
        {
          Inject.Run.default_config with
          Inject.Run.seed = Int64.of_int seed;
          fault = Inject.Fault.Register;
        }
      in
      let a = Inject.Run.run cfg and b = Inject.Run.run cfg in
      match (a, b) with
      | Inject.Run.Non_manifested, Inject.Run.Non_manifested
      | Inject.Run.Silent_corruption, Inject.Run.Silent_corruption ->
        true
      | Inject.Run.Detected da, Inject.Run.Detected db ->
        da.Inject.Run.success = db.Inject.Run.success
        && da.Inject.Run.no_vmf = db.Inject.Run.no_vmf
        && da.Inject.Run.recovery_latency = db.Inject.Run.recovery_latency
      | _ -> false)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "data_structures",
        List.map to_alcotest
          [
            prop_timer_heap_sorts;
            prop_timer_heap_property;
            prop_timer_reactivate_complete;
            prop_event_queue_sorts;
            prop_pfn_scan_restores_consistency;
            prop_static_segment_unlock_all;
            prop_journal_undo_inverts;
            prop_sched_fix_restores_consistency;
            prop_rng_int_in_bounds;
            prop_rng_reproducible;
          ] );
      ( "recovery",
        List.map to_alcotest [ prop_microreset_postconditions; prop_run_deterministic ]
      );
    ]
