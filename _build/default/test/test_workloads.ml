(* Tests for the benchmark workload models. *)

let checkb = Alcotest.check Alcotest.bool

let test_menus_normalised () =
  List.iter
    (fun kind ->
      let total =
        List.fold_left (fun acc (w, _) -> acc +. w) 0.0 (Workloads.Workload.hypercall_menu kind)
      in
      checkb (Workloads.Workload.kind_name kind) true (abs_float (total -. 1.0) < 1e-9))
    [ Workloads.Workload.Blkbench; Workloads.Workload.Unixbench; Workloads.Workload.Netbench ]

let test_blkbench_grant_heavy () =
  (* BlkBench is dominated by grant-table I/O. *)
  let weight_of tag kind =
    List.fold_left
      (fun acc (w, t) -> if t = tag then acc +. w else acc)
      0.0
      (Workloads.Workload.hypercall_menu kind)
  in
  checkb "blkbench grants > unixbench grants" true
    (weight_of `Grant Workloads.Workload.Blkbench
     > weight_of `Grant Workloads.Workload.Unixbench)

let test_unixbench_vm_heavy () =
  let weight_of tag kind =
    List.fold_left
      (fun acc (w, t) -> if t = tag then acc +. w else acc)
      0.0
      (Workloads.Workload.hypercall_menu kind)
  in
  checkb "unixbench mmu > netbench mmu" true
    (weight_of `Mmu Workloads.Workload.Unixbench
     > weight_of `Mmu Workloads.Workload.Netbench)

let test_sample_activity_targets_own_domain () =
  let rng = Sim.Rng.create 1L in
  let b = Workloads.Workload.create Workloads.Workload.Unixbench ~domid:5 in
  for _ = 1 to 100 do
    match Workloads.Workload.sample_activity rng b with
    | Hyper.Hypervisor.Hypercall { domid; _ } | Hyper.Hypervisor.Syscall_forward { domid; _ }
      ->
      Alcotest.check Alcotest.int "own domain" 5 domid
    | _ -> Alcotest.fail "guest entries only"
  done

let test_syscall_share_respected () =
  let rng = Sim.Rng.create 2L in
  let b = Workloads.Workload.create Workloads.Workload.Unixbench ~domid:1 in
  let syscalls = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    match Workloads.Workload.sample_activity rng b with
    | Hyper.Hypervisor.Syscall_forward _ -> incr syscalls
    | _ -> ()
  done;
  let p = float_of_int !syscalls /. float_of_int n in
  let expected = Workloads.Workload.syscall_share Workloads.Workload.Unixbench in
  checkb "syscall share matches" true (abs_float (p -. expected) < 0.03)

let test_device_shares () =
  let blk_b, net_b = Workloads.Workload.device_share Workloads.Workload.Blkbench in
  let blk_n, net_n = Workloads.Workload.device_share Workloads.Workload.Netbench in
  checkb "blkbench block-heavy" true (blk_b > net_b);
  checkb "netbench net-heavy" true (net_n > blk_n)

let test_system_mix_samples_valid_activities () =
  let rng = Sim.Rng.create 3L in
  let benchmarks =
    [
      Workloads.Workload.create Workloads.Workload.Unixbench ~domid:1;
      Workloads.Workload.create Workloads.Workload.Netbench ~domid:2;
    ]
  in
  let mix =
    Workloads.System_mix.create ~benchmarks ~active_cpus:[ 0; 1; 2 ]
      ~blk_dom:None ~net_dom:(Some 2)
  in
  let seen_timer = ref false and seen_guest = ref false and seen_ctx = ref false in
  for _ = 1 to 500 do
    match Workloads.System_mix.sample rng mix with
    | Hyper.Hypervisor.Timer_tick c ->
      seen_timer := true;
      checkb "tick on active cpu" true (List.mem c [ 0; 1; 2 ])
    | Hyper.Hypervisor.Hypercall _ | Hyper.Hypervisor.Syscall_forward _ ->
      seen_guest := true
    | Hyper.Hypervisor.Context_switch c ->
      seen_ctx := true;
      checkb "switch on active cpu" true (List.mem c [ 0; 1; 2 ])
    | Hyper.Hypervisor.Device_interrupt { target_dom; _ } ->
      Alcotest.check Alcotest.int "device targets netbench dom" 2 target_dom
    | Hyper.Hypervisor.Idle_poll _ -> ()
  done;
  checkb "timer sampled" true !seen_timer;
  checkb "guest sampled" true !seen_guest;
  checkb "ctx sampled" true !seen_ctx

let test_system_mix_no_devices () =
  let rng = Sim.Rng.create 4L in
  let mix =
    Workloads.System_mix.create ~benchmarks:[] ~active_cpus:[ 0 ] ~blk_dom:None
      ~net_dom:None
  in
  (* With no device targets, sampling must never produce a device
     interrupt (falls back to idle). *)
  for _ = 1 to 300 do
    match Workloads.System_mix.sample rng mix with
    | Hyper.Hypervisor.Device_interrupt _ -> Alcotest.fail "no device targets exist"
    | _ -> ()
  done

let test_mix_weights_normalised () =
  let total =
    List.fold_left (fun acc (w, _) -> acc +. w) 0.0 Workloads.System_mix.category_weights
  in
  checkb "category weights sum to 1" true (abs_float (total -. 1.0) < 1e-9)

let () =
  Alcotest.run "workloads"
    [
      ( "menus",
        [
          Alcotest.test_case "normalised" `Quick test_menus_normalised;
          Alcotest.test_case "blkbench grant-heavy" `Quick test_blkbench_grant_heavy;
          Alcotest.test_case "unixbench vm-heavy" `Quick test_unixbench_vm_heavy;
          Alcotest.test_case "device shares" `Quick test_device_shares;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "targets own domain" `Quick
            test_sample_activity_targets_own_domain;
          Alcotest.test_case "syscall share" `Quick test_syscall_share_respected;
          Alcotest.test_case "system mix validity" `Quick
            test_system_mix_samples_valid_activities;
          Alcotest.test_case "no devices" `Quick test_system_mix_no_devices;
          Alcotest.test_case "mix weights" `Quick test_mix_weights_normalised;
        ] );
    ]
