(** ReHype: microreboot-based component-level recovery (Section III-B).

    Boots a new hypervisor instance — hardware re-initialisation, fresh
    memory state — then re-integrates preserved state from the failed
    instance (non-free heap pages, page tables, domain structures). The
    reboot gives "free" repairs microreset needs explicit enhancements
    for, at a ~713 ms recovery latency (Table II) and extra
    normal-operation logging (IO-APIC writes, boot-line options). *)

type result = {
  breakdown : Hyper.Latency_model.breakdown;
  heap_locks_released : int;
  pfn_fixed : int;
  ioapic_restored : bool; (* routing replayed from the write log *)
}

val recover :
  Hyper.Hypervisor.t -> enh:Enhancement.set -> detected_on:int -> result
(** Raises [Hyper.Crash.Hypervisor_crash] if the reboot cannot complete
    (recovery handler corrupted, boot-line options not logged...). *)

val table2_breakdown : result -> Hyper.Latency_model.breakdown
