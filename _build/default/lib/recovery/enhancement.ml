(** Catalogue of recovery enhancements.

    The basic microreset (discard all execution threads) never succeeds
    on its own; the enhancements below resolve the component-level
    recovery challenges (Section II). They are listed in the order of
    the paper's measurement-driven incremental development (Table I). *)

type t =
  (* NiLiHype-specific (Section V-A) *)
  | Clear_irq_count
  | Sched_consistency
  | Reprogram_apic_timer
  | Unlock_static_locks
  | Reactivate_recurring_timers
  (* The "ReHype mechanisms" reused by NiLiHype (Sections III-B, IV) *)
  | Release_heap_locks
  | Hypercall_retry
  | Syscall_retry
  | Ack_interrupts
  | Pfn_consistency_scan
  | Nonidempotent_undo
  | Restore_fs_gs

let name = function
  | Clear_irq_count -> "clear_irq_count"
  | Sched_consistency -> "sched_consistency"
  | Reprogram_apic_timer -> "reprogram_apic_timer"
  | Unlock_static_locks -> "unlock_static_locks"
  | Reactivate_recurring_timers -> "reactivate_recurring_timers"
  | Release_heap_locks -> "release_heap_locks"
  | Hypercall_retry -> "hypercall_retry"
  | Syscall_retry -> "syscall_retry"
  | Ack_interrupts -> "ack_interrupts"
  | Pfn_consistency_scan -> "pfn_consistency_scan"
  | Nonidempotent_undo -> "nonidempotent_undo"
  | Restore_fs_gs -> "restore_fs_gs"

(* The mechanisms NiLiHype inherits from ReHype ("Enhanced with ReHype
   mechanisms" row of Table I). *)
let rehype_mechanisms =
  [
    Release_heap_locks;
    Hypercall_retry;
    Syscall_retry;
    Ack_interrupts;
    Pfn_consistency_scan;
    Nonidempotent_undo;
    Restore_fs_gs;
  ]

let all =
  [
    Clear_irq_count;
    Sched_consistency;
    Reprogram_apic_timer;
    Unlock_static_locks;
    Reactivate_recurring_timers;
  ]
  @ rehype_mechanisms

let nilihype_default = all

type set = { enabled : t list }

let set_of_list enabled = { enabled }
let full_set = set_of_list all
let mem set e = List.mem e set.enabled

(* Table I: the incremental-development ladder. Each row pairs a label
   with the cumulative enhancement set and the normal-operation config it
   requires (retry mitigation needs the logging to have been on). *)
let table1_ladder : (string * Hyper.Config.t * set) list =
  let open Hyper.Config in
  let row label config enabled = (label, config, set_of_list enabled) in
  [
    row "Basic" stock [];
    row "+ Clear IRQ count" stock [ Clear_irq_count ];
    row "+ Enhanced with ReHype mechanisms" nilihype
      (Clear_irq_count :: rehype_mechanisms);
    row "+ Ensure consistency within scheduling metadata" nilihype
      (Clear_irq_count :: Sched_consistency :: rehype_mechanisms);
    row "+ Reprogram hardware timer" nilihype
      (Clear_irq_count :: Sched_consistency :: Reprogram_apic_timer
       :: rehype_mechanisms);
    row "+ Unlock static locks" nilihype
      (Clear_irq_count :: Sched_consistency :: Reprogram_apic_timer
       :: Unlock_static_locks :: rehype_mechanisms);
    row "+ Reactivate recurring timer events" nilihype
      (Clear_irq_count :: Sched_consistency :: Reprogram_apic_timer
       :: Unlock_static_locks :: Reactivate_recurring_timers
       :: rehype_mechanisms);
  ]
