lib/recovery/engine.mli: Enhancement Hyper Sim
