lib/recovery/microreboot.mli: Enhancement Hyper
