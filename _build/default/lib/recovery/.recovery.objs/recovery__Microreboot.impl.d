lib/recovery/microreboot.ml: Array Common Config Crash Domain Enhancement Heap Hw Hyper Hypervisor Latency_model List Percpu Pfn Sched Sim Spinlock Timer_heap
