lib/recovery/engine.ml: Hyper Microreboot Microreset Sim
