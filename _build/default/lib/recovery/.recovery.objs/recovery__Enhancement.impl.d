lib/recovery/enhancement.ml: Hyper List
