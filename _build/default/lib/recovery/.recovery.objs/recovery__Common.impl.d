lib/recovery/common.ml: Config Crash Domain Enhancement Heap Hw Hyper Hypercalls Hypervisor Latency_model List Sim Timer_heap
