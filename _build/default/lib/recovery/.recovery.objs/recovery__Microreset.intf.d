lib/recovery/microreset.mli: Enhancement Hyper
