lib/recovery/microreset.ml: Array Common Enhancement Hw Hyper Hypervisor Latency_model List Percpu Pfn Sched Sim Spinlock Timer_heap
