(** Unified interface over the two component-level recovery mechanisms. *)

type mechanism =
  | Nilihype (* microreset: reset to a quiescent state, no reboot *)
  | Rehype (* microreboot: boot a new instance, re-integrate state *)

let mechanism_name = function Nilihype -> "NiLiHype" | Rehype -> "ReHype"

(* The normal-operation configuration each mechanism requires. *)
let config = function
  | Nilihype -> Hyper.Config.nilihype
  | Rehype -> Hyper.Config.rehype

type outcome = {
  mechanism : mechanism;
  latency : Sim.Time.ns;
  breakdown : Hyper.Latency_model.breakdown;
}

(* Run recovery; raises [Hyper.Crash.Hypervisor_crash] if the recovery
   process itself fails. *)
let recover mechanism (hv : Hyper.Hypervisor.t) ~enh ~detected_on =
  let start = Sim.Clock.now hv.Hyper.Hypervisor.clock in
  let breakdown =
    match mechanism with
    | Nilihype ->
      let r = Microreset.recover hv ~enh ~detected_on in
      r.Microreset.breakdown
    | Rehype ->
      let r = Microreboot.recover hv ~enh ~detected_on in
      r.Microreboot.breakdown
  in
  {
    mechanism;
    latency = Sim.Clock.now hv.Hyper.Hypervisor.clock - start;
    breakdown;
  }
