lib/hw/apic.ml: List Sim
