lib/hw/machine.ml: Apic Array Cpu Ioapic Sim
