lib/hw/cpu.ml: Apic Regs
