lib/hw/regs.ml: Array Format Int64
