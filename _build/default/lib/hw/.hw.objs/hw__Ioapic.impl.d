lib/hw/ioapic.ml: Array List
