(** The whole-system distribution of hypervisor activity: guest-driven
    entries from every benchmark plus the hypervisor's own timer ticks,
    device interrupts, context switches and idle polling. A random
    fault injected "while the CPU is executing target hypervisor code"
    lands in an activity drawn from this mix. *)

type t = {
  benchmarks : Workload.t list;
  active_cpus : int list; (* CPUs with a pinned vCPU (incl. PrivVM's) *)
  blk_dom : int option; (* domain receiving block-device completions *)
  net_dom : int option; (* domain receiving network packets *)
}

let create ~benchmarks ~active_cpus ~blk_dom ~net_dom =
  { benchmarks; active_cpus; blk_dom; net_dom }

(* Category weights: guest entries dominate hypervisor execution time,
   followed by timer interrupts, device interrupts and scheduling. *)
let category_weights =
  [
    (0.38, `Guest_entry);
    (0.16, `Timer_tick);
    (0.08, `Device_interrupt);
    (0.31, `Context_switch);
    (0.07, `Idle);
  ]

let sample rng t : Hyper.Hypervisor.activity =
  let random_cpu () =
    match t.active_cpus with
    | [] -> 0
    | l -> List.nth l (Sim.Rng.int rng (List.length l))
  in
  match Sim.Rng.choose_weighted rng category_weights with
  | `Guest_entry ->
    (match t.benchmarks with
    | [] -> Hyper.Hypervisor.Idle_poll (random_cpu ())
    | l ->
      let b = List.nth l (Sim.Rng.int rng (List.length l)) in
      Workload.sample_activity rng b)
  | `Timer_tick -> Hyper.Hypervisor.Timer_tick (random_cpu ())
  | `Device_interrupt ->
    (* Line 1 = block backend, line 2 = network backend. Device pressure
       follows the benchmarks that are running. *)
    let blk_w =
      List.fold_left
        (fun acc (b : Workload.t) -> acc +. fst (Workload.device_share b.Workload.kind))
        0.01 t.benchmarks
    and net_w =
      List.fold_left
        (fun acc (b : Workload.t) -> acc +. snd (Workload.device_share b.Workload.kind))
        0.01 t.benchmarks
    in
    let pick_blk = Sim.Rng.float rng (blk_w +. net_w) < blk_w in
    (match (pick_blk, t.blk_dom, t.net_dom) with
    | true, Some d, _ -> Hyper.Hypervisor.Device_interrupt { line = 1; target_dom = d }
    | false, _, Some d -> Hyper.Hypervisor.Device_interrupt { line = 2; target_dom = d }
    | true, None, Some d -> Hyper.Hypervisor.Device_interrupt { line = 2; target_dom = d }
    | false, Some d, None -> Hyper.Hypervisor.Device_interrupt { line = 1; target_dom = d }
    | _, None, None -> Hyper.Hypervisor.Idle_poll (random_cpu ()))
  | `Context_switch -> Hyper.Hypervisor.Context_switch (random_cpu ())
  | `Idle -> Hyper.Hypervisor.Idle_poll (random_cpu ())
