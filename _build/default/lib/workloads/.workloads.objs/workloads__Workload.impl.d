lib/workloads/workload.ml: Hyper Sim
