lib/workloads/system_mix.ml: Hyper List Sim Workload
