lib/inject/run.ml: Array Config Corrupt Crash Domain Fault Format Hw Hyper Hypercalls Hypervisor List Option Percpu Printf Profile Recovery Sim Workloads
