lib/inject/campaign.ml: Format Int64 List Run Sim
