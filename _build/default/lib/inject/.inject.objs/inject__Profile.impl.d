lib/inject/profile.ml: Corrupt Fault Sim
