lib/inject/overhead.ml: Config Cycle_account Domain Format Hyper Hypervisor Run Workloads
