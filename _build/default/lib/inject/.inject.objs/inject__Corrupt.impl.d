lib/inject/corrupt.ml: Array Domain Heap Hyper Hypervisor List Pfn Sim Timer_heap
