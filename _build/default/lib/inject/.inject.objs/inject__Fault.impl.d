lib/inject/fault.ml:
