(** Fault types injected by the Gigan-equivalent injector (Section VI-C).

    - [Failstop]: the program counter is set to 0; execution stops
      immediately at the injection point (always detected).
    - [Register]: a random bit flip in a random register among the 16
      GPRs, stack pointer, flags and program counter; models transient
      datapath faults.
    - [Code]: a random bit flip in the instruction bytes at the current
      program counter; models instruction fetch/decode faults. The
      injector repairs the corrupted code once an error is detected, so
      the effect is transient -- but detection latency is longer, so
      errors propagate further before detection. *)

type t = Failstop | Register | Code

let name = function
  | Failstop -> "Failstop"
  | Register -> "Register"
  | Code -> "Code"

let all = [ Failstop; Register; Code ]

(* Campaign sizes from Section VII-A, chosen there for +/-2% CIs. *)
let paper_campaign_size = function
  | Failstop -> 1000
  | Register -> 5000
  | Code -> 2000
