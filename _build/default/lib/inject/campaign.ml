(** Injection campaigns: many runs of a configuration, aggregated the way
    Section VII-A reports them. *)

type totals = {
  mutable runs : int;
  mutable non_manifested : int;
  mutable sdc : int;
  mutable detected : int;
  mutable successes : int;
  mutable no_vmf : int;
  mutable recovered : int;
  mutable latency_sum : Sim.Time.ns;
  mutable latency_samples : int;
  mutable failure_notes : (string * int) list;
}

let make_totals () =
  {
    runs = 0;
    non_manifested = 0;
    sdc = 0;
    detected = 0;
    successes = 0;
    no_vmf = 0;
    recovered = 0;
    latency_sum = 0;
    latency_samples = 0;
    failure_notes = [];
  }

let note t key =
  let count = try List.assoc key t.failure_notes with Not_found -> 0 in
  t.failure_notes <- (key, count + 1) :: List.remove_assoc key t.failure_notes

let add_outcome t (o : Run.outcome) =
  t.runs <- t.runs + 1;
  match o with
  | Run.Non_manifested -> t.non_manifested <- t.non_manifested + 1
  | Run.Silent_corruption -> t.sdc <- t.sdc + 1
  | Run.Detected d ->
    t.detected <- t.detected + 1;
    if d.Run.success then t.successes <- t.successes + 1;
    if d.Run.no_vmf then t.no_vmf <- t.no_vmf + 1;
    if d.Run.recovered then t.recovered <- t.recovered + 1;
    (match d.Run.failure_reason with
    | Some why -> note t why
    | None -> ());
    if d.Run.recovery_latency > 0 then begin
      t.latency_sum <- t.latency_sum + d.Run.recovery_latency;
      t.latency_samples <- t.latency_samples + 1
    end

type result = {
  config_label : string;
  totals : totals;
}

(* Run [n] injections of [cfg], varying only the seed. *)
let run ?(label = "") ?(base_seed = 10_000L) ~n (cfg : Run.config) =
  let totals = make_totals () in
  for i = 0 to n - 1 do
    let seed = Int64.add base_seed (Int64.of_int i) in
    let outcome = Run.run { cfg with Run.seed } in
    add_outcome totals outcome
  done;
  { config_label = label; totals }

let success_rate r =
  Sim.Stats.proportion ~successes:r.totals.successes ~trials:(max 1 r.totals.detected)

let no_vmf_rate r =
  Sim.Stats.proportion ~successes:r.totals.no_vmf ~trials:(max 1 r.totals.detected)

let breakdown r =
  let n = float_of_int (max 1 r.totals.runs) in
  ( 100.0 *. float_of_int r.totals.non_manifested /. n,
    100.0 *. float_of_int r.totals.sdc /. n,
    100.0 *. float_of_int r.totals.detected /. n )

let mean_latency r =
  if r.totals.latency_samples = 0 then None
  else Some (r.totals.latency_sum / r.totals.latency_samples)

let pp fmt r =
  let nm, sdc, det = breakdown r in
  Format.fprintf fmt
    "%s: runs=%d outcomes: non-manifested %.1f%%, SDC %.1f%%, detected %.1f%% | \
     success %a, noVMF %a@."
    r.config_label r.totals.runs nm sdc det Sim.Stats.pp_proportion
    (success_rate r) Sim.Stats.pp_proportion (no_vmf_rate r)
