lib/sim/clock.ml: Printf Time
