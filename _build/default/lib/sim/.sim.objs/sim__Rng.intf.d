lib/sim/rng.mli:
