lib/sim/engine.ml: Clock Event_queue Rng
