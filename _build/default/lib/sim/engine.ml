(** Discrete-event simulation engine: a virtual clock plus an event queue
    of callbacks. The engine is single-threaded and deterministic. *)

type t = {
  clock : Clock.t;
  queue : (t -> unit) Event_queue.t;
  rng : Rng.t;
  mutable steps : int;
  mutable step_limit : int; (* safety valve against runaway simulations *)
}

type handle = (t -> unit) Event_queue.handle

exception Step_limit_exceeded

let create ?(seed = 42L) () =
  {
    clock = Clock.create ();
    queue = Event_queue.create ();
    rng = Rng.create seed;
    steps = 0;
    step_limit = 50_000_000;
  }

let now t = Clock.now t.clock
let rng t = t.rng
let clock t = t.clock

let schedule_at t ~time f =
  if time < now t then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule t ~delay f = schedule_at t ~time:(now t + delay) f
let cancel = Event_queue.cancel

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    Clock.advance_to t.clock time;
    t.steps <- t.steps + 1;
    if t.steps > t.step_limit then raise Step_limit_exceeded;
    f t;
    true

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= deadline -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if Clock.now t.clock < deadline then Clock.advance_to t.clock deadline

let run t =
  while step t do
    ()
  done

let pending t = Event_queue.length t.queue
