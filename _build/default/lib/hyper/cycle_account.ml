(** Unhalted-cycle accounting for hypervisor code.

    Mirrors the paper's measurement methodology (Section VII-C): a
    hardware performance counter counts cycles spent executing hypervisor
    code; the hypervisor processing overhead of NiLiHype is the percent
    increase of that count relative to stock Xen for the same workload. *)

type t = {
  mutable total : int; (* all cycles spent in hypervisor code *)
  mutable logging : int; (* subset spent in retry-mitigation logging *)
  mutable entries : int; (* number of hypervisor entries *)
}

let create () = { total = 0; logging = 0; entries = 0 }

let reset t =
  t.total <- 0;
  t.logging <- 0;
  t.entries <- 0

let charge t n = t.total <- t.total + n

let charge_logging t n =
  t.total <- t.total + n;
  t.logging <- t.logging + n

let note_entry t = t.entries <- t.entries + 1

let total t = t.total
let logging t = t.logging

(* Percent increase of [instrumented] over [baseline]. *)
let overhead_pct ~baseline ~instrumented =
  if baseline = 0 then 0.0
  else 100.0 *. float_of_int (instrumented - baseline) /. float_of_int baseline
