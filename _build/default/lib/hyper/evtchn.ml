(** Event channels: the paravirtual interrupt mechanism between the
    hypervisor, the PrivVM's driver backends and the AppVMs' frontends. *)

type chan = {
  port : int;
  mutable bound : bool;
  mutable pending : bool;
  mutable masked : bool;
}

type table = {
  mutable chans : chan array;
  lock : Spinlock.t; (* heap-resident per-domain lock *)
}

let create heap ~ports domid =
  let lock =
    Spinlock.create
      ~name:(Printf.sprintf "d%d_evtchn" domid)
      ~location:Spinlock.Heap
  in
  ignore (Heap.alloc heap (Heap.Lock lock));
  {
    chans =
      Array.init ports (fun port ->
          { port; bound = false; pending = false; masked = false });
    lock;
  }

let bind t ~port =
  let c = t.chans.(port) in
  Crash.hv_assert (not c.bound) "evtchn: double bind of port %d" port;
  c.bound <- true

let send t ~port =
  let c = t.chans.(port) in
  if c.bound && not c.masked then c.pending <- true

let consume_pending t =
  let any = ref false in
  Array.iter
    (fun c ->
      if c.pending then begin
        c.pending <- false;
        any := true
      end)
    t.chans;
  !any

let any_bound t = Array.exists (fun c -> c.bound) t.chans
