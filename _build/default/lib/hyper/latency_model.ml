(** Recovery-latency cost model.

    The paper measures recovery latency on bare hardware with 8 GB RAM
    and 8 CPUs (Tables II and III). Each recovery step charges simulated
    time; steps whose cost scales with machine size (page-frame scans,
    heap reconstruction, per-CPU bring-up) are expressed per-unit so that
    the model extrapolates, as Section VII-B discusses ("the latency ...
    is proportional to the size of the host memory"). Constants are
    calibrated to reproduce the paper's breakdowns at the reference
    geometry (2 Mi frames, 8 CPUs). *)

open Sim

(* Reference geometry: 8 GB / 4 KB pages = 2_097_152 frames; 8 CPUs. *)
let reference_frames = 2_097_152

(* --- Steps common to both mechanisms ------------------------------- *)

(* 21 ms / 2 Mi frames. *)
let pfn_scan_ns_per_frame = 10

let pfn_scan ~frames = frames * pfn_scan_ns_per_frame

(* --- NiLiHype (Table III) ------------------------------------------ *)

(* "Others: 1ms" -- interrupting the CPUs, discarding stacks, and the
   state-consistency enhancements. *)
let microreset_interrupt_cpus ~cpus = Time.us 20 * cpus
let microreset_enhancements = Time.us 700
let microreset_misc = Time.us 140

(* --- ReHype (Table II) --------------------------------------------- *)

let reboot_early_boot_cpu = Time.ms 12
let reboot_cpu_online_per_cpu = Time.us 21_430 (* 150ms / 7 secondary CPUs *)
let reboot_apic_ioapic_setup = Time.ms 200
let reboot_tsc_calibrate = Time.ms 50

let reboot_record_old_heap ~frames = frames * 10 (* 21ms @ 2Mi frames *)
let reboot_reinit_unpreserved_pfn ~frames = frames * 6 (* ~13ms *)
let reboot_recreate_heap ~frames = frames * 100 (* ~211ms *)

let reboot_smp_init = Time.ms 20
let reboot_relocate_modules = Time.ms 2
let reboot_others = Time.ms 13

(* A latency breakdown: ordered (step, duration) pairs. *)
type breakdown = { steps : (string * Time.ns) list }

let total b = List.fold_left (fun acc (_, d) -> acc + d) 0 b.steps

let pp fmt b =
  List.iter
    (fun (name, d) -> Format.fprintf fmt "  %-55s %a@." name Time.pp_ms d)
    b.steps;
  Format.fprintf fmt "  %-55s %a@." "Total" Time.pp_ms (total b)
