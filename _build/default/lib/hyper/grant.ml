(** Grant tables: page-sharing between domains, the mechanism behind
    paravirtual block and network I/O. Grant map/unmap operations take
    and drop page references -- non-idempotent, hence covered by the undo
    journal. *)

type entry = {
  slot : int;
  mutable in_use : bool;
  mutable frame : int; (* granted frame index, -1 if none *)
  mutable mapped_by : int; (* domid of the mapper, -1 if unmapped *)
}

type table = {
  entries : entry array;
  lock : Spinlock.t; (* heap-resident per-domain lock *)
}

let create heap ~slots domid =
  let lock =
    Spinlock.create ~name:(Printf.sprintf "d%d_grant" domid) ~location:Spinlock.Heap
  in
  ignore (Heap.alloc heap (Heap.Lock lock));
  {
    entries =
      Array.init slots (fun slot ->
          { slot; in_use = false; frame = -1; mapped_by = -1 });
    lock;
  }

let grant t ~slot ~frame =
  let e = t.entries.(slot) in
  e.in_use <- true;
  e.frame <- frame;
  e.mapped_by <- -1

let find_free t =
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then Crash.panic "grant table full"
    else if not t.entries.(i).in_use then t.entries.(i)
    else go (i + 1)
  in
  go 0

let map t ~slot ~by =
  let e = t.entries.(slot) in
  Crash.hv_assert e.in_use "grant map of unused slot %d" slot;
  Crash.hv_assert (e.mapped_by = -1) "grant slot %d already mapped" slot;
  e.mapped_by <- by

let unmap t ~slot =
  let e = t.entries.(slot) in
  if e.mapped_by = -1 then Crash.panic "grant slot %d: unmap when not mapped" slot;
  e.mapped_by <- -1

let release t ~slot =
  let e = t.entries.(slot) in
  e.in_use <- false;
  e.frame <- -1;
  e.mapped_by <- -1
