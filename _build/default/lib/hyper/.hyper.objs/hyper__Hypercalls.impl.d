lib/hyper/hypercalls.ml: Journal List Printf String
