lib/hyper/pfn.ml: Array Crash
