lib/hyper/timer_heap.ml: Array Crash List Sim
