lib/hyper/hypervisor.ml: Array Config Crash Cycle_account Domain Evtchn Format Fun Grant Hashtbl Heap Hw Hypercalls Journal List Percpu Pfn Printf Sched Sim Spinlock Timer_heap
