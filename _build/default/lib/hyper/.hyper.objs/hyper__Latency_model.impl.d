lib/hyper/latency_model.ml: Format List Sim Time
