lib/hyper/spinlock.ml: Crash List
