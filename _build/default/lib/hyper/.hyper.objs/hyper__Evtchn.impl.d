lib/hyper/evtchn.ml: Array Crash Heap Printf Spinlock
