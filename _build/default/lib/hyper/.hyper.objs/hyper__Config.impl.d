lib/hyper/config.ml:
