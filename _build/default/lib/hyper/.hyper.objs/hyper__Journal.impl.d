lib/hyper/journal.ml: List Pfn
