lib/hyper/cycle_account.ml:
