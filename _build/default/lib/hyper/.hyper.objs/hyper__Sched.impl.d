lib/hyper/sched.ml: Array Crash Domain Hashtbl List Percpu
