lib/hyper/crash.ml: Format Sim
