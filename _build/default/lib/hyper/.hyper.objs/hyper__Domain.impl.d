lib/hyper/domain.ml: Array Crash Evtchn Grant Heap Hw Hypercalls List Printf Spinlock
