lib/hyper/grant.ml: Array Crash Heap Printf Spinlock
