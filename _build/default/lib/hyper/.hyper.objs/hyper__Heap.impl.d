lib/hyper/heap.ml: Crash Hashtbl Spinlock
