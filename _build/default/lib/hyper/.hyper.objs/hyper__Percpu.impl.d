lib/hyper/percpu.ml: Crash Heap Printf Spinlock
