(** Domains (VMs) and virtual CPUs.

    The scheduling metadata deliberately stores "which vCPU is currently
    running on each CPU" redundantly -- in the per-CPU structures
    (authoritative, see [Percpu]) and in *two* places per vCPU
    ([is_current] and [curr_slot]) -- reproducing the inconsistency
    hazard the "Ensure consistency within scheduling metadata"
    enhancement resolves by rewriting the per-vCPU copies from the
    per-CPU ones. *)

type runstate = Running | Runnable | Blocked | Paused | Offline

type vcpu = {
  vid : int;
  domid : int;
  mutable processor : int; (* physical CPU this vCPU is pinned to *)
  mutable runstate : runstate;
  mutable is_current : bool; (* redundant copy #1 *)
  mutable curr_slot : int; (* redundant copy #2: CPU it believes it runs on, -1 = none *)
  guest_regs : Hw.Regs.t;
  mutable fsgs_valid : bool;
      (* guest FS/GS still intact? lost if recovery resumes the guest
         without having saved them on hypervisor entry *)
  mutable in_hypercall : Hypercalls.record option;
  mutable in_syscall_forward : bool;
  mutable retry_pending : bool; (* set up to re-issue hypercall on resume *)
  mutable syscall_retry_pending : bool;
  mutable lost_work : bool;
      (* an in-flight request was abandoned with no retry arranged: the
         guest blocks forever waiting for its completion *)
}

type t = {
  domid : int;
  privileged : bool; (* the PrivVM / Dom0 *)
  is_idle : bool; (* Xen's idle domain: one vCPU per physical CPU *)
  mutable vcpus : vcpu array;
  mutable alive : bool;
  mutable struct_ok : bool; (* domain struct payload integrity *)
  mutable guest_failed : bool; (* guest kernel/app observed a failure *)
  mutable guest_sdc : bool; (* guest produced silently corrupt output *)
  mutable owned_frames : int list;
  evtchn : Evtchn.table;
  grants : Grant.table;
  page_lock : Spinlock.t; (* heap-resident per-domain page_alloc lock *)
  mutable heap_objs : Heap.obj list;
}

let runstate_name = function
  | Running -> "running"
  | Runnable -> "runnable"
  | Blocked -> "blocked"
  | Paused -> "paused"
  | Offline -> "offline"

let make_vcpu ~domid ~vid ~processor =
  {
    vid;
    domid;
    processor;
    runstate = Runnable;
    is_current = false;
    curr_slot = -1;
    guest_regs = Hw.Regs.create ();
    fsgs_valid = true;
    in_hypercall = None;
    in_syscall_forward = false;
    retry_pending = false;
    syscall_retry_pending = false;
    lost_work = false;
  }

let create ?(is_idle = false) heap ~domid ~privileged ~vcpus:vcpu_pins =
  let page_lock =
    Spinlock.create
      ~name:(Printf.sprintf "d%d_page_alloc" domid)
      ~location:Spinlock.Heap
  in
  let lock_obj = Heap.alloc heap (Heap.Lock page_lock) in
  let data_obj = Heap.alloc heap ~size:8192 (Heap.Domain_data domid) in
  {
    domid;
    privileged;
    is_idle;
    vcpus =
      Array.of_list
        (List.mapi (fun vid processor -> make_vcpu ~domid ~vid ~processor) vcpu_pins);
    alive = true;
    struct_ok = true;
    guest_failed = false;
    guest_sdc = false;
    owned_frames = [];
    evtchn = Evtchn.create heap ~ports:64 domid;
    grants = Grant.create heap ~slots:128 domid;
    page_lock;
    heap_objs = [ lock_obj; data_obj ];
  }

let vcpu t vid = t.vcpus.(vid)

(* Touching a corrupted domain struct is how corruption there gets
   detected: the next hypercall dereferencing it hits garbage. *)
let check_struct t =
  if not t.struct_ok then
    Crash.panic "domain %d: corrupted domain struct dereferenced" t.domid

let affected t = t.guest_failed || t.guest_sdc || not t.alive
