(** Guest user processes.

    On x86-64, system calls from guest processes trap into the hypervisor
    and are forwarded to the guest kernel (the path the "syscall retry"
    enhancement covers). A process whose in-flight system call is lost
    blocks forever; a process resumed with clobbered FS/GS (thread-local
    storage base) crashes. UnixBench/BlkBench count either as benchmark
    failure. *)

type state =
  | Running
  | In_syscall (* waiting for a forwarded system call to return *)
  | Blocked_forever (* its system call was lost: never completes *)
  | Crashed (* e.g. TLS base clobbered *)
  | Exited of int

type t = {
  pid : int;
  name : string;
  mutable state : state;
  mutable syscalls_issued : int;
  mutable syscalls_completed : int;
  mutable syscalls_failed : int;
}

let create ~pid ~name =
  {
    pid;
    name;
    state = Running;
    syscalls_issued = 0;
    syscalls_completed = 0;
    syscalls_failed = 0;
  }

let issue_syscall t =
  (match t.state with
  | Running -> ()
  | In_syscall | Blocked_forever | Crashed | Exited _ ->
    invalid_arg "Process.issue_syscall: process not running");
  t.state <- In_syscall;
  t.syscalls_issued <- t.syscalls_issued + 1

let complete_syscall ?(failed = false) t =
  (match t.state with
  | In_syscall -> ()
  | Running | Blocked_forever | Crashed | Exited _ ->
    invalid_arg "Process.complete_syscall: no syscall in flight");
  if failed then t.syscalls_failed <- t.syscalls_failed + 1
  else t.syscalls_completed <- t.syscalls_completed + 1;
  t.state <- Running

(* The forwarded call was abandoned by hypervisor recovery with no retry
   arranged. *)
let lose_syscall t = if t.state = In_syscall then t.state <- Blocked_forever

(* FS/GS clobbered across recovery: thread-local storage is garbage. *)
let clobber_tls t =
  match t.state with
  | Running | In_syscall -> t.state <- Crashed
  | Blocked_forever | Crashed | Exited _ -> ()

let healthy t =
  match t.state with
  | Running | In_syscall | Exited 0 -> t.syscalls_failed = 0
  | Blocked_forever | Crashed | Exited _ -> false
