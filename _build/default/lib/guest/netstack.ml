(** UDP echo stack for NetBench (Section VI-A).

    The sender (on a separate physical host) emits one UDP packet per
    millisecond; the receiver (in an AppVM) echoes each packet. NetBench
    fails if the sender's reception rate drops by more than 10% in any
    one-second window relative to normal execution. The receive path in
    the simulated system is: NIC interrupt -> PrivVM backend -> event
    channel -> frontend, so lost/blocked interrupts show up as missing
    echoes. *)

type t = {
  interval : Sim.Time.ns; (* 1 ms *)
  mutable sent : int;
  mutable echoed : int;
  mutable last_echo_at : Sim.Time.ns;
  mutable max_gap : Sim.Time.ns; (* longest silence seen by the sender *)
  mutable window_losses : (Sim.Time.ns * int) list; (* (window start, lost) *)
}

let create ?(interval = Sim.Time.ms 1) () =
  {
    interval;
    sent = 0;
    echoed = 0;
    last_echo_at = 0;
    max_gap = 0;
    window_losses = [];
  }

(* The sender ticks once per interval; [delivered] says whether the echo
   came back (the receive path was up). *)
let sender_tick t ~now ~delivered =
  t.sent <- t.sent + 1;
  if delivered then begin
    let gap = now - t.last_echo_at in
    if gap > t.max_gap then t.max_gap <- gap;
    t.last_echo_at <- now;
    t.echoed <- t.echoed + 1
  end

(* Simulate a service interruption of [duration]: pings go unanswered. *)
let interruption t ~now ~duration =
  let lost = duration / t.interval in
  t.sent <- t.sent + lost;
  if duration > t.max_gap then t.max_gap <- duration;
  let window = Sim.Time.s 1 in
  let rec record start remaining =
    if remaining > 0 then begin
      let in_this_window = min remaining (window / t.interval) in
      t.window_losses <- (start, in_this_window) :: t.window_losses;
      record (start + window) (remaining - in_this_window)
    end
  in
  record now lost;
  t.last_echo_at <- now + duration

(* The paper's criterion: >10% reception drop in any 1 s window. *)
let failed t =
  let per_window = Sim.Time.s 1 / t.interval in
  List.exists
    (fun (_, lost) -> float_of_int lost > 0.10 *. float_of_int per_window)
    t.window_losses

let loss_rate t =
  if t.sent = 0 then 0.0
  else float_of_int (t.sent - t.echoed) /. float_of_int t.sent
