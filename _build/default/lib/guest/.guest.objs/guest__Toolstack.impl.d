lib/guest/toolstack.ml: Hyper List Sim
