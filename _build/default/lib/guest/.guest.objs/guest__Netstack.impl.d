lib/guest/netstack.ml: List Sim
