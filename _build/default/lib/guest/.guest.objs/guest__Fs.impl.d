lib/guest/fs.ml: Int64 List Printf
