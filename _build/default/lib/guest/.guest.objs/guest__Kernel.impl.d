lib/guest/kernel.ml: Array Fs Hyper List Netstack Printf Process
