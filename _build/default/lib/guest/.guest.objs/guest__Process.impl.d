lib/guest/process.ml:
