(** Paravirtualized guest kernel model.

    Binds a hypervisor [Domain.t] to guest-visible state: the process
    table, the file system and the network stack. Recovery-time events
    on the hypervisor side (lost hypercalls, clobbered FS/GS, guest
    memory corruption) are translated into their guest-visible
    consequences here, which is what the benchmark verification of
    Section VI-A actually observes. *)

type t = {
  dom : Hyper.Domain.t;
  mutable processes : Process.t list;
  mutable next_pid : int;
  fs : Fs.t;
  golden : Fs.t; (* pristine copy for BlkBench verification *)
  net : Netstack.t;
  mutable kernel_oopsed : bool;
}

let create (dom : Hyper.Domain.t) =
  {
    dom;
    processes = [];
    next_pid = 1;
    fs = Fs.create ();
    golden = Fs.create ();
    net = Netstack.create ();
    kernel_oopsed = false;
  }

let spawn t ~name =
  let p = Process.create ~pid:t.next_pid ~name in
  t.next_pid <- t.next_pid + 1;
  t.processes <- p :: t.processes;
  p

(* Populate both the live FS and the golden copy with the BlkBench file
   set (identical initial content). *)
let populate_blkbench_files t ~files ~size_kb =
  for i = 1 to files do
    let name = Printf.sprintf "file%02d" i in
    ignore (Fs.create_file t.fs ~name ~seed:i ~size_kb);
    ignore (Fs.create_file t.golden ~name ~seed:i ~size_kb)
  done

(* Reflect hypervisor-side recovery consequences into guest state. *)
let apply_domain_flags t =
  if t.dom.Hyper.Domain.guest_sdc then ignore (Fs.corrupt_one t.fs);
  if t.dom.Hyper.Domain.guest_failed then begin
    t.kernel_oopsed <- true;
    List.iter Process.lose_syscall t.processes
  end;
  Array.iter
    (fun (v : Hyper.Domain.vcpu) ->
      if not v.Hyper.Domain.fsgs_valid then
        List.iter Process.clobber_tls t.processes)
    t.dom.Hyper.Domain.vcpus

(* The benchmark verdict (Section VI-A): golden copy matches, no failed
   system calls, no crashed/blocked processes, no kernel oops. *)
let verify t =
  let fs_ok = Fs.compare_golden ~golden:t.golden t.fs = Fs.Match in
  let procs_ok = List.for_all Process.healthy t.processes in
  fs_ok && procs_ok && (not t.kernel_oopsed) && not (Netstack.failed t.net)
