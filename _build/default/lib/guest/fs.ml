(** Miniature guest file system with golden-copy verification.

    BlkBench "creates, copies, reads, writes and removes multiple 1 MB
    files containing random content" and the run is considered failed if
    "one or more files produced by the benchmark are different from the
    ones in a golden copy" (Section VI-A). Files here carry a content
    digest; every mutation goes through the block layer so corruption
    (silent or from lost I/O completions) shows up at verification. *)

type file = {
  name : string;
  mutable digest : int64; (* rolling content digest *)
  mutable size_kb : int;
  mutable dirty : bool; (* has writes not yet flushed to "disk" *)
}

type t = {
  mutable files : file list;
  mutable ops : int;
  mutable io_errors : int; (* failed block I/O seen by the guest *)
  cache_enabled : bool;
      (* BlkBench turns guest caching off so every op reaches the
         hypervisor; with caching on, most ops never expose recovery
         failures *)
}

let create ?(cache_enabled = false) () =
  { files = []; ops = 0; io_errors = 0; cache_enabled }

let digest_step digest byte =
  Int64.add (Int64.mul digest 1000003L) (Int64.of_int byte)

let content_digest ~seed ~size_kb =
  let rec go d i = if i >= size_kb then d else go (digest_step d (i * seed mod 251)) (i + 1) in
  go 1L 0

let find t name = List.find_opt (fun f -> f.name = name) t.files

let create_file t ~name ~seed ~size_kb =
  t.ops <- t.ops + 1;
  match find t name with
  | Some _ -> Error `Exists
  | None ->
    let f = { name; digest = content_digest ~seed ~size_kb; size_kb; dirty = true } in
    t.files <- f :: t.files;
    Ok f

let write t ~name ~seed =
  t.ops <- t.ops + 1;
  match find t name with
  | None -> Error `Not_found
  | Some f ->
    f.digest <- digest_step f.digest (seed land 0xff);
    f.dirty <- true;
    Ok ()

let copy t ~src ~dst =
  t.ops <- t.ops + 1;
  match find t src with
  | None -> Error `Not_found
  | Some s ->
    (match find t dst with
    | Some d ->
      d.digest <- s.digest;
      d.size_kb <- s.size_kb;
      d.dirty <- true;
      Ok ()
    | None ->
      t.files <-
        { name = dst; digest = s.digest; size_kb = s.size_kb; dirty = true }
        :: t.files;
      Ok ())

let read t ~name =
  t.ops <- t.ops + 1;
  match find t name with None -> Error `Not_found | Some f -> Ok f.digest

let remove t ~name =
  t.ops <- t.ops + 1;
  match find t name with
  | None -> Error `Not_found
  | Some _ ->
    t.files <- List.filter (fun f -> f.name <> name) t.files;
    Ok ()

(* Flush dirty files through the block device; a failed flush is a
   visible I/O error. *)
let flush t ~io_ok =
  List.iter
    (fun f ->
      if f.dirty then begin
        if io_ok then f.dirty <- false else t.io_errors <- t.io_errors + 1
      end)
    t.files

(* Corrupt one file's content (what a guest-memory hit does). *)
let corrupt_one t =
  match t.files with
  | [] -> false
  | f :: _ ->
    f.digest <- Int64.logxor f.digest 0x4242L;
    true

(* Golden-copy comparison: same file set, same digests, nothing left
   unflushed, no I/O errors. *)
type verdict = Match | Mismatch of string

let compare_golden ~golden t =
  if t.io_errors > 0 then Mismatch (Printf.sprintf "%d I/O errors" t.io_errors)
  else begin
    let sorted fs = List.sort (fun a b -> compare a.name b.name) fs.files in
    let ga = sorted golden and ta = sorted t in
    if List.length ga <> List.length ta then
      Mismatch
        (Printf.sprintf "file count %d vs %d" (List.length ga) (List.length ta))
    else begin
      let rec cmp = function
        | [], [] -> Match
        | g :: gs, f :: fs ->
          if g.name <> f.name then Mismatch ("missing file " ^ g.name)
          else if g.digest <> f.digest then Mismatch ("content differs: " ^ g.name)
          else cmp (gs, fs)
        | _ -> Mismatch "file count"
      in
      cmp (ga, ta)
    end
  end
