(** PrivVM toolstack: the management operations (create, pause, destroy
    VMs) that the 3AppVM experiment uses to check that the hypervisor
    "maintains its ability to create and host newly created VMs after
    recovery" (Section VI-A). Every operation goes through real domctl
    hypercalls on the simulated hypervisor. *)

type t = {
  hv : Hyper.Hypervisor.t;
  rng : Sim.Rng.t;
}

let create hv ~rng = { hv; rng }

let privvm_vcpu t =
  let d = Hyper.Hypervisor.privvm t.hv in
  Hyper.Domain.vcpu d 0

(* Issue a domctl through the normal hypercall path (so it exercises the
   domlist lock, the heap, the frame allocator and the scheduler). *)
let domctl t kind =
  let v = privvm_vcpu t in
  Hyper.Hypervisor.execute t.hv t.rng
    (Hyper.Hypervisor.Hypercall
       { domid = v.Hyper.Domain.domid; vid = v.Hyper.Domain.vid; kind })

type result = Created of Hyper.Domain.t | Failed of string

(* Create a fresh AppVM; returns the new domain on success. *)
let create_vm t =
  let before =
    List.map
      (fun (d : Hyper.Domain.t) -> d.Hyper.Domain.domid)
      (Hyper.Hypervisor.app_domains t.hv)
  in
  match domctl t Hyper.Hypercalls.Domctl_create_domain with
  | () ->
    let created =
      List.find_opt
        (fun (d : Hyper.Domain.t) ->
          not (List.mem d.Hyper.Domain.domid before))
        (Hyper.Hypervisor.app_domains t.hv)
    in
    (match created with
    | Some d -> Created d
    | None -> Failed "domctl completed but no new domain")
  | exception Hyper.Crash.Hypervisor_crash d ->
    Failed (Hyper.Crash.describe d)

let destroy_vm t (_dom : Hyper.Domain.t) =
  match domctl t Hyper.Hypercalls.Domctl_destroy_domain with
  | () -> Ok ()
  | exception Hyper.Crash.Hypervisor_crash d -> Error (Hyper.Crash.describe d)

let pause_vm t =
  match domctl t Hyper.Hypercalls.Domctl_pause_domain with
  | () -> Ok ()
  | exception Hyper.Crash.Hypervisor_crash d -> Error (Hyper.Crash.describe d)
