examples/latency_demo.mli:
