examples/vm_lifecycle.ml: Array Core Format Guest Hyper Sim Workloads
