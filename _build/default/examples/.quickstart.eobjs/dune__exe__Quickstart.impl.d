examples/quickstart.ml: Array Core Format Hyper List Recovery Sim Workloads
