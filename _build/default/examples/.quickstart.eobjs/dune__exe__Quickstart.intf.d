examples/quickstart.mli:
