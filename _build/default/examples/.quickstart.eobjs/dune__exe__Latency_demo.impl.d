examples/latency_demo.ml: Core Format Guest Hyper Recovery Sim
