examples/fault_campaign.ml: Core Format Inject List Sim
