examples/incremental_enhancements.ml: Format Inject List Recovery Sim String Workloads
