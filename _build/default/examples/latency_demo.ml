(* Recovery-latency demo: measure the service interruption a NetBench-
   style 1 ms UDP echo sees across a hypervisor recovery, for both
   mechanisms, at the paper's machine geometry (8 GB / 8 CPUs).

     dune exec examples/latency_demo.exe *)

let demo mechanism name =
  let outcome = Core.Latency.measure mechanism in
  Format.printf "@.%s recovery latency breakdown:@." name;
  Format.printf "%a" Hyper.Latency_model.pp outcome.Recovery.Engine.breakdown;
  (* Drive the NetBench sender model across the interruption. *)
  let net = Guest.Netstack.create () in
  let now = Sim.Time.s 2 in
  (* 2 seconds of healthy echo traffic... *)
  for i = 1 to 2000 do
    Guest.Netstack.sender_tick net ~now:(i * Sim.Time.ms 1) ~delivered:true
  done;
  (* ...then the recovery pause... *)
  Guest.Netstack.interruption net ~now ~duration:outcome.Recovery.Engine.latency;
  Format.printf
    "NetBench sender: max gap %a, loss rate %.2f%%, >10%%-window criterion \
     tripped: %b@."
    Sim.Time.pp net.Guest.Netstack.max_gap
    (100.0 *. Guest.Netstack.loss_rate net)
    (Guest.Netstack.failed net);
  outcome.Recovery.Engine.latency

let () =
  let nl = demo Recovery.Engine.Nilihype "NiLiHype (microreset)" in
  let re = demo Recovery.Engine.Rehype "ReHype (microreboot)" in
  Format.printf "@.ReHype/NiLiHype latency ratio: %.1fx (paper: >30x)@."
    (float_of_int re /. float_of_int nl)
