(* VM lifecycle through the PrivVM toolstack: create an AppVM after a
   recovery, run BlkBench in it and verify its files against the golden
   copy -- the health check behind the 3AppVM "successful recovery"
   definition.

     dune exec examples/vm_lifecycle.exe *)

let () =
  let system = Core.System.boot ~setup:Core.System.Three_appvm () in
  let hv = system.Core.System.hypervisor in
  let rng = system.Core.System.rng in

  (* Crash and recover. *)
  (try
     Hyper.Hypervisor.execute_partial hv rng
       (Hyper.Hypervisor.Timer_tick 1) ~stop_at:4
   with Hyper.Crash.Hypervisor_crash _ -> ());
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  let latency = Core.System.recover system in
  Format.printf "recovered in %a@." Sim.Time.pp latency;

  (* Post-recovery: the PrivVM toolstack must still be able to create
     and host a new VM. *)
  let toolstack = Guest.Toolstack.create hv ~rng in
  match Guest.Toolstack.create_vm toolstack with
  | Guest.Toolstack.Failed why -> Format.printf "VM creation FAILED: %s@." why
  | Guest.Toolstack.Created dom ->
    Format.printf "created new AppVM: domain %d on cpu %d@."
      dom.Hyper.Domain.domid
      dom.Hyper.Domain.vcpus.(0).Hyper.Domain.processor;
    (* Run BlkBench in the new VM: create/write/copy files, flush through
       the (simulated) block device, verify against the golden copy. *)
    let kernel = Guest.Kernel.create dom in
    Guest.Kernel.populate_blkbench_files kernel ~files:6 ~size_kb:1024;
    let blk =
      Workloads.Workload.create Workloads.Workload.Blkbench
        ~domid:dom.Hyper.Domain.domid
    in
    let proc = Guest.Kernel.spawn kernel ~name:"blkbench" in
    for i = 1 to 120 do
      Core.System.execute system (Workloads.Workload.sample_activity rng blk);
      if i mod 10 = 0 then begin
        Guest.Process.issue_syscall proc;
        ignore (Guest.Fs.write kernel.Guest.Kernel.fs ~name:"file01" ~seed:i);
        ignore
          (Guest.Fs.write kernel.Guest.Kernel.golden ~name:"file01" ~seed:i);
        Guest.Process.complete_syscall proc
      end
    done;
    Guest.Fs.flush kernel.Guest.Kernel.fs ~io_ok:true;
    Guest.Fs.flush kernel.Guest.Kernel.golden ~io_ok:true;
    Guest.Kernel.apply_domain_flags kernel;
    Format.printf "BlkBench golden-copy verification: %s@."
      (if Guest.Kernel.verify kernel then "PASS" else "FAIL");
    Format.printf "hypervisor healthy: %b@." (Core.System.healthy system)
