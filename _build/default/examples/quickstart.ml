(* Quickstart: boot a virtualized system, crash the hypervisor, recover
   it with NiLiHype's microreset, and show that the VMs survive.

     dune exec examples/quickstart.exe *)

let () =
  (* Boot: Xen-like hypervisor, PrivVM on CPU 0, two AppVMs. *)
  let system = Core.System.boot ~setup:Core.System.Three_appvm () in
  let hv = system.Core.System.hypervisor in
  Format.printf "booted: %d domains, %d CPUs, %d page frames@."
    (List.length (Hyper.Hypervisor.all_domains hv))
    (Hyper.Hypervisor.cpu_count hv)
    (Hyper.Hypervisor.frames hv);

  (* Run some guest work through the hypervisor. *)
  let unixbench = Workloads.Workload.create Workloads.Workload.Unixbench ~domid:1 in
  for _ = 1 to 200 do
    Core.System.execute system
      (Workloads.Workload.sample_activity system.Core.System.rng unixbench)
  done;
  Format.printf "healthy after 200 activities: %b@." (Core.System.healthy system);

  (* Simulate a hypervisor failure: an execution thread dies mid-
     hypercall, leaving partial state (a held lock, a half-updated
     scheduler) behind. *)
  (try
     Hyper.Hypervisor.execute_partial hv system.Core.System.rng
       (Hyper.Hypervisor.Hypercall
          { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 2 })
       ~stop_at:5
   with Hyper.Crash.Hypervisor_crash _ -> ());
  Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
  let report = Core.System.audit system in
  Format.printf "after failure, audit: %a@." Hyper.Hypervisor.pp_audit report;

  (* Microreset recovery: discard all execution threads, repair state,
     resume -- no reboot. *)
  let latency = Core.System.recover ~mechanism:Recovery.Engine.Nilihype system in
  Format.printf "NiLiHype recovery completed in %a (simulated)@." Sim.Time.pp
    latency;

  (* Retry the abandoned hypercall and confirm the system is healthy. *)
  List.iter
    (fun (v : Hyper.Domain.vcpu) ->
      if v.Hyper.Domain.retry_pending then
        Hyper.Hypervisor.retry_hypercall hv system.Core.System.rng v)
    (Hyper.Hypervisor.all_vcpus hv);
  for _ = 1 to 200 do
    Core.System.execute system
      (Workloads.Workload.sample_activity system.Core.System.rng unixbench)
  done;
  Format.printf "healthy after recovery + 200 more activities: %b@."
    (Core.System.healthy system);
  Format.printf "all VMs alive: %b@."
    (List.for_all
       (fun (d : Hyper.Domain.t) -> d.Hyper.Domain.alive)
       (Hyper.Hypervisor.all_domains hv))
