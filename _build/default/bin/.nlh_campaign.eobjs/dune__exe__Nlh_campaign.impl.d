bin/nlh_campaign.ml: Arg Format Hyper Inject Int64 List Printf Recovery Sim String Workloads
