bin/nlh_latency.mli:
