bin/nlh_campaign.mli:
