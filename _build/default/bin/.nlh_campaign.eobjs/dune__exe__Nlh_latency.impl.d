bin/nlh_latency.ml: Arg Array Format Hw Hyper Recovery Sim
