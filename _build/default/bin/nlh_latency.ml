(* Recovery-latency explorer: print the Table II/III breakdowns for a
   configurable machine geometry, demonstrating the paper's point that
   NiLiHype's latency is proportional to host memory size (and how that
   could be mitigated).

     dune exec bin/nlh_latency.exe -- --mem-gb 32 --cpus 16 *)

let () =
  let mem_gb = ref 8 in
  let cpus = ref 8 in
  let spec =
    [
      ("--mem-gb", Arg.Set_int mem_gb, " host memory in GiB (default 8)");
      ("--cpus", Arg.Set_int cpus, " physical CPUs (default 8)");
    ]
  in
  Arg.parse spec (fun _ -> ()) "nlh_latency [options]";
  let mconfig =
    {
      Hw.Machine.default_config with
      Hw.Machine.mem_bytes = !mem_gb * 1024 * 1024 * 1024;
      num_cpus = max 2 !cpus;
    }
  in
  let measure mechanism =
    let clock = Sim.Clock.create () in
    let config = Recovery.Engine.config mechanism in
    let hv =
      Hyper.Hypervisor.boot ~mconfig ~config ~setup:Hyper.Hypervisor.One_appvm
        clock
    in
    Array.iter Hyper.Percpu.irq_enter hv.Hyper.Hypervisor.percpu;
    Recovery.Engine.recover mechanism hv ~enh:Recovery.Enhancement.full_set
      ~detected_on:0
  in
  Format.printf "Machine: %d GiB RAM (%d frames), %d CPUs@.@." !mem_gb
    (mconfig.Hw.Machine.mem_bytes / Hw.Machine.page_size)
    mconfig.Hw.Machine.num_cpus;
  let nl = measure Recovery.Engine.Nilihype in
  Format.printf "NiLiHype (microreset):@.%a@." Hyper.Latency_model.pp
    nl.Recovery.Engine.breakdown;
  let re = measure Recovery.Engine.Rehype in
  Format.printf "ReHype (microreboot):@.%a@." Hyper.Latency_model.pp
    re.Recovery.Engine.breakdown;
  Format.printf "ratio: %.1fx@."
    (float_of_int re.Recovery.Engine.latency
    /. float_of_int nl.Recovery.Engine.latency);
  if !mem_gb > 8 then
    Format.printf
      "@.Note (Section VII-B): the page-frame scan grows linearly with \
       memory; the paper suggests parallelising it across cores or skipping \
       it at a ~4%% recovery-rate cost.@."
