(* Tests for the observability layer: the typed event ring, metrics
   registry merge semantics, campaign metric determinism across worker
   counts, and the Chrome-trace exporter (valid JSON, monotone
   timestamps, span sums reproducing the latency breakdown). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ev ?(level = Obs.Event.Info) ?(cpu = 0) ?(domid = -1) ~time payload =
  { Obs.Event.time; level; cpu; domid; payload }

let msg ?level ~time s = ev ?level ~time (Obs.Event.Message s)

(* ------------------------- Event ring ------------------------------- *)

let test_ring_wraparound () =
  let tr = Obs.Trace.create ~capacity:4 ~min_level:Obs.Event.Debug () in
  for i = 1 to 6 do
    Obs.Trace.record tr (msg ~time:i (Printf.sprintf "e%d" i))
  done;
  checki "ring full" 4 (Obs.Trace.size tr);
  checki "two overwritten" 2 (Obs.Trace.dropped tr);
  let times = List.map (fun e -> e.Obs.Event.time) (Obs.Trace.to_list tr) in
  Alcotest.check (Alcotest.list Alcotest.int) "oldest-first, newest survive"
    [ 3; 4; 5; 6 ] times

let test_ring_level_filter_at_record () =
  let tr = Obs.Trace.create ~capacity:8 ~min_level:Obs.Event.Warn () in
  Obs.Trace.record tr (msg ~level:Obs.Event.Debug ~time:1 "d");
  Obs.Trace.record tr (msg ~level:Obs.Event.Info ~time:2 "i");
  checki "below threshold dropped at record" 0 (Obs.Trace.size tr);
  Obs.Trace.record tr (msg ~level:Obs.Event.Warn ~time:3 "w");
  Obs.Trace.record tr (msg ~level:Obs.Event.Error ~time:4 "e");
  checki "warn and error kept" 2 (Obs.Trace.size tr);
  (* Lowering the threshold afterwards admits finer events. *)
  Obs.Trace.set_min_level tr Obs.Event.Debug;
  Obs.Trace.record tr (msg ~level:Obs.Event.Debug ~time:5 "d2");
  checki "debug kept after set_min_level" 3 (Obs.Trace.size tr)

let test_ring_readback_filters () =
  let tr = Obs.Trace.create ~capacity:16 ~min_level:Obs.Event.Debug () in
  Obs.Trace.record tr
    (ev ~level:Obs.Event.Debug ~time:1
       (Obs.Event.Journal_append { kind = "use_count_delta"; depth = 1 }));
  Obs.Trace.record tr
    (ev ~level:Obs.Event.Error ~time:2
       (Obs.Event.Detection { kind = "panic"; message = "bad" }));
  Obs.Trace.record tr (msg ~level:Obs.Event.Info ~time:3 "hello");
  checki "all kept" 3 (Obs.Trace.size tr);
  checki "level narrows readback" 1
    (List.length (Obs.Trace.to_list ~min_level:Obs.Event.Error tr));
  checki "subsystem narrows readback" 1
    (List.length (Obs.Trace.to_list ~subsystem:Obs.Event.Journal tr))

let test_ring_clear () =
  let tr = Obs.Trace.create ~capacity:2 ~min_level:Obs.Event.Debug () in
  for i = 1 to 5 do
    Obs.Trace.record tr (msg ~time:i "x")
  done;
  Obs.Trace.clear tr;
  checki "empty after clear" 0 (Obs.Trace.size tr);
  checki "dropped reset" 0 (Obs.Trace.dropped tr);
  checkb "to_list empty" true (Obs.Trace.to_list tr = []);
  Obs.Trace.record tr (msg ~time:9 "y");
  checki "reusable after clear" 1 (Obs.Trace.size tr)

(* ------------------------- Metrics ---------------------------------- *)

let test_histogram_bucket_boundaries () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" ~bounds:[| 10; 20 |] in
  List.iter (Obs.Metrics.observe h) [ 0; 10; 11; 20; 21; 1000 ];
  let s = Obs.Metrics.snapshot m in
  match s.Obs.Metrics.histograms with
  | [ ("lat", hs) ] ->
    (* Upper bounds are inclusive; values beyond the last bound land in
       the trailing overflow bucket. *)
    Alcotest.check (Alcotest.list Alcotest.int) "bucket counts" [ 2; 2; 2 ]
      hs.Obs.Metrics.h_counts;
    checki "samples" 6 hs.Obs.Metrics.h_samples;
    checki "sum" 1062 hs.Obs.Metrics.h_sum
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_instrument_reuse () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Obs.Metrics.incr ~by:4 (Obs.Metrics.counter m "c");
  let s = Obs.Metrics.snapshot m in
  checki "re-registration shares the instrument" 5
    (List.assoc "c" s.Obs.Metrics.counters);
  checkb "kind mismatch rejected" true
    (match Obs.Metrics.gauge m "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let snap build =
  let m = Obs.Metrics.create () in
  build m;
  Obs.Metrics.snapshot m

let test_merge_commutative () =
  let a =
    snap (fun m ->
        Obs.Metrics.incr ~by:3 (Obs.Metrics.counter m "shared");
        Obs.Metrics.incr (Obs.Metrics.counter m "only_a");
        Obs.Metrics.set (Obs.Metrics.gauge m "g") 7;
        Obs.Metrics.observe (Obs.Metrics.histogram m "h" ~bounds:[| 5; 10 |]) 4)
  in
  let b =
    snap (fun m ->
        Obs.Metrics.incr ~by:2 (Obs.Metrics.counter m "shared");
        Obs.Metrics.incr (Obs.Metrics.counter m "only_b");
        Obs.Metrics.set (Obs.Metrics.gauge m "g") 5;
        Obs.Metrics.observe (Obs.Metrics.histogram m "h" ~bounds:[| 5; 10 |]) 12)
  in
  let ab = Obs.Metrics.merge_snapshots a b in
  let ba = Obs.Metrics.merge_snapshots b a in
  checkb "merge is commutative" true (ab = ba);
  checkb "empty is a unit" true
    (Obs.Metrics.merge_snapshots a Obs.Metrics.empty_snapshot = a
    && Obs.Metrics.merge_snapshots Obs.Metrics.empty_snapshot a = a);
  checki "shared counters sum" 5 (List.assoc "shared" ab.Obs.Metrics.counters);
  checki "disjoint counter kept" 1 (List.assoc "only_a" ab.Obs.Metrics.counters);
  checki "gauges take the max" 7 (List.assoc "g" ab.Obs.Metrics.gauges);
  let h = List.assoc "h" ab.Obs.Metrics.histograms in
  Alcotest.check (Alcotest.list Alcotest.int) "histogram buckets pointwise"
    [ 1; 0; 1 ] h.Obs.Metrics.h_counts;
  checki "histogram sum" 16 h.Obs.Metrics.h_sum

(* ------------------ Log-bucket histograms and quantiles ------------- *)

let test_log_bounds () =
  let lo = 1_000 and hi = 100_000_000_000 in
  let bounds = Obs.Metrics.log_bounds ~lo ~hi in
  checki "starts at lo" lo bounds.(0);
  checkb "covers hi" true (bounds.(Array.length bounds - 1) >= hi);
  Array.iteri
    (fun i b ->
      if i > 0 then begin
        checkb "strictly increasing" true (b > bounds.(i - 1));
        checki "each bound is one geometric step" (Obs.Metrics.log_step bounds.(i - 1)) b
      end)
    bounds;
  (* ~25% growth spans 8 decades in well under 120 buckets -- the point
     of geometric bounds vs linear ones. *)
  checkb "bucket count stays small" true (Array.length bounds < 120)

let test_log_observe_bucket_rule () =
  (* The binary-search [observe] must agree with the documented rule:
     first bucket whose inclusive upper bound is >= v, overflow past the
     last bound. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.log_histogram m "ns" ~lo:10 ~hi:1_000 in
  let hs () = List.assoc "ns" (Obs.Metrics.snapshot m).Obs.Metrics.histograms in
  let bounds = (hs ()).Obs.Metrics.h_bounds in
  let values =
    [ 0; 1; 9; 10; 11; 12; 13; 499; 500; 999; 1_000; 1_500; 50_000 ]
    @ bounds (* every exact bound lands in its own bucket *)
  in
  List.iter (Obs.Metrics.observe h) values;
  let expect = Array.make (List.length bounds + 1) 0 in
  List.iter
    (fun v ->
      let rec idx i = function
        | [] -> i
        | b :: _ when v <= b -> i
        | _ :: r -> idx (i + 1) r
      in
      let i = idx 0 bounds in
      expect.(i) <- expect.(i) + 1)
    values;
  Alcotest.check (Alcotest.list Alcotest.int) "binary search matches the rule"
    (Array.to_list expect) (hs ()).Obs.Metrics.h_counts

let test_quantile_accuracy () =
  (* Estimated quantiles of a known skewed distribution stay within one
     bucket's relative error (25%) above the exact order statistic. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.log_histogram m "lat" ~lo:100 ~hi:10_000_000 in
  let state = ref 12345 in
  let next () =
    (* Deterministic LCG; squaring skews the tail like a latency curve. *)
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    let u = !state mod 10_000 in
    100 + (u * u / 30)
  in
  let values = List.init 5_000 (fun _ -> next ()) in
  List.iter (Obs.Metrics.observe h) values;
  let sorted = List.sort compare values in
  let hs = List.assoc "lat" (Obs.Metrics.snapshot m).Obs.Metrics.histograms in
  let check_q name q est =
    let n = List.length sorted in
    let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
    let exact = List.nth sorted (rank - 1) in
    let est = match est with Some e -> e | None -> Alcotest.fail (name ^ " undefined") in
    checkb (name ^ " >= exact order statistic") true (est >= exact);
    checkb
      (Printf.sprintf "%s %d within 25%% above exact %d" name est exact)
      true
      (float_of_int est
      <= float_of_int exact *. (1.0 +. Obs.Metrics.log_relative_error) +. 1.0)
  in
  check_q "p50" 0.50 (Obs.Metrics.p50 hs);
  check_q "p99" 0.99 (Obs.Metrics.p99 hs);
  check_q "p999" 0.999 (Obs.Metrics.p999 hs);
  (* Quantiles are monotone in q. *)
  let g = function Some v -> v | None -> -1 in
  checkb "p50 <= p99 <= p999" true
    (g (Obs.Metrics.p50 hs) <= g (Obs.Metrics.p99 hs)
    && g (Obs.Metrics.p99 hs) <= g (Obs.Metrics.p999 hs))

let test_quantile_edge_cases () =
  let empty =
    { Obs.Metrics.h_bounds = [ 10 ]; h_counts = [ 0; 0 ]; h_sum = 0; h_samples = 0 }
  in
  checkb "empty histogram has no quantiles" true (Obs.Metrics.p99 empty = None);
  let overflow =
    { Obs.Metrics.h_bounds = [ 10; 20 ]; h_counts = [ 0; 0; 4 ]; h_sum = 400; h_samples = 4 }
  in
  (* Rank in the unbounded overflow bucket: clamp to one growth step past
     the top bound rather than inventing a value. *)
  checkb "overflow clamps one step past top" true
    (Obs.Metrics.p99 overflow = Some (Obs.Metrics.log_step 20))

let test_metrics_restore_roundtrip () =
  let build m =
    ( Obs.Metrics.counter m "c",
      Obs.Metrics.gauge m "g",
      Obs.Metrics.histogram m "h" ~bounds:[| 5; 10 |],
      Obs.Metrics.log_histogram m "lh" ~lo:1_000 ~hi:100_000_000 )
  in
  let m = Obs.Metrics.create () in
  let c, g, h, lh = build m in
  Obs.Metrics.incr ~by:3 c;
  Obs.Metrics.set g 9;
  List.iter (Obs.Metrics.observe h) [ 1; 7; 100 ];
  List.iter (Obs.Metrics.observe lh) [ 999; 5_000; 123_456; 1_000_000_000 ];
  let s = Obs.Metrics.snapshot m in
  (* Restore into a fresh registry with the same registrations: snapshots
     must be bit-identical, log-bucket histograms included. *)
  let m2 = Obs.Metrics.create () in
  let _, _, _, lh2 = build m2 in
  Obs.Metrics.restore m2 s;
  checkb "fresh registry round-trips" true (Obs.Metrics.snapshot m2 = s);
  (* A dirtied registry is fully overwritten by a second restore. *)
  Obs.Metrics.observe lh2 77_777;
  Obs.Metrics.restore m2 s;
  checkb "dirty registry overwritten" true (Obs.Metrics.snapshot m2 = s);
  (* Quantiles computed from the restored snapshot agree. *)
  let q snap =
    Obs.Metrics.p99 (List.assoc "lh" snap.Obs.Metrics.histograms)
  in
  checkb "quantiles survive restore" true (q (Obs.Metrics.snapshot m2) = q s)

(* ------------------------- Campaign metrics ------------------------- *)

let run_cfg ?(fault = Inject.Fault.Register) ~seed () =
  {
    Inject.Run.default_config with
    Inject.Run.seed;
    fault;
    mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
  }

let test_campaign_metrics_parallel_identical () =
  let cfg = run_cfg ~seed:0L () in
  let seq = Inject.Campaign.run ~base_seed:42L ~jobs:1 ~n:40 cfg in
  let par =
    Inject.Campaign.run ~base_seed:42L ~jobs:4 ~oversubscribe:true ~n:40 cfg
  in
  let sm (r : Inject.Campaign.result) =
    (Inject.Campaign.snapshot r.Inject.Campaign.totals).Inject.Campaign.s_metrics
  in
  checkb "jobs=1 and jobs=4 metrics bit-identical" true (sm seq = sm par);
  checkb "aggregate metrics non-empty" true
    ((sm seq).Obs.Metrics.counters <> [])

(* ------------------------- Chrome-trace export ---------------------- *)

let get msg = function Some v -> v | None -> Alcotest.fail msg

let test_chrome_trace_roundtrip () =
  let recorder =
    Obs.Recorder.create ~capacity:65536 ~min_level:Obs.Event.Debug ()
  in
  let outcome =
    Inject.Run.run_obs ~recorder (run_cfg ~fault:Inject.Fault.Failstop ~seed:7L ())
  in
  let steps =
    match outcome with
    | Inject.Run.Detected { Inject.Run.breakdown = Some b; _ } ->
      b.Hyper.Latency_model.steps
    | _ -> Alcotest.fail "failstop run must be detected with a breakdown"
  in
  (* Per-phase span sums reproduce the latency breakdown exactly. *)
  Alcotest.check
    Alcotest.(list (pair string int))
    "span sums equal breakdown" steps
    (Obs.Span.sums_by_name recorder.Obs.Recorder.spans);
  let text = Obs.Export.chrome_trace_of_recorder recorder in
  match Obs.Json.parse text with
  | Error e -> Alcotest.fail ("exporter produced invalid JSON: " ^ e)
  | Ok j ->
    let rows =
      get "traceEvents must be an array"
        (Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list)
    in
    checkb "trace has rows" true (rows <> []);
    let spans = ref 0 and last = ref neg_infinity in
    List.iter
      (fun row ->
        let name =
          get "row name must be a string"
            (Option.bind (Obs.Json.member "name" row) Obs.Json.to_string)
        in
        checkb "row name non-empty" true (name <> "");
        let ts =
          get "row ts must be a number"
            (Option.bind (Obs.Json.member "ts" row) Obs.Json.to_number)
        in
        checkb "ts non-negative" true (ts >= 0.0);
        checkb "ts non-decreasing" true (ts >= !last);
        last := ts;
        match
          Option.bind (Obs.Json.member "ph" row) Obs.Json.to_string
        with
        | Some "X" ->
          incr spans;
          let dur =
            get "span dur must be a number"
              (Option.bind (Obs.Json.member "dur" row) Obs.Json.to_number)
          in
          checkb "span dur non-negative" true (dur >= 0.0)
        | Some "i" -> ()
        | _ -> Alcotest.fail "row phase must be X or i")
      rows;
    checki "one span row per breakdown phase" (List.length steps) !spans

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "record-time level filter" `Quick
            test_ring_level_filter_at_record;
          Alcotest.test_case "readback filters" `Quick test_ring_readback_filters;
          Alcotest.test_case "clear" `Quick test_ring_clear;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "instrument reuse" `Quick test_instrument_reuse;
          Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
          Alcotest.test_case "log bounds geometric" `Quick test_log_bounds;
          Alcotest.test_case "log observe bucket rule" `Quick
            test_log_observe_bucket_rule;
          Alcotest.test_case "quantile accuracy" `Quick test_quantile_accuracy;
          Alcotest.test_case "quantile edge cases" `Quick
            test_quantile_edge_cases;
          Alcotest.test_case "restore round-trip" `Quick
            test_metrics_restore_roundtrip;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 metrics identical" `Slow
            test_campaign_metrics_parallel_identical;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome-trace roundtrip" `Quick
            test_chrome_trace_roundtrip;
        ] );
    ]
