(* Tests for the fault injector: manifestation profiles, corruption
   application, single runs and campaign aggregation. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let boot () =
  let clock = Sim.Clock.create () in
  Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
    ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock

(* ------------------------- Profiles --------------------------------- *)

let weights_sum_to_one dist =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 dist in
  abs_float (total -. 1.0) < 1e-9

let test_profile_weights_normalised () =
  checkb "register" true (weights_sum_to_one Inject.Profile.register_distribution);
  checkb "code" true (weights_sum_to_one Inject.Profile.code_distribution);
  checkb "targets" true (weights_sum_to_one Inject.Profile.corruption_targets)

let test_failstop_always_crashes () =
  let rng = Sim.Rng.create 1L in
  for _ = 1 to 50 do
    let m = Inject.Profile.sample_manifestation rng Inject.Fault.Failstop in
    checkb "panic" true (m.Inject.Profile.crash_now = `Panic);
    checki "no corruption" 0 m.Inject.Profile.corruptions
  done

let test_register_mostly_benign () =
  let rng = Sim.Rng.create 2L in
  let benign = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let m = Inject.Profile.sample_manifestation rng Inject.Fault.Register in
    if m = Inject.Profile.no_effect then incr benign
  done;
  let p = float_of_int !benign /. float_of_int n in
  (* Paper: 74.8% of register faults are non-manifested. *)
  checkb "about 73.5%" true (p > 0.70 && p < 0.77)

let test_code_more_aggressive_than_register () =
  let rng = Sim.Rng.create 3L in
  let count fault =
    let n = 5000 and c = ref 0 in
    for _ = 1 to n do
      let m = Inject.Profile.sample_manifestation rng fault in
      if m.Inject.Profile.crash_now <> `No then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let reg = count Inject.Fault.Register and code = count Inject.Fault.Code in
  checkb "code faults crash more often" true (code > (2.0 *. reg))

let test_campaign_sizes_match_paper () =
  checki "failstop" 1000 (Inject.Fault.paper_campaign_size Inject.Fault.Failstop);
  checki "register" 5000 (Inject.Fault.paper_campaign_size Inject.Fault.Register);
  checki "code" 2000 (Inject.Fault.paper_campaign_size Inject.Fault.Code)

(* ------------------------- Corruption targets ----------------------- *)

let test_corrupt_pfn_validated () =
  let hv = boot () in
  let rng = Sim.Rng.create 4L in
  let before = Hyper.Pfn.count_inconsistent hv.Hyper.Hypervisor.pfn in
  (* Flipping the validation bit of an in-use frame usually creates an
     inconsistency or a latent hazard; apply a few to be sure state
     changed. *)
  for _ = 1 to 5 do
    Inject.Corrupt.apply hv rng Inject.Corrupt.Pfn_validated_flip
  done;
  let after = Hyper.Pfn.count_inconsistent hv.Hyper.Hypervisor.pfn in
  checkb "pfn state perturbed" true (after >= before)

let test_corrupt_sched_breaks_audit () =
  let hv = boot () in
  let rng = Sim.Rng.create 5L in
  let broke = ref false in
  for _ = 1 to 10 do
    Inject.Corrupt.apply hv rng Inject.Corrupt.Sched_metadata;
    if not (Hyper.Sched.audit hv.Hyper.Hypervisor.sched (Hyper.Hypervisor.all_vcpus hv))
    then broke := true
  done;
  checkb "sched audit eventually broken" true !broke

let test_corrupt_heap_freelist () =
  let hv = boot () in
  let rng = Sim.Rng.create 6L in
  Inject.Corrupt.apply hv rng Inject.Corrupt.Heap_freelist;
  checkb "freelist corrupt" false (Hyper.Heap.freelist_ok hv.Hyper.Hypervisor.heap)

let test_corrupt_recovery_handler () =
  let hv = boot () in
  let rng = Sim.Rng.create 7L in
  Inject.Corrupt.apply hv rng Inject.Corrupt.Recovery_handler;
  checkb "handler corrupt" false hv.Hyper.Hypervisor.recovery_handler_ok

let test_corrupt_privvm () =
  let hv = boot () in
  let rng = Sim.Rng.create 8L in
  Inject.Corrupt.apply hv rng Inject.Corrupt.Privvm_critical;
  checkb "privvm failed" true (Hyper.Hypervisor.privvm hv).Hyper.Domain.guest_failed

let test_corrupt_guest_frame_hits_app_only () =
  let hv = boot () in
  let rng = Sim.Rng.create 9L in
  for _ = 1 to 20 do
    Inject.Corrupt.apply hv rng Inject.Corrupt.Guest_frame
  done;
  checkb "privvm untouched" false (Hyper.Hypervisor.privvm hv).Hyper.Domain.guest_failed;
  checkb "some app VM hit" true
    (List.exists Hyper.Domain.affected (Hyper.Hypervisor.app_domains hv))

(* ------------------------- Single runs ------------------------------ *)

let run_cfg ?(fault = Inject.Fault.Failstop) ?(seed = 42L) ?(mech = None) () =
  let mech =
    match mech with
    | Some m -> m
    | None -> Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set)
  in
  { Inject.Run.default_config with Inject.Run.seed; fault; mech }

let test_run_failstop_detected () =
  match Inject.Run.run (run_cfg ()) with
  | Inject.Run.Detected d ->
    checkb "latency recorded" true (d.Inject.Run.recovery_latency > 0)
  | Inject.Run.Non_manifested | Inject.Run.Silent_corruption ->
    Alcotest.fail "failstop must be detected"

let test_run_deterministic () =
  let a = Inject.Run.run (run_cfg ~seed:123L ()) in
  let b = Inject.Run.run (run_cfg ~seed:123L ()) in
  checkb "same seed, same outcome" true
    (Inject.Run.outcome_class a = Inject.Run.outcome_class b);
  match (a, b) with
  | Inject.Run.Detected da, Inject.Run.Detected db ->
    checkb "same success" true (da.Inject.Run.success = db.Inject.Run.success)
  | _ -> ()

let test_run_no_recovery_always_fails () =
  let cfg = run_cfg ~mech:(Some Inject.Run.No_recovery) () in
  match Inject.Run.run cfg with
  | Inject.Run.Detected d ->
    checkb "not recovered" false d.Inject.Run.recovered;
    checkb "not a success" false d.Inject.Run.success
  | _ -> Alcotest.fail "failstop must be detected"

let test_run_register_spectrum () =
  (* Register faults produce all three outcome classes across seeds. *)
  let nm = ref 0 and sdc = ref 0 and det = ref 0 in
  for i = 0 to 119 do
    match Inject.Run.run (run_cfg ~fault:Inject.Fault.Register ~seed:(Int64.of_int i) ()) with
    | Inject.Run.Non_manifested -> incr nm
    | Inject.Run.Silent_corruption -> incr sdc
    | Inject.Run.Detected _ -> incr det
  done;
  checkb "some non-manifested" true (!nm > 0);
  checkb "some detected" true (!det > 0);
  checkb "non-manifested dominates" true (!nm > !det)

let test_run_faulting_only_scope_worse () =
  let n = 60 in
  let count scope =
    let ok = ref 0 in
    for i = 0 to n - 1 do
      let cfg =
        { (run_cfg ~seed:(Int64.of_int (1000 + i)) ()) with Inject.Run.discard_scope = scope }
      in
      match Inject.Run.run cfg with
      | Inject.Run.Detected d when d.Inject.Run.success -> incr ok
      | _ -> ()
    done;
    !ok
  in
  let all = count Inject.Run.Scope_all_threads in
  let one = count Inject.Run.Scope_faulting_only in
  checkb "discarding all threads recovers more" true (all > one)

(* ------------------------- Campaign --------------------------------- *)

let test_campaign_aggregation () =
  let r = Inject.Campaign.run ~n:25 (run_cfg ()) in
  checki "25 runs" 25 r.Inject.Campaign.totals.Inject.Campaign.runs;
  checki "all detected" 25 r.Inject.Campaign.totals.Inject.Campaign.detected;
  let rate = Sim.Stats.rate (Inject.Campaign.success_rate r) in
  checkb "rate within [0,1]" true (rate >= 0.0 && rate <= 1.0)

let test_campaign_distinct_seeds () =
  (* Different base seeds must not produce identical run streams. *)
  let a = Inject.Campaign.run ~base_seed:1L ~n:40 (run_cfg ~fault:Inject.Fault.Register ()) in
  let b = Inject.Campaign.run ~base_seed:50_000L ~n:40 (run_cfg ~fault:Inject.Fault.Register ()) in
  (* Weak check: outcome mixes may differ; totals must both be 40. *)
  checki "a runs" 40 a.Inject.Campaign.totals.Inject.Campaign.runs;
  checki "b runs" 40 b.Inject.Campaign.totals.Inject.Campaign.runs

let test_campaign_novmf_le_success () =
  let r =
    Inject.Campaign.run ~n:60 (run_cfg ~fault:Inject.Fault.Code ~seed:9L ())
  in
  checkb "noVMF <= Success" true
    (r.Inject.Campaign.totals.Inject.Campaign.no_vmf
     <= r.Inject.Campaign.totals.Inject.Campaign.successes)

(* ------------------------- Parallel engine -------------------------- *)

let snapshot_t =
  Alcotest.testable Inject.Campaign.pp_snapshot
    (fun (a : Inject.Campaign.snapshot) b -> a = b)

(* The tentpole determinism contract: the campaign aggregate is
   bit-identical no matter how many domains execute it. Register faults
   exercise every outcome class, failure notes included. *)
let test_campaign_parallel_deterministic () =
  let cfg = run_cfg ~fault:Inject.Fault.Register () in
  let seq = Inject.Campaign.run ~base_seed:500L ~jobs:1 ~n:100 cfg in
  let par =
    Inject.Campaign.run ~base_seed:500L ~jobs:4 ~oversubscribe:true ~n:100 cfg
  in
  Alcotest.check snapshot_t "jobs=1 and jobs=4 identical"
    (Inject.Campaign.snapshot seq.Inject.Campaign.totals)
    (Inject.Campaign.snapshot par.Inject.Campaign.totals);
  checki "parallel result records jobs" 4 par.Inject.Campaign.jobs;
  checkb "wall clock recorded" true (par.Inject.Campaign.wall_seconds >= 0.0)

let test_campaign_odd_chunking_deterministic () =
  (* A chunk size that does not divide n, with more workers than
     chunks' worth of tail, still yields the same aggregate. *)
  let cfg = run_cfg ~fault:Inject.Fault.Failstop () in
  let seq = Inject.Campaign.run ~base_seed:900L ~jobs:1 ~n:23 cfg in
  let par =
    Inject.Campaign.run ~base_seed:900L ~jobs:3 ~chunk:5 ~oversubscribe:true
      ~n:23 cfg
  in
  Alcotest.check snapshot_t "jobs=3 chunk=5 identical"
    (Inject.Campaign.snapshot seq.Inject.Campaign.totals)
    (Inject.Campaign.snapshot par.Inject.Campaign.totals)

let test_merge_empty () =
  let a = Inject.Campaign.make_totals () in
  let b = Inject.Campaign.make_totals () in
  let m = Inject.Campaign.merge a b in
  Alcotest.check snapshot_t "empty merge is empty"
    (Inject.Campaign.snapshot (Inject.Campaign.make_totals ()))
    (Inject.Campaign.snapshot m)

let test_merge_singleton () =
  let a = Inject.Campaign.make_totals () in
  Inject.Campaign.add_outcome a (Inject.Run.run (run_cfg ~seed:77L ()));
  let m = Inject.Campaign.merge a (Inject.Campaign.make_totals ()) in
  Alcotest.check snapshot_t "merge with empty is identity"
    (Inject.Campaign.snapshot a) (Inject.Campaign.snapshot m);
  let m' = Inject.Campaign.merge (Inject.Campaign.make_totals ()) a in
  Alcotest.check snapshot_t "merge is commutative"
    (Inject.Campaign.snapshot a) (Inject.Campaign.snapshot m')

let test_merge_overlapping_notes () =
  let a = Inject.Campaign.make_totals () in
  let b = Inject.Campaign.make_totals () in
  Inject.Campaign.note a "x";
  Inject.Campaign.note a "x";
  Inject.Campaign.note a "y";
  Inject.Campaign.note b "x";
  Inject.Campaign.note b "z";
  Inject.Campaign.note b "z";
  let m = Inject.Campaign.merge a b in
  Alcotest.check
    Alcotest.(list (pair string int))
    "overlapping keys summed, sorted"
    [ ("x", 3); ("y", 1); ("z", 2) ]
    (Inject.Campaign.failure_notes m)

let test_notes_sorted_regardless_of_order () =
  let a = Inject.Campaign.make_totals () in
  Inject.Campaign.note a "zebra";
  Inject.Campaign.note a "alpha";
  Inject.Campaign.note a "zebra";
  Alcotest.check
    Alcotest.(list (pair string int))
    "sorted view" [ ("alpha", 1); ("zebra", 2) ]
    (Inject.Campaign.failure_notes a)

let test_mean_latency_not_floored () =
  let t = Inject.Campaign.make_totals () in
  t.Inject.Campaign.latency_sum <- 5;
  t.Inject.Campaign.latency_samples <- 2;
  let r =
    {
      Inject.Campaign.config_label = "";
      totals = t;
      jobs = 1;
      wall_seconds = 0.0;
      minor_words = 0.0;
    }
  in
  match Inject.Campaign.mean_latency r with
  | Some m ->
    Alcotest.check (Alcotest.float 1e-9) "5/2 = 2.5, not 2" 2.5 m
  | None -> Alcotest.fail "expected a mean"

(* ------------------------- Worker reuse ----------------------------- *)

let metrics_snapshot_t =
  Alcotest.testable Obs.Metrics.pp_snapshot
    (fun (a : Obs.Metrics.snapshot) b -> a = b)

let small_recorder () =
  Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error ()

(* The reset-in-place determinism contract: a run on a worker machine
   that has already executed other runs (and been reset between them) is
   indistinguishable from a run on a freshly booted machine -- same
   outcome, same stats, same metric snapshot. Matrix over fault types,
   targets (setups x mechanisms) and seeds. *)
let test_reset_equivalence_matrix () =
  let faults =
    [ Inject.Fault.Failstop; Inject.Fault.Register; Inject.Fault.Code ]
  in
  let targets =
    [
      (Inject.Run.Three_appvm, Recovery.Engine.Nilihype);
      (Inject.Run.Three_appvm, Recovery.Engine.Rehype);
      (Inject.Run.One_appvm Workloads.Workload.Blkbench, Recovery.Engine.Nilihype);
    ]
  in
  let seeds = [ 7L; 43L; 1001L ] in
  List.iter
    (fun fault ->
      List.iter
        (fun (setup, mechanism) ->
          let mech = Inject.Run.Mech (mechanism, Recovery.Enhancement.full_set) in
          (* One long-lived worker per target; dirty it first with a run
             on an unrelated seed so every matrix run below goes through
             the reset path of a genuinely used machine. *)
          let wcfg =
            { (run_cfg ~fault ~seed:999_999L ~mech:(Some mech) ()) with
              Inject.Run.setup;
            }
          in
          let w = Inject.Run.prepare ~recorder:(small_recorder ()) wcfg in
          ignore (Inject.Run.execute_into w wcfg);
          List.iter
            (fun seed ->
              let cfg =
                { (run_cfg ~fault ~seed ~mech:(Some mech) ()) with
                  Inject.Run.setup;
                }
              in
              let fresh_rec = small_recorder () in
              let fresh = Inject.Run.run_obs ~recorder:fresh_rec cfg in
              let reused = Inject.Run.execute_into w cfg in
              let label =
                Printf.sprintf "%s/%s/seed=%Ld" (Inject.Fault.name fault)
                  (Recovery.Engine.mechanism_name mechanism)
                  seed
              in
              checkb (label ^ " outcome identical") true (fresh = reused);
              Alcotest.check metrics_snapshot_t (label ^ " metrics identical")
                (Obs.Recorder.metrics_snapshot fresh_rec)
                (Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w)))
            seeds)
        targets)
    faults

(* Recorded GC budget: minor words allocated per reset-in-place run,
   after warmup, on the register-fault campaign configuration. Measured
   at ~330k words/run when the reuse path landed and at ~82k after the
   allocation-profiler PR flattened the hot loop (closure-free stepper,
   limb RNG, cumulative-weight sampling); the budget carries a little
   headroom over the measurement and the test fails at >1.2x drift, so
   regressions that re-grow the hot path get caught early without being
   flaky across compiler versions. *)
let gc_minor_words_budget_per_run = 90_000.0

let test_gc_budget_per_run () =
  let cfg = run_cfg ~fault:Inject.Fault.Register () in
  let w = Inject.Run.prepare ~recorder:(small_recorder ()) cfg in
  for i = 0 to 4 do
    ignore
      (Inject.Run.execute_into w
         { cfg with Inject.Run.seed = Int64.of_int (3_000 + i) })
  done;
  let before = Gc.minor_words () in
  let n = 20 in
  for i = 0 to n - 1 do
    ignore
      (Inject.Run.execute_into w
         { cfg with Inject.Run.seed = Int64.of_int (4_000 + i) })
  done;
  let per_run = (Gc.minor_words () -. before) /. float_of_int n in
  checkb "allocates something" true (per_run > 0.0);
  if per_run > 1.2 *. gc_minor_words_budget_per_run then
    Alcotest.failf "minor words/run %.0f exceeds 1.2x budget %.0f" per_run
      gc_minor_words_budget_per_run

let test_campaign_minor_words_recorded () =
  let seq = Inject.Campaign.run ~jobs:1 ~n:4 (run_cfg ()) in
  checkb "sequential minor words measured" true
    (seq.Inject.Campaign.minor_words > 0.0);
  let par =
    Inject.Campaign.run ~jobs:2 ~oversubscribe:true ~n:4 (run_cfg ())
  in
  checkb "parallel minor words measured" true
    (par.Inject.Campaign.minor_words > 0.0)

(* ------------------------- Snapshots & clone fan-out ----------------- *)

let test_rng_save_roundtrip () =
  let rng = Sim.Rng.create 77L in
  for _ = 1 to 5 do
    ignore (Sim.Rng.int64 rng)
  done;
  let pos = Sim.Rng.save rng in
  let draw () =
    let a = Array.make 8 0L in
    for i = 0 to 7 do
      a.(i) <- Sim.Rng.int64 rng
    done;
    a
  in
  let a = draw () in
  Sim.Rng.reseed rng pos;
  checkb "save/reseed replays the stream" true (a = draw ())

(* Snapshot-after-snapshot and restore repeatability at the hypervisor
   level: retaking a snapshot moves the golden baseline; restoring the
   latest image is exact (resource ledger and clock match) and
   repeatable, and replaying the same RNG stream from the image
   reproduces the diverged state bit for bit. *)
let test_snapshot_after_snapshot () =
  let hv = boot () in
  let rng = Sim.Rng.create 11L in
  let step () =
    Hyper.Hypervisor.execute hv rng
      (Hyper.Hypervisor.Hypercall
         { domid = 1; vid = 0; kind = Hyper.Hypercalls.Update_va_mapping })
  in
  let fingerprint () =
    (Hyper.Ledger.capture hv, Sim.Clock.now hv.Hyper.Hypervisor.clock)
  in
  ignore (Hyper.Hypervisor.snapshot hv);
  for _ = 1 to 40 do
    step ()
  done;
  let im2 = Hyper.Hypervisor.snapshot hv in
  checki "snapshot drains the dirty set" 0
    (Hyper.Pfn.dirty_count hv.Hyper.Hypervisor.pfn);
  let f2 = fingerprint () in
  let pos = Sim.Rng.save rng in
  for _ = 1 to 40 do
    step ()
  done;
  let f3 = fingerprint () in
  checkb "workload moved the state" true (f3 <> f2);
  Hyper.Hypervisor.restore hv im2;
  checkb "restore returns to the snapshot point" true (fingerprint () = f2);
  checki "restore drains the dirty set" 0
    (Hyper.Pfn.dirty_count hv.Hyper.Hypervisor.pfn);
  Sim.Rng.reseed rng pos;
  for _ = 1 to 40 do
    step ()
  done;
  checkb "replay from the image reproduces the state" true (fingerprint () = f3);
  Hyper.Hypervisor.restore hv im2;
  checkb "second restore of the same image" true (fingerprint () = f2)

(* A run that died unrecovered used to force a fresh boot; now it goes
   through the same O(changed) restore, and the next run must still be
   indistinguishable from one on a freshly booted machine. *)
let test_restore_after_died () =
  let died_cfg = run_cfg ~seed:4242L ~mech:(Some Inject.Run.No_recovery) () in
  let w = Inject.Run.prepare ~recorder:(small_recorder ()) died_cfg in
  (match Inject.Run.execute_into w died_cfg with
  | Inject.Run.Detected d ->
    checkb "died unrecovered" false d.Inject.Run.recovered
  | Inject.Run.Non_manifested | Inject.Run.Silent_corruption ->
    Alcotest.fail "failstop without recovery must be detected");
  let clean_cfg = run_cfg ~fault:Inject.Fault.Register ~seed:314L () in
  let fresh_rec = small_recorder () in
  let fresh = Inject.Run.run_obs ~recorder:fresh_rec clean_cfg in
  let reused = Inject.Run.execute_into w clean_cfg in
  checkb "outcome identical after died" true (fresh = reused);
  Alcotest.check metrics_snapshot_t "metrics identical after died"
    (Obs.Recorder.metrics_snapshot fresh_rec)
    (Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w))

(* The opt-in ledger audit: every snapshot restore must come back with a
   clean orphan view (no orphaned frames, held locks, missing recurring
   timers), whatever the previous run did -- fault-free, recovered or
   died. [rewind] raises on any leak when the audit is armed. *)
let test_restore_zero_leak_audit () =
  let cfg = run_cfg ~fault:Inject.Fault.Register ~seed:21L () in
  let w = Inject.Run.prepare ~recorder:(small_recorder ()) cfg in
  Inject.Run.set_restore_audit w true;
  List.iter
    (fun cfg -> ignore (Inject.Run.execute_into w cfg))
    [
      cfg (* mostly non-manifested: fault-free machine *);
      run_cfg ~seed:22L () (* failstop, recovered *);
      run_cfg ~seed:23L ~mech:(Some Inject.Run.No_recovery) () (* died *);
    ];
  (* One explicit final rewind so the audit also covers the last run. *)
  Inject.Run.rewind w cfg;
  checkb "no leaks across restores" true true

let test_clone_deterministic () =
  let cfg = run_cfg ~fault:Inject.Fault.Register ~seed:5L () in
  let w = Inject.Run.prepare ~recorder:(small_recorder ()) cfg in
  let src = Inject.Run.prepare_clone w cfg in
  let out1 = Inject.Run.clone_into ~reseed:900L src in
  let m1 = Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w) in
  (* An interleaved different variant must not disturb the replay. *)
  ignore (Inject.Run.clone_into ~reseed:901L src);
  let out3 = Inject.Run.clone_into ~reseed:900L src in
  let m3 = Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w) in
  checkb "same variant seed, same outcome" true (out1 = out3);
  Alcotest.check metrics_snapshot_t "same variant seed, same metrics" m1 m3

(* After a fan-out leaves the worker holding a trigger-point image, a
   plain run on the same worker must still match a fresh machine (the
   rewind falls back to reset-in-place and retakes the boot image). *)
let test_execute_after_fanout_matches_fresh () =
  let cfg = run_cfg ~fault:Inject.Fault.Register ~seed:88L () in
  let w = Inject.Run.prepare ~recorder:(small_recorder ()) cfg in
  ignore (Inject.Run.clone_into (Inject.Run.prepare_clone w cfg));
  let fresh_rec = small_recorder () in
  let fresh = Inject.Run.run_obs ~recorder:fresh_rec cfg in
  let reused = Inject.Run.execute_into w cfg in
  checkb "post-fan-out run matches fresh" true (fresh = reused);
  Alcotest.check metrics_snapshot_t "post-fan-out metrics match fresh"
    (Obs.Recorder.metrics_snapshot fresh_rec)
    (Obs.Recorder.metrics_snapshot (Inject.Run.worker_recorder w))

let test_fanout_jobs_invariant () =
  let cfg = run_cfg ~fault:Inject.Fault.Register () in
  (* 22 runs at fanout 4: five full batches plus a two-run tail. *)
  let seq = Inject.Campaign.run ~base_seed:600L ~jobs:1 ~fanout:4 ~n:22 cfg in
  checki "all runs executed" 22 seq.Inject.Campaign.totals.Inject.Campaign.runs;
  let par =
    Inject.Campaign.run ~base_seed:600L ~jobs:3 ~oversubscribe:true ~fanout:4
      ~n:22 cfg
  in
  Alcotest.check snapshot_t "fanout jobs=1 vs jobs=3 identical"
    (Inject.Campaign.snapshot seq.Inject.Campaign.totals)
    (Inject.Campaign.snapshot par.Inject.Campaign.totals)

(* ------------------------- Pool chunking ---------------------------- *)

(* Every index in [0, n) visited exactly once, for adversarial
   n/jobs/chunk combinations: chunk > n, chunk = 1, prime n, tails that
   do not divide, n = 1, n = 0 and the default chunk. *)
let test_pool_coverage_exact () =
  let combos =
    [
      (0, 1, None);
      (0, 4, Some 3);
      (1, 4, Some 3);
      (23, 3, Some 5);
      (97, 4, Some 1);
      (100, 7, Some 13);
      (16, 5, Some 16);
      (5, 8, Some 100);
      (241, 3, None);
      (1024, 4, None);
    ]
  in
  List.iter
    (fun (n, jobs, chunk) ->
      let acc =
        Inject.Pool.map_reduce ~jobs ?chunk ~oversubscribe:true ~n
          ~init:(fun _ -> ref [])
          ~body:(fun acc i -> acc := i :: !acc)
          ~merge:(fun a b ->
            a := !a @ !b;
            a)
          ()
      in
      let label =
        Printf.sprintf "n=%d jobs=%d chunk=%s" n jobs
          (match chunk with Some c -> string_of_int c | None -> "default")
      in
      Alcotest.(check (list int))
        label
        (List.init n Fun.id)
        (List.sort compare !acc))
    combos

let test_pool_default_chunk_capped () =
  (* ~4 chunks per worker for moderate n, capped at [default_chunk_cap]
     so huge soaks get many checkpoint-sized chunks instead of a few
     enormous ones. *)
  checki "n=64 jobs=1" 16 (Inject.Pool.default_chunk ~n:64 ~jobs:1);
  checki "n=4000 jobs=4" 250 (Inject.Pool.default_chunk ~n:4000 ~jobs:4);
  checki "n=100000 jobs=4 capped" Inject.Pool.default_chunk_cap
    (Inject.Pool.default_chunk ~n:100_000 ~jobs:4);
  checki "n=1000000 jobs=1 capped" Inject.Pool.default_chunk_cap
    (Inject.Pool.default_chunk ~n:1_000_000 ~jobs:1);
  checki "cap value" 4096 Inject.Pool.default_chunk_cap;
  checki "floor of 1" 1 (Inject.Pool.default_chunk ~n:3 ~jobs:8)

(* ------------------------- Overhead --------------------------------- *)

let test_overhead_logging_costs_cycles () =
  let m =
    Inject.Overhead.measure ~activities:2000
      { Inject.Overhead.label = "BlkBench"; setup = Inject.Run.One_appvm Workloads.Workload.Blkbench }
  in
  checkb "nilihype > stock" true (m.Inject.Overhead.nilihype_cycles > m.Inject.Overhead.stock_cycles);
  checkb "logging dominates overhead" true
    (m.Inject.Overhead.overhead_pct > m.Inject.Overhead.overhead_nolog_pct);
  checkb "overhead positive" true (m.Inject.Overhead.overhead_pct > 0.0);
  checkb "overhead sane (<25%)" true (m.Inject.Overhead.overhead_pct < 25.0)

let test_overhead_blkbench_worst_case () =
  (* Paper: "even in the worst case (BlkBench)" -- grant-heavy I/O logs
     the most. *)
  let measure setup label =
    (Inject.Overhead.measure ~activities:4000 { Inject.Overhead.label; setup })
      .Inject.Overhead.overhead_pct
  in
  let blk = measure (Inject.Run.One_appvm Workloads.Workload.Blkbench) "Blk" in
  let unix = measure (Inject.Run.One_appvm Workloads.Workload.Unixbench) "Unix" in
  checkb "blkbench >= unixbench overhead" true (blk >= unix)

let () =
  Alcotest.run "inject"
    [
      ( "profile",
        [
          Alcotest.test_case "weights normalised" `Quick test_profile_weights_normalised;
          Alcotest.test_case "failstop crashes" `Quick test_failstop_always_crashes;
          Alcotest.test_case "register mostly benign" `Quick test_register_mostly_benign;
          Alcotest.test_case "code more aggressive" `Quick
            test_code_more_aggressive_than_register;
          Alcotest.test_case "paper campaign sizes" `Quick test_campaign_sizes_match_paper;
        ] );
      ( "corrupt",
        [
          Alcotest.test_case "pfn validated" `Quick test_corrupt_pfn_validated;
          Alcotest.test_case "sched metadata" `Quick test_corrupt_sched_breaks_audit;
          Alcotest.test_case "heap freelist" `Quick test_corrupt_heap_freelist;
          Alcotest.test_case "recovery handler" `Quick test_corrupt_recovery_handler;
          Alcotest.test_case "privvm" `Quick test_corrupt_privvm;
          Alcotest.test_case "guest frame app-only" `Quick
            test_corrupt_guest_frame_hits_app_only;
        ] );
      ( "run",
        [
          Alcotest.test_case "failstop detected" `Quick test_run_failstop_detected;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "no recovery fails" `Quick test_run_no_recovery_always_fails;
          Alcotest.test_case "register spectrum" `Slow test_run_register_spectrum;
          Alcotest.test_case "faulting-only scope worse" `Slow
            test_run_faulting_only_scope_worse;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "aggregation" `Quick test_campaign_aggregation;
          Alcotest.test_case "distinct seeds" `Quick test_campaign_distinct_seeds;
          Alcotest.test_case "noVMF <= Success" `Quick test_campaign_novmf_le_success;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow
            test_campaign_parallel_deterministic;
          Alcotest.test_case "odd chunking identical" `Quick
            test_campaign_odd_chunking_deterministic;
          Alcotest.test_case "merge empty" `Quick test_merge_empty;
          Alcotest.test_case "merge singleton" `Quick test_merge_singleton;
          Alcotest.test_case "merge overlapping notes" `Quick
            test_merge_overlapping_notes;
          Alcotest.test_case "notes sorted" `Quick test_notes_sorted_regardless_of_order;
          Alcotest.test_case "mean latency in float" `Quick test_mean_latency_not_floored;
          Alcotest.test_case "pool coverage exact" `Quick test_pool_coverage_exact;
          Alcotest.test_case "default chunk capped" `Quick
            test_pool_default_chunk_capped;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "reset equivalence matrix" `Slow
            test_reset_equivalence_matrix;
          Alcotest.test_case "gc budget per run" `Quick test_gc_budget_per_run;
          Alcotest.test_case "campaign minor words" `Quick
            test_campaign_minor_words_recorded;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "rng save/reseed roundtrip" `Quick
            test_rng_save_roundtrip;
          Alcotest.test_case "snapshot after snapshot" `Quick
            test_snapshot_after_snapshot;
          Alcotest.test_case "restore after died" `Quick test_restore_after_died;
          Alcotest.test_case "zero-leak restore audit" `Quick
            test_restore_zero_leak_audit;
          Alcotest.test_case "clone deterministic" `Quick test_clone_deterministic;
          Alcotest.test_case "plain run after fan-out" `Quick
            test_execute_after_fanout_matches_fresh;
          Alcotest.test_case "fanout jobs invariant" `Slow
            test_fanout_jobs_invariant;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "logging costs cycles" `Quick test_overhead_logging_costs_cycles;
          Alcotest.test_case "blkbench worst case" `Quick test_overhead_blkbench_worst_case;
        ] );
    ]
