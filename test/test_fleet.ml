(* Tests for incremental microreset, sharded recovery, and the tenant
   fleet scenario: fresh-vs-incremental equivalence across the whole
   corruption catalogue, sharded-vs-serial state equality and
   determinism, jobs-invariant fleet aggregates, the scan-path coverage
   and fuzz axes, and dirty-tracked heap/timer restore with zero-leak
   ledger audits. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let boot ?(config = Hyper.Config.nilihype) ?obs () =
  let clock = Sim.Clock.create () in
  Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config ?obs ~config
    ~setup:Hyper.Hypervisor.Three_appvm clock

(* Drive a deterministic mixed warmup of *completed* activities: no
   in-flight hypervisor state is left behind, so the machine's state is
   a pure function of the seed and both copies in a twin test agree. *)
let warmup hv rng ~steps =
  let loads =
    [|
      Workloads.Workload.create Workloads.Workload.Netbench ~domid:1;
      Workloads.Workload.create Workloads.Workload.Unixbench ~domid:2;
      Workloads.Workload.create Workloads.Workload.Blkbench ~domid:3;
    |]
  in
  for _ = 1 to steps do
    Sim.Clock.advance_by hv.Hyper.Hypervisor.clock
      (Sim.Time.us (20 + Sim.Rng.int rng 180));
    let w = loads.(Sim.Rng.int rng (Array.length loads)) in
    Hyper.Hypervisor.execute hv rng (Workloads.Workload.sample_activity rng w)
  done

let full = Recovery.Enhancement.full_set

(* A digest of the post-recovery machine state. Deliberately covers
   everything the recovery repairs -- the full pfn table, heap
   aggregates, domain and vCPU flags, per-CPU state, static locks and
   scheduler queues -- but summarises the timer heap *structurally*
   (size, order integrity, queued/active/recurring population): raw
   deadlines depend on the simulated time recovery finished at, which
   legitimately differs between a 22 ms full scan and a sub-ms
   incremental or sharded one. *)
let state_digest (hv : Hyper.Hypervisor.t) =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let pfn = hv.Hyper.Hypervisor.pfn in
  for i = 0 to Hyper.Hypervisor.frames hv - 1 do
    let d = Hyper.Pfn.get pfn i in
    pr "p%d:%b:%d:%s:%d\n" i d.Hyper.Pfn.validated d.Hyper.Pfn.use_count
      (Hyper.Pfn.page_type_name d.Hyper.Pfn.ptype)
      d.Hyper.Pfn.owner
  done;
  let h = hv.Hyper.Hypervisor.heap in
  pr "heap:%d:%d:%b\n" (Hyper.Heap.live_count h) (Hyper.Heap.bytes_live h)
    (Hyper.Heap.freelist_ok h);
  List.iter
    (fun (d : Hyper.Domain.t) ->
      pr "d%d:%b:%b:%b:%b:%d\n" d.Hyper.Domain.domid d.Hyper.Domain.alive
        d.Hyper.Domain.struct_ok d.Hyper.Domain.guest_failed
        d.Hyper.Domain.guest_sdc
        (List.length d.Hyper.Domain.owned_frames);
      Array.iter
        (fun (v : Hyper.Domain.vcpu) ->
          pr "v%d.%d:%s:%b:%d:%b:%b:%b:%b:%b\n" v.Hyper.Domain.domid
            v.Hyper.Domain.vid
            (Hyper.Domain.runstate_name v.Hyper.Domain.runstate)
            v.Hyper.Domain.is_current v.Hyper.Domain.curr_slot
            v.Hyper.Domain.fsgs_valid v.Hyper.Domain.retry_pending
            v.Hyper.Domain.syscall_retry_pending v.Hyper.Domain.lost_work
            (v.Hyper.Domain.in_hypercall <> None))
        d.Hyper.Domain.vcpus)
    (Hyper.Hypervisor.all_domains hv);
  Array.iter
    (fun (p : Hyper.Percpu.t) ->
      pr "c:%d:%d:%d:%d\n" p.Hyper.Percpu.local_irq_count
        p.Hyper.Percpu.in_hypercall_depth p.Hyper.Percpu.curr_domid
        p.Hyper.Percpu.curr_vcpuid)
    hv.Hyper.Hypervisor.percpu;
  Hw.Machine.iter_cpus hv.Hyper.Hypervisor.machine (fun c ->
      pr "x:%d:%b:%b\n" (Hashtbl.hash c.Hw.Cpu.state) c.Hw.Cpu.irq_enabled
        c.Hw.Cpu.in_hypervisor);
  Hyper.Spinlock.Segment.iter hv.Hyper.Hypervisor.static_segment (fun l ->
      pr "l:%b\n" (Hyper.Spinlock.is_held l));
  for cpu = 0 to Array.length hv.Hyper.Hypervisor.percpu - 1 do
    pr "q%d:%d:%b\n" cpu
      (List.length (Hyper.Sched.queued hv.Hyper.Hypervisor.sched ~cpu))
      (Hyper.Sched.current hv.Hyper.Hypervisor.sched ~cpu <> None)
  done;
  let tm = hv.Hyper.Hypervisor.timers in
  let queued = ref 0 and active = ref 0 in
  for i = 0 to Hyper.Timer_heap.size tm - 1 do
    let e = tm.Hyper.Timer_heap.arr.(i) in
    if e.Hyper.Timer_heap.queued then incr queued;
    if e.Hyper.Timer_heap.active then incr active
  done;
  pr "t:%d:%b:%d:%d:%d\n" (Hyper.Timer_heap.size tm)
    (Hyper.Timer_heap.structure_ok tm)
    !queued !active
    (List.length tm.Hyper.Timer_heap.recurring);
  Buffer.contents b

(* Boot + warmup + golden snapshot + one corruption, deterministically
   from [seed]; returns the machine ready for a recovery attempt. *)
let damaged_machine ~config ~seed target =
  let hv = boot ~config () in
  let rng = Sim.Rng.create seed in
  warmup hv rng ~steps:120;
  ignore (Hyper.Hypervisor.snapshot hv);
  Inject.Corrupt.apply hv rng target;
  hv

let recover_outcome hv =
  match Recovery.Engine.recover Recovery.Engine.Nilihype hv ~enh:full ~detected_on:0 with
  | out -> Ok out
  | exception Hyper.Crash.Hypervisor_crash c -> Error (Hyper.Crash.describe c)

(* ------------------- fresh vs incremental equivalence ---------------- *)

(* The equivalence guarantee: for every corruption in the catalogue, the
   incremental (dirty-list) consistency scan must leave the machine in
   exactly the state the full scan does, with the same outcome class.
   Identical twins differing only in [incremental_scan] are damaged
   identically and recovered with the same mechanism. *)
let test_equivalence_matrix () =
  List.iter
    (fun target ->
      let name = Inject.Corrupt.name target in
      let seed = 7_700L in
      let a = damaged_machine ~config:Hyper.Config.nilihype ~seed target in
      let bm =
        damaged_machine ~config:Hyper.Config.nilihype_incremental ~seed target
      in
      match (recover_outcome a, recover_outcome bm) with
      | Ok oa, Ok ob ->
        (match oa.Recovery.Engine.scan_mode with
        | Some Recovery.Microreset.Full_scan -> ()
        | _ -> Alcotest.failf "%s: full machine did not take the full scan" name);
        (* The incremental machine takes the dirty-list path -- except
           when the corruption smashed the tracking itself, where the
           guarantee is delivered by falling back to the full scan. *)
        (match (target, ob.Recovery.Engine.scan_mode) with
        | Inject.Corrupt.Pfn_tracker, Some Recovery.Microreset.Full_scan -> ()
        | Inject.Corrupt.Pfn_tracker, m ->
          Alcotest.failf "%s: expected full-scan fallback, got %s" name
            (match m with
            | Some s -> Recovery.Microreset.scan_mode_name s
            | None -> "none")
        | _, Some Recovery.Microreset.Incremental_scan -> ()
        | _, m ->
          Alcotest.failf "%s: expected incremental scan, got %s" name
            (match m with
            | Some s -> Recovery.Microreset.scan_mode_name s
            | None -> "none"));
        checki (name ^ ": pfn repairs agree")
          oa.Recovery.Engine.repairs.Recovery.Engine.pfn_fixed
          ob.Recovery.Engine.repairs.Recovery.Engine.pfn_fixed;
        checks (name ^ ": post-recovery state identical") (state_digest a)
          (state_digest bm)
      | Error ea, Error eb -> checks (name ^ ": same death") ea eb
      | Ok _, Error e ->
        Alcotest.failf "%s: incremental died (%s) where full recovered" name e
      | Error e, Ok _ ->
        Alcotest.failf "%s: full died (%s) where incremental recovered" name e)
    (Array.to_list Inject.Corrupt.all)

(* A recovery attempt that dies invalidates the dirty tracking, so the
   next attempt on the same instance must take the full scan even with
   [incremental_scan] on -- the automatic fallback the equivalence
   guarantee rests on after [died]. *)
let test_fallback_after_died () =
  let hv = boot ~config:Hyper.Config.nilihype_incremental () in
  let rng = Sim.Rng.create 8_800L in
  warmup hv rng ~steps:80;
  ignore (Hyper.Hypervisor.snapshot hv);
  hv.Hyper.Hypervisor.recovery_handler_ok <- false;
  (match recover_outcome hv with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recovery should die with a corrupted handler");
  checkb "tracking invalidated by the died attempt" false
    (Hyper.Pfn.tracking_usable hv.Hyper.Hypervisor.pfn);
  hv.Hyper.Hypervisor.recovery_handler_ok <- true;
  match recover_outcome hv with
  | Ok out ->
    (match out.Recovery.Engine.scan_mode with
    | Some Recovery.Microreset.Full_scan -> ()
    | _ -> Alcotest.fail "post-died recovery must fall back to the full scan")
  | Error e -> Alcotest.failf "second recovery died: %s" e

(* ------------------------- sharded recovery -------------------------- *)

(* Sharded recovery must converge to the serial microreset's machine
   state: the per-descriptor repair is order-independent, so per-domain
   shards and one serial sweep are different schedules of the same
   repair. *)
let test_sharded_equals_serial () =
  List.iter
    (fun target ->
      let name = Inject.Corrupt.name target in
      let seed = 9_900L in
      let config = Hyper.Config.nilihype_incremental in
      let a = damaged_machine ~config ~seed target in
      let bm = damaged_machine ~config ~seed target in
      let serial = recover_outcome a in
      let sharded =
        match Recovery.Shard.recover bm ~enh:full ~detected_on:0 with
        | r -> Ok r.Recovery.Shard.latency
        | exception Hyper.Crash.Hypervisor_crash c ->
          Error (Hyper.Crash.describe c)
      in
      match (serial, sharded) with
      | Ok _, Ok _ ->
        checks (name ^ ": sharded state = serial state") (state_digest a)
          (state_digest bm)
      | Error ea, Error eb -> checks (name ^ ": same death") ea eb
      | Ok _, Error e -> Alcotest.failf "%s: sharded died (%s)" name e
      | Error e, Ok _ -> Alcotest.failf "%s: serial died (%s)" name e)
    [
      Inject.Corrupt.Pfn_validated_flip; Inject.Corrupt.Pfn_use_count_skew;
      Inject.Corrupt.Pfn_type_scramble; Inject.Corrupt.Sched_metadata;
      Inject.Corrupt.Guest_frame; Inject.Corrupt.Pfn_tracker;
    ]

(* Two identical sharded recoveries must produce identical results --
   lane assignment, spans and resume offsets included -- and every
   domain must get a resume offset no later than the total latency. *)
let test_sharded_deterministic () =
  let mk () =
    let hv =
      damaged_machine ~config:Hyper.Config.nilihype_incremental ~seed:4_400L
        Inject.Corrupt.Pfn_use_count_skew
    in
    Recovery.Shard.recover hv ~enh:full ~detected_on:0
  in
  let r1 = mk () and r2 = mk () in
  checkb "identical sharded results" true (r1 = r2);
  let domains = List.map fst r1.Recovery.Shard.resume_offsets in
  (* Three_appvm at this point: PrivVM 0, two AppVMs, the idle domain. *)
  checkb "every domain has a resume offset" true
    (List.for_all (fun d -> List.mem d domains) [ 0; 1; 2; 1000 ]);
  List.iter
    (fun (domid, off) ->
      checkb (Printf.sprintf "domain %d resumes within the recovery" domid)
        true
        (off > 0 && off <= r1.Recovery.Shard.latency))
    r1.Recovery.Shard.resume_offsets;
  (* The whole point of sharding: some unaffected domain resumes before
     the end-to-end latency. *)
  checkb "some domain resumes early" true
    (List.exists
       (fun (_, off) -> off < r1.Recovery.Shard.latency)
       r1.Recovery.Shard.resume_offsets)

(* --------------------------- fleet scenario -------------------------- *)

let small_fleet =
  {
    Fleet.default_config with
    Fleet.tenants = 32;
    trials = 2;
    victims = 2;
    warmup_activities = 120;
  }

let test_fleet_jobs_invariant () =
  List.iter
    (fun mech ->
      let a = Fleet.run ~jobs:1 small_fleet mech in
      let b = Fleet.run ~jobs:3 ~oversubscribe:true small_fleet mech in
      checkb
        (Fleet.mechanism_name mech ^ ": aggregates jobs-invariant")
        true
        (a.Fleet.metrics = b.Fleet.metrics))
    Fleet.all_mechanisms

(* The two tail-latency claims, at test scale: the incremental
   microreset recovers in at most 15% of the full scan's latency at
   reference geometry, and sharded recovery's request p99 through the
   event is strictly below serial (full-scan) recovery's. *)
let test_fleet_gates () =
  let full_r = Fleet.run small_fleet Fleet.Serial_full in
  let incr_r = Fleet.run small_fleet Fleet.Serial_incremental in
  let shard_r = Fleet.run small_fleet Fleet.Sharded in
  List.iter
    (fun r ->
      checki
        (Fleet.mechanism_name r.Fleet.mech ^ ": requests = histogram samples")
        (Fleet.requests r) (Fleet.request_samples r);
      checki
        (Fleet.mechanism_name r.Fleet.mech ^ ": one recovery per trial")
        small_fleet.Fleet.trials
        (Fleet.scan_incremental r + Fleet.scan_full r))
    [ full_r; incr_r; shard_r ];
  checki "serial-full takes the full scan every trial" small_fleet.Fleet.trials
    (Fleet.scan_full full_r);
  checki "serial-incremental takes the dirty path every trial"
    small_fleet.Fleet.trials
    (Fleet.scan_incremental incr_r);
  let fm = Fleet.recovery_mean_ns full_r in
  let im = Fleet.recovery_mean_ns incr_r in
  checkb
    (Printf.sprintf "incremental mean %d <= 15%% of full mean %d" im fm)
    true
    (im * 100 <= fm * 15);
  let p99f = Fleet.request_quantile full_r 0.99 in
  let p99s = Fleet.request_quantile shard_r 0.99 in
  checkb
    (Printf.sprintf "sharded p99 %d < serial-full p99 %d" p99s p99f)
    true (p99s < p99f);
  checkb "full-scan stall violates the SLO somewhere" true
    (Fleet.slo_violations full_r > 0);
  checki "sharded recovery stays inside the SLO" 0
    (Fleet.slo_violations shard_r)

(* --------------------- coverage and fuzz axes ------------------------ *)

(* The recovery path taken is a fuzz coverage point: the scan counters
   land in the metrics snapshot, and [Obs.Coverage.points] derives
   c:<counter>:<bucket> points from nonzero counters. *)
let test_scan_path_is_coverage_point () =
  let recorder = Obs.Recorder.create () in
  let hv = boot ~config:Hyper.Config.nilihype_incremental ~obs:recorder () in
  let rng = Sim.Rng.create 3_300L in
  warmup hv rng ~steps:60;
  ignore (Hyper.Hypervisor.snapshot hv);
  Inject.Corrupt.apply hv rng Inject.Corrupt.Pfn_validated_flip;
  (match recover_outcome hv with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recovery died: %s" e);
  let points =
    Obs.Coverage.points ~outcome:"recovered"
      (Obs.Recorder.metrics_snapshot recorder)
  in
  let has prefix =
    List.exists
      (fun p ->
        String.length p >= String.length prefix
        && String.sub p 0 (String.length prefix) = prefix)
      points
  in
  checkb "incremental scan path covered" true
    (has "c:recovery.pfn_scan.incremental:");
  checkb "full scan path not taken" false (has "c:recovery.pfn_scan.full:")

(* Fuzz op tag 4 carries the recovery-path axis in its spare arg bits:
   bit 2 of the argument toggles [p_incremental], and [config_of]
   propagates it into the run's hypervisor config. *)
let test_fuzz_incremental_axis () =
  let base_seed = 5_000L in
  let op ~arg = (arg lsl 3) lor 4 in
  (* args 6 and 0: same crash mode (arg mod 3 = 0), bit 2 differs *)
  let on = Fuzz.Input.apply ~base_seed [ op ~arg:0b110 ] in
  let off = Fuzz.Input.apply ~base_seed [ op ~arg:0b000 ] in
  checkb "bit 2 set turns the incremental scan on" true
    on.Fuzz.Input.p_incremental;
  checkb "bit 2 clear leaves it off" false off.Fuzz.Input.p_incremental;
  checki "crash mode decodes from the same op" on.Fuzz.Input.p_crash
    off.Fuzz.Input.p_crash;
  checkb "the axis is part of the point identity" false
    (Fuzz.Input.point_key on = Fuzz.Input.point_key off);
  let base = Inject.Run.default_config in
  let con = Fuzz.Input.config_of ~base on in
  let coff = Fuzz.Input.config_of ~base off in
  checkb "config_of turns the scan on" true
    con.Inject.Run.hv_config.Hyper.Config.incremental_scan;
  checkb "config_of leaves the scan off" false
    coff.Inject.Run.hv_config.Hyper.Config.incremental_scan

(* ----------------- dirty-tracked heap and timer restore ------------- *)

let test_heap_dirty_restore () =
  let h = Hyper.Heap.create () in
  let keep = Hyper.Heap.alloc h Hyper.Heap.Generic in
  Hyper.Heap.snapshot h;
  checki "snapshot drains the dirty list" 0 (Hyper.Heap.dirty_count h);
  let tmp = Hyper.Heap.alloc h ~size:128 Hyper.Heap.Timer_data in
  Hyper.Heap.free h keep;
  Hyper.Heap.corrupt_header tmp;
  Hyper.Heap.corrupt_freelist h "test";
  checkb "mutations land on the dirty list" true (Hyper.Heap.dirty_count h > 0);
  Hyper.Heap.restore h;
  checki "restore rewinds to the golden population" 1 (Hyper.Heap.live_count h);
  checkb "freed object live again" true keep.Hyper.Heap.live;
  checkb "allocated object gone" false tmp.Hyper.Heap.live;
  checkb "freelist integrity restored" true (Hyper.Heap.freelist_ok h);
  checki "restore drains the dirty list" 0 (Hyper.Heap.dirty_count h)

let test_timer_dirty_restore () =
  let t = Hyper.Timer_heap.create () in
  ignore (Hyper.Timer_heap.add t ~deadline:500 Hyper.Timer_heap.Watchdog_tick);
  Hyper.Timer_heap.snapshot t;
  let size0 = Hyper.Timer_heap.size t in
  ignore (Hyper.Timer_heap.add t ~deadline:100 Hyper.Timer_heap.Watchdog_tick);
  ignore (Hyper.Timer_heap.pop t);
  Hyper.Timer_heap.corrupt_structure t;
  checkb "mutations land on the dirty list" true
    (Hyper.Timer_heap.dirty_count t > 0);
  Hyper.Timer_heap.restore t;
  checki "size restored" size0 (Hyper.Timer_heap.size t);
  checkb "structure integrity restored" true (Hyper.Timer_heap.structure_ok t);
  checki "restore drains the dirty list" 0 (Hyper.Timer_heap.dirty_count t);
  match Hyper.Timer_heap.next_deadline t with
  | Some d -> checki "golden deadline back at the root" 500 d
  | None -> Alcotest.fail "restored heap is empty"

(* Restores must leak nothing: the resource ledger after a
   snapshot -> damage -> restore round trip is identical to the golden
   capture, whatever the workload dirtied in between. *)
let test_restore_zero_leak () =
  let hv = boot ~config:Hyper.Config.nilihype_incremental () in
  let rng = Sim.Rng.create 6_600L in
  warmup hv rng ~steps:100;
  let image = Hyper.Hypervisor.snapshot hv in
  let before = Hyper.Ledger.capture hv in
  warmup hv rng ~steps:60;
  Inject.Corrupt.apply hv rng Inject.Corrupt.Pfn_use_count_skew;
  Inject.Corrupt.apply hv rng Inject.Corrupt.Timer_deadline;
  Hyper.Hypervisor.restore hv image;
  let after = Hyper.Ledger.capture hv in
  let d = Hyper.Ledger.diff ~before ~after in
  checkb "no resource leaked across restore" true (Hyper.Ledger.no_leak d);
  checki "no pages leaked" 0 (Hyper.Ledger.leaked_pages d);
  checki "pfn dirty list drained" 0
    (Hyper.Pfn.dirty_count hv.Hyper.Hypervisor.pfn);
  checki "heap dirty list drained" 0
    (Hyper.Heap.dirty_count hv.Hyper.Hypervisor.heap);
  checki "timer dirty list drained" 0
    (Hyper.Timer_heap.dirty_count hv.Hyper.Hypervisor.timers)

let () =
  Alcotest.run "fleet"
    [
      ( "equivalence",
        [
          Alcotest.test_case "fresh vs incremental across the catalogue"
            `Quick test_equivalence_matrix;
          Alcotest.test_case "full-scan fallback after died" `Quick
            test_fallback_after_died;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "sharded state equals serial" `Quick
            test_sharded_equals_serial;
          Alcotest.test_case "deterministic, early resume offsets" `Quick
            test_sharded_deterministic;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "aggregates jobs-invariant" `Quick
            test_fleet_jobs_invariant;
          Alcotest.test_case "latency gates hold at test scale" `Quick
            test_fleet_gates;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "scan path is a coverage point" `Quick
            test_scan_path_is_coverage_point;
          Alcotest.test_case "fuzz tag-4 incremental axis" `Quick
            test_fuzz_incremental_axis;
        ] );
      ( "dirty-tracking",
        [
          Alcotest.test_case "heap dirty restore" `Quick test_heap_dirty_restore;
          Alcotest.test_case "timer dirty restore" `Quick
            test_timer_dirty_restore;
          Alcotest.test_case "zero-leak restore audit" `Quick
            test_restore_zero_leak;
        ] );
    ]
