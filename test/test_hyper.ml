(* Tests for the simulated hypervisor: page frames, heap, locks, timer
   heap, scheduler, journal, hypercalls, activities, audit. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let crashes f =
  match f () with
  | _ -> false
  | exception Hyper.Crash.Hypervisor_crash _ -> true

let boot ?(setup = Hyper.Hypervisor.Three_appvm) ?(config = Hyper.Config.nilihype) () =
  let clock = Sim.Clock.create () in
  Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config ~config ~setup clock

(* ------------------------- Pfn -------------------------------------- *)

let test_pfn_alloc_free_cycle () =
  let t = Hyper.Pfn.create ~frames:16 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Writable in
  checki "one ref" 1 d.Hyper.Pfn.use_count;
  Hyper.Pfn.put_page d;
  checkb "freed" true (d.Hyper.Pfn.ptype = Hyper.Pfn.Free);
  checki "free count" 16 (Hyper.Pfn.free_frames t)

let test_pfn_get_put_balance () =
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Writable in
  Hyper.Pfn.get_page d;
  Hyper.Pfn.get_page d;
  checki "3 refs" 3 d.Hyper.Pfn.use_count;
  Hyper.Pfn.put_page d;
  Hyper.Pfn.put_page d;
  checki "1 ref" 1 d.Hyper.Pfn.use_count

let test_pfn_double_validate_panics () =
  (* The non-idempotent retry hazard of Section IV. *)
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Page_table in
  Hyper.Pfn.validate d;
  checkb "second validate panics" true (crashes (fun () -> Hyper.Pfn.validate d))

let test_pfn_double_invalidate_panics () =
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Page_table in
  Hyper.Pfn.validate d;
  Hyper.Pfn.invalidate d;
  checkb "double invalidate panics" true
    (crashes (fun () -> Hyper.Pfn.invalidate d))

let test_pfn_underflow_panics () =
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Writable in
  Hyper.Pfn.put_page d;
  checkb "double put panics" true (crashes (fun () -> Hyper.Pfn.put_page d))

let test_pfn_get_on_free_panics () =
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.get t 0 in
  checkb "get_page on free frame" true (crashes (fun () -> Hyper.Pfn.get_page d))

let test_pfn_scan_fixes_validated_zero_refs () =
  (* The validation-bit / use-counter disagreement the recovery scan
     repairs (Section VII-B). *)
  let t = Hyper.Pfn.create ~frames:8 in
  let d = Hyper.Pfn.get t 3 in
  d.Hyper.Pfn.validated <- true; (* corrupt: validated but Free, 0 refs *)
  checki "one inconsistent" 1 (Hyper.Pfn.count_inconsistent t);
  let fixed = Hyper.Pfn.scan_and_fix t in
  checki "fixed one" 1 fixed;
  checki "consistent after scan" 0 (Hyper.Pfn.count_inconsistent t)

let test_pfn_scan_fixes_orphan_typed_page () =
  let t = Hyper.Pfn.create ~frames:8 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Writable in
  d.Hyper.Pfn.use_count <- 0; (* corrupt: typed page with no refs *)
  ignore (Hyper.Pfn.scan_and_fix t);
  checkb "returned to free" true (d.Hyper.Pfn.ptype = Hyper.Pfn.Free);
  checki "consistent" 0 (Hyper.Pfn.count_inconsistent t)

let test_pfn_scan_idempotent () =
  let t = Hyper.Pfn.create ~frames:8 in
  (Hyper.Pfn.get t 2).Hyper.Pfn.validated <- true;
  ignore (Hyper.Pfn.scan_and_fix t);
  checki "second scan fixes nothing" 0 (Hyper.Pfn.scan_and_fix t)

(* ------------------------- Spinlock --------------------------------- *)

let test_lock_acquire_release () =
  let l = Hyper.Spinlock.create ~name:"t" ~location:Hyper.Spinlock.Static in
  Hyper.Spinlock.acquire l ~cpu:0;
  checkb "held" true (Hyper.Spinlock.is_held l);
  Hyper.Spinlock.release l ~cpu:0;
  checkb "released" false (Hyper.Spinlock.is_held l)

let test_lock_dead_holder_hangs () =
  let l = Hyper.Spinlock.create ~name:"t" ~location:Hyper.Spinlock.Heap in
  Hyper.Spinlock.acquire l ~cpu:1;
  (* cpu1's thread is discarded; cpu0 now spins forever -> watchdog. *)
  checkb "spin on dead holder" true
    (crashes (fun () -> Hyper.Spinlock.acquire l ~cpu:0))

let test_lock_recursive_panics () =
  let l = Hyper.Spinlock.create ~name:"t" ~location:Hyper.Spinlock.Static in
  Hyper.Spinlock.acquire l ~cpu:0;
  checkb "recursive acquisition" true
    (crashes (fun () -> Hyper.Spinlock.acquire l ~cpu:0))

let test_lock_wrong_release_panics () =
  let l = Hyper.Spinlock.create ~name:"t" ~location:Hyper.Spinlock.Static in
  Hyper.Spinlock.acquire l ~cpu:0;
  checkb "release by non-holder" true
    (crashes (fun () -> Hyper.Spinlock.release l ~cpu:1));
  Hyper.Spinlock.force_unlock l;
  checkb "release unheld" true (crashes (fun () -> Hyper.Spinlock.release l ~cpu:0))

let test_static_segment_unlock_all () =
  (* The "Unlock static locks" enhancement: the linker-script lock
     segment is walked and every held lock released. *)
  let seg = Hyper.Spinlock.Segment.create () in
  let mk name =
    let l = Hyper.Spinlock.create ~name ~location:Hyper.Spinlock.Static in
    Hyper.Spinlock.Segment.register seg l;
    l
  in
  let a = mk "a" and b = mk "b" and _c = mk "c" in
  Hyper.Spinlock.acquire a ~cpu:0;
  Hyper.Spinlock.acquire b ~cpu:2;
  checki "released two" 2 (Hyper.Spinlock.Segment.unlock_all seg);
  checkb "none held" false (Hyper.Spinlock.Segment.any_held seg)

let test_segment_rejects_heap_lock () =
  let seg = Hyper.Spinlock.Segment.create () in
  let l = Hyper.Spinlock.create ~name:"h" ~location:Hyper.Spinlock.Heap in
  Alcotest.check_raises "heap lock in static segment"
    (Invalid_argument "Spinlock.Segment.register: not a static lock") (fun () ->
      Hyper.Spinlock.Segment.register seg l)

(* ------------------------- Heap ------------------------------------- *)

let test_heap_alloc_free () =
  let h = Hyper.Heap.create () in
  let o = Hyper.Heap.alloc h ~size:128 Hyper.Heap.Generic in
  checki "bytes live" 128 (Hyper.Heap.bytes_live h);
  Hyper.Heap.free h o;
  checki "bytes after free" 0 (Hyper.Heap.bytes_live h)

let test_heap_double_free_panics () =
  let h = Hyper.Heap.create () in
  let o = Hyper.Heap.alloc h Hyper.Heap.Generic in
  Hyper.Heap.free h o;
  checkb "double free" true (crashes (fun () -> Hyper.Heap.free h o))

let test_heap_freelist_corruption_hangs () =
  let h = Hyper.Heap.create () in
  Hyper.Heap.corrupt_freelist h "test";
  checkb "alloc hangs" true
    (crashes (fun () -> Hyper.Heap.alloc h Hyper.Heap.Generic))

let test_heap_rebuild_repairs_freelist () =
  (* ReHype's "recreate the new heap" reboot step. *)
  let h = Hyper.Heap.create () in
  let o = Hyper.Heap.alloc h Hyper.Heap.Generic in
  Hyper.Heap.corrupt_freelist h "test";
  Hyper.Heap.rebuild_for_reboot h;
  checkb "freelist ok" true (Hyper.Heap.freelist_ok h);
  checkb "live object preserved" true o.Hyper.Heap.live;
  ignore (Hyper.Heap.alloc h Hyper.Heap.Generic)

let test_heap_release_locks () =
  (* The heap-lock release mechanism NiLiHype reuses from ReHype. *)
  let h = Hyper.Heap.create () in
  let l1 = Hyper.Spinlock.create ~name:"l1" ~location:Hyper.Spinlock.Heap in
  let l2 = Hyper.Spinlock.create ~name:"l2" ~location:Hyper.Spinlock.Heap in
  ignore (Hyper.Heap.alloc h (Hyper.Heap.Lock l1));
  ignore (Hyper.Heap.alloc h (Hyper.Heap.Lock l2));
  Hyper.Spinlock.acquire l1 ~cpu:0;
  checki "released one" 1 (Hyper.Heap.release_locks h);
  checkb "no heap lock held" false (Hyper.Heap.any_heap_lock_held h)

(* ------------------------- Timer heap ------------------------------- *)

let test_timer_heap_order () =
  let th = Hyper.Timer_heap.create () in
  ignore (Hyper.Timer_heap.add th ~deadline:30 Hyper.Timer_heap.Generic_oneshot);
  ignore (Hyper.Timer_heap.add th ~deadline:10 Hyper.Timer_heap.Generic_oneshot);
  ignore (Hyper.Timer_heap.add th ~deadline:20 Hyper.Timer_heap.Generic_oneshot);
  let d () =
    match Hyper.Timer_heap.pop th with
    | Some e -> e.Hyper.Timer_heap.deadline
    | None -> -1
  in
  checki "10" 10 (d ());
  checki "20" 20 (d ());
  checki "30" 30 (d ())

let test_timer_pop_due_only () =
  let th = Hyper.Timer_heap.create () in
  ignore (Hyper.Timer_heap.add th ~deadline:100 Hyper.Timer_heap.Generic_oneshot);
  checkb "not due" true (Hyper.Timer_heap.pop_due th ~now:50 = None);
  checkb "due" true (Hyper.Timer_heap.pop_due th ~now:100 <> None)

let test_timer_recurring_requeue () =
  let th = Hyper.Timer_heap.create () in
  let e = Hyper.Timer_heap.add th ~deadline:10 ~period:100 Hyper.Timer_heap.Time_sync in
  (match Hyper.Timer_heap.pop_due th ~now:10 with
  | Some e' -> checkb "same event" true (e == e')
  | None -> Alcotest.fail "expected due event");
  checkb "not queued mid-handler" false e.Hyper.Timer_heap.queued;
  Hyper.Timer_heap.requeue th e ~now:10;
  checkb "requeued" true e.Hyper.Timer_heap.queued;
  checkb "next deadline = now+period" true
    (Hyper.Timer_heap.next_deadline th = Some 110)

let test_timer_reactivate_recurring () =
  (* The "Reactivate recurring timer events" enhancement. *)
  let th = Hyper.Timer_heap.create () in
  let e = Hyper.Timer_heap.add th ~deadline:10 ~period:100 Hyper.Timer_heap.Time_sync in
  ignore (Hyper.Timer_heap.pop_due th ~now:10);
  (* handler abandoned before requeue: the event is lost *)
  checki "one missing" 1 (List.length (Hyper.Timer_heap.missing_recurring th));
  checki "reactivated" 1 (Hyper.Timer_heap.reactivate_recurring th ~now:50);
  checkb "queued again" true e.Hyper.Timer_heap.queued;
  checki "none missing" 0 (List.length (Hyper.Timer_heap.missing_recurring th))

let test_timer_structure_corruption_panics () =
  let th = Hyper.Timer_heap.create () in
  ignore (Hyper.Timer_heap.add th ~deadline:10 Hyper.Timer_heap.Generic_oneshot);
  Hyper.Timer_heap.corrupt_structure th;
  checkb "pop panics" true (crashes (fun () -> Hyper.Timer_heap.pop th))

let test_timer_rebuild_for_reboot () =
  let th = Hyper.Timer_heap.create () in
  ignore (Hyper.Timer_heap.add th ~deadline:10 ~period:50 Hyper.Timer_heap.Time_sync);
  ignore (Hyper.Timer_heap.add th ~deadline:20 Hyper.Timer_heap.Generic_oneshot);
  Hyper.Timer_heap.corrupt_structure th;
  Hyper.Timer_heap.rebuild_for_reboot th ~now:1000;
  checkb "structure repaired" true (Hyper.Timer_heap.structure_ok th);
  (* Recurring events re-registered; the oneshot is gone (fresh heap). *)
  checki "one event" 1 (Hyper.Timer_heap.size th);
  checkb "heap property" true (Hyper.Timer_heap.heap_property_holds th)

let test_timer_heap_property_random () =
  let th = Hyper.Timer_heap.create () in
  let r = Sim.Rng.create 17L in
  for _ = 1 to 200 do
    ignore
      (Hyper.Timer_heap.add th ~deadline:(Sim.Rng.int r 1000)
         Hyper.Timer_heap.Generic_oneshot)
  done;
  checkb "heap property holds" true (Hyper.Timer_heap.heap_property_holds th)

(* ------------------------- Journal ---------------------------------- *)

let test_journal_undo_refcount () =
  let j = Hyper.Journal.create () in
  Hyper.Journal.set_enabled j true;
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Writable in
  Hyper.Journal.log j (Hyper.Journal.Use_count_delta (d, 1));
  Hyper.Pfn.get_page d;
  checki "2 refs" 2 d.Hyper.Pfn.use_count;
  Hyper.Journal.undo_all j;
  checki "undone to 1" 1 d.Hyper.Pfn.use_count

let test_journal_undo_validation () =
  let j = Hyper.Journal.create () in
  Hyper.Journal.set_enabled j true;
  let t = Hyper.Pfn.create ~frames:4 in
  let d = Hyper.Pfn.alloc_frame t ~owner:1 ~ptype:Hyper.Pfn.Page_table in
  Hyper.Journal.log j (Hyper.Journal.Validated_set d);
  Hyper.Pfn.validate d;
  Hyper.Journal.undo_all j;
  checkb "validation undone" false d.Hyper.Pfn.validated;
  (* After undo, a retry can validate again without panicking. *)
  Hyper.Pfn.validate d;
  checkb "retry validates cleanly" true d.Hyper.Pfn.validated

let test_journal_disabled_logs_nothing () =
  let j = Hyper.Journal.create () in
  let x = ref 0 in
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 5));
  x := 5;
  Hyper.Journal.undo_all j;
  checki "nothing undone when disabled" 5 !x

let test_journal_commit_clears () =
  let j = Hyper.Journal.create () in
  Hyper.Journal.set_enabled j true;
  let x = ref 0 in
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 5));
  x := 5;
  Hyper.Journal.commit j;
  Hyper.Journal.undo_all j;
  checki "committed changes stay" 5 !x

let test_journal_undo_order () =
  (* Entries must be undone newest-first. *)
  let j = Hyper.Journal.create () in
  Hyper.Journal.set_enabled j true;
  let log = ref [] in
  Hyper.Journal.log j (Hyper.Journal.Undo_fn (fun () -> log := 1 :: !log));
  Hyper.Journal.log j (Hyper.Journal.Undo_fn (fun () -> log := 2 :: !log));
  Hyper.Journal.undo_all j;
  Alcotest.check (Alcotest.list Alcotest.int) "newest first" [ 1; 2 ] !log

let test_journal_depth_tracks_entries () =
  let j = Hyper.Journal.create () in
  Hyper.Journal.set_enabled j true;
  let x = ref 0 in
  checki "empty journal" 0 (Hyper.Journal.depth j);
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 1));
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 2));
  checki "two entries" 2 (Hyper.Journal.depth j);
  Hyper.Journal.undo_all j;
  checki "zero after undo_all" 0 (Hyper.Journal.depth j);
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 3));
  checki "one entry" 1 (Hyper.Journal.depth j);
  Hyper.Journal.commit j;
  checki "zero after commit" 0 (Hyper.Journal.depth j);
  (* Logging while disabled records nothing, so depth stays 0. *)
  Hyper.Journal.set_enabled j false;
  Hyper.Journal.log j (Hyper.Journal.Counter_delta (x, 4));
  checki "disabled journal stays empty" 0 (Hyper.Journal.depth j)

(* ------------------------- Boot / domains --------------------------- *)

let test_boot_three_appvm () =
  let hv = boot () in
  checki "privvm + 2 app + idle" 4 (List.length (Hyper.Hypervisor.all_domains hv));
  checki "2 app domains" 2 (List.length (Hyper.Hypervisor.app_domains hv));
  checkb "privvm exists" true (Hyper.Hypervisor.privvm hv).Hyper.Domain.privileged;
  checkb "idle exists" true (Hyper.Hypervisor.idle_domain hv).Hyper.Domain.is_idle

let test_boot_audit_clean () =
  let hv = boot () in
  let report = Hyper.Hypervisor.audit hv in
  checkb "fresh system audits clean" true (Hyper.Hypervisor.audit_clean report)

let test_boot_apics_armed () =
  let hv = boot () in
  Hw.Machine.iter_cpus hv.Hyper.Hypervisor.machine (fun c ->
      checkb "apic armed" true (Hw.Apic.timer_armed c.Hw.Cpu.apic))

let test_domain_create_destroy () =
  let hv = boot () in
  let free_before = Hyper.Pfn.free_frames hv.Hyper.Hypervisor.pfn in
  let d =
    Hyper.Hypervisor.create_domain_internal hv ~privileged:false ~vcpu_pins:[ 4 ]
      ~mem_frames:32
  in
  checkb "fewer free frames" true
    (Hyper.Pfn.free_frames hv.Hyper.Hypervisor.pfn < free_before);
  Hyper.Hypervisor.destroy_domain_internal hv d;
  checki "frames returned" free_before (Hyper.Pfn.free_frames hv.Hyper.Hypervisor.pfn);
  checkb "audit clean after destroy" true
    (Hyper.Hypervisor.audit_clean (Hyper.Hypervisor.audit hv))

(* ------------------------- Activities ------------------------------- *)

let run_n hv rng n =
  let bench = Workloads.Workload.create Workloads.Workload.Unixbench ~domid:1 in
  for _ = 1 to n do
    Hyper.Hypervisor.execute hv rng (Workloads.Workload.sample_activity rng bench)
  done

let test_healthy_workload_stays_clean () =
  let hv = boot () in
  let rng = Sim.Rng.create 123L in
  run_n hv rng 500;
  checkb "audit clean after 500 activities" true
    (Hyper.Hypervisor.audit_clean (Hyper.Hypervisor.audit hv))

let test_hypercall_completes_and_clears_record () =
  let hv = boot () in
  let rng = Sim.Rng.create 5L in
  Hyper.Hypervisor.execute hv rng
    (Hyper.Hypervisor.Hypercall
       { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 2 });
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "record cleared" true (v.Hyper.Domain.in_hypercall = None)

let test_abandoned_hypercall_leaves_partial_state () =
  let hv = boot () in
  let rng = Sim.Rng.create 5L in
  Hyper.Hypervisor.execute_partial hv rng
    (Hyper.Hypervisor.Hypercall
       { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 2 })
    ~stop_at:4;
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  checkb "in-flight record remains" true (v.Hyper.Domain.in_hypercall <> None);
  (* The per-domain page lock is stuck held. *)
  checkb "audit dirty" false
    (Hyper.Hypervisor.audit_clean (Hyper.Hypervisor.audit hv))

let test_abandoned_timer_tick_disarms_apic () =
  let hv = boot () in
  let rng = Sim.Rng.create 5L in
  Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Timer_tick 1) ~stop_at:3;
  let apic = (Hw.Machine.cpu hv.Hyper.Hypervisor.machine 1).Hw.Cpu.apic in
  checkb "apic left disarmed" false (Hw.Apic.timer_armed apic)

let test_retry_without_undo_can_panic () =
  (* Force an unenhanced-style retry: disable logging so the journal is
     empty, abandon an mmu_update mid-flight past its critical updates,
     then retry. *)
  let hv = boot ~config:Hyper.Config.stock () in
  let rng = Sim.Rng.create 77L in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let v = Hyper.Domain.vcpu dom 0 in
  (* Abandon late in the handler, after unpin/validate steps. *)
  Hyper.Hypervisor.execute_partial hv rng
    (Hyper.Hypervisor.Hypercall
       { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 1 })
    ~stop_at:8;
  (match v.Hyper.Domain.in_hypercall with
  | None -> Alcotest.fail "expected in-flight hypercall"
  | Some _ -> ());
  Hyper.Spinlock.force_unlock dom.Hyper.Domain.page_lock;
  checkb "naive retry panics" true
    (crashes (fun () -> Hyper.Hypervisor.retry_hypercall hv rng v))

let test_retry_with_undo_succeeds () =
  let hv = boot ~config:Hyper.Config.nilihype () in
  let rng = Sim.Rng.create 42L in
  let dom = Option.get (Hyper.Hypervisor.domain hv 1) in
  let v = Hyper.Domain.vcpu dom 0 in
  (* Find a seed/abandon point where the record is journaled
     (mitigation_coverage < 1, so sample until we get an enhanced one). *)
  let rec try_once attempt =
    if attempt > 20 then Alcotest.fail "no enhanced record sampled"
    else begin
      Hyper.Hypervisor.execute_partial hv rng
        (Hyper.Hypervisor.Hypercall
           { domid = 1; vid = 0; kind = Hyper.Hypercalls.Mmu_update 1 })
        ~stop_at:8;
      match v.Hyper.Domain.in_hypercall with
      | Some r when r.Hyper.Hypercalls.enhanced ->
        Hyper.Spinlock.force_unlock dom.Hyper.Domain.page_lock;
        Hyper.Hypervisor.retry_hypercall hv rng v;
        checkb "record cleared after retry" true (v.Hyper.Domain.in_hypercall = None)
      | Some _ ->
        (* Unenhanced sample: clean up and try again. *)
        Hyper.Spinlock.force_unlock dom.Hyper.Domain.page_lock;
        v.Hyper.Domain.in_hypercall <- None;
        ignore (Hyper.Pfn.scan_and_fix hv.Hyper.Hypervisor.pfn);
        try_once (attempt + 1)
      | None -> try_once (attempt + 1)
    end
  in
  try_once 0

let test_multicall_progress_tracking () =
  (* Fine-granularity batched retry: completed components are skipped. *)
  let hv = boot ~config:Hyper.Config.nilihype () in
  let rng = Sim.Rng.create 9L in
  let v = Hyper.Domain.vcpu (Option.get (Hyper.Hypervisor.domain hv 1)) 0 in
  let kind =
    Hyper.Hypercalls.Multicall
      [ Hyper.Hypercalls.Event_channel_send; Hyper.Hypercalls.Console_io;
        Hyper.Hypercalls.Event_channel_send ]
  in
  Hyper.Hypervisor.execute_partial hv rng
    (Hyper.Hypervisor.Hypercall { domid = 1; vid = 0; kind })
    ~stop_at:9;
  (match v.Hyper.Domain.in_hypercall with
  | Some r ->
    checkb "some components completed" true (r.Hyper.Hypercalls.sub_completed > 0)
  | None -> Alcotest.fail "expected in-flight multicall");
  Hyper.Spinlock.force_unlock hv.Hyper.Hypervisor.console_lock;
  (match Hyper.Hypervisor.domain hv 1 with
  | Some d ->
    Hyper.Spinlock.force_unlock d.Hyper.Domain.evtchn.Hyper.Evtchn.lock
  | None -> ());
  Hyper.Hypervisor.retry_hypercall hv rng v;
  checkb "multicall completed on retry" true (v.Hyper.Domain.in_hypercall = None)

let test_domctl_create_via_hypercall () =
  let hv = boot () in
  let rng = Sim.Rng.create 3L in
  let before = List.length (Hyper.Hypervisor.app_domains hv) in
  Hyper.Hypervisor.execute hv rng
    (Hyper.Hypervisor.Hypercall
       { domid = 0; vid = 0; kind = Hyper.Hypercalls.Domctl_create_domain });
  checki "one more app domain" (before + 1)
    (List.length (Hyper.Hypervisor.app_domains hv))

let test_domctl_fails_with_corrupt_static_data () =
  let hv = boot () in
  let rng = Sim.Rng.create 3L in
  hv.Hyper.Hypervisor.static_data_ok <- false;
  checkb "create fails" true
    (crashes (fun () ->
         Hyper.Hypervisor.execute hv rng
           (Hyper.Hypervisor.Hypercall
              { domid = 0; vid = 0; kind = Hyper.Hypercalls.Domctl_create_domain })))

(* ------------------------- Sched ------------------------------------ *)

let test_sched_fix_from_percpu () =
  let hv = boot () in
  let vcpus = Hyper.Hypervisor.all_vcpus hv in
  (* Scramble the redundant per-vCPU records. *)
  let v = List.hd vcpus in
  v.Hyper.Domain.is_current <- not v.Hyper.Domain.is_current;
  v.Hyper.Domain.curr_slot <- 7;
  checkb "audit detects scramble" false
    (Hyper.Sched.audit hv.Hyper.Hypervisor.sched vcpus);
  ignore (Hyper.Sched.fix_from_percpu hv.Hyper.Hypervisor.sched vcpus);
  checkb "consistent after fix" true
    (Hyper.Sched.audit hv.Hyper.Hypervisor.sched vcpus)

let test_sched_abandoned_switch_detected () =
  let hv = boot () in
  let rng = Sim.Rng.create 31L in
  (* Abandon a context switch between the per-CPU and per-vCPU updates. *)
  Hyper.Hypervisor.execute_partial hv rng (Hyper.Hypervisor.Context_switch 1)
    ~stop_at:6;
  checkb "audit detects partial switch" false
    (Hyper.Sched.audit hv.Hyper.Hypervisor.sched (Hyper.Hypervisor.all_vcpus hv)
     && not
          (Hyper.Spinlock.is_held hv.Hyper.Hypervisor.percpu.(1).Hyper.Percpu.heap_lock))

let test_irq_count_assertions () =
  let hv = boot () in
  let p = hv.Hyper.Hypervisor.percpu.(0) in
  Hyper.Percpu.irq_enter p;
  checkb "schedule asserts in irq" true
    (crashes (fun () -> Hyper.Percpu.assert_not_in_irq p));
  Hyper.Percpu.irq_exit p;
  Hyper.Percpu.assert_not_in_irq p;
  checkb "irq_exit underflow asserts" true (crashes (fun () -> Hyper.Percpu.irq_exit p))

(* ------------------------- Evtchn / Grant --------------------------- *)

let test_evtchn_bind_send () =
  let heap = Hyper.Heap.create () in
  let t = Hyper.Evtchn.create heap ~ports:8 5 in
  Hyper.Evtchn.bind t ~port:3;
  Hyper.Evtchn.send t ~port:3;
  checkb "pending consumed" true (Hyper.Evtchn.consume_pending t);
  checkb "only once" false (Hyper.Evtchn.consume_pending t)

let test_evtchn_double_bind_panics () =
  let heap = Hyper.Heap.create () in
  let t = Hyper.Evtchn.create heap ~ports:8 5 in
  Hyper.Evtchn.bind t ~port:3;
  checkb "double bind" true (crashes (fun () -> Hyper.Evtchn.bind t ~port:3))

let test_evtchn_masked_no_pending () =
  let heap = Hyper.Heap.create () in
  let t = Hyper.Evtchn.create heap ~ports:8 5 in
  Hyper.Evtchn.bind t ~port:3;
  t.Hyper.Evtchn.chans.(3).Hyper.Evtchn.masked <- true;
  Hyper.Evtchn.send t ~port:3;
  checkb "masked port stays quiet" false (Hyper.Evtchn.consume_pending t)

let test_grant_map_unmap () =
  let heap = Hyper.Heap.create () in
  let t = Hyper.Grant.create heap ~slots:8 5 in
  Hyper.Grant.grant t ~slot:2 ~frame:100;
  Hyper.Grant.map t ~slot:2 ~by:0;
  checkb "double map panics" true (crashes (fun () -> Hyper.Grant.map t ~slot:2 ~by:0));
  Hyper.Grant.unmap t ~slot:2;
  checkb "double unmap panics" true (crashes (fun () -> Hyper.Grant.unmap t ~slot:2))

let test_grant_map_unused_panics () =
  let heap = Hyper.Heap.create () in
  let t = Hyper.Grant.create heap ~slots:8 5 in
  checkb "map of unused slot" true (crashes (fun () -> Hyper.Grant.map t ~slot:1 ~by:0))

(* ------------------------- Latency model ---------------------------- *)

let test_latency_pfn_scan_scales () =
  let small = Hyper.Latency_model.pfn_scan ~frames:1000 in
  let big = Hyper.Latency_model.pfn_scan ~frames:2000 in
  checki "proportional" (2 * small) big

let test_latency_reference_values () =
  (* At the paper's geometry the scan costs ~21 ms. *)
  let ns = Hyper.Latency_model.pfn_scan ~frames:Hyper.Latency_model.reference_frames in
  checkb "about 21ms" true (ns > Sim.Time.ms 20 && ns < Sim.Time.ms 22)

let () =
  Alcotest.run "hyper"
    [
      ( "pfn",
        [
          Alcotest.test_case "alloc/free" `Quick test_pfn_alloc_free_cycle;
          Alcotest.test_case "get/put balance" `Quick test_pfn_get_put_balance;
          Alcotest.test_case "double validate" `Quick test_pfn_double_validate_panics;
          Alcotest.test_case "double invalidate" `Quick test_pfn_double_invalidate_panics;
          Alcotest.test_case "refcount underflow" `Quick test_pfn_underflow_panics;
          Alcotest.test_case "get on free" `Quick test_pfn_get_on_free_panics;
          Alcotest.test_case "scan fixes validated-no-refs" `Quick
            test_pfn_scan_fixes_validated_zero_refs;
          Alcotest.test_case "scan fixes orphan typed page" `Quick
            test_pfn_scan_fixes_orphan_typed_page;
          Alcotest.test_case "scan idempotent" `Quick test_pfn_scan_idempotent;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "acquire/release" `Quick test_lock_acquire_release;
          Alcotest.test_case "dead holder hangs" `Quick test_lock_dead_holder_hangs;
          Alcotest.test_case "recursive panics" `Quick test_lock_recursive_panics;
          Alcotest.test_case "wrong release panics" `Quick test_lock_wrong_release_panics;
          Alcotest.test_case "segment unlock_all" `Quick test_static_segment_unlock_all;
          Alcotest.test_case "segment rejects heap lock" `Quick
            test_segment_rejects_heap_lock;
        ] );
      ( "heap",
        [
          Alcotest.test_case "alloc/free" `Quick test_heap_alloc_free;
          Alcotest.test_case "double free" `Quick test_heap_double_free_panics;
          Alcotest.test_case "freelist corruption hangs" `Quick
            test_heap_freelist_corruption_hangs;
          Alcotest.test_case "rebuild repairs" `Quick test_heap_rebuild_repairs_freelist;
          Alcotest.test_case "release locks" `Quick test_heap_release_locks;
        ] );
      ( "timer_heap",
        [
          Alcotest.test_case "ordering" `Quick test_timer_heap_order;
          Alcotest.test_case "pop due only" `Quick test_timer_pop_due_only;
          Alcotest.test_case "recurring requeue" `Quick test_timer_recurring_requeue;
          Alcotest.test_case "reactivate recurring" `Quick test_timer_reactivate_recurring;
          Alcotest.test_case "structure corruption" `Quick
            test_timer_structure_corruption_panics;
          Alcotest.test_case "rebuild for reboot" `Quick test_timer_rebuild_for_reboot;
          Alcotest.test_case "heap property random" `Quick test_timer_heap_property_random;
        ] );
      ( "journal",
        [
          Alcotest.test_case "undo refcount" `Quick test_journal_undo_refcount;
          Alcotest.test_case "undo validation" `Quick test_journal_undo_validation;
          Alcotest.test_case "disabled logs nothing" `Quick
            test_journal_disabled_logs_nothing;
          Alcotest.test_case "commit clears" `Quick test_journal_commit_clears;
          Alcotest.test_case "undo order" `Quick test_journal_undo_order;
          Alcotest.test_case "depth tracks entries" `Quick
            test_journal_depth_tracks_entries;
        ] );
      ( "boot",
        [
          Alcotest.test_case "three appvm" `Quick test_boot_three_appvm;
          Alcotest.test_case "audit clean" `Quick test_boot_audit_clean;
          Alcotest.test_case "apics armed" `Quick test_boot_apics_armed;
          Alcotest.test_case "domain create/destroy" `Quick test_domain_create_destroy;
        ] );
      ( "activities",
        [
          Alcotest.test_case "healthy workload" `Quick test_healthy_workload_stays_clean;
          Alcotest.test_case "hypercall completes" `Quick
            test_hypercall_completes_and_clears_record;
          Alcotest.test_case "abandonment leaves partial state" `Quick
            test_abandoned_hypercall_leaves_partial_state;
          Alcotest.test_case "abandoned tick disarms apic" `Quick
            test_abandoned_timer_tick_disarms_apic;
          Alcotest.test_case "retry without undo panics" `Quick
            test_retry_without_undo_can_panic;
          Alcotest.test_case "retry with undo succeeds" `Quick
            test_retry_with_undo_succeeds;
          Alcotest.test_case "multicall progress tracking" `Quick
            test_multicall_progress_tracking;
          Alcotest.test_case "domctl create" `Quick test_domctl_create_via_hypercall;
          Alcotest.test_case "domctl on corrupt static data" `Quick
            test_domctl_fails_with_corrupt_static_data;
        ] );
      ( "sched",
        [
          Alcotest.test_case "fix from percpu" `Quick test_sched_fix_from_percpu;
          Alcotest.test_case "abandoned switch detected" `Quick
            test_sched_abandoned_switch_detected;
          Alcotest.test_case "irq count assertions" `Quick test_irq_count_assertions;
        ] );
      ( "evtchn_grant",
        [
          Alcotest.test_case "bind/send" `Quick test_evtchn_bind_send;
          Alcotest.test_case "double bind" `Quick test_evtchn_double_bind_panics;
          Alcotest.test_case "masked stays quiet" `Quick test_evtchn_masked_no_pending;
          Alcotest.test_case "grant map/unmap" `Quick test_grant_map_unmap;
          Alcotest.test_case "grant map unused" `Quick test_grant_map_unused_panics;
        ] );
      ( "latency_model",
        [
          Alcotest.test_case "pfn scan scales" `Quick test_latency_pfn_scan_scales;
          Alcotest.test_case "reference values" `Quick test_latency_reference_values;
        ] );
    ]
