(* Tests for the simulation substrate: PRNG, clock, event queue, engine,
   statistics. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------- Rng ------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 8L in
  checkb "different seeds differ" false (Sim.Rng.int64 a = Sim.Rng.int64 b)

let test_rng_int_bounds () =
  let r = Sim.Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 10 in
    checkb "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Sim.Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_float_bounds () =
  let r = Sim.Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float r 3.5 in
    checkb "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_copy_independent () =
  let a = Sim.Rng.create 7L in
  ignore (Sim.Rng.int64 a);
  let b = Sim.Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Sim.Rng.int64 a)
    (Sim.Rng.int64 b)

let test_rng_split_independent () =
  let a = Sim.Rng.create 7L in
  let child = Sim.Rng.split a in
  checkb "child differs from parent" false (Sim.Rng.int64 child = Sim.Rng.int64 a)

let test_rng_choose_weighted () =
  let r = Sim.Rng.create 3L in
  (* A zero-weight element must never be chosen. *)
  for _ = 1 to 500 do
    let v = Sim.Rng.choose_weighted r [ (0.0, `Never); (1.0, `Always) ] in
    checkb "never picks zero weight" true (v = `Always)
  done

let test_rng_choose_weighted_distribution () =
  let r = Sim.Rng.create 4L in
  let count = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sim.Rng.choose_weighted r [ (0.25, true); (0.75, false) ] then incr count
  done;
  let p = float_of_int !count /. float_of_int n in
  checkb "roughly 25%" true (p > 0.22 && p < 0.28)

let test_rng_choose_weighted_empty () =
  let r = Sim.Rng.create 5L in
  Alcotest.check_raises "empty"
    (Invalid_argument "Rng.choose_weighted: no positive weight") (fun () ->
      ignore (Sim.Rng.choose_weighted r []))

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.create 6L in
  let arr = Array.init 50 (fun i -> i) in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_bit64_range () =
  let r = Sim.Rng.create 8L in
  for _ = 1 to 200 do
    let b = Sim.Rng.bit64 r in
    checkb "bit in [0,64)" true (b >= 0 && b < 64)
  done

(* The production generator computes splitmix64 on two 32-bit native-int
   limbs (no Int64 boxing on the hot path). This pins it, bit for bit,
   to the obvious Int64 reference implementation. *)
let test_rng_matches_int64_reference () =
  let reference seed =
    let state = ref seed in
    fun () ->
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul
          (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      Int64.logxor z (Int64.shift_right_logical z 31)
  in
  List.iter
    (fun seed ->
      let next_ref = reference seed in
      let r = Sim.Rng.create seed in
      for i = 1 to 500 do
        check Alcotest.int64
          (Printf.sprintf "limb arithmetic matches Int64 reference (seed %Ld, draw %d)"
             seed i)
          (next_ref ()) (Sim.Rng.int64 r)
      done)
    [ 0L; 1L; 7L; -1L; 0x8000000000000000L; 0xDEADBEEFCAFEF00DL ]

(* ------------------------- Clock ----------------------------------- *)

let test_clock_starts_at_zero () =
  checki "t=0" 0 (Sim.Clock.now (Sim.Clock.create ()))

let test_clock_advance () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance_by c 100;
  Sim.Clock.advance_to c 250;
  checki "t=250" 250 (Sim.Clock.now c)

let test_clock_no_time_travel () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance_to c 100;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Clock.advance_to: time goes backwards (50 < 100)")
    (fun () -> Sim.Clock.advance_to c 50)

let test_clock_negative_delta () =
  let c = Sim.Clock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance_by: negative delta")
    (fun () -> Sim.Clock.advance_by c (-1))

(* ------------------------- Time ------------------------------------ *)

let test_time_units () =
  checki "us" 1_000 (Sim.Time.us 1);
  checki "ms" 1_000_000 (Sim.Time.ms 1);
  checki "s" 1_000_000_000 (Sim.Time.s 1);
  check (Alcotest.float 1e-9) "to_ms" 1.5 (Sim.Time.to_ms (Sim.Time.us 1500))

(* ------------------------- Event queue ------------------------------ *)

let test_eventq_ordering () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.push q ~time:30 "c");
  ignore (Sim.Event_queue.push q ~time:10 "a");
  ignore (Sim.Event_queue.push q ~time:20 "b");
  let pop () =
    match Sim.Event_queue.pop q with Some (_, v) -> v | None -> "eof"
  in
  check Alcotest.string "a first" "a" (pop ());
  check Alcotest.string "b second" "b" (pop ());
  check Alcotest.string "c third" "c" (pop ());
  check Alcotest.string "empty" "eof" (pop ())

let test_eventq_fifo_ties () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.push q ~time:10 "first");
  ignore (Sim.Event_queue.push q ~time:10 "second");
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> check Alcotest.string "insertion order on tie" "first" v
  | None -> Alcotest.fail "empty");
  match Sim.Event_queue.pop q with
  | Some (_, v) -> check Alcotest.string "second" "second" v
  | None -> Alcotest.fail "empty"

let test_eventq_cancel () =
  let q = Sim.Event_queue.create () in
  let h = Sim.Event_queue.push q ~time:10 "cancelled" in
  ignore (Sim.Event_queue.push q ~time:20 "kept");
  Sim.Event_queue.cancel h;
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> check Alcotest.string "skips cancelled" "kept" v
  | None -> Alcotest.fail "empty");
  checkb "then empty" true (Sim.Event_queue.pop q = None)

let test_eventq_peek_time () =
  let q = Sim.Event_queue.create () in
  checkb "empty peek" true (Sim.Event_queue.peek_time q = None);
  let h = Sim.Event_queue.push q ~time:5 "x" in
  checkb "peek 5" true (Sim.Event_queue.peek_time q = Some 5);
  Sim.Event_queue.cancel h;
  checkb "peek skips cancelled" true (Sim.Event_queue.peek_time q = None)

let test_eventq_many () =
  let q = Sim.Event_queue.create () in
  let r = Sim.Rng.create 11L in
  for _ = 1 to 1000 do
    ignore (Sim.Event_queue.push q ~time:(Sim.Rng.int r 10_000) ())
  done;
  let last = ref (-1) in
  let ok = ref true in
  let rec go () =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
      if t < !last then ok := false;
      last := t;
      go ()
  in
  go ();
  checkb "monotone pop order" true !ok

(* A queue that has been used, cleared and refilled must be
   indistinguishable from a fresh one: same pop order, same seq
   numbering (ties included), same cancellation behaviour. This is the
   contract the entry free-list must preserve -- a recycled entry that
   leaked state (stale seq, stale cancelled flag) would surface here. *)
let test_eventq_reuse_equals_fresh () =
  (* One deterministic script, interleaving pushes, cancels and pops;
     returns the observable trace plus the seq each push was assigned. *)
  let script q =
    let trace = ref [] and seqs = ref [] in
    let note ev = trace := ev :: !trace in
    let push time payload =
      let h = Sim.Event_queue.push q ~time payload in
      seqs := h.Sim.Event_queue.seq :: !seqs;
      h
    in
    let pop () =
      match Sim.Event_queue.pop q with
      | Some (t, v) -> note (Printf.sprintf "%d:%s" t v)
      | None -> note "eof"
    in
    let ha = push 10 "a" in
    let _ = push 10 "a-tie" in
    let hb = push 5 "b" in
    pop ();
    Sim.Event_queue.cancel ha;
    let _ = push 7 "c" in
    pop ();
    let hd = push 3 "d" in
    Sim.Event_queue.cancel hd;
    pop ();
    (match Sim.Event_queue.peek_time q with
    | Some t -> note (Printf.sprintf "peek:%d" t)
    | None -> note "peek:none");
    Sim.Event_queue.cancel hb;
    pop ();
    pop ();
    (List.rev !trace, List.rev !seqs)
  in
  let fresh = Sim.Event_queue.create () in
  let reused = Sim.Event_queue.create () in
  (* Dirty the reused queue: fill, cancel some, pop some, then clear
     mid-flight so parked entries carry stale seq/cancelled state. *)
  let junk = ref [] in
  for i = 1 to 40 do
    junk := Sim.Event_queue.push reused ~time:(i * 3 mod 17) "junk" :: !junk
  done;
  List.iteri (fun i h -> if i mod 3 = 0 then Sim.Event_queue.cancel h) !junk;
  for _ = 1 to 15 do
    ignore (Sim.Event_queue.pop reused)
  done;
  Sim.Event_queue.clear reused;
  let fresh_trace, fresh_seqs = script fresh in
  let reused_trace, reused_seqs = script reused in
  check (Alcotest.list Alcotest.string) "same pop order" fresh_trace reused_trace;
  check (Alcotest.list Alcotest.int) "same seq numbering" fresh_seqs reused_seqs

(* ------------------------- Engine ----------------------------------- *)

let test_engine_runs_in_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:20 (fun _ -> log := "b" :: !log));
  ignore (Sim.Engine.schedule e ~delay:10 (fun _ -> log := "a" :: !log));
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b" ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:42 (fun e -> seen := Sim.Engine.now e));
  Sim.Engine.run e;
  checki "event sees its time" 42 !seen

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:10 (fun _ -> incr count));
  ignore (Sim.Engine.schedule e ~delay:100 (fun _ -> incr count));
  Sim.Engine.run_until e 50;
  checki "only first fired" 1 !count;
  checki "clock at deadline" 50 (Sim.Engine.now e)

let test_engine_cascading () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let rec chain e =
    incr fired;
    if !fired < 5 then ignore (Sim.Engine.schedule e ~delay:10 chain)
  in
  ignore (Sim.Engine.schedule e ~delay:10 chain);
  Sim.Engine.run e;
  checki "chain of 5" 5 !fired;
  checki "final time" 50 (Sim.Engine.now e)

(* ------------------------- Stats ------------------------------------ *)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Sim.Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_stddev () =
  check (Alcotest.float 1e-6) "stddev" 1.0 (Sim.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_proportion_ci () =
  (* Half-width of 95% CI for 500/1000 is ~3.1%. *)
  let half = Sim.Stats.proportion_ci_half ~successes:500 ~trials:1000 in
  checkb "about 3.1%" true (half > 0.030 && half < 0.032)

let test_stats_ci_shrinks_with_n () =
  let h1 = Sim.Stats.proportion_ci_half ~successes:50 ~trials:100 in
  let h2 = Sim.Stats.proportion_ci_half ~successes:500 ~trials:1000 in
  checkb "more trials, tighter CI" true (h2 < h1)

let test_stats_wilson_bounds () =
  let lo, hi = Sim.Stats.wilson_interval ~successes:0 ~trials:100 in
  checkb "lower bound 0" true (lo = 0.0);
  checkb "upper bound small but positive" true (hi > 0.0 && hi < 0.06);
  let lo, hi = Sim.Stats.wilson_interval ~successes:100 ~trials:100 in
  checkb "upper bound 1" true (hi = 1.0);
  checkb "lower bound below 1" true (lo < 1.0 && lo > 0.94)

let test_stats_paper_convention () =
  (* The paper reports e.g. "16.0% +/- 2.3%" for ~1000 runs. *)
  let p = Sim.Stats.proportion ~successes:160 ~trials:1000 in
  let s = Format.asprintf "%a" Sim.Stats.pp_proportion p in
  check Alcotest.string "format" "16.0% +/- 2.3%" s

(* ------------------------- Trace ------------------------------------ *)

let test_trace_capacity () =
  let t = Sim.Trace.create ~capacity:3 ~min_level:Sim.Trace.Debug () in
  for i = 1 to 5 do
    Sim.Trace.record t ~time:i Sim.Trace.Info (string_of_int i)
  done;
  let entries = Sim.Trace.to_list t in
  checki "bounded" 3 (List.length entries);
  check Alcotest.string "oldest kept is 3" "3"
    (List.hd entries).Sim.Trace.message

let test_trace_level_filter () =
  let t = Sim.Trace.create ~capacity:10 ~min_level:Sim.Trace.Warn () in
  Sim.Trace.record t ~time:0 Sim.Trace.Debug "dropped";
  Sim.Trace.record t ~time:0 Sim.Trace.Error "kept";
  checki "only warn+" 1 (List.length (Sim.Trace.to_list t))

let test_trace_clear () =
  let t = Sim.Trace.create ~capacity:3 ~min_level:Sim.Trace.Debug () in
  for i = 1 to 5 do
    Sim.Trace.record t ~time:i Sim.Trace.Info (string_of_int i)
  done;
  Sim.Trace.clear t;
  checki "empty after clear" 0 (List.length (Sim.Trace.to_list t));
  Sim.Trace.record t ~time:6 Sim.Trace.Info "fresh";
  let entries = Sim.Trace.to_list t in
  checki "reusable after clear" 1 (List.length entries);
  check Alcotest.string "new entry first" "fresh"
    (List.hd entries).Sim.Trace.message

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <=0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose_weighted;
          Alcotest.test_case "weighted distribution" `Quick
            test_rng_choose_weighted_distribution;
          Alcotest.test_case "weighted empty" `Quick test_rng_choose_weighted_empty;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bit64 range" `Quick test_rng_bit64_range;
          Alcotest.test_case "limb arithmetic matches Int64 reference" `Quick
            test_rng_matches_int64_reference;
        ] );
      ( "clock",
        [
          Alcotest.test_case "starts at zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "no time travel" `Quick test_clock_no_time_travel;
          Alcotest.test_case "negative delta" `Quick test_clock_negative_delta;
          Alcotest.test_case "time units" `Quick test_time_units;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eventq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_eventq_cancel;
          Alcotest.test_case "peek time" `Quick test_eventq_peek_time;
          Alcotest.test_case "many events monotone" `Quick test_eventq_many;
          Alcotest.test_case "reused queue equals fresh" `Quick
            test_eventq_reuse_equals_fresh;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "cascading events" `Quick test_engine_cascading;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "proportion CI" `Quick test_stats_proportion_ci;
          Alcotest.test_case "CI shrinks" `Quick test_stats_ci_shrinks_with_n;
          Alcotest.test_case "wilson bounds" `Quick test_stats_wilson_bounds;
          Alcotest.test_case "paper format" `Quick test_stats_paper_convention;
        ] );
      ( "trace",
        [
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "level filter" `Quick test_trace_level_filter;
          Alcotest.test_case "clear" `Quick test_trace_clear;
        ] );
    ]
