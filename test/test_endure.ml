(* Tests for the endurance subsystem: the resource-leak ledger, the
   successive-failure scenario driver, campaign aggregation and the
   satellite changes riding along (configurable watchdog period, audit
   violations as metrics). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_cfg ?(fault = Inject.Fault.Failstop)
    ?(config = Hyper.Config.nilihype)
    ?(mech = Recovery.Engine.Nilihype) ?(seed = 42L) () =
  {
    Inject.Run.default_config with
    Inject.Run.seed;
    fault;
    mech = Inject.Run.Mech (mech, Recovery.Enhancement.full_set);
    hv_config = config;
  }

let endure_cfg ?fault ?config ?mech ?(cycles = 3) ?(budget = Some 8) () =
  {
    Endure.run_cfg = run_cfg ?fault ?config ?mech ();
    cycles;
    settle_activities = 100;
    leak_budget_pages = budget;
  }

(* ------------------------- Ledger ----------------------------------- *)

(* Satellite: fault-free activity between two quiesce points leaves the
   orphan view untouched -- the ledger's leak fields are workload-
   invariant, so any per-cycle growth is a genuine leak. *)
let test_zero_leak_workload config () =
  let st = Inject.Run.boot_state (run_cfg ~config ()) in
  for _ = 1 to 200 do
    Inject.Run.run_one_activity st
  done;
  let l1 = Hyper.Ledger.capture st.Inject.Run.hv in
  for _ = 1 to 400 do
    Inject.Run.run_one_activity st
  done;
  let l2 = Hyper.Ledger.capture st.Inject.Run.hv in
  let d = Hyper.Ledger.diff ~before:l1 ~after:l2 in
  checkb "no leak across fault-free workload" true (Hyper.Ledger.no_leak d);
  checki "no pages leaked" 0 (Hyper.Ledger.leaked_pages d)

(* A recovery on a perfectly healthy instance must not leak either, for
   both mechanisms and with continued workload afterwards. *)
let test_zero_leak_recovery (mech, config) () =
  let st = Inject.Run.boot_state (run_cfg ~config ~mech ()) in
  for _ = 1 to 200 do
    Inject.Run.run_one_activity st
  done;
  let l1 = Hyper.Ledger.capture st.Inject.Run.hv in
  let outcome =
    Recovery.Engine.recover mech st.Inject.Run.hv
      ~enh:Recovery.Enhancement.full_set ~detected_on:0
  in
  checkb "recovery reports latency" true (outcome.Recovery.Engine.latency > 0);
  for _ = 1 to 200 do
    Inject.Run.run_one_activity st
  done;
  let l2 = Hyper.Ledger.capture st.Inject.Run.hv in
  checkb "no leak across fault-free recovery" true
    (Hyper.Ledger.no_leak (Hyper.Ledger.diff ~before:l1 ~after:l2))

(* Reset-in-place reuse: the ledger of a rewound worker machine is
   structurally identical to a fresh boot's. *)
let test_reset_in_place_ledger () =
  let cfg = run_cfg () in
  let fresh = Hyper.Ledger.capture (Inject.Run.boot_state cfg).Inject.Run.hv in
  let w = Inject.Run.prepare cfg in
  ignore (Inject.Run.execute_into w cfg);
  Inject.Run.rewind w cfg;
  let reused = Hyper.Ledger.capture w.Inject.Run.w_hv in
  checkb "fresh and reset-in-place ledgers identical" true (fresh = reused)

let test_leaked_pages_clamp () =
  let st = Inject.Run.boot_state (run_cfg ()) in
  let l = Hyper.Ledger.capture st.Inject.Run.hv in
  let zero = Hyper.Ledger.diff ~before:l ~after:l in
  checkb "self-diff is leak-free" true (Hyper.Ledger.no_leak zero);
  let leaky =
    { zero with Hyper.Ledger.orphan_frames = 5; stale_frame_refs = 2 }
  in
  checki "pages sum orphans and stale refs" 7 (Hyper.Ledger.leaked_pages leaky);
  checkb "leak fields non-empty" true (not (Hyper.Ledger.no_leak leaky));
  (* A repair (negative delta) must not offset the page budget. *)
  let repair = { zero with Hyper.Ledger.orphan_frames = -3 } in
  checki "negative deltas clamp to zero" 0 (Hyper.Ledger.leaked_pages repair)

(* ------------------------- Scenario driver -------------------------- *)

(* Failstop with the full enhancement set: every cycle detects, recovers
   cleanly, and (with undo journal + retries) leaks nothing. *)
let test_scenario_failstop_survives () =
  let cfg = endure_cfg ~cycles:4 () in
  let sc = Endure.run_scenario cfg ~seed:5L in
  checkb "survived" true (sc.Endure.sc_end = Endure.Survived);
  checki "all cycles ran" 4 (List.length sc.Endure.sc_cycles);
  List.iter
    (fun cy ->
      checkb "cycle detected and recovered" true
        (cy.Endure.cy_class = Endure.Cycle_recovered);
      checkb "recovery latency recorded" true (cy.Endure.cy_latency > 0);
      checkb "repairs reported" true (cy.Endure.cy_repairs <> None);
      checkb "cycle leak-free" true (Hyper.Ledger.no_leak cy.Endure.cy_leak))
    sc.Endure.sc_cycles

let test_scenario_rehype_survives () =
  let cfg =
    endure_cfg ~cycles:3 ~config:Hyper.Config.rehype
      ~mech:Recovery.Engine.Rehype ()
  in
  let sc = Endure.run_scenario cfg ~seed:7L in
  checkb "survived" true (sc.Endure.sc_end = Endure.Survived);
  checki "all cycles ran" 3 (List.length sc.Endure.sc_cycles)

let test_scenario_requires_mechanism () =
  let cfg =
    {
      (endure_cfg ()) with
      Endure.run_cfg =
        { (run_cfg ()) with Inject.Run.mech = Inject.Run.No_recovery };
    }
  in
  Alcotest.check_raises "no mechanism rejected"
    (Invalid_argument "Endure.drive: endurance needs a recovery mechanism")
    (fun () -> ignore (Endure.run_scenario cfg ~seed:1L))

(* ------------------------- Aggregation ------------------------------ *)

let snapshot_t =
  Alcotest.testable Endure.pp_snapshot
    (fun (a : Endure.snapshot) b -> a = b)

let zero_diff () =
  let st = Inject.Run.boot_state (run_cfg ()) in
  let l = Hyper.Ledger.capture st.Inject.Run.hv in
  Hyper.Ledger.diff ~before:l ~after:l

let make_cycle ?(cls = Endure.Cycle_recovered) ~index leak =
  {
    Endure.cy_index = index;
    cy_class = cls;
    cy_detection = None;
    cy_latent_trigger = false;
    cy_latency = 1_000;
    cy_leak = leak;
    cy_leaked_pages = Hyper.Ledger.leaked_pages leak;
    cy_repairs = None;
  }

let make_scenario ?(seed = 1L) ?(end_state = Endure.Survived)
    ?(death_why = None) cycles =
  {
    Endure.sc_seed = seed;
    sc_end = end_state;
    sc_death_why = death_why;
    sc_first_latent = None;
    sc_cycles = cycles;
    sc_postmortem = None;
  }

let test_budget_accounting () =
  let zero = zero_diff () in
  let leaky =
    { zero with Hyper.Ledger.orphan_frames = 5; stale_frame_refs = 2 }
  in
  let cfg = endure_cfg ~cycles:2 ~budget:(Some 4) () in
  let t = Endure.make_totals ~cycles:2 () in
  Endure.add_scenario t cfg
    (make_scenario [ make_cycle ~index:0 zero; make_cycle ~index:1 leaky ]);
  checki "one budget violation (7 > 4)" 1 t.Endure.budget_violations;
  checki "worst recovery recorded" 7 t.Endure.max_leaked_pages;
  let leaks = Sim.Stats.Counts.sorted t.Endure.leaks in
  checki "orphan frames attributed" 5 (List.assoc "orphan_frames" leaks);
  checki "stale refs attributed" 2 (List.assoc "stale_frame_refs" leaks);
  let t' = Endure.make_totals ~cycles:2 () in
  Endure.add_scenario t' (endure_cfg ~cycles:2 ~budget:(Some 7) ())
    (make_scenario [ make_cycle ~index:0 zero; make_cycle ~index:1 leaky ]);
  checki "no violation when within budget" 0 t'.Endure.budget_violations

let test_merge_commutative () =
  let zero = zero_diff () in
  let leaky = { zero with Hyper.Ledger.orphan_frames = 3 } in
  let cfg = endure_cfg ~cycles:2 ~budget:(Some 1) () in
  let sc_a =
    make_scenario ~seed:1L
      [ make_cycle ~index:0 zero; make_cycle ~index:1 leaky ]
  in
  let sc_b =
    make_scenario ~seed:2L ~end_state:(Endure.Died_at 1)
      ~death_why:(Some "recovery_failed")
      [
        make_cycle ~index:0 leaky; make_cycle ~cls:Endure.Cycle_died ~index:1 zero;
      ]
  in
  let build scs =
    let t = Endure.make_totals ~cycles:2 () in
    List.iter (Endure.add_scenario t cfg) scs;
    t
  in
  let ab = build [ sc_a ] and ba = build [ sc_b ] in
  Endure.merge_into ab ba;
  let ba' = build [ sc_b ] and ab' = build [ sc_a ] in
  Endure.merge_into ba' ab';
  Alcotest.check snapshot_t "merge is commutative" (Endure.snapshot ab)
    (Endure.snapshot ba');
  let direct = build [ sc_a; sc_b ] in
  Alcotest.check snapshot_t "merge equals sequential accumulation"
    (Endure.snapshot ab) (Endure.snapshot direct);
  checki "death cause tallied" 1
    (List.assoc "recovery_failed" (Sim.Stats.Counts.sorted direct.Endure.death_notes))

(* The endurance campaign analogue of the parallel-campaign determinism
   contract: survival curve, leak totals and metric snapshots are
   bit-identical for any worker count. *)
let test_campaign_parallel_deterministic () =
  let cfg = endure_cfg ~fault:Inject.Fault.Register ~cycles:4 () in
  let seq = Endure.run ~base_seed:300L ~jobs:1 ~scenarios:8 cfg in
  let par =
    Endure.run ~base_seed:300L ~jobs:4 ~oversubscribe:true ~scenarios:8 cfg
  in
  Alcotest.check snapshot_t "jobs=1 and jobs=4 identical"
    (Endure.snapshot seq.Endure.totals)
    (Endure.snapshot par.Endure.totals);
  checki "scenarios counted" 8 seq.Endure.totals.Endure.scenarios;
  checkb "survival curve well-formed" true
    (Array.for_all
       (fun (_, s, c) -> s >= 0.0 && s <= 1.0 && c >= 0.0 && c <= 1.0)
       (Endure.survival_curve seq))

(* ------------------------- Satellites ------------------------------- *)

(* Satellite: the NMI-watchdog hang-detection period is a config field
   threaded into detection-latency accounting. *)
let test_watchdog_period_configurable () =
  let base = Hyper.Config.nilihype in
  checki "default: three 100 ms periods" (Sim.Time.ms 300)
    (Hyper.Crash.detection_latency ~config:base (Hyper.Crash.Hang "wedged"));
  let slow = { base with Hyper.Config.watchdog_period_ms = 250 } in
  checki "250 ms period: three periods" (Sim.Time.ms 750)
    (Hyper.Crash.detection_latency ~config:slow (Hyper.Crash.Hang "wedged"));
  checki "panic latency unaffected" (Sim.Time.us 10)
    (Hyper.Crash.detection_latency ~config:slow (Hyper.Crash.Panic "boom"))

(* Satellite: audit violations land as per-kind counters, all registered
   eagerly so metric snapshots are structurally stable. *)
let test_audit_violation_counters () =
  let clock = Sim.Clock.create () in
  let hv =
    Hyper.Hypervisor.boot ~mconfig:Hw.Machine.campaign_config
      ~config:Hyper.Config.nilihype ~setup:Hyper.Hypervisor.Three_appvm clock
  in
  let snap0 = Obs.Recorder.metrics_snapshot hv.Hyper.Hypervisor.obs in
  List.iter
    (fun kind ->
      checkb (Printf.sprintf "audit.%s registered at boot" kind) true
        (List.mem_assoc ("audit." ^ kind) snap0.Obs.Metrics.counters))
    Hyper.Hypervisor.audit_violation_kinds;
  (* Leave a static lock held: the audit must flag it and the counter
     must move. *)
  Hyper.Spinlock.Segment.iter hv.Hyper.Hypervisor.static_segment (fun l ->
      if l.Hyper.Spinlock.name = "console" then Hyper.Spinlock.acquire l ~cpu:0);
  let report = Hyper.Hypervisor.audit hv in
  checkb "audit not clean" false (Hyper.Hypervisor.audit_clean report);
  Hyper.Hypervisor.record_audit_violations hv report;
  let snap = Obs.Recorder.metrics_snapshot hv.Hyper.Hypervisor.obs in
  checkb "static-locks counter incremented" true
    (List.assoc "audit.static_locks_held" snap.Obs.Metrics.counters >= 1)

let () =
  Alcotest.run "endure"
    [
      ( "ledger",
        [
          Alcotest.test_case "zero leak: fault-free workload (nilihype)" `Quick
            (test_zero_leak_workload Hyper.Config.nilihype);
          Alcotest.test_case "zero leak: fault-free workload (rehype)" `Quick
            (test_zero_leak_workload Hyper.Config.rehype);
          Alcotest.test_case "zero leak: healthy microreset" `Quick
            (test_zero_leak_recovery
               (Recovery.Engine.Nilihype, Hyper.Config.nilihype));
          Alcotest.test_case "zero leak: healthy microreboot" `Quick
            (test_zero_leak_recovery
               (Recovery.Engine.Rehype, Hyper.Config.rehype));
          Alcotest.test_case "reset-in-place ledger identical" `Quick
            test_reset_in_place_ledger;
          Alcotest.test_case "leaked pages clamp" `Quick test_leaked_pages_clamp;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "failstop scenario survives leak-free" `Slow
            test_scenario_failstop_survives;
          Alcotest.test_case "rehype scenario survives" `Slow
            test_scenario_rehype_survives;
          Alcotest.test_case "mechanism required" `Quick
            test_scenario_requires_mechanism;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "budget accounting" `Quick test_budget_accounting;
          Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow
            test_campaign_parallel_deterministic;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "watchdog period configurable" `Quick
            test_watchdog_period_configurable;
          Alcotest.test_case "audit violation counters" `Quick
            test_audit_violation_counters;
        ] );
    ]
