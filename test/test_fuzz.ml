(* Tests for the coverage-guided fault-space fuzzer.

   The contracts under test are the ones the fuzzer's repros and
   resumable sessions lean on:
   - replay is a pure function of (base seed, mutation trace): same
     outcome class, triage signature, coverage points and metrics
     snapshot every time, on a fresh worker;
   - corpus merge is commutative, so per-worker corpora can be folded
     in any order;
   - the session aggregate (stats, corpus, serialized payload) is
     invariant under --jobs and --fanout;
   - kill -> resume converges to the byte-identical corpus file an
     uninterrupted session writes;
   - the new hypervisor-data fault kind manifests and leaves no
     resource leaks behind recovery (ledger audit armed). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let metrics_snapshot_t =
  Alcotest.testable Obs.Metrics.pp_snapshot
    (fun (a : Obs.Metrics.snapshot) b -> a = b)

let base_run_cfg =
  {
    Inject.Run.default_config with
    Inject.Run.setup = Inject.Run.Three_appvm;
    mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
    hv_config = Hyper.Config.nilihype;
  }

let fuzz_cfg ?(runs = 48) ?(batch = 12) ?(jobs = 1) ?(oversubscribe = false)
    ?(fanout = 4) ?corpus_path ?(resume = false) ?stop_after () =
  {
    (Fuzz.Session.default_config ~base_seed:9_000L) with
    Fuzz.Session.f_base = base_run_cfg;
    f_runs = runs;
    f_batch = batch;
    f_jobs = jobs;
    f_oversubscribe = oversubscribe;
    f_fanout = fanout;
    f_corpus_path = corpus_path;
    f_resume = resume;
    f_stop_after = stop_after;
  }

let with_temp_corpus f =
  let path = Filename.temp_file "nlh_fuzz" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------- Mutation traces --------------------------- *)

let test_trace_string_roundtrip () =
  let traces = [ []; [ 0 ]; [ 5; Fuzz.Input.op_space - 1; 123_456_789 ] ] in
  List.iter
    (fun t ->
      match Fuzz.Input.trace_of_string (Fuzz.Input.trace_string t) with
      | Ok t' -> checkb "round-trips" true (t = t')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    traces;
  List.iter
    (fun s ->
      match Fuzz.Input.trace_of_string s with
      | Ok _ -> Alcotest.failf "accepted bad trace %S" s
      | Error _ -> ())
    [ "x"; "1,,2"; "-5"; string_of_int Fuzz.Input.op_space ]

let test_apply_deterministic () =
  let rng = Sim.Rng.create 4L in
  for _ = 1 to 50 do
    let trace = Fuzz.Input.mutate rng [] in
    let a = Fuzz.Input.apply ~base_seed:9_000L trace in
    let b = Fuzz.Input.apply ~base_seed:9_000L trace in
    checkb "pure function of the trace" true (a = b);
    checkb "target in range" true
      (a.Fuzz.Input.p_target >= -1
      && a.Fuzz.Input.p_target < Inject.Corrupt.n_targets)
  done

(* ------------------------- Replay ------------------------------------ *)

(* A small session discovers signatures; every exemplar's trace must
   replay -- twice, on fresh workers -- to the identical outcome class,
   signature, coverage points and metrics snapshot, and match what the
   corpus recorded for it. *)
let test_replay_reproduces_discovery () =
  let t = Fuzz.Session.explore (fuzz_cfg ()) in
  let exemplars = Fuzz.Session.exemplars t in
  checkb "session discovered signatures" true (exemplars <> []);
  List.iteri
    (fun i (sigkey, (e : Fuzz.Corpus.entry)) ->
      if i < 3 then begin
        let a = Fuzz.Session.replay (fuzz_cfg ()) e.Fuzz.Corpus.en_trace in
        let b = Fuzz.Session.replay (fuzz_cfg ()) e.Fuzz.Corpus.en_trace in
        checks "signature matches the corpus" sigkey a.Fuzz.Session.r_signature;
        checks "outcome matches the corpus" e.Fuzz.Corpus.en_outcome
          a.Fuzz.Session.r_outcome;
        checks "outcome stable" a.Fuzz.Session.r_outcome
          b.Fuzz.Session.r_outcome;
        checks "signature stable" a.Fuzz.Session.r_signature
          b.Fuzz.Session.r_signature;
        checkb "coverage points stable" true
          (a.Fuzz.Session.r_points = b.Fuzz.Session.r_points);
        Alcotest.check metrics_snapshot_t "metrics snapshot stable"
          a.Fuzz.Session.r_metrics b.Fuzz.Session.r_metrics;
        checkb "resolved seed matches the corpus" true
          (a.Fuzz.Session.r_point.Fuzz.Input.p_seed = e.Fuzz.Corpus.en_seed)
      end)
    exemplars

(* ------------------------- Corpus ------------------------------------ *)

let payload_string c =
  let buf = Buffer.create 256 in
  Fuzz.Corpus.add_payload buf c;
  Buffer.contents buf

let test_corpus_merge_commutative () =
  let entry trace outcome sg =
    {
      Fuzz.Corpus.en_trace = trace;
      en_seed = Int64.of_int (List.length trace);
      en_outcome = outcome;
      en_signature = sg;
    }
  in
  (* Overlapping coverage, different trace lengths: the short trace must
     win point "b" whatever the order of insertion or merge. [absorb]
     itself is deliberately order-sensitive (novelty search); the
     commutative operations are the point-wise preference map ([add])
     and corpus merge, which is what the per-worker fold relies on. *)
  let evals =
    [
      ([ "a"; "b" ], entry [ 7; 9 ] "recovered" "");
      ([ "b"; "c" ], entry [ 3 ] "hv_died" "Failstop|x|y|z");
      ([ "c"; "d" ], entry [ 8 ] "recovered" "");
      ([ "a"; "d" ], entry [ 2; 1 ] "hv_died" "Failstop|x|y|w");
    ]
  in
  let build order =
    let c = Fuzz.Corpus.create () in
    List.iter
      (fun (points, e) -> List.iter (fun p -> Fuzz.Corpus.add c p e) points)
      order;
    c
  in
  let forward = build evals and backward = build (List.rev evals) in
  checks "insertion order invisible" (payload_string forward)
    (payload_string backward);
  (* Split merge, both directions. *)
  let split at =
    let rec go i = function
      | [] -> ([], [])
      | x :: rest ->
        let l, r = go (i + 1) rest in
        if i < at then (x :: l, r) else (l, x :: r)
    in
    go 0 evals
  in
  let l, r = split 2 in
  let a = build l and b = build r in
  let ab = Fuzz.Corpus.create () and ba = Fuzz.Corpus.create () in
  Fuzz.Corpus.merge_into ~into:ab a;
  Fuzz.Corpus.merge_into ~into:ab b;
  Fuzz.Corpus.merge_into ~into:ba b;
  Fuzz.Corpus.merge_into ~into:ba a;
  checks "merge commutative" (payload_string ab) (payload_string ba);
  checks "merge equals sequential insertion" (payload_string forward)
    (payload_string ab);
  (* Duds (no novel point) leave the corpus untouched. *)
  let c = build evals in
  let before = payload_string c in
  checkb "dud rejected" false
    (Fuzz.Corpus.absorb c ~points:[ "a"; "c" ] (entry [ 9; 9; 9 ] "recovered" ""));
  checks "dud left no trace" before (payload_string c)

(* ------------------------- Session invariance ------------------------ *)

(* The full serialized session state -- rng position, stats, corpus --
   must be identical whatever the worker count and fan-out grouping. *)
let test_jobs_fanout_invariant () =
  let base = Fuzz.Session.explore (fuzz_cfg ~jobs:1 ~fanout:1 ()) in
  let reference = Fuzz.Session.payload_of base in
  checkb "session evaluated its budget" true (base.Fuzz.Session.s_evaluated >= 48);
  List.iter
    (fun (jobs, fanout) ->
      let t =
        Fuzz.Session.explore (fuzz_cfg ~jobs ~oversubscribe:true ~fanout ())
      in
      checks
        (Printf.sprintf "payload identical at jobs=%d fanout=%d" jobs fanout)
        reference
        (Fuzz.Session.payload_of t))
    [ (3, 1); (1, 4); (2, 8) ]

let test_kill_resume_byte_identical () =
  with_temp_corpus (fun uninterrupted ->
      with_temp_corpus (fun resumed ->
          let t =
            Fuzz.Session.explore (fuzz_cfg ~corpus_path:uninterrupted ())
          in
          checkb "some rounds ran" true (t.Fuzz.Session.s_rounds >= 4);
          (* Kill after two rounds, then resume on a different jobs. *)
          ignore
            (Fuzz.Session.explore
               (fuzz_cfg ~corpus_path:resumed ~stop_after:2 ()));
          let partial = read_file resumed in
          checkb "partial file differs" true (partial <> read_file uninterrupted);
          ignore
            (Fuzz.Session.explore
               (fuzz_cfg ~corpus_path:resumed ~resume:true ~jobs:2
                  ~oversubscribe:true ()));
          checks "resumed file byte-identical" (read_file uninterrupted)
            (read_file resumed)))

let test_resume_rejects_other_fingerprint () =
  with_temp_corpus (fun path ->
      ignore (Fuzz.Session.explore (fuzz_cfg ~corpus_path:path ()));
      match
        Fuzz.Session.resume_from (fuzz_cfg ~runs:64 ~corpus_path:path ()) path
      with
      | _ -> Alcotest.fail "resume accepted a different session fingerprint"
      | exception Invalid_argument _ -> ())

(* ------------------------- Data faults ------------------------------- *)

let test_data_fault_manifests () =
  let outcomes = Hashtbl.create 4 in
  for i = 0 to 39 do
    let cfg =
      {
        base_run_cfg with
        Inject.Run.fault = Inject.Fault.Data;
        seed = Int64.of_int (7_000 + i);
      }
    in
    let name =
      match Inject.Run.run cfg with
      | Inject.Run.Non_manifested -> "non_manifested"
      | Inject.Run.Silent_corruption -> "silent"
      | Inject.Run.Detected d ->
        if d.Inject.Run.recovered then "recovered" else "died"
    in
    Hashtbl.replace outcomes name
      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes name))
  done;
  checkb "some data faults manifest" true
    (Hashtbl.mem outcomes "recovered" || Hashtbl.mem outcomes "died"
    || Hashtbl.mem outcomes "silent");
  checkb "some data faults stay latent" true
    (Hashtbl.mem outcomes "non_manifested")

(* Heap-header and pfn-descriptor corruption must not leak resources
   through recovery: the opt-in ledger audit raises on any orphaned
   frame, held lock or missing recurring timer left behind a restore. *)
let test_data_fault_ledger_clean () =
  let cfg =
    { base_run_cfg with Inject.Run.fault = Inject.Fault.Data; seed = 7_100L }
  in
  let recorder = Obs.Recorder.create ~capacity:1 ~min_level:Obs.Event.Error () in
  let w = Inject.Run.prepare ~recorder cfg in
  Inject.Run.set_restore_audit w true;
  for i = 0 to 11 do
    ignore
      (Inject.Run.execute_into w
         { cfg with Inject.Run.seed = Int64.of_int (7_100 + i) })
  done;
  (* Directed worst cases: force each new corruption target in turn. *)
  List.iteri
    (fun i target ->
      let d =
        {
          Inject.Fault.d_target = target;
          d_payload = Int64.of_int (31 + i);
          d_crash = Inject.Fault.Crash_none;
          d_window = i;
        }
      in
      ignore
        (Inject.Run.execute_into w
           {
             cfg with
             Inject.Run.seed = Int64.of_int (7_200 + i);
             directive = Some d;
           }))
    (List.filter_map
       (fun i ->
         match Inject.Corrupt.of_index i with
         | Inject.Corrupt.Heap_header | Inject.Corrupt.Pfn_type_scramble ->
           Some i
         | _ -> None)
       (List.init Inject.Corrupt.n_targets (fun i -> i)));
  (* One explicit final rewind so the audit also covers the last run. *)
  Inject.Run.rewind w cfg;
  checkb "no leaks across data-fault restores" true true

let test_directed_corruption_targets_new_structures () =
  let hit_header = ref false and hit_ptype = ref false in
  List.iteri
    (fun i target ->
      (match Inject.Corrupt.of_index i with
      | Inject.Corrupt.Heap_header -> hit_header := true
      | Inject.Corrupt.Pfn_type_scramble -> hit_ptype := true
      | _ -> ());
      ignore target)
    (Array.to_list Inject.Corrupt.all);
  checkb "heap header target registered" true !hit_header;
  checkb "pfn type target registered" true !hit_ptype;
  checki "of_index wraps" 0
    (compare
       (Inject.Corrupt.of_index 0)
       (Inject.Corrupt.of_index Inject.Corrupt.n_targets))

let () =
  Alcotest.run "fuzz"
    [
      ( "input",
        [
          Alcotest.test_case "trace string round-trip" `Quick
            test_trace_string_roundtrip;
          Alcotest.test_case "apply is deterministic" `Quick
            test_apply_deterministic;
        ] );
      ( "replay",
        [
          Alcotest.test_case "replay reproduces discoveries" `Quick
            test_replay_reproduces_discovery;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "merge commutative" `Quick
            test_corpus_merge_commutative;
        ] );
      ( "session",
        [
          Alcotest.test_case "jobs/fanout invariant" `Quick
            test_jobs_fanout_invariant;
          Alcotest.test_case "kill -> resume byte-identical" `Quick
            test_kill_resume_byte_identical;
          Alcotest.test_case "resume rejects other fingerprint" `Quick
            test_resume_rejects_other_fingerprint;
        ] );
      ( "data-faults",
        [
          Alcotest.test_case "data faults manifest" `Quick
            test_data_fault_manifests;
          Alcotest.test_case "ledger clean across restores" `Quick
            test_data_fault_ledger_clean;
          Alcotest.test_case "new corruption targets registered" `Quick
            test_directed_corruption_targets_new_structures;
        ] );
    ]
