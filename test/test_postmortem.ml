(* Tests for the postmortem subsystem: the crash-surviving flight
   recorder (rings and counters outlive restore / in-place reboot, with
   epoch-scoped readback), the failure-signature grammar, the
   commutative triage merge with min-seed exemplars, and end-to-end
   determinism of campaign / endurance triage across --jobs and
   --fanout splits, including repro-line fidelity. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------- Flight rings ----------------------------- *)

let test_flight_epoch_scoping () =
  let f = Obs.Flight.create ~capacity:4 () in
  Obs.Flight.note f ~name:"a" ~time:1;
  Obs.Flight.note f ~name:"b" ~time:2;
  checkb "tail oldest-first" true (Obs.Flight.tail f = [ ("a", 1); ("b", 2) ]);
  Obs.Flight.new_epoch f;
  checkb "entries of prior epochs invisible" true (Obs.Flight.tail f = []);
  Obs.Flight.note f ~name:"c" ~time:3;
  checkb "current epoch only" true (Obs.Flight.tail f = [ ("c", 3) ]);
  (* Prior-epoch entries remain readable explicitly until overwritten. *)
  checkb "prior epoch readable by number" true
    (Obs.Flight.tail ~epoch:0 f = [ ("a", 1); ("b", 2) ]);
  List.iter (fun i -> Obs.Flight.note f ~name:"x" ~time:i) [ 4; 5; 6; 7; 8 ];
  checki "wraparound keeps ring bounded" 4 (List.length (Obs.Flight.tail f));
  checki "total counts every note ever" 8 (Obs.Flight.total f)

(* The rings on a hypervisor survive snapshot/restore and in-place
   reboot -- the crash-surviving contract postmortem capture rests on. *)
let test_flight_survives_restore () =
  let clock = Sim.Clock.create () in
  let recorder =
    Obs.Recorder.create ~capacity:64 ~min_level:Obs.Event.Debug ()
  in
  let hv =
    Hyper.Hypervisor.boot ~obs:recorder ~config:Hyper.Config.nilihype
      ~setup:Hyper.Hypervisor.Three_appvm clock
  in
  Hyper.Hypervisor.new_flight_epoch hv;
  let rng = Sim.Rng.create 5L in
  Hyper.Hypervisor.execute hv rng
    (Hyper.Hypervisor.Hypercall
       { domid = 1; vid = 0; kind = Hyper.Hypercalls.Update_va_mapping });
  let tail = Hyper.Hypervisor.hypercall_tail hv in
  checkb "hypercall noted in flight ring" true
    (List.exists (fun (n, _) -> n = "update_va_mapping") tail);
  let c = Obs.Metrics.counter recorder.Obs.Recorder.metrics "probe" in
  Obs.Metrics.incr ~by:7 c;
  (* Restore from a snapshot: machine state rewinds, evidence stays. *)
  let image = Hyper.Hypervisor.snapshot hv in
  Hyper.Hypervisor.restore hv image;
  checkb "flight tail survives restore" true
    (Hyper.Hypervisor.hypercall_tail hv = tail);
  checki "metrics survive restore" 7
    (List.assoc "probe"
       (Obs.Metrics.snapshot recorder.Obs.Recorder.metrics).Obs.Metrics.counters);
  (* In-place reboot: same contract. *)
  Hyper.Hypervisor.reboot_in_place hv ~config:Hyper.Config.nilihype
    ~setup:Hyper.Hypervisor.Three_appvm ~vcpus_per_cpu:1;
  checkb "flight tail survives reboot_in_place" true
    (Hyper.Hypervisor.hypercall_tail hv = tail);
  checki "metrics survive reboot_in_place" 7
    (List.assoc "probe"
       (Obs.Metrics.snapshot recorder.Obs.Recorder.metrics).Obs.Metrics.counters);
  (* The harness-side run boundary is the epoch bump, not a clear. *)
  Hyper.Hypervisor.new_flight_epoch hv;
  checkb "epoch bump scopes the next run" true
    (Hyper.Hypervisor.hypercall_tail hv = [])

(* ------------------------- Signatures ------------------------------- *)

let test_signature_grammar () =
  let sg =
    Obs.Signature.make ~fault:"register" ~target:"pfn entry" ~cause:"hv died"
      ~branch:"NiLiHype/aborted"
  in
  let key = Obs.Signature.key sg in
  checks "separator-safe key" "register|pfn_entry|hv_died|NiLiHype/aborted" key;
  (match Obs.Signature.of_key key with
  | Some sg2 -> checkb "key round-trips" true (Obs.Signature.equal sg sg2)
  | None -> Alcotest.fail "of_key rejected its own key");
  checkb "malformed keys rejected" true
    (Obs.Signature.of_key "only|three|parts" = None);
  let empty = Obs.Signature.make ~fault:"" ~target:"" ~cause:"" ~branch:"" in
  checks "empty axes normalise" "unknown|unknown|unknown|unknown"
    (Obs.Signature.key empty)

(* ------------------------- Triage merge ----------------------------- *)

let bundle sg seed =
  Obs.Postmortem.make ~signature:sg ~outcome:"detected" ~seed
    ~repro:(Printf.sprintf "repro %Ld" seed)
    ~config:[] ~events:[] ~phases:[] ~hypercalls:[] ~journal_tail:[]
    ~ledger_diff:[]

let test_triage_merge () =
  let sg = Obs.Signature.make ~fault:"f" ~target:"t" ~cause:"c" ~branch:"b" in
  let sg2 = Obs.Signature.make ~fault:"f" ~target:"t2" ~cause:"c" ~branch:"b" in
  (* Worker A sees seeds 5 and 9; worker B sees seed 3 (and another
     signature). Each worker captures a bundle only at its first
     occurrence, like the campaign does. *)
  let a = Obs.Postmortem.Triage.create () in
  Obs.Postmortem.Triage.record ~bundle:(bundle sg 5L) a sg ~seed:5L;
  Obs.Postmortem.Triage.record a sg ~seed:9L;
  let b = Obs.Postmortem.Triage.create () in
  Obs.Postmortem.Triage.record ~bundle:(bundle sg 3L) b sg ~seed:3L;
  Obs.Postmortem.Triage.record ~bundle:(bundle sg2 4L) b sg2 ~seed:4L;
  let merged_ab = Obs.Postmortem.Triage.create () in
  Obs.Postmortem.Triage.merge_into ~into:merged_ab a;
  Obs.Postmortem.Triage.merge_into ~into:merged_ab b;
  let merged_ba = Obs.Postmortem.Triage.create () in
  Obs.Postmortem.Triage.merge_into ~into:merged_ba b;
  Obs.Postmortem.Triage.merge_into ~into:merged_ba a;
  checkb "merge is commutative" true
    (Obs.Postmortem.Triage.snapshot merged_ab
    = Obs.Postmortem.Triage.snapshot merged_ba);
  checki "counts sum" 4 (Obs.Postmortem.Triage.total merged_ab);
  checki "signatures deduped" 2 (Obs.Postmortem.Triage.signatures merged_ab);
  (match
     List.assoc_opt (Obs.Signature.key sg)
       (Obs.Postmortem.Triage.snapshot merged_ab)
   with
  | Some e1 ->
    Alcotest.check
      (Alcotest.list Alcotest.int64)
      "seed sets union ascending" [ 3L; 5L; 9L ]
      e1.Obs.Postmortem.Triage.e_seeds;
    (match e1.Obs.Postmortem.Triage.e_exemplar with
    | Some (seed, b) ->
      checkb "exemplar is the min-seed bundle" true
        (seed = 3L && b.Obs.Postmortem.pm_seed = 3L)
    | None -> Alcotest.fail "merged entry lost its exemplar")
  | None -> Alcotest.fail "merged table lost the shared signature");
  (* Byte-level determinism of the exported document. *)
  checkb "triage JSON identical either merge order" true
    (Obs.Postmortem.Triage.to_json merged_ab
    = Obs.Postmortem.Triage.to_json merged_ba)

let test_triage_seed_cap () =
  let sg = Obs.Signature.make ~fault:"f" ~target:"t" ~cause:"c" ~branch:"b" in
  let entry_of tr =
    match
      List.assoc_opt (Obs.Signature.key sg) (Obs.Postmortem.Triage.snapshot tr)
    with
    | Some e -> e
    | None -> Alcotest.fail "signature missing from triage table"
  in
  (* A narrow table keeps only the [seed_cap] smallest seeds but still
     counts every occurrence. *)
  let tr = Obs.Postmortem.Triage.create ~seed_cap:2 () in
  List.iter
    (fun seed -> Obs.Postmortem.Triage.record tr sg ~seed)
    [ 9L; 3L; 7L; 1L; 5L ];
  let e = entry_of tr in
  checki "count keeps every occurrence" 5 e.Obs.Postmortem.Triage.e_count;
  Alcotest.check
    (Alcotest.list Alcotest.int64)
    "only the cap smallest seeds retained" [ 1L; 3L ]
    e.Obs.Postmortem.Triage.e_seeds;
  (* Merging a wide table into a narrow one truncates to the
     destination's cap; the count is unaffected. *)
  let wide = Obs.Postmortem.Triage.create ~seed_cap:8 () in
  List.iter
    (fun seed -> Obs.Postmortem.Triage.record wide sg ~seed)
    [ 2L; 4L; 6L; 8L ];
  let narrow = Obs.Postmortem.Triage.create ~seed_cap:2 () in
  Obs.Postmortem.Triage.merge_into ~into:narrow wide;
  let e = entry_of narrow in
  checki "merged count" 4 e.Obs.Postmortem.Triage.e_count;
  Alcotest.check
    (Alcotest.list Alcotest.int64)
    "destination cap authoritative" [ 2L; 4L ]
    e.Obs.Postmortem.Triage.e_seeds;
  (* Capped merge stays commutative: either order lands on the same
     snapshot. *)
  let m1 = Obs.Postmortem.Triage.create ~seed_cap:3 () in
  Obs.Postmortem.Triage.merge_into ~into:m1 wide;
  Obs.Postmortem.Triage.merge_into ~into:m1 tr;
  let m2 = Obs.Postmortem.Triage.create ~seed_cap:3 () in
  Obs.Postmortem.Triage.merge_into ~into:m2 tr;
  Obs.Postmortem.Triage.merge_into ~into:m2 wide;
  checkb "capped merge commutative" true
    (Obs.Postmortem.Triage.snapshot m1 = Obs.Postmortem.Triage.snapshot m2);
  Alcotest.check
    (Alcotest.list Alcotest.int64)
    "union then truncate" [ 1L; 2L; 3L ]
    (entry_of m1).Obs.Postmortem.Triage.e_seeds

(* --------------------- Campaign determinism ------------------------- *)

let dead_cfg =
  {
    Inject.Run.default_config with
    Inject.Run.fault = Inject.Fault.Failstop;
    mech = Inject.Run.No_recovery;
    hv_config = Hyper.Config.stock;
  }

let mixed_cfg =
  {
    Inject.Run.default_config with
    Inject.Run.fault = Inject.Fault.Register;
    mech = Inject.Run.Mech (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
    hv_config = Hyper.Config.nilihype;
  }

let triage_of (r : Inject.Campaign.result) =
  r.Inject.Campaign.totals.Inject.Campaign.triage

let test_campaign_triage_jobs_invariant () =
  let run jobs =
    Inject.Campaign.run ~base_seed:300L ~jobs ~oversubscribe:(jobs > 1)
      ~postmortems:true ~n:60 mixed_cfg
  in
  let seq = run 1 and par = run 4 in
  checkb "campaign snapshots identical (triage included)" true
    (Inject.Campaign.snapshot seq.Inject.Campaign.totals
    = Inject.Campaign.snapshot par.Inject.Campaign.totals);
  checkb "triage JSON byte-identical jobs=1 vs jobs=4" true
    (Obs.Postmortem.Triage.to_json (triage_of seq)
    = Obs.Postmortem.Triage.to_json (triage_of par))

let test_campaign_triage_fanout_invariant () =
  let run jobs =
    Inject.Campaign.run ~base_seed:300L ~jobs ~oversubscribe:(jobs > 1)
      ~fanout:3 ~postmortems:true ~n:60 mixed_cfg
  in
  let seq = run 1 and par = run 4 in
  checkb "fanout triage JSON byte-identical across jobs" true
    (Obs.Postmortem.Triage.to_json (triage_of seq)
    = Obs.Postmortem.Triage.to_json (triage_of par))

let test_campaign_capture_does_not_perturb () =
  let run postmortems =
    Inject.Campaign.run ~base_seed:300L ~postmortems ~n:40 mixed_cfg
  in
  let off = Inject.Campaign.snapshot (run false).Inject.Campaign.totals in
  let on = Inject.Campaign.snapshot (run true).Inject.Campaign.totals in
  checkb "capture changes nothing but the triage table" true
    ({ on with Inject.Campaign.s_triage = [] } = off)

let test_campaign_bundles_and_repro () =
  let dead =
    Inject.Campaign.run ~base_seed:400L ~postmortems:true ~n:12 dead_cfg
  in
  let entries = Obs.Postmortem.Triage.snapshot (triage_of dead) in
  checkb "died campaign emits at least one bundle" true
    (List.exists
       (fun (_, e) -> e.Obs.Postmortem.Triage.e_exemplar <> None)
       entries);
  List.iter
    (fun (key, e) ->
      match e.Obs.Postmortem.Triage.e_exemplar with
      | None -> ()
      | Some (seed, b) ->
        checkb "bundle has a repro line" true (b.Obs.Postmortem.pm_repro <> "");
        checkb "bundle timeline is non-empty" true
          (b.Obs.Postmortem.pm_timeline <> []);
        (* The repro contract: --runs 1 --seed S lands in the same
           signature. *)
        let rerun =
          Inject.Campaign.run ~base_seed:seed ~postmortems:true ~n:1 dead_cfg
        in
        (match Obs.Postmortem.Triage.snapshot (triage_of rerun) with
        | [ (key', e') ] ->
          checks "repro reproduces the signature" key key';
          (match e'.Obs.Postmortem.Triage.e_exemplar with
          | Some (_, b') ->
            checks "same outcome class" b.Obs.Postmortem.pm_outcome
              b'.Obs.Postmortem.pm_outcome
          | None -> Alcotest.fail "repro run captured no bundle")
        | l ->
          Alcotest.fail
            (Printf.sprintf "repro run produced %d signatures" (List.length l))))
    entries

(* --------------------- Endurance determinism ------------------------ *)

let test_endurance_triage () =
  let cfg =
    {
      Endure.default_config with
      Endure.run_cfg =
        {
          Inject.Run.default_config with
          Inject.Run.fault = Inject.Fault.Failstop;
          mech =
            Inject.Run.Mech
              (Recovery.Engine.Nilihype, Recovery.Enhancement.full_set);
          hv_config = Hyper.Config.nilihype;
        };
      cycles = 12;
      leak_budget_pages = None;
    }
  in
  let run jobs =
    Endure.run ~base_seed:500L ~jobs ~oversubscribe:(jobs > 1)
      ~postmortems:true ~scenarios:6 cfg
  in
  let seq = run 1 and par = run 2 in
  checkb "endurance snapshots identical (triage included)" true
    (Endure.snapshot seq.Endure.totals = Endure.snapshot par.Endure.totals);
  (* Every death records exactly one triage occurrence, with a bundle
     captured live at the point of death. *)
  checki "triage total equals death count" seq.Endure.totals.Endure.deaths
    (Obs.Postmortem.Triage.total seq.Endure.totals.Endure.triage);
  List.iter
    (fun (key, e) ->
      match e.Obs.Postmortem.Triage.e_exemplar with
      | None -> Alcotest.fail ("death signature without a bundle: " ^ key)
      | Some (_, b) ->
        checks "death bundles are outcome 'died'" "died"
          b.Obs.Postmortem.pm_outcome;
        checkb "death bundle names the endurance CLI" true
          (String.length b.Obs.Postmortem.pm_repro > 0))
    (Obs.Postmortem.Triage.snapshot seq.Endure.totals.Endure.triage)

let () =
  Alcotest.run "postmortem"
    [
      ( "flight",
        [
          Alcotest.test_case "epoch scoping" `Quick test_flight_epoch_scoping;
          Alcotest.test_case "survives restore and reboot" `Quick
            test_flight_survives_restore;
        ] );
      ( "signature",
        [ Alcotest.test_case "grammar" `Quick test_signature_grammar ] );
      ( "triage",
        [
          Alcotest.test_case "commutative merge" `Quick test_triage_merge;
          Alcotest.test_case "bounded seed lists" `Quick test_triage_seed_cap;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "triage jobs-invariant" `Slow
            test_campaign_triage_jobs_invariant;
          Alcotest.test_case "triage fanout-invariant" `Slow
            test_campaign_triage_fanout_invariant;
          Alcotest.test_case "capture does not perturb results" `Quick
            test_campaign_capture_does_not_perturb;
          Alcotest.test_case "bundles and repro fidelity" `Quick
            test_campaign_bundles_and_repro;
        ] );
      ( "endurance",
        [ Alcotest.test_case "death triage" `Slow test_endurance_triage ] );
    ]
